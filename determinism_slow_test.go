//go:build slow

// The full determinism audit (`make test-slow`): every simulation-backed
// harness experiment — fig4, fig6, fig8, fig13a, fig13b, fig14, fig15a,
// fig15b, fig16, headline, replay, loadcurve — must render byte-identical output
// between a serial sweep (-workers 1) and a parallel one, and across
// reruns. The fast tier keeps one representative (Fig8, in
// determinism_test.go); this tag extends the check to the whole suite,
// so any experiment that grows shared mutable state or
// iteration-order dependence fails the nightly target.
package pimmmu_test

import (
	"bytes"
	"testing"

	"repro/internal/harness"
)

// staticExperiments render configuration tables without running a
// simulation; there is nothing to sweep.
var staticExperiments = map[string]bool{"table1": true, "area": true}

// renderRunner renders one experiment through a fresh Runner.
func renderRunner(e harness.Experiment, workers, shards, coreLanes int) []byte {
	r := &harness.Runner{Workers: workers, Shards: shards, CoreLanes: coreLanes}
	var buf bytes.Buffer
	r.Run(e, &buf, harness.Quick)
	return buf.Bytes()
}

func TestEveryExperimentSerialParallelIdentical(t *testing.T) {
	for _, e := range harness.All() {
		if staticExperiments[e.Name] {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			serial := renderRunner(e, 1, 0, 0)
			parallel := renderRunner(e, 8, 0, 0)
			rerun := renderRunner(e, 8, 0, 0)
			if len(serial) == 0 {
				t.Fatal("experiment rendered nothing")
			}
			if !bytes.Equal(serial, parallel) {
				t.Errorf("parallel output differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
			if !bytes.Equal(parallel, rerun) {
				t.Errorf("rerun differs\n--- first ---\n%s--- second ---\n%s", parallel, rerun)
			}
		})
	}
}

// TestEveryExperimentShardCountIdentical is the shard-count counterpart of
// the audit above: every simulation-backed experiment must render
// byte-identical output whether each machine's event queue runs on one
// shard (the serial reference of the sharded engine) or is executed in
// conservative windows across 2 or 4 workers. Any channel event wrongly
// classified as lane-local — or any lane-local handler that touches state
// outside its channel — shows up here as a diff.
func TestEveryExperimentShardCountIdentical(t *testing.T) {
	for _, e := range harness.All() {
		if staticExperiments[e.Name] {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			serial := renderRunner(e, 0, 1, 0)
			if len(serial) == 0 {
				t.Fatal("experiment rendered nothing")
			}
			for _, shards := range []int{2, 4} {
				if got := renderRunner(e, 0, shards, 0); !bytes.Equal(serial, got) {
					t.Errorf("output differs at %d shards\n--- 1 shard ---\n%s--- %d shards ---\n%s",
						shards, serial, shards, got)
				}
			}
		})
	}
}

// TestEveryExperimentCoreLaneCountIdentical is the core-lane counterpart:
// with per-core host lanes added to the topology (the LLC as the crossing
// boundary), every simulation-backed experiment — including the
// contender-heavy fig13 sweeps the lanes exist for — must render
// byte-identical output at core-lane counts 0, 2, 4 and 8, serially and
// under parallel windows.
func TestEveryExperimentCoreLaneCountIdentical(t *testing.T) {
	for _, e := range harness.All() {
		if staticExperiments[e.Name] {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			serial := renderRunner(e, 0, 1, 0)
			if len(serial) == 0 {
				t.Fatal("experiment rendered nothing")
			}
			for _, p := range []struct{ shards, coreLanes int }{
				{1, 2}, {2, 4}, {4, 8},
			} {
				if got := renderRunner(e, 0, p.shards, p.coreLanes); !bytes.Equal(serial, got) {
					t.Errorf("output differs at shards=%d core-lanes=%d\n--- reference ---\n%s--- got ---\n%s",
						p.shards, p.coreLanes, serial, got)
				}
			}
		})
	}
}
