// Cross-shard invariant tests: a sharded machine must be indistinguishable
// from a serial one in everything but wall-clock time, at every point of
// its lane topology. The DDR4 channels only interact with the rest of the
// machine at request enqueue/complete boundaries, CPU cores only through
// the LLC and the scheduler quantum, and the sharded engine fires every
// such crossing serially at its frontier, so the command stream each
// channel issues — and every metric derived from it — must be
// byte-identical across shard counts AND across core-lane counts,
// including combined channel x core topologies.
package pimmmu_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/system"
	"repro/internal/trace"
)

// laneTopo is one point of the lane-topology axis.
type laneTopo struct{ shards, coreLanes int }

func (lt laneTopo) String() string {
	n := func(v int) string {
		if v == system.Auto {
			return "auto"
		}
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("shards=%s,core-lanes=%s", n(lt.shards), n(lt.coreLanes))
}

// laneTopos is the topology axis every invariant is checked across: the
// plain serial engine (0,0); the sharded queue executed serially with
// core-lane counts 0/1/2/4 (per the acceptance contract, including
// lane-sharing partitions of the 8 cores); and combined channel x core
// window execution at 2 and 4 workers up to one lane per core; and the
// adaptive auto sizing (shards and core lanes resolved per host by
// Normalize, window thresholds tuned at run time by the controller). The
// first entry is the reference; everything after must match it bit for
// bit.
var laneTopos = []laneTopo{
	{0, 0},
	{1, 0},
	{1, 1},
	{1, 2},
	{1, 4},
	{2, 2},
	{2, 4},
	{4, 8},
	{system.Auto, system.Auto},
}

// shardCounts is the legacy shard-only axis kept for workloads where the
// core-lane dimension is redundant (no CPU threads run at all).
var shardCounts = []int{0, 1, 2, 4}

// TestShardedCommandStreamIdentical pins the tentpole's hard requirement:
// the full per-channel DDR4 command stream of a transfer (the golden-test
// rendering) is byte-identical between the plain engine and every lane
// topology — shard counts, core-lane counts, and combinations — for both
// the software-baseline (CPU-thread-heavy) and the PIM-MMU design.
func TestShardedCommandStreamIdentical(t *testing.T) {
	for _, d := range []system.Design{system.Base, system.PIMMMU} {
		want := commandStream(d, laneTopos[0].shards, laneTopos[0].coreLanes)
		for _, lt := range laneTopos[1:] {
			if got := commandStream(d, lt.shards, lt.coreLanes); got != want {
				t.Errorf("%v: command stream diverged at %v\n--- serial ---\n%s--- %v ---\n%s",
					d, lt, want, lt, got)
			}
		}
	}
}

// TestContendedStreamLaneTopologyIdentical is the Fig. 13-style
// counterpart: the contender-heavy command stream (spin + memory-hog
// threads co-located with a software transfer — the workload per-core
// lanes exist for) must render byte-identically at every lane topology.
func TestContendedStreamLaneTopologyIdentical(t *testing.T) {
	want := contendedStream(laneTopos[0].shards, laneTopos[0].coreLanes)
	for _, lt := range laneTopos[1:] {
		if got := contendedStream(lt.shards, lt.coreLanes); got != want {
			t.Errorf("contended stream diverged at %v\n--- serial ---\n%s--- %v ---\n%s",
				lt, want, lt, got)
		}
	}
}

// TestShardedReplayResultIdentical replays one synthetic trace on machines
// at every lane topology and requires the full trace.Result — counts,
// bytes, timestamps, latency sum and histogram, backpressure metrics — to
// match field for field.
func TestShardedReplayResultIdentical(t *testing.T) {
	gen := trace.DefaultGenConfig()
	gen.Records = 1 << 11
	gen.FootprintLines = 1 << 14
	results := make([]trace.Result, len(laneTopos))
	for i, lt := range laneTopos {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.Shards = lt.shards
		cfg.CoreLanes = lt.coreLanes
		s := system.MustNew(cfg)
		g := gen
		g.Base = s.Alloc(g.FootprintBytes(trace.PatternMixed))
		recs := trace.MustGenerate(trace.PatternMixed, g)
		r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i, lt := range laneTopos[1:] {
		if !reflect.DeepEqual(results[i+1], results[0]) {
			t.Errorf("trace.Result diverged at %v:\nserial: %+v\nsharded: %+v",
				lt, results[0], results[i+1])
		}
	}
}

// TestShardedLoadResultIdentical drives one open-loop Poisson point on
// machines at every lane topology and requires the full trace.LoadResult
// — arrival/issue/completion counts, the queue/service/total latency
// split with all three histograms, and the backpressure metrics — to
// match field for field.
func TestShardedLoadResultIdentical(t *testing.T) {
	gen := trace.DefaultGenConfig()
	gen.Records = 1 << 11
	gen.FootprintLines = 1 << 14
	dcfg := trace.DefaultDriverConfig()
	dcfg.MeanGap = 4 * clock.Nanosecond
	dcfg.Duration = 8 * clock.Microsecond
	results := make([]trace.LoadResult, len(laneTopos))
	for i, lt := range laneTopos {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.Shards = lt.shards
		cfg.CoreLanes = lt.coreLanes
		s := system.MustNew(cfg)
		g := gen
		g.Base = s.Alloc(g.FootprintBytes(trace.PatternMixed))
		recs := trace.MustGenerate(trace.PatternMixed, g)
		r, err := s.RunLoad(recs, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i, lt := range laneTopos[1:] {
		if !reflect.DeepEqual(results[i+1], results[0]) {
			t.Errorf("trace.LoadResult diverged at %v:\nserial: %+v\nsharded: %+v",
				lt, results[0], results[i+1])
		}
	}
}

// TestShardedTransferMetricsIdentical runs a mid-size DCE transfer at
// every lane topology and compares the transfer result plus the aggregate
// channel statistics on both device sets.
func TestShardedTransferMetricsIdentical(t *testing.T) {
	type snapshot struct {
		res                  system.XferResult
		dramRead, dramWrite  uint64
		pimRead, pimWrite    uint64
		dramCAS, pimCAS      uint64
		dramActs, pimActs    uint64
		fired                uint64
		hitQFullRetries      uint64
		pimChannelRowHits    []uint64
		pimChannelQueueFulls []uint64
	}
	run := func(lt laneTopo) snapshot {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.Shards = lt.shards
		cfg.CoreLanes = lt.coreLanes
		s := system.MustNew(cfg)
		per := (1 << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		res := s.RunTransfer(s.TransferOp(0, s.Cfg.PIM.NumCores(), per))
		ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
		snap := snapshot{
			res:      res,
			dramRead: ds.BytesRead(), dramWrite: ds.BytesWritten(),
			pimRead: ps.BytesRead(), pimWrite: ps.BytesWritten(),
			dramCAS: ds.CAS(), pimCAS: ps.CAS(),
			dramActs: ds.Acts(), pimActs: ps.Acts(),
			fired: s.Eng.Fired(),
		}
		for _, c := range ps.Channels {
			snap.hitQFullRetries += c.QueueFull
			snap.pimChannelRowHits = append(snap.pimChannelRowHits, c.RowHits)
			snap.pimChannelQueueFulls = append(snap.pimChannelQueueFulls, c.QueueFull)
		}
		return snap
	}
	want := run(laneTopos[0])
	for _, lt := range laneTopos[1:] {
		if got := run(lt); !reflect.DeepEqual(got, want) {
			t.Errorf("transfer metrics diverged at %v:\nserial:  %+v\nsharded: %+v",
				lt, want, got)
		}
	}
}

// TestShardedExperimentOutputIdentical renders one full harness experiment
// serially and sharded (with core lanes); the printed artifact must not
// change.
func TestShardedExperimentOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment render in -short mode")
	}
	fig8, ok := harness.ByName("fig8")
	if !ok {
		t.Fatal("fig8 experiment not registered")
	}
	render := func(shards, coreLanes int) string {
		r := &harness.Runner{Shards: shards, CoreLanes: coreLanes}
		var b bytes.Buffer
		r.Run(fig8, &b, harness.Quick)
		return b.String()
	}
	want := render(1, 0)
	for _, lt := range []laneTopo{{2, 0}, {2, 4}, {4, 8}} {
		if got := render(lt.shards, lt.coreLanes); got != want {
			t.Errorf("fig8 output diverged at %v\n--- serial ---\n%s--- %v ---\n%s",
				lt, want, lt, got)
		}
	}
}

// TestShardedPIMRegionReplay exercises the non-cacheable PIM-region path
// (no LLC in front of the channels) across shard counts; no CPU threads
// run, so the core-lane axis is redundant here.
func TestShardedPIMRegionReplay(t *testing.T) {
	gen := trace.DefaultGenConfig()
	gen.Records = 1 << 10
	gen.FootprintLines = 1 << 12
	gen.Base = mem.PIMBase
	gen.WritePercent = 100
	recs := trace.MustGenerate(trace.PatternMixed, gen)
	var want trace.Result
	for i, shards := range shardCounts {
		cfg := system.DefaultConfig(system.Base)
		cfg.Shards = shards
		s := system.MustNew(cfg)
		r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = r
		} else if !reflect.DeepEqual(r, want) {
			t.Errorf("PIM-region replay diverged at %d shards:\nserial: %+v\nsharded: %+v",
				shards, want, r)
		}
	}
}
