// Cross-shard invariant tests: a sharded machine must be indistinguishable
// from a serial one in everything but wall-clock time. The DDR4 channels
// only interact with the rest of the machine at request enqueue/complete
// boundaries, and the sharded engine fires every such crossing serially at
// its frontier, so the command stream each channel issues — and every
// metric derived from it — must be byte-identical across shard counts.
package pimmmu_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/system"
	"repro/internal/trace"
)

// shardCounts is the shard axis every invariant is checked across: the
// plain serial engine (0), the sharded queue executed serially (1), and
// two- and four-worker sharded execution. Shard counts >= 1 are identical
// by construction; including 0 additionally pins that the sharded engine
// reproduces the plain engine bit for bit on these workloads.
var shardCounts = []int{0, 1, 2, 4}

// shardedCounts is the axis for workloads where the plain engine's
// same-instant tie order differs benignly from the sharded canonical
// order (see system.Config.Shards); the serial reference is one shard.
var shardedCounts = []int{1, 2, 4}

// TestShardedCommandStreamIdentical pins the tentpole's hard requirement:
// the full per-channel DDR4 command stream of a transfer (the golden-test
// rendering) is byte-identical between the serial engine and sharded
// engines at 2 and 4 shards, for both the software-baseline and the
// PIM-MMU design.
func TestShardedCommandStreamIdentical(t *testing.T) {
	for _, d := range []system.Design{system.Base, system.PIMMMU} {
		want := commandStream(d, 0)
		for _, shards := range shardCounts[1:] {
			if got := commandStream(d, shards); got != want {
				t.Errorf("%v: command stream diverged at %d shards\n--- serial ---\n%s--- %d shards ---\n%s",
					d, shards, want, shards, got)
			}
		}
	}
}

// TestShardedReplayResultIdentical replays one synthetic trace on machines
// at every shard count and requires the full trace.Result — counts, bytes,
// timestamps, latency sum and histogram, backpressure metrics — to match
// field for field.
func TestShardedReplayResultIdentical(t *testing.T) {
	gen := trace.DefaultGenConfig()
	gen.Records = 1 << 11
	gen.FootprintLines = 1 << 14
	results := make([]trace.Result, len(shardCounts))
	for i, shards := range shardCounts {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.Shards = shards
		s := system.MustNew(cfg)
		g := gen
		g.Base = s.Alloc(g.FootprintBytes(trace.PatternMixed))
		recs := trace.MustGenerate(trace.PatternMixed, g)
		r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i, shards := range shardCounts[1:] {
		if !reflect.DeepEqual(results[i+1], results[0]) {
			t.Errorf("trace.Result diverged at %d shards:\nserial: %+v\nsharded: %+v",
				shards, results[0], results[i+1])
		}
	}
}

// TestShardedTransferMetricsIdentical runs a mid-size DCE transfer at
// every shard count and compares the transfer result plus the aggregate
// channel statistics on both device sets.
func TestShardedTransferMetricsIdentical(t *testing.T) {
	type snapshot struct {
		res                  system.XferResult
		dramRead, dramWrite  uint64
		pimRead, pimWrite    uint64
		dramCAS, pimCAS      uint64
		dramActs, pimActs    uint64
		fired                uint64
		hitQFullRetries      uint64
		pimChannelRowHits    []uint64
		pimChannelQueueFulls []uint64
	}
	run := func(shards int) snapshot {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.Shards = shards
		s := system.MustNew(cfg)
		per := (1 << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		res := s.RunTransfer(s.TransferOp(0, s.Cfg.PIM.NumCores(), per))
		ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
		snap := snapshot{
			res:      res,
			dramRead: ds.BytesRead(), dramWrite: ds.BytesWritten(),
			pimRead: ps.BytesRead(), pimWrite: ps.BytesWritten(),
			dramCAS: ds.CAS(), pimCAS: ps.CAS(),
			dramActs: ds.Acts(), pimActs: ps.Acts(),
			fired: s.Eng.Fired(),
		}
		for _, c := range ps.Channels {
			snap.hitQFullRetries += c.QueueFull
			snap.pimChannelRowHits = append(snap.pimChannelRowHits, c.RowHits)
			snap.pimChannelQueueFulls = append(snap.pimChannelQueueFulls, c.QueueFull)
		}
		return snap
	}
	want := run(0)
	for _, shards := range shardCounts[1:] {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Errorf("transfer metrics diverged at %d shards:\nserial:  %+v\nsharded: %+v",
				shards, want, got)
		}
	}
}

// TestShardedExperimentOutputIdentical renders one full harness experiment
// (the replay table: six workloads x two designs, through the sweep
// machinery) serially and sharded; the printed artifact must not change.
func TestShardedExperimentOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment render in -short mode")
	}
	render := func(shards int) string {
		harness.SetShards(shards)
		defer harness.SetShards(0)
		var b bytes.Buffer
		harness.Fig8(&b, harness.Quick)
		return b.String()
	}
	want := render(1)
	for _, shards := range shardedCounts[1:] {
		if got := render(shards); got != want {
			t.Errorf("fig8 output diverged at %d shards\n--- serial ---\n%s--- %d shards ---\n%s",
				shards, want, shards, got)
		}
	}
}

// TestShardedPIMRegionReplay exercises the non-cacheable PIM-region path
// (no LLC in front of the channels) across shard counts.
func TestShardedPIMRegionReplay(t *testing.T) {
	gen := trace.DefaultGenConfig()
	gen.Records = 1 << 10
	gen.FootprintLines = 1 << 12
	gen.Base = mem.PIMBase
	gen.WritePercent = 100
	recs := trace.MustGenerate(trace.PatternMixed, gen)
	var want trace.Result
	for i, shards := range shardCounts {
		cfg := system.DefaultConfig(system.Base)
		cfg.Shards = shards
		s := system.MustNew(cfg)
		r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = r
		} else if !reflect.DeepEqual(r, want) {
			t.Errorf("PIM-region replay diverged at %d shards:\nserial: %+v\nsharded: %+v",
				shards, want, r)
		}
	}
}
