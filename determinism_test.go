// Determinism regression tests: the simulation contract is that the same
// configuration produces bit-identical results on every run, and that a
// parallel sweep over independent machines produces byte-identical output
// to the same sweep run serially. The allocation-free scheduler and the
// sweep layer must both preserve this.
package pimmmu_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/harness"
	"repro/internal/sweep"
	"repro/internal/system"
)

// fingerprint renders everything observable about one finished run: the
// transfer result, the event count, and every channel counter.
func fingerprint(s *system.System, r system.XferResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design=%v dir=%v bytes=%d dur=%d fired=%d now=%d\n",
		r.Design, r.Dir, r.Bytes, r.Duration, s.Eng.Fired(), s.Eng.Now())
	machineFingerprint(&b, s)
	return b.String()
}

// machineFingerprint dumps every channel counter and the LLC counters,
// the per-machine half shared by the transfer and replay fingerprints.
func machineFingerprint(b *strings.Builder, s *system.System) {
	dump := func(name string, st dram.Stats) {
		for i, c := range st.Channels {
			fmt.Fprintf(b, "%s[%d] rd=%d wr=%d act=%d pre=%d ref=%d hit=%d miss=%d conf=%d br=%d bw=%d qf=%d\n",
				name, i, c.Reads, c.Writes, c.Acts, c.Pres, c.Refs,
				c.RowHits, c.RowMisses, c.RowConflicts,
				c.BytesRead, c.BytesWritten, c.QueueFull)
		}
	}
	dump("dram", s.Mem.DRAM.Stats())
	dump("pim", s.Mem.PIM.Stats())
	ls := s.Mem.LLC.Stats()
	fmt.Fprintf(b, "llc hits=%d misses=%d\n", ls.Hits, ls.Misses)
}

// runOnce builds a fresh machine and runs one transfer.
func runOnce(d system.Design, dir core.Direction, totalBytes uint64) string {
	s := system.MustNew(system.DefaultConfig(d))
	per := totalBytes / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	r := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	return fingerprint(s, r)
}

// TestRerunBitIdentical checks that two runs of the same configuration
// agree on every counter, for every design point and direction.
func TestRerunBitIdentical(t *testing.T) {
	for _, d := range system.Designs() {
		for _, dir := range []core.Direction{core.DRAMToPIM, core.PIMToDRAM} {
			a := runOnce(d, dir, 1<<20)
			b := runOnce(d, dir, 1<<20)
			if a != b {
				t.Errorf("%v %v: reruns differ\n--- first ---\n%s--- second ---\n%s", d, dir, a, b)
			}
		}
	}
}

// TestParallelSweepMatchesSerial checks the sweep layer's core promise:
// fanning independent machines across goroutines changes nothing about
// any machine's results.
func TestParallelSweepMatchesSerial(t *testing.T) {
	designs := system.Designs()
	dirs := []core.Direction{core.DRAMToPIM, core.PIMToDRAM}
	sizes := []uint64{256 << 10, 1 << 20}
	g := sweep.NewGrid(len(designs), len(dirs), len(sizes))
	job := func(i int) string {
		return runOnce(designs[g.Coord(i, 0)], dirs[g.Coord(i, 1)], sizes[g.Coord(i, 2)])
	}
	serial := sweep.MapN(g.Size(), 1, job)
	parallel := sweep.MapN(g.Size(), 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("job %d: parallel result differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
				i, serial[i], parallel[i])
		}
	}
}

// TestHarnessExperimentParallelMatchesSerial renders a full harness
// experiment both ways and compares the printed tables byte for byte.
// Fig8 is the fast tier-1 representative; the slow suite
// (determinism_slow_test.go, `make test-slow`) extends the same check
// to every experiment.
func TestHarnessExperimentParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	fig8, ok := harness.ByName("fig8")
	if !ok {
		t.Fatal("fig8 experiment not registered")
	}
	render := func(workers int) []byte {
		r := &harness.Runner{Workers: workers}
		var buf bytes.Buffer
		r.Run(fig8, &buf, harness.Quick)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("Fig8 output differs between serial and parallel sweeps\n--- serial ---\n%s--- parallel ---\n%s",
			serial, parallel)
	}
}
