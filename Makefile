GO ?= go

.PHONY: check fmt vet lint build test test-slow bench bench-compare profile serve serve-smoke

# The tier-1 gate: formatting, static checks, build, tests.
check: fmt lint build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static checks: go vet plus the import layering rules — the harness
# compute-phase rule, serve's no-internal/system rule, and serve/api's
# purity rule; see cmd/pimmu-lint.
lint: vet
	$(GO) run ./cmd/pimmu-lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The nightly tier: everything above plus the slow-tagged suites — the
# experiment-wide serial-vs-parallel determinism audit and the golden
# command-stream regressions at full coverage.
test-slow:
	$(GO) vet -tags slow ./...
	$(GO) test -tags slow ./...

# One iteration of every paper-figure benchmark plus the scheduler
# micro-benchmarks and the sharded-engine speedup comparisons (the
# multi-channel posted-write stream and the multi-contender core-lane
# workload), captured as test2json streams for trend tracking. Captures
# are written to a temp file and renamed only on success, so a failing
# benchmark run cannot clobber the previous (committed) capture with a
# partial stream. BENCH_COUNT repeats each engine benchmark; the diff
# tool takes the fastest run, which strips shared-runner noise (CI uses
# BENCH_COUNT=3).
BENCH_COUNT ?= 1

bench:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x . > BENCH_figs.json.tmp
	$(GO) test -json -run '^$$' -bench=Engine -benchmem -count=$(BENCH_COUNT) ./internal/sim ./internal/dram ./internal/system > BENCH_engine.json.tmp
	mv BENCH_figs.json.tmp BENCH_figs.json
	mv BENCH_engine.json.tmp BENCH_engine.json
	@echo "wrote BENCH_figs.json and BENCH_engine.json"

# Regenerate the captures and gate the engine benchmarks against the
# committed baselines: >20% ns/op regression, any allocation on a
# baseline-allocation-free path, or a vanished benchmark fails (see
# cmd/pimmu-benchdiff). The baseline is read from git so the fresh run
# cannot compare against itself.
bench-compare:
	git show HEAD:BENCH_engine.json > BENCH_engine.baseline.tmp
	$(MAKE) bench || { rm -f BENCH_engine.baseline.tmp; exit 1; }
	$(GO) run ./cmd/pimmu-benchdiff BENCH_engine.baseline.tmp BENCH_engine.json; \
		status=$$?; rm -f BENCH_engine.baseline.tmp; exit $$status

# CPU- and heap-profile a representative simulation-heavy experiment
# through the shared -cpuprofile/-memprofile flags (every CLI accepts
# them). Inspect with `go tool pprof cpu.pprof` / `go tool pprof
# mem.pprof`. Override PROFILE_EXPERIMENT / PROFILE_FLAGS to aim the
# profiler elsewhere.
PROFILE_EXPERIMENT ?= headline
PROFILE_FLAGS ?= -shards auto -core-lanes auto

profile:
	$(GO) run ./cmd/pimmu-bench $(PROFILE_FLAGS) \
		-cpuprofile cpu.pprof -memprofile mem.pprof $(PROFILE_EXPERIMENT)
	@echo "wrote cpu.pprof and mem.pprof"

# Run the sweep server locally (override SERVE_FLAGS to change the
# address, worker bounds, or cache directory; see cmd/pimmu-serve).
SERVE_FLAGS ?= -addr localhost:8080

serve:
	$(GO) run ./cmd/pimmu-serve $(SERVE_FLAGS)

# Boot the server on an ephemeral port and drive one quick job through
# the real HTTP surface — submit, event stream, result fetch — as a
# self-test. fig8 actually simulates, so the smoke exercises progress
# events, the worker pool, and the structured-result path end to end.
serve-smoke:
	$(GO) run ./cmd/pimmu-serve -smoke fig8
