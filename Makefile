GO ?= go

.PHONY: check fmt vet build test test-slow bench

# The tier-1 gate: formatting, static checks, build, tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The nightly tier: everything above plus the slow-tagged suites — the
# experiment-wide serial-vs-parallel determinism audit and the golden
# command-stream regressions at full coverage.
test-slow:
	$(GO) vet -tags slow ./...
	$(GO) test -tags slow ./...

# One iteration of every paper-figure benchmark plus the scheduler
# micro-benchmarks and the sharded-engine speedup comparisons (the
# multi-channel posted-write stream and the multi-contender core-lane
# workload), captured as test2json streams for trend tracking.
bench:
	$(GO) test -json -run '^$$' -bench=. -benchmem -benchtime=1x . > BENCH_figs.json
	$(GO) test -json -run '^$$' -bench=Engine -benchmem ./internal/sim ./internal/dram ./internal/system > BENCH_engine.json
	@echo "wrote BENCH_figs.json and BENCH_engine.json"
