GO ?= go

.PHONY: check fmt vet build test bench

# The tier-1 gate: formatting, static checks, build, tests.
check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of every paper-figure benchmark plus the scheduler
# micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .
	$(GO) test -bench=Engine -benchmem ./internal/sim
