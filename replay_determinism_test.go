// Replay determinism: a trace replayed through trace.Replayer must
// produce bit-identical statistics on every rerun and at every sweep
// worker count — the acceptance contract of the trace subsystem. The
// checks cover both synthetic traces and a trace recorded live at the
// mem.Port boundary.
package pimmmu_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/trace"
)

// replayFingerprint renders everything observable about one replay run.
func replayFingerprint(s *system.System, r trace.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "issued=%d completed=%d br=%d bw=%d start=%d end=%d latsum=%d retries=%d slip=%d fired=%d now=%d\n",
		r.Issued, r.Completed, r.BytesRead, r.BytesWritten,
		r.Start, r.End, r.LatencySum, r.Retries, r.Slip,
		s.Eng.Fired(), s.Eng.Now())
	machineFingerprint(&b, s)
	return b.String()
}

// replayJob replays recs on a fresh machine of the given design and
// fingerprints the run.
func replayJob(d system.Design, recs []trace.Record) string {
	s := system.MustNew(system.DefaultConfig(d))
	r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("design=%v %s", d, replayFingerprint(s, r))
}

// recordTransferTrace captures the port traffic of one small transfer.
func recordTransferTrace(d system.Design, totalBytes uint64) []trace.Record {
	s := system.MustNew(system.DefaultConfig(d))
	rec := s.RecordTrace()
	per := totalBytes / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
	s.StopTrace()
	return rec.Records()
}

// TestRecordedTraceReplayBitIdentical is the subsystem's acceptance
// check: a trace recorded at the mem.Port boundary, replayed across
// design points, yields byte-identical fingerprints between serial and
// parallel sweeps and across reruns.
func TestRecordedTraceReplayBitIdentical(t *testing.T) {
	recs := recordTransferTrace(system.PIMMMU, 128<<10)
	if len(recs) == 0 {
		t.Fatal("recorder captured nothing")
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	designs := system.Designs()
	job := func(i int) string { return replayJob(designs[i], recs) }
	serial := sweep.MapN(len(designs), 1, job)
	parallel := sweep.MapN(len(designs), 8, job)
	rerun := sweep.MapN(len(designs), 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("%v: workers=8 differs from workers=1\n--- serial ---\n%s--- parallel ---\n%s",
				designs[i], serial[i], parallel[i])
		}
		if parallel[i] != rerun[i] {
			t.Errorf("%v: rerun differs\n--- first ---\n%s--- second ---\n%s",
				designs[i], parallel[i], rerun[i])
		}
	}
}

// TestSyntheticReplaySweepMatchesSerial fans the (pattern x design)
// replay matrix across goroutines and requires byte-identical results,
// mirroring the harness replay experiment's sweep shape.
func TestSyntheticReplaySweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed sweep")
	}
	patterns := []trace.Pattern{trace.PatternStrided, trace.PatternMixed, trace.PatternZipf}
	designs := []system.Design{system.Base, system.PIMMMU}
	cfg := trace.DefaultGenConfig()
	cfg.Records = 4096
	g := sweep.NewGrid(len(patterns), len(designs))
	job := func(i int) string {
		recs := trace.MustGenerate(patterns[g.Coord(i, 0)], cfg)
		return replayJob(designs[g.Coord(i, 1)], recs)
	}
	serial := sweep.MapN(g.Size(), 1, job)
	parallel := sweep.MapN(g.Size(), 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("job %d (%s on %v): parallel differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
				i, patterns[g.Coord(i, 0)], designs[g.Coord(i, 1)], serial[i], parallel[i])
		}
	}
}

// TestRecordReplayRoundTripPreservesTraffic replays a recorded trace on
// the same design it was recorded from: the replayed run must move
// exactly the recorded bytes.
func TestRecordReplayRoundTripPreservesTraffic(t *testing.T) {
	recs := recordTransferTrace(system.PIMMMU, 64<<10)
	sum := trace.Summarize(recs)
	s := system.MustNew(system.DefaultConfig(system.PIMMMU))
	r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.BytesRead != sum.BytesRead || r.BytesWritten != sum.BytesWritten {
		t.Errorf("replayed %d/%d bytes, recorded %d/%d",
			r.BytesRead, r.BytesWritten, sum.BytesRead, sum.BytesWritten)
	}
	if r.Completed != uint64(sum.Records) {
		t.Errorf("completed %d line requests, recorded %d", r.Completed, sum.Records)
	}
}
