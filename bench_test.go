// Benchmarks: one per paper table/figure (regenerating its measurement at
// reduced size) plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each iteration performs one full simulation; custom metrics (GB/s,
// speedup ratios) carry the experiment's result. cmd/pimmu-bench prints
// the paper-style rows; these benches make the same machinery part of the
// go test workflow.
package pimmmu_test

import (
	"io"
	"testing"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/prim"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/xfer"
)

const benchBytes = 2 << 20 // per-experiment transfer size in benches

func transferGBps(b *testing.B, d system.Design, dir core.Direction, total uint64) float64 {
	b.Helper()
	s := system.MustNew(system.DefaultConfig(d))
	per := total / uint64(s.Cfg.PIM.NumCores())
	if per < 64 {
		per = 64
	}
	per &^= 63
	r := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	return r.Throughput() / 1e9
}

// BenchmarkTable1Config regenerates Table I (configuration assembly and
// validation).
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := system.DefaultConfig(system.PIMMMU)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4BaselineUtilization measures the baseline transfer with
// the power sampler attached (the Fig. 4 trace).
func BenchmarkFig4BaselineUtilization(b *testing.B) {
	var watts float64
	for i := 0; i < b.N; i++ {
		s := system.MustNew(system.DefaultConfig(system.Base))
		trace, stop := s.SamplePower(50 * clock.Microsecond)
		per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
		stop()
		n := trace.Watts.Len()
		if n > 0 {
			watts = trace.Watts.Bucket(n / 2)
		}
	}
	b.ReportMetric(watts, "watts-mid")
}

// BenchmarkFig6ChannelBreakdown measures the baseline's channel-herding
// share (fraction of early traffic on PIM channel 0).
func BenchmarkFig6ChannelBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		s := system.MustNew(system.DefaultConfig(system.Base))
		per := uint64(4<<20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		op := s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per)
		done := false
		s.StartTransfer(op, func(system.XferResult) { done = true })
		target := op.Bytes() / 4
		s.Eng.RunWhile(func() bool {
			return !done && s.Mem.PIM.Stats().BytesWritten() < target
		})
		st := s.Mem.PIM.Stats()
		share = float64(st.Channels[0].BytesWritten) / float64(st.BytesWritten())
		s.Eng.Run()
	}
	b.ReportMetric(share, "ch0-share")
}

// BenchmarkFig8MappingBandwidth measures the locality/MLP bandwidth ratio.
func BenchmarkFig8MappingBandwidth(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		run := func(d system.Design) float64 {
			s := system.MustNew(system.DefaultConfig(d))
			cfg := xfer.DefaultStreamConfig()
			base := s.Alloc(1 << 24)
			var res xfer.Result
			done := false
			xfer.RunStream(s.CPU, base, 1<<13, cfg, func(x xfer.Result) { res = x; done = true })
			s.Eng.RunWhile(func() bool { return !done })
			return res.Throughput()
		}
		r = run(system.Base) / run(system.PIMMMU)
	}
	b.ReportMetric(r, "locality/mlp")
}

// BenchmarkFig13aComputeContention measures baseline slowdown under 16
// compute contenders vs PIM-MMU slowdown. The four independent machines
// (2 designs x contended/idle) fan out through one sweep.
func BenchmarkFig13aComputeContention(b *testing.B) {
	run := func(d system.Design, n int) float64 {
		s := system.MustNew(system.DefaultConfig(d))
		if n > 0 {
			base := s.Alloc(uint64(n) * (16 << 10))
			s.Contenders(n, func(j int, st *contend.Stopper) cpu.Program {
				return contend.Spin(st, base+uint64(j)*(16<<10))
			})
		}
		per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		r := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
		return r.Duration.Seconds()
	}
	points := []struct {
		d system.Design
		n int
	}{{system.Base, 16}, {system.Base, 0}, {system.PIMMMU, 16}, {system.PIMMMU, 0}}
	var baseSlow, mmuSlow float64
	for i := 0; i < b.N; i++ {
		lat := sweep.Map(len(points), func(j int) float64 { return run(points[j].d, points[j].n) })
		baseSlow = lat[0] / lat[1]
		mmuSlow = lat[2] / lat[3]
	}
	b.ReportMetric(baseSlow, "base-slowdown")
	b.ReportMetric(mmuSlow, "mmu-slowdown")
}

// BenchmarkFig13bMemoryContention measures slowdown under very-high
// intensity memory contenders.
func BenchmarkFig13bMemoryContention(b *testing.B) {
	var baseSlow, mmuSlow float64
	for i := 0; i < b.N; i++ {
		run := func(d system.Design, hog bool) float64 {
			s := system.MustNew(system.DefaultConfig(d))
			if hog {
				const fp = 64 << 20
				base := s.Alloc(4 * fp)
				s.Contenders(4, func(j int, st *contend.Stopper) cpu.Program {
					return contend.MemoryHog(st, base+uint64(j)*fp, fp, contend.VeryHigh)
				})
			}
			per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
			r := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
			return r.Duration.Seconds()
		}
		points := []struct {
			d   system.Design
			hog bool
		}{{system.Base, true}, {system.Base, false}, {system.PIMMMU, true}, {system.PIMMMU, false}}
		lat := sweep.Map(len(points), func(j int) float64 { return run(points[j].d, points[j].hog) })
		baseSlow = lat[0] / lat[1]
		mmuSlow = lat[2] / lat[3]
	}
	b.ReportMetric(baseSlow, "base-slowdown")
	b.ReportMetric(mmuSlow, "mmu-slowdown")
}

// BenchmarkFig14MemcpyThroughput measures the PIM-MMU/baseline memcpy
// gain on the 4C-8R configuration.
func BenchmarkFig14MemcpyThroughput(b *testing.B) {
	var gain float64
	designs := []system.Design{system.PIMMMU, system.Base}
	for i := 0; i < b.N; i++ {
		thr := sweep.Map(len(designs), func(j int) float64 {
			s := system.MustNew(system.DefaultConfig(designs[j]))
			return s.RunMemcpy(4 << 20).Throughput()
		})
		gain = thr[0] / thr[1]
	}
	b.ReportMetric(gain, "memcpy-gain")
}

// BenchmarkFig15aAblationThroughput measures the four design points'
// DRAM->PIM throughput, fanned out through one sweep.
func BenchmarkFig15aAblationThroughput(b *testing.B) {
	designs := system.Designs()
	var vals []float64
	for i := 0; i < b.N; i++ {
		vals = sweep.Map(len(designs), func(j int) float64 {
			return transferGBps(b, designs[j], core.DRAMToPIM, benchBytes)
		})
	}
	b.ReportMetric(vals[1]/vals[0], "base+d")
	b.ReportMetric(vals[2]/vals[0], "base+d+h")
	b.ReportMetric(vals[3]/vals[0], "pim-mmu")
}

// BenchmarkFig15bAblationEnergy measures the energy ratio of the full
// PIM-MMU vs Base.
func BenchmarkFig15bAblationEnergy(b *testing.B) {
	var ratio float64
	designs := []system.Design{system.Base, system.PIMMMU}
	for i := 0; i < b.N; i++ {
		joules := sweep.Map(len(designs), func(j int) float64 {
			s := system.MustNew(system.DefaultConfig(designs[j]))
			before := s.Activity()
			per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
			s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
			return s.EnergyOver(before, s.Activity()).Total()
		})
		ratio = joules[0] / joules[1]
	}
	b.ReportMetric(ratio, "energy-gain")
}

// BenchmarkFig16PrimEndToEnd measures a transfer-heavy PrIM workload's
// end-to-end speedup at reduced scale.
func BenchmarkFig16PrimEndToEnd(b *testing.B) {
	w, _ := prim.ByName("VA")
	var speedup float64
	for i := 0; i < b.N; i++ {
		base := system.MustNew(system.DefaultConfig(system.Base))
		pb := prim.RunEndToEnd(base, w, 1.0/128)
		mmu := system.MustNew(system.DefaultConfig(system.PIMMMU))
		pm := prim.RunEndToEnd(mmu, w, 1.0/128)
		speedup = float64(pb.Total()) / float64(pm.Total())
	}
	b.ReportMetric(speedup, "va-speedup")
}

// BenchmarkAreaOverhead evaluates the Section VI-C area model.
func BenchmarkAreaOverhead(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		frac = energy.DieOverheadFraction(cfg.DataBufBytes, cfg.AddrBufBytes)
	}
	b.ReportMetric(frac*100, "die-%")
}

// BenchmarkHeadline regenerates the abstract's average speedup at reduced
// size.
func BenchmarkHeadline(b *testing.B) {
	var speedup float64
	designs := []system.Design{system.Base, system.PIMMMU}
	for i := 0; i < b.N; i++ {
		thr := sweep.Map(len(designs), func(j int) float64 {
			return transferGBps(b, designs[j], core.DRAMToPIM, benchBytes)
		})
		speedup = thr[1] / thr[0]
	}
	b.ReportMetric(speedup, "xfer-speedup")
}

// BenchmarkSweepAblation measures the Fig. 15-style four-design ablation
// through internal/sweep, serial vs parallel — the whole-suite wall-clock
// win of the sweep layer (expect >= 1.5x on machines with >= 4 cores; on
// fewer cores the two are equivalent).
func BenchmarkSweepAblation(b *testing.B) {
	designs := system.Designs()
	job := func(j int) float64 {
		return transferGBps(b, designs[j], core.DRAMToPIM, benchBytes)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep.MapN(len(designs), 1, job)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweep.MapN(len(designs), 0, job)
		}
	})
}

// --- Ablation benches (DESIGN.md design choices) ---

// BenchmarkAblationIssueOrder compares the three issue orders of the
// DESIGN.md ablation — Algorithm 1, channel round-robin only, and fully
// sequential — with an equalized in-flight window so only the order
// differs.
func BenchmarkAblationIssueOrder(b *testing.B) {
	run := func(usePIMMS, chRR bool) float64 {
		cfg := system.DefaultConfig(system.PIMMMU)
		cfg.DCE.UsePIMMS = usePIMMS
		cfg.DCE.ChannelRRWithoutPIMMS = chRR
		cfg.DCE.DMAWindow = cfg.DCE.DataBufBytes / 64
		s := system.MustNew(cfg)
		per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
		return s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per)).Throughput()
	}
	var alg1Gain, chRRGain float64
	points := []struct{ pimms, chRR bool }{{false, false}, {true, false}, {false, true}}
	for i := 0; i < b.N; i++ {
		thr := sweep.Map(len(points), func(j int) float64 {
			return run(points[j].pimms, points[j].chRR)
		})
		alg1Gain = thr[1] / thr[0]
		chRRGain = thr[2] / thr[0]
	}
	b.ReportMetric(alg1Gain, "alg1-gain")
	b.ReportMetric(chRRGain, "chrr-gain")
}

// BenchmarkAblationDCEWindow sweeps the vanilla DMA in-flight window.
func BenchmarkAblationDCEWindow(b *testing.B) {
	for _, window := range []int{4, 8, 32, 128} {
		window := window
		b.Run(byWindow(window), func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				cfg := system.DefaultConfig(system.BaseDH)
				cfg.DCE.DMAWindow = window
				s := system.MustNew(cfg)
				per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
				gbps = s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per)).Throughput() / 1e9
			}
			b.ReportMetric(gbps, "GB/s")
		})
	}
}

func byWindow(w int) string {
	switch w {
	case 4:
		return "window4"
	case 8:
		return "window8"
	case 32:
		return "window32"
	default:
		return "window128"
	}
}

// BenchmarkAblationXORHash compares the MLP mapping with and without
// permutation-based XOR hashing on a strided stream.
func BenchmarkAblationXORHash(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		run := func(d system.Design) float64 {
			cfg := system.DefaultConfig(d)
			s := system.MustNew(cfg)
			strCfg := xfer.DefaultStreamConfig()
			strCfg.StrideLines = 128 // row-sized stride: the hash's worst enemy
			base := s.Alloc(1 << 28)
			var res xfer.Result
			done := false
			xfer.RunStream(s.CPU, base, 1<<11, strCfg, func(x xfer.Result) { res = x; done = true })
			s.Eng.RunWhile(func() bool { return !done })
			return res.Throughput()
		}
		hashOn := run(system.PIMMMU)
		hashOff := runNoHash()
		gain = hashOn / hashOff
	}
	b.ReportMetric(gain, "hash-gain")
}

func runNoHash() float64 {
	cfg := system.DefaultConfig(system.PIMMMU)
	cfg.Mem.Mapping = memsys.MapHetMapNoHash
	s := system.MustNew(cfg)
	strCfg := xfer.DefaultStreamConfig()
	strCfg.StrideLines = 128
	base := s.Alloc(1 << 28)
	var res xfer.Result
	done := false
	xfer.RunStream(s.CPU, base, 1<<11, strCfg, func(x xfer.Result) { res = x; done = true })
	s.Eng.RunWhile(func() bool { return !done })
	return res.Throughput()
}

// BenchmarkAblationOSQuantum sweeps the baseline's OS scheduling quantum
// under compute contention.
func BenchmarkAblationOSQuantum(b *testing.B) {
	for _, q := range []clock.Picos{clock.Millisecond / 2, 3 * clock.Millisecond / 2, 4 * clock.Millisecond} {
		q := q
		b.Run(q.String(), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				cfg := system.DefaultConfig(system.Base)
				cfg.CPU.Quantum = q
				s := system.MustNew(cfg)
				base := s.Alloc(8 * (16 << 10))
				s.Contenders(8, func(j int, st *contend.Stopper) cpu.Program {
					return contend.Spin(st, base+uint64(j)*(16<<10))
				})
				per := uint64(benchBytes) / uint64(s.Cfg.PIM.NumCores()) &^ 63
				r := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))
				secs = r.Duration.Seconds()
			}
			b.ReportMetric(secs*1e3, "xfer-ms")
		})
	}
}

// BenchmarkLoadCurveTail regenerates the loadcurve experiment's
// tail-latency trajectory at one contended point: an open-loop 16 GB/s
// Poisson stream (the first point past the Base knee) on Base and
// PIM-MMU, reporting the p99/p99.9 end-to-end latency each design
// delivers. BENCH_figs.json tracks these four tail metrics over time.
func BenchmarkLoadCurveTail(b *testing.B) {
	gen := trace.DefaultGenConfig()
	gen.FootprintLines = 1 << 16 // 4 MiB
	dcfg := trace.DefaultDriverConfig()
	dcfg.MeanGap = 4 * clock.Nanosecond // 16 GB/s offered
	dcfg.Duration = dcfg.MeanGap * 8192
	designs := []system.Design{system.Base, system.PIMMMU}
	var p99, p999 [2]float64
	for i := 0; i < b.N; i++ {
		res := sweep.Map(len(designs), func(j int) trace.LoadResult {
			s := system.MustNew(system.DefaultConfig(designs[j]))
			g := gen
			g.Base = s.Alloc(g.FootprintBytes(trace.PatternMixed))
			recs := trace.MustGenerate(trace.PatternMixed, g)
			r, err := s.RunLoad(recs, dcfg)
			if err != nil {
				panic(err)
			}
			return r
		})
		for j := range designs {
			p99[j] = res[j].Total.P99().Nanoseconds()
			p999[j] = res[j].Total.P999().Nanoseconds()
		}
	}
	b.ReportMetric(p99[0], "base-p99-ns")
	b.ReportMetric(p999[0], "base-p999-ns")
	b.ReportMetric(p99[1], "mmu-p99-ns")
	b.ReportMetric(p999[1], "mmu-p999-ns")
}

// BenchmarkHarnessQuickTable1 exercises the harness printer path.
func BenchmarkHarnessQuickTable1(b *testing.B) {
	table1, ok := harness.ByName("table1")
	if !ok {
		b.Fatal("table1 experiment not registered")
	}
	r := &harness.Runner{}
	for i := 0; i < b.N; i++ {
		r.Run(table1, io.Discard, harness.Quick)
	}
}
