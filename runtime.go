package pimmmu

import (
	"fmt"

	"repro/internal/core"
)

// XferBuilder is the staged transfer API mirroring UPMEM's
// dpu_prepare_xfer / dpu_push_xfer pattern (paper Fig. 10a): each core is
// first bound to its host-buffer slice, then the whole set is pushed in
// one call. Unlike the flat ToPIM/FromPIM helpers, the builder allows an
// arbitrary core subset with per-core buffer placement:
//
//	x := sys.PrepareXfer()
//	for i, c := range myCores {
//	    x.Bind(c, buf, uint64(i)*per)  // dpu_prepare_xfer
//	}
//	res, err := x.PushToPIM(per, 0)    // dpu_push_xfer(DPU_XFER_TO_DPU, ...)
type XferBuilder struct {
	sys     *System
	cores   []int
	bufs    []*Buffer
	offsets []uint64
	pushed  bool
}

// PrepareXfer starts building a transfer.
func (s *System) PrepareXfer() *XferBuilder { return &XferBuilder{sys: s} }

// Bind associates a PIM core with its slice of a host buffer (the slice
// starts at offset and spans the eventual per-core size).
func (x *XferBuilder) Bind(coreID int, b *Buffer, offset uint64) *XferBuilder {
	x.cores = append(x.cores, coreID)
	x.bufs = append(x.bufs, b)
	x.offsets = append(x.offsets, offset)
	return x
}

// Len reports how many cores are bound.
func (x *XferBuilder) Len() int { return len(x.cores) }

// build assembles and validates the internal op.
func (x *XferBuilder) build(dir core.Direction, bytesPerCore, mramOff uint64) (core.Op, error) {
	if x.pushed {
		return core.Op{}, fmt.Errorf("pimmmu: transfer builder already pushed")
	}
	if len(x.cores) == 0 {
		return core.Op{}, fmt.Errorf("pimmmu: no cores bound")
	}
	op := core.Op{Dir: dir, BytesPerCore: bytesPerCore, MRAMOffset: mramOff}
	for i, c := range x.cores {
		b := x.bufs[i]
		if b == nil {
			return core.Op{}, fmt.Errorf("pimmmu: core %d bound to nil buffer", c)
		}
		if x.offsets[i]+bytesPerCore > uint64(len(b.Data)) {
			return core.Op{}, fmt.Errorf("pimmmu: core %d slice [%d, %d) beyond buffer of %d bytes",
				c, x.offsets[i], x.offsets[i]+bytesPerCore, len(b.Data))
		}
		op.Cores = append(op.Cores, c)
		op.DRAMAddrs = append(op.DRAMAddrs, b.Addr+x.offsets[i])
	}
	if err := op.Validate(x.sys.inner.Cfg.PIM); err != nil {
		return core.Op{}, err
	}
	return op, nil
}

// PushToPIM executes the staged DRAM->PIM transfer: bytesPerCore bytes
// from each bound slice into the bound core's MRAM at mramOff. The
// builder is consumed.
func (x *XferBuilder) PushToPIM(bytesPerCore, mramOff uint64) (Result, error) {
	op, err := x.build(core.DRAMToPIM, bytesPerCore, mramOff)
	if err != nil {
		return Result{}, err
	}
	x.pushed = true
	for i, c := range x.cores {
		data := x.bufs[i].Data[x.offsets[i] : x.offsets[i]+bytesPerCore]
		x.sys.inner.Device.WriteMRAM(c, mramOff, data)
	}
	r := x.sys.inner.RunTransfer(op)
	return resultOf(r.Bytes, r.Duration), nil
}

// PushFromPIM executes the staged PIM->DRAM transfer: bytesPerCore bytes
// from each bound core's MRAM at mramOff into its bound slice. The
// builder is consumed.
func (x *XferBuilder) PushFromPIM(bytesPerCore, mramOff uint64) (Result, error) {
	op, err := x.build(core.PIMToDRAM, bytesPerCore, mramOff)
	if err != nil {
		return Result{}, err
	}
	x.pushed = true
	for i, c := range x.cores {
		copy(x.bufs[i].Data[x.offsets[i]:x.offsets[i]+bytesPerCore],
			x.sys.inner.Device.ReadMRAM(c, mramOff, int(bytesPerCore)))
	}
	r := x.sys.inner.RunTransfer(op)
	return resultOf(r.Bytes, r.Duration), nil
}
