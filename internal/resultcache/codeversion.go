package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

// The code-version stamp ties every cache key and entry to the code that
// produced it. Resolution order:
//
//  1. SetCodeVersion override (tests; simulating a code change in-process);
//  2. the PIMMU_CODE_VERSION environment variable (CI sets it to a hash
//     of the Go source tree, so doc-only commits keep a warm cache while
//     any code change is a guaranteed miss);
//  3. the VCS revision from Go buildinfo, when the working tree was
//     clean at build time (a dirty tree's revision does not identify the
//     code, so it falls through);
//  4. the SHA-256 of the running executable itself — always sound:
//     identical binaries compute identical results.
//
// The stamp participates in key derivation AND is embedded in every
// entry header: even a foreign or hand-copied cache directory cannot
// serve a stale payload.

var (
	codeVersionMu       sync.Mutex
	codeVersionOverride string
	codeVersionResolved string
)

// SetCodeVersion overrides the code-version stamp process-wide; the empty
// string restores automatic resolution. It is intended for tests that
// need to prove a code-version change forces a cache miss.
func SetCodeVersion(v string) {
	codeVersionMu.Lock()
	codeVersionOverride = v
	codeVersionMu.Unlock()
}

// CodeVersion reports the stamp identifying the code computing results.
func CodeVersion() string {
	codeVersionMu.Lock()
	defer codeVersionMu.Unlock()
	if codeVersionOverride != "" {
		return codeVersionOverride
	}
	if v := os.Getenv("PIMMU_CODE_VERSION"); v != "" {
		return "env:" + v
	}
	if codeVersionResolved == "" {
		codeVersionResolved = resolveCodeVersion()
	}
	return codeVersionResolved
}

// resolveCodeVersion computes the automatic stamp (buildinfo, then
// executable hash).
func resolveCodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" && modified == "false" {
			return "vcs:" + rev
		}
	}
	if sum := executableHash(); sum != "" {
		return "bin:" + sum
	}
	// Unreachable in practice (the executable is always readable on the
	// platforms we run on); a constant here keeps caching self-consistent
	// for one binary at worst.
	return "unversioned"
}

// executableHash is the SHA-256 of the running binary, or "" when it
// cannot be read.
func executableHash() string {
	path, err := os.Executable()
	if err != nil {
		return ""
	}
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	return hex.EncodeToString(h.Sum(nil))
}
