// Package resultcache is a content-addressed, on-disk cache for sweep
// results. Every simulated machine is fully deterministic (pinned by the
// determinism test tiers), so a design point's result is a pure function
// of its configuration and the code version — exactly the precondition
// for sound caching. A cache key therefore derives from three parts:
//
//   - a canonical fingerprint of the machine configuration (every
//     semantically meaningful exported field — see Canonical and
//     system.Config.Fingerprint);
//   - an op string naming the experiment operation and its non-config
//     inputs (direction, size, workload/trace identity, ...);
//   - a code-version stamp (CodeVersion): results computed by different
//     code never collide, so stale hits are impossible.
//
// Entries store the gob-encoded typed result payload behind an integrity
// checksum; corrupt, truncated or wrong-version entries are rejected on
// read and silently recomputed, mirroring internal/trace's codec
// discipline. internal/sweep consumes the store through its Cache
// interface (sweep.MapCached), which keeps hit-vs-miss invisible to
// deterministic result ordering.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"strconv"
)

// Canonical renders every exported field of v (recursively, in
// declaration order) as one "path=value" line per leaf, producing a
// stable byte encoding of a configuration struct. Renaming, adding or
// removing a field changes the encoding — deliberately conservative:
// structural drift must invalidate cache keys, never alias them.
//
// Supported leaf kinds are booleans, integers, floats and strings;
// structs, arrays and slices recurse. Any other kind (pointers, maps,
// funcs, interfaces, channels) panics: a config type growing such a field
// must make an explicit fingerprinting decision rather than silently
// escaping the key.
func Canonical(v any) []byte {
	return CanonicalMasked(v, nil)
}

// Mask names struct-field subtrees to exclude from the canonical
// encoding: result-neutral fields, proven (by determinism tests) not to
// affect the computed result. Keys are the dotted field paths Canonical
// emits ("Shards", "Mem.PIM.Channels", ...); a masked path prunes the
// whole subtree rooted there.
//
// Masking a field is a soundness claim — two configs differing only in
// masked fields share cache entries — so every mask entry must be
// backed by a test proving byte-identical results across the field's
// values, and every entry must actually match a field: a mask path that
// never matches during the walk panics, so a field rename cannot
// silently turn an exclusion into a no-op.
type Mask map[string]bool

// CanonicalMasked is Canonical with result-neutral subtrees pruned. The
// encoding of the remaining fields is unchanged, so adding a mask for
// fields at their zero/default values still changes the key only via
// the caller's schema tag, never by accident.
func CanonicalMasked(v any, mask Mask) []byte {
	var buf []byte
	matched := make(map[string]bool, len(mask))
	appendCanonical(&buf, "", reflect.ValueOf(v), mask, matched)
	for p := range mask {
		if !matched[p] {
			panic(fmt.Sprintf("resultcache: mask path %q matched no field; the field was renamed or removed", p))
		}
	}
	return buf
}

// appendCanonical walks one value, appending leaf lines to buf and
// pruning masked subtrees.
func appendCanonical(buf *[]byte, path string, v reflect.Value, mask Mask, matched map[string]bool) {
	switch v.Kind() {
	case reflect.Bool:
		appendLeaf(buf, path, strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		appendLeaf(buf, path, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		appendLeaf(buf, path, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		// Hex float formatting is exact: distinct values (including
		// signed zero and NaN payload collapses) never alias.
		f := v.Float()
		if math.IsNaN(f) {
			appendLeaf(buf, path, "NaN")
			return
		}
		appendLeaf(buf, path, strconv.FormatFloat(f, 'x', -1, 64))
	case reflect.String:
		appendLeaf(buf, path, strconv.Quote(v.String()))
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				panic(fmt.Sprintf("resultcache: unexported field %s.%s cannot be fingerprinted; export it or restructure the config", joinPath(path, t.Name()), f.Name))
			}
			fp := joinPath(path, f.Name)
			if mask[fp] {
				matched[fp] = true
				continue
			}
			appendCanonical(buf, fp, v.Field(i), mask, matched)
		}
	case reflect.Array, reflect.Slice:
		appendLeaf(buf, joinPath(path, "len"), strconv.Itoa(v.Len()))
		for i := 0; i < v.Len(); i++ {
			appendCanonical(buf, fmt.Sprintf("%s[%d]", path, i), v.Index(i), mask, matched)
		}
	default:
		panic(fmt.Sprintf("resultcache: cannot fingerprint %s field at %q; give it an explicit encoding", v.Kind(), path))
	}
}

// appendLeaf writes one "path=value" line.
func appendLeaf(buf *[]byte, path, value string) {
	*buf = append(*buf, path...)
	*buf = append(*buf, '=')
	*buf = append(*buf, value...)
	*buf = append(*buf, '\n')
}

// joinPath extends a field path.
func joinPath(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

// KeyOf derives a content-addressed key from its parts: the hex SHA-256
// of the length-prefixed part sequence (length prefixes make the
// concatenation unambiguous — no two distinct part lists collide by
// boundary shifting).
func KeyOf(parts ...string) string {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
