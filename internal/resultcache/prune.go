package resultcache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// PruneStats counts what one Prune pass did.
type PruneStats struct {
	Scanned int // entry files examined
	Pruned  int // stale entries deleted
	Kept    int // entries matching the kept code version
	Skipped int // .prc files that are not valid entries, left untouched
}

// String renders the counters in one line.
func (s PruneStats) String() string {
	return fmt.Sprintf("scanned %d entries: pruned %d stale, kept %d, skipped %d invalid",
		s.Scanned, s.Pruned, s.Kept, s.Skipped)
}

// Prune garbage-collects a cache directory: every entry whose embedded
// code version differs from keepVersion is deleted — those entries can
// never hit again under the current build, only accumulate. Prune only
// considers files with the entry suffix whose header parses as a valid
// entry; anything else in the directory (foreign files, temp files,
// corrupt data) is left untouched and counted as skipped, so pointing
// -cache-gc at the wrong directory cannot destroy it.
func Prune(dir, keepVersion string) (PruneStats, error) {
	var st PruneStats
	files, err := os.ReadDir(dir)
	if err != nil {
		return st, fmt.Errorf("resultcache: prune: %w", err)
	}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), entrySuffix) {
			continue
		}
		st.Scanned++
		path := filepath.Join(dir, f.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			st.Skipped++
			continue
		}
		cv, err := entryCodeVersion(data)
		if err != nil {
			st.Skipped++
			continue
		}
		if cv == keepVersion {
			st.Kept++
			continue
		}
		if err := os.Remove(path); err != nil {
			return st, fmt.Errorf("resultcache: prune: %w", err)
		}
		st.Pruned++
	}
	return st, nil
}

// entryCodeVersion parses just enough of an entry file to report the
// code version it was written under.
func entryCodeVersion(data []byte) (string, error) {
	if len(data) < 6 {
		return "", fmt.Errorf("resultcache: entry truncated before header")
	}
	if string(data[:4]) != entryMagic {
		return "", fmt.Errorf("resultcache: bad magic %q", data[:4])
	}
	if data[4] != entryVersion {
		return "", fmt.Errorf("resultcache: unsupported entry version %d", data[4])
	}
	if data[5] != 0 {
		return "", fmt.Errorf("resultcache: unknown flags 0x%x", data[5])
	}
	cv, _, err := readLenPrefixed(data[6:], "code version")
	if err != nil {
		return "", err
	}
	return string(cv), nil
}
