package resultcache

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// pin makes the code-version stamp deterministic for one test.
func pin(t *testing.T, v string) {
	t.Helper()
	SetCodeVersion(v)
	t.Cleanup(func() { SetCodeVersion("") })
}

func TestStoreRoundTrip(t *testing.T) {
	pin(t, "v-test")
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "round-trip")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty store")
	}
	payload := []byte("the computed result")
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Rejected != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesRead != uint64(len(payload)) || st.BytesWritten != uint64(len(payload)) {
		t.Fatalf("byte counters = %+v", st)
	}
}

// entryFile locates the single entry file of a store directory.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry file, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestStoreRejectsCorruptEntries(t *testing.T) {
	pin(t, "v-test")
	dir := t.TempDir()
	s, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "corruption")
	payload := []byte("payload bytes that matter")
	s.Put(key, payload)
	path := entryFile(t, dir)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func() {
		if err := os.WriteFile(path, pristine, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	expectMiss := func(what string) {
		t.Helper()
		if got, ok := s.Get(key); ok {
			t.Fatalf("%s: Get returned %q, want rejection", what, got)
		}
	}

	// Truncation at every byte boundary must reject, never crash or
	// serve a partial payload.
	for cut := 0; cut < len(pristine); cut++ {
		if err := os.WriteFile(path, pristine[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		expectMiss("truncated")
	}
	// A flipped bit anywhere must reject: in the header, the embedded
	// key, the payload, or the checksum.
	for _, pos := range []int{0, 4, 5, 8, len(pristine) / 2, len(pristine) - 1} {
		restore()
		mutated := append([]byte(nil), pristine...)
		mutated[pos] ^= 0x40
		if err := os.WriteFile(path, mutated, 0o666); err != nil {
			t.Fatal(err)
		}
		expectMiss("bit flip")
	}
	// The pristine bytes still hit afterwards.
	restore()
	if got, ok := s.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("pristine entry = %q, %v", got, ok)
	}
	if rej := s.Stats().Rejected; rej == 0 {
		t.Fatal("rejections not counted")
	}
	// Recompute-and-overwrite repairs the entry.
	mutated := append([]byte(nil), pristine...)
	mutated[len(mutated)-1] ^= 1
	if err := os.WriteFile(path, mutated, 0o666); err != nil {
		t.Fatal(err)
	}
	expectMiss("checksum flip")
	s.Put(key, payload)
	if got, ok := s.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("after repair = %q, %v", got, ok)
	}
}

func TestStoreRejectsStaleCodeVersion(t *testing.T) {
	pin(t, "v-old")
	dir := t.TempDir()
	s, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "stale")
	s.Put(key, []byte("old result"))
	if _, ok := s.Get(key); !ok {
		t.Fatal("same-version entry should hit")
	}
	SetCodeVersion("v-new")
	if got, ok := s.Get(key); ok {
		t.Fatalf("stale entry served: %q", got)
	}
	// The new version overwrites and hits again.
	s.Put(key, []byte("new result"))
	if got, ok := s.Get(key); !ok || string(got) != "new result" {
		t.Fatalf("after overwrite = %q, %v", got, ok)
	}
}

func TestStoreReadOnlyNeverWrites(t *testing.T) {
	pin(t, "v-test")
	dir := t.TempDir()
	rw, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "ro")
	rw.Put(key, []byte("shared"))

	ro, err := Open(dir, ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := ro.Get(key); !ok || string(got) != "shared" {
		t.Fatalf("ro Get = %q, %v", got, ok)
	}
	ro.Put(KeyOf("test", "ro2"), []byte("must not land"))
	if st := ro.Stats(); st.Stores != 0 || st.BytesWritten != 0 {
		t.Fatalf("read-only store wrote: %+v", st)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil || len(entries) != 1 {
		t.Fatalf("directory gained entries: %v", entries)
	}
	// A read-only store over a missing directory just misses.
	ro2, err := Open(filepath.Join(dir, "missing"), ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ro2.Get(key); ok {
		t.Fatal("hit from a missing directory")
	}
}

func TestOpenOffAndNilStore(t *testing.T) {
	for _, tc := range []struct {
		dir  string
		mode Mode
	}{{"", ReadWrite}, {"somewhere", Off}, {"", Off}} {
		s, err := Open(tc.dir, tc.mode)
		if err != nil || s != nil {
			t.Fatalf("Open(%q, %v) = %v, %v; want nil, nil", tc.dir, tc.mode, s, err)
		}
	}
	// All methods are nil-safe: caching off is one code path, not a
	// caller-side branch.
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("k", []byte("x"))
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{"off": Off, "rw": ReadWrite, "ro": ReadOnly} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	pin(t, "v-test")
	s, err := Open(t.TempDir(), ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one key and several distinct keys from many goroutines: the
	// atomic-rename discipline must never let a reader observe a torn
	// entry.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shared := KeyOf("shared")
			own := KeyOf("own", strings.Repeat("x", w+1))
			payload := []byte(strings.Repeat("p", 128))
			for i := 0; i < 50; i++ {
				s.Put(shared, payload)
				if got, ok := s.Get(shared); ok && string(got) != string(payload) {
					t.Errorf("torn shared entry: %d bytes", len(got))
					return
				}
				s.Put(own, payload)
				if got, ok := s.Get(own); !ok || string(got) != string(payload) {
					t.Errorf("own entry lost: %v", ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestKeyOfBoundaries(t *testing.T) {
	// Length prefixes make part boundaries unambiguous.
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("boundary shift collided")
	}
	if KeyOf("a", "") == KeyOf("a") {
		t.Fatal("empty trailing part collided")
	}
	if KeyOf("a", "b") != KeyOf("a", "b") {
		t.Fatal("KeyOf not deterministic")
	}
}

func TestCanonical(t *testing.T) {
	type inner struct {
		N int
		S string
	}
	type cfg struct {
		A    bool
		B    int64
		C    uint32
		D    float64
		In   inner
		List [2]int
	}
	v := cfg{A: true, B: -7, C: 9, D: 0.5, In: inner{N: 1, S: "x"}, List: [2]int{3, 4}}
	a := string(Canonical(v))
	if a != string(Canonical(v)) {
		t.Fatal("Canonical not deterministic")
	}
	for _, want := range []string{"A=true", "B=-7", "C=9", "In.N=1", `In.S="x"`, "List.len=2", "List[1]=4"} {
		if !strings.Contains(a, want) {
			t.Fatalf("Canonical missing %q in:\n%s", want, a)
		}
	}
	// Every field perturbation changes the encoding.
	mut := v
	mut.D = 0.25
	if string(Canonical(mut)) == a {
		t.Fatal("float change aliased")
	}
	// Unsupported kinds fail loudly rather than silently escaping the key.
	defer func() {
		if recover() == nil {
			t.Fatal("map field did not panic")
		}
	}()
	Canonical(struct{ M map[string]int }{})
}

func TestCanonicalMasked(t *testing.T) {
	type inner struct {
		N int
		S string
	}
	type cfg struct {
		A  int
		In inner
		B  int
	}
	v := cfg{A: 1, In: inner{N: 2, S: "x"}, B: 3}

	// A nil mask is plain Canonical.
	if string(CanonicalMasked(v, nil)) != string(Canonical(v)) {
		t.Fatal("nil mask diverged from Canonical")
	}

	// Masking a leaf removes exactly that line; two values differing
	// only there now encode identically.
	mask := Mask{"B": true}
	a := string(CanonicalMasked(v, mask))
	if strings.Contains(a, "B=") {
		t.Fatalf("masked leaf still encoded:\n%s", a)
	}
	if !strings.Contains(a, "A=1") || !strings.Contains(a, "In.N=2") {
		t.Fatalf("mask pruned unrelated fields:\n%s", a)
	}
	mut := v
	mut.B = 99
	if string(CanonicalMasked(mut, mask)) != a {
		t.Fatal("values differing only in a masked field encode differently")
	}

	// Masking an interior field prunes its whole subtree.
	sub := string(CanonicalMasked(v, Mask{"In": true}))
	if strings.Contains(sub, "In.") {
		t.Fatalf("masked subtree still encoded:\n%s", sub)
	}

	// A mask path that matches nothing is a soundness bug (a renamed
	// field would silently re-enter the key): it must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("stale mask path did not panic")
		}
	}()
	CanonicalMasked(v, Mask{"Gone": true})
}

func TestCodeVersionOverrides(t *testing.T) {
	pin(t, "explicit")
	if got := CodeVersion(); got != "explicit" {
		t.Fatalf("override ignored: %q", got)
	}
	SetCodeVersion("")
	t.Setenv("PIMMU_CODE_VERSION", "src-hash")
	if got := CodeVersion(); got != "env:src-hash" {
		t.Fatalf("env stamp = %q", got)
	}
	t.Setenv("PIMMU_CODE_VERSION", "")
	auto := CodeVersion()
	if auto == "" || auto == "unversioned" {
		t.Fatalf("automatic stamp unresolved: %q", auto)
	}
	if auto != CodeVersion() {
		t.Fatal("automatic stamp unstable")
	}
}
