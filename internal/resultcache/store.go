package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// The on-disk entry format, version 1 (one file per key, named
// "<key>.prc"):
//
//	offset  bytes  field
//	0       4      magic "PMRC"
//	4       1      version (1)
//	5       1      flags (0, reserved)
//	6       -      uvarint code-version length, code-version bytes
//	...     -      uvarint key length, key bytes (must match the filename)
//	...     -      uvarint payload length, payload bytes
//	...     32     SHA-256 of the payload
//
// Get rejects — and counts as a miss — any entry that is truncated,
// carries the wrong magic/version/flags, names a different key, was
// written by a different code version, or whose payload fails the
// checksum. Rejection is silent by design: the caller recomputes and
// overwrites, exactly as if the entry had never existed.

// entryMagic identifies a result-cache entry file.
const entryMagic = "PMRC"

// entryVersion is the current entry format version.
const entryVersion = 1

// entrySuffix is the entry filename extension.
const entrySuffix = ".prc"

// Mode selects how a Store touches the disk.
type Mode int

const (
	// Off disables the cache entirely (Open returns a nil Store).
	Off Mode = iota
	// ReadWrite serves hits and persists new results.
	ReadWrite
	// ReadOnly serves hits but never writes — for sharing a cache
	// directory that something else (CI) owns.
	ReadOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case ReadWrite:
		return "rw"
	case ReadOnly:
		return "ro"
	}
	return "unknown"
}

// ParseMode parses the CLI spelling of a cache mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "rw":
		return ReadWrite, nil
	case "ro":
		return ReadOnly, nil
	}
	return 0, fmt.Errorf("resultcache: unknown cache mode %q (want off, rw, or ro)", s)
}

// Stats counts cache events. Counters are cumulative; subtract two
// snapshots for a per-experiment delta.
type Stats struct {
	Hits     uint64 // Get served a valid entry
	Misses   uint64 // Get found nothing usable (includes Rejected)
	Rejected uint64 // entries present but corrupt/truncated/stale
	Stores   uint64 // Put persisted an entry
	Errors   uint64 // Put failed (cache stays best-effort; results are unaffected)

	BytesRead    uint64 // payload bytes served from hits
	BytesWritten uint64 // payload bytes persisted by stores
}

// Sub reports the counter delta s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Rejected:     s.Rejected - prev.Rejected,
		Stores:       s.Stores - prev.Stores,
		Errors:       s.Errors - prev.Errors,
		BytesRead:    s.BytesRead - prev.BytesRead,
		BytesWritten: s.BytesWritten - prev.BytesWritten,
	}
}

// String renders the counters in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%d rejected), %d stored, %d KiB read, %d KiB written",
		s.Hits, s.Misses, s.Rejected, s.Stores, s.BytesRead>>10, s.BytesWritten>>10)
}

// Store is a content-addressed result cache rooted at one directory. It
// is safe for concurrent use by the sweep worker pool: entries are
// written to a temporary file and atomically renamed into place, and all
// counters are atomic.
type Store struct {
	dir  string
	mode Mode

	hits, misses, rejected, stores, errors atomic.Uint64
	bytesRead, bytesWritten                atomic.Uint64
}

// Open prepares a store rooted at dir. Mode Off (or an empty dir) yields
// a nil store, which every method — and sweep.MapCached — treats as
// caching disabled. ReadWrite creates the directory; ReadOnly requires it
// to exist only when entries are actually looked up (a missing directory
// just misses).
func Open(dir string, mode Mode) (*Store, error) {
	if mode == Off || dir == "" {
		return nil, nil
	}
	if mode != ReadWrite && mode != ReadOnly {
		return nil, fmt.Errorf("resultcache: invalid mode %d", mode)
	}
	if mode == ReadWrite {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, fmt.Errorf("resultcache: creating cache dir: %w", err)
		}
	}
	return &Store{dir: dir, mode: mode}, nil
}

// OpenFlags builds a store from the CLIs' -cache-dir / -cache flag pair.
func OpenFlags(dir, mode string) (*Store, error) {
	m, err := ParseMode(mode)
	if err != nil {
		return nil, err
	}
	return Open(dir, m)
}

// Dir reports the cache root.
func (s *Store) Dir() string { return s.dir }

// Mode reports the open mode.
func (s *Store) Mode() Mode { return s.mode }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Rejected:     s.rejected.Load(),
		Stores:       s.stores.Load(),
		Errors:       s.errors.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// path is the entry file for one key.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Get looks one key up, returning the stored payload and whether a valid
// entry was found. Invalid entries (see the format comment) count as
// misses and are left for Put to overwrite.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(data, key, CodeVersion())
	if err != nil {
		s.rejected.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(payload)))
	return payload, true
}

// Put persists one result. It is best-effort: failures (full disk,
// permissions) are counted and swallowed — the computed result is
// already in hand, so caching trouble must never fail a sweep. ReadOnly
// stores never write.
func (s *Store) Put(key string, payload []byte) {
	if s == nil || s.mode == ReadOnly {
		return
	}
	if err := s.write(key, payload); err != nil {
		s.errors.Add(1)
		return
	}
	s.stores.Add(1)
	s.bytesWritten.Add(uint64(len(payload)))
}

// write encodes and atomically installs one entry: the bytes land in a
// temporary file first and rename into place only when complete, so a
// crashed or interrupted writer can leave at worst a stray temp file,
// never a torn entry under a valid name.
func (s *Store) write(key string, payload []byte) error {
	data := encodeEntry(key, CodeVersion(), payload)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// encodeEntry renders one entry file.
func encodeEntry(key, codeVersion string, payload []byte) []byte {
	buf := make([]byte, 0, 6+3*binary.MaxVarintLen64+len(codeVersion)+len(key)+len(payload)+sha256.Size)
	buf = append(buf, entryMagic...)
	buf = append(buf, entryVersion, 0)
	buf = binary.AppendUvarint(buf, uint64(len(codeVersion)))
	buf = append(buf, codeVersion...)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	return buf
}

// decodeEntry validates one entry file against the expected key and code
// version and returns its payload.
func decodeEntry(data []byte, wantKey, wantCodeVersion string) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("resultcache: entry truncated before header")
	}
	if string(data[:4]) != entryMagic {
		return nil, fmt.Errorf("resultcache: bad magic %q", data[:4])
	}
	if data[4] != entryVersion {
		return nil, fmt.Errorf("resultcache: unsupported entry version %d (have %d)", data[4], entryVersion)
	}
	if data[5] != 0 {
		return nil, fmt.Errorf("resultcache: unknown flags 0x%x", data[5])
	}
	rest := data[6:]
	codeVersion, rest, err := readLenPrefixed(rest, "code version")
	if err != nil {
		return nil, err
	}
	if string(codeVersion) != wantCodeVersion {
		return nil, fmt.Errorf("resultcache: stale entry (code version %q, want %q)", codeVersion, wantCodeVersion)
	}
	key, rest, err := readLenPrefixed(rest, "key")
	if err != nil {
		return nil, err
	}
	if string(key) != wantKey {
		return nil, fmt.Errorf("resultcache: entry names key %q, want %q", key, wantKey)
	}
	payload, rest, err := readLenPrefixed(rest, "payload")
	if err != nil {
		return nil, err
	}
	if len(rest) != sha256.Size {
		return nil, fmt.Errorf("resultcache: checksum truncated (%d trailing bytes, want %d)", len(rest), sha256.Size)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(rest) {
		return nil, fmt.Errorf("resultcache: payload checksum mismatch")
	}
	return payload, nil
}

// readLenPrefixed consumes one uvarint-length-prefixed field.
func readLenPrefixed(data []byte, what string) (field, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, nil, fmt.Errorf("resultcache: %s length truncated", what)
	}
	data = data[used:]
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("resultcache: %s truncated (%d bytes, want %d)", what, len(data), n)
	}
	return data[:n], data[n:], nil
}
