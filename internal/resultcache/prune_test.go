package resultcache

import (
	"os"
	"path/filepath"
	"testing"
)

// putAs writes one valid entry under the given code version.
func putAs(t *testing.T, dir, version, key string, payload []byte) {
	t.Helper()
	SetCodeVersion(version)
	defer SetCodeVersion("")
	s, err := Open(dir, ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key, payload)
	if st := s.Stats(); st.Stores != 1 {
		t.Fatalf("Put did not store: %v", st)
	}
}

func TestPruneMixedVersions(t *testing.T) {
	dir := t.TempDir()
	putAs(t, dir, "v-old", "stale1", []byte("a"))
	putAs(t, dir, "v-old", "stale2", []byte("b"))
	putAs(t, dir, "v-new", "fresh", []byte("c"))

	st, err := Prune(dir, "v-new")
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 3 || st.Pruned != 2 || st.Kept != 1 || st.Skipped != 0 {
		t.Fatalf("Prune stats = %+v, want scanned 3, pruned 2, kept 1", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "fresh"+entrySuffix)); err != nil {
		t.Errorf("current-version entry deleted: %v", err)
	}
	for _, k := range []string{"stale1", "stale2"} {
		if _, err := os.Stat(filepath.Join(dir, k+entrySuffix)); !os.IsNotExist(err) {
			t.Errorf("stale entry %q not deleted (err=%v)", k, err)
		}
	}

	// A second pass finds nothing left to prune.
	st, err = Prune(dir, "v-new")
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 0 || st.Kept != 1 {
		t.Fatalf("second Prune stats = %+v, want pruned 0, kept 1", st)
	}
}

// Prune must refuse to delete anything that is not a valid entry: a
// foreign file that merely carries the suffix, and files without the
// suffix entirely — pointing the GC at the wrong directory must be
// harmless.
func TestPruneRefusesNonEntries(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "notes"+entrySuffix)
	if err := os.WriteFile(foreign, []byte("not a PMRC entry"), 0o666); err != nil {
		t.Fatal(err)
	}
	unrelated := filepath.Join(dir, "README.md")
	if err := os.WriteFile(unrelated, []byte("# docs"), 0o666); err != nil {
		t.Fatal(err)
	}
	putAs(t, dir, "v-old", "stale", []byte("x"))

	st, err := Prune(dir, "v-new")
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 2 || st.Pruned != 1 || st.Skipped != 1 {
		t.Fatalf("Prune stats = %+v, want scanned 2, pruned 1, skipped 1", st)
	}
	for _, p := range []string{foreign, unrelated} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("Prune touched non-entry %s: %v", p, err)
		}
	}
}

func TestPruneMissingDir(t *testing.T) {
	if _, err := Prune(filepath.Join(t.TempDir(), "nope"), "v"); err == nil {
		t.Error("Prune on a missing directory did not error")
	}
}
