package dram

import (
	"testing"

	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = addrmap.Geometry{
		Channels: 2, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 1024, Cols: 128,
	}
	return cfg
}

// driver feeds a fixed list of (loc, kind) requests into one channel with
// unbounded retry, and records completion times.
type driver struct {
	eng       *sim.Engine
	ch        *Channel
	completed int
	lastDone  clock.Picos
}

func (d *driver) issueAll(locs []addrmap.Loc, kind mem.Kind) {
	var next func(i int)
	next = func(i int) {
		if i >= len(locs) {
			return
		}
		r := &mem.Req{Kind: kind, OnDone: func(now clock.Picos) {
			d.completed++
			if now > d.lastDone {
				d.lastDone = now
			}
		}}
		if d.ch.TryEnqueue(r, locs[i]) {
			next(i + 1)
			return
		}
		d.ch.WaitSpace(func() { next(i) })
	}
	next(0)
}

func seqLocs(n int, bankStride bool) []addrmap.Loc {
	locs := make([]addrmap.Loc, n)
	for i := range locs {
		if bankStride {
			// Rotate bank groups and banks per request, row 0: the pattern
			// a fine-grained MLP mapping produces.
			locs[i] = addrmap.Loc{
				BankGroup: i % 4,
				Bank:      (i / 4) % 4,
				Rank:      (i / 16) % 2,
				Row:       i / 32 / 128,
				Col:       (i / 32) % 128,
			}
		} else {
			// Stream within a single bank: col, then row — the pattern a
			// locality-centric mapping produces.
			locs[i] = addrmap.Loc{Row: i / 128, Col: i % 128}
		}
	}
	return locs
}

func TestIdleReadLatency(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	d := MustNew(eng, cfg, "dram")
	var doneAt clock.Picos
	r := &mem.Req{Kind: mem.Read, OnDone: func(now clock.Picos) { doneAt = now }}
	if !d.Channel(0).TryEnqueue(r, addrmap.Loc{Row: 3, Col: 5}) {
		t.Fatal("enqueue failed on empty controller")
	}
	eng.Run()
	tm := cfg.Timing
	wantCycles := int64(tm.RCD + tm.CL + tm.BL)
	want := tm.Domain().Duration(wantCycles)
	if doneAt != want {
		t.Errorf("idle read latency = %v (%d cycles), want %v (%d cycles)",
			doneAt, tm.Domain().Cycles(doneAt), want, wantCycles)
	}
	st := d.Channel(0).Stats()
	if st.Reads != 1 || st.Acts != 1 || st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("stats = %+v, want 1 read, 1 act, 1 row miss", st)
	}
}

func TestRowHitIsCountedAndFaster(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	d := MustNew(eng, cfg, "dram")
	ch := d.Channel(0)
	var first, second clock.Picos
	r1 := &mem.Req{Kind: mem.Read, OnDone: func(now clock.Picos) { first = now }}
	r2 := &mem.Req{Kind: mem.Read, OnDone: func(now clock.Picos) { second = now }}
	ch.TryEnqueue(r1, addrmap.Loc{Row: 7, Col: 0})
	ch.TryEnqueue(r2, addrmap.Loc{Row: 7, Col: 1})
	eng.Run()
	tm := cfg.Timing
	// Second access is a row hit: separated by tCCD_L only.
	gap := tm.Domain().Cycles(second - first)
	if gap != int64(tm.CCDL) {
		t.Errorf("row-hit gap = %d cycles, want tCCD_L = %d", gap, tm.CCDL)
	}
	st := ch.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.RowHits, st.RowMisses)
	}
}

func TestRowConflictForcesPrecharge(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	d := MustNew(eng, cfg, "dram")
	ch := d.Channel(0)
	done := 0
	cb := func(clock.Picos) { done++ }
	ch.TryEnqueue(&mem.Req{Kind: mem.Read, OnDone: cb}, addrmap.Loc{Row: 1, Col: 0})
	ch.TryEnqueue(&mem.Req{Kind: mem.Read, OnDone: cb}, addrmap.Loc{Row: 2, Col: 0})
	eng.Run()
	st := ch.Stats()
	if done != 2 {
		t.Fatalf("completed %d of 2 requests", done)
	}
	// Exactly one conflict precharge during service (later refresh
	// housekeeping may close the final open row, adding another PRE).
	if st.Pres < 1 || st.RowConflicts != 1 {
		t.Errorf("pres=%d conflicts=%d, want >=1 and exactly 1", st.Pres, st.RowConflicts)
	}
}

// Streaming row-hit reads to a single bank are limited by tCCD_L: the
// sustained rate must be one 64B line per tCCD_L cycles.
func TestSingleBankStreamBandwidth(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 2000
	dr.issueAll(seqLocs(n, false), mem.Read)
	eng.Run()
	if dr.completed != n {
		t.Fatalf("completed %d of %d", dr.completed, n)
	}
	tm := cfg.Timing
	cycles := tm.Domain().Cycles(dr.lastDone)
	perLine := float64(cycles) / n
	if perLine < float64(tm.CCDL)*0.98 || perLine > float64(tm.CCDL)*1.15 {
		t.Errorf("single-bank stream: %.2f cycles/line, want ~tCCD_L=%d", perLine, tm.CCDL)
	}
}

// Bank-group-interleaved streaming must reach the channel's peak: one line
// per tBL cycles (~19.2 GB/s on DDR4-2400).
func TestInterleavedStreamReachesPeak(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 4000
	dr.issueAll(seqLocs(n, true), mem.Read)
	eng.Run()
	if dr.completed != n {
		t.Fatalf("completed %d of %d", dr.completed, n)
	}
	tm := cfg.Timing
	cycles := tm.Domain().Cycles(dr.lastDone)
	perLine := float64(cycles) / n
	if perLine > float64(tm.BL)*1.10 {
		t.Errorf("interleaved stream: %.2f cycles/line, want ~tBL=%d (peak)", perLine, tm.BL)
	}
}

// Writes to interleaved banks must also stream at near peak.
func TestInterleavedWriteBandwidth(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 4000
	dr.issueAll(seqLocs(n, true), mem.Write)
	eng.Run()
	if dr.completed != n {
		t.Fatalf("completed %d of %d", dr.completed, n)
	}
	tm := cfg.Timing
	perLine := float64(tm.Domain().Cycles(dr.lastDone)) / n
	if perLine > float64(tm.BL)*1.15 {
		t.Errorf("interleaved writes: %.2f cycles/line, want ~tBL=%d", perLine, tm.BL)
	}
}

// Strictly dependent accesses that alternate rows in one bank are limited
// by the row cycle: each access needs PRE+ACT+CAS of a fresh row.
// (With a deep queue FR-FCFS would legally coalesce the hits, so this test
// serializes: each request is issued only after the previous completes.)
func TestSameBankRowThrashingLimitedByTRC(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	const n = 100
	var lastDone clock.Picos
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		r := &mem.Req{Kind: mem.Read, OnDone: func(now clock.Picos) {
			lastDone = now
			issue(i + 1)
		}}
		ch.TryEnqueue(r, addrmap.Loc{Row: i % 2 * 100, Col: 0})
	}
	issue(0)
	eng.Run()
	tm := cfg.Timing
	perLine := float64(tm.Domain().Cycles(lastDone)) / n
	// Each serialized conflict access costs at least tRP+tRCD+CL+BL.
	minCost := float64(tm.RP + tm.RCD + tm.CL + tm.BL)
	if perLine < minCost*0.95 {
		t.Errorf("row-thrash rate %.2f cycles/access violates PRE+ACT+CAS = %.0f", perLine, minCost)
	}
}

// The queue must reject request #65 and fire WaitSpace when draining.
func TestQueueBackpressure(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	// Fill beyond capacity without running the engine.
	accepted := 0
	for i := 0; i < cfg.QueueDepth+10; i++ {
		r := &mem.Req{Kind: mem.Read}
		if ch.TryEnqueue(r, addrmap.Loc{Row: 0, Col: i % 128}) {
			accepted++
		}
	}
	if accepted != cfg.QueueDepth {
		t.Fatalf("accepted %d requests, want %d", accepted, cfg.QueueDepth)
	}
	if ch.Stats().QueueFull != 10 {
		t.Errorf("QueueFull = %d, want 10", ch.Stats().QueueFull)
	}
	woke := false
	ch.WaitSpace(func() { woke = true })
	eng.Run()
	if !woke {
		t.Error("WaitSpace callback never fired")
	}
}

// Refresh: during a long busy stretch, each rank must issue one REF per
// tREFI on average, and no starvation may occur.
func TestRefreshRate(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 60000 // ~50 us of traffic at peak
	dr.issueAll(seqLocs(n, true), mem.Read)
	eng.Run()
	st := ds.Channel(0).Stats()
	dur := dr.lastDone
	tm := cfg.Timing
	wantRefs := float64(dur) / float64(tm.Domain().Duration(int64(tm.REFI))) * float64(cfg.Geometry.Ranks)
	if float64(st.Refs) < wantRefs*0.7 || float64(st.Refs) > wantRefs*1.3 {
		t.Errorf("refs = %d over %v, want ~%.0f", st.Refs, dur, wantRefs)
	}
	if dr.completed != n {
		t.Errorf("completed %d of %d (refresh starved requests?)", dr.completed, n)
	}
}

// tFAW: activations to many distinct banks cannot exceed 4 per tFAW window
// per rank. Issue row misses round-robin over 16 banks and verify the ACT
// rate bound holds.
func TestFAWBoundsActivationRate(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 400
	locs := make([]addrmap.Loc, n)
	for i := range locs {
		locs[i] = addrmap.Loc{
			BankGroup: i % 4, Bank: (i / 4) % 4,
			Row: i, Col: 0, // every access a fresh row => ACT each time
		}
	}
	dr.issueAll(locs, mem.Read)
	eng.Run()
	tm := cfg.Timing
	cycles := tm.Domain().Cycles(dr.lastDone)
	maxActs := float64(cycles)/float64(tm.FAW)*4 + 8
	if float64(n) > maxActs {
		t.Errorf("%d ACTs in %d cycles exceeds tFAW bound %.0f", n, cycles, maxActs)
	}
}

// Write-then-read to the same rank must respect tWTR: a read issued right
// after a write burst completes may not return its data before
// tWTR_L + CL + BL later.
func TestWriteToReadTurnaround(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	var wDone, rDone clock.Picos
	r := &mem.Req{Kind: mem.Read, OnDone: func(now clock.Picos) { rDone = now }}
	w := &mem.Req{Kind: mem.Write, OnDone: func(now clock.Picos) {
		wDone = now
		// Issue the read the moment the write burst finishes; the row is
		// still open so only turnaround constraints apply.
		ch.TryEnqueue(r, addrmap.Loc{Row: 0, Col: 1})
	}}
	ch.TryEnqueue(w, addrmap.Loc{Row: 0, Col: 0})
	eng.Run()
	tm := cfg.Timing
	minGap := tm.Domain().Duration(int64(tm.WTRL + tm.CL + tm.BL))
	if rDone-wDone < minGap {
		t.Errorf("W->R gap = %v, want >= %v (tWTR_L + CL + BL)", rDone-wDone, minGap)
	}
}

// Determinism: two identical runs must produce identical counters and
// completion times.
func TestDeterminism(t *testing.T) {
	run := func() (clock.Picos, [8]uint64) {
		eng := sim.New()
		ds := MustNew(eng, smallConfig(), "dram")
		dr := &driver{eng: eng, ch: ds.Channel(0)}
		locs := make([]addrmap.Loc, 3000)
		// Mix of hits, misses and conflicts from a pseudo-random pattern.
		x := uint64(12345)
		for i := range locs {
			x = x*6364136223846793005 + 1442695040888963407
			locs[i] = addrmap.Loc{
				Rank:      int(x>>60) & 1,
				BankGroup: int(x>>40) & 3,
				Bank:      int(x>>20) & 3,
				Row:       int(x>>10) & 1023,
				Col:       int(x) & 127,
			}
		}
		dr.issueAll(locs, mem.Read)
		eng.Run()
		st := ds.Channel(0).Stats()
		sum := [8]uint64{st.Reads, st.Acts, st.Pres, st.Refs,
			st.RowHits, st.RowMisses, st.RowConflicts, st.BytesRead}
		return dr.lastDone, sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Errorf("completion times differ: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("stats differ:\n%+v\n%+v", s1, s2)
	}
}

// Mixed read/write traffic: drain mode must bound write-queue residency so
// both kinds complete.
func TestWriteDrainServesBothKinds(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	reads, writes := 0, 0
	var issue func(i int)
	const n = 1000
	issue = func(i int) {
		if i >= n {
			return
		}
		kind := mem.Read
		if i%2 == 0 {
			kind = mem.Write
		}
		cb := func(clock.Picos) {
			if kind == mem.Read {
				reads++
			} else {
				writes++
			}
		}
		r := &mem.Req{Kind: kind, OnDone: cb}
		loc := addrmap.Loc{BankGroup: i % 4, Bank: (i / 4) % 4, Row: 0, Col: (i / 16) % 128}
		if ch.TryEnqueue(r, loc) {
			issue(i + 1)
			return
		}
		ch.WaitSpace(func() { issue(i) })
	}
	issue(0)
	eng.Run()
	if reads != n/2 || writes != n/2 {
		t.Errorf("completed %d reads, %d writes; want %d each", reads, writes, n/2)
	}
	st := ch.Stats()
	if st.BytesRead != uint64(n/2*64) || st.BytesWritten != uint64(n/2*64) {
		t.Errorf("bytes r/w = %d/%d, want %d each", st.BytesRead, st.BytesWritten, n/2*64)
	}
}

// Series stats: enabling SeriesWindow must bucket completed bytes.
func TestBandwidthSeries(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	cfg.SeriesWindow = clock.Microsecond
	ds := MustNew(eng, cfg, "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	const n = 3000
	dr.issueAll(seqLocs(n, true), mem.Read)
	eng.Run()
	s := ds.Channel(0).Stats().ReadSeries
	if s == nil {
		t.Fatal("ReadSeries not enabled")
	}
	if s.Total() != float64(n*64) {
		t.Errorf("series total = %.0f, want %d", s.Total(), n*64)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.QueueDepth = 0
	if bad.Validate() == nil {
		t.Error("QueueDepth=0 accepted")
	}
	bad = cfg
	bad.WriteDrainLo = bad.WriteDrainHi
	if bad.Validate() == nil {
		t.Error("drainLo >= drainHi accepted")
	}
	bad = cfg
	bad.Timing.RC = 1
	if bad.Validate() == nil {
		t.Error("tRC < tRAS+tRP accepted")
	}
}

func TestTimingPresets(t *testing.T) {
	for _, tm := range []Timing{DDR42400(), DDR43200()} {
		if err := tm.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	if bw := DDR42400().PeakChannelBandwidth(); bw != 19.2e9 {
		t.Errorf("DDR4-2400 peak = %v, want 19.2e9", bw)
	}
	if bw := DDR43200().PeakChannelBandwidth(); bw != 25.6e9 {
		t.Errorf("DDR4-3200 peak = %v, want 25.6e9", bw)
	}
}

func TestDeviceSetBasics(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "pim")
	if ds.Name() != "pim" {
		t.Errorf("Name = %q", ds.Name())
	}
	if len(ds.Channels()) != cfg.Geometry.Channels {
		t.Errorf("channels = %d, want %d", len(ds.Channels()), cfg.Geometry.Channels)
	}
	if !ds.Idle() {
		t.Error("fresh device set not idle")
	}
	if got := ds.PeakBandwidth(); got != 19.2e9*2 {
		t.Errorf("PeakBandwidth = %v, want 38.4e9", got)
	}
	if _, err := New(eng, Config{}, "bad"); err == nil {
		t.Error("New with zero config succeeded")
	}
}

func TestRowHitRateAccounting(t *testing.T) {
	eng := sim.New()
	ds := MustNew(eng, smallConfig(), "dram")
	dr := &driver{eng: eng, ch: ds.Channel(0)}
	dr.issueAll(seqLocs(256, false), mem.Read) // 2 rows x 128 cols
	eng.Run()
	st := ds.Channel(0).Stats()
	if hr := st.RowHitRate(); hr < 0.95 {
		t.Errorf("sequential stream row hit rate = %.3f, want > 0.95", hr)
	}
}
