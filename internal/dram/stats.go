package dram

import (
	"repro/internal/clock"
	"repro/internal/stats"
)

// ChannelStats accumulates per-channel counters. Command counts feed the
// energy model; byte counts and the optional time series feed the
// bandwidth plots (Fig. 6, Fig. 14); row-buffer counters validate the
// scheduler.
type ChannelStats struct {
	Reads  uint64 // RD commands issued
	Writes uint64 // WR commands issued
	Acts   uint64 // ACT commands issued
	Pres   uint64 // PRE commands issued
	Refs   uint64 // REF commands issued

	RowHits      uint64 // CAS served from an already-open row
	RowMisses    uint64 // CAS that required an ACT
	RowConflicts uint64 // CAS that required a PRE first

	BytesRead    uint64
	BytesWritten uint64

	QueueFull uint64 // TryEnqueue rejections

	// ReadSeries and WriteSeries, when enabled, bucket completed bytes
	// by time window.
	ReadSeries  *stats.Series
	WriteSeries *stats.Series

	// BytesBySrc splits completed bytes by the requester's SrcID.
	BytesBySrc map[int]uint64
}

func newChannelStats(window clock.Picos) *ChannelStats {
	s := &ChannelStats{BytesBySrc: make(map[int]uint64)}
	if window > 0 {
		s.ReadSeries = stats.NewSeries(window)
		s.WriteSeries = stats.NewSeries(window)
	}
	return s
}

// TotalBytes is the sum of read and written bytes.
func (s *ChannelStats) TotalBytes() uint64 { return s.BytesRead + s.BytesWritten }

// CAS is the total number of column commands.
func (s *ChannelStats) CAS() uint64 { return s.Reads + s.Writes }

// RowHitRate reports the fraction of CAS commands that hit an open row.
func (s *ChannelStats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// Stats aggregates counters over a set of channels.
type Stats struct {
	Channels []*ChannelStats
}

// BytesRead sums read bytes across channels.
func (s Stats) BytesRead() uint64 {
	var t uint64
	for _, c := range s.Channels {
		t += c.BytesRead
	}
	return t
}

// BytesWritten sums written bytes across channels.
func (s Stats) BytesWritten() uint64 {
	var t uint64
	for _, c := range s.Channels {
		t += c.BytesWritten
	}
	return t
}

// Acts sums ACT commands across channels.
func (s Stats) Acts() uint64 {
	var t uint64
	for _, c := range s.Channels {
		t += c.Acts
	}
	return t
}

// Refs sums REF commands across channels.
func (s Stats) Refs() uint64 {
	var t uint64
	for _, c := range s.Channels {
		t += c.Refs
	}
	return t
}

// CAS sums column commands across channels.
func (s Stats) CAS() uint64 {
	var t uint64
	for _, c := range s.Channels {
		t += c.CAS()
	}
	return t
}
