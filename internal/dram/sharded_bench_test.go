package dram

import (
	"fmt"
	"testing"

	"repro/internal/addrmap"
	"repro/internal/mem"
	"repro/internal/sim"
)

// benchStream drives a posted-write streaming workload across every
// channel of a device set: a host-side refiller tops the write queues up
// at a fixed cadence and the controllers drain them flat out. Posted
// writes carry no completion callback, so nearly every event is
// channel-local — the workload whose wall-clock time the sharded engine
// is built to cut. shards < 1 selects the plain serial engine.
func benchStream(b *testing.B, channels, shards int, linesPerChannel int) {
	cfg := DefaultConfig()
	cfg.Geometry.Channels = channels
	// Deep queues and a coarse refill cadence keep the host-side serial
	// fraction small, so the measurement is dominated by the per-channel
	// controller work the shards parallelize.
	cfg.QueueDepth = 512
	period := cfg.Timing.Domain().Period()
	for i := 0; i < b.N; i++ {
		var eng *sim.Engine
		if shards >= 1 {
			eng = sim.NewSharded(shards)
		} else {
			eng = sim.New()
		}
		ds := MustNew(eng, cfg, "bench")
		sent := make([]int, channels)
		cols := cfg.Geometry.Cols
		// Requests recycle through a per-channel ring comfortably larger
		// than the maximum outstanding count (queue depth + completions
		// in flight), so steady state allocates nothing.
		rings := make([][]mem.Req, channels)
		for ch := range rings {
			rings[ch] = make([]mem.Req, 2*cfg.QueueDepth)
		}
		var refill func()
		refill = func() {
			live := false
			for ch := 0; ch < channels; ch++ {
				c := ds.Channel(ch)
				for sent[ch] < linesPerChannel {
					n := sent[ch]
					req := &rings[ch][n%len(rings[ch])]
					req.Addr = uint64(n) * mem.LineBytes
					req.Kind = mem.Write
					loc := addrmap.Loc{
						Channel: ch,
						Rank:    n % cfg.Geometry.Ranks,
						Row:     n / cols % cfg.Geometry.Rows,
						Col:     n % cols,
					}
					if !c.TryEnqueue(req, loc) {
						break
					}
					sent[ch]++
				}
				if sent[ch] < linesPerChannel {
					live = true
				}
			}
			if live {
				eng.After(1024*period, refill)
			}
		}
		refill()
		eng.Run()
		var wrote uint64
		for _, c := range ds.Channels() {
			wrote += c.Stats().Writes
		}
		if want := uint64(channels * linesPerChannel); wrote != want {
			b.Fatalf("wrote %d lines, want %d", wrote, want)
		}
	}
	bytes := int64(channels * linesPerChannel * mem.LineBytes)
	b.SetBytes(bytes)
}

// BenchmarkEngineShardedChannels compares the serial engine against
// sharded execution at 2, 4 and 8 workers on an 8-channel posted-write
// stream — the speedup artifact captured into BENCH_engine.json.
func BenchmarkEngineShardedChannels(b *testing.B) {
	const channels, lines = 8, 1 << 13
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"serial", 0},
		{"shards1", 1},
		{"shards2", 2},
		{"shards4", 4},
		{"shards8", 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchStream(b, channels, cfg.shards, lines)
		})
	}
}

// TestBenchStreamDeterministic pins that the benchmark workload itself is
// shard-count invariant (command counts and final stats per channel), so
// the speedup comparison is apples to apples.
func TestBenchStreamDeterministic(t *testing.T) {
	run := func(shards int) []string {
		cfg := DefaultConfig()
		cfg.Geometry.Channels = 4
		var eng *sim.Engine
		if shards >= 1 {
			eng = sim.NewSharded(shards)
		} else {
			eng = sim.New()
		}
		ds := MustNew(eng, cfg, "bench")
		const lines = 2048
		sent := make([]int, 4)
		period := cfg.Timing.Domain().Period()
		var refill func()
		refill = func() {
			live := false
			for ch := 0; ch < 4; ch++ {
				c := ds.Channel(ch)
				for sent[ch] < lines {
					n := sent[ch]
					req := &mem.Req{Addr: uint64(n) * mem.LineBytes, Kind: mem.Write}
					loc := addrmap.Loc{
						Channel: ch,
						Rank:    n % cfg.Geometry.Ranks,
						Row:     n / cfg.Geometry.Cols % cfg.Geometry.Rows,
						Col:     n % cfg.Geometry.Cols,
					}
					if !c.TryEnqueue(req, loc) {
						break
					}
					sent[ch]++
				}
				if sent[ch] < lines {
					live = true
				}
			}
			if live {
				eng.After(128*period, refill)
			}
		}
		refill()
		eng.Run()
		var out []string
		for i, c := range ds.Channels() {
			s := c.Stats()
			out = append(out, fmt.Sprintf("ch%d w=%d acts=%d pres=%d refs=%d hits=%d conf=%d bytes=%d end=%v",
				i, s.Writes, s.Acts, s.Pres, s.Refs, s.RowHits, s.RowConflicts, s.BytesWritten, eng.Now()))
		}
		return out
	}
	want := run(0)
	for _, shards := range []int{1, 2, 4} {
		got := run(shards)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d: %s != %s", shards, got[i], want[i])
			}
		}
	}
}
