package dram

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config parameterizes one device set (one group of DIMMs behind a set of
// channels): either the conventional DRAM DIMMs or the PIM DIMMs.
type Config struct {
	// Geometry is the subsystem's dimensions.
	Geometry addrmap.Geometry
	// Timing is the DDR4 parameter set.
	Timing Timing
	// QueueDepth is the per-channel read and write request queue depth
	// (Table I: 64 entries each).
	QueueDepth int
	// WriteDrainHi/Lo are the write-queue watermarks: when the write queue
	// reaches Hi the controller switches to draining writes until it falls
	// to Lo.
	WriteDrainHi, WriteDrainLo int
	// ScanWindow caps how many queued requests the FR-FCFS scheduler
	// examines per cycle, modelling the finite pick window of a real
	// scheduler CAM.
	ScanWindow int
	// SeriesWindow, when positive, enables per-channel bandwidth time
	// series with the given bucket width.
	SeriesWindow clock.Picos
}

// DefaultConfig is the Table I memory-system configuration: DDR4-2400,
// 4 channels, 2 ranks per channel, 64-entry queues.
func DefaultConfig() Config {
	return Config{
		Geometry: addrmap.Geometry{
			Channels: 4, Ranks: 2, BankGroups: 4, Banks: 4,
			Rows: 32768, Cols: 128,
		},
		Timing:       DDR42400(),
		QueueDepth:   64,
		WriteDrainHi: 32,
		WriteDrainLo: 8,
		ScanWindow:   24,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: QueueDepth=%d must be positive", c.QueueDepth)
	}
	if c.WriteDrainHi > c.QueueDepth || c.WriteDrainLo >= c.WriteDrainHi {
		return fmt.Errorf("dram: bad drain watermarks lo=%d hi=%d depth=%d",
			c.WriteDrainLo, c.WriteDrainHi, c.QueueDepth)
	}
	if c.ScanWindow <= 0 {
		return fmt.Errorf("dram: ScanWindow=%d must be positive", c.ScanWindow)
	}
	return nil
}

// pending is a request in flight inside a channel controller. Records
// recycle through the channel's free list (freePend), so steady-state
// enqueueing allocates nothing.
type pending struct {
	req       *mem.Req
	loc       addrmap.Loc
	activated bool     // this request caused an ACT (row miss)
	conflict  bool     // this request caused a PRE (row conflict)
	next      *pending // free list
}

// bankState tracks one bank's open row and per-command earliest-issue
// cycles.
type bankState struct {
	row     int // open row, or -1
	nextACT int64
	nextRD  int64
	nextWR  int64
	nextPRE int64
}

// rankState tracks rank-scope constraints: tRRD/tFAW activation limits,
// write-to-read turnaround, tCCD_L per bank group, and refresh.
type rankState struct {
	banks     []bankState // BankGroups*Banks, bank-group major
	nextCASbg []int64     // per bank group: earliest CAS (tCCD_L)
	nextACTbg []int64     // per bank group: earliest ACT (tRRD_L)
	nextACT   int64       // earliest ACT, any bank group (tRRD_S)
	nextRDbg  []int64     // per bank group: earliest RD after WR (tWTR_L)
	nextRD    int64       // earliest RD after WR, any bank group (tWTR_S)
	faw       [4]int64    // last four ACT cycles (ring)
	fawIdx    int

	refreshDue   int64
	refreshing   bool
	refreshUntil int64
}

func (r *rankState) bank(l addrmap.Loc, banksPerGroup int) *bankState {
	return &r.banks[l.BankGroup*banksPerGroup+l.Bank]
}

func (r *rankState) allClosed() bool {
	for i := range r.banks {
		if r.banks[i].row >= 0 {
			return false
		}
	}
	return true
}

// lastCAS remembers the previous column command for data-bus turnaround
// constraints.
type lastCAS struct {
	valid bool
	cycle int64
	kind  mem.Kind
	rank  int
}

// Channel is one DDR4 channel: an FR-FCFS controller plus the ranks and
// banks behind it. All timing bookkeeping is in command-clock cycles.
//
// On a sharded engine each channel schedules on its own event lane — the
// topology lane "<set>:<id>" ("dram:0", "pim:3") when the engine was
// built from a topology, a dynamically claimed lane otherwise. The
// channel's only crossing edge is toward the host (the memory system
// that enqueued the request): a data burst follows its column command by
// min(CL,CWL)+BL, so that is the edge's minimum latency and the lane's
// conservative lookahead. The scheduler tick and data-burst completions
// are lane-local unless they can touch the outside world (queue-space
// waiters to notify, a completion callback to invoke), which is what
// lets independent channels simulate in parallel inside a conservative
// window. Everything the channel mutates — queues, bank state, stats,
// its observer — belongs to the channel, so the per-channel Observer
// must not be shared across channels of a sharded machine.
type Channel struct {
	sched sim.Scheduler
	cfg   Config
	dom   clock.Domain
	id    int
	name  string

	ranks   []*rankState
	readQ   []*pending
	writeQ  []*pending
	drain   bool
	last    lastCAS
	nextCAS int64 // channel scope: tCCD_S

	tickEv   sim.Event // the channel's one standing scheduler-tick event
	lastTick int64     // last cycle the scheduler ran (one command per cycle)
	waiters  []func()
	observer Observer

	// cbQueued counts queued requests carrying a completion callback.
	// While it is zero and no waiters are registered, nothing the channel
	// does can schedule a crossing event, and its shard lane may run
	// without a lookahead cap (posted-write streams, writeback drains).
	cbQueued int

	// prepMark/prepGen are the scheduler's allocation-free per-tick
	// scratch: prepMark[rank*banks+bank] == prepGen marks a bank already
	// owned by an older request in the current scan.
	prepMark []uint64
	prepGen  uint64

	// freeComp recycles data-burst completion records so the per-command
	// completion path performs no event allocation.
	freeComp *completion

	// freePend recycles pending records (see pending).
	freePend *pending

	stats *ChannelStats
}

func newChannel(eng *sim.Engine, cfg Config, id int, name string) *Channel {
	// Prefer the topology-declared lane; fall back to a dynamically
	// claimed one (plain NewSharded engines, unit tests) with the same
	// command-to-data lookahead. On a serial engine both paths resolve to
	// the engine itself.
	sched, ok := eng.Lane(fmt.Sprintf("%s:%d", name, id))
	if !ok {
		sched = eng.NewLane(cfg.Timing.MinCrossLatency())
	}
	c := &Channel{
		sched:    sched,
		cfg:      cfg,
		dom:      cfg.Timing.Domain(),
		id:       id,
		name:     name,
		lastTick: -1,
		stats:    newChannelStats(cfg.SeriesWindow),
	}
	c.tickEv.Init(sim.HandlerFunc(c.tick))
	c.updateCrossingFree()
	nBanks := cfg.Geometry.BankGroups * cfg.Geometry.Banks
	c.prepMark = make([]uint64, cfg.Geometry.Ranks*nBanks)
	for r := 0; r < cfg.Geometry.Ranks; r++ {
		rs := &rankState{
			banks:      make([]bankState, nBanks),
			nextCASbg:  make([]int64, cfg.Geometry.BankGroups),
			nextACTbg:  make([]int64, cfg.Geometry.BankGroups),
			nextRDbg:   make([]int64, cfg.Geometry.BankGroups),
			refreshDue: int64(cfg.Timing.REFI),
		}
		for i := range rs.banks {
			rs.banks[i].row = -1
		}
		// The tFAW window starts empty: pre-age the ring so the first four
		// activations are unconstrained.
		for i := range rs.faw {
			rs.faw[i] = -int64(cfg.Timing.FAW)
		}
		c.ranks = append(c.ranks, rs)
	}
	return c
}

// ID reports the channel index within its device set.
func (c *Channel) ID() int { return c.id }

// Stats exposes the channel's counters.
func (c *Channel) Stats() *ChannelStats { return c.stats }

// QueueLen reports current read and write queue occupancy.
func (c *Channel) QueueLen() (reads, writes int) {
	return len(c.readQ), len(c.writeQ)
}

// TryEnqueue places a decoded request in the appropriate queue. It reports
// false when that queue is full; the caller should register a WaitSpace
// callback and retry.
func (c *Channel) TryEnqueue(r *mem.Req, loc addrmap.Loc) bool {
	q := &c.readQ
	if r.Kind == mem.Write {
		q = &c.writeQ
	}
	if len(*q) >= c.cfg.QueueDepth {
		c.stats.QueueFull++
		return false
	}
	if len(c.readQ) == 0 && len(c.writeQ) == 0 {
		// Traffic resuming after an idle gap: the refreshes of that gap
		// happened invisibly, so bring the bookkeeping forward instead of
		// serially replaying them.
		c.catchUpRefresh(c.dom.Cycles(c.sched.Now()))
	}
	r.Enqueued = c.sched.Now()
	p := c.freePend
	if p == nil {
		p = &pending{}
	} else {
		c.freePend = p.next
	}
	*p = pending{req: r, loc: loc}
	*q = append(*q, p)
	if r.OnDone != nil {
		if c.cbQueued++; c.cbQueued == 1 {
			c.updateCrossingFree()
		}
	}
	c.kick()
	return true
}

// updateCrossingFree tells the channel's lane whether any future action
// could schedule a crossing event.
func (c *Channel) updateCrossingFree() {
	c.sched.SetCrossingFree(c.cbQueued == 0 && len(c.waiters) == 0)
}

// catchUpRefresh skips refresh intervals that elapsed while the channel
// was idle with all banks closed.
func (c *Channel) catchUpRefresh(cyc int64) {
	for _, r := range c.ranks {
		if !r.refreshing && r.allClosed() && r.refreshDue <= cyc {
			n := (cyc-r.refreshDue)/int64(c.cfg.Timing.REFI) + 1
			r.refreshDue += n * int64(c.cfg.Timing.REFI)
		}
	}
}

// WaitSpace registers a one-shot callback fired when queue space frees up.
// A waiter makes the next scheduler tick externally visible (it will
// notify host-side code), so any standing tick is promoted to a crossing
// event on sharded engines.
func (c *Channel) WaitSpace(fn func()) {
	c.waiters = append(c.waiters, fn)
	c.sched.Promote(&c.tickEv)
	c.updateCrossingFree()
}

func (c *Channel) notifySpace() {
	if len(c.waiters) == 0 {
		return
	}
	ws := c.waiters
	c.waiters = nil
	c.updateCrossingFree()
	for _, fn := range ws {
		fn()
	}
}

// kick schedules a scheduler tick at the next cycle boundary. If the
// standing tick event is already pending at a later time (for example a
// distant refresh deadline), it is pulled forward in place.
func (c *Channel) kick() {
	c.kickAt(c.dom.Align(c.sched.Now()))
}

// kickAtCycle schedules a tick at an absolute cycle.
func (c *Channel) kickAtCycle(cyc int64) {
	c.kickAt(c.dom.Duration(cyc))
}

func (c *Channel) kickAt(t clock.Picos) {
	// Never re-enter a cycle the scheduler already ran: one command per
	// command-clock cycle.
	if min := c.dom.Duration(c.lastTick + 1); t < min {
		t = min
	}
	if c.tickEv.Scheduled() && c.tickEv.When() <= t {
		return
	}
	// A tick with no waiters touches only channel state; with waiters it
	// will call back into host-side code (notifySpace).
	if len(c.waiters) == 0 {
		c.sched.ScheduleLocal(&c.tickEv, t)
	} else {
		c.sched.Schedule(&c.tickEv, t)
	}
}

func (c *Channel) tick(now clock.Picos) {
	cyc := c.dom.Cycles(now)
	if cyc <= c.lastTick {
		return // defensive: one command per command-clock cycle
	}
	c.lastTick = cyc
	issued, wake := c.tryIssue(cyc)
	switch {
	case issued:
		// One command per cycle: try again next cycle.
		c.kickAtCycle(cyc + 1)
	case wake != never:
		c.kickAtCycle(wake)
	default:
		// Idle. Fast-forward refresh bookkeeping so a long idle span does
		// not accumulate a refresh debt (the refreshes happen invisibly
		// while no traffic is queued and all banks are closed).
		if len(c.readQ) == 0 && len(c.writeQ) == 0 {
			c.catchUpRefresh(cyc)
		}
	}
}
