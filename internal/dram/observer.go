package dram

import "fmt"

// Cmd identifies a DDR4 command for observers.
type Cmd int

// The command kinds the controller issues.
const (
	CmdACT Cmd = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

func (c Cmd) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	}
	return "?"
}

// CmdEvent is one issued command, reported at its issue cycle.
type CmdEvent struct {
	Cycle   int64
	Cmd     Cmd
	Rank    int
	Bank    int // flattened bank-group-major index within the rank; -1 for REF
	BankGrp int // -1 for REF
	Row     int // ACT/RD/WR; -1 otherwise
	Col     int // RD/WR; -1 otherwise
}

func (e CmdEvent) String() string {
	return fmt.Sprintf("%8d %-3s ra%d bg%d bk%d ro%d co%d",
		e.Cycle, e.Cmd, e.Rank, e.BankGrp, e.Bank, e.Row, e.Col)
}

// Observer receives every command a channel issues, in issue order. Used
// by the protocol checker and the trace dumper; nil observers cost
// nothing.
type Observer interface {
	Command(ch int, e CmdEvent)
}

// Observe attaches an observer to the channel (replacing any previous
// one).
func (c *Channel) Observe(o Observer) { c.observer = o }

func (c *Channel) emit(e CmdEvent) {
	if c.observer != nil {
		c.observer.Command(c.id, e)
	}
}

// emitCAS reports a column command.
func (c *Channel) emitCAS(p *pending, cyc int64, cmd Cmd) {
	if c.observer == nil {
		return
	}
	c.emit(CmdEvent{Cycle: cyc, Cmd: cmd, Rank: p.loc.Rank,
		BankGrp: p.loc.BankGroup, Bank: p.loc.Bank, Row: p.loc.Row, Col: p.loc.Col})
}

// locOfBank reconstructs (bg, bk) from a bank pointer for PRE events.
func (c *Channel) locOfBank(r *rankState, b *bankState) (bg, bk int) {
	for i := range r.banks {
		if &r.banks[i] == b {
			return i / c.cfg.Geometry.Banks, i % c.cfg.Geometry.Banks
		}
	}
	return -1, -1
}

func (c *Channel) rankIndex(r *rankState) int {
	for i, rr := range c.ranks {
		if rr == r {
			return i
		}
	}
	return -1
}
