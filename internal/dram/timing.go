// Package dram implements a cycle-level DDR4 memory-system model: banks,
// bank groups, ranks and channels with the full DDR4 timing constraint set,
// driven by per-channel FR-FCFS controllers with separate read/write request
// queues and write-drain watermarks. It is the repository's substitute for
// the Ramulator back-end the paper extends (Section V).
package dram

import (
	"fmt"

	"repro/internal/clock"
)

// Timing holds the DDR4 timing parameters, all in command-clock cycles.
// Field names follow the JEDEC DDR4 specification.
type Timing struct {
	// Clock is the command-clock frequency (half the MT/s data rate).
	Clock clock.Hz

	CL  int // CAS (read) latency
	CWL int // CAS write latency
	BL  int // burst length on the command clock (BL8 => 4)

	RCD int // ACT -> CAS, same bank
	RP  int // PRE -> ACT, same bank
	RAS int // ACT -> PRE, same bank
	RC  int // ACT -> ACT, same bank

	CCDS int // CAS -> CAS, different bank group
	CCDL int // CAS -> CAS, same bank group
	RRDS int // ACT -> ACT, different bank group, same rank
	RRDL int // ACT -> ACT, same bank group, same rank
	FAW  int // four-activate window per rank

	WR   int // write recovery: end of write burst -> PRE
	WTRS int // end of write burst -> RD, different bank group, same rank
	WTRL int // end of write burst -> RD, same bank group, same rank
	RTP  int // RD -> PRE, same bank

	RFC  int // refresh cycle time
	REFI int // average refresh interval

	RTRS int // rank-to-rank bus switch penalty
}

// DDR42400 is the DDR4-2400R (CL17) timing set used for both the DRAM and
// the PIM DIMMs in Table I. Values follow JEDEC DDR4-2400 speed-bin tables
// for an 8 Gb device (tRFC = 350 ns).
func DDR42400() Timing {
	return Timing{
		Clock: 1200 * clock.MHz,
		CL:    17,
		CWL:   12,
		BL:    4,
		RCD:   17,
		RP:    17,
		RAS:   39,
		RC:    56,
		CCDS:  4,
		CCDL:  6,
		RRDS:  4,
		RRDL:  6,
		FAW:   26,
		WR:    18,
		WTRS:  3,
		WTRL:  9,
		RTP:   9,
		RFC:   420,  // 350 ns at 1.2 GHz
		REFI:  9360, // 7.8 us at 1.2 GHz
		RTRS:  2,
	}
}

// DDR43200 is the DDR4-3200AA (CL22) timing set; the characterization
// server's DRAM DIMMs run at this grade (Section V).
func DDR43200() Timing {
	return Timing{
		Clock: 1600 * clock.MHz,
		CL:    22,
		CWL:   16,
		BL:    4,
		RCD:   22,
		RP:    22,
		RAS:   52,
		RC:    74,
		CCDS:  4,
		CCDL:  8,
		RRDS:  4,
		RRDL:  8,
		FAW:   34,
		WR:    24,
		WTRS:  4,
		WTRL:  12,
		RTP:   12,
		RFC:   560,   // 350 ns at 1.6 GHz
		REFI:  12480, // 7.8 us at 1.6 GHz
		RTRS:  2,
	}
}

// Validate reports an error for obviously inconsistent parameter sets.
func (t Timing) Validate() error {
	if t.Clock <= 0 {
		return fmt.Errorf("dram: non-positive clock %d", t.Clock)
	}
	pos := map[string]int{
		"CL": t.CL, "CWL": t.CWL, "BL": t.BL, "RCD": t.RCD, "RP": t.RP,
		"RAS": t.RAS, "RC": t.RC, "CCDS": t.CCDS, "CCDL": t.CCDL,
		"RRDS": t.RRDS, "RRDL": t.RRDL, "FAW": t.FAW, "WR": t.WR,
		"WTRS": t.WTRS, "WTRL": t.WTRL, "RTP": t.RTP, "RFC": t.RFC,
		"REFI": t.REFI,
	}
	for name, v := range pos {
		if v <= 0 {
			return fmt.Errorf("dram: timing %s=%d must be positive", name, v)
		}
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC=%d < tRAS+tRP=%d", t.RC, t.RAS+t.RP)
	}
	if t.CCDL < t.CCDS {
		return fmt.Errorf("dram: tCCD_L=%d < tCCD_S=%d", t.CCDL, t.CCDS)
	}
	if t.RRDL < t.RRDS {
		return fmt.Errorf("dram: tRRD_L=%d < tRRD_S=%d", t.RRDL, t.RRDS)
	}
	if t.FAW < 4*t.RRDS {
		return fmt.Errorf("dram: tFAW=%d < 4*tRRD_S=%d", t.FAW, 4*t.RRDS)
	}
	if t.RTRS < 0 {
		return fmt.Errorf("dram: tRTRS=%d must be non-negative", t.RTRS)
	}
	return nil
}

// Domain returns the command-clock domain.
func (t Timing) Domain() clock.Domain { return clock.NewDomain(t.Clock) }

// PeakChannelBandwidth is the theoretical per-channel bandwidth in bytes
// per second: one 64-byte burst every BL command cycles.
func (t Timing) PeakChannelBandwidth() float64 {
	return 64 * float64(t.Clock) / float64(t.BL)
}

// ReadLatency is the idle-bank read latency (ACT+CAS+burst) in cycles.
func (t Timing) ReadLatency() int { return t.RCD + t.CL + t.BL }

// MinCrossLatency is the conservative lookahead a channel grants a sharded
// simulation engine: the minimum simulated delay between anything the
// controller does and the earliest externally visible consequence it can
// schedule. That consequence is always a data-burst completion, which
// lands CL+BL (read) or CWL+BL (write) command cycles after the column
// command that caused it; command issue itself (ACT/PRE/REF and the next
// scheduler tick) stays inside the channel.
func (t Timing) MinCrossLatency() clock.Picos {
	m := t.CL
	if t.CWL < m {
		m = t.CWL
	}
	return t.Domain().Duration(int64(m + t.BL))
}
