package dram

import (
	"fmt"

	"repro/internal/sim"
)

// DeviceSet is one group of DIMMs behind a set of channels — either the
// conventional DRAM DIMMs or the PIM DIMMs of a memory-bus-integrated PIM
// system. The two sets are physically distinct channel groups on the same
// memory bus (the characterization server has 3 DRAM + 3 PIM channels; the
// Table I simulation has 4 + 4).
type DeviceSet struct {
	name     string
	cfg      Config
	channels []*Channel
}

// New builds a device set with one controller per channel.
func New(eng *sim.Engine, cfg Config, name string) (*DeviceSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("dram %s: %w", name, err)
	}
	d := &DeviceSet{name: name, cfg: cfg}
	for i := 0; i < cfg.Geometry.Channels; i++ {
		d.channels = append(d.channels, newChannel(eng, cfg, i, name))
	}
	return d, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(eng *sim.Engine, cfg Config, name string) *DeviceSet {
	d, err := New(eng, cfg, name)
	if err != nil {
		panic(err)
	}
	return d
}

// Name reports the device set's label ("dram", "pim").
func (d *DeviceSet) Name() string { return d.name }

// Config reports the configuration the set was built with.
func (d *DeviceSet) Config() Config { return d.cfg }

// Channel returns controller i.
func (d *DeviceSet) Channel(i int) *Channel { return d.channels[i] }

// Channels returns all controllers.
func (d *DeviceSet) Channels() []*Channel { return d.channels }

// Stats aggregates the per-channel counters.
func (d *DeviceSet) Stats() Stats {
	s := Stats{}
	for _, c := range d.channels {
		s.Channels = append(s.Channels, c.stats)
	}
	return s
}

// Idle reports whether every channel's queues are empty.
func (d *DeviceSet) Idle() bool {
	for _, c := range d.channels {
		if !c.Idle() {
			return false
		}
	}
	return true
}

// PeakBandwidth is the aggregate theoretical bandwidth in bytes/second.
func (d *DeviceSet) PeakBandwidth() float64 {
	return d.cfg.Timing.PeakChannelBandwidth() * float64(d.cfg.Geometry.Channels)
}
