package dram

import "fmt"

// Checker is a DDR4 protocol verifier: attached as an Observer, it
// validates every issued command against the JEDEC timing constraints and
// bank-state rules, independently of the scheduler's own bookkeeping.
// It is the simulator's safety net — the property tests drive random
// traffic through a channel with a checker attached and assert zero
// violations.
type Checker struct {
	t    Timing
	geom struct{ ranks, bgs, banks int }

	banks []checkerBank // [rank][bg*banks+bank]
	rank  []checkerRank

	lastCASCycle int64
	lastCASKind  Cmd
	lastCASRank  int
	haveCAS      bool

	violations []string
}

type checkerBank struct {
	open      bool
	row       int
	actCycle  int64
	lastCAS   int64
	lastWrite int64 // WR CAS cycle, -1 never
	lastRead  int64
	preCycle  int64
	haveAct   bool
	havePre   bool
}

type checkerRank struct {
	acts        []int64 // history of ACT cycles for tFAW / tRRD
	lastCASBG   []int64 // per bank group, for tCCD_L
	lastWrite   int64
	haveWrite   bool
	refUntil    int64 // busy with refresh until this cycle
	lastRefDone int64
}

// NewChecker builds a checker for one channel of the given config.
func NewChecker(cfg Config) *Checker {
	c := &Checker{t: cfg.Timing}
	c.geom.ranks = cfg.Geometry.Ranks
	c.geom.bgs = cfg.Geometry.BankGroups
	c.geom.banks = cfg.Geometry.Banks
	c.banks = make([]checkerBank, cfg.Geometry.Ranks*cfg.Geometry.BankGroups*cfg.Geometry.Banks)
	c.rank = make([]checkerRank, cfg.Geometry.Ranks)
	for r := range c.rank {
		c.rank[r].lastCASBG = make([]int64, cfg.Geometry.BankGroups)
		for i := range c.rank[r].lastCASBG {
			c.rank[r].lastCASBG[i] = -1 << 40
		}
		c.rank[r].lastWrite = -1 << 40
		c.rank[r].refUntil = -1 << 40
	}
	for i := range c.banks {
		c.banks[i].lastWrite = -1 << 40
		c.banks[i].lastRead = -1 << 40
	}
	return c
}

// Violations returns every recorded protocol violation.
func (c *Checker) Violations() []string { return c.violations }

func (c *Checker) fail(e CmdEvent, format string, args ...interface{}) {
	c.violations = append(c.violations,
		fmt.Sprintf("%v: %s", e, fmt.Sprintf(format, args...)))
}

func (c *Checker) bankOf(e CmdEvent) *checkerBank {
	idx := (e.Rank*c.geom.bgs+e.BankGrp)*c.geom.banks + e.Bank
	return &c.banks[idx]
}

// Command implements Observer.
func (c *Checker) Command(_ int, e CmdEvent) {
	t := &c.t
	switch e.Cmd {
	case CmdACT:
		b := c.bankOf(e)
		r := &c.rank[e.Rank]
		if b.open {
			c.fail(e, "ACT to open bank (row %d still open)", b.row)
		}
		if b.havePre && e.Cycle-b.preCycle < int64(t.RP) {
			c.fail(e, "tRP violated: PRE at %d", b.preCycle)
		}
		if b.haveAct && e.Cycle-b.actCycle < int64(t.RC) {
			c.fail(e, "tRC violated: last ACT at %d", b.actCycle)
		}
		if e.Cycle < r.refUntil {
			c.fail(e, "ACT during refresh (until %d)", r.refUntil)
		}
		// tRRD_S against the most recent ACT in the rank; tFAW against the
		// fourth-most-recent.
		n := len(r.acts)
		if n > 0 && e.Cycle-r.acts[n-1] < int64(t.RRDS) {
			c.fail(e, "tRRD_S violated: prev ACT at %d", r.acts[n-1])
		}
		if n >= 4 && e.Cycle-r.acts[n-4] < int64(t.FAW) {
			c.fail(e, "tFAW violated: 4th-previous ACT at %d", r.acts[n-4])
		}
		r.acts = append(r.acts, e.Cycle)
		if len(r.acts) > 8 {
			r.acts = r.acts[len(r.acts)-8:]
		}
		b.open, b.row = true, e.Row
		b.actCycle, b.haveAct = e.Cycle, true

	case CmdPRE:
		b := c.bankOf(e)
		if !b.open {
			// PRE to a closed bank is legal (PREA semantics) but our
			// controller never does it; flag it.
			c.fail(e, "PRE to closed bank")
			return
		}
		if e.Cycle-b.actCycle < int64(t.RAS) {
			c.fail(e, "tRAS violated: ACT at %d", b.actCycle)
		}
		if b.lastRead > -1<<39 && e.Cycle-b.lastRead < int64(t.RTP) {
			c.fail(e, "tRTP violated: RD at %d", b.lastRead)
		}
		if b.lastWrite > -1<<39 && e.Cycle-b.lastWrite < int64(t.CWL+t.BL+t.WR) {
			c.fail(e, "tWR violated: WR at %d", b.lastWrite)
		}
		b.open = false
		b.preCycle, b.havePre = e.Cycle, true

	case CmdRD, CmdWR:
		b := c.bankOf(e)
		r := &c.rank[e.Rank]
		if !b.open {
			c.fail(e, "CAS to closed bank")
		} else if b.row != e.Row {
			c.fail(e, "CAS row %d but open row is %d", e.Row, b.row)
		}
		if b.haveAct && e.Cycle-b.actCycle < int64(t.RCD) {
			c.fail(e, "tRCD violated: ACT at %d", b.actCycle)
		}
		if e.Cycle < r.refUntil {
			c.fail(e, "CAS during refresh (until %d)", r.refUntil)
		}
		// tCCD_L within the bank group.
		if last := r.lastCASBG[e.BankGrp]; e.Cycle-last < int64(t.CCDL) {
			c.fail(e, "tCCD_L violated: last CAS in bg at %d", last)
		}
		// tCCD_S channel-wide.
		if c.haveCAS && e.Cycle-c.lastCASCycle < int64(t.CCDS) {
			c.fail(e, "tCCD_S violated: last CAS at %d", c.lastCASCycle)
		}
		// Data-bus occupancy: two bursts may not overlap. Burst start for
		// RD is CAS+CL, for WR is CAS+CWL; both last BL cycles.
		if c.haveCAS {
			prevStart := c.lastCASCycle + int64(t.CL)
			if c.lastCASKind == CmdWR {
				prevStart = c.lastCASCycle + int64(t.CWL)
			}
			curStart := e.Cycle + int64(t.CL)
			if e.Cmd == CmdWR {
				curStart = e.Cycle + int64(t.CWL)
			}
			if curStart < prevStart+int64(t.BL) {
				c.fail(e, "data bus overlap: previous burst [%d,%d)", prevStart, prevStart+int64(t.BL))
			}
		}
		// tWTR: a RD after a WR burst in the same rank.
		if e.Cmd == CmdRD && r.haveWrite {
			wrBurstEnd := r.lastWrite + int64(t.CWL+t.BL)
			if e.Cycle < wrBurstEnd+int64(t.WTRS) {
				c.fail(e, "tWTR_S violated: WR at %d", r.lastWrite)
			}
		}
		r.lastCASBG[e.BankGrp] = e.Cycle
		c.lastCASCycle, c.lastCASKind, c.lastCASRank = e.Cycle, e.Cmd, e.Rank
		c.haveCAS = true
		if e.Cmd == CmdWR {
			b.lastWrite = e.Cycle
			r.lastWrite = e.Cycle
			r.haveWrite = true
		} else {
			b.lastRead = e.Cycle
		}

	case CmdREF:
		r := &c.rank[e.Rank]
		for i := range c.banks {
			if i/(c.geom.bgs*c.geom.banks) == e.Rank && c.banks[i].open {
				c.fail(e, "REF with open bank %d", i)
			}
		}
		if e.Cycle < r.refUntil {
			c.fail(e, "REF during refresh (until %d)", r.refUntil)
		}
		r.refUntil = e.Cycle + int64(c.t.RFC)
		r.lastRefDone = r.refUntil
	}
}
