package dram

import (
	"math/rand"
	"testing"

	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// runCheckedTraffic drives n requests through a checked channel and
// returns the violations.
func runCheckedTraffic(t *testing.T, seed int64, n int, readFrac float64) []string {
	t.Helper()
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	chk := NewChecker(cfg)
	ch.Observe(chk)

	rng := rand.New(rand.NewSource(seed))
	completed := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		kind := mem.Write
		if rng.Float64() < readFrac {
			kind = mem.Read
		}
		loc := addrmap.Loc{
			Rank:      rng.Intn(cfg.Geometry.Ranks),
			BankGroup: rng.Intn(cfg.Geometry.BankGroups),
			Bank:      rng.Intn(cfg.Geometry.Banks),
			Row:       rng.Intn(64), // few rows => heavy conflicts
			Col:       rng.Intn(cfg.Geometry.Cols),
		}
		r := &mem.Req{Kind: kind, OnDone: func(clock.Picos) { completed++ }}
		if ch.TryEnqueue(r, loc) {
			issue(i + 1)
			return
		}
		ch.WaitSpace(func() { issue(i) })
	}
	issue(0)
	eng.Run()
	if completed != n {
		t.Fatalf("completed %d of %d requests", completed, n)
	}
	return chk.Violations()
}

// The controller must never violate the DDR4 protocol, across several
// random traffic mixes. This is the model's core safety property.
func TestControllerObeysProtocolUnderRandomTraffic(t *testing.T) {
	for _, tc := range []struct {
		seed     int64
		readFrac float64
	}{
		{1, 1.0}, // read-only
		{2, 0.0}, // write-only
		{3, 0.5}, // mixed
		{4, 0.9}, // read-heavy
		{5, 0.1}, // write-heavy
	} {
		v := runCheckedTraffic(t, tc.seed, 4000, tc.readFrac)
		if len(v) != 0 {
			t.Errorf("seed %d (%.0f%% reads): %d protocol violations; first: %s",
				tc.seed, tc.readFrac*100, len(v), v[0])
		}
	}
}

// Sequential streaming traffic (the transfer pattern) must also be clean.
func TestControllerObeysProtocolOnStreams(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	chk := NewChecker(cfg)
	ch.Observe(chk)
	dr := &driver{eng: eng, ch: ch}
	dr.issueAll(seqLocs(6000, true), mem.Read)
	eng.Run()
	if v := chk.Violations(); len(v) != 0 {
		t.Fatalf("%d violations on interleaved stream; first: %s", len(v), v[0])
	}
}

// The checker itself must detect violations when fed an illegal sequence
// directly (it is only as useful as its teeth).
func TestCheckerDetectsViolations(t *testing.T) {
	cfg := smallConfig()
	tm := cfg.Timing
	cases := []struct {
		name   string
		events []CmdEvent
	}{
		{"CAS to closed bank", []CmdEvent{
			{Cycle: 0, Cmd: CmdRD, Row: 0},
		}},
		{"tRCD", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: int64(tm.RCD) - 1, Cmd: CmdRD, Row: 5},
		}},
		{"wrong row", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 100, Cmd: CmdRD, Row: 6},
		}},
		{"tRAS", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: int64(tm.RAS) - 1, Cmd: CmdPRE},
		}},
		{"tRP", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 100, Cmd: CmdPRE},
			{Cycle: 100 + int64(tm.RP) - 1, Cmd: CmdACT, Row: 6},
		}},
		{"tCCD_L", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 100, Cmd: CmdRD, Row: 5},
			{Cycle: 100 + int64(tm.CCDL) - 1, Cmd: CmdRD, Row: 5, Col: 1},
		}},
		{"double ACT", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 1000, Cmd: CmdACT, Row: 6},
		}},
		{"tFAW", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Bank: 0, Row: 1},
			{Cycle: int64(tm.RRDS), Cmd: CmdACT, Bank: 1, Row: 1},
			{Cycle: 2 * int64(tm.RRDS), Cmd: CmdACT, Bank: 2, Row: 1},
			{Cycle: 3 * int64(tm.RRDS), Cmd: CmdACT, Bank: 3, Row: 1},
			{Cycle: int64(tm.FAW) - 1, Cmd: CmdACT, BankGrp: 1, Row: 1},
		}},
		{"REF with open bank", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 1000, Cmd: CmdREF, Bank: -1, BankGrp: -1},
		}},
		{"tWTR", []CmdEvent{
			{Cycle: 0, Cmd: CmdACT, Row: 5},
			{Cycle: 100, Cmd: CmdWR, Row: 5},
			{Cycle: 100 + int64(tm.CCDL), Cmd: CmdRD, Row: 5, Col: 1},
		}},
	}
	for _, tc := range cases {
		chk := NewChecker(cfg)
		for _, e := range tc.events {
			chk.Command(0, e)
		}
		if len(chk.Violations()) == 0 {
			t.Errorf("%s: checker missed the violation", tc.name)
		}
	}
}

// A legal hand-built sequence must produce no violations (no false
// positives).
func TestCheckerAcceptsLegalSequence(t *testing.T) {
	cfg := smallConfig()
	tm := cfg.Timing
	chk := NewChecker(cfg)
	act := int64(0)
	rd1 := act + int64(tm.RCD)
	rd2 := rd1 + int64(tm.CCDL)
	pre := rd2 + int64(tm.RTP) + int64(tm.RAS) // comfortably past tRAS
	act2 := pre + int64(tm.RP)
	for _, e := range []CmdEvent{
		{Cycle: act, Cmd: CmdACT, Row: 3},
		{Cycle: rd1, Cmd: CmdRD, Row: 3, Col: 0},
		{Cycle: rd2, Cmd: CmdRD, Row: 3, Col: 1},
		{Cycle: pre, Cmd: CmdPRE},
		{Cycle: act2, Cmd: CmdACT, Row: 9},
	} {
		chk.Command(0, e)
	}
	if v := chk.Violations(); len(v) != 0 {
		t.Fatalf("false positives: %v", v)
	}
}

// The observer hook must see exactly the commands the stats count.
func TestObserverCountsMatchStats(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig()
	ds := MustNew(eng, cfg, "dram")
	ch := ds.Channel(0)
	counts := map[Cmd]uint64{}
	ch.Observe(observerFunc(func(_ int, e CmdEvent) { counts[e.Cmd]++ }))
	dr := &driver{eng: eng, ch: ch}
	dr.issueAll(seqLocs(2000, true), mem.Write)
	eng.Run()
	st := ch.Stats()
	if counts[CmdWR] != st.Writes || counts[CmdACT] != st.Acts ||
		counts[CmdPRE] != st.Pres || counts[CmdREF] != st.Refs {
		t.Errorf("observer counts %v vs stats %+v", counts, st)
	}
}

type observerFunc func(ch int, e CmdEvent)

func (f observerFunc) Command(ch int, e CmdEvent) { f(ch, e) }

func TestCmdString(t *testing.T) {
	for c, want := range map[Cmd]string{CmdACT: "ACT", CmdPRE: "PRE",
		CmdRD: "RD", CmdWR: "WR", CmdREF: "REF", Cmd(9): "?"} {
		if got := c.String(); got != want {
			t.Errorf("Cmd(%d).String() = %q", int(c), got)
		}
	}
}
