package dram

import (
	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// never is the "no wake needed" sentinel for scheduler wake times, far
// beyond any reachable cycle count.
const never = int64(1) << 62

// tryIssue attempts to issue one command at cycle cyc. It returns whether
// a command was issued and, if not, the earliest cycle at which the
// scheduler should try again (never when there is nothing to do).
//
// Priority order, per cycle:
//  1. refresh management (overdue refreshes block their rank),
//  2. a row-hit CAS from the serving queue (FR part of FR-FCFS),
//  3. the oldest request's next needed command, ACT or PRE (FCFS part).
func (c *Channel) tryIssue(cyc int64) (bool, int64) {
	wake := never
	t := &c.cfg.Timing

	// --- Refresh ---
	for _, r := range c.ranks {
		if r.refreshing {
			if cyc >= r.refreshUntil {
				r.refreshing = false
			} else {
				wake = min64(wake, r.refreshUntil)
				continue
			}
		}
		if cyc >= r.refreshDue {
			// Close every open bank, then issue REF.
			if !r.allClosed() {
				for i := range r.banks {
					b := &r.banks[i]
					if b.row < 0 {
						continue
					}
					if cyc >= b.nextPRE {
						c.issuePREBank(r, b)
						return true, 0
					}
					wake = min64(wake, b.nextPRE)
				}
				continue
			}
			r.refreshing = true
			r.refreshUntil = cyc + int64(t.RFC)
			r.refreshDue += int64(t.REFI)
			for i := range r.banks {
				r.banks[i].nextACT = max64(r.banks[i].nextACT, r.refreshUntil)
			}
			c.stats.Refs++
			c.emit(CmdEvent{Cycle: cyc, Cmd: CmdREF, Rank: c.rankIndex(r),
				Bank: -1, BankGrp: -1, Row: -1, Col: -1})
			return true, 0
		}
		// Stay awake for the next refresh only while there is state to
		// manage; fully idle closed ranks fast-forward in tick().
		if len(c.readQ)+len(c.writeQ) > 0 || !r.allClosed() {
			wake = min64(wake, r.refreshDue)
		}
	}

	// --- Choose serving direction (write drain policy) ---
	if c.drain && len(c.writeQ) <= c.cfg.WriteDrainLo {
		c.drain = false
	}
	if !c.drain && len(c.writeQ) >= c.cfg.WriteDrainHi {
		c.drain = true
	}
	primary, secondary := c.readQ, c.writeQ
	if c.drain || len(c.readQ) == 0 {
		primary, secondary = c.writeQ, c.readQ
	}
	// Prefer the primary queue; if nothing in it can issue this cycle,
	// serve the other queue opportunistically (this is what keeps posted
	// writes from starving while a steady read stream holds the bus).
	if issued, w := c.tryQueue(primary, cyc); issued {
		return true, 0
	} else {
		wake = min64(wake, w)
	}
	if issued, w := c.tryQueue(secondary, cyc); issued {
		return true, 0
	} else {
		wake = min64(wake, w)
	}
	return false, wake
}

// tryQueue attempts to issue one command on behalf of the given queue,
// returning the earliest retry cycle when it cannot.
func (c *Channel) tryQueue(q []*pending, cyc int64) (bool, int64) {
	wake := never
	if len(q) == 0 {
		return false, wake
	}
	scan := q
	if len(scan) > c.cfg.ScanWindow {
		scan = scan[:c.cfg.ScanWindow]
	}

	// --- Pass 1: first-ready row hit ---
	for _, p := range scan {
		r := c.ranks[p.loc.Rank]
		if r.refreshing {
			continue
		}
		b := r.bank(p.loc, c.cfg.Geometry.Banks)
		if b.row != p.loc.Row {
			continue
		}
		ready := c.earliestCAS(p, cyc)
		if ready <= cyc {
			c.issueCAS(p, cyc)
			return true, 0
		}
		wake = min64(wake, ready)
	}

	// --- Pass 2: oldest request per bank, prepare its row ---
	// prepMark is generation-stamped scratch (see Channel), so per-tick
	// bank ownership tracking allocates nothing. BankID is already
	// rank-global.
	c.prepGen++
	for _, p := range scan {
		r := c.ranks[p.loc.Rank]
		if r.refreshing {
			continue
		}
		b := r.bank(p.loc, c.cfg.Geometry.Banks)
		if b.row == p.loc.Row {
			continue // row hit, pass 1's business
		}
		key := p.loc.BankID(c.cfg.Geometry)
		if c.prepMark[key] == c.prepGen {
			continue // an older request already owns this bank
		}
		c.prepMark[key] = c.prepGen
		if b.row < 0 {
			ready := c.earliestACT(p, cyc)
			if ready <= cyc {
				c.issueACT(p, cyc)
				return true, 0
			}
			wake = min64(wake, ready)
			continue
		}
		// Conflict: precharge, unless a queued row hit still wants the
		// open row (closing it would waste that hit).
		if c.hasRowHitFor(p.loc, b.row) {
			continue
		}
		ready := max64(b.nextPRE, 0)
		if ready <= cyc {
			p.conflict = true
			c.issuePREBank(r, b)
			return true, 0
		}
		wake = min64(wake, ready)
	}
	return false, wake
}

// hasRowHitFor reports whether any queued request targets the open row of
// the given bank (so the scheduler should not precharge it yet).
func (c *Channel) hasRowHitFor(loc addrmap.Loc, openRow int) bool {
	match := func(q []*pending) bool {
		n := len(q)
		if n > c.cfg.ScanWindow {
			n = c.cfg.ScanWindow
		}
		for _, p := range q[:n] {
			if p.loc.Rank == loc.Rank && p.loc.BankGroup == loc.BankGroup &&
				p.loc.Bank == loc.Bank && p.loc.Row == openRow {
				return true
			}
		}
		return false
	}
	return match(c.readQ) || match(c.writeQ)
}

// earliestACT computes the first cycle an ACT for p may issue.
func (c *Channel) earliestACT(p *pending, cyc int64) int64 {
	t := &c.cfg.Timing
	r := c.ranks[p.loc.Rank]
	b := r.bank(p.loc, c.cfg.Geometry.Banks)
	ready := max64(b.nextACT, r.nextACT)
	ready = max64(ready, r.nextACTbg[p.loc.BankGroup])
	// tFAW: the fifth ACT must wait for the oldest of the last four.
	ready = max64(ready, r.faw[r.fawIdx]+int64(t.FAW))
	return ready
}

// earliestCAS computes the first cycle the column command for p may issue,
// assuming its row is open.
func (c *Channel) earliestCAS(p *pending, cyc int64) int64 {
	r := c.ranks[p.loc.Rank]
	b := r.bank(p.loc, c.cfg.Geometry.Banks)
	var ready int64
	if p.req.Kind == mem.Read {
		ready = b.nextRD
		ready = max64(ready, r.nextRD)                    // tWTR_S
		ready = max64(ready, r.nextRDbg[p.loc.BankGroup]) // tWTR_L
	} else {
		ready = b.nextWR
	}
	ready = max64(ready, r.nextCASbg[p.loc.BankGroup]) // tCCD_L
	ready = max64(ready, c.nextCAS)                    // tCCD_S
	ready = max64(ready, c.busReady(p.req.Kind, p.loc.Rank))
	return ready
}

// busReady applies shared data-bus occupancy and turnaround constraints
// relative to the previous column command.
func (c *Channel) busReady(kind mem.Kind, rank int) int64 {
	if !c.last.valid {
		return 0
	}
	t := &c.cfg.Timing
	l := c.last
	switch {
	case l.kind == mem.Read && kind == mem.Read:
		if l.rank != rank {
			return l.cycle + int64(t.BL+t.RTRS)
		}
		return l.cycle + int64(t.BL)
	case l.kind == mem.Read && kind == mem.Write:
		// Read-to-write turnaround: the write burst must start after the
		// read burst plus a bus-turnaround bubble.
		return l.cycle + int64(t.CL-t.CWL+t.BL+t.RTRS)
	case l.kind == mem.Write && kind == mem.Write:
		if l.rank != rank {
			return l.cycle + int64(t.BL+t.RTRS)
		}
		return l.cycle + int64(t.BL)
	default: // write -> read
		if l.rank != rank {
			// Cross-rank: only the bus matters (tWTR is rank-scoped).
			return l.cycle + int64(t.CWL+t.BL+t.RTRS-t.CL)
		}
		// Same rank: tWTR constraints are in rankState.nextRD*.
		return l.cycle + int64(t.BL)
	}
}

// issueACT opens p's row.
func (c *Channel) issueACT(p *pending, cyc int64) {
	t := &c.cfg.Timing
	r := c.ranks[p.loc.Rank]
	b := r.bank(p.loc, c.cfg.Geometry.Banks)
	c.emit(CmdEvent{Cycle: cyc, Cmd: CmdACT, Rank: p.loc.Rank,
		BankGrp: p.loc.BankGroup, Bank: p.loc.Bank, Row: p.loc.Row, Col: -1})
	b.row = p.loc.Row
	b.nextRD = cyc + int64(t.RCD)
	b.nextWR = cyc + int64(t.RCD)
	b.nextPRE = cyc + int64(t.RAS)
	b.nextACT = cyc + int64(t.RC)
	r.nextACT = max64(r.nextACT, cyc+int64(t.RRDS))
	r.nextACTbg[p.loc.BankGroup] = max64(r.nextACTbg[p.loc.BankGroup], cyc+int64(t.RRDL))
	r.faw[r.fawIdx] = cyc
	r.fawIdx = (r.fawIdx + 1) % len(r.faw)
	p.activated = true
	c.stats.Acts++
}

// issuePREBank closes a bank belonging to rank r.
func (c *Channel) issuePREBank(r *rankState, b *bankState) {
	t := &c.cfg.Timing
	cyc := c.dom.Cycles(c.sched.Now())
	if c.observer != nil {
		bg, bk := c.locOfBank(r, b)
		c.emit(CmdEvent{Cycle: cyc, Cmd: CmdPRE, Rank: c.rankIndex(r),
			BankGrp: bg, Bank: bk, Row: -1, Col: -1})
	}
	b.row = -1
	b.nextACT = max64(b.nextACT, cyc+int64(t.RP))
	c.stats.Pres++
}

// issueCAS issues the column command for p, removes it from its queue, and
// schedules its data-burst completion.
func (c *Channel) issueCAS(p *pending, cyc int64) {
	t := &c.cfg.Timing
	r := c.ranks[p.loc.Rank]
	b := r.bank(p.loc, c.cfg.Geometry.Banks)

	r.nextCASbg[p.loc.BankGroup] = cyc + int64(t.CCDL)
	c.nextCAS = cyc + int64(t.CCDS)
	c.last = lastCAS{valid: true, cycle: cyc, kind: p.req.Kind, rank: p.loc.Rank}

	var doneCycle int64
	if p.req.Kind == mem.Read {
		c.emitCAS(p, cyc, CmdRD)
		b.nextPRE = max64(b.nextPRE, cyc+int64(t.RTP))
		doneCycle = cyc + int64(t.CL+t.BL)
		c.stats.Reads++
		c.removeFrom(&c.readQ, p)
	} else {
		c.emitCAS(p, cyc, CmdWR)
		burstEnd := cyc + int64(t.CWL+t.BL)
		b.nextPRE = max64(b.nextPRE, burstEnd+int64(t.WR))
		r.nextRD = max64(r.nextRD, burstEnd+int64(t.WTRS))
		r.nextRDbg[p.loc.BankGroup] = max64(r.nextRDbg[p.loc.BankGroup], burstEnd+int64(t.WTRL))
		doneCycle = burstEnd
		c.stats.Writes++
		c.removeFrom(&c.writeQ, p)
	}

	switch {
	case p.conflict:
		c.stats.RowConflicts++
	case p.activated:
		c.stats.RowMisses++
	default:
		c.stats.RowHits++
	}

	cp := c.freeComp
	if cp == nil {
		cp = &completion{c: c}
		cp.ev.Init(cp)
	} else {
		c.freeComp = cp.next
		cp.next = nil
	}
	cp.req = p.req
	// A completion with no callback only updates channel-local stats; one
	// with a callback crosses back into the requester. Once the crossing
	// is scheduled it is visible in the lane's mailbox, so the dequeued
	// callback no longer needs the lookahead cap.
	if p.req.OnDone == nil {
		c.sched.ScheduleLocal(&cp.ev, c.dom.Duration(doneCycle))
	} else {
		c.sched.Schedule(&cp.ev, c.dom.Duration(doneCycle))
		if c.cbQueued--; c.cbQueued == 0 {
			c.updateCrossingFree()
		}
	}
	c.notifySpace()

	// The request left its queue and every field has been read: recycle.
	p.req = nil
	p.next = c.freePend
	c.freePend = p
}

// completion is a pooled data-burst completion record: the standing event
// fires when the burst finishes on the data bus, accounts the bytes, and
// returns itself to the channel's free list.
type completion struct {
	ev   sim.Event
	c    *Channel
	req  *mem.Req
	next *completion // free list
}

// OnEvent implements sim.Handler.
func (cp *completion) OnEvent(now clock.Picos) {
	c, req := cp.c, cp.req
	cp.req = nil
	cp.next = c.freeComp
	c.freeComp = cp
	if req.Kind == mem.Read {
		c.stats.BytesRead += mem.LineBytes
		if c.stats.ReadSeries != nil {
			c.stats.ReadSeries.Add(now, mem.LineBytes)
		}
	} else {
		c.stats.BytesWritten += mem.LineBytes
		if c.stats.WriteSeries != nil {
			c.stats.WriteSeries.Add(now, mem.LineBytes)
		}
	}
	c.stats.BytesBySrc[req.SrcID] += mem.LineBytes
	if req.OnDone != nil {
		req.OnDone(now)
	}
}

func (c *Channel) removeFrom(q *[]*pending, p *pending) {
	for i, e := range *q {
		if e == p {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("dram: request not in queue")
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Idle reports whether the channel has no queued or in-flight work.
func (c *Channel) Idle() bool { return len(c.readQ) == 0 && len(c.writeQ) == 0 }
