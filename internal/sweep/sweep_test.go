package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got := MapN(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	job := func(i int) uint64 {
		// A deterministic per-index computation with enough work that
		// goroutines genuinely interleave.
		h := uint64(i) + 0x9e3779b97f4a7c15
		for j := 0; j < 10000; j++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
		}
		return h
	}
	serial := MapN(64, 1, job)
	parallel := MapN(64, 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("out[%d]: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapRunsEveryJobExactlyOnce(t *testing.T) {
	var counts [257]atomic.Int32
	MapN(len(counts), 8, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(0, func(int) int { t.Fatal("job ran"); return 0 }); len(got) != 0 {
		t.Fatalf("Map(0) returned %d results", len(got))
	}
}

func TestMapPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("unexpected panic payload type %T: %v", r, r)
		}
		if jp.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", jp.Value)
		}
		if jp.Index%3 != 0 {
			t.Fatalf("panic index = %d, want a multiple of 3", jp.Index)
		}
		if !strings.Contains(jp.Error(), "boom") {
			t.Fatalf("Error() = %q", jp.Error())
		}
	}()
	MapN(16, 4, func(i int) int {
		if i%3 == 0 {
			panic("boom")
		}
		return i
	})
}

// sentinelError is a distinct error type for asserting panic values
// survive the worker boundary with their identity intact.
type sentinelError struct{ code int }

func (e *sentinelError) Error() string { return "sentinel" }

// TestMapPanicPreservesTypedValue is the regression for the flattening
// bug: MapN used to re-raise panics through fmt.Sprintf, destroying typed
// panic values. The original value — here a specific error instance —
// must come back out of recover untouched, with the job index and the
// worker's stack attached.
func TestMapPanicPreservesTypedValue(t *testing.T) {
	sentinel := &sentinelError{code: 42}
	defer func() {
		r := recover()
		jp, ok := r.(*JobPanic)
		if !ok {
			t.Fatalf("unexpected panic payload type %T: %v", r, r)
		}
		if jp.Value != sentinel {
			t.Fatalf("panic value %v is not the original sentinel instance", jp.Value)
		}
		if jp.Index != 5 {
			t.Fatalf("panic index = %d, want 5", jp.Index)
		}
		if len(jp.Stack) == 0 || !strings.Contains(string(jp.Stack), "TestMapPanicPreservesTypedValue") {
			t.Fatalf("worker stack not captured:\n%s", jp.Stack)
		}
		if !errors.Is(jp, sentinel) {
			t.Fatal("errors.Is does not reach the wrapped sentinel")
		}
		var se *sentinelError
		if !errors.As(jp, &se) || se.code != 42 {
			t.Fatal("errors.As does not recover the typed value")
		}
		// Error() carries the worker stack so an uncaught re-raise prints
		// the traceback that points at the bug.
		if !strings.Contains(jp.Error(), "worker stack") {
			t.Fatalf("Error() missing stack section: %q", jp.Error())
		}
	}()
	MapN(8, 4, func(i int) int {
		if i == 5 {
			panic(sentinel)
		}
		return i
	})
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() <= 0 {
		t.Errorf("Workers() = %d with default", Workers())
	}
}

func TestGrid(t *testing.T) {
	g := NewGrid(2, 3, 4)
	if g.Size() != 24 {
		t.Fatalf("Size = %d, want 24", g.Size())
	}
	// Exhaustive round trip, in nested-loop order.
	i := 0
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 4; c++ {
				if got := g.Index(a, b, c); got != i {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d", a, b, c, got, i)
				}
				if x, y, z := g.Coord(i, 0), g.Coord(i, 1), g.Coord(i, 2); x != a || y != b || z != c {
					t.Fatalf("Coord(%d) = (%d,%d,%d), want (%d,%d,%d)", i, x, y, z, a, b, c)
				}
				i++
			}
		}
	}
}

func TestGridPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-dim":     func() { NewGrid(2, 0) },
		"coord-count":  func() { NewGrid(2, 2).Index(1) },
		"coord-range":  func() { NewGrid(2, 2).Index(1, 2) },
		"negative-dim": func() { NewGrid(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
