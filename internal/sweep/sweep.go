// Package sweep fans independent simulations across goroutines with
// deterministic result ordering.
//
// A sweep job builds its own system.System (or any other self-contained
// state), runs it, and returns a result; because every simulated machine
// is single-threaded and fully deterministic, running jobs concurrently
// cannot change any result — only wall-clock time. Map therefore returns
// exactly the slice a serial loop would have produced, byte for byte,
// regardless of the worker count. Experiments that print tables render
// from the ordered slice, so quick/full harness output is identical in
// serial and parallel runs.
//
// The default worker count is GOMAXPROCS; SetWorkers (or the CLIs'
// -workers flag) overrides it process-wide, with 1 forcing the serial
// path for determinism audits.
package sweep

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// JobPanic wraps a panic raised inside a sweep job so it can cross the
// worker-goroutine boundary without losing anything: Value is the
// original panic value (typed errors and sentinels survive intact for
// recover-side inspection), Index is the job that raised it, and Stack is
// the panicking goroutine's stack — the one that actually points at the
// bug, which the re-raise on the caller's goroutine cannot show.
type JobPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error makes a recovered *JobPanic usable as an error. It includes the
// worker stack: when the re-raised panic goes uncaught, the runtime
// prints Error(), and the caller-side traceback alone never shows where
// the job actually failed.
func (p *JobPanic) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v\n\nworker stack:\n%s", p.Index, p.Value, p.Stack)
}

// Unwrap exposes Value when it is itself an error, so errors.Is/As reach
// through the wrapper.
func (p *JobPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// workerOverride is the process-wide worker count; <= 0 selects
// GOMAXPROCS.
var workerOverride atomic.Int64

// SetWorkers overrides the default worker count for subsequent sweeps.
// n <= 0 restores the GOMAXPROCS default. It is intended for CLI flags
// and test setup, not for concurrent reconfiguration mid-sweep.
func SetWorkers(n int) { workerOverride.Store(int64(n)) }

// Workers reports the worker count sweeps currently use.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs job(i) for every i in [0, n) across the default worker count
// and returns the results in index order.
func Map[R any](n int, job func(i int) R) []R {
	return MapN(n, Workers(), job)
}

// MapN is Map with an explicit worker count (workers <= 0 selects
// GOMAXPROCS). Jobs must be independent: each builds its own state and
// touches no shared mutables. A panicking job does not crash the process
// from a worker goroutine; the lowest-index panic is re-raised on the
// caller once all workers have stopped, wrapped in a *JobPanic that
// preserves the original panic value, the job index, and the worker
// goroutine's stack.
func MapN[R any](n, workers int, job func(i int) R) []R {
	out := make([]R, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := range out {
			out[i] = job(i)
		}
		return out
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		fail    *JobPanic
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !runOne(out, i, job, &panicMu, &fail) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		panic(fail)
	}
	return out
}

// runOne executes one job, capturing a panic instead of killing the
// process. It reports whether the worker should continue.
func runOne[R any](out []R, i int, job func(int) R, mu *sync.Mutex, fail **JobPanic) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			mu.Lock()
			if *fail == nil || i < (*fail).Index {
				*fail = &JobPanic{Index: i, Value: r, Stack: stack}
			}
			mu.Unlock()
			ok = false
		}
	}()
	out[i] = job(i)
	return true
}

// Grid indexes the cross product of experiment dimensions, so a sweep
// over (direction x size x design) flattens to one job index and prints
// back in nested-loop order.
type Grid struct {
	dims []int
}

// NewGrid builds a grid; the first dimension varies slowest, exactly like
// the outermost loop of the serial nest it replaces.
func NewGrid(dims ...int) Grid {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("sweep: non-positive grid dimension %v", dims))
		}
	}
	return Grid{dims: append([]int(nil), dims...)}
}

// Size is the total number of points.
func (g Grid) Size() int {
	n := 1
	for _, d := range g.dims {
		n *= d
	}
	return n
}

// Coord recovers dimension k's index from flat index i.
func (g Grid) Coord(i, k int) int {
	for j := len(g.dims) - 1; j > k; j-- {
		i /= g.dims[j]
	}
	return i % g.dims[k]
}

// Index flattens per-dimension coordinates.
func (g Grid) Index(coords ...int) int {
	if len(coords) != len(g.dims) {
		panic("sweep: coordinate count mismatch")
	}
	i := 0
	for k, c := range coords {
		if c < 0 || c >= g.dims[k] {
			panic(fmt.Sprintf("sweep: coordinate %d out of range [0,%d)", c, g.dims[k]))
		}
		i = i*g.dims[k] + c
	}
	return i
}
