package sweep

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Cache is the result store MapCached consults: a content-addressed
// byte-payload cache (satisfied by *resultcache.Store). Implementations
// must be safe for concurrent use by the worker pool and best-effort on
// Put — a failed store must not fail the sweep. A nil Cache disables
// caching.
type Cache interface {
	// Get returns the payload stored under key, or false when no valid
	// entry exists (missing, corrupt, or stale entries all answer false).
	Get(key string) ([]byte, bool)
	// Put persists a payload under key.
	Put(key string, payload []byte)
}

// MapCached is Map with a content-addressed result cache in front of the
// jobs: index i's result is served from c when a valid entry exists under
// key(i), and computed (then stored) otherwise. Because every job is a
// pure function of its configuration — the determinism contract the whole
// sweep layer rests on — a hit is byte-identical to the computation it
// replaces, so the returned slice is indistinguishable from Map's at
// every worker count: hit-vs-miss is invisible to deterministic ordering.
//
// Results round-trip through gob, so R must be a gob-encodable type whose
// meaningful state lives in exported fields (strings, numerics, and
// exported-field structs all qualify). A payload that fails to decode —
// for example after R's shape changed — counts as a miss and is
// recomputed and overwritten. key(i) is only evaluated when a cache is
// installed; with c == nil MapCached is exactly Map.
//
// Missed keys compute at most once at a time per process: duplicate keys
// within one call share a single computation, and concurrent calls that
// miss the same key single-flight on it — later arrivals block on the
// first computation's published result instead of running the job again
// (see computeShared).
func MapCached[R any](c Cache, n int, key func(i int) string, job func(i int) R) []R {
	return MapCachedN(c, n, 0, key, job)
}

// MapCachedN is MapCached with an explicit worker count for the
// miss-computing pool (workers <= 0 selects the process-wide default, so
// SetWorkers still governs callers that do not pin a count).
func MapCachedN[R any](c Cache, n, workers int, key func(i int) string, job func(i int) R) []R {
	if workers <= 0 {
		workers = Workers()
	}
	if c == nil {
		return MapN(n, workers, job)
	}
	out := make([]R, n)
	keys := make([]string, n)
	var miss []int
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		if payload, ok := c.Get(keys[i]); ok && decodeResult(payload, &out[i]) {
			continue
		}
		// A decode failure after a successful Get leaves out[i] partially
		// filled; reset it so the recompute starts from a zero value.
		var zero R
		out[i] = zero
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return out
	}
	// Duplicate keys inside one sweep compute once: the first index
	// holding a key leads, later ones share its result. The leaders then
	// run under the process-wide single-flight table, which extends the
	// same one-compute guarantee across concurrent sweeps.
	leaderAt := make(map[string]int, len(miss))
	var uniq []int
	type follower struct{ index, leader int }
	var followers []follower
	for _, i := range miss {
		if at, ok := leaderAt[keys[i]]; ok {
			followers = append(followers, follower{index: i, leader: at})
			continue
		}
		leaderAt[keys[i]] = len(uniq)
		uniq = append(uniq, i)
	}
	// Only the misses occupy workers; each stores its result as soon as
	// it is computed, so an interrupted sweep still persists every
	// finished design point.
	results := MapN(len(uniq), workers, func(j int) R {
		i := uniq[j]
		return computeShared(c, keys[i], func() R { return job(i) })
	})
	for j, i := range uniq {
		out[i] = results[j]
	}
	for _, f := range followers {
		out[f.index] = results[f.leader]
	}
	return out
}

// flight is one in-progress computation of a cache key: done closes when
// the leader finishes, and payload carries its gob-encoded result when
// ok (encoding can fail, and a panicking leader publishes nothing).
type flight struct {
	done    chan struct{}
	payload []byte
	ok      bool
}

// testFlightJoined, when non-nil (installed by tests only), observes a
// caller joining an already-registered flight. It makes the join step
// externally visible, which is what lets tests hold a leader open until
// a waiter has provably attached.
var testFlightJoined func(key string)

// inflight is the process-wide single-flight table, keyed by cache key.
// Cache keys are content-addressed — an identical key names an identical
// result by construction — so it is sound to share results across every
// Cache instance in the process, not just within one sweep.
var inflight = struct {
	sync.Mutex
	m map[string]*flight
}{m: make(map[string]*flight)}

// computeShared runs job under the key's single-flight slot: when
// another goroutine anywhere in the process is already computing the
// same key, the caller blocks on that computation and decodes its
// published payload instead of simulating a second time. The leader
// alone stores the result in c; waiters already see it through the
// flight, and their own Get on the next sweep will hit the entry the
// leader persisted. A leader whose result cannot be shared (gob encode
// failure, or a panic re-raised through the sweep pool) wakes its
// waiters empty-handed and each computes locally.
func computeShared[R any](c Cache, key string, job func() R) R {
	inflight.Lock()
	if f := inflight.m[key]; f != nil {
		inflight.Unlock()
		if testFlightJoined != nil {
			testFlightJoined(key)
		}
		<-f.done
		if f.ok {
			var r R
			if decodeResult(f.payload, &r) {
				return r
			}
		}
		return job()
	}
	f := &flight{done: make(chan struct{})}
	inflight.m[key] = f
	inflight.Unlock()
	defer func() {
		inflight.Lock()
		delete(inflight.m, key)
		inflight.Unlock()
		close(f.done)
	}()
	r := job()
	if payload, ok := encodeResult(r); ok {
		c.Put(key, payload)
		f.payload, f.ok = payload, true
	}
	return r
}

// encodeResult renders one result as a gob payload.
func encodeResult[R any](r R) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&r); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// decodeResult parses a gob payload into out, reporting success.
func decodeResult[R any](payload []byte, out *R) bool {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(out) == nil
}
