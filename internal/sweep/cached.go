package sweep

import (
	"bytes"
	"encoding/gob"
)

// Cache is the result store MapCached consults: a content-addressed
// byte-payload cache (satisfied by *resultcache.Store). Implementations
// must be safe for concurrent use by the worker pool and best-effort on
// Put — a failed store must not fail the sweep. A nil Cache disables
// caching.
type Cache interface {
	// Get returns the payload stored under key, or false when no valid
	// entry exists (missing, corrupt, or stale entries all answer false).
	Get(key string) ([]byte, bool)
	// Put persists a payload under key.
	Put(key string, payload []byte)
}

// MapCached is Map with a content-addressed result cache in front of the
// jobs: index i's result is served from c when a valid entry exists under
// key(i), and computed (then stored) otherwise. Because every job is a
// pure function of its configuration — the determinism contract the whole
// sweep layer rests on — a hit is byte-identical to the computation it
// replaces, so the returned slice is indistinguishable from Map's at
// every worker count: hit-vs-miss is invisible to deterministic ordering.
//
// Results round-trip through gob, so R must be a gob-encodable type whose
// meaningful state lives in exported fields (strings, numerics, and
// exported-field structs all qualify). A payload that fails to decode —
// for example after R's shape changed — counts as a miss and is
// recomputed and overwritten. key(i) is only evaluated when a cache is
// installed; with c == nil MapCached is exactly Map.
func MapCached[R any](c Cache, n int, key func(i int) string, job func(i int) R) []R {
	return MapCachedN(c, n, 0, key, job)
}

// MapCachedN is MapCached with an explicit worker count for the
// miss-computing pool (workers <= 0 selects the process-wide default, so
// SetWorkers still governs callers that do not pin a count).
func MapCachedN[R any](c Cache, n, workers int, key func(i int) string, job func(i int) R) []R {
	if workers <= 0 {
		workers = Workers()
	}
	if c == nil {
		return MapN(n, workers, job)
	}
	out := make([]R, n)
	keys := make([]string, n)
	var miss []int
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		if payload, ok := c.Get(keys[i]); ok && decodeResult(payload, &out[i]) {
			continue
		}
		// A decode failure after a successful Get leaves out[i] partially
		// filled; reset it so the recompute starts from a zero value.
		var zero R
		out[i] = zero
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return out
	}
	// Only the misses occupy workers; each stores its result as soon as
	// it is computed, so an interrupted sweep still persists every
	// finished design point.
	results := MapN(len(miss), workers, func(j int) R {
		r := job(miss[j])
		if payload, ok := encodeResult(r); ok {
			c.Put(keys[miss[j]], payload)
		}
		return r
	})
	for j, i := range miss {
		out[i] = results[j]
	}
	return out
}

// encodeResult renders one result as a gob payload.
func encodeResult[R any](r R) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&r); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// decodeResult parses a gob payload into out, reporting success.
func decodeResult[R any](payload []byte, out *R) bool {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(out) == nil
}
