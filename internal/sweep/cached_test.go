package sweep

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// mapCache is an in-memory Cache for tests.
type mapCache struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
}

func newMapCache() *mapCache { return &mapCache{entries: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	p, ok := c.entries[key]
	return p, ok
}

func (c *mapCache) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.entries[key] = append([]byte(nil), payload...)
}

// result exercises the exported-field struct path (the shape harness
// experiments cache).
type result struct {
	Index int
	Thr   float64
	Label string
}

func TestMapCachedColdThenWarm(t *testing.T) {
	c := newMapCache()
	key := func(i int) string { return fmt.Sprintf("job-%d", i) }
	var calls []int
	var mu sync.Mutex
	job := func(i int) result {
		mu.Lock()
		calls = append(calls, i)
		mu.Unlock()
		return result{Index: i, Thr: float64(i) * 1.5, Label: fmt.Sprintf("r%d", i)}
	}
	const n = 9
	cold := MapCached(c, n, key, job)
	if len(calls) != n {
		t.Fatalf("cold run computed %d jobs, want %d", len(calls), n)
	}
	if c.puts != n {
		t.Fatalf("cold run stored %d entries, want %d", c.puts, n)
	}
	calls = nil
	warm := MapCached(c, n, key, func(i int) result {
		t.Errorf("warm run recomputed job %d", i)
		return result{}
	})
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm run differs:\ncold %+v\nwarm %+v", cold, warm)
	}
	for i, r := range warm {
		if r.Index != i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

func TestMapCachedPartialHits(t *testing.T) {
	c := newMapCache()
	key := func(i int) string { return fmt.Sprintf("k%d", i) }
	full := MapCached(c, 6, key, func(i int) int { return i * i })
	// Drop half the entries; only those recompute.
	c.mu.Lock()
	delete(c.entries, "k1")
	delete(c.entries, "k4")
	c.mu.Unlock()
	var recomputed []int
	var mu sync.Mutex
	again := MapCached(c, 6, key, func(i int) int {
		mu.Lock()
		recomputed = append(recomputed, i)
		mu.Unlock()
		return i * i
	})
	if !reflect.DeepEqual(full, again) {
		t.Fatalf("partial-hit run differs: %v vs %v", full, again)
	}
	if len(recomputed) != 2 {
		t.Fatalf("recomputed %v, want exactly the two evicted jobs", recomputed)
	}
}

func TestMapCachedRejectsUndecodablePayload(t *testing.T) {
	c := newMapCache()
	key := func(i int) string { return "k" }
	c.Put("k", []byte("not a gob payload"))
	got := MapCached(c, 1, key, func(i int) result { return result{Index: 42} })
	if got[0].Index != 42 {
		t.Fatalf("corrupt payload served: %+v", got[0])
	}
	// The recompute overwrote the bad entry with a decodable one.
	warm := MapCached(c, 1, key, func(i int) result {
		t.Error("repaired entry missed")
		return result{}
	})
	if warm[0].Index != 42 {
		t.Fatalf("repaired entry = %+v", warm[0])
	}
}

func TestMapCachedNilCacheIsMap(t *testing.T) {
	keyCalls := 0
	got := MapCached[int](nil, 4, func(i int) string { keyCalls++; return "" }, func(i int) int { return i + 1 })
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("nil-cache result %v", got)
	}
	if keyCalls != 0 {
		t.Fatal("key derived with caching disabled")
	}
}

func TestMapCachedOrderingAcrossWorkers(t *testing.T) {
	// Mixed hits and misses must land in index order at every worker
	// count, exactly like Map.
	for _, workers := range []int{1, 2, 8} {
		SetWorkers(workers)
		c := newMapCache()
		key := func(i int) string { return fmt.Sprintf("w%d", i) }
		MapCached(c, 16, key, func(i int) int { return i })
		c.mu.Lock()
		for i := 0; i < 16; i += 3 {
			delete(c.entries, key(i))
		}
		c.mu.Unlock()
		got := MapCached(c, 16, key, func(i int) int { return i })
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: index %d holds %d", workers, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestMapCachedDuplicateKeysComputeOnce(t *testing.T) {
	// Duplicate keys within one call are the in-call face of the
	// single-flight bug: without dedup, a serial sweep computes the
	// shared key once per index.
	for _, workers := range []int{1, 4} {
		c := newMapCache()
		var computes atomic.Int32
		got := MapCachedN(c, 4, workers,
			func(i int) string { return "shared" },
			func(i int) result {
				computes.Add(1)
				return result{Index: 7, Label: "same"}
			})
		if n := computes.Load(); n != 1 {
			t.Fatalf("workers=%d: %d computes for one shared key, want 1", workers, n)
		}
		for i, r := range got {
			if r.Index != 7 || r.Label != "same" {
				t.Fatalf("workers=%d: result %d = %+v, want the shared result", workers, i, r)
			}
		}
		if c.puts != 1 {
			t.Fatalf("workers=%d: %d puts, want 1", workers, c.puts)
		}
	}
}

func TestMapCachedConcurrentCallsSingleFlight(t *testing.T) {
	// Two concurrent MapCached calls missing the same key must cost one
	// compute: the second call blocks on the first's in-flight result.
	// The handshake is deterministic — the leader registers its flight
	// before running the job (so once the job has signalled `started`,
	// any later call finds the flight), and the test only releases the
	// leader after the join hook confirms the second call attached.
	c := newMapCache()
	joined := make(chan string, 1)
	testFlightJoined = func(key string) { joined <- key }
	defer func() { testFlightJoined = nil }()
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	key := func(i int) string { return "contended" }
	first := make(chan []result)
	go func() {
		first <- MapCached(c, 1, key, func(i int) result {
			computes.Add(1)
			close(started)
			<-release
			return result{Index: 1, Thr: 2.5}
		})
	}()
	<-started
	second := make(chan []result)
	go func() {
		second <- MapCached(c, 1, key, func(i int) result {
			computes.Add(1) // must never run
			return result{}
		})
	}()
	if k := <-joined; k != "contended" {
		t.Fatalf("second call joined flight %q, want %q", k, "contended")
	}
	close(release)
	a, b := <-first, <-second
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes across concurrent identical sweeps, want 1", n)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("waiter result %+v differs from leader result %+v", b, a)
	}
	if c.puts != 1 {
		t.Fatalf("%d puts, want only the leader's", c.puts)
	}
}

func TestComputeSharedWaiterDecodesLeaderResult(t *testing.T) {
	// Direct single-flight unit: a second computeShared on a registered
	// key joins the flight and never runs its own job. The leader is held
	// open until the join hook confirms the waiter attached.
	c := newMapCache()
	joined := make(chan string, 1)
	testFlightJoined = func(key string) { joined <- key }
	defer func() { testFlightJoined = nil }()
	ready := make(chan struct{})
	release := make(chan struct{})
	leader := make(chan result)
	go func() {
		leader <- computeShared(c, "k", func() result {
			close(ready)
			<-release
			return result{Index: 9, Label: "lead"}
		})
	}()
	<-ready
	waiter := make(chan result)
	go func() {
		waiter <- computeShared(c, "k", func() result {
			t.Error("waiter computed despite an in-flight leader")
			return result{}
		})
	}()
	if k := <-joined; k != "k" {
		t.Fatalf("waiter joined flight %q, want %q", k, "k")
	}
	close(release)
	lr, wr := <-leader, <-waiter
	if !reflect.DeepEqual(lr, wr) {
		t.Fatalf("waiter got %+v, leader computed %+v", wr, lr)
	}
}

func TestComputeSharedPanickingLeaderReleasesWaiters(t *testing.T) {
	// A leader that panics must not strand waiters: the flight resolves
	// empty and the waiter computes locally.
	c := newMapCache()
	joined := make(chan string, 1)
	testFlightJoined = func(key string) { joined <- key }
	defer func() { testFlightJoined = nil }()
	ready := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		computeShared(c, "boom", func() result {
			close(ready)
			<-release
			panic("leader died")
		})
	}()
	<-ready
	waiter := make(chan result)
	go func() {
		waiter <- computeShared(c, "boom", func() result {
			return result{Index: 3}
		})
	}()
	if k := <-joined; k != "boom" {
		t.Fatalf("waiter joined flight %q, want %q", k, "boom")
	}
	close(release)
	if r := <-waiter; r.Index != 3 {
		t.Fatalf("waiter result %+v, want its own local compute", r)
	}
}

func TestMapCachedFloatBitExact(t *testing.T) {
	// Floats must round-trip bit-exactly: rendered tables compare byte
	// for byte between cold and warm runs.
	c := newMapCache()
	vals := []float64{0.1, 1.0 / 3.0, 2.2250738585072014e-308, 6.9}
	key := func(i int) string { return fmt.Sprintf("f%d", i) }
	cold := MapCached(c, len(vals), key, func(i int) float64 { return vals[i] })
	warm := MapCached(c, len(vals), key, func(i int) float64 {
		t.Errorf("job %d recomputed", i)
		return 0
	})
	for i := range vals {
		if cold[i] != vals[i] || warm[i] != vals[i] {
			t.Fatalf("float %d drifted: %x vs %x", i, warm[i], vals[i])
		}
	}
}
