// Package clock provides the fixed-point time base shared by every
// component of the simulator.
//
// All simulated time is expressed in integer picoseconds so that clock
// domains with non-commensurate frequencies (a 3.2 GHz CPU, a 1.2 GHz
// DDR4-2400 command bus, a 350 MHz DPU) can interoperate without floating
// point in the timing path.
package clock

import "fmt"

// Picos is a point in simulated time, or a duration, in picoseconds.
type Picos int64

// Convenient duration units.
const (
	Picosecond  Picos = 1
	Nanosecond  Picos = 1000
	Microsecond Picos = 1000 * Nanosecond
	Millisecond Picos = 1000 * Microsecond
	Second      Picos = 1000 * Millisecond
)

// Never is a sentinel meaning "no pending event".
const Never Picos = 1<<63 - 1

// Seconds converts a duration to floating-point seconds for reporting.
func (p Picos) Seconds() float64 { return float64(p) / float64(Second) }

// Nanoseconds converts a duration to floating-point nanoseconds for reporting.
func (p Picos) Nanoseconds() float64 { return float64(p) / float64(Nanosecond) }

func (p Picos) String() string {
	switch {
	case p == Never:
		return "never"
	case p >= Second:
		return fmt.Sprintf("%.3fs", p.Seconds())
	case p >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(p)/float64(Millisecond))
	case p >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(p)/float64(Microsecond))
	case p >= Nanosecond:
		return fmt.Sprintf("%.3fns", p.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(p))
	}
}

// Hz is a clock frequency in cycles per second.
type Hz int64

const (
	KHz Hz = 1000
	MHz Hz = 1000 * KHz
	GHz Hz = 1000 * MHz
)

// Domain is a clock domain: a frequency plus helpers to convert between
// cycle counts and picosecond timestamps. The zero value is unusable; use
// NewDomain.
type Domain struct {
	freq   Hz
	period Picos
}

// NewDomain builds a clock domain at the given frequency. It panics on a
// non-positive frequency because a domain is always a static configuration
// error, never a runtime condition.
func NewDomain(freq Hz) Domain {
	if freq <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %d", freq))
	}
	return Domain{freq: freq, period: Picos(int64(Second) / int64(freq))}
}

// Freq reports the domain frequency.
func (d Domain) Freq() Hz { return d.freq }

// Period reports the duration of one cycle, truncated to a picosecond.
func (d Domain) Period() Picos { return d.period }

// Cycles converts a duration to a whole number of elapsed cycles
// (truncating).
func (d Domain) Cycles(t Picos) int64 {
	if t < 0 {
		return 0
	}
	return int64(t) / int64(d.period)
}

// CyclesCeil converts a duration to cycles, rounding up, so that a
// component never acts before a constraint expires.
func (d Domain) CyclesCeil(t Picos) int64 {
	if t <= 0 {
		return 0
	}
	return (int64(t) + int64(d.period) - 1) / int64(d.period)
}

// Duration converts a cycle count to picoseconds.
func (d Domain) Duration(cycles int64) Picos { return Picos(cycles) * d.period }

// Align rounds t up to the next cycle boundary of this domain.
func (d Domain) Align(t Picos) Picos {
	p := int64(d.period)
	return Picos((int64(t) + p - 1) / p * p)
}

func (d Domain) String() string {
	switch {
	case d.freq >= GHz:
		return fmt.Sprintf("%.2fGHz", float64(d.freq)/float64(GHz))
	case d.freq >= MHz:
		return fmt.Sprintf("%.0fMHz", float64(d.freq)/float64(MHz))
	default:
		return fmt.Sprintf("%dHz", int64(d.freq))
	}
}
