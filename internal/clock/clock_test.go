package clock

import (
	"testing"
	"testing/quick"
)

func TestDomainPeriod(t *testing.T) {
	cases := []struct {
		freq   Hz
		period Picos
	}{
		{1 * GHz, 1000},
		{2 * GHz, 500},
		{3200 * MHz, 312}, // 3.2 GHz CPU: 312.5 ps truncated
		{1200 * MHz, 833}, // DDR4-2400 command clock
		{350 * MHz, 2857}, // UPMEM DPU
	}
	for _, c := range cases {
		d := NewDomain(c.freq)
		if d.Period() != c.period {
			t.Errorf("NewDomain(%v).Period() = %d, want %d", c.freq, d.Period(), c.period)
		}
	}
}

func TestDomainCycleConversions(t *testing.T) {
	d := NewDomain(1 * GHz) // 1000 ps period
	if got := d.Cycles(2500); got != 2 {
		t.Errorf("Cycles(2500) = %d, want 2", got)
	}
	if got := d.CyclesCeil(2500); got != 3 {
		t.Errorf("CyclesCeil(2500) = %d, want 3", got)
	}
	if got := d.CyclesCeil(3000); got != 3 {
		t.Errorf("CyclesCeil(3000) = %d, want 3", got)
	}
	if got := d.Duration(7); got != 7000 {
		t.Errorf("Duration(7) = %d, want 7000", got)
	}
	if got := d.Cycles(-5); got != 0 {
		t.Errorf("Cycles(-5) = %d, want 0", got)
	}
	if got := d.CyclesCeil(0); got != 0 {
		t.Errorf("CyclesCeil(0) = %d, want 0", got)
	}
}

func TestDomainAlign(t *testing.T) {
	d := NewDomain(1200 * MHz) // 833 ps
	if got := d.Align(0); got != 0 {
		t.Errorf("Align(0) = %d, want 0", got)
	}
	if got := d.Align(1); got != 833 {
		t.Errorf("Align(1) = %d, want 833", got)
	}
	if got := d.Align(833); got != 833 {
		t.Errorf("Align(833) = %d, want 833", got)
	}
	if got := d.Align(834); got != 1666 {
		t.Errorf("Align(834) = %d, want 1666", got)
	}
}

// Property: Duration(Cycles(t)) <= t for any non-negative t (truncation
// never moves time forward), and Duration(CyclesCeil(t)) >= t.
func TestCycleRoundingProperties(t *testing.T) {
	d := NewDomain(3200 * MHz)
	f := func(raw int64) bool {
		tp := Picos(raw % (int64(Second) * 10))
		if tp < 0 {
			tp = -tp
		}
		down := d.Duration(d.Cycles(tp))
		up := d.Duration(d.CyclesCeil(tp))
		return down <= tp && up >= tp && up-down <= d.Period()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDomainPanicsOnZeroFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDomain(0) did not panic")
		}
	}()
	NewDomain(0)
}

func TestPicosString(t *testing.T) {
	cases := []struct {
		p    Picos
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1.000s"},
		{Never, "never"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Picos(%d).String() = %q, want %q", int64(c.p), got, c.want)
		}
	}
}

func TestUnitRelations(t *testing.T) {
	if Nanosecond != 1000*Picosecond || Microsecond != 1000*Nanosecond ||
		Millisecond != 1000*Microsecond || Second != 1000*Millisecond {
		t.Error("time unit constants are inconsistent")
	}
}

func TestSecondsReporting(t *testing.T) {
	if got := (2 * Millisecond).Seconds(); got != 0.002 {
		t.Errorf("Seconds() = %v, want 0.002", got)
	}
	if got := (5 * Nanosecond).Nanoseconds(); got != 5 {
		t.Errorf("Nanoseconds() = %v, want 5", got)
	}
}
