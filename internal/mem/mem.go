// Package mem defines the memory request types exchanged between request
// generators (CPU cores, the Data Copy Engine, contender workloads) and the
// DDR4 memory controllers, together with the physical address-space layout
// of a memory-bus-integrated PIM system.
//
// Following the paper (Section II-B), the physical address space is split
// into two mutually exclusive regions: a DRAM region served by conventional
// DIMMs and a PIM region in which every bank is owned by one PIM core.
// Requests to the PIM region are non-cacheable, exactly as in UPMEM systems.
package mem

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/sim"
)

// LineBytes is the transfer granularity of the memory system: one 64-byte
// cache line, equal to one DDR4 BL8 burst on a 64-bit channel.
const LineBytes = 64

// Space identifies which half of the split physical address space an
// address belongs to.
type Space int

const (
	// SpaceDRAM is the conventional DRAM region.
	SpaceDRAM Space = iota
	// SpacePIM is the PIM region; each bank belongs to a single PIM core
	// and accesses bypass the cache hierarchy.
	SpacePIM
)

func (s Space) String() string {
	if s == SpacePIM {
		return "PIM"
	}
	return "DRAM"
}

// PIMBase is the base physical address of the PIM region. The BIOS of a
// real PIM system programs this split at boot (Section IV-E); we place the
// PIM region at 256 GiB, far above any DRAM capacity we configure.
const PIMBase uint64 = 1 << 38

// SpaceOf classifies a physical address.
func SpaceOf(addr uint64) Space {
	if addr >= PIMBase {
		return SpacePIM
	}
	return SpaceDRAM
}

// Kind distinguishes reads from writes.
type Kind int

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Req is one line-sized memory request. Requests are created by an agent,
// enqueued at a channel controller, and completed by invoking OnDone once
// the data burst finishes on the bus.
type Req struct {
	// Addr is the line-aligned physical address.
	Addr uint64
	// Kind is Read or Write.
	Kind Kind
	// Cacheable requests may be served by the LLC; non-cacheable requests
	// (all PIM-space traffic) always reach the memory controller.
	Cacheable bool
	// Enqueued is when the request entered the controller queue; the
	// controller sets it.
	Enqueued clock.Picos
	// OnDone, if non-nil, runs when the request's data transfer completes.
	OnDone func(now clock.Picos)

	// DeliverOn, if non-nil, is the lane LLC-hit completions for this
	// request should be delivered on — the issuing agent's own lane on a
	// sharded engine (its deliveries then fire lane-locally inside
	// windows instead of serially at the frontier). The agent asserts
	// OnDone touches nothing outside that lane; when the assertion can
	// stop holding (the owning thread blocks, is preempted or migrates),
	// it must promote in-flight deliveries back to the frontier via the
	// port's HitPromoter surface. A nil DeliverOn keeps hits on the
	// memory system's own batched host-lane queue — the memory system
	// also falls back to it whenever the engine executes serially, where
	// lane delivery would cost a frontier scan per hit; delivery order
	// is identical on both paths. Misses are unaffected either way:
	// they complete through the channel controllers.
	DeliverOn sim.Scheduler

	// SrcID tags the requesting agent for per-agent statistics
	// (e.g. distinguishing transfer traffic from contender traffic).
	SrcID int
}

func (r *Req) String() string {
	return fmt.Sprintf("%s %s 0x%x", r.Kind, SpaceOf(r.Addr), r.Addr)
}

// LineAlign rounds an address down to its line.
func LineAlign(addr uint64) uint64 { return addr &^ uint64(LineBytes-1) }

// Port is the interface request generators use to reach the memory system.
// TryEnqueue reports false when the target controller queue is full; the
// caller must retry after Wakeup fires (registered via WaitSpace).
type Port interface {
	// TryEnqueue attempts to hand the request to the memory system.
	TryEnqueue(r *Req) bool
	// WaitSpace registers a callback invoked (once) the next time queue
	// space that previously caused a TryEnqueue failure becomes available.
	WaitSpace(fn func())
}

// HitPromoter is the optional port surface behind per-requester LLC-hit
// delivery (Req.DeliverOn): PromoteHits reclassifies every in-flight hit
// delivery tagged with srcID as a frontier (crossing) event, because the
// requesting agent's completion callback is about to stop being
// lane-local — its thread blocks, is preempted, or migrates. Ports that
// never defer hits off the host lane simply don't implement it.
type HitPromoter interface {
	PromoteHits(srcID int)
}
