package system

import "repro/internal/resultcache"

// configSchema versions the fingerprint derivation itself; bump it when
// the meaning of an existing field changes without its name or type
// changing (the canonical encoding cannot see that).
const configSchema = "system.Config/v1"

// Fingerprint returns a stable content digest of the configuration:
// every exported field — recursively, covering the memory system, CPU,
// PIM geometry, DCE, energy model, transfer engines, design point, and
// lane topology settings — is canonically encoded and hashed. Two
// configs share a fingerprint iff every semantically meaningful field
// agrees (proven per-field by the reflection-based sensitivity test), so
// the fingerprint is a sound cache-key component for any result that is
// a pure function of the machine: by the determinism contract, that is
// every simulation result.
//
// Shards and CoreLanes participate even though results are identical
// across lane topologies (sharded_test.go pins that): including them is
// conservative — differing topologies re-simulate rather than share
// entries — and keeps the fingerprint free of knowledge about which
// fields happen to be result-neutral.
func (c Config) Fingerprint() string {
	return resultcache.KeyOf(configSchema, string(resultcache.Canonical(c)))
}
