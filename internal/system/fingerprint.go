package system

import "repro/internal/resultcache"

// configSchema versions the fingerprint derivation itself; bump it when
// the meaning of an existing field changes without its name or type
// changing (the canonical encoding cannot see that), or when the
// neutral-field mask changes (the encoding of the remaining fields
// stays the same, so only the schema tag separates old keys from new).
//
// v2: Shards and CoreLanes left the encoding (neutralFields below);
// caches warmed under v1 never hit again — prune them with
// `pimmu-sim -cache-gc` after a code-version bump, or leave them to
// age out.
const configSchema = "system.Config/v2"

// neutralFields are the Config fields excluded from the fingerprint
// because they are proven result-neutral: the cross-topology
// determinism suite (sharded_test.go, plus the slow-tier experiment
// audit) pins byte-identical output across every CoreLanes value and
// every Shards value >= 1 including Auto. Worker counts never appear
// here because they are not Config fields at all — parallelism level
// (harness.Runner.Workers, sweep.SetWorkers) lives outside the
// simulated machine's configuration.
//
// Shards is masked but not ignored: the plain serial engine (Shards ==
// 0) may break same-instant event ties differently from any sharded
// engine on CPU-streaming workloads, so Fingerprint folds the engine
// class — plain vs sharded — back into the key below. SeriesWindow
// (Mem.*.SeriesWindow) is deliberately NOT masked: it changes what the
// simulation records (per-channel bandwidth series on or off), so two
// configs differing there do not compute the same result payload.
var neutralFields = resultcache.Mask{
	"Shards":    true,
	"CoreLanes": true,
}

// engineClass projects Shards onto the only distinction that can reach
// results: whether the machine runs the plain serial engine or a
// sharded one. Auto (-1) normalizes to a host-sized shard count >= 1,
// so it is sharded.
func (c Config) engineClass() string {
	if c.Shards == 0 {
		return "plain"
	}
	return "sharded"
}

// Fingerprint returns a stable content digest of the configuration:
// every exported field — recursively, covering the memory system, CPU,
// PIM geometry, DCE, energy model, transfer engines, design point, and
// lane topology settings — is canonically encoded and hashed, except
// the result-neutral lane-topology knobs (neutralFields). Two configs
// share a fingerprint iff every result-affecting field agrees (proven
// per-field by the reflection-based sensitivity test), so the
// fingerprint is a sound cache-key component for any result that is a
// pure function of the machine: by the determinism contract, that is
// every simulation result.
//
// Shards and CoreLanes are masked out precisely because results are
// byte-identical across lane topologies (sharded_test.go pins that):
// a cache warmed at -shards 1 serves renders at -shards 4 -core-lanes
// auto without re-simulating. The one residual distinction — the plain
// serial engine can order same-instant ties differently than any
// sharded engine — survives as the engine-class key part.
func (c Config) Fingerprint() string {
	return resultcache.KeyOf(configSchema, c.engineClass(),
		string(resultcache.CanonicalMasked(c, neutralFields)))
}
