package system

import (
	"repro/internal/core"
	"repro/internal/energy"
)

// ChannelStat is the per-PIM-channel slice of a TransferMeasurement.
type ChannelStat struct {
	BytesWritten uint64
	RowHitRate   float64
}

// TransferMeasurement is one design point's whole-device transfer
// outcome — pure data, so it round-trips through the result cache and
// is addressable from an experiment plan; everything the CLI reports
// print is captured here, not held in a live *System.
type TransferMeasurement struct {
	Res    XferResult
	Energy energy.Breakdown

	DRAMRead, DRAMWritten uint64
	PIMRead, PIMWritten   uint64
	PIMCh                 []ChannelStat
}

// MeasureTransfer runs one whole-device transfer of mb MiB (split
// across every PIM core, floored to one line per core) and snapshots
// the result, the energy over the transfer, and the memory-system
// counters the detailed reports render.
func (s *System) MeasureTransfer(dir core.Direction, mb uint64) TransferMeasurement {
	per := (mb << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	before := s.Activity()
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	m := TransferMeasurement{Res: res, Energy: s.EnergyOver(before, s.Activity())}
	ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
	m.DRAMRead, m.DRAMWritten = ds.BytesRead(), ds.BytesWritten()
	m.PIMRead, m.PIMWritten = ps.BytesRead(), ps.BytesWritten()
	for _, c := range ps.Channels {
		m.PIMCh = append(m.PIMCh, ChannelStat{BytesWritten: c.BytesWritten, RowHitRate: c.RowHitRate()})
	}
	return m
}
