package system_test

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/system"
	"repro/internal/trace"
)

// benchContenders builds a Table I machine at the given lane topology
// with n spin contenders — the Fig. 13a interference workload: every
// thread alternates compute-span chains (lane-local on a per-core lane)
// with LLC-hit loads (crossings at the memory-system boundary) — and
// runs it for simTime. It returns the machine for verification.
func benchContenders(shards, coreLanes, n int, simTime clock.Picos) *system.System {
	cfg := system.DefaultConfig(system.Base)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	s := system.MustNew(cfg)
	const wset = 16 << 10
	base := s.Alloc(uint64(n) * wset)
	st := s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
		return contend.Spin(st, base+uint64(i)*wset)
	})
	s.Eng.RunUntil(simTime)
	st.Stop()
	return s
}

// BenchmarkEngineShardedCores measures the multi-contender speedup of
// per-core host lanes on the Fig. 13a spin-contender workload — the
// artifact captured into BENCH_engine.json, framed exactly like the
// channel counterpart (BenchmarkEngineShardedChannels): the plain
// engine, the sharded queue executed serially (lanes1, the determinism
// reference), windowed execution at 2/4/8 workers with one lane per
// core, and — for the topology comparison — 8 workers with every core
// left on the host lane (PR 3 behavior). The windowed core-lane rows
// beat lanes1 even single-threaded (batched lane dispatch skips the
// per-event frontier scan); on multi-core hardware the 8 lanes'
// windows additionally execute in parallel.
func BenchmarkEngineShardedCores(b *testing.B) {
	const (
		contenders = 8
		simTime    = 4 * clock.Millisecond
	)
	for _, p := range []struct {
		name              string
		shards, coreLanes int
	}{
		{"serial", 0, 0},
		{"lanes1", 1, 8},
		{"lanes2", 2, 8},
		{"lanes4", 4, 8},
		{"lanes8", 8, 8},
		{"host-lanes8", 8, 0},
	} {
		b.Run(p.name, func(b *testing.B) {
			var memOps uint64
			for i := 0; i < b.N; i++ {
				s := benchContenders(p.shards, p.coreLanes, contenders, simTime)
				memOps = 0
				for _, c := range s.CPU.Cores() {
					if t := c.Thread(); t != nil {
						memOps += t.MemOps
					}
				}
			}
			b.ReportMetric(float64(memOps), "memops")
		})
	}
}

// hitLoop returns a hit-dominated contender: bursts of LLC-hit loads
// inside a 16 KB working set separated by one short lane-local compute
// chunk. Where Spin spends 4096 cycles of compute per load, hitLoop
// issues four loads per 512 cycles — the completion stream is almost
// entirely LLC-hit deliveries, which is exactly the traffic the
// per-requester delivery path takes off the serial frontier.
func hitLoop(st *contend.Stopper, base uint64) cpu.Program {
	const (
		chunkCycles = 512
		burstLoads  = 4
		wsetBytes   = 16 << 10
	)
	i, phase := 0, 0
	return cpu.ProgramFunc(func() (cpu.Op, bool) {
		if st.Stopped() {
			return cpu.Op{}, false
		}
		if phase < burstLoads {
			phase++
			addr := base + uint64(i%(wsetBytes/mem.LineBytes))*mem.LineBytes
			i++
			return cpu.Op{Kind: cpu.OpLoad, Addr: addr}, true
		}
		phase = 0
		return cpu.Op{Kind: cpu.OpCompute, Cycles: chunkCycles}, true
	})
}

// benchHitContenders is benchContenders with the hit-dominated workload
// and an oversubscribed thread count, so quantum rotations exercise the
// delivery-promotion path under load.
func benchHitContenders(shards, coreLanes, n int, simTime clock.Picos) *system.System {
	cfg := system.DefaultConfig(system.Base)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	s := system.MustNew(cfg)
	const wset = 16 << 10
	base := s.Alloc(uint64(n) * wset)
	st := s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
		return hitLoop(st, base+uint64(i)*wset)
	})
	s.Eng.RunUntil(simTime)
	st.Stop()
	return s
}

// BenchmarkEngineContendedHits measures the tentpole payoff on the
// contender path itself: a hit-dominated Fig. 13-style workload where
// nearly every completion is an LLC-hit delivery. With per-requester
// delivery those completions ride the issuing core's lane and execute
// inside that lane's windows, so on a multi-core host the 16 threads'
// delivery streams drain in parallel instead of one at a time at the
// frontier. On a single-CPU runner the laned rows sit at parity with
// the host-queue baseline (each hit is followed by a crossing enqueue,
// so the frontier still paces per-load progress when windows cannot
// overlap) — there the payoff row is auto, which sizes workers to the
// host and keeps the cheap serial hit path. The auto row runs the
// adaptive controller end to end: Normalize sizes the topology to the
// host, the controller tunes window thresholds and the worker pool from
// live ShardStats.
func BenchmarkEngineContendedHits(b *testing.B) {
	const (
		contenders = 16
		simTime    = 2 * clock.Millisecond
	)
	for _, p := range []struct {
		name              string
		shards, coreLanes int
	}{
		{"serial", 0, 0},
		{"lanes1", 1, 8},
		{"lanes8", 8, 8},
		{"host-lanes8", 8, 0},
		{"auto", system.Auto, system.Auto},
	} {
		b.Run(p.name, func(b *testing.B) {
			var memOps uint64
			for i := 0; i < b.N; i++ {
				s := benchHitContenders(p.shards, p.coreLanes, contenders, simTime)
				memOps = 0
				for _, c := range s.CPU.Cores() {
					if t := c.Thread(); t != nil {
						memOps += t.MemOps
					}
				}
			}
			b.ReportMetric(float64(memOps), "memops")
		})
	}
}

// benchOpenLoop runs one open-loop Poisson load point (32 GB/s offered,
// the mixed pattern over a 1 MiB footprint) at the given lane topology
// and returns its result for verification.
func benchOpenLoop(shards, coreLanes int) trace.LoadResult {
	cfg := system.DefaultConfig(system.PIMMMU)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	s := system.MustNew(cfg)
	gen := trace.DefaultGenConfig()
	gen.FootprintLines = 1 << 14
	gen.Base = s.Alloc(gen.FootprintBytes(trace.PatternMixed))
	recs := trace.MustGenerate(trace.PatternMixed, gen)
	dcfg := trace.DefaultDriverConfig()
	dcfg.MeanGap = 2 * clock.Nanosecond
	dcfg.Duration = 32 * clock.Microsecond
	r, err := s.RunLoad(recs, dcfg)
	if err != nil {
		panic(err)
	}
	return r
}

// BenchmarkEngineOpenLoopLoad measures the engine cost of the open-loop
// driver path — the loadcurve experiment's inner loop — on the serial
// engine, the sharded queue executed serially (the determinism
// reference), and windowed execution at 4 workers. Captured into
// BENCH_engine.json and gated by bench-compare like the other engine
// benches.
func BenchmarkEngineOpenLoopLoad(b *testing.B) {
	for _, p := range []struct {
		name              string
		shards, coreLanes int
	}{
		{"serial", 0, 0},
		{"lanes1", 1, 0},
		{"lanes4", 4, 0},
	} {
		b.Run(p.name, func(b *testing.B) {
			var completed uint64
			for i := 0; i < b.N; i++ {
				completed = benchOpenLoop(p.shards, p.coreLanes).Completed
			}
			b.ReportMetric(float64(completed), "reqs")
		})
	}
}

// TestBenchContendersDeterministic pins that the benchmark workload
// itself is lane-topology invariant — per-thread progress and engine
// event counts match bit for bit — so the speedup comparison is apples
// to apples.
func TestBenchContendersDeterministic(t *testing.T) {
	workloads := []struct {
		name  string
		build func(shards, coreLanes int) *system.System
	}{
		{"spin", func(sh, cl int) *system.System {
			return benchContenders(sh, cl, 8, 2*clock.Millisecond)
		}},
		{"hit-loop", func(sh, cl int) *system.System {
			return benchHitContenders(sh, cl, 16, clock.Millisecond)
		}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			snap := func(shards, coreLanes int) string {
				s := w.build(shards, coreLanes)
				out := fmt.Sprintf("now=%v", s.Eng.Now())
				for _, c := range s.CPU.Cores() {
					if th := c.Thread(); th != nil {
						out += fmt.Sprintf(" [%s ops=%d busy=%v]", th.Name, th.MemOps, c.BusyTime())
					}
				}
				ls := s.Mem.LLC.Stats()
				out += fmt.Sprintf(" llc=%d/%d", ls.Hits, ls.Misses)
				return out
			}
			want := snap(0, 0)
			for _, p := range []struct{ shards, coreLanes int }{
				{1, 0}, {1, 4}, {2, 2}, {4, 8}, {8, 8},
				{system.Auto, system.Auto},
			} {
				if got := snap(p.shards, p.coreLanes); got != want {
					t.Errorf("shards=%d core-lanes=%d diverged:\nwant %s\ngot  %s",
						p.shards, p.coreLanes, want, got)
				}
			}
		})
	}
}
