package system

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// smallCfg shrinks the machine for fast tests.
func smallCfg(d Design) Config {
	cfg := DefaultConfig(d)
	cfg.Mem.DRAM.Geometry.Channels = 2
	cfg.Mem.DRAM.Geometry.Ranks = 1
	cfg.Mem.PIM.Geometry.Channels = 2
	cfg.Mem.PIM.Geometry.Ranks = 1
	cfg.PIM.DRAM.Channels = 2
	cfg.PIM.DRAM.Ranks = 1
	return cfg
}

func TestDesignConfigDerivation(t *testing.T) {
	cases := []struct {
		d        Design
		mapping  memsys.MappingMode
		usePIMMS bool
	}{
		{Base, memsys.MapLocalityBoth, true}, // DCE unused for Base
		{BaseD, memsys.MapLocalityBoth, false},
		{BaseDH, memsys.MapHetMap, false},
		{PIMMMU, memsys.MapHetMap, true},
	}
	for _, c := range cases {
		cfg := DefaultConfig(c.d)
		if cfg.Mem.Mapping != c.mapping {
			t.Errorf("%v: mapping = %v, want %v", c.d, cfg.Mem.Mapping, c.mapping)
		}
		if c.d != Base && cfg.DCE.UsePIMMS != c.usePIMMS {
			t.Errorf("%v: UsePIMMS = %v, want %v", c.d, cfg.DCE.UsePIMMS, c.usePIMMS)
		}
	}
	for _, d := range Designs() {
		if err := DefaultConfig(d).Validate(); err != nil {
			t.Errorf("%v: default config invalid: %v", d, err)
		}
	}
}

func TestDesignStrings(t *testing.T) {
	want := map[Design]string{Base: "Base", BaseD: "Base+D",
		BaseDH: "Base+D+H", PIMMMU: "Base+D+H+P", Design(9): "unknown"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Design(%d).String() = %q, want %q", int(d), d.String(), s)
		}
	}
	if Base.UsesDCE() || !PIMMMU.UsesDCE() || !BaseD.UsesDCE() {
		t.Error("UsesDCE wrong")
	}
}

func TestAllocBumpAndExhaustion(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	a := s.Alloc(100) // rounds to 128
	b := s.Alloc(64)
	if b != a+128 {
		t.Errorf("allocations not line-aligned bump: 0x%x then 0x%x", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("region exhaustion did not panic")
		}
	}()
	s.Alloc(1 << 60)
}

func TestRunTransferBothDesignsAndDirections(t *testing.T) {
	for _, d := range []Design{Base, PIMMMU} {
		for _, dir := range []core.Direction{core.DRAMToPIM, core.PIMToDRAM} {
			s := MustNew(smallCfg(d))
			res := s.RunTransfer(s.TransferOp(dir, 32, 2048))
			if res.Bytes != 32*2048 {
				t.Errorf("%v %v: bytes = %d", d, dir, res.Bytes)
			}
			if res.Duration <= 0 || res.Throughput() <= 0 {
				t.Errorf("%v %v: degenerate result %+v", d, dir, res)
			}
			if res.Design != d || res.Dir != dir {
				t.Errorf("%v %v: result tagged %v %v", d, dir, res.Design, res.Dir)
			}
		}
	}
}

// The ablation ordering at a bandwidth-bound size: PIM-MMU > Base >
// Base+D (vanilla DMA loses to software, Fig. 15).
func TestAblationOrdering(t *testing.T) {
	const per = 8 << 10
	tput := func(d Design) float64 {
		s := MustNew(smallCfg(d))
		return s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per)).Throughput()
	}
	base := tput(Base)
	baseD := tput(BaseD)
	mmu := tput(PIMMMU)
	if mmu <= base {
		t.Errorf("PIM-MMU %.1f <= Base %.1f GB/s", mmu/1e9, base/1e9)
	}
	if baseD >= base {
		t.Errorf("Base+D %.1f >= Base %.1f GB/s; vanilla DMA should lose", baseD/1e9, base/1e9)
	}
}

func TestRunMemcpy(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	res := s.RunMemcpy(1 << 20)
	if res.Bytes != 1<<20 || res.Throughput() <= 0 {
		t.Errorf("memcpy result %+v", res)
	}
}

func TestActivityAccumulates(t *testing.T) {
	s := MustNew(smallCfg(Base))
	a0 := s.Activity()
	if a0.Reads+a0.Writes != 0 {
		t.Error("fresh system has DRAM activity")
	}
	s.RunTransfer(s.TransferOp(core.DRAMToPIM, 32, 4096))
	a1 := s.Activity()
	d := a1.Sub(a0)
	if d.Reads == 0 || d.Writes == 0 || d.Acts == 0 {
		t.Errorf("transfer produced no command activity: %+v", d)
	}
	if d.CoreBusy <= 0 {
		t.Error("baseline transfer consumed no core time")
	}
	if d.Wall <= 0 {
		t.Error("no wall time elapsed")
	}
	b := s.EnergyOver(a0, a1)
	if b.Total() <= 0 || b.CoreDynamic <= 0 {
		t.Errorf("energy breakdown degenerate: %+v", b)
	}
}

func TestDCEActivityHasNoCoreTime(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	a0 := s.Activity()
	s.RunTransfer(s.TransferOp(core.DRAMToPIM, 32, 4096))
	d := s.Activity().Sub(a0)
	if d.CoreBusy != 0 {
		t.Errorf("DCE transfer consumed %v core time; offload should be free", d.CoreBusy)
	}
	if d.DCELines == 0 {
		t.Error("DCE transfer recorded no staged lines")
	}
}

func TestPowerTraceSamples(t *testing.T) {
	s := MustNew(smallCfg(Base))
	trace, stop := s.SamplePower(20 * clock.Microsecond)
	s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), 4096))
	stop()
	if trace.Samples() == 0 {
		t.Fatal("power trace recorded nothing")
	}
	mid := trace.Watts.Bucket(trace.Watts.Len() / 2)
	if mid < 20 || mid > 120 {
		t.Errorf("mid-transfer power %.1f W implausible", mid)
	}
	frac := trace.ActiveFrac.Bucket(trace.ActiveFrac.Len() / 2)
	if frac < 0.9 {
		t.Errorf("active-core fraction %.2f during baseline transfer, want ~1", frac)
	}
}

func TestContendersRunAndStop(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	base := s.Alloc(4 * (16 << 10))
	st := s.Contenders(4, func(i int, st *contend.Stopper) cpu.Program {
		return contend.Spin(st, base+uint64(i)*(16<<10))
	})
	if s.CPU.Runnable() != 4 {
		t.Errorf("Runnable = %d, want 4", s.CPU.Runnable())
	}
	res := s.RunTransfer(s.TransferOp(core.DRAMToPIM, 32, 2048))
	if res.Bytes == 0 {
		t.Fatal("transfer under contention failed")
	}
	st.Stop()
	s.Eng.Run()
	if s.CPU.Runnable() != 0 {
		t.Errorf("contenders alive after stop: %d", s.CPU.Runnable())
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	cfg.CPU.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Error("Cores=0 accepted")
	}
	cfg = DefaultConfig(PIMMMU)
	cfg.Mem.DRAM.Geometry.Channels = 3
	if _, err := New(cfg); err == nil {
		t.Error("3 channels accepted")
	}
}

func TestParseDesign(t *testing.T) {
	good := map[string]Design{
		"base": Base, "base+d": BaseD, "base+d+h": BaseDH, "pim-mmu": PIMMMU,
	}
	for s, want := range good {
		if d, err := ParseDesign(s); err != nil || d != want {
			t.Errorf("ParseDesign(%q) = %v, %v; want %v", s, d, err, want)
		}
	}
	for _, s := range []string{"", "Base", "pimmmu", "all", "base+d+h+p"} {
		if _, err := ParseDesign(s); err == nil {
			t.Errorf("ParseDesign(%q) accepted", s)
		}
	}
	// Every canonical spelling round-trips through the parser.
	for _, d := range Designs() {
		s := strings.ToLower(d.String())
		s = strings.ReplaceAll(s, "base+d+h+p", "pim-mmu")
		if got, err := ParseDesign(s); err != nil || got != d {
			t.Errorf("round trip %v -> %q -> %v, %v", d, s, got, err)
		}
	}
}

// RecordTrace must capture exactly the transfer's port traffic: one
// line record per staged line, non-decreasing timestamps, and the
// DRAM-read/PIM-write split of a DRAM->PIM copy.
func TestRecordTraceCapturesTransfer(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	rec := s.RecordTrace()
	const n, per = 32, 2048
	res := s.RunTransfer(s.TransferOp(core.DRAMToPIM, n, per))
	s.StopTrace()
	recs := rec.Records()
	if err := trace.Validate(recs); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	sum := trace.Summarize(recs)
	if sum.BytesRead != res.Bytes || sum.BytesWritten != res.Bytes {
		t.Errorf("recorded %d read / %d written bytes for a %d-byte copy",
			sum.BytesRead, sum.BytesWritten, res.Bytes)
	}
	if sum.PIMRecords != sum.Writes {
		t.Errorf("%d PIM-region records but %d writes; DRAM->PIM writes must all target PIM",
			sum.PIMRecords, sum.Writes)
	}
	// Detached: further traffic must not be captured.
	s.RunTransfer(s.TransferOp(core.DRAMToPIM, n, per))
	if rec.Len() != sum.Records {
		t.Errorf("recorder grew to %d records after StopTrace", rec.Len())
	}
}

// Replayed runs must report through the same counters as native
// transfers and reject invalid inputs.
func TestRunReplay(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	cfg := trace.DefaultGenConfig()
	cfg.Records = 1024
	cfg.FootprintLines = 4096
	cfg.Base = s.Alloc(cfg.FootprintBytes(trace.PatternMixed))
	recs := trace.MustGenerate(trace.PatternMixed, cfg)
	a0 := s.Activity()
	r, err := s.RunReplay(recs, trace.DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 1024 || r.Throughput() <= 0 {
		t.Errorf("degenerate replay result %+v", r)
	}
	d := s.Activity().Sub(a0)
	if d.Reads == 0 {
		t.Error("replay produced no DRAM command activity")
	}
	if d.CoreBusy != 0 {
		t.Error("replay consumed CPU core time; injection bypasses the cores")
	}

	if _, err := s.RunReplay(recs, trace.ReplayConfig{MaxInFlight: 0}); err == nil {
		t.Error("invalid replay config accepted")
	}
	bad := []trace.Record{{TSC: 0, Kind: trace.KindRead, Addr: 7, Bytes: 64}}
	if _, err := s.RunReplay(bad, trace.DefaultReplayConfig()); err == nil {
		t.Error("invalid trace accepted")
	}
}

// Open-loop runs drive the same port as replays, honor the offered
// arrival count regardless of backpressure, and reject invalid inputs.
func TestRunLoad(t *testing.T) {
	s := MustNew(smallCfg(PIMMMU))
	gcfg := trace.DefaultGenConfig()
	gcfg.Records = 1024
	gcfg.FootprintLines = 4096
	gcfg.Base = s.Alloc(gcfg.FootprintBytes(trace.PatternMixed))
	recs := trace.MustGenerate(trace.PatternMixed, gcfg)
	dcfg := trace.DefaultDriverConfig()
	dcfg.MeanGap = 4 * clock.Nanosecond
	dcfg.Duration = 4 * clock.Microsecond
	sched, err := trace.ArrivalSchedule(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	a0 := s.Activity()
	r, err := s.RunLoad(recs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals != uint64(len(sched)) || r.Completed != r.Arrivals {
		t.Errorf("arrivals/completed = %d/%d, want %d scheduled arrivals",
			r.Arrivals, r.Completed, len(sched))
	}
	if r.QueueSum+r.ServiceSum != r.TotalSum {
		t.Errorf("queue %v + service %v != total %v", r.QueueSum, r.ServiceSum, r.TotalSum)
	}
	if r.Total.P50() < r.Service.P50() {
		t.Errorf("total p50 %v below service p50 %v", r.Total.P50(), r.Service.P50())
	}
	if d := s.Activity().Sub(a0); d.Reads == 0 {
		t.Error("open-loop run produced no DRAM command activity")
	}

	if _, err := s.RunLoad(recs, trace.DriverConfig{}); err == nil {
		t.Error("invalid driver config accepted")
	}
	bad := []trace.Record{{TSC: 0, Kind: trace.KindRead, Addr: 7, Bytes: 64}}
	if _, err := s.RunLoad(bad, dcfg); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestServerConfigAsymmetricGrades(t *testing.T) {
	cfg := ServerConfig(PIMMMU)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Mem.DRAM.Timing.Clock == cfg.Mem.PIM.Timing.Clock {
		t.Error("server config should run DRAM faster than PIM DIMMs")
	}
	// The faster DRAM grade must speed up the DRAM-bound read half of a
	// DCE transfer relative to the symmetric config.
	sym := MustNew(smallCfgFrom(DefaultConfig(PIMMMU)))
	asym := MustNew(smallCfgFrom(ServerConfig(PIMMMU)))
	rs := sym.RunTransfer(sym.TransferOp(core.DRAMToPIM, 32, 16<<10))
	ra := asym.RunTransfer(asym.TransferOp(core.DRAMToPIM, 32, 16<<10))
	if ra.Throughput() < rs.Throughput()*0.95 {
		t.Errorf("DDR4-3200 DRAM made the transfer slower: %.1f vs %.1f GB/s",
			ra.Throughput()/1e9, rs.Throughput()/1e9)
	}
}

func smallCfgFrom(cfg Config) Config {
	cfg.Mem.DRAM.Geometry.Channels = 2
	cfg.Mem.DRAM.Geometry.Ranks = 1
	cfg.Mem.PIM.Geometry.Channels = 2
	cfg.Mem.PIM.Geometry.Ranks = 1
	cfg.PIM.DRAM.Channels = 2
	cfg.PIM.DRAM.Ranks = 1
	return cfg
}
