// Package system assembles the full simulated machine of Table I — host
// CPU, LLC, DRAM and PIM device sets behind the HetMap, the PIM device,
// and the PIM-MMU engine — and provides the experiment-level operations
// the evaluation and the public API are built from: software (baseline)
// transfers, DCE transfers, memcpy, co-located contenders, and
// energy/power accounting.
package system

import (
	"fmt"
	"runtime"
	"strconv"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/pim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// Design selects which transfer machinery a System uses, mirroring the
// paper's ablation design points (Fig. 15).
type Design int

const (
	// Base is the unmodified PIM system: software multi-threaded
	// transfers, locality-centric mapping everywhere.
	Base Design = iota
	// BaseD adds the DCE as a conventional DMA engine: offloaded copies,
	// but sequential descriptors and no HetMap ("Base+D").
	BaseD
	// BaseDH adds HetMap's heterogeneous mapping ("Base+D+H").
	BaseDH
	// PIMMMU is the full proposal: DCE + HetMap + PIM-MS ("Base+D+H+P").
	PIMMMU
)

func (d Design) String() string {
	switch d {
	case Base:
		return "Base"
	case BaseD:
		return "Base+D"
	case BaseDH:
		return "Base+D+H"
	case PIMMMU:
		return "Base+D+H+P"
	}
	return "unknown"
}

// Designs lists the ablation order of Fig. 15.
func Designs() []Design { return []Design{Base, BaseD, BaseDH, PIMMMU} }

// ParseDesign parses the CLI spelling of a design point (the lower-case
// forms of String: "base", "base+d", "base+d+h", "pim-mmu").
func ParseDesign(s string) (Design, error) {
	switch s {
	case "base":
		return Base, nil
	case "base+d":
		return BaseD, nil
	case "base+d+h":
		return BaseDH, nil
	case "pim-mmu":
		return PIMMMU, nil
	}
	return 0, fmt.Errorf("system: unknown design %q (want base, base+d, base+d+h, or pim-mmu)", s)
}

// UsesDCE reports whether the design offloads transfers to the engine.
func (d Design) UsesDCE() bool { return d != Base }

// Config assembles a full machine.
type Config struct {
	Mem      memsys.Config
	CPU      cpu.Config
	PIM      pim.Geometry
	DCE      core.Config
	Energy   energy.Params
	Baseline xfer.BaselineConfig
	Memcpy   xfer.MemcpyConfig
	Design   Design
	// Shards selects the event-engine execution mode. 0 (the default)
	// runs the machine on the plain serial engine. >= 1 builds a sharded
	// engine from the machine's lane topology (see Topology): 1 executes
	// everything serially — the determinism reference — while >= 2 runs
	// conservative windows of lane-local events across that many worker
	// goroutines. Auto sizes the worker pool to the machine (see Auto).
	// Sharded output is byte-identical across all shard counts >= 1 by
	// construction; only wall-clock time changes. The plain engine agrees
	// with the sharded one everywhere except the tie order of events
	// scheduled at identical timestamps from identical instants, where
	// each engine uses its own (equally valid, bit-stable) canonical
	// order; the golden command streams and replay metrics are pinned
	// identical across both by the cross-shard regression tests.
	Shards int
	// CoreLanes adds per-core host lanes to the topology: CPU core i
	// schedules on lane "core:<i mod CoreLanes>", with the LLC as the
	// crossing boundary (cores only interact through the memory system
	// and the OS scheduler quantum). 0 (the default) keeps every core on
	// the host lane — PR 3 behavior; Auto claims one lane per core.
	// Requires Shards >= 1; output is byte-identical across every
	// core-lane count, pinned by the cross-shard regression tests.
	CoreLanes int
}

// Auto is the adaptive sentinel for Config.Shards and Config.CoreLanes
// (CLI spelling "auto"). Normalize resolves it against the machine:
// CoreLanes=Auto claims one event lane per configured CPU core, and
// Shards=Auto sizes the worker pool to min(lane count, runtime.NumCPU())
// — from there the engine's adaptive window controller parks or wakes
// pool workers per run (sim.ShardStats.InlineMax / PoolTarget). The
// resolution is results-neutral: worker counts never affect simulation
// output, and the core-lane count resolves from the configured core
// count, never from the host — so "auto" produces byte-identical results
// on every machine, only different wall-clock time.
const Auto = -1

// ParseLaneFlag parses one -shards / -core-lanes CLI value: "auto"
// selects adaptive sizing (Auto); anything else must be an integer
// count.
func ParseLaneFlag(s string) (int, error) {
	if s == "auto" {
		return Auto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("system: lane flag %q (want a count or \"auto\")", s)
	}
	return n, nil
}

// Topology is the machine's lane topology, the declarative input
// sim.NewShardedTopology builds the sharded engine from:
//
//   - one lane per DDR4 channel of each device set ("dram:<i>",
//     "pim:<i>"), crossing toward the host with the command-to-data
//     latency min(CL,CWL)+BL of that set's timing — nothing a controller
//     does becomes externally visible sooner than its data burst;
//   - CoreLanes per-core lanes ("core:<i>"), crossing at the LLC with
//     min(LLC hit latency, scheduler quantum) — the earliest a computing
//     core can reach shared memory state, and the only other
//     externally-imposed interaction is the preemption quantum;
//   - the serial-only "dce" lane (zero-latency edge: every DCE event
//     pumps the memory system).
func (c Config) Topology() sim.Topology {
	var t sim.Topology
	for i := 0; i < c.Mem.DRAM.Geometry.Channels; i++ {
		t.Add(fmt.Sprintf("dram:%d", i),
			sim.Edge{To: "host", MinLatency: c.Mem.DRAM.Timing.MinCrossLatency()})
	}
	for i := 0; i < c.Mem.PIM.Geometry.Channels; i++ {
		t.Add(fmt.Sprintf("pim:%d", i),
			sim.Edge{To: "host", MinLatency: c.Mem.PIM.Timing.MinCrossLatency()})
	}
	la := c.CoreLaneLookahead()
	for i := 0; i < c.CoreLanes; i++ {
		t.Add(fmt.Sprintf("core:%d", i), sim.Edge{To: "llc", MinLatency: la})
	}
	t.Add("dce", sim.Edge{To: "llc", MinLatency: 0})
	return t
}

// CoreLaneLookahead derives the core lanes' crossing-edge latency: a
// core executing a compute span cannot make a new memory access visible
// sooner than an LLC traversal, and the only other externally-imposed
// interaction — preemption — arrives no sooner than the scheduler
// quantum. The same value seeds cpu.Config.LaneLocalFloor, which keeps
// the classification and the window bound consistent by construction.
func (c Config) CoreLaneLookahead() clock.Picos {
	la := c.Mem.LLCHitLatency
	if c.CPU.Quantum < la {
		la = c.CPU.Quantum
	}
	return la
}

// Normalize resolves Auto sentinels against the machine, clamps
// out-of-range lane settings to their effective values, and reports one
// warning string per clamp (the CLIs print them; New applies the same
// normalization silently). Invalid — rather than merely excessive —
// settings are Validate errors, not clamps. Auto resolution warns
// nothing: it is requested behavior, not a correction.
func (c Config) Normalize() (Config, []string) {
	var warns []string
	if c.CoreLanes == Auto {
		c.CoreLanes = c.CPU.Cores
	}
	if c.Shards == Auto {
		c.Shards = c.laneCount()
		if n := runtime.NumCPU(); n < c.Shards {
			c.Shards = n
		}
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.CoreLanes > c.CPU.Cores {
		warns = append(warns, fmt.Sprintf(
			"core lanes %d exceed the %d CPU cores; clamping to %d (extra lanes would idle)",
			c.CoreLanes, c.CPU.Cores, c.CPU.Cores))
		c.CoreLanes = c.CPU.Cores
	}
	if lanes := c.laneCount(); c.Shards > lanes {
		warns = append(warns, fmt.Sprintf(
			"shards %d exceed the machine's %d event lanes; clamping to %d (extra workers would idle)",
			c.Shards, lanes, lanes))
		c.Shards = lanes
	}
	return c, warns
}

// laneCount is the total lane count of the machine's topology (windows
// cannot use more workers than lanes).
func (c Config) laneCount() int {
	return c.Mem.DRAM.Geometry.Channels + c.Mem.PIM.Geometry.Channels + c.CoreLanes + 1
}

// NormalizeLaneFlags validates and normalizes the CLIs' -shards /
// -core-lanes flags against the Table I machine: values below Auto and
// core lanes without a sharded engine are errors; excessive values clamp
// with a warning string per adjustment. The returned values are the
// effective settings to apply — except that Auto stays Auto: the
// sentinel resolves machine-dependently (runtime.NumCPU) inside New,
// and callers fingerprint these values into cache keys that must stay
// machine-independent.
func NormalizeLaneFlags(shards, coreLanes int) (int, int, []string, error) {
	cfg := DefaultConfig(PIMMMU)
	cfg.Shards = shards
	cfg.CoreLanes = coreLanes
	if shards < Auto || coreLanes < Auto || (coreLanes != 0 && shards == 0) {
		return 0, 0, nil, cfg.Validate()
	}
	cfg, warns := cfg.Normalize()
	if shards == Auto {
		cfg.Shards = Auto
	}
	if coreLanes == Auto {
		cfg.CoreLanes = Auto
	}
	return cfg.Shards, cfg.CoreLanes, warns, nil
}

// DefaultConfig is the Table I machine with the chosen design point.
// Mapping and DCE settings are derived from the design.
func DefaultConfig(d Design) Config {
	cfg := Config{
		Mem:      memsys.DefaultConfig(),
		CPU:      cpu.DefaultConfig(),
		PIM:      pim.DefaultGeometry(),
		DCE:      core.DefaultConfig(),
		Energy:   energy.DefaultParams(),
		Baseline: xfer.DefaultBaselineConfig(),
		Memcpy:   xfer.DefaultMemcpyConfig(),
		Design:   d,
	}
	switch d {
	case Base:
		cfg.Mem.Mapping = memsys.MapLocalityBoth
	case BaseD:
		cfg.Mem.Mapping = memsys.MapLocalityBoth
		cfg.DCE.UsePIMMS = false
	case BaseDH:
		cfg.Mem.Mapping = memsys.MapHetMap
		cfg.DCE.UsePIMMS = false
	case PIMMMU:
		cfg.Mem.Mapping = memsys.MapHetMap
		cfg.DCE.UsePIMMS = true
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Shards < Auto {
		return fmt.Errorf("system: invalid shard count %d (0 = plain engine, >= 1 = sharded, Auto = adaptive)", c.Shards)
	}
	if c.CoreLanes < Auto {
		return fmt.Errorf("system: invalid core-lane count %d", c.CoreLanes)
	}
	if c.CoreLanes != 0 && c.Shards == 0 {
		return fmt.Errorf("system: CoreLanes=%d requires a sharded engine (set Shards >= 1 or auto)", c.CoreLanes)
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.PIM.Validate(); err != nil {
		return err
	}
	if err := c.DCE.Validate(); err != nil {
		return err
	}
	if err := c.Energy.Validate(); err != nil {
		return err
	}
	if err := c.Baseline.Validate(); err != nil {
		return err
	}
	return c.Memcpy.Validate()
}

// System is the assembled machine.
type System struct {
	Cfg    Config
	Eng    *sim.Engine
	Mem    *memsys.System
	CPU    *cpu.CPU
	DCE    *core.Engine
	Device *pim.Device

	allocNext uint64
}

// New builds a machine; configuration errors are returned, not panicked,
// because configs may come from CLI flags.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg, _ = cfg.Normalize()
	eng := sim.New()
	if cfg.Shards >= 1 {
		var err error
		eng, err = sim.NewShardedTopology(cfg.Shards, cfg.Topology())
		if err != nil {
			return nil, fmt.Errorf("system: building lane topology: %w", err)
		}
	}
	// The CPU claims its core lanes by topology name; the classification
	// floor mirrors the core lanes' crossing-edge latency (see
	// CoreLaneLookahead).
	cfg.CPU.Lanes = cfg.CoreLanes
	cfg.CPU.LaneLocalFloor = cfg.CoreLaneLookahead()
	ms, err := memsys.New(eng, cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := cpu.New(eng, cfg.CPU, ms)
	dce, err := core.New(eng, ms, cfg.PIM, cfg.DCE)
	if err != nil {
		return nil, err
	}
	return &System{
		Cfg:    cfg,
		Eng:    eng,
		Mem:    ms,
		CPU:    c,
		DCE:    dce,
		Device: pim.NewDevice(cfg.PIM),
	}, nil
}

// MustNew is New for static configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Alloc reserves a line-aligned buffer in the DRAM region (a bump
// allocator standing in for malloc; the OS page scatter below it models
// physical placement). It panics when the region is exhausted.
func (s *System) Alloc(bytes uint64) uint64 {
	aligned := (bytes + mem.LineBytes - 1) &^ uint64(mem.LineBytes-1)
	base := s.allocNext
	if base+aligned > s.Cfg.Mem.DRAM.Geometry.TotalBytes() {
		panic(fmt.Sprintf("system: DRAM region exhausted allocating %d bytes", bytes))
	}
	s.allocNext += aligned
	return base
}

// TransferOp builds the pim_mmu_op for moving bytesPerCore to/from each
// of the first n cores, sourcing from a freshly allocated contiguous
// buffer (the Fig. 10 pattern).
func (s *System) TransferOp(dir core.Direction, n int, bytesPerCore uint64) core.Op {
	base := s.Alloc(uint64(n) * bytesPerCore)
	op := core.Op{Dir: dir, BytesPerCore: bytesPerCore}
	for i := 0; i < n; i++ {
		op.Cores = append(op.Cores, i)
		op.DRAMAddrs = append(op.DRAMAddrs, base+uint64(i)*bytesPerCore)
	}
	return op
}

// XferResult is the design-independent result of one transfer.
type XferResult struct {
	Design   Design
	Dir      core.Direction
	Bytes    uint64
	Duration clock.Picos
}

// Throughput is bytes per second.
func (r XferResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Duration.Seconds()
}

// StartTransfer launches op on the configured design's machinery and
// calls onDone at completion. It does not run the engine.
func (s *System) StartTransfer(op core.Op, onDone func(XferResult)) {
	start := s.Eng.Now()
	if s.Cfg.Design.UsesDCE() {
		s.DCE.Transfer(op, func(r core.Result) {
			onDone(XferResult{Design: s.Cfg.Design, Dir: op.Dir, Bytes: r.Bytes, Duration: r.Duration()})
		})
		return
	}
	xfer.RunBaseline(s.CPU, s.Cfg.PIM, op, s.Cfg.Baseline, func(r xfer.Result) {
		onDone(XferResult{Design: s.Cfg.Design, Dir: op.Dir, Bytes: r.Bytes, Duration: s.Eng.Now() - start})
	})
}

// RunTransfer executes op to completion and returns its result.
func (s *System) RunTransfer(op core.Op) XferResult {
	var res XferResult
	done := false
	s.StartTransfer(op, func(r XferResult) { res = r; done = true })
	s.Eng.RunWhile(func() bool { return !done })
	s.drain()
	return res
}

// RunMemcpy executes a DRAM->DRAM copy between two fresh buffers.
func (s *System) RunMemcpy(bytes uint64) XferResult {
	src := s.Alloc(bytes)
	dst := s.Alloc(bytes)
	var out XferResult
	done := false
	xfer.RunMemcpy(s.CPU, src, dst, bytes, s.Cfg.Memcpy, func(r xfer.Result) {
		out = XferResult{Design: s.Cfg.Design, Bytes: r.Bytes, Duration: r.Duration()}
		done = true
	})
	s.Eng.RunWhile(func() bool { return !done })
	s.drain()
	return out
}

// RecordTrace attaches a fresh trace recorder at the memory-port
// boundary: every subsequently accepted request (CPU, DCE and contender
// traffic alike) is captured as one trace record. StopTrace detaches
// it; the recorder's Records are then ready for trace.Encode or
// RunReplay.
func (s *System) RecordTrace() *trace.Recorder {
	rec := trace.NewRecorder()
	s.Mem.SetTap(rec.Tap)
	return rec
}

// StopTrace detaches any attached trace recorder.
func (s *System) StopTrace() { s.Mem.SetTap(nil) }

// StartReplay launches a trace replay through the memory port and calls
// onDone at completion. It does not run the engine.
func (s *System) StartReplay(recs []trace.Record, cfg trace.ReplayConfig, onDone func(trace.Result)) error {
	rp, err := trace.NewReplayer(s.Eng, s.Mem, recs, cfg)
	if err != nil {
		return err
	}
	rp.Start(onDone)
	return nil
}

// RunReplay executes a trace replay to completion and returns its
// result. Replayed runs report through the same channel/LLC statistics
// as every other workload, so bandwidth and latency come from the same
// counters the figures use.
func (s *System) RunReplay(recs []trace.Record, cfg trace.ReplayConfig) (trace.Result, error) {
	var out trace.Result
	done := false
	if err := s.StartReplay(recs, cfg, func(r trace.Result) { out = r; done = true }); err != nil {
		return trace.Result{}, err
	}
	s.Eng.RunWhile(func() bool { return !done })
	s.drain()
	return out, nil
}

// StartLoad launches an open-loop arrival-process run through the
// memory port and calls onDone at completion. It does not run the
// engine.
func (s *System) StartLoad(recs []trace.Record, cfg trace.DriverConfig, onDone func(trace.LoadResult)) error {
	d, err := trace.NewDriver(s.Eng, s.Mem, recs, cfg)
	if err != nil {
		return err
	}
	d.Start(onDone)
	return nil
}

// RunLoad executes an open-loop run to completion and returns its
// result: arrivals accrue on the simulated clock at the configured rate
// regardless of memory-system backpressure, so the result's queue/
// service/total split measures what a latency SLO would see at that
// offered load.
func (s *System) RunLoad(recs []trace.Record, cfg trace.DriverConfig) (trace.LoadResult, error) {
	var out trace.LoadResult
	done := false
	if err := s.StartLoad(recs, cfg, func(r trace.LoadResult) { out = r; done = true }); err != nil {
		return trace.LoadResult{}, err
	}
	s.Eng.RunWhile(func() bool { return !done })
	s.drain()
	return out, nil
}

// drain runs remaining completion events (posted writes, refreshes in
// flight) without advancing past quiescence. With live threads (for
// example contenders) the memory system never goes idle, so draining is
// skipped — their traffic keeps flowing on the next run anyway. The
// condition reads channel queue state, which shard-local events mutate,
// so the drain steps serially: the stop point is then the same event at
// every shard count (windows would batch past it).
func (s *System) drain() {
	if s.CPU.Runnable() > 0 {
		return
	}
	s.Eng.RunWhileSerial(func() bool { return !s.Mem.Idle() })
}

// Contenders launches n co-located contender threads built by mk and
// returns their stopper. The caller stops them when the measured phase
// completes; stopped threads exit at their next iteration boundary.
func (s *System) Contenders(n int, mk func(i int, st *contend.Stopper) cpu.Program) *contend.Stopper {
	st := &contend.Stopper{}
	for i := 0; i < n; i++ {
		s.CPU.Spawn(fmt.Sprintf("contender-%d", i), mk(i, st), nil)
	}
	return st
}

// Activity snapshots cumulative counters for energy accounting.
func (s *System) Activity() energy.Activity {
	a := energy.Activity{
		Wall:  s.Eng.Now(),
		Cores: s.Cfg.CPU.Cores,
		Ranks: s.Cfg.Mem.DRAM.Geometry.Channels*s.Cfg.Mem.DRAM.Geometry.Ranks +
			s.Cfg.Mem.PIM.Geometry.Channels*s.Cfg.Mem.PIM.Geometry.Ranks,
		DCEPresent: s.Cfg.Design.UsesDCE(),
	}
	for _, c := range s.CPU.Cores() {
		a.CoreBusy += c.BusyTime()
	}
	for _, st := range s.Mem.DRAM.Stats().Channels {
		a.Acts += st.Acts
		a.Reads += st.Reads
		a.Writes += st.Writes
		a.Refs += st.Refs
	}
	for _, st := range s.Mem.PIM.Stats().Channels {
		a.Acts += st.Acts
		a.Reads += st.Reads
		a.Writes += st.Writes
		a.Refs += st.Refs
	}
	ls := s.Mem.LLC.Stats()
	a.LLCAccesses = ls.Hits + ls.Misses
	a.DCELines = s.DCE.BytesMoved / mem.LineBytes * 2 // staged in and out
	return a
}

// EnergyOver evaluates the energy model over the interval between two
// activity snapshots.
func (s *System) EnergyOver(before, after energy.Activity) energy.Breakdown {
	return s.Cfg.Energy.Energy(after.Sub(before))
}

// PowerTrace samples system power and active-core fraction at a fixed
// window, reproducing the Fig. 4 time series.
type PowerTrace struct {
	Watts      *stats.Series
	ActiveFrac *stats.Series
	window     clock.Picos
	samples    int
}

// SamplePower starts a sampler with the given window; it stops after the
// stop function is invoked.
func (s *System) SamplePower(window clock.Picos) (trace *PowerTrace, stop func()) {
	t := &PowerTrace{
		Watts:      stats.NewSeries(window),
		ActiveFrac: stats.NewSeries(window),
		window:     window,
	}
	stopped := false
	prev := s.Activity()
	s.Eng.Ticker(window, func(now clock.Picos) bool {
		if stopped {
			return false
		}
		cur := s.Activity()
		t.Watts.Add(now-1, s.Cfg.Energy.Power(cur.Sub(prev)))
		t.ActiveFrac.Add(now-1, float64(s.CPU.ActiveCores())/float64(s.Cfg.CPU.Cores))
		t.samples++
		prev = cur
		return true
	})
	return t, func() { stopped = true }
}

// Samples reports how many windows the trace recorded.
func (t *PowerTrace) Samples() int { return t.samples }

// ServerConfig models the paper's characterization server (Section V):
// conventional DIMMs at DDR4-3200 alongside UPMEM DIMMs at DDR4-2400 —
// the asymmetric-speed-grade deployment commercial PIM requires. (The
// real server has 3+3 channels; binary addressing keeps ours at 4+4,
// which only scales the aggregate bandwidth.)
func ServerConfig(d Design) Config {
	cfg := DefaultConfig(d)
	cfg.Mem.DRAM.Timing = dram.DDR43200()
	return cfg
}
