package system

import (
	"fmt"
	"reflect"
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	a := DefaultConfig(PIMMMU).Fingerprint()
	b := DefaultConfig(PIMMMU).Fingerprint()
	if a != b {
		t.Fatalf("identical configs fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a)
	}
	if DefaultConfig(Base).Fingerprint() == a {
		t.Fatal("distinct design points share a fingerprint")
	}
}

// TestFingerprintSensitivity proves — by reflection, so a newly added
// field is covered automatically — that perturbing ANY exported leaf
// field of Config changes Fingerprint(), except the declared
// result-neutral lane-topology knobs, whose perturbation must NOT
// change it. This is the property the result cache's soundness rests
// on: no result-affecting configuration change can alias into a stale
// cache entry, and no result-neutral one can force a re-simulation.
func TestFingerprintSensitivity(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	// Start from a sharded design point so the +1 perturbation of the
	// neutral fields stays inside the sharded engine class (0 -> 1 would
	// legitimately change the key; see engineClass).
	cfg.Shards, cfg.CoreLanes = 1, 2
	base := cfg.Fingerprint()
	neutral := map[string]bool{"Config.Shards": true, "Config.CoreLanes": true}
	leaves, neutralLeaves := 0, 0
	perturbLeaves(t, reflect.ValueOf(&cfg).Elem(), "Config", func(path string) {
		leaves++
		got := cfg.Fingerprint()
		if got == "" {
			t.Errorf("perturbing %s produced an empty fingerprint", path)
		}
		if neutral[path] {
			neutralLeaves++
			if got != base {
				t.Errorf("perturbing result-neutral %s changed the fingerprint", path)
			}
			return
		}
		if got == base {
			t.Errorf("perturbing %s did not change the fingerprint", path)
		}
	})
	if leaves < 80 {
		t.Fatalf("walked only %d leaf fields; the config walk regressed", leaves)
	}
	if neutralLeaves != len(neutral) {
		t.Fatalf("visited %d neutral leaves, want %d; the mask drifted from Config", neutralLeaves, len(neutral))
	}
	// Every perturbation was restored, so the fingerprint is back to base.
	if cfg.Fingerprint() != base {
		t.Fatal("perturbation restore leaked state")
	}
}

// TestFingerprintResultNeutralFields pins the cross-topology reuse
// contract directly: every sharded lane topology — any Shards >= 1
// including Auto, any CoreLanes including Auto — shares one
// fingerprint, while the plain serial engine (Shards == 0) keeps its
// own. sharded_test.go proves the byte-identical results that make the
// sharing sound.
func TestFingerprintResultNeutralFields(t *testing.T) {
	ref := DefaultConfig(PIMMMU)
	ref.Shards = 1
	base := ref.Fingerprint()
	for _, tc := range []struct{ shards, coreLanes int }{
		{1, 0}, {1, 1}, {1, 4}, {4, 0}, {4, 4}, {Auto, Auto}, {2, Auto}, {Auto, 0},
	} {
		cfg := DefaultConfig(PIMMMU)
		cfg.Shards, cfg.CoreLanes = tc.shards, tc.coreLanes
		if got := cfg.Fingerprint(); got != base {
			t.Errorf("shards=%d core-lanes=%d: fingerprint %s != sharded base %s",
				tc.shards, tc.coreLanes, got, base)
		}
	}
	plain := DefaultConfig(PIMMMU) // Shards = 0: the plain serial engine
	if plain.Shards != 0 {
		t.Fatalf("DefaultConfig no longer defaults to the plain engine (Shards=%d); update this test", plain.Shards)
	}
	if plain.Fingerprint() == base {
		t.Error("plain engine shares the sharded fingerprint; same-instant tie order may differ (see Config.Shards)")
	}
}

// perturbLeaves visits every settable leaf field under v; at each leaf it
// flips the value, calls check, and restores the original.
func perturbLeaves(t *testing.T, v reflect.Value, path string, check func(path string)) {
	switch v.Kind() {
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 1)
		check(path)
		v.SetFloat(old)
	case reflect.String:
		old := v.String()
		v.SetString(old + "~")
		check(path)
		v.SetString(old)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("%s.%s is unexported; Canonical would panic — restructure the config", path, f.Name)
			}
			perturbLeaves(t, v.Field(i), path+"."+f.Name, check)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			perturbLeaves(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), check)
		}
	default:
		t.Fatalf("%s has kind %s, which the canonical encoding does not support", path, v.Kind())
	}
}
