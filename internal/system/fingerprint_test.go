package system

import (
	"fmt"
	"reflect"
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	a := DefaultConfig(PIMMMU).Fingerprint()
	b := DefaultConfig(PIMMMU).Fingerprint()
	if a != b {
		t.Fatalf("identical configs fingerprint differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a)
	}
	if DefaultConfig(Base).Fingerprint() == a {
		t.Fatal("distinct design points share a fingerprint")
	}
}

// TestFingerprintSensitivity proves — by reflection, so a newly added
// field is covered automatically — that perturbing ANY exported leaf
// field of Config changes Fingerprint(). This is the property the result
// cache's soundness rests on: no configuration change can alias into a
// stale cache entry.
func TestFingerprintSensitivity(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	base := cfg.Fingerprint()
	leaves := 0
	perturbLeaves(t, reflect.ValueOf(&cfg).Elem(), "Config", func(path string) {
		leaves++
		if got := cfg.Fingerprint(); got == base {
			t.Errorf("perturbing %s did not change the fingerprint", path)
		}
		if cfg.Fingerprint() == "" {
			t.Errorf("perturbing %s produced an empty fingerprint", path)
		}
	})
	if leaves < 80 {
		t.Fatalf("walked only %d leaf fields; the config walk regressed", leaves)
	}
	// Every perturbation was restored, so the fingerprint is back to base.
	if cfg.Fingerprint() != base {
		t.Fatal("perturbation restore leaked state")
	}
}

// perturbLeaves visits every settable leaf field under v; at each leaf it
// flips the value, calls check, and restores the original.
func perturbLeaves(t *testing.T, v reflect.Value, path string, check func(path string)) {
	switch v.Kind() {
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 1)
		check(path)
		v.SetFloat(old)
	case reflect.String:
		old := v.String()
		v.SetString(old + "~")
		check(path)
		v.SetString(old)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("%s.%s is unexported; Canonical would panic — restructure the config", path, f.Name)
			}
			perturbLeaves(t, v.Field(i), path+"."+f.Name, check)
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			perturbLeaves(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), check)
		}
	default:
		t.Fatalf("%s has kind %s, which the canonical encoding does not support", path, v.Kind())
	}
}
