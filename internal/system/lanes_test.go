package system

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
)

// TestLaneFlagValidation covers the error paths of the shard/core-lane
// settings: negative counts and core lanes without a sharded engine are
// rejected, not clamped.
func TestLaneFlagValidation(t *testing.T) {
	cases := []struct {
		name              string
		shards, coreLanes int
		wantErr           string
	}{
		{"negative shards", -2, 0, "invalid shard count"},
		{"negative core lanes", 1, -2, "invalid core-lane count"},
		{"core lanes without shards", 0, 4, "requires a sharded engine"},
		{"plain ok", 0, 0, ""},
		{"sharded ok", 4, 8, ""},
		{"auto ok", Auto, Auto, ""},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(PIMMMU)
		cfg.Shards = tc.shards
		cfg.CoreLanes = tc.coreLanes
		err := cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want one containing %q", tc.name, err, tc.wantErr)
		}
		if _, nerr := New(cfg); nerr == nil {
			t.Errorf("%s: New accepted the invalid config", tc.name)
		}
	}
}

// TestLaneFlagClamping covers the clamp-with-warning paths: excessive
// lane counts normalize to the machine's limits with one warning each.
func TestLaneFlagClamping(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	cfg.Shards = 1
	cfg.CoreLanes = cfg.CPU.Cores + 5
	norm, warns := cfg.Normalize()
	if norm.CoreLanes != cfg.CPU.Cores {
		t.Errorf("CoreLanes normalized to %d, want %d", norm.CoreLanes, cfg.CPU.Cores)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "clamping") {
		t.Errorf("warnings = %v, want one clamp warning", warns)
	}

	cfg = DefaultConfig(PIMMMU)
	cfg.Shards = 1000
	cfg.CoreLanes = 2
	norm, warns = cfg.Normalize()
	wantLanes := cfg.Mem.DRAM.Geometry.Channels + cfg.Mem.PIM.Geometry.Channels + 2 + 1
	if norm.Shards != wantLanes {
		t.Errorf("Shards normalized to %d, want the %d-lane total", norm.Shards, wantLanes)
	}
	if len(warns) != 1 {
		t.Errorf("warnings = %v, want one", warns)
	}

	// In-range settings pass through untouched.
	cfg = DefaultConfig(PIMMMU)
	cfg.Shards = 2
	cfg.CoreLanes = 4
	if norm, warns = cfg.Normalize(); len(warns) != 0 || norm.Shards != 2 || norm.CoreLanes != 4 {
		t.Errorf("in-range settings changed: %+v warns %v", norm, warns)
	}

	// New applies the clamps silently and still builds.
	cfg.CoreLanes = cfg.CPU.Cores + 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cfg.CPU.Lanes; got != cfg.CPU.Cores {
		t.Errorf("built machine uses %d core lanes, want clamp to %d", got, cfg.CPU.Cores)
	}
}

// TestNormalizeLaneFlags covers the CLI-facing wrapper.
func TestNormalizeLaneFlags(t *testing.T) {
	if _, _, _, err := NormalizeLaneFlags(-2, 0); err == nil {
		t.Error("negative -shards accepted")
	}
	if _, _, _, err := NormalizeLaneFlags(0, 3); err == nil {
		t.Error("-core-lanes without -shards accepted")
	}
	sh, cl, warns, err := NormalizeLaneFlags(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sh != 2 || cl != DefaultConfig(PIMMMU).CPU.Cores || len(warns) != 1 {
		t.Errorf("NormalizeLaneFlags(2, 100) = %d, %d, %v", sh, cl, warns)
	}
	// Auto passes through as the sentinel (resolution happens inside
	// New, keeping CLI cache keys machine-independent), with no warning.
	sh, cl, warns, err = NormalizeLaneFlags(Auto, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if sh != Auto || cl != Auto || len(warns) != 0 {
		t.Errorf("NormalizeLaneFlags(auto, auto) = %d, %d, %v; want sentinels, no warnings", sh, cl, warns)
	}
}

// TestParseLaneFlag covers the flag-string form of the lane knobs.
func TestParseLaneFlag(t *testing.T) {
	if n, err := ParseLaneFlag("auto"); err != nil || n != Auto {
		t.Errorf(`ParseLaneFlag("auto") = %d, %v; want Auto`, n, err)
	}
	if n, err := ParseLaneFlag("4"); err != nil || n != 4 {
		t.Errorf(`ParseLaneFlag("4") = %d, %v; want 4`, n, err)
	}
	if _, err := ParseLaneFlag("many"); err == nil {
		t.Error(`ParseLaneFlag("many") accepted`)
	}
}

// TestAutoResolution pins what the sentinels resolve to: CoreLanes=auto
// becomes one lane per configured core (never a host-dependent count),
// Shards=auto the lane count capped by the host's CPUs.
func TestAutoResolution(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	cfg.Shards = Auto
	cfg.CoreLanes = Auto
	norm, warns := cfg.Normalize()
	if len(warns) != 0 {
		t.Errorf("auto resolution warned: %v", warns)
	}
	if norm.CoreLanes != cfg.CPU.Cores {
		t.Errorf("CoreLanes=auto resolved to %d, want one per core (%d)", norm.CoreLanes, cfg.CPU.Cores)
	}
	if norm.Shards < 1 {
		t.Errorf("Shards=auto resolved to %d, want >= 1", norm.Shards)
	}
	if max := norm.laneCount(); norm.Shards > max {
		t.Errorf("Shards=auto resolved to %d, beyond the %d-lane topology", norm.Shards, max)
	}
	// The auto machine builds and runs.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.CPU.Lanes != cfg.CPU.Cores {
		t.Errorf("built machine uses %d core lanes, want %d", s.Cfg.CPU.Lanes, cfg.CPU.Cores)
	}
}

// TestTopologyShape pins the lane topology the machine is built from:
// one lane per channel of each device set, CoreLanes core lanes with the
// LLC edge, and the serial-only dce lane.
func TestTopologyShape(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	cfg.Shards = 1
	cfg.CoreLanes = 3
	topo := cfg.Topology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	want := cfg.Mem.DRAM.Geometry.Channels + cfg.Mem.PIM.Geometry.Channels + 3 + 1
	if len(topo.Lanes) != want {
		t.Fatalf("topology has %d lanes, want %d", len(topo.Lanes), want)
	}
	byName := map[string]int{}
	for _, l := range topo.Lanes {
		byName[l.Name] = int(l.Lookahead())
	}
	if la := byName["dram:0"]; la != int(cfg.Mem.DRAM.Timing.MinCrossLatency()) {
		t.Errorf("dram:0 lookahead = %d, want the command-to-data latency", la)
	}
	if la := byName["core:2"]; la != int(cfg.CoreLaneLookahead()) {
		t.Errorf("core:2 lookahead = %d, want CoreLaneLookahead", la)
	}
	if la, ok := byName["dce"]; !ok || la != 0 {
		t.Errorf("dce lane lookahead = %d (present %v), want serial-only 0", la, ok)
	}
	if _, ok := byName["core:3"]; ok {
		t.Error("topology declared more core lanes than configured")
	}
}

// TestCoreLaneLookaheadDerivation pins the min(LLC hit, quantum) rule.
func TestCoreLaneLookaheadDerivation(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	if got := cfg.CoreLaneLookahead(); got != cfg.Mem.LLCHitLatency {
		t.Errorf("lookahead = %v, want the LLC hit latency %v", got, cfg.Mem.LLCHitLatency)
	}
	cfg.CPU.Quantum = 3 * clock.Nanosecond // pathological, but the min must hold
	if got := cfg.CoreLaneLookahead(); got != 3*clock.Nanosecond {
		t.Errorf("lookahead = %v, want the quantum", got)
	}
}

// TestBuiltMachineClaimsLanes checks the wired machine: every topology
// lane is claimed and attributable through ShardStats.
func TestBuiltMachineClaimsLanes(t *testing.T) {
	cfg := DefaultConfig(PIMMMU)
	cfg.Shards = 1
	cfg.CoreLanes = 2
	s := MustNew(cfg)
	st := s.Eng.ShardStats()
	names := map[string]bool{}
	for _, l := range st.Lanes {
		names[l.Name] = true
	}
	for _, want := range []string{"dram:0", "pim:3", "core:0", "core:1", "dce"} {
		if !names[want] {
			t.Errorf("built machine lacks lane %q (have %v)", want, names)
		}
	}
	for i := 0; i < cfg.Mem.DRAM.Geometry.Channels; i++ {
		if !names[fmt.Sprintf("dram:%d", i)] {
			t.Errorf("missing dram:%d", i)
		}
	}
}
