// Package memsys wires the memory system together: the HetMap address
// decoder, the conventional DRAM device set, the PIM device set, and the
// shared last-level cache. It implements mem.Port, the interface through
// which CPU cores, the Data Copy Engine and contender workloads reach
// memory.
//
// Routing rules (Section II-B, IV-E):
//   - every physical address is decoded by the HetMap into a region
//     (DRAM or PIM) and a DRAM location under that region's mapping
//     function;
//   - cacheable DRAM requests pass through the LLC (write-back,
//     write-allocate); dirty evictions generate writeback traffic;
//   - PIM-region requests are always non-cacheable and go straight to the
//     PIM DIMMs' controllers.
//
// # Sharding contract
//
// On a sharded engine (system.Config.Shards >= 1) every channel behind
// this port simulates on its own event lane, and — with CoreLanes >= 1 —
// so does every CPU core and the DCE. The memory system is the crossing
// boundary of that lane topology: every path through this package either
// runs at the engine's serial frontier or is classified as a crossing
// that will:
//
//   - enqueue crossings (TryEnqueue, WaitSpace, writeback retries) only
//     ever run from serially-fired events — host events, core-lane
//     crossing kicks, DCE phase events, channel ticks with registered
//     waiters. A window never has any of them in flight, so touching the
//     shared LLC, pushing into a channel's queues, and pulling its
//     lane's clock forward are all safe;
//   - complete crossings (a request's OnDone) are mailbox events on the
//     owning channel's lane: the engine holds them at the frontier and
//     drains them serially at window barriers in canonical order, so
//     state on other lanes — a CPU thread's in-flight counters, the DCE
//     pipeline, replayers — observes completions exactly as a serial run
//     would;
//   - LLC hits deliver on the requester's own scheduler when the request
//     carries one (mem.Req.DeliverOn) and the engine runs parallel
//     windows: the completion is batched on a per-requester queue whose
//     standing event is lane-local on the issuing core's lane, so a
//     computing thread's hit loop never touches the frontier. The
//     requester asserts its callback is lane-local and promotes
//     in-flight deliveries back to crossing events (PromoteHits) the
//     moment that stops holding — its thread blocks, is preempted or
//     migrates. Requests without a DeliverOn (the DCE, replayers,
//     transfer helpers) — and every request on an engine that executes
//     serially, where lane delivery would only add frontier scans —
//     keep the batched host-lane hit queue (hitEv): host events always
//     fire serially, in the same delivery order;
//   - the tap (trace recording) observes requests inside TryEnqueue,
//     i.e. only ever from serial context, so one recorder safely sees
//     CPU, DCE and contender traffic from every lane.
//
// The core lanes' crossing edge latency is derived from this boundary:
// min(LLC hit latency, scheduler quantum) — see
// system.Config.CoreLaneLookahead. Everything else the memory system
// owns (the LLC, the page map, the deferred hit queues) is host state
// and never touched from a lane-local event — except each per-scheduler
// hit queue (hitLane), which is owned by its scheduler's lane exactly
// like the lane's own heap: entries are appended from serial context
// (TryEnqueue) and drained by the lane firing its own standing delivery
// event, never concurrently.
package memsys

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MappingMode selects the memory mapping functions installed at boot.
type MappingMode int

const (
	// MapLocalityBoth is the PIM-specific BIOS mapping of current systems:
	// the locality-centric function applied homogeneously to both the DRAM
	// and the PIM regions (the baseline, Fig. 7a).
	MapLocalityBoth MappingMode = iota
	// MapHetMap is PIM-MMU's HetMap: MLP-centric mapping for the DRAM
	// region, locality-centric for the PIM region (Section IV-E).
	MapHetMap
	// MapMLPBoth is a conventional non-PIM server (MLP-centric everywhere);
	// used only as the reference point in Fig. 8 — a real PIM system cannot
	// boot this way.
	MapMLPBoth
	// MapHetMapNoHash is HetMap with XOR hashing disabled in the
	// MLP-centric function (ablation).
	MapHetMapNoHash
)

func (m MappingMode) String() string {
	switch m {
	case MapLocalityBoth:
		return "locality-both"
	case MapHetMap:
		return "hetmap"
	case MapMLPBoth:
		return "mlp-both"
	case MapHetMapNoHash:
		return "hetmap-nohash"
	}
	return "unknown"
}

// Config assembles a full memory system.
type Config struct {
	DRAM dram.Config // conventional DIMMs
	PIM  dram.Config // PIM DIMMs
	LLC  cache.Config
	// LLCHitLatency is the load-to-use latency of an LLC hit.
	LLCHitLatency clock.Picos
	// Mapping selects the boot-time mapping functions.
	Mapping MappingMode
	// PageScatter, when true, models OS physical page allocation: DRAM
	// region addresses are permuted at 4 KB granularity before decoding
	// (the PIM region is never paged — its layout is fixed by the PIM
	// runtime). Default on; disable for direct physical addressing
	// experiments.
	PageScatter bool
	// PageSeed seeds the page permutation (deterministic per seed).
	PageSeed uint64
	// ArenaBytes is the allocation-clustering window (see PageMap);
	// 0 selects the default.
	ArenaBytes uint64
}

// DefaultConfig is the Table I system with the baseline (locality-both)
// mapping.
func DefaultConfig() Config {
	return Config{
		DRAM:          dram.DefaultConfig(),
		PIM:           dram.DefaultConfig(),
		LLC:           cache.DefaultConfig(),
		LLCHitLatency: 12500, // ~40 CPU cycles at 3.2 GHz
		Mapping:       MapLocalityBoth,
		PageScatter:   true,
		PageSeed:      0x5eed,
	}
}

// System is the assembled memory system.
type System struct {
	eng *sim.Engine
	cfg Config

	DRAM *dram.DeviceSet
	PIM  *dram.DeviceSet
	LLC  *cache.Cache
	Het  *addrmap.HetMap

	dramRegion addrmap.Region
	pimRegion  addrmap.Region
	pages      *PageMap // nil when page scatter is disabled

	// lastFull remembers the channel whose queue rejected the most recent
	// Access, so WaitSpace can register there (mem.Port contract).
	lastFull *dram.Channel

	// tap, when set, observes every request accepted at the mem.Port
	// boundary — CPU, DCE and contender traffic alike — before any queue
	// or cache side effect becomes visible to the caller. Trace recording
	// attaches here.
	tap func(now clock.Picos, r *mem.Req)

	// hitQ defers LLC-hit completions for requests without a DeliverOn:
	// the hit latency is a constant, so completions are FIFO and one
	// standing host event drains the queue — no per-hit event allocation.
	hitQ    []hitDone
	hitHead int
	hitEv   sim.Event

	// hitLanes batches per-requester hit deliveries (mem.Req.DeliverOn),
	// one queue per scheduler because delivery events fire lane-locally:
	// a queue may only ever be drained by its own lane (or serial
	// context), never shared across lanes inside a window. hitLaneList
	// mirrors the map in creation order so PromoteHits walks
	// deterministically.
	hitLanes    map[sim.Scheduler]*hitLane
	hitLaneList []*hitLane
	// laneHits gates the per-requester path: true only when the engine
	// runs windows (Workers > 1), where lane-local deliveries execute in
	// batched lane dispatch instead of one frontier scan per event.
	laneHits bool
}

// hitDone is one deferred LLC-hit completion on the batched host path.
type hitDone struct {
	at   clock.Picos
	done func(clock.Picos)
}

// hitLane is the per-scheduler queue of in-flight lane-delivered hits
// (mem.Req.DeliverOn). Completions enqueue in timestamp order (the hit
// latency is a constant and TryEnqueue is serial), so each delivery
// lane gets the same amortization as the batched host path: one
// standing lane-local event drains the FIFO — no per-hit event, no
// per-hit allocation. Only the owning lane (or serial context) fires
// the event, and TryEnqueue/PromoteHits run serially, so the queue is
// never touched from two contexts at once.
type hitLane struct {
	sched sim.Scheduler
	q     []laneHit
	head  int
	ev    sim.Event
	// promoted records that a requester with deliveries still queued
	// has stopped being lane-local (blocked, preempted, migrated or
	// exited): until the queue drains, every fire and re-arm of the
	// delivery event stays a crossing, so no delivery for that
	// requester can run inside a window.
	promoted bool
}

// laneHit is one deferred lane-delivered hit completion.
type laneHit struct {
	at   clock.Picos
	done func(clock.Picos)
	src  int
}

// OnEvent delivers every matured hit on this lane — lane-locally inside
// a window, or serially at the frontier after a promotion. Mirrors the
// host path's fireHits: callbacks may enqueue further hits while we
// drain.
func (hl *hitLane) OnEvent(now clock.Picos) {
	for hl.head < len(hl.q) && hl.q[hl.head].at <= now {
		h := hl.q[hl.head]
		hl.q[hl.head] = laneHit{} // drop the callback reference
		hl.head++
		h.done(now)
	}
	if hl.head == len(hl.q) {
		hl.q = hl.q[:0]
		hl.head = 0
		hl.promoted = false // every promoted delivery has fired
		return
	}
	if next := hl.q[hl.head].at; !hl.ev.Scheduled() || hl.ev.When() > next {
		hl.arm(next)
	}
}

// arm schedules the lane's delivery event, preserving a promotion:
// while a promoted delivery is still queued the event must keep firing
// at the serial frontier, not inside a window.
func (hl *hitLane) arm(at clock.Picos) {
	if hl.promoted {
		hl.sched.Schedule(&hl.ev, at)
	} else {
		hl.sched.ScheduleLocal(&hl.ev, at)
	}
}

// scheduleLaneHit appends one hit completion to the requester's own
// delivery queue. Always called from serial context (TryEnqueue), so
// creating queues and arming lane events is safe.
func (s *System) scheduleLaneHit(r *mem.Req, at clock.Picos) {
	hl := s.hitLanes[r.DeliverOn]
	if hl == nil {
		if s.hitLanes == nil {
			s.hitLanes = make(map[sim.Scheduler]*hitLane)
		}
		hl = &hitLane{sched: r.DeliverOn}
		hl.ev.Init(hl)
		s.hitLanes[r.DeliverOn] = hl
		s.hitLaneList = append(s.hitLaneList, hl)
	}
	hl.q = append(hl.q, laneHit{at: at, done: r.OnDone, src: r.SrcID})
	if !hl.ev.Scheduled() {
		hl.arm(at)
	}
}

// PromoteHits implements mem.HitPromoter: any delivery queue holding an
// in-flight hit tagged srcID has its standing event reclassified as a
// crossing, because the requester's completion callback is about to
// stop being lane-local (its thread blocks, is preempted or migrates).
// Promotion is per-queue, so same-lane deliveries of other requesters
// ride along to the frontier — a pure execution-mode change: promotion
// never reorders a delivery, it only changes where it executes, so
// results are unaffected by construction. Only called from serial
// context.
func (s *System) PromoteHits(srcID int) {
	for _, hl := range s.hitLaneList {
		for i := hl.head; i < len(hl.q); i++ {
			if hl.q[i].src == srcID {
				hl.promoted = true
				hl.sched.Promote(&hl.ev)
				break
			}
		}
	}
}

// New assembles the memory system.
func New(eng *sim.Engine, cfg Config) (*System, error) {
	ds, err := dram.New(eng, cfg.DRAM, "dram")
	if err != nil {
		return nil, err
	}
	ps, err := dram.New(eng, cfg.PIM, "pim")
	if err != nil {
		return nil, err
	}
	var dramMapper, pimMapper addrmap.Mapper
	switch cfg.Mapping {
	case MapLocalityBoth:
		dramMapper = addrmap.NewLocality(cfg.DRAM.Geometry)
		pimMapper = addrmap.NewLocality(cfg.PIM.Geometry)
	case MapHetMap:
		dramMapper = addrmap.NewMLP(cfg.DRAM.Geometry)
		pimMapper = addrmap.NewLocality(cfg.PIM.Geometry)
	case MapMLPBoth:
		dramMapper = addrmap.NewMLP(cfg.DRAM.Geometry)
		pimMapper = addrmap.NewMLP(cfg.PIM.Geometry)
	case MapHetMapNoHash:
		dramMapper = addrmap.NewMLP(cfg.DRAM.Geometry, addrmap.WithoutXORHash())
		pimMapper = addrmap.NewLocality(cfg.PIM.Geometry)
	default:
		return nil, fmt.Errorf("memsys: unknown mapping mode %d", cfg.Mapping)
	}
	dramRegion := addrmap.Region{Name: "dram", Base: 0, Mapper: dramMapper, Space: mem.SpaceDRAM}
	pimRegion := addrmap.Region{Name: "pim", Base: mem.PIMBase, Mapper: pimMapper, Space: mem.SpacePIM}
	s := &System{
		eng:        eng,
		cfg:        cfg,
		DRAM:       ds,
		PIM:        ps,
		LLC:        cache.New(cfg.LLC),
		Het:        addrmap.NewHetMap(dramRegion, pimRegion),
		dramRegion: dramRegion,
		pimRegion:  pimRegion,
	}
	if cfg.PageScatter {
		s.pages = NewPageMap(cfg.DRAM.Geometry.TotalBytes(), cfg.ArenaBytes, cfg.PageSeed)
	}
	s.hitEv.Init(sim.HandlerFunc(s.fireHits))
	// Lane delivery pays off only when windows can actually execute
	// lane-local events in batches; on a serial engine (or a sharded
	// queue run serially) every extra event is one more frontier scan,
	// so the batched host queue is strictly cheaper and delivers in the
	// same order.
	s.laneHits = eng.Workers() > 1
	return s, nil
}

// MustNew is New for static configurations.
func MustNew(eng *sim.Engine, cfg Config) *System {
	s, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config reports the configuration.
func (s *System) Config() Config { return s.cfg }

// SetTap installs (or, with nil, removes) the port-boundary observer.
// The tap sees every accepted request exactly once, at its acceptance
// time; rejected TryEnqueue attempts are not reported.
func (s *System) SetTap(fn func(now clock.Picos, r *mem.Req)) { s.tap = fn }

// accepted reports one request to the tap.
func (s *System) accepted(r *mem.Req) {
	if s.tap != nil {
		s.tap(s.eng.Now(), r)
	}
}

// channelFor returns the controller serving a decoded location.
func (s *System) channelFor(space mem.Space, loc addrmap.Loc) *dram.Channel {
	if space == mem.SpacePIM {
		return s.PIM.Channel(loc.Channel)
	}
	return s.DRAM.Channel(loc.Channel)
}

// physical applies the OS page scatter to DRAM-region addresses. PIM
// addresses and direct (unscattered) systems pass through unchanged.
func (s *System) physical(addr uint64) uint64 {
	if s.pages == nil || addr >= mem.PIMBase {
		return addr
	}
	return s.pages.Translate(addr)
}

// Decode exposes the HetMap decode for agents (the DCE's AGU uses it).
// It includes the OS page translation for DRAM-region addresses.
func (s *System) Decode(addr uint64) (mem.Space, addrmap.Loc) {
	r, loc := s.Het.Decode(s.physical(addr))
	return r.Space, loc
}

// TryEnqueue implements mem.Port. It returns false when the target
// controller queue is full; call WaitSpace to be notified and retry.
func (s *System) TryEnqueue(r *mem.Req) bool {
	region, loc := s.Het.Decode(s.physical(r.Addr))
	ch := s.channelFor(region.Space, loc)

	if !r.Cacheable || region.Space == mem.SpacePIM {
		if !ch.TryEnqueue(r, loc) {
			s.lastFull = ch
			return false
		}
		s.accepted(r)
		return true
	}

	// Cacheable DRAM path.
	if s.LLC.Contains(r.Addr) {
		s.accepted(r)
		s.LLC.Access(r.Addr, r.Kind == mem.Write) // hit: update LRU/dirty
		if r.OnDone != nil {
			at := s.eng.Now() + s.cfg.LLCHitLatency
			if r.DeliverOn != nil && s.laneHits {
				s.scheduleLaneHit(r, at)
			} else {
				s.hitQ = append(s.hitQ, hitDone{at: at, done: r.OnDone})
				if !s.hitEv.Scheduled() {
					s.eng.Schedule(&s.hitEv, at)
				}
			}
		}
		return true
	}

	// Miss: fetch the line (a read, even for a store — write-allocate).
	fill := &mem.Req{
		Addr:      r.Addr,
		Kind:      mem.Read,
		Cacheable: true,
		OnDone:    r.OnDone,
		SrcID:     r.SrcID,
	}
	if !ch.TryEnqueue(fill, loc) {
		s.lastFull = ch
		return false
	}
	s.accepted(r)
	res := s.LLC.Access(r.Addr, r.Kind == mem.Write)
	if res.HasWriteback {
		s.issueWriteback(res.Writeback, r.SrcID)
	}
	return true
}

// fireHits delivers every deferred LLC-hit completion that has matured.
// Completions enqueue in timestamp order (constant latency), so a head
// index suffices; callbacks may enqueue further hits while we drain.
func (s *System) fireHits(now clock.Picos) {
	for s.hitHead < len(s.hitQ) && s.hitQ[s.hitHead].at <= now {
		hd := s.hitQ[s.hitHead]
		s.hitQ[s.hitHead] = hitDone{} // drop the callback reference
		s.hitHead++
		hd.done(now)
	}
	if s.hitHead == len(s.hitQ) {
		s.hitQ = s.hitQ[:0]
		s.hitHead = 0
		return
	}
	if next := s.hitQ[s.hitHead].at; !s.hitEv.Scheduled() || s.hitEv.When() > next {
		s.eng.Schedule(&s.hitEv, next)
	}
}

// issueWriteback sends an evicted dirty line to DRAM, retrying until the
// target queue accepts it. Writebacks are posted: nothing waits on them.
func (s *System) issueWriteback(addr uint64, srcID int) {
	region, loc := s.Het.Decode(s.physical(addr))
	ch := s.channelFor(region.Space, loc)
	wb := &mem.Req{Addr: addr, Kind: mem.Write, Cacheable: true, SrcID: srcID}
	var try func()
	try = func() {
		if !ch.TryEnqueue(wb, loc) {
			ch.WaitSpace(try)
		}
	}
	try()
}

// WaitSpace implements mem.Port: it registers fn with the channel that
// rejected the most recent TryEnqueue.
func (s *System) WaitSpace(fn func()) {
	if s.lastFull == nil {
		// No recorded rejection; fire immediately so callers cannot hang.
		s.eng.After(0, fn)
		return
	}
	s.lastFull.WaitSpace(fn)
}

// Idle reports whether both device sets have drained.
func (s *System) Idle() bool { return s.DRAM.Idle() && s.PIM.Idle() }

var _ mem.Port = (*System)(nil)
var _ mem.HitPromoter = (*System)(nil)
