package memsys

import (
	"testing"

	"repro/internal/addrmap"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/sim"
)

func smallConfig(mode MappingMode) Config {
	g := addrmap.Geometry{Channels: 2, Ranks: 1, BankGroups: 4, Banks: 4, Rows: 256, Cols: 128}
	dc := dram.DefaultConfig()
	dc.Geometry = g
	pc := dram.DefaultConfig()
	pc.Geometry = g
	return Config{
		DRAM:          dc,
		PIM:           pc,
		LLC:           cache.Config{SizeBytes: 256 * 1024, Ways: 8},
		LLCHitLatency: 12 * clock.Nanosecond,
		Mapping:       mode,
	}
}

func TestLLCHitLatency(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	var first, second clock.Picos
	r1 := &mem.Req{Addr: 0x1000, Kind: mem.Read, Cacheable: true,
		OnDone: func(now clock.Picos) { first = now }}
	s.TryEnqueue(r1)
	eng.Run()
	r2 := &mem.Req{Addr: 0x1000, Kind: mem.Read, Cacheable: true,
		OnDone: func(now clock.Picos) { second = now }}
	start := eng.Now()
	s.TryEnqueue(r2)
	eng.Run()
	if first < 20*clock.Nanosecond {
		t.Errorf("cold miss completed in %v; should pay DRAM latency", first)
	}
	if second-start != 12*clock.Nanosecond {
		t.Errorf("LLC hit latency = %v, want 12ns", second-start)
	}
	if st := s.LLC.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("LLC stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPIMRequestsBypassCache(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	done := 0
	for i := 0; i < 4; i++ {
		r := &mem.Req{Addr: mem.PIMBase + uint64(i*64), Kind: mem.Write,
			OnDone: func(clock.Picos) { done++ }}
		if !s.TryEnqueue(r) {
			t.Fatal("PIM write rejected by empty system")
		}
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d of 4 PIM writes", done)
	}
	if st := s.LLC.Stats(); st.Hits+st.Misses != 0 {
		t.Error("PIM requests touched the LLC")
	}
	if got := s.PIM.Stats().BytesWritten(); got != 4*64 {
		t.Errorf("PIM bytes written = %d, want 256", got)
	}
	if got := s.DRAM.Stats().BytesWritten(); got != 0 {
		t.Errorf("DRAM saw %d bytes; PIM traffic leaked", got)
	}
}

func TestNonCacheableDRAMBypassesCache(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	r := &mem.Req{Addr: 0x4000, Kind: mem.Write, Cacheable: false}
	s.TryEnqueue(r)
	eng.Run()
	if st := s.LLC.Stats(); st.Hits+st.Misses != 0 {
		t.Error("non-cacheable DRAM write touched the LLC")
	}
	if got := s.DRAM.Stats().BytesWritten(); got != 64 {
		t.Errorf("DRAM bytes written = %d, want 64", got)
	}
}

func TestWriteMissFillsLine(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	// Write-allocate: a cacheable store miss fetches the line (one DRAM
	// read), then a later eviction writes it back.
	r := &mem.Req{Addr: 0x8000, Kind: mem.Write, Cacheable: true}
	s.TryEnqueue(r)
	eng.Run()
	if got := s.DRAM.Stats().BytesRead(); got != 64 {
		t.Errorf("fill read = %d bytes, want 64", got)
	}
	if !s.LLC.Contains(0x8000) {
		t.Error("store miss did not allocate the line")
	}
}

func TestDirtyEvictionGeneratesWriteback(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig(MapLocalityBoth)
	cfg.LLC = cache.Config{SizeBytes: 8 * 1024, Ways: 2} // 64 sets, tiny
	s := MustNew(eng, cfg)
	setStride := uint64(64 * 64) // sets * line
	// Dirty a line, then stream enough conflicting lines to evict it.
	s.TryEnqueue(&mem.Req{Addr: 0, Kind: mem.Write, Cacheable: true})
	eng.Run()
	for i := uint64(1); i <= 2; i++ {
		s.TryEnqueue(&mem.Req{Addr: i * setStride, Kind: mem.Read, Cacheable: true})
		eng.Run()
	}
	if wb := s.LLC.Stats().Writebacks; wb != 1 {
		t.Fatalf("writebacks = %d, want 1", wb)
	}
	if got := s.DRAM.Stats().BytesWritten(); got != 64 {
		t.Errorf("DRAM writeback bytes = %d, want 64", got)
	}
}

func TestMappingModesRouteDifferently(t *testing.T) {
	// The same physical address must hit different channels under
	// locality-both vs hetmap (MLP) mapping.
	addr := uint64(3 * 256) // 256B-aligned offset lands on a non-zero MLP channel
	eng1 := sim.New()
	s1 := MustNew(eng1, smallConfig(MapLocalityBoth))
	_, locLoc := s1.Decode(addr)
	eng2 := sim.New()
	s2 := MustNew(eng2, smallConfig(MapHetMap))
	_, mlpLoc := s2.Decode(addr)
	if locLoc.Channel != 0 {
		t.Errorf("locality mapping put low address on channel %d, want 0", locLoc.Channel)
	}
	if mlpLoc.Channel == 0 {
		t.Error("MLP mapping kept 768B offset on channel 0; channel bits should be near LSB")
	}
	// PIM region must stay locality-mapped under HetMap.
	_, pimLoc := s2.Decode(mem.PIMBase + addr)
	if pimLoc.Channel != 0 {
		t.Errorf("HetMap PIM region channel = %d, want locality-mapped 0", pimLoc.Channel)
	}
}

func TestHetMapNoHashMode(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapHetMapNoHash))
	if got := s.Het.Region("dram").Mapper.Name(); got != "mlp-nohash" {
		t.Errorf("dram mapper = %q, want mlp-nohash", got)
	}
}

func TestBackpressurePropagates(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig(MapLocalityBoth)
	cfg.DRAM.QueueDepth = 4
	cfg.DRAM.WriteDrainHi = 3
	cfg.DRAM.WriteDrainLo = 1
	s := MustNew(eng, cfg)
	// Saturate one channel's read queue without running the engine.
	fails := 0
	for i := 0; i < 10; i++ {
		r := &mem.Req{Addr: uint64(i * 64), Kind: mem.Read, Cacheable: false}
		if !s.TryEnqueue(r) {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("queue never filled")
	}
	woke := false
	s.WaitSpace(func() { woke = true })
	eng.Run()
	if !woke {
		t.Error("WaitSpace never fired after drain")
	}
}

// The port tap must see every accepted request exactly once — across
// the non-cacheable, LLC-hit and LLC-miss paths — and never a rejected
// one.
func TestTapSeesEveryAcceptedRequestOnce(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig(MapLocalityBoth)
	cfg.DRAM.QueueDepth = 4
	cfg.DRAM.WriteDrainHi = 3
	cfg.DRAM.WriteDrainLo = 1
	s := MustNew(eng, cfg)
	var tapped []uint64
	s.SetTap(func(now clock.Picos, r *mem.Req) {
		if now != eng.Now() {
			t.Errorf("tap at %v, engine at %v", now, eng.Now())
		}
		tapped = append(tapped, r.Addr)
	})
	accepted := 0
	enqueue := func(r *mem.Req) {
		if s.TryEnqueue(r) {
			accepted++
		}
		eng.Run()
	}
	enqueue(&mem.Req{Addr: 0x1000, Kind: mem.Read, Cacheable: true})  // miss
	enqueue(&mem.Req{Addr: 0x1000, Kind: mem.Read, Cacheable: true})  // hit
	enqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: false}) // non-cacheable
	enqueue(&mem.Req{Addr: mem.PIMBase, Kind: mem.Write})             // PIM region
	if accepted != 4 || len(tapped) != accepted {
		t.Fatalf("tap saw %d requests, %d accepted", len(tapped), accepted)
	}
	// Saturate a queue: rejections must not reach the tap.
	before := len(tapped)
	rejected := 0
	for i := 0; i < 10; i++ {
		if !s.TryEnqueue(&mem.Req{Addr: uint64(i * 64), Kind: mem.Read, Cacheable: false}) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("queue never filled")
	}
	if got := len(tapped) - before; got != 10-rejected {
		t.Errorf("tap saw %d of %d accepted requests under pressure", got, 10-rejected)
	}
	// Detach: no further observations.
	eng.Run()
	s.SetTap(nil)
	after := len(tapped)
	s.TryEnqueue(&mem.Req{Addr: 0x3000, Kind: mem.Read, Cacheable: false})
	if len(tapped) != after {
		t.Error("detached tap still observing")
	}
}

func TestWaitSpaceWithoutFailureFiresImmediately(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	woke := false
	s.WaitSpace(func() { woke = true })
	eng.Run()
	if !woke {
		t.Error("WaitSpace without prior rejection never fired")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	eng := sim.New()
	if _, err := New(eng, DefaultConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestMappingModeString(t *testing.T) {
	names := map[MappingMode]string{
		MapLocalityBoth: "locality-both",
		MapHetMap:       "hetmap",
		MapMLPBoth:      "mlp-both",
		MapHetMapNoHash: "hetmap-nohash",
		MappingMode(99): "unknown",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", m, got, want)
		}
	}
}

func TestIdle(t *testing.T) {
	eng := sim.New()
	s := MustNew(eng, smallConfig(MapLocalityBoth))
	if !s.Idle() {
		t.Error("fresh system not idle")
	}
	s.TryEnqueue(&mem.Req{Addr: 0, Kind: mem.Read, Cacheable: false})
	if s.Idle() {
		t.Error("system idle with queued request")
	}
	eng.Run()
	if !s.Idle() {
		t.Error("system not idle after drain")
	}
}

func TestPageMapBijective(t *testing.T) {
	m := NewPageMap(1<<30, 1<<30, 42) // 256K frames
	seen := make(map[uint64]bool, 1<<18)
	for f := uint64(0); f < 1<<18; f++ {
		p := m.Frame(f, 0)
		if p >= 1<<18 {
			t.Fatalf("Frame(%d) = %d out of range", f, p)
		}
		if seen[p] {
			t.Fatalf("Frame collision at %d", p)
		}
		seen[p] = true
	}
}

func TestPageMapPreservesOffsets(t *testing.T) {
	m := NewPageMap(1<<30, 1<<30, 42)
	a := m.Translate(0x12345)
	b := m.Translate(0x12345 + 64)
	if b != a+64 {
		t.Errorf("intra-page offsets not preserved: 0x%x vs 0x%x", a, b)
	}
	if m.Translate(0x12345)&0xFFF != 0x345 {
		t.Error("page offset changed")
	}
}

func TestPageMapScatters(t *testing.T) {
	m := NewPageMap(1<<30, 1<<30, 42)
	same := 0
	for f := uint64(0); f < 1024; f++ {
		if m.Frame(f, 0) == f {
			same++
		}
	}
	if same > 10 {
		t.Errorf("%d of 1024 frames unmoved; permutation not scattering", same)
	}
}

func TestPageScatterOnlyAffectsDRAM(t *testing.T) {
	eng := sim.New()
	cfg := smallConfig(MapLocalityBoth)
	cfg.PageScatter = true
	s := MustNew(eng, cfg)
	// PIM decode must be unaffected by paging.
	_, pimLoc := s.Decode(mem.PIMBase)
	if pimLoc != (addrmap.Loc{}) {
		t.Errorf("PIM base decoded to %v under paging, want zero loc", pimLoc)
	}
	// DRAM decode must differ from the unpaged system for most addresses.
	cfg2 := smallConfig(MapLocalityBoth)
	cfg2.PageScatter = false
	s2 := MustNew(sim.New(), cfg2)
	diff := 0
	for i := uint64(0); i < 64; i++ {
		a := i << 12
		_, l1 := s.Decode(a)
		_, l2 := s2.Decode(a)
		if l1 != l2 {
			diff++
		}
	}
	if diff < 32 {
		t.Errorf("page scatter changed only %d of 64 page decodes", diff)
	}
}
