package memsys

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// shardedSystem builds the memory system on a topology-sharded engine
// mirroring system.Config.Topology: one named lane per channel of each
// device set, one core lane, and the serial-only dce lane.
func shardedSystem(t *testing.T, workers int) (*sim.Engine, *System) {
	t.Helper()
	cfg := smallConfig(MapLocalityBoth)
	var topo sim.Topology
	for i := 0; i < cfg.DRAM.Geometry.Channels; i++ {
		topo.Add(fmt.Sprintf("dram:%d", i),
			sim.Edge{To: "host", MinLatency: cfg.DRAM.Timing.MinCrossLatency()})
	}
	for i := 0; i < cfg.PIM.Geometry.Channels; i++ {
		topo.Add(fmt.Sprintf("pim:%d", i),
			sim.Edge{To: "host", MinLatency: cfg.PIM.Timing.MinCrossLatency()})
	}
	topo.Add("core:0", sim.Edge{To: "llc", MinLatency: cfg.LLCHitLatency})
	topo.Add("dce", sim.Edge{To: "llc", MinLatency: 0})
	eng, err := sim.NewShardedTopology(workers, topo)
	if err != nil {
		t.Fatal(err)
	}
	return eng, MustNew(eng, cfg)
}

// laneStat finds one lane's snapshot by name.
func laneStat(t *testing.T, eng *sim.Engine, name string) sim.LaneStats {
	t.Helper()
	for _, l := range eng.ShardStats().Lanes {
		if l.Name == name {
			return l
		}
	}
	t.Fatalf("lane %q not in ShardStats", name)
	return sim.LaneStats{}
}

// TestCrossingClassification is the table test of the package's sharding
// contract: every request path through the memory system must classify
// lane-local vs crossing exactly as documented. The observable is the
// owning channel lane's mailbox high-water mark — a crossing completion
// lives in the mailbox until the frontier drains it, a purely local
// path never touches it — plus where the completion callback fires.
func TestCrossingClassification(t *testing.T) {
	cases := []struct {
		name string
		req  func(s *System) *mem.Req
		// lane whose classification the case pins, and whether the path
		// must produce a crossing there.
		lane      string
		crossing  bool
		wantsDone bool
	}{
		{
			// A cacheable read miss fills from DRAM and must deliver its
			// completion back to the requester: the data burst is a
			// crossing on the channel's lane.
			name: "read miss with callback crosses",
			req: func(s *System) *mem.Req {
				return &mem.Req{Addr: 0, Kind: mem.Read, Cacheable: true}
			},
			lane: "dram:0", crossing: true, wantsDone: true,
		},
		{
			// A posted non-cacheable DRAM write has no callback and no
			// waiter: everything the channel does stays lane-local.
			name: "posted NC write stays local",
			req: func(s *System) *mem.Req {
				return &mem.Req{Addr: 0, Kind: mem.Write, Cacheable: false}
			},
			lane: "dram:0", crossing: false,
		},
		{
			// A PIM-region request bypasses the LLC but its completion
			// still crosses back to the requester on the PIM channel lane.
			name: "pim write with callback crosses",
			req: func(s *System) *mem.Req {
				return &mem.Req{Addr: mem.PIMBase, Kind: mem.Write}
			},
			lane: "pim:0", crossing: true, wantsDone: true,
		},
		{
			// A posted PIM write is lane-local end to end.
			name: "posted pim write stays local",
			req: func(s *System) *mem.Req {
				return &mem.Req{Addr: mem.PIMBase, Kind: mem.Write}
			},
			lane: "pim:0", crossing: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, s := shardedSystem(t, 1)
			r := tc.req(s)
			done := false
			if tc.wantsDone {
				r.OnDone = func(clock.Picos) { done = true }
			}
			if !s.TryEnqueue(r) {
				t.Fatal("request rejected by empty system")
			}
			eng.Run()
			ls := laneStat(t, eng, tc.lane)
			if tc.crossing && ls.MailboxPeak == 0 {
				t.Errorf("%s: expected a crossing on %s, mailbox never used (stats %+v)",
					tc.name, tc.lane, ls)
			}
			if !tc.crossing && ls.MailboxPeak != 0 {
				t.Errorf("%s: expected a lane-local path on %s, mailbox peaked at %d",
					tc.name, tc.lane, ls.MailboxPeak)
			}
			if tc.wantsDone && !done {
				t.Errorf("%s: completion callback never fired", tc.name)
			}
		})
	}
}

// TestLLCHitDeliversFromHostLane pins the LLC-hit path: a hit never
// touches a channel lane — its deferred completion is a host event, the
// only context allowed to touch a requester on an arbitrary core lane.
func TestLLCHitDeliversFromHostLane(t *testing.T) {
	eng, s := shardedSystem(t, 1)
	// Prime the line (miss, fills from DRAM).
	s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true})
	eng.Run()
	before := eng.ShardStats()
	done := false
	s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true,
		OnDone: func(clock.Picos) { done = true }})
	if got := eng.ShardStats().HostPending; got != before.HostPending+1 {
		t.Errorf("LLC hit scheduled %d host events, want 1 (the deferred hit delivery)",
			got-before.HostPending)
	}
	for _, l := range eng.ShardStats().Lanes {
		bl := laneStat(t, eng, l.Name)
		if bl.Pending != 0 {
			t.Errorf("LLC hit left %d pending events on lane %s; hits must not touch channels",
				bl.Pending, l.Name)
		}
	}
	eng.Run()
	if !done {
		t.Fatal("LLC hit completion never fired")
	}
	if st := s.LLC.Stats(); st.Hits != 1 {
		t.Errorf("LLC hits = %d, want 1", st.Hits)
	}
}

// TestLLCHitDeliveryLane is the table test of the per-requester hit
// delivery contract: a hit whose request names a delivery lane
// (mem.Req.DeliverOn) becomes a lane-local event on exactly that lane —
// never a channel lane, never the host — until PromoteHits reclassifies
// it as a crossing for the request's source. A nil DeliverOn keeps the
// batched host-queue path.
func TestLLCHitDeliveryLane(t *testing.T) {
	cases := []struct {
		name    string
		deliver string // delivery lane ("" = nil DeliverOn, batched host path)
		src     int    // SrcID on the hit request
		promote int    // SrcID passed to PromoteHits after enqueue (-1 = none)
		// wantHost: the hit scheduled a host event; wantMail: the delivery
		// was reclassified as a crossing on the delivery lane.
		wantHost bool
		wantMail bool
	}{
		{
			name:    "hit lands on requester's lane",
			deliver: "core:0", src: 3, promote: -1,
		},
		{
			name:    "nil DeliverOn keeps batched host delivery",
			deliver: "", promote: -1,
			wantHost: true,
		},
		{
			name:    "promotion moves the delivery to the frontier",
			deliver: "core:0", src: 3, promote: 3,
			wantMail: true,
		},
		{
			name:    "promoting another source is a no-op",
			deliver: "core:0", src: 3, promote: 9,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// workers=2: lane delivery only engages when the engine can
			// execute windows; a serial engine falls back to the host
			// queue (TestLLCHitSerialEnginesUseHostQueue).
			eng, s := shardedSystem(t, 2)
			// Prime the line (miss, fills from DRAM).
			s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true})
			eng.Run()
			var deliver sim.Scheduler
			if tc.deliver != "" {
				lane, ok := eng.Lane(tc.deliver)
				if !ok {
					t.Fatalf("lane %q not in topology", tc.deliver)
				}
				deliver = lane
			}
			hostBefore := eng.ShardStats().HostPending
			done := false
			s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true,
				SrcID: tc.src, DeliverOn: deliver,
				OnDone: func(clock.Picos) { done = true }})
			if tc.promote >= 0 {
				s.PromoteHits(tc.promote)
			}
			st := eng.ShardStats()
			if gotHost := st.HostPending > hostBefore; gotHost != tc.wantHost {
				t.Errorf("host event scheduled = %v, want %v", gotHost, tc.wantHost)
			}
			for _, l := range st.Lanes {
				want := 0
				if l.Name == tc.deliver {
					want = 1
				}
				if l.Pending != want {
					t.Errorf("lane %s has %d pending events, want %d (hits deliver on the requester's lane only)",
						l.Name, l.Pending, want)
				}
			}
			if tc.deliver != "" {
				ls := laneStat(t, eng, tc.deliver)
				if gotMail := ls.MailboxPeak > 0; gotMail != tc.wantMail {
					t.Errorf("delivery in %s mailbox = %v, want %v", tc.deliver, gotMail, tc.wantMail)
				}
			}
			eng.Run()
			if !done {
				t.Fatal("hit completion never fired")
			}
			if lst := s.LLC.Stats(); lst.Hits != 1 {
				t.Errorf("LLC hits = %d, want 1", lst.Hits)
			}
		})
	}
}

// TestLLCHitSerialEnginesUseHostQueue pins the delivery-path gate: on an
// engine that executes serially (workers <= 1) a DeliverOn request still
// uses the batched host queue — lane delivery would add one frontier
// scan per hit with no window to batch it into — and the completion
// order is unchanged either way.
func TestLLCHitSerialEnginesUseHostQueue(t *testing.T) {
	eng, s := shardedSystem(t, 1)
	s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true})
	eng.Run()
	lane, ok := eng.Lane("core:0")
	if !ok {
		t.Fatal("core:0 not in topology")
	}
	before := eng.ShardStats().HostPending
	done := false
	s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true,
		SrcID: 1, DeliverOn: lane,
		OnDone: func(clock.Picos) { done = true }})
	st := eng.ShardStats()
	if st.HostPending != before+1 {
		t.Errorf("host pending %d -> %d, want the hit batched on the host queue",
			before, st.HostPending)
	}
	if ls := laneStat(t, eng, "core:0"); ls.Pending != 0 {
		t.Errorf("serial engine put %d events on core:0; lane delivery must be gated off", ls.Pending)
	}
	eng.Run()
	if !done {
		t.Fatal("hit completion never fired")
	}
}

// TestPromoteHitsSelectsBySource pins promotion's per-source selectivity
// with several deliveries in flight on one lane: only the promoted
// source's deliveries move to the mailbox, and every delivery still
// fires exactly once.
func TestPromoteHitsSelectsBySource(t *testing.T) {
	eng, s := shardedSystem(t, 2)
	s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true})
	eng.Run()
	lane, ok := eng.Lane("core:0")
	if !ok {
		t.Fatal("core:0 not in topology")
	}
	done := 0
	for src := 0; src < 3; src++ {
		s.TryEnqueue(&mem.Req{Addr: 0x2000, Kind: mem.Read, Cacheable: true,
			SrcID: src, DeliverOn: lane,
			OnDone: func(clock.Picos) { done++ }})
	}
	s.PromoteHits(1)
	if peak := laneStat(t, eng, "core:0").MailboxPeak; peak != 1 {
		t.Errorf("mailbox peak = %d after promoting 1 of 3 sources, want 1", peak)
	}
	eng.Run()
	if done != 3 {
		t.Errorf("%d of 3 hit completions fired", done)
	}
	// Promotion after delivery is a no-op, not a double fire.
	s.PromoteHits(0)
	eng.Run()
	if done != 3 {
		t.Errorf("late PromoteHits re-fired a delivery: %d completions", done)
	}
}

// TestWritebackStaysPostedAndLocal forces a dirty eviction and checks the
// writeback path: the evicted line's write is posted (no callback), so
// the receiving channel's work stays lane-local — only the triggering
// fill (which carries the requester's callback) crosses.
func TestWritebackStaysPostedAndLocal(t *testing.T) {
	eng, s := shardedSystem(t, 1)
	ways := s.Config().LLC.Ways
	setStride := uint64(s.Config().LLC.SizeBytes / ways) // same-set stride
	// Dirty one line, then evict it by filling the set with reads.
	s.TryEnqueue(&mem.Req{Addr: 0, Kind: mem.Write, Cacheable: true})
	eng.Run()
	peaks := func() (total int) {
		for _, l := range eng.ShardStats().Lanes {
			total += l.MailboxPeak
		}
		return
	}
	basePeak := peaks()
	done := 0
	for i := 1; i <= ways; i++ {
		s.TryEnqueue(&mem.Req{Addr: uint64(i) * setStride, Kind: mem.Read, Cacheable: true,
			OnDone: func(clock.Picos) { done++ }})
		eng.Run()
	}
	if done != ways {
		t.Fatalf("completed %d of %d set-filling reads", done, ways)
	}
	wrote := s.DRAM.Stats().BytesWritten()
	if wrote != mem.LineBytes {
		t.Fatalf("writeback traffic = %d bytes, want exactly one line", wrote)
	}
	// Every mailbox crossing after the priming write must be one of the
	// `ways` fills; the posted writeback adds none.
	if got, want := peaks()-basePeak, ways; got > want {
		t.Errorf("crossings after eviction = %d, want <= %d (writeback must stay local)",
			got, want)
	}
}

// TestTapObservesEveryLaneSerially pins the trace-tap contract on a
// sharded machine with parallel windows: the tap sees every accepted
// request exactly once, identically to a serial run, because TryEnqueue
// only ever executes from serially-fired events.
func TestTapObservesEveryLaneSerially(t *testing.T) {
	run := func(workers int) []string {
		eng, s := shardedSystem(t, workers)
		var seen []string
		s.SetTap(func(now clock.Picos, r *mem.Req) {
			seen = append(seen, fmt.Sprintf("%d:%x:%v", now, r.Addr, r.Kind))
		})
		for i := 0; i < 64; i++ {
			addr := uint64(i) * 64
			if i%2 == 1 {
				addr = mem.PIMBase + addr
			}
			req := &mem.Req{Addr: addr, Kind: mem.Read, Cacheable: addr < mem.PIMBase}
			if i%4 == 3 {
				req.Kind = mem.Write
			}
			if !s.TryEnqueue(req) {
				t.Fatalf("request %d rejected", i)
			}
		}
		eng.Run()
		return seen
	}
	serial := run(1)
	if len(serial) != 64 {
		t.Fatalf("tap saw %d requests, want 64", len(serial))
	}
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("tap diverged at %d: %s vs %s", i, serial[i], parallel[i])
		}
	}
}
