package memsys

import "fmt"

// PageMap models the operating system's physical page allocation: a user
// buffer that is virtually contiguous occupies scattered physical 4 KB
// frames. The scatter is what lets multi-stream workloads reach many
// banks even under the locality-centric mapping — and it is deliberately
// absent from the PIM region, whose layout is fixed by the PIM runtime
// (each core's MRAM is a hardwired slice of its bank).
//
// Scatter is *arena-local*: the buddy allocator hands out pages from a
// compact region of physical memory, so a buffer's frames permute within
// an arena-sized window rather than across the whole address space. Under
// the locality-centric mapping (channel bits at the MSB) this is what
// confines a working set to one channel's banks — the effect Fig. 8
// measures — while under the MLP-centric mapping the low-bit interleaving
// spreads every page over all channels regardless.
//
// The map is a Feistel permutation over the arena-local frame index:
// bijective (no two virtual frames collide), deterministic (runs are
// reproducible), and parameter-free beyond a seed.
type PageMap struct {
	pageShift  uint
	arenaShift uint
	bits       uint // arena-local frame-index width
	seed       uint64
}

// DefaultArenaBytes is the allocation-clustering window: 2 GiB, roughly
// the contiguity a freshly booted buddy allocator provides.
const DefaultArenaBytes = 4 << 30

// NewPageMap builds a page map for a region of the given size (a power of
// two) with 4 KB pages and the given arena size (a power of two no larger
// than the region; 0 selects DefaultArenaBytes clamped to the region).
func NewPageMap(regionBytes, arenaBytes, seed uint64) *PageMap {
	const pageShift = 12
	if regionBytes == 0 || regionBytes&(regionBytes-1) != 0 {
		panic(fmt.Sprintf("memsys: region size 0x%x not a power of two", regionBytes))
	}
	if arenaBytes == 0 {
		arenaBytes = DefaultArenaBytes
	}
	if arenaBytes > regionBytes {
		arenaBytes = regionBytes
	}
	if arenaBytes&(arenaBytes-1) != 0 {
		panic(fmt.Sprintf("memsys: arena size 0x%x not a power of two", arenaBytes))
	}
	frames := arenaBytes >> pageShift
	if frames < 2 {
		panic("memsys: arena too small to page")
	}
	bits := uint(0)
	for 1<<bits < frames {
		bits++
	}
	arenaShift := uint(0)
	for 1<<arenaShift < arenaBytes {
		arenaShift++
	}
	return &PageMap{pageShift: pageShift, arenaShift: arenaShift, bits: bits, seed: seed}
}

// round is a small mixing function for the Feistel rounds.
func (m *PageMap) round(v, k uint64) uint64 {
	v ^= k
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 29
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 32
	return v
}

// Frame permutes an arena-local frame index (bijectively) using an
// unbalanced Feistel network keyed by the arena index: four rounds
// alternate mixing one half with a keyed hash of the other, which is
// invertible by construction.
func (m *PageMap) Frame(frame, arena uint64) uint64 {
	loBits := m.bits / 2
	hiBits := m.bits - loBits
	l := frame & (1<<loBits - 1)
	h := frame >> loBits
	key := m.seed ^ arena*0xD1B54A32D192ED03
	for r := 0; r < 4; r++ {
		if r%2 == 0 {
			l = (l ^ m.round(h, key+uint64(r))) & (1<<loBits - 1)
		} else {
			h = (h ^ m.round(l, key+uint64(r))) & (1<<hiBits - 1)
		}
	}
	return h<<loBits | l
}

// Translate maps a region-relative byte address onto its scattered
// physical placement, preserving the arena and the offset within the
// 4 KB page.
func (m *PageMap) Translate(addr uint64) uint64 {
	arena := addr >> m.arenaShift
	local := addr & (1<<m.arenaShift - 1)
	frame := local >> m.pageShift
	off := local & (1<<m.pageShift - 1)
	return arena<<m.arenaShift | m.Frame(frame, arena)<<m.pageShift | off
}

// PageBytes reports the page size.
func (m *PageMap) PageBytes() uint64 { return 1 << m.pageShift }

// ArenaBytes reports the clustering window size.
func (m *PageMap) ArenaBytes() uint64 { return 1 << m.arenaShift }
