package xfer

import (
	"testing"

	"repro/internal/memsys"
)

func TestStreamMovesAllBytes(t *testing.T) {
	r := newRig(memsys.MapHetMap)
	cfg := DefaultStreamConfig()
	const lines = 4096
	var res Result
	done := false
	RunStream(r.cpu, 0, lines, cfg, func(x Result) { res = x; done = true })
	r.eng.RunWhile(func() bool { return !done })
	want := uint64(cfg.Threads * lines * 64)
	if res.Bytes != want {
		t.Fatalf("stream bytes = %d, want %d", res.Bytes, want)
	}
	if got := r.sys.DRAM.Stats().BytesRead(); got != want {
		t.Errorf("DRAM read %d bytes, want %d", got, want)
	}
}

func TestStreamIsReadOnly(t *testing.T) {
	r := newRig(memsys.MapHetMap)
	done := false
	RunStream(r.cpu, 0, 512, DefaultStreamConfig(), func(Result) { done = true })
	r.eng.RunWhile(func() bool { return !done })
	if got := r.sys.DRAM.Stats().BytesWritten(); got != 0 {
		t.Errorf("read-only stream wrote %d bytes", got)
	}
}

// A strided stream must touch strided addresses, reading the same byte
// count but spanning stride x the footprint.
func TestStreamStride(t *testing.T) {
	r := newRig(memsys.MapHetMap)
	cfg := DefaultStreamConfig()
	cfg.Threads = 1
	cfg.StrideLines = 4
	done := false
	var res Result
	RunStream(r.cpu, 0, 256, cfg, func(x Result) { res = x; done = true })
	r.eng.RunWhile(func() bool { return !done })
	if res.Bytes != 256*64 {
		t.Errorf("strided stream bytes = %d", res.Bytes)
	}
}

// MLP mapping must beat locality mapping on this benchmark — the Fig. 8
// property at the engine level.
func TestStreamMappingSensitivity(t *testing.T) {
	run := func(mode memsys.MappingMode) float64 {
		r := newRig(mode)
		done := false
		var res Result
		RunStream(r.cpu, 0, 8192, DefaultStreamConfig(), func(x Result) { res = x; done = true })
		r.eng.RunWhile(func() bool { return !done })
		return res.Throughput()
	}
	loc := run(memsys.MapLocalityBoth)
	mlp := run(memsys.MapHetMap)
	if mlp < 1.5*loc {
		t.Errorf("MLP stream %.1f GB/s not well above locality %.1f GB/s", mlp/1e9, loc/1e9)
	}
}

func TestStreamConfigValidate(t *testing.T) {
	if err := DefaultStreamConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultStreamConfig()
	bad.StrideLines = 0
	if bad.Validate() == nil {
		t.Error("StrideLines=0 accepted")
	}
}

func TestStreamZeroLinesPanics(t *testing.T) {
	r := newRig(memsys.MapHetMap)
	defer func() {
		if recover() == nil {
			t.Error("zero-length stream did not panic")
		}
	}()
	RunStream(r.cpu, 0, 0, DefaultStreamConfig(), nil)
}
