package xfer

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// StreamConfig parameterizes the read-only bandwidth microbenchmark of
// Fig. 8: multi-threaded AVX loads over a buffer, sequential or strided.
type StreamConfig struct {
	Threads int
	// StrideLines is the distance between consecutive accesses in lines:
	// 1 is sequential; larger values model the strided pattern of Fig. 8.
	StrideLines int
	// GroupLines is the unrolled loads per barrier.
	GroupLines int
}

// DefaultStreamConfig matches the Fig. 8 microbenchmark (sequential).
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{Threads: 8, StrideLines: 1, GroupLines: 8}
}

// Validate reports configuration errors.
func (c StreamConfig) Validate() error {
	if c.Threads <= 0 || c.StrideLines <= 0 || c.GroupLines <= 0 {
		return fmt.Errorf("xfer: invalid stream config %+v", c)
	}
	return nil
}

// streamProg issues count strided loads from base.
type streamProg struct {
	cfg   StreamConfig
	base  uint64
	count uint64

	done  uint64
	i     int
	phase int
}

// Next implements cpu.Program.
func (p *streamProg) Next() (cpu.Op, bool) {
	for {
		if p.done >= p.count {
			return cpu.Op{}, false
		}
		left := p.count - p.done
		group := uint64(p.cfg.GroupLines)
		if left < group {
			group = left
		}
		switch p.phase {
		case 0:
			if uint64(p.i) < group {
				a := p.base + (p.done+uint64(p.i))*uint64(p.cfg.StrideLines)*mem.LineBytes
				p.i++
				return cpu.Op{Kind: cpu.OpLoad, Addr: a}, true
			}
			p.phase = 1
		case 1:
			p.phase = 0
			p.done += group
			p.i = 0
			return cpu.Op{Kind: cpu.OpBarrier}, true
		}
	}
}

// RunStream launches the read-only microbenchmark: each thread loads
// linesPerThread lines with the configured stride from its own slice of
// the address space starting at base.
func RunStream(c *cpu.CPU, base uint64, linesPerThread uint64, cfg StreamConfig, onDone func(Result)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if linesPerThread == 0 {
		panic("xfer: zero-length stream")
	}
	start := c.Now()
	remaining := cfg.Threads
	span := linesPerThread * uint64(cfg.StrideLines) * mem.LineBytes
	for t := 0; t < cfg.Threads; t++ {
		p := &streamProg{cfg: cfg, base: base + uint64(t)*span, count: linesPerThread}
		c.Spawn(fmt.Sprintf("stream-%d", t), p, func() {
			remaining--
			if remaining == 0 && onDone != nil {
				bytes := uint64(cfg.Threads) * linesPerThread * mem.LineBytes
				onDone(Result{Start: start, End: c.Now(), Bytes: bytes})
			}
		})
	}
}
