package xfer

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// MemcpyConfig parameterizes the multi-threaded AVX-512 DRAM->DRAM copy
// microbenchmark (Section V): each thread streams a contiguous slice of
// the source with vector loads and non-temporal (_mm512_stream_si512)
// stores.
type MemcpyConfig struct {
	Threads int
	// GroupLines is how many lines a thread reads before the barrier and
	// store burst (8 x 64 B = one unrolled AVX loop iteration).
	GroupLines int
	// LoopOverheadCycles is per-group bookkeeping.
	LoopOverheadCycles int64
}

// DefaultMemcpyConfig matches the paper's custom microbenchmark.
func DefaultMemcpyConfig() MemcpyConfig {
	return MemcpyConfig{Threads: 8, GroupLines: 8, LoopOverheadCycles: 8}
}

// Validate reports configuration errors.
func (c MemcpyConfig) Validate() error {
	if c.Threads <= 0 || c.GroupLines <= 0 {
		return fmt.Errorf("xfer: invalid memcpy config %+v", c)
	}
	return nil
}

// memcpyProg streams [src, src+bytes) to [dst, dst+bytes).
type memcpyProg struct {
	cfg   MemcpyConfig
	src   uint64
	dst   uint64
	bytes uint64

	off   uint64
	phase int
	i     int
}

// Next implements cpu.Program.
func (p *memcpyProg) Next() (cpu.Op, bool) {
	for {
		if p.off >= p.bytes {
			return cpu.Op{}, false
		}
		group := uint64(p.cfg.GroupLines * mem.LineBytes)
		if p.bytes-p.off < group {
			group = p.bytes - p.off
		}
		lines := int(group / mem.LineBytes)
		switch p.phase {
		case 0: // loads
			if p.i < lines {
				a := p.src + p.off + uint64(p.i*mem.LineBytes)
				p.i++
				return cpu.Op{Kind: cpu.OpLoad, Addr: a}, true
			}
			p.phase = 1
		case 1:
			p.phase = 2
			return cpu.Op{Kind: cpu.OpBarrier}, true
		case 2:
			p.phase = 3
			p.i = 0
			return cpu.Op{Kind: cpu.OpCompute, Cycles: p.cfg.LoopOverheadCycles}, true
		case 3: // non-temporal stores
			if p.i < lines {
				a := p.dst + p.off + uint64(p.i*mem.LineBytes)
				p.i++
				return cpu.Op{Kind: cpu.OpStore, Addr: a, NC: true}, true
			}
			p.i = 0
			p.phase = 0
			p.off += group
		}
	}
}

// RunMemcpy launches the multi-threaded copy of bytes from src to dst and
// invokes onDone when the last worker exits. The range is split into
// contiguous per-thread slices, exactly like a parallel memcpy.
func RunMemcpy(c *cpu.CPU, src, dst, bytes uint64, cfg MemcpyConfig, onDone func(Result)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if bytes == 0 || bytes%mem.LineBytes != 0 {
		panic(fmt.Sprintf("xfer: memcpy size %d not a positive multiple of %d", bytes, mem.LineBytes))
	}
	lines := bytes / mem.LineBytes
	n := uint64(cfg.Threads)
	if n > lines {
		n = lines
	}
	start := c.Now()
	remaining := int(n)
	perThread := lines / n
	extra := lines % n
	off := uint64(0)
	for t := uint64(0); t < n; t++ {
		sz := perThread
		if t < extra {
			sz++
		}
		p := &memcpyProg{cfg: cfg, src: src + off, dst: dst + off, bytes: sz * mem.LineBytes}
		off += sz * mem.LineBytes
		c.Spawn(fmt.Sprintf("memcpy-%d", t), p, func() {
			remaining--
			if remaining == 0 && onDone != nil {
				onDone(Result{Start: start, End: c.Now(), Bytes: bytes})
			}
		})
	}
}
