package xfer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/pim"
	"repro/internal/sim"
)

// rig is a full Table I system: 8-core CPU, 4+4 channels of DDR4-2400,
// 512 PIM cores.
type rig struct {
	eng  *sim.Engine
	sys  *memsys.System
	cpu  *cpu.CPU
	geom pim.Geometry
	dce  *core.Engine
}

func newRig(mapping memsys.MappingMode) *rig {
	eng := sim.New()
	mc := memsys.DefaultConfig()
	mc.Mapping = mapping
	sys := memsys.MustNew(eng, mc)
	c := cpu.New(eng, cpu.DefaultConfig(), sys)
	geom := pim.DefaultGeometry()
	return &rig{
		eng: eng, sys: sys, cpu: c, geom: geom,
		dce: core.MustNew(eng, sys, geom, core.DefaultConfig()),
	}
}

// op builds a transfer of bytesPerCore to every PIM core from a
// contiguous source buffer (the Fig. 10 pattern).
func (r *rig) op(dir core.Direction, bytesPerCore uint64) core.Op {
	op := core.Op{Dir: dir, BytesPerCore: bytesPerCore}
	for i := 0; i < r.geom.NumCores(); i++ {
		op.Cores = append(op.Cores, i)
		op.DRAMAddrs = append(op.DRAMAddrs, uint64(i)*bytesPerCore)
	}
	return op
}

func TestBaselineMovesAllBytes(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	op := r.op(core.DRAMToPIM, 8<<10) // 4 MB total
	var res Result
	RunBaseline(r.cpu, r.geom, op, DefaultBaselineConfig(), func(x Result) { res = x })
	r.eng.Run()
	if res.Bytes != op.Bytes() {
		t.Fatalf("moved %d bytes, want %d", res.Bytes, op.Bytes())
	}
	if got := r.sys.PIM.Stats().BytesWritten(); got != op.Bytes() {
		t.Errorf("PIM writes = %d, want %d", got, op.Bytes())
	}
	if got := r.sys.DRAM.Stats().BytesRead(); got != op.Bytes() {
		t.Errorf("DRAM reads = %d, want %d", got, op.Bytes())
	}
}

func TestBaselineReverseDirection(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	op := r.op(core.PIMToDRAM, 8<<10)
	var res Result
	RunBaseline(r.cpu, r.geom, op, DefaultBaselineConfig(), func(x Result) { res = x })
	r.eng.Run()
	if res.Bytes != op.Bytes() {
		t.Fatalf("moved %d bytes, want %d", res.Bytes, op.Bytes())
	}
	if got := r.sys.PIM.Stats().BytesRead(); got != op.Bytes() {
		t.Errorf("PIM reads = %d, want %d", got, op.Bytes())
	}
	if got := r.sys.DRAM.Stats().BytesWritten(); got != op.Bytes() {
		t.Errorf("DRAM writes = %d, want %d", got, op.Bytes())
	}
}

// The headline baseline number (Section III-B): software DRAM->PIM copy
// utilizes only a small fraction of PIM bandwidth — the paper measures
// 15.5% of 57.6 GB/s. Our 4-channel PIM set peaks at 76.8 GB/s, so the
// baseline should land far below 30% of it.
func TestBaselineUtilizationIsPoor(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	op := r.op(core.DRAMToPIM, 32<<10) // 16 MB
	var res Result
	RunBaseline(r.cpu, r.geom, op, DefaultBaselineConfig(), func(x Result) { res = x })
	r.eng.Run()
	frac := res.Throughput() / r.sys.PIM.PeakBandwidth()
	if frac > 0.30 {
		t.Errorf("baseline PIM utilization = %.1f%%, expected well below 30%% (paper: 15.5%%)",
			frac*100)
	}
	if frac < 0.05 {
		t.Errorf("baseline PIM utilization = %.1f%%, implausibly low", frac*100)
	}
	t.Logf("baseline DRAM->PIM: %.2f GB/s (%.1f%% of PIM peak)", res.Throughput()/1e9, frac*100)
}

// Thread herding (Fig. 6a): with channel-major bank IDs and round-robin
// job assignment, the early phase of the transfer must concentrate on
// channel 0.
func TestBaselineHerdsOnOneChannelAtATime(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	op := r.op(core.DRAMToPIM, 16<<10)
	done := false
	RunBaseline(r.cpu, r.geom, op, DefaultBaselineConfig(), func(Result) { done = true })
	// Run only the first quarter of the transfer and look at where PIM
	// writes went.
	for !done && r.sys.PIM.Stats().BytesWritten() < op.Bytes()/4 {
		if !r.eng.Step() {
			break
		}
	}
	st := r.sys.PIM.Stats()
	ch0 := float64(st.Channels[0].BytesWritten)
	total := float64(st.BytesWritten())
	if ch0/total < 0.90 {
		t.Errorf("early-phase channel 0 share = %.1f%%, want > 90%% (thread herding)", ch0/total*100)
	}
	r.eng.Run()
}

// The full PIM-MMU (DCE + HetMap + PIM-MS) must beat the software
// baseline by roughly the paper's 4.1x average.
func TestPIMMMUSpeedupOverBaseline(t *testing.T) {
	const perCore = 32 << 10 // 16 MB total
	rb := newRig(memsys.MapLocalityBoth)
	var base Result
	RunBaseline(rb.cpu, rb.geom, rb.op(core.DRAMToPIM, perCore), DefaultBaselineConfig(),
		func(x Result) { base = x })
	rb.eng.Run()

	rm := newRig(memsys.MapHetMap)
	var mmu core.Result
	rm.dce.Transfer(rm.op(core.DRAMToPIM, perCore), func(x core.Result) { mmu = x })
	rm.eng.Run()

	speedup := mmu.Throughput() / base.Throughput()
	t.Logf("baseline %.2f GB/s, PIM-MMU %.2f GB/s, speedup %.2fx",
		base.Throughput()/1e9, mmu.Throughput()/1e9, speedup)
	if speedup < 2.5 || speedup > 9.0 {
		t.Errorf("PIM-MMU speedup = %.2fx, want within the paper's envelope (avg 4.1x, max 6.9x)", speedup)
	}
}

func TestMemcpyMovesAllBytes(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	const n = 4 << 20
	var res Result
	RunMemcpy(r.cpu, 0, 1<<30, n, DefaultMemcpyConfig(), func(x Result) { res = x })
	r.eng.Run()
	if res.Bytes != n {
		t.Fatalf("memcpy moved %d bytes, want %d", res.Bytes, n)
	}
	st := r.sys.DRAM.Stats()
	if st.BytesRead() < n || st.BytesWritten() < n {
		t.Errorf("DRAM traffic r/w = %d/%d, want >= %d each", st.BytesRead(), st.BytesWritten(), n)
	}
}

// Fig. 8 / Fig. 14: the same memcpy is several times faster under the
// MLP-centric mapping than under the locality-centric one.
func TestMemcpyMappingSensitivity(t *testing.T) {
	run := func(mode memsys.MappingMode) float64 {
		r := newRig(mode)
		var res Result
		RunMemcpy(r.cpu, 0, 1<<30, 8<<20, DefaultMemcpyConfig(), func(x Result) { res = x })
		r.eng.Run()
		return res.Throughput()
	}
	locality := run(memsys.MapLocalityBoth)
	mlp := run(memsys.MapHetMap)
	ratio := mlp / locality
	t.Logf("memcpy: locality %.2f GB/s, MLP %.2f GB/s, ratio %.2fx",
		locality/1e9, mlp/1e9, ratio)
	if ratio < 2.0 {
		t.Errorf("MLP/locality memcpy ratio = %.2fx, want > 2x (paper: ~3.3x from Fig. 8)", ratio)
	}
}

func TestBaselineConfigValidate(t *testing.T) {
	if err := DefaultBaselineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBaselineConfig()
	bad.Threads = 0
	if bad.Validate() == nil {
		t.Error("Threads=0 accepted")
	}
	if (MemcpyConfig{Threads: 0, GroupLines: 8}).Validate() == nil {
		t.Error("memcpy Threads=0 accepted")
	}
}

func TestMemcpyOddSizePanics(t *testing.T) {
	r := newRig(memsys.MapLocalityBoth)
	defer func() {
		if recover() == nil {
			t.Error("unaligned memcpy did not panic")
		}
	}()
	RunMemcpy(r.cpu, 0, 1<<30, 100, DefaultMemcpyConfig(), nil)
}

func TestResultHelpers(t *testing.T) {
	if (Result{}).Throughput() != 0 {
		t.Error("empty result throughput != 0")
	}
}
