// Package xfer implements the software data-transfer paths of the paper:
// the baseline multi-threaded dpu_push_xfer engine that UPMEM's runtime
// library uses for DRAM<->PIM copies (Section II-C), and the AVX-512
// multi-threaded DRAM->DRAM memcpy microbenchmark (Section V). Both run
// as thread programs on the internal/cpu model, so their throughput is
// shaped by exactly the effects the paper root-causes: limited per-core
// outstanding requests, OS round-robin scheduling, thread herding across
// channels, and the three-stage read -> transpose -> write pipeline.
package xfer

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/pim"
	"repro/internal/transpose"
)

// Result reports a completed software transfer.
type Result struct {
	Start clock.Picos
	End   clock.Picos
	Bytes uint64
}

// Duration is the wall-clock time of the transfer.
func (r Result) Duration() clock.Picos { return r.End - r.Start }

// Throughput is bytes per second.
func (r Result) Throughput() float64 {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return float64(r.Bytes) / d.Seconds()
}

// BaselineConfig parameterizes the software transfer engine.
type BaselineConfig struct {
	// Threads is the runtime library's worker-thread count (the paper's
	// Section V configures 8 concurrent transfer threads).
	Threads int
	// TransposeCycles is the AVX software transpose cost per 64-byte
	// block.
	TransposeCycles int64
	// LoopOverheadCycles is the per-group loop/address bookkeeping cost.
	LoopOverheadCycles int64
}

// DefaultBaselineConfig matches the paper's baseline.
func DefaultBaselineConfig() BaselineConfig {
	return BaselineConfig{
		Threads:            8,
		TransposeCycles:    transpose.SWCostCyclesPerBlock,
		LoopOverheadCycles: 8,
	}
}

// Validate reports configuration errors.
func (c BaselineConfig) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("xfer: Threads=%d must be positive", c.Threads)
	}
	if c.TransposeCycles < 0 || c.LoopOverheadCycles < 0 {
		return fmt.Errorf("xfer: negative cycle costs")
	}
	return nil
}

// bankJob is one thread work unit: a PIM bank together with the DRAM-side
// arrays of the cores (lanes) it hosts. The runtime works bank-at-a-time
// because the chips of a DIMM split every burst across lanes: one 64-byte
// PIM line carries LaneBytes for each lane, so the transpose gathers all
// lanes of a bank into whole bursts (Fig. 3).
type bankJob struct {
	bankLinear int
	rep        int // representative core (lowest lane)
	srcs       []uint64
	mramOff    uint64
	bytesPer   uint64
}

// buildJobs groups an op's cores into bank jobs sorted by bank-linear ID.
// Bank-linear IDs are channel-major, which is what produces the thread
// herding of Fig. 6(a): every thread's early jobs live in channel 0.
func buildJobs(g pim.Geometry, op core.Op) []bankJob {
	byBank := map[int]*bankJob{}
	for i, c := range op.Cores {
		bl := g.BankLinear(c)
		j := byBank[bl]
		if j == nil {
			j = &bankJob{bankLinear: bl, rep: c, mramOff: op.MRAMOffset, bytesPer: op.BytesPerCore}
			byBank[bl] = j
		}
		if g.Loc(c).Lane < g.Loc(j.rep).Lane {
			j.rep = c
		}
		j.srcs = append(j.srcs, op.DRAMAddrs[i])
	}
	jobs := make([]bankJob, 0, len(byBank))
	for _, j := range byBank {
		jobs = append(jobs, *j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].bankLinear < jobs[b].bankLinear })
	return jobs
}

// baselineProg is one transfer thread's instruction stream: for each
// assigned bank, for each line group, read one line per lane from the
// DRAM side, wait, transpose, and write the gathered lines to the PIM
// side (or the reverse for PIM->DRAM).
type baselineProg struct {
	g      pim.Geometry
	dir    core.Direction
	cfg    BaselineConfig
	jobs   []bankJob
	jobIdx int
	group  uint64 // current line group within the job
	groups uint64 // groups in current job
	phase  int    // 0: issue reads, 1: barrier, 2: compute, 3: issue writes
	lane   int
}

func newBaselineProg(g pim.Geometry, dir core.Direction, cfg BaselineConfig, jobs []bankJob) *baselineProg {
	p := &baselineProg{g: g, dir: dir, cfg: cfg, jobs: jobs}
	p.enterJob()
	return p
}

func (p *baselineProg) enterJob() {
	if p.jobIdx < len(p.jobs) {
		j := p.jobs[p.jobIdx]
		p.groups = j.bytesPer / mem.LineBytes
		p.group = 0
		p.phase = 0
		p.lane = 0
	}
}

// dramAddr is the DRAM-side line address for the current group and lane.
func (p *baselineProg) dramAddr(j bankJob) uint64 {
	return j.srcs[p.lane] + p.group*mem.LineBytes
}

// pimAddr is the PIM-side line address: line group g of the bank spans
// lanes lines [g*L, (g+1)*L).
func (p *baselineProg) pimAddr(j bankJob) uint64 {
	lines := p.group*uint64(len(j.srcs)) + uint64(p.lane)
	return p.g.BankLineAddr(j.rep, j.mramOff) + lines*mem.LineBytes
}

// Next implements cpu.Program.
func (p *baselineProg) Next() (cpu.Op, bool) {
	for {
		if p.jobIdx >= len(p.jobs) {
			return cpu.Op{}, false
		}
		j := p.jobs[p.jobIdx]
		lanes := len(j.srcs)
		switch p.phase {
		case 0: // read one line per lane
			if p.lane < lanes {
				var addr uint64
				nc := false
				if p.dir == core.DRAMToPIM {
					addr = p.dramAddr(j)
				} else {
					addr = p.pimAddr(j)
					nc = true
				}
				p.lane++
				return cpu.Op{Kind: cpu.OpLoad, Addr: addr, NC: nc}, true
			}
			p.phase = 1
		case 1: // wait for the group's reads
			p.phase = 2
			return cpu.Op{Kind: cpu.OpBarrier}, true
		case 2: // software transpose of the group
			p.phase = 3
			p.lane = 0
			cycles := p.cfg.TransposeCycles*int64(lanes) + p.cfg.LoopOverheadCycles
			return cpu.Op{Kind: cpu.OpCompute, Cycles: cycles}, true
		case 3: // write one line per lane
			if p.lane < lanes {
				var addr uint64
				nc := true // AVX streaming stores in both directions
				if p.dir == core.DRAMToPIM {
					addr = p.pimAddr(j)
				} else {
					addr = p.dramAddr(j)
				}
				p.lane++
				return cpu.Op{Kind: cpu.OpStore, Addr: addr, NC: nc}, true
			}
			// Next group (stores drain asynchronously through the WC
			// buffers; the next group's loads overlap them, as the
			// out-of-order core would).
			p.lane = 0
			p.group++
			p.phase = 0
			if p.group >= p.groups {
				p.jobIdx++
				p.enterJob()
			}
		}
	}
}

// RunBaseline launches the multi-threaded software transfer and invokes
// onDone when the last worker thread exits. Threads are assigned bank
// jobs round-robin (thread i takes banks i, i+T, ...), matching the
// UPMEM runtime's work division.
func RunBaseline(c *cpu.CPU, g pim.Geometry, op core.Op, cfg BaselineConfig, onDone func(Result)) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if err := op.Validate(g); err != nil {
		panic(err)
	}
	jobs := buildJobs(g, op)
	nThreads := cfg.Threads
	if nThreads > len(jobs) {
		nThreads = len(jobs)
	}
	start := c.Now()
	remaining := nThreads
	for t := 0; t < nThreads; t++ {
		var mine []bankJob
		for i := t; i < len(jobs); i += cfg.Threads {
			mine = append(mine, jobs[i])
		}
		prog := newBaselineProg(g, op.Dir, cfg, mine)
		c.Spawn(fmt.Sprintf("xfer-%d", t), prog, func() {
			remaining--
			if remaining == 0 && onDone != nil {
				onDone(Result{Start: start, End: c.Now(), Bytes: op.Bytes()})
			}
		})
	}
}
