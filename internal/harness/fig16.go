package harness

import (
	"fmt"
	"io"

	"repro/internal/prim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/system"
)

// Fig16 reproduces the end-to-end PrIM evaluation: the per-workload time
// breakdown (DRAM->PIM transfer, PIM kernel, PIM->DRAM transfer) for the
// baseline and for PIM-MMU, normalized to the baseline. Every (workload x
// design) run is an independent machine, so the whole suite fans out
// through one sweep.
func Fig16(w io.Writer, sc Scale) {
	scale := 1.0 / 64
	if sc == Full {
		scale = 1.0
	}
	suite := prim.Suite()
	designs := baseVsMMU
	g := sweep.NewGrid(len(suite), len(designs))
	phases := cachedMap(g.Size(), func(i int) string {
		// The workload's kernel shape and sizing live in code (prim.Suite),
		// covered by the key's code-version stamp; the name and scale pin
		// the point within the suite.
		return jobKey(newConfig(designs[g.Coord(i, 1)]),
			fmt.Sprintf("fig16 prim workload=%q scale=%g", suite[g.Coord(i, 0)].Name, scale))
	}, func(i int) prim.Phase {
		s := system.MustNew(newConfig(designs[g.Coord(i, 1)]))
		return prim.RunEndToEnd(s, suite[g.Coord(i, 0)], scale)
	})
	t := stats.NewTable("workload",
		"base in%", "base kern%", "base out%",
		"mmu total (norm.)", "speedup", "xfer cut in", "xfer cut out")
	var speedups, fracs []float64
	for wi, wl := range suite {
		pb := phases[g.Index(wi, 0)]
		pm := phases[g.Index(wi, 1)]

		bt := float64(pb.Total())
		sp := bt / float64(pm.Total())
		speedups = append(speedups, sp)
		fracs = append(fracs, pb.TransferFraction())
		inCut, outCut := 0.0, 0.0
		if pm.In > 0 {
			inCut = float64(pb.In) / float64(pm.In)
		}
		if pm.Out > 0 {
			outCut = float64(pb.Out) / float64(pm.Out)
		}
		t.Rowf("%s\t%.0f\t%.0f\t%.0f\t%.2f\t%s\t%s\t%s",
			wl.Name,
			100*float64(pb.In)/bt, 100*float64(pb.Kernel)/bt, 100*float64(pb.Out)/bt,
			float64(pm.Total())/bt, ratio(sp), ratio(inCut), ratio(outCut))
	}
	fmt.Fprint(w, t)
	fmt.Fprintf(w, "baseline transfer share: avg %.1f%% (paper: 63.7%%, max 99.7%%)\n",
		100*stats.Mean(fracs))
	fmt.Fprintf(w, "end-to-end speedup: avg %s, max %s (paper: avg 2.2x, max 4.0x)\n",
		ratio(stats.Mean(speedups)), ratio(stats.Max(speedups)))
}
