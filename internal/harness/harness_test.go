package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsListed(t *testing.T) {
	want := []string{"table1", "fig4", "fig6", "fig8", "fig13a", "fig13b",
		"fig14", "fig15a", "fig15b", "fig16", "area", "headline"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d experiments, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("experiment %d = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Brief == "" || got[i].Run == nil {
			t.Errorf("experiment %q incomplete", name)
		}
	}
}

func TestByName(t *testing.T) {
	if e, ok := ByName("fig8"); !ok || e.Name != "fig8" {
		t.Error("ByName(fig8) failed")
	}
	if _, ok := ByName("fig99"); ok {
		t.Error("ByName(fig99) succeeded")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale strings wrong")
	}
}

func TestTable1Rendering(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, Quick)
	out := buf.String()
	for _, want := range []string{"512 PIM cores", "DDR4-2400", "FR-FCFS",
		"16 KB data buffer", "64 KB address buffer", "ChRaBgBkRoCo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestAreaRendering(t *testing.T) {
	var buf bytes.Buffer
	Area(&buf, Quick)
	out := buf.String()
	if !strings.Contains(out, "0.85 mm^2") || !strings.Contains(out, "0.37%") {
		t.Errorf("Area output missing paper reference values:\n%s", out)
	}
}

// Fig8 is the cheapest simulation-backed experiment; run it end to end
// and validate the printed ratio is in the paper's neighbourhood.
func TestFig8EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	var buf bytes.Buffer
	Fig8(&buf, Quick)
	out := buf.String()
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "strided") {
		t.Fatalf("Fig8 output malformed:\n%s", out)
	}
	// The locality/MLP column should show values near 0.30.
	if !strings.Contains(out, "0.3") && !strings.Contains(out, "0.2") {
		t.Errorf("Fig8 ratio not in the paper's neighbourhood:\n%s", out)
	}
}

func TestPerCoreFloor(t *testing.T) {
	s := newSystem(0)
	if got := perCore(s, 1); got != 64 {
		t.Errorf("perCore(1 byte) = %d, want floor 64", got)
	}
	if got := perCore(s, 512*128); got != 128 {
		t.Errorf("perCore = %d, want 128", got)
	}
}

func TestFormatters(t *testing.T) {
	if gb(19.2e9) != "19.20" {
		t.Errorf("gb = %q", gb(19.2e9))
	}
	if ratio(2.5) != "2.50x" {
		t.Errorf("ratio = %q", ratio(2.5))
	}
}
