package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

func TestAllExperimentsListed(t *testing.T) {
	want := []string{"table1", "fig4", "fig6", "fig8", "fig13a", "fig13b",
		"fig14", "fig15a", "fig15b", "fig16", "area", "headline", "replay", "loadcurve"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d experiments, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("experiment %d = %q, want %q", i, got[i].Name, name)
		}
		if got[i].Brief == "" || got[i].Plan == nil || got[i].Compute == nil || got[i].Render == nil {
			t.Errorf("experiment %q incomplete", name)
		}
	}
}

func TestByName(t *testing.T) {
	if e, ok := ByName("fig8"); !ok || e.Name != "fig8" {
		t.Error("ByName(fig8) failed")
	}
	if _, ok := ByName("fig99"); ok {
		t.Error("ByName(fig99) succeeded")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale strings wrong")
	}
}

// renderQuick renders one registered experiment at Quick scale through
// a fresh default Runner.
func renderQuick(t *testing.T, name string) string {
	t.Helper()
	e, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	var buf bytes.Buffer
	(&Runner{}).Run(e, &buf, Quick)
	return buf.String()
}

func TestTable1Rendering(t *testing.T) {
	out := renderQuick(t, "table1")
	for _, want := range []string{"512 PIM cores", "DDR4-2400", "FR-FCFS",
		"16 KB data buffer", "64 KB address buffer", "ChRaBgBkRoCo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestAreaRendering(t *testing.T) {
	out := renderQuick(t, "area")
	if !strings.Contains(out, "0.85 mm^2") || !strings.Contains(out, "0.37%") {
		t.Errorf("Area output missing paper reference values:\n%s", out)
	}
}

// Fig8 is the cheapest simulation-backed experiment; run it end to end
// and validate the printed ratio is in the paper's neighbourhood.
func TestFig8EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	out := renderQuick(t, "fig8")
	if !strings.Contains(out, "sequential") || !strings.Contains(out, "strided") {
		t.Fatalf("Fig8 output malformed:\n%s", out)
	}
	// The locality/MLP column should show values near 0.30.
	if !strings.Contains(out, "0.3") && !strings.Contains(out, "0.2") {
		t.Errorf("Fig8 ratio not in the paper's neighbourhood:\n%s", out)
	}
}

// Replay is the other cheap simulation-backed experiment; run it end to
// end and validate every workload row renders with a sane gain column.
func TestReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed experiment")
	}
	out := renderQuick(t, "replay")
	for _, wl := range replayWorkloads() {
		if !strings.Contains(out, wl.name) {
			t.Errorf("Replay output missing workload %q:\n%s", wl.name, out)
		}
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "GB/s") {
		t.Errorf("Replay output missing gain/throughput columns:\n%s", out)
	}
}

// The replay experiment's generator configs must be valid at both
// scales and for every workload tweak, or the sweep would panic
// mid-experiment.
func TestReplayWorkloadConfigsValid(t *testing.T) {
	for _, sc := range []Scale{Quick, Full} {
		base := replayGenConfig(sc)
		if err := base.Validate(); err != nil {
			t.Fatalf("%v: base config invalid: %v", sc, err)
		}
		if sc == Full && base.Records <= replayGenConfig(Quick).Records {
			t.Error("full scale does not grow the workload")
		}
		for _, wl := range replayWorkloads() {
			cfg := base
			if wl.tweak != nil {
				wl.tweak(&cfg)
			}
			if _, err := trace.Generate(wl.pattern, cfg); err != nil {
				t.Errorf("%v %s: %v", sc, wl.name, err)
			}
		}
	}
}

func TestReplayWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, wl := range replayWorkloads() {
		if seen[wl.name] {
			t.Errorf("duplicate workload name %q", wl.name)
		}
		seen[wl.name] = true
	}
}

func TestPerCoreFloor(t *testing.T) {
	s := (&Runner{}).newSystem(0)
	if got := perCore(s, 1); got != 64 {
		t.Errorf("perCore(1 byte) = %d, want floor 64", got)
	}
	if got := perCore(s, 512*128); got != 128 {
		t.Errorf("perCore = %d, want 128", got)
	}
}

func TestFig15Sizes(t *testing.T) {
	q := fig15Sizes(Quick)
	f := fig15Sizes(Full)
	if len(f) <= len(q) {
		t.Errorf("full sweep (%d sizes) not larger than quick (%d)", len(f), len(q))
	}
	for _, sizes := range [][]uint64{q, f} {
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= sizes[i-1] {
				t.Errorf("sizes not increasing: %v", sizes)
			}
		}
	}
	if f[len(f)-1] != 256<<20 {
		t.Errorf("full sweep tops out at %d, want the paper's 256 MB", f[len(f)-1])
	}
}

func TestWindowBucketsNormalizes(t *testing.T) {
	a := stats.NewSeries(10)
	b := stats.NewSeries(10)
	a.Add(5, 30) // bucket 0
	b.Add(5, 10)
	a.Add(15, 0) // bucket 1: empty total stays all-zero
	rows := windowBuckets([]*stats.Series{a, b}, 2)
	if rows[0][0] != 75 || rows[0][1] != 25 {
		t.Errorf("bucket 0 shares = %v, want [75 25]", rows[0])
	}
	if rows[1][0] != 0 || rows[1][1] != 0 {
		t.Errorf("empty bucket shares = %v, want zeros", rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if gb(19.2e9) != "19.20" {
		t.Errorf("gb = %q", gb(19.2e9))
	}
	if ratio(2.5) != "2.50x" {
		t.Errorf("ratio = %q", ratio(2.5))
	}
}
