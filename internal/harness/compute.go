// Compute phase of every experiment: plan enumeration plus the jobs
// that actually simulate. Together with runner.go this is the only
// harness code allowed to import internal/system (cmd/pimmu-lint
// enforces the boundary) — renderers consume the pure result types in
// results.go and never see a machine.

package harness

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/prim"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/xfer"
)

// baseVsMMU is the baseline-vs-full-proposal design axis shared by the
// two-point comparisons.
var baseVsMMU = []system.Design{system.Base, system.PIMMMU}

func areaMM2(cfg core.Config) float64 {
	return energy.PIMMMUAreaMM2(cfg.DataBufBytes, cfg.AddrBufBytes)
}

func dieFrac(cfg core.Config) float64 {
	return energy.DieOverheadFraction(cfg.DataBufBytes, cfg.AddrBufBytes)
}

// table1: static configuration snapshot — nothing to simulate.

func table1Plan(_ *Runner, _ Scale) Plan {
	return Plan{Experiment: "table1"}
}

func table1Compute(_ *Runner, _ Scale) Table1Data {
	cfg := system.DefaultConfig(system.PIMMMU)
	cp := cfg.CPU
	dg := cfg.Mem.DRAM.Geometry
	pg := cfg.Mem.PIM.Geometry
	return Table1Data{
		CPUCores:     cp.Cores,
		CPUClockGHz:  float64(cp.Clock) / 1e9,
		LoadBuffers:  cp.LoadBuffers,
		StoreBuffers: cp.StoreBuffers,
		Quantum:      cp.Quantum,
		LLCMB:        cfg.Mem.LLC.SizeBytes >> 20,
		LLCWays:      cfg.Mem.LLC.Ways,
		QueueDepth:   cfg.Mem.DRAM.QueueDepth,
		DrainHi:      cfg.Mem.DRAM.WriteDrainHi,
		DrainLo:      cfg.Mem.DRAM.WriteDrainLo,
		DRAMChannels: dg.Channels,
		DRAMRanks:    dg.Ranks,
		DRAMGiB:      float64(dg.TotalBytes()) / (1 << 30),
		PIMChannels:  pg.Channels,
		PIMRanks:     pg.Ranks,
		PIMCores:     cfg.PIM.NumCores(),
		MRAMMiB:      cfg.PIM.MRAMBytes() >> 20,
		DCEClockGHz:  float64(cfg.DCE.Clock) / 1e9,
		DataBufKB:    cfg.DCE.DataBufBytes >> 10,
		AddrBufKB:    cfg.DCE.AddrBufBytes >> 10,
	}
}

// area: static Section VI-C overhead analysis.

func areaPlan(_ *Runner, _ Scale) Plan {
	return Plan{Experiment: "area"}
}

func areaCompute(_ *Runner, _ Scale) AreaData {
	cfg := core.DefaultConfig()
	return AreaData{
		DataKB:  cfg.DataBufBytes >> 10,
		AddrKB:  cfg.AddrBufBytes >> 10,
		MM2:     areaMM2(cfg),
		DieFrac: dieFrac(cfg),
	}
}

// fig4: active-core-fraction and system-power time series during
// baseline DRAM<->PIM transfers. The two directions are independent
// machines, so they sweep in parallel.

func fig4Plan(r *Runner, sc Scale) Plan {
	size := fig4Size(sc)
	jobs := make([]Job, len(bothDirections))
	for i, dir := range bothDirections {
		jobs[i] = r.job(system.Base,
			fmt.Sprintf("fig4 dir=%v bytes=%d window=50us", dir, size))
	}
	return Plan{Experiment: "fig4", Jobs: jobs}
}

func fig4Compute(r *Runner, sc Scale) []Fig4Section {
	size := fig4Size(sc)
	return ComputePlan(r, fig4Plan(r, sc), func(i int, j Job) Fig4Section {
		s := system.MustNew(j.Config)
		pt, stop := s.SamplePower(50 * clock.Microsecond)
		res := r.runTransfer(s, bothDirections[i], size)
		stop()
		sec := Fig4Section{Thr: res.Throughput()}
		n := pt.Watts.Len()
		step := n/12 + 1
		for k := 0; k < n; k += step {
			sec.Rows = append(sec.Rows, Fig4Row{
				T:          k * 50,
				ActiveFrac: pt.ActiveFrac.Bucket(k),
				Watts:      pt.Watts.Bucket(k),
			})
		}
		return sec
	})
}

// fig6: per-channel write-throughput breakdown — (a) the baseline's
// coarse-grained software DRAM->PIM copy herds one channel at a time;
// (b) a hardware-paced fine-grained copy (the DCE under HetMap) spreads
// evenly.

// fig6Points is the fig6 design axis; render uses the labels only.
var fig6Points = []struct {
	design system.Design
	label  string
}{
	{system.Base, "a: software coarse-grained DRAM->PIM — one channel at a time"},
	{system.PIMMMU, "b: hardware fine-grained — even across channels"},
}

// fig6Config is one fig6 point's machine config: the default design
// config with the 100 us stats window the time series is bucketed on.
func fig6Config(r *Runner, i int) system.Config {
	cfg := r.Config(fig6Points[i].design)
	cfg.Mem.PIM.SeriesWindow = 100 * clock.Microsecond
	return cfg
}

func fig6Plan(r *Runner, sc Scale) Plan {
	size := fig6Size(sc)
	jobs := make([]Job, len(fig6Points))
	for i := range fig6Points {
		jobs[i] = r.NewJob("harness/v1", fig6Config(r, i),
			fmt.Sprintf("fig6 bytes=%d label=%q", size, fig6Points[i].label))
	}
	return Plan{Experiment: "fig6", Jobs: jobs}
}

func fig6Compute(r *Runner, sc Scale) []Fig6Section {
	size := fig6Size(sc)
	return ComputePlan(r, fig6Plan(r, sc), func(i int, j Job) Fig6Section {
		s := system.MustNew(j.Config)
		r.runTransfer(s, core.DRAMToPIM, size)
		var series []*stats.Series
		for _, c := range s.Mem.PIM.Stats().Channels {
			series = append(series, c.WriteSeries)
		}
		// Size rows from MaxIndex, not Len: a channel served late in a
		// coarse-grained copy has no window-0 sample, so its buckets live
		// beyond the Len() prefix (Bucket still reaches them).
		maxLen := 0
		for _, sr := range series {
			if n := int(sr.MaxIndex()) + 1; n > maxLen {
				maxLen = n
			}
		}
		return Fig6Section{Rows: windowBuckets(series, maxLen)}
	})
}

// fig8: locality-centric vs MLP-centric DRAM bandwidth over sequential
// and strided read patterns. The four (pattern x mapping) machines
// sweep in parallel.

// fig8Grid flattens (pattern x design).
func fig8Grid() sweep.Grid {
	return sweep.NewGrid(len(fig8Patterns), len(baseVsMMU))
}

// fig8Stream is point i's stream config.
func fig8Stream(g sweep.Grid, i int) xfer.StreamConfig {
	cfg := xfer.DefaultStreamConfig()
	cfg.StrideLines = fig8Patterns[g.Coord(i, 0)].stride
	return cfg
}

func fig8Plan(r *Runner, sc Scale) Plan {
	lines := fig8Lines(sc)
	g := fig8Grid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)],
			fmt.Sprintf("fig8 lines=%d stream=%s", lines, resultcache.Canonical(fig8Stream(g, i))))
	}
	return Plan{Experiment: "fig8", Jobs: jobs}
}

func fig8Compute(r *Runner, sc Scale) []float64 {
	lines := fig8Lines(sc)
	g := fig8Grid()
	return ComputePlan(r, fig8Plan(r, sc), func(i int, j Job) float64 {
		s := system.MustNew(j.Config)
		cfg := fig8Stream(g, i)
		base := s.Alloc(lines * uint64(cfg.StrideLines) * uint64(cfg.Threads) * 64)
		var res xfer.Result
		done := false
		xfer.RunStream(s.CPU, base, lines, cfg, func(r xfer.Result) { res = r; done = true })
		s.Eng.RunWhile(func() bool { return !done })
		return res.Throughput()
	})
}

// fig13a/fig13b: contender-sensitivity sweeps.

// contendedOp is the op string of one contendedLatency measurement; the
// contender programs' footprints and loop shapes are code, covered by
// the key's code-version stamp.
func contendedOp(size uint64, n, level int) string {
	return fmt.Sprintf("fig13 xfer bytes=%d contenders=%d level=%d", size, n, level)
}

// contendedLatency measures one DRAM->PIM transfer's latency on j's
// machine with n contenders (level < 0 selects compute-bound spinners,
// otherwise the memory intensity).
func (r *Runner) contendedLatency(j Job, size uint64, n, level int) float64 {
	s := system.MustNew(j.Config)
	var st *contend.Stopper
	if n > 0 {
		if level < 0 {
			base := s.Alloc(uint64(n) * (16 << 10))
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.Spin(st, base+uint64(i)*(16<<10))
			})
		} else {
			const footprint = 64 << 20
			base := s.Alloc(uint64(n) * footprint)
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.MemoryHog(st, base+uint64(i)*footprint, footprint, contend.Intensity(level))
			})
		}
	}
	res := r.runTransfer(s, core.DRAMToPIM, size)
	if st != nil {
		st.Stop()
	}
	return res.Duration.Seconds()
}

func fig13aGrid() sweep.Grid {
	return sweep.NewGrid(len(fig13aCounts), len(baseVsMMU))
}

func fig13aPlan(r *Runner, sc Scale) Plan {
	size := fig13Size(sc)
	g := fig13aGrid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)],
			contendedOp(size, fig13aCounts[g.Coord(i, 0)], -1))
	}
	return Plan{Experiment: "fig13a", Jobs: jobs}
}

func fig13aCompute(r *Runner, sc Scale) []float64 {
	size := fig13Size(sc)
	g := fig13aGrid()
	return ComputePlan(r, fig13aPlan(r, sc), func(i int, j Job) float64 {
		return r.contendedLatency(j, size, fig13aCounts[g.Coord(i, 0)], -1)
	})
}

// fig13bGrid flattens (row x design); row 0 is the uncontended
// reference, rows 1.. are the intensity levels.
func fig13bGrid() sweep.Grid {
	return sweep.NewGrid(1+len(contend.Levels()), len(baseVsMMU))
}

// fig13bArgs recovers point i's contender count and intensity level.
func fig13bArgs(g sweep.Grid, i int) (n, level int) {
	if row := g.Coord(i, 0); row > 0 {
		return 4, int(contend.Levels()[row-1])
	}
	return 0, -1
}

func fig13bPlan(r *Runner, sc Scale) Plan {
	size := fig13Size(sc)
	g := fig13bGrid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		n, level := fig13bArgs(g, i)
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)], contendedOp(size, n, level))
	}
	return Plan{Experiment: "fig13b", Jobs: jobs}
}

func fig13bCompute(r *Runner, sc Scale) []float64 {
	size := fig13Size(sc)
	g := fig13bGrid()
	return ComputePlan(r, fig13bPlan(r, sc), func(i int, j Job) float64 {
		n, level := fig13bArgs(g, i)
		return r.contendedLatency(j, size, n, level)
	})
}

// fig14: DRAM->DRAM memcpy throughput across memory-system
// configurations.

func fig14Grid() sweep.Grid {
	return sweep.NewGrid(len(fig14Configs), len(baseVsMMU))
}

// fig14Config is point i's machine config with the geometry override
// applied to the DRAM and PIM systems alike.
func fig14Config(r *Runner, g sweep.Grid, i int) system.Config {
	c := fig14Configs[g.Coord(i, 0)]
	cfg := r.Config(baseVsMMU[g.Coord(i, 1)])
	cfg.Mem.DRAM.Geometry.Channels = c.ch
	cfg.Mem.DRAM.Geometry.Ranks = c.ra
	cfg.Mem.PIM.Geometry.Channels = c.ch
	cfg.Mem.PIM.Geometry.Ranks = c.ra
	cfg.PIM.DRAM.Channels = c.ch
	cfg.PIM.DRAM.Ranks = c.ra
	return cfg
}

func fig14Plan(r *Runner, sc Scale) Plan {
	size := fig14Size(sc)
	g := fig14Grid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.NewJob("harness/v1", fig14Config(r, g, i),
			fmt.Sprintf("fig14 memcpy bytes=%d", size))
	}
	return Plan{Experiment: "fig14", Jobs: jobs}
}

func fig14Compute(r *Runner, sc Scale) []float64 {
	size := fig14Size(sc)
	return ComputePlan(r, fig14Plan(r, sc), func(i int, j Job) float64 {
		s := system.MustNew(j.Config)
		return s.RunMemcpy(size).Throughput()
	})
}

// fig15a/fig15b: the ablation sweeps — every (direction x size x
// design) point is an independent machine, so the whole ablation fans
// out at once.

func fig15Grid(sc Scale) sweep.Grid {
	return sweep.NewGrid(len(bothDirections), len(fig15Sizes(sc)), len(system.Designs()))
}

func fig15aPlan(r *Runner, sc Scale) Plan {
	sizes := fig15Sizes(sc)
	designs := system.Designs()
	g := fig15Grid(sc)
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.job(designs[g.Coord(i, 2)],
			fmt.Sprintf("fig15a xfer dir=%v bytes=%d", bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}
	return Plan{Experiment: "fig15a", Jobs: jobs}
}

func fig15aCompute(r *Runner, sc Scale) []float64 {
	sizes := fig15Sizes(sc)
	g := fig15Grid(sc)
	return ComputePlan(r, fig15aPlan(r, sc), func(i int, j Job) float64 {
		s := system.MustNew(j.Config)
		return r.runTransfer(s, bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]).Throughput()
	})
}

func fig15bPlan(r *Runner, sc Scale) Plan {
	sizes := fig15Sizes(sc)
	designs := system.Designs()
	g := fig15Grid(sc)
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.job(designs[g.Coord(i, 2)],
			fmt.Sprintf("fig15b energy dir=%v bytes=%d", bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}
	return Plan{Experiment: "fig15b", Jobs: jobs}
}

func fig15bCompute(r *Runner, sc Scale) []Fig15bPoint {
	sizes := fig15Sizes(sc)
	g := fig15Grid(sc)
	return ComputePlan(r, fig15bPlan(r, sc), func(i int, j Job) Fig15bPoint {
		s := system.MustNew(j.Config)
		before := s.Activity()
		r.runTransfer(s, bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)])
		b := s.EnergyOver(before, s.Activity())
		return Fig15bPoint{Total: b.Total(), StaticFrac: b.Static() / b.Total()}
	})
}

// fig16: end-to-end PrIM evaluation — the per-workload time breakdown
// for the baseline and for PIM-MMU. Every (workload x design) run is an
// independent machine, so the whole suite fans out through one sweep.

func fig16Grid() sweep.Grid {
	return sweep.NewGrid(len(prim.Suite()), len(baseVsMMU))
}

func fig16Plan(r *Runner, sc Scale) Plan {
	scale := fig16Scale(sc)
	suite := prim.Suite()
	g := fig16Grid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		// The workload's kernel shape and sizing live in code (prim.Suite),
		// covered by the key's code-version stamp; the name and scale pin
		// the point within the suite.
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)],
			fmt.Sprintf("fig16 prim workload=%q scale=%g", suite[g.Coord(i, 0)].Name, scale))
	}
	return Plan{Experiment: "fig16", Jobs: jobs}
}

func fig16Compute(r *Runner, sc Scale) []prim.Phase {
	scale := fig16Scale(sc)
	suite := prim.Suite()
	g := fig16Grid()
	return ComputePlan(r, fig16Plan(r, sc), func(i int, j Job) prim.Phase {
		s := system.MustNew(j.Config)
		return prim.RunEndToEnd(s, suite[g.Coord(i, 0)], scale)
	})
}

// headline: the abstract's summary numbers — average/max transfer
// speedup and energy-efficiency gain of PIM-MMU over Base. Every
// (direction x size x design) machine is independent, so the whole
// matrix fans out through one sweep.

func headlineGrid(sc Scale) sweep.Grid {
	return sweep.NewGrid(len(bothDirections), len(headlineSizes(sc)), len(baseVsMMU))
}

func headlinePlan(r *Runner, sc Scale) Plan {
	sizes := headlineSizes(sc)
	g := headlineGrid(sc)
	jobs := make([]Job, g.Size())
	for i := range jobs {
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 2)],
			fmt.Sprintf("headline dir=%v bytes=%d", bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}
	return Plan{Experiment: "headline", Jobs: jobs}
}

func headlineCompute(r *Runner, sc Scale) []HeadlinePoint {
	sizes := headlineSizes(sc)
	g := headlineGrid(sc)
	return ComputePlan(r, headlinePlan(r, sc), func(i int, j Job) HeadlinePoint {
		s := system.MustNew(j.Config)
		a0 := s.Activity()
		res := r.runTransfer(s, bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)])
		e := s.EnergyOver(a0, s.Activity())
		return HeadlinePoint{Thr: res.Throughput(), Eff: float64(res.Bytes) / e.Total()}
	})
}

// replay: synthetic application access patterns replayed through the
// memory port of a Base and a PIM-MMU machine at recorded inter-arrival
// times; the replayed runs report bandwidth and latency from the same
// channel/LLC counters as every figure. Every (workload x design)
// machine is independent, so the matrix fans out through one sweep.

func replayGrid() sweep.Grid {
	return sweep.NewGrid(len(replayWorkloads()), len(baseVsMMU))
}

func replayPlan(r *Runner, sc Scale) Plan {
	workloads := replayWorkloads()
	g := replayGrid()
	jobs := make([]Job, g.Size())
	for i := range jobs {
		wl := workloads[g.Coord(i, 0)]
		cfg := replayWorkloadGenConfig(sc, wl)
		// cfg.Base is assigned inside the job, but it is itself a pure
		// function of the machine (the first allocation of a fresh system,
		// or the fixed PIM base), so pim + the generator config identify
		// the workload completely.
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)],
			fmt.Sprintf("replay pattern=%s pim=%v gen=%s rcfg=%s", wl.pattern, wl.pim,
				resultcache.Canonical(cfg), resultcache.Canonical(trace.DefaultReplayConfig())))
	}
	return Plan{Experiment: "replay", Jobs: jobs}
}

func replayCompute(r *Runner, sc Scale) []ReplayPoint {
	workloads := replayWorkloads()
	g := replayGrid()
	return ComputePlan(r, replayPlan(r, sc), func(i int, j Job) ReplayPoint {
		wl := workloads[g.Coord(i, 0)]
		s := system.MustNew(j.Config)
		cfg := replayWorkloadGenConfig(sc, wl)
		if wl.pim {
			cfg.Base = mem.PIMBase
		} else {
			cfg.Base = s.Alloc(cfg.FootprintBytes(wl.pattern))
		}
		recs := trace.MustGenerate(wl.pattern, cfg)
		rr, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			panic(err)
		}
		r.ReportLaneStats(fmt.Sprintf("replay %s %v", wl.name, s.Cfg.Design), s)
		return ReplayPoint{Thr: rr.Throughput(), Hist: rr.Latency}
	})
}

// loadcurve: the open-loop latency-vs-offered-load curve for Base vs
// PIM-MMU — a Poisson stream of line requests over the mixed workload
// is offered at each load level regardless of backpressure. Every
// (gap x design) machine is independent, so the matrix fans out through
// one sweep.

func loadCurveGrid(sc Scale) sweep.Grid {
	return sweep.NewGrid(len(loadGaps(sc)), len(baseVsMMU))
}

func loadCurvePlan(r *Runner, sc Scale) Plan {
	gaps := loadGaps(sc)
	g := loadCurveGrid(sc)
	jobs := make([]Job, g.Size())
	for i := range jobs {
		gcfg := replayGenConfig(sc)
		dcfg := loadDriverConfig(sc, gaps[g.Coord(i, 0)])
		// gcfg.Base is assigned inside the job but is a pure function of
		// the machine (its first allocation), so the generator and driver
		// configs identify the workload completely.
		jobs[i] = r.job(baseVsMMU[g.Coord(i, 1)],
			fmt.Sprintf("loadcurve pattern=%s gen=%s dcfg=%s", trace.PatternMixed,
				resultcache.Canonical(gcfg), resultcache.Canonical(dcfg)))
	}
	return Plan{Experiment: "loadcurve", Jobs: jobs}
}

func loadCurveCompute(r *Runner, sc Scale) []LoadPoint {
	gaps := loadGaps(sc)
	g := loadCurveGrid(sc)
	return ComputePlan(r, loadCurvePlan(r, sc), func(i int, j Job) LoadPoint {
		s := system.MustNew(j.Config)
		gcfg := replayGenConfig(sc)
		gcfg.Base = s.Alloc(gcfg.FootprintBytes(trace.PatternMixed))
		recs := trace.MustGenerate(trace.PatternMixed, gcfg)
		lr, err := s.RunLoad(recs, loadDriverConfig(sc, gaps[g.Coord(i, 0)]))
		if err != nil {
			panic(err)
		}
		r.ReportLaneStats(fmt.Sprintf("loadcurve gap=%v %v", gaps[g.Coord(i, 0)], s.Cfg.Design), s)
		return LoadPoint{Thr: lr.Throughput(), Total: lr.Total, Queue: lr.Queue}
	})
}
