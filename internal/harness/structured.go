// Structured result export: the bridge between the experiment phases
// and the versioned serve/api wire types. The text render becomes one
// field of the structured result rather than the only artifact, so the
// same payload serves HTTP responses, -format json on the CLIs, and
// cached replays. This file must not import internal/system — it only
// repackages compute results.

package harness

import (
	"fmt"
	"strings"

	"repro/internal/serve/api"
)

// ParseScale maps the wire scale string to a Scale. The empty string
// selects Quick, mirroring the CLIs' default.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Quick, fmt.Errorf("unknown scale %q (want %q or %q)", s, "quick", "full")
}

// BuildResult packages an experiment's computed results as the
// canonical structured form: the machine-readable result set plus the
// deterministic text render of exactly those results. Because Render is
// a pure function of (scale, results), the Text field is byte-identical
// to what the text CLIs print for the same results.
func BuildResult(e Experiment, sc Scale, results any) (api.ExperimentResult, error) {
	var buf strings.Builder
	e.Render(&buf, sc, results)
	return api.NewResult(e.Name, sc.String(), results, buf.String())
}

// ComputeResult runs an experiment's compute phase through the runner
// and packages the results. This is the one call the server and the
// -format json CLI paths share.
func ComputeResult(r *Runner, e Experiment, sc Scale) (api.ExperimentResult, error) {
	return BuildResult(e, sc, e.Compute(r, sc))
}
