package harness

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/resultcache"
)

// staticPlans names the experiments that plan zero jobs: pure
// configuration snapshots with nothing to simulate.
var staticPlans = map[string]bool{"table1": true, "area": true}

// Plans are pure enumeration: two enumerations of the same experiment
// at the same scale must be identical, jobs and keys included.
func TestPlansDeterministic(t *testing.T) {
	r := &Runner{}
	for _, e := range All() {
		for _, sc := range []Scale{Quick, Full} {
			a := e.Plan(r, sc)
			b := e.Plan(r, sc)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%v: two plan enumerations differ", e.Name, sc)
			}
			if a.Experiment != e.Name {
				t.Errorf("%s/%v: plan names experiment %q", e.Name, sc, a.Experiment)
			}
			if staticPlans[e.Name] != (len(a.Jobs) == 0) {
				t.Errorf("%s/%v: %d jobs, static=%v", e.Name, sc, len(a.Jobs), staticPlans[e.Name])
			}
		}
	}
}

// Every job key is non-empty and unique within its plan — a collision
// inside one plan would make two different points serve each other's
// cached results. (Keys MAY coincide across plans and scales: fig13a
// and fig13b share their uncontended reference point, and a Full sweep
// legitimately reuses the Quick sweep's sizes — the key addresses the
// computation, not the experiment.)
func TestPlanKeysUniqueWithinPlan(t *testing.T) {
	resultcache.SetCodeVersion("plan-test")
	defer resultcache.SetCodeVersion("")
	r := &Runner{}
	for _, sc := range []Scale{Quick, Full} {
		for _, e := range All() {
			p := e.Plan(r, sc)
			seen := map[string]int{}
			for i, j := range p.Jobs {
				if j.Key == "" {
					t.Errorf("%s/%v job %d: empty key", e.Name, sc, i)
					continue
				}
				if prev, dup := seen[j.Key]; dup {
					t.Errorf("%s/%v job %d: key %q collides with job %d", e.Name, sc, i, j.Key, prev)
				}
				seen[j.Key] = i
			}
		}
	}
}

// Full mode must not shrink an experiment: every sweep keeps or grows
// its job count at paper scale.
func TestFullPlansCoverQuickPlans(t *testing.T) {
	resultcache.SetCodeVersion("plan-test")
	defer resultcache.SetCodeVersion("")
	r := &Runner{}
	for _, e := range All() {
		q, f := len(e.Plan(r, Quick).Jobs), len(e.Plan(r, Full).Jobs)
		if f < q {
			t.Errorf("%s: Full plans %d jobs, fewer than Quick's %d", e.Name, f, q)
		}
	}
}

// Rendering from a fully warmed cache must be byte-identical to the
// cold compute that filled it — the renderer cannot tell a hit from a
// simulation. Exercised on the cheap simulation-backed experiments.
func TestWarmCacheRendersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	resultcache.SetCodeVersion("warm-test")
	defer resultcache.SetCodeVersion("")
	for _, name := range []string{"fig8", "replay", "loadcurve"} {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown experiment %q", name)
		}
		dir := t.TempDir()
		store, err := resultcache.Open(dir, resultcache.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		cold := &Runner{Cache: store}
		jobs := len(e.Plan(cold, Quick).Jobs)
		var coldOut bytes.Buffer
		cold.Run(e, &coldOut, Quick)
		if st := store.Stats(); st.Misses != uint64(jobs) || st.Stores != uint64(jobs) || st.Hits != 0 {
			t.Errorf("%s cold: stats %v, want %d misses and stores", name, st, jobs)
		}

		store2, err := resultcache.Open(dir, resultcache.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		warm := &Runner{Cache: store2}
		var warmOut bytes.Buffer
		warm.Run(e, &warmOut, Quick)
		if st := store2.Stats(); st.Hits != uint64(jobs) || st.Misses != 0 {
			t.Errorf("%s warm: stats %v, want %d hits and no misses", name, st, jobs)
		}
		if !bytes.Equal(coldOut.Bytes(), warmOut.Bytes()) {
			t.Errorf("%s: warm render differs from cold render", name)
		}
	}
}
