package harness

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// loadGaps is the offered-load axis of the loadcurve experiment as mean
// inter-arrival gaps: one 64 B line per gap, so offered load spans 2 to
// 64 GB/s. Full mode adds intermediate points to sharpen the knee.
func loadGaps(sc Scale) []clock.Picos {
	if sc == Full {
		return []clock.Picos{
			32 * clock.Nanosecond, 24 * clock.Nanosecond, 16 * clock.Nanosecond,
			12 * clock.Nanosecond, 8 * clock.Nanosecond, 6 * clock.Nanosecond,
			4 * clock.Nanosecond, 3 * clock.Nanosecond, 2 * clock.Nanosecond,
			1500, 1 * clock.Nanosecond, 750,
		}
	}
	return []clock.Picos{
		32 * clock.Nanosecond, 16 * clock.Nanosecond, 8 * clock.Nanosecond,
		4 * clock.Nanosecond, 2 * clock.Nanosecond, 1 * clock.Nanosecond,
	}
}

// loadSLO is the latency objective the knee is read against: the
// highest offered load whose p99 end-to-end (arrival-to-completion)
// latency stays within the objective.
const loadSLO = 2 * clock.Microsecond

// loadDriverConfig sizes one load point: Poisson arrivals at the given
// mean gap, with the duration scaled so every point sees the same
// arrival count — equal sample sizes keep p99.9 equally resolved across
// the axis.
func loadDriverConfig(sc Scale, gap clock.Picos) trace.DriverConfig {
	cfg := trace.DefaultDriverConfig()
	cfg.MeanGap = gap
	arrivals := clock.Picos(8192)
	if sc == Full {
		arrivals = 65536
	}
	cfg.Duration = gap * arrivals
	return cfg
}

// LoadCurve renders the open-loop latency-vs-offered-load curve for
// Base vs PIM-MMU: a Poisson stream of line requests over the mixed
// workload is offered at each load level regardless of backpressure, and
// each point reports the end-to-end tail (p50/p99/p99.9) plus the p99
// queueing delay — the component a closed-loop replay cannot see. The
// footer row reads off the SLO knee: the maximum offered load whose p99
// stays within the objective. Every (gap x design) machine is
// independent, so the matrix fans out through one sweep.
func LoadCurve(w io.Writer, sc Scale) {
	gaps := loadGaps(sc)
	designs := baseVsMMU
	type point struct {
		Thr          float64
		Total, Queue trace.LatencyHist
	}
	g := sweep.NewGrid(len(gaps), len(designs))
	res := cachedMap(g.Size(), func(i int) string {
		gcfg := replayGenConfig(sc)
		dcfg := loadDriverConfig(sc, gaps[g.Coord(i, 0)])
		// gcfg.Base is assigned inside the job but is a pure function of
		// the machine (its first allocation), so the generator and driver
		// configs identify the workload completely.
		return jobKey(newConfig(designs[g.Coord(i, 1)]),
			fmt.Sprintf("loadcurve pattern=%s gen=%s dcfg=%s", trace.PatternMixed,
				resultcache.Canonical(gcfg), resultcache.Canonical(dcfg)))
	}, func(i int) point {
		s := newSystem(designs[g.Coord(i, 1)])
		gcfg := replayGenConfig(sc)
		gcfg.Base = s.Alloc(gcfg.FootprintBytes(trace.PatternMixed))
		recs := trace.MustGenerate(trace.PatternMixed, gcfg)
		lr, err := s.RunLoad(recs, loadDriverConfig(sc, gaps[g.Coord(i, 0)]))
		if err != nil {
			panic(err)
		}
		reportLaneStats(fmt.Sprintf("loadcurve gap=%v %v", gaps[g.Coord(i, 0)], s.Cfg.Design), s)
		return point{Thr: lr.Throughput(), Total: lr.Total, Queue: lr.Queue}
	})
	t := stats.NewTable("offered (GB/s)", "Base p50/p99/p99.9 (ns)", "PIM-MMU p50/p99/p99.9 (ns)",
		"Base p99 queue (ns)", "PIM-MMU p99 queue (ns)")
	knee := make([]clock.Picos, len(designs)) // best (smallest) gap within SLO
	for gi, gap := range gaps {
		b := res[g.Index(gi, 0)]
		m := res[g.Index(gi, 1)]
		t.Rowf("%s\t%s\t%s\t%.0f\t%.0f",
			gb(loadDriverConfig(sc, gap).OfferedLoad()),
			percentiles999(&b.Total), percentiles999(&m.Total),
			b.Queue.P99().Nanoseconds(), m.Queue.P99().Nanoseconds())
		for di := range designs {
			p := res[g.Index(gi, di)]
			if p.Total.P99() <= loadSLO && (knee[di] == 0 || gap < knee[di]) {
				knee[di] = gap
			}
		}
	}
	t.Rowf("max load @ p99 <= %v\t%s\t%s\t\t", loadSLO, kneeCell(sc, knee[0]), kneeCell(sc, knee[1]))
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "expected shape: both designs track the service floor at low load; the")
	fmt.Fprintln(w, "                knee sits where queueing delay takes over the p99")
}

// kneeCell renders one design's SLO knee as its offered load, or "-"
// when no point on the axis met the objective.
func kneeCell(sc Scale, gap clock.Picos) string {
	if gap == 0 {
		return "-"
	}
	return gb(loadDriverConfig(sc, gap).OfferedLoad()) + " GB/s"
}

// percentiles999 renders a latency histogram's tail as "p50/p99/p99.9"
// in whole nanoseconds (bucket upper bounds: each figure is a <= bound).
func percentiles999(h *trace.LatencyHist) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.P50().Nanoseconds(), h.P99().Nanoseconds(), h.P999().Nanoseconds())
}
