// Pure experiment axes: the scale-dependent sizes, workload definitions
// and arrival processes that plans enumerate over. Everything here is a
// pure function of the Scale — no simulation, no internal/system.

package harness

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// bothDirections is the transfer-direction axis shared by several sweeps.
var bothDirections = []core.Direction{core.DRAMToPIM, core.PIMToDRAM}

// fig4Size is the fig4 transfer size.
func fig4Size(sc Scale) uint64 {
	if sc == Full {
		return 256 << 20
	}
	return 16 << 20
}

// fig6Size is the fig6 transfer size.
func fig6Size(sc Scale) uint64 {
	if sc == Full {
		return 64 << 20
	}
	return 16 << 20
}

// fig8Lines is the fig8 per-thread line count.
func fig8Lines(sc Scale) uint64 {
	if sc == Full {
		return 1 << 17
	}
	return 1 << 15
}

// fig8Patterns is the fig8 access-pattern axis.
var fig8Patterns = []struct {
	name   string
	stride int
}{{"sequential", 1}, {"strided (x4)", 4}}

// fig13Size is the contended transfer size of both fig13 sweeps.
func fig13Size(sc Scale) uint64 {
	if sc == Full {
		return 32 << 20
	}
	return 4 << 20
}

// fig13aCounts is the compute-contender axis.
var fig13aCounts = []int{0, 8, 16, 24}

// fig14Size is the fig14 memcpy size.
func fig14Size(sc Scale) uint64 {
	if sc == Full {
		return 64 << 20
	}
	return 8 << 20
}

// fig14Configs is the fig14 memory-geometry axis ("xC-yR": x channels,
// y total ranks).
var fig14Configs = []struct {
	name   string
	ch, ra int
}{
	{"2C-4R", 2, 2},
	{"4C-8R", 4, 2},
	{"4C-16R", 4, 4},
}

// fig15Sizes is the ablation size axis.
func fig15Sizes(sc Scale) []uint64 {
	if sc == Full {
		return []uint64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
	}
	return []uint64{1 << 20, 4 << 20, 16 << 20}
}

// fig16Scale is the PrIM suite's size multiplier.
func fig16Scale(sc Scale) float64 {
	if sc == Full {
		return 1.0
	}
	return 1.0 / 64
}

// headlineSizes is the headline experiment's transfer-size axis.
func headlineSizes(sc Scale) []uint64 {
	sizes := []uint64{1 << 20, 4 << 20, 16 << 20}
	if sc == Full {
		sizes = append(sizes, 64<<20, 256<<20)
	}
	return sizes
}

// replayWorkload names one synthetic trace workload of the replay
// experiment.
type replayWorkload struct {
	name    string
	pattern trace.Pattern
	// pim targets the PIM region (non-cacheable) instead of DRAM.
	pim bool
	// tweak adjusts the scaled default generator config.
	tweak func(*trace.GenConfig)
}

// replayWorkloads is the workload axis of the replay experiment: the
// five synthetic application patterns over the DRAM region plus a
// random-write stream into the PIM region.
func replayWorkloads() []replayWorkload {
	return []replayWorkload{
		{name: "stream", pattern: trace.PatternStream},
		{name: "strided x4", pattern: trace.PatternStrided},
		{name: "ptr-chase", pattern: trace.PatternChase},
		{name: "mixed 70r/30w", pattern: trace.PatternMixed},
		{name: "zipf hot-set", pattern: trace.PatternZipf},
		{name: "pim wr-rand", pattern: trace.PatternMixed, pim: true,
			tweak: func(c *trace.GenConfig) { c.WritePercent = 100 }},
	}
}

// replayGenConfig sizes one workload's generator for the scale.
func replayGenConfig(sc Scale) trace.GenConfig {
	cfg := trace.DefaultGenConfig()
	cfg.FootprintLines = 1 << 18 // 16 MiB: past the LLC, so DRAM decides
	if sc == Full {
		cfg.Records = 1 << 17
		cfg.FootprintLines = 1 << 20
	}
	return cfg
}

// replayWorkloadGenConfig is one workload's fully tweaked generator
// config (its Base address is assigned inside the compute job; see
// replayPlan).
func replayWorkloadGenConfig(sc Scale, wl replayWorkload) trace.GenConfig {
	cfg := replayGenConfig(sc)
	if wl.tweak != nil {
		wl.tweak(&cfg)
	}
	return cfg
}

// loadGaps is the offered-load axis of the loadcurve experiment as mean
// inter-arrival gaps: one 64 B line per gap, so offered load spans 2 to
// 64 GB/s. Full mode adds intermediate points to sharpen the knee.
func loadGaps(sc Scale) []clock.Picos {
	if sc == Full {
		return []clock.Picos{
			32 * clock.Nanosecond, 24 * clock.Nanosecond, 16 * clock.Nanosecond,
			12 * clock.Nanosecond, 8 * clock.Nanosecond, 6 * clock.Nanosecond,
			4 * clock.Nanosecond, 3 * clock.Nanosecond, 2 * clock.Nanosecond,
			1500, 1 * clock.Nanosecond, 750,
		}
	}
	return []clock.Picos{
		32 * clock.Nanosecond, 16 * clock.Nanosecond, 8 * clock.Nanosecond,
		4 * clock.Nanosecond, 2 * clock.Nanosecond, 1 * clock.Nanosecond,
	}
}

// loadSLO is the latency objective the knee is read against: the
// highest offered load whose p99 end-to-end (arrival-to-completion)
// latency stays within the objective.
const loadSLO = 2 * clock.Microsecond

// loadDriverConfig sizes one load point: Poisson arrivals at the given
// mean gap, with the duration scaled so every point sees the same
// arrival count — equal sample sizes keep p99.9 equally resolved across
// the axis.
func loadDriverConfig(sc Scale, gap clock.Picos) trace.DriverConfig {
	cfg := trace.DefaultDriverConfig()
	cfg.MeanGap = gap
	arrivals := clock.Picos(8192)
	if sc == Full {
		arrivals = 65536
	}
	cfg.Duration = gap * arrivals
	return cfg
}

// windowBuckets renders the head of a series as percentage shares.
func windowBuckets(series []*stats.Series, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(series))
		var total float64
		for c, s := range series {
			row[c] = s.Bucket(i)
			total += s.Bucket(i)
		}
		if total > 0 {
			for c := range row {
				row[c] = 100 * row[c] / total
			}
		}
		rows[i] = row
	}
	return rows
}
