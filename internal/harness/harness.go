// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a function that runs the
// required simulations and returns a structured result with a printable
// rendering; cmd/pimmu-bench exposes them as subcommands and the
// top-level benchmark suite runs them under testing.B.
//
// Quick mode shrinks transfer sizes so the full suite completes in
// minutes on a laptop; the shapes (who wins, by what factor) are the
// same, only tails and asymptotes move slightly.
package harness

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/system"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks sizes for fast iteration (default).
	Quick Scale = iota
	// Full uses the paper's sizes (1 MB - 256 MB sweeps, full PrIM).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// shardOverride is the process-wide event-engine shard count applied to
// every machine the experiments build; <= 1 selects the serial engine.
var shardOverride atomic.Int64

// coreLaneOverride is the process-wide per-core lane count (see
// system.Config.CoreLanes).
var coreLaneOverride atomic.Int64

// SetShards selects the event-engine shard count for subsequent
// experiment runs (the CLIs' -shards flag). system.Auto passes through
// to each machine's Normalize, which sizes the worker pool to the host.
// Experiment output is byte-identical across all shard counts >= 1,
// auto included; only wall-clock time changes. The serial engine (0,
// the default) can order same-instant event ties differently than the
// sharded canonical order on some CPU-streaming workloads — see
// system.Config.Shards — so 1 is the serial reference when comparing
// against sharded runs.
func SetShards(n int) { shardOverride.Store(int64(n)) }

// Shards reports the shard count experiments currently use.
func Shards() int { return int(shardOverride.Load()) }

// SetCoreLanes selects the per-core lane count for subsequent experiment
// runs (the CLIs' -core-lanes flag; requires -shards >= 1 or auto).
// system.Auto resolves to one lane per configured CPU core. Output is
// byte-identical across every core-lane count, auto included.
func SetCoreLanes(n int) { coreLaneOverride.Store(int64(n)) }

// CoreLanes reports the core-lane count experiments currently use.
func CoreLanes() int { return int(coreLaneOverride.Load()) }

// cache, when non-nil, fronts every experiment sweep with the
// content-addressed result store (see SetCache).
var (
	cacheMu sync.Mutex
	cache   sweep.Cache
)

// SetCache installs (or, with nil, removes) the result cache consulted
// by every sweep-backed experiment (the CLIs' -cache-dir / -cache
// flags). Each sweep job's key binds the machine's Config.Fingerprint,
// an op string carrying the experiment's non-config inputs (direction,
// size, workload identity, scale-dependent parameters), and the
// resultcache code-version stamp — so a hit is byte-identical to the
// computation it replaces and rendered tables are the same bytes warm or
// cold. Side-effect diagnostics that run inside jobs (the -lane-stats
// counters) are skipped on hits: they describe a simulation, and a hit
// does not simulate.
func SetCache(c sweep.Cache) {
	cacheMu.Lock()
	cache = c
	cacheMu.Unlock()
}

// activeCache reports the installed result cache.
func activeCache() sweep.Cache {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cache
}

// jobKey derives one sweep job's content-addressed cache key.
func jobKey(cfg system.Config, op string) string {
	return resultcache.KeyOf("harness/v1", resultcache.CodeVersion(), cfg.Fingerprint(), op)
}

// cachedMap is sweep.MapCached over the installed experiment cache; with
// no cache installed it is exactly sweep.Map.
func cachedMap[R any](n int, key func(i int) string, job func(i int) R) []R {
	return sweep.MapCached(activeCache(), n, key, job)
}

// laneStats, when non-nil, receives a per-machine ShardStats block after
// each transfer or replay an experiment runs (the CLIs' -lane-stats
// flag). Blocks print whole under a lock, but machines running in
// parallel sweeps interleave blocks in completion order: the output is a
// diagnostic, deliberately kept out of the deterministic experiment
// artifact.
var (
	laneStatsMu sync.Mutex
	laneStats   io.Writer
)

// SetLaneStats installs (or, with nil, removes) the lane-stats
// diagnostic writer.
func SetLaneStats(w io.Writer) {
	laneStatsMu.Lock()
	laneStats = w
	laneStatsMu.Unlock()
}

// reportLaneStats prints one machine's per-lane counters to the
// diagnostic writer, then resets them: experiments reuse machines
// across transfers (and Run calls generally), so without the reset each
// block would re-report every earlier run's events. Resetting only
// happens when a block was actually written — the counters are a
// diagnostic, and clearing them must not depend on whether anyone
// looks.
func reportLaneStats(tag string, s *system.System) {
	laneStatsMu.Lock()
	defer laneStatsMu.Unlock()
	if laneStats == nil {
		return
	}
	st := s.Eng.ShardStats()
	if st.Lanes == nil {
		return // plain engine: nothing to attribute
	}
	fmt.Fprintf(laneStats, "-- lanes: %s --\n%s", tag, st)
	s.Eng.ResetStats()
}

// newConfig is the Table I configuration at the given design point with
// the experiment-wide shard and core-lane selections applied.
func newConfig(d system.Design) system.Config {
	cfg := system.DefaultConfig(d)
	cfg.Shards = Shards()
	cfg.CoreLanes = CoreLanes()
	return cfg
}

// newSystem builds a fresh Table I machine at the given design point.
func newSystem(d system.Design) *system.System {
	return system.MustNew(newConfig(d))
}

// runTransfer executes one whole-device transfer of totalBytes.
func runTransfer(s *system.System, dir core.Direction, totalBytes uint64) system.XferResult {
	per := perCore(s, totalBytes)
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	reportLaneStats(fmt.Sprintf("%v %v %d MiB", s.Cfg.Design, dir, totalBytes>>20), s)
	return res
}

// perCore converts a total size into the per-core size, floored to one
// line.
func perCore(s *system.System, totalBytes uint64) uint64 {
	per := totalBytes / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	return per
}

// gb formats bytes/sec.
func gb(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// ratio formats a multiplier.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Experiment names every reproducible artifact.
type Experiment struct {
	Name  string
	Brief string
	Run   func(w io.Writer, sc Scale)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "system configuration (Table I)", Table1},
		{"fig4", "CPU utilization & power during transfers (Fig. 4)", Fig4},
		{"fig6", "per-channel write-throughput breakdown (Fig. 6)", Fig6},
		{"fig8", "DRAM bandwidth: locality vs MLP mapping (Fig. 8)", Fig8},
		{"fig13a", "compute-contender sensitivity (Fig. 13a)", Fig13a},
		{"fig13b", "memory-contender sensitivity (Fig. 13b)", Fig13b},
		{"fig14", "DRAM->DRAM memcpy throughput (Fig. 14)", Fig14},
		{"fig15a", "ablation: transfer throughput (Fig. 15a)", Fig15a},
		{"fig15b", "ablation: energy (Fig. 15b)", Fig15b},
		{"fig16", "PrIM end-to-end breakdown (Fig. 16)", Fig16},
		{"area", "implementation overhead (Section VI-C)", Area},
		{"headline", "headline speedups (abstract numbers)", Headline},
		{"replay", "trace-driven workload replay (bandwidth/latency)", Replay},
		{"loadcurve", "open-loop latency vs offered load (SLO knee)", LoadCurve},
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 prints the simulated system configuration.
func Table1(w io.Writer, _ Scale) {
	cfg := system.DefaultConfig(system.PIMMMU)
	t := stats.NewTable("component", "configuration")
	cp := cfg.CPU
	t.Rowf("CPU\t%d cores, %.1f GHz, %d load buffers, %d store buffers",
		cp.Cores, float64(cp.Clock)/1e9, cp.LoadBuffers, cp.StoreBuffers)
	t.Rowf("OS scheduler\tround robin, %v quantum", cp.Quantum)
	t.Rowf("LLC\t%d MB shared, %d-way, 64 B lines",
		cfg.Mem.LLC.SizeBytes>>20, cfg.Mem.LLC.Ways)
	dg := cfg.Mem.DRAM.Geometry
	t.Rowf("Memory controller\t%d-entry read & write queues, FR-FCFS, write drain %d/%d",
		cfg.Mem.DRAM.QueueDepth, cfg.Mem.DRAM.WriteDrainHi, cfg.Mem.DRAM.WriteDrainLo)
	t.Rowf("DRAM system\tDDR4-2400, %d channels, %d ranks/channel (%.1f GiB)",
		dg.Channels, dg.Ranks, float64(dg.TotalBytes())/(1<<30))
	pg := cfg.Mem.PIM.Geometry
	t.Rowf("PIM system\tDDR4-2400, %d channels, %d ranks/channel, %d PIM cores (%d MiB MRAM each)",
		pg.Channels, pg.Ranks, cfg.PIM.NumCores(), cfg.PIM.MRAMBytes()>>20)
	t.Rowf("DCE\t%.1f GHz, %d KB data buffer, %d KB address buffer",
		float64(cfg.DCE.Clock)/1e9, cfg.DCE.DataBufBytes>>10, cfg.DCE.AddrBufBytes>>10)
	t.Rowf("PIM-MS\tAlgorithm 1 (channel-parallel, bank-group interleaved)")
	t.Rowf("HetMap\tDRAM: MLP-centric + XOR hash; PIM: ChRaBgBkRoCo")
	fmt.Fprint(w, t)
}

// Headline runs the abstract's summary numbers: average/max transfer
// speedup and energy-efficiency gain of PIM-MMU over Base. Every
// (direction x size x design) machine is independent, so the whole matrix
// fans out through one sweep.
func Headline(w io.Writer, sc Scale) {
	sizes := []uint64{1 << 20, 4 << 20, 16 << 20}
	if sc == Full {
		sizes = append(sizes, 64<<20, 256<<20)
	}
	dirs := bothDirections
	designs := baseVsMMU
	type point struct{ Thr, Eff float64 }
	g := sweep.NewGrid(len(dirs), len(sizes), len(designs))
	res := cachedMap(g.Size(), func(i int) string {
		return jobKey(newConfig(designs[g.Coord(i, 2)]),
			fmt.Sprintf("headline dir=%v bytes=%d", dirs[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}, func(i int) point {
		s := newSystem(designs[g.Coord(i, 2)])
		a0 := s.Activity()
		r := runTransfer(s, dirs[g.Coord(i, 0)], sizes[g.Coord(i, 1)])
		e := s.EnergyOver(a0, s.Activity())
		return point{Thr: r.Throughput(), Eff: float64(r.Bytes) / e.Total()}
	})
	var speedups, effs []float64
	for di := range dirs {
		for si := range sizes {
			b := res[g.Index(di, si, 0)]
			m := res[g.Index(di, si, 1)]
			speedups = append(speedups, m.Thr/b.Thr)
			effs = append(effs, m.Eff/b.Eff)
		}
	}
	t := stats.NewTable("metric", "paper", "measured (avg)", "measured (max)")
	t.Rowf("transfer throughput gain\t4.1x (max 6.9x)\t%s\t%s",
		ratio(stats.Mean(speedups)), ratio(stats.Max(speedups)))
	t.Rowf("energy-efficiency gain\t4.1x (max 6.9x)\t%s\t%s",
		ratio(stats.Mean(effs)), ratio(stats.Max(effs)))
	fmt.Fprint(w, t)
}

// Area prints the Section VI-C implementation-overhead analysis.
func Area(w io.Writer, _ Scale) {
	cfg := core.DefaultConfig()
	t := stats.NewTable("quantity", "paper", "model")
	dataKB := cfg.DataBufBytes >> 10
	addrKB := cfg.AddrBufBytes >> 10
	t.Rowf("DCE SRAM\t16 KB + 64 KB\t%d KB + %d KB", dataKB, addrKB)
	t.Rowf("area (32 nm)\t0.85 mm^2\t%.2f mm^2", areaMM2(cfg))
	t.Rowf("CPU die overhead\t0.37%%\t%.2f%%", 100*dieFrac(cfg))
	fmt.Fprint(w, t)
}

// windowBuckets renders the head of a series as percentage shares.
func windowBuckets(series []*stats.Series, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(series))
		var total float64
		for c, s := range series {
			row[c] = s.Bucket(i)
			total += s.Bucket(i)
		}
		if total > 0 {
			for c := range row {
				row[c] = 100 * row[c] / total
			}
		}
		rows[i] = row
	}
	return rows
}
