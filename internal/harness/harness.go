// Package harness regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is split into three explicit
// phases behind one declarative type:
//
//   - Plan enumerates the experiment's jobs — (config, op, cache key)
//     triples — without simulating anything;
//   - Compute executes the plan through the sweep layer and the result
//     cache, returning pure gob-able results (the only phase that
//     touches internal/system);
//   - Render writes the deterministic text artifact from results alone.
//
// Execution state (lane topology, worker count, result cache,
// lane-stats writer) lives in a Runner threaded explicitly through all
// three phases; cmd/pimmu-sim, cmd/pimmu-bench and cmd/pimmu-replay
// construct one per invocation. The split makes an experiment
// addressable data: "serve experiment X at design point Y" is a plan
// lookup plus a compute, not a rewrite.
//
// Quick mode shrinks transfer sizes so the full suite completes in
// minutes on a laptop; the shapes (who wins, by what factor) are the
// same, only tails and asymptotes move slightly.
package harness

import (
	"fmt"
	"io"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks sizes for fast iteration (default).
	Quick Scale = iota
	// Full uses the paper's sizes (1 MB - 256 MB sweeps, full PrIM).
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Experiment names one reproducible artifact and carries its three
// phases. Compute's result is the value Render consumes; the typed pair
// is wired through the exp constructor, so a registry entry cannot mix
// a compute with a renderer of another experiment's result type.
type Experiment struct {
	Name  string
	Brief string
	// Plan enumerates the experiment's jobs without simulating. Static
	// experiments (table1, area) plan zero jobs.
	Plan func(r *Runner, sc Scale) Plan
	// Compute executes the plan's simulations and returns the pure,
	// gob-able results the renderer consumes.
	Compute func(r *Runner, sc Scale) any
	// Render writes the deterministic text artifact from results alone.
	Render func(w io.Writer, sc Scale, results any)
}

// exp wires one experiment's typed compute/render pair into the
// registry entry.
func exp[R any](name, brief string,
	plan func(*Runner, Scale) Plan,
	compute func(*Runner, Scale) R,
	render func(io.Writer, Scale, R)) Experiment {
	return Experiment{
		Name:    name,
		Brief:   brief,
		Plan:    plan,
		Compute: func(r *Runner, sc Scale) any { return compute(r, sc) },
		Render:  func(w io.Writer, sc Scale, results any) { render(w, sc, results.(R)) },
	}
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		exp("table1", "system configuration (Table I)", table1Plan, table1Compute, table1Render),
		exp("fig4", "CPU utilization & power during transfers (Fig. 4)", fig4Plan, fig4Compute, fig4Render),
		exp("fig6", "per-channel write-throughput breakdown (Fig. 6)", fig6Plan, fig6Compute, fig6Render),
		exp("fig8", "DRAM bandwidth: locality vs MLP mapping (Fig. 8)", fig8Plan, fig8Compute, fig8Render),
		exp("fig13a", "compute-contender sensitivity (Fig. 13a)", fig13aPlan, fig13aCompute, fig13aRender),
		exp("fig13b", "memory-contender sensitivity (Fig. 13b)", fig13bPlan, fig13bCompute, fig13bRender),
		exp("fig14", "DRAM->DRAM memcpy throughput (Fig. 14)", fig14Plan, fig14Compute, fig14Render),
		exp("fig15a", "ablation: transfer throughput (Fig. 15a)", fig15aPlan, fig15aCompute, fig15aRender),
		exp("fig15b", "ablation: energy (Fig. 15b)", fig15bPlan, fig15bCompute, fig15bRender),
		exp("fig16", "PrIM end-to-end breakdown (Fig. 16)", fig16Plan, fig16Compute, fig16Render),
		exp("area", "implementation overhead (Section VI-C)", areaPlan, areaCompute, areaRender),
		exp("headline", "headline speedups (abstract numbers)", headlinePlan, headlineCompute, headlineRender),
		exp("replay", "trace-driven workload replay (bandwidth/latency)", replayPlan, replayCompute, replayRender),
		exp("loadcurve", "open-loop latency vs offered load (SLO knee)", loadCurvePlan, loadCurveCompute, loadCurveRender),
	}
}

// ByName finds an experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Lookup is ByName with near-miss reporting: an unknown name's error
// suggests the closest experiment when one is plausibly close.
func Lookup(name string) (Experiment, error) {
	if e, ok := ByName(name); ok {
		return e, nil
	}
	if s := suggest(name); s != "" {
		return Experiment{}, fmt.Errorf("unknown experiment %q (did you mean %q?)", name, s)
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q (try 'list')", name)
}

// suggest names the experiment closest to name within edit distance 2,
// or "" when nothing is near enough to be a plausible typo.
func suggest(name string) string {
	best, bestDist := "", 3
	for _, e := range All() {
		if d := editDistance(name, e.Name); d < bestDist {
			best, bestDist = e.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gb formats bytes/sec.
func gb(v float64) string { return fmt.Sprintf("%.2f", v/1e9) }

// ratio formats a multiplier.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
