package harness

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/system"
	"repro/internal/xfer"
)

func areaMM2(cfg core.Config) float64 {
	return energy.PIMMMUAreaMM2(cfg.DataBufBytes, cfg.AddrBufBytes)
}

func dieFrac(cfg core.Config) float64 {
	return energy.DieOverheadFraction(cfg.DataBufBytes, cfg.AddrBufBytes)
}

// Fig4 reproduces the active-core-fraction and system-power time series
// during baseline DRAM<->PIM transfers.
func Fig4(w io.Writer, sc Scale) {
	size := uint64(16 << 20)
	if sc == Full {
		size = 256 << 20
	}
	for _, dir := range []core.Direction{core.DRAMToPIM, core.PIMToDRAM} {
		s := newSystem(system.Base)
		trace, stop := s.SamplePower(50 * clock.Microsecond)
		res := runTransfer(s, dir, size)
		stop()
		fmt.Fprintf(w, "-- %v transfer of %d MiB (baseline) --\n", dir, size>>20)
		t := stats.NewTable("t (us)", "active cores (%)", "system power (W)")
		n := trace.Watts.Len()
		step := n/12 + 1
		for i := 0; i < n; i += step {
			t.Rowf("%d\t%.0f\t%.1f",
				i*50, 100*trace.ActiveFrac.Bucket(i), trace.Watts.Bucket(i))
		}
		fmt.Fprint(w, t)
		fmt.Fprintf(w, "transfer: %s GB/s; paper shape: ~100%% cores busy, ~70 W during transfer\n\n",
			gb(res.Throughput()))
	}
}

// Fig6 reproduces the per-channel write-throughput breakdown: (a) the
// baseline's coarse-grained software DRAM->PIM copy herds one channel at
// a time; (b) a hardware-paced fine-grained copy (the DCE under HetMap)
// spreads evenly.
func Fig6(w io.Writer, sc Scale) {
	size := uint64(16 << 20)
	if sc == Full {
		size = 64 << 20
	}
	run := func(d system.Design, label string) {
		cfg := system.DefaultConfig(d)
		cfg.Mem.PIM.SeriesWindow = 100 * clock.Microsecond
		s := system.MustNew(cfg)
		runTransfer(s, core.DRAMToPIM, size)
		var series []*stats.Series
		for _, c := range s.Mem.PIM.Stats().Channels {
			series = append(series, c.WriteSeries)
		}
		fmt.Fprintf(w, "-- (%s) per-PIM-channel share of write throughput over time --\n", label)
		t := stats.NewTable("t (x100us)", "ch0 %", "ch1 %", "ch2 %", "ch3 %")
		maxLen := 0
		for _, sr := range series {
			if sr.Len() > maxLen {
				maxLen = sr.Len()
			}
		}
		rows := windowBuckets(series, maxLen)
		step := len(rows)/12 + 1
		for i := 0; i < len(rows); i += step {
			t.Rowf("%d\t%.0f\t%.0f\t%.0f\t%.0f", i,
				rows[i][0], rows[i][1], rows[i][2], rows[i][3])
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	run(system.Base, "a: software coarse-grained DRAM->PIM — one channel at a time")
	run(system.PIMMMU, "b: hardware fine-grained — even across channels")
}

// Fig8 reproduces the locality-centric vs MLP-centric DRAM bandwidth
// comparison over sequential and strided read patterns.
func Fig8(w io.Writer, sc Scale) {
	lines := uint64(1 << 15) // per thread
	if sc == Full {
		lines = 1 << 17
	}
	run := func(d system.Design, stride int) float64 {
		s := newSystem(d)
		cfg := xfer.DefaultStreamConfig()
		cfg.StrideLines = stride
		base := s.Alloc(lines * uint64(stride) * uint64(cfg.Threads) * 64)
		var res xfer.Result
		done := false
		xfer.RunStream(s.CPU, base, lines, cfg, func(r xfer.Result) { res = r; done = true })
		s.Eng.RunWhile(func() bool { return !done })
		return res.Throughput()
	}
	t := stats.NewTable("pattern", "locality (GB/s)", "MLP (GB/s)", "locality/MLP")
	for _, p := range []struct {
		name   string
		stride int
	}{{"sequential", 1}, {"strided (x4)", 4}} {
		loc := run(system.Base, p.stride)   // locality-centric mapping
		mlp := run(system.PIMMMU, p.stride) // HetMap: DRAM side is MLP-centric
		t.Rowf("%s\t%s\t%s\t%.2f", p.name, gb(loc), gb(mlp), loc/mlp)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: locality-centric reaches ~0.30 of MLP-centric for both patterns")
}

// Fig13a reproduces the compute-contender sensitivity sweep.
func Fig13a(w io.Writer, sc Scale) {
	size := uint64(4 << 20)
	if sc == Full {
		size = 32 << 20
	}
	counts := []int{0, 8, 16, 24}
	t := stats.NewTable("spin contenders", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	var baseIdle, mmuIdle float64
	for _, n := range counts {
		b := contendedLatency(system.Base, size, n, -1)
		m := contendedLatency(system.PIMMMU, size, n, -1)
		if n == 0 {
			baseIdle, mmuIdle = b, m
		}
		t.Rowf("%d\t%.2f\t%.2f", n, b/baseIdle, m/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: baseline degrades sharply with contenders; PIM-MMU flat")
}

// Fig13b reproduces the memory-contender intensity sweep.
func Fig13b(w io.Writer, sc Scale) {
	size := uint64(4 << 20)
	if sc == Full {
		size = 32 << 20
	}
	baseIdle := contendedLatency(system.Base, size, 0, -1)
	mmuIdle := contendedLatency(system.PIMMMU, size, 0, -1)
	t := stats.NewTable("intensity", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	for _, level := range contend.Levels() {
		b := contendedLatency(system.Base, size, 4, int(level))
		m := contendedLatency(system.PIMMMU, size, 4, int(level))
		t.Rowf("%v\t%.2f\t%.2f", level, b/baseIdle, m/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: both degrade with memory pressure; PIM-MMU consistently lower")
}

// contendedLatency measures one DRAM->PIM transfer's latency with n
// contenders (level < 0 selects compute-bound spinners, otherwise the
// memory intensity).
func contendedLatency(d system.Design, size uint64, n, level int) float64 {
	s := newSystem(d)
	var st *contend.Stopper
	if n > 0 {
		if level < 0 {
			base := s.Alloc(uint64(n) * (16 << 10))
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.Spin(st, base+uint64(i)*(16<<10))
			})
		} else {
			const footprint = 64 << 20
			base := s.Alloc(uint64(n) * footprint)
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.MemoryHog(st, base+uint64(i)*footprint, footprint, contend.Intensity(level))
			})
		}
	}
	res := runTransfer(s, core.DRAMToPIM, size)
	if st != nil {
		st.Stop()
	}
	return res.Duration.Seconds()
}

// Fig14 reproduces the DRAM->DRAM memcpy throughput across memory-system
// configurations ("xC-yR": x channels, y total ranks).
func Fig14(w io.Writer, sc Scale) {
	size := uint64(8 << 20)
	if sc == Full {
		size = 64 << 20
	}
	configs := []struct {
		name   string
		ch, ra int
	}{
		{"2C-4R", 2, 2},
		{"4C-8R", 4, 2},
		{"4C-16R", 4, 4},
	}
	t := stats.NewTable("config", "Baseline (GB/s)", "PIM-MMU (GB/s)", "gain")
	for _, c := range configs {
		run := func(d system.Design) float64 {
			cfg := system.DefaultConfig(d)
			cfg.Mem.DRAM.Geometry.Channels = c.ch
			cfg.Mem.DRAM.Geometry.Ranks = c.ra
			cfg.Mem.PIM.Geometry.Channels = c.ch
			cfg.Mem.PIM.Geometry.Ranks = c.ra
			cfg.PIM.DRAM.Channels = c.ch
			cfg.PIM.DRAM.Ranks = c.ra
			s := system.MustNew(cfg)
			return s.RunMemcpy(size).Throughput()
		}
		base := run(system.Base)
		mmu := run(system.PIMMMU)
		t.Rowf("%s\t%s\t%s\t%s", c.name, gb(base), gb(mmu), ratio(mmu/base))
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: 4.9x avg (max 6.0x); gains scale with channels, not ranks")
}

// Fig15a reproduces the ablation's transfer-throughput sweep.
func Fig15a(w io.Writer, sc Scale) {
	sizes := fig15Sizes(sc)
	for _, dir := range []core.Direction{core.DRAMToPIM, core.PIMToDRAM} {
		fmt.Fprintf(w, "-- %v: throughput normalized to Base --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P")
		for _, size := range sizes {
			var vals []float64
			for _, d := range system.Designs() {
				s := newSystem(d)
				vals = append(vals, runTransfer(s, dir, size).Throughput())
			}
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f", size>>20,
				vals[1]/vals[0], vals[2]/vals[0], vals[3]/vals[0])
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D often below 1.0 (vanilla DMA loses to AVX software);")
	fmt.Fprintln(w, "             full PIM-MMU ~4x (max 6.9x)")
}

// Fig15b reproduces the ablation's energy sweep.
func Fig15b(w io.Writer, sc Scale) {
	sizes := fig15Sizes(sc)
	for _, dir := range []core.Direction{core.DRAMToPIM, core.PIMToDRAM} {
		fmt.Fprintf(w, "-- %v: energy normalized to Base (lower is better) --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P", "PIM-MMU static share")
		for _, size := range sizes {
			var totals []float64
			var lastStatic float64
			for _, d := range system.Designs() {
				s := newSystem(d)
				before := s.Activity()
				runTransfer(s, dir, size)
				b := s.EnergyOver(before, s.Activity())
				totals = append(totals, b.Total())
				lastStatic = b.Static() / b.Total()
			}
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f\t%.0f%%", size>>20,
				totals[1]/totals[0], totals[2]/totals[0], totals[3]/totals[0], 100*lastStatic)
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D and Base+D+H cost MORE energy than Base (longer")
	fmt.Fprintln(w, "             transfers, static power dominates); PIM-MMU 3.3x/4.9x better")
}

func fig15Sizes(sc Scale) []uint64 {
	if sc == Full {
		return []uint64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
	}
	return []uint64{1 << 20, 4 << 20, 16 << 20}
}
