package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/system"
	"repro/internal/xfer"
)

func areaMM2(cfg core.Config) float64 {
	return energy.PIMMMUAreaMM2(cfg.DataBufBytes, cfg.AddrBufBytes)
}

func dieFrac(cfg core.Config) float64 {
	return energy.DieOverheadFraction(cfg.DataBufBytes, cfg.AddrBufBytes)
}

// bothDirections is the transfer-direction axis shared by several sweeps.
var bothDirections = []core.Direction{core.DRAMToPIM, core.PIMToDRAM}

// baseVsMMU is the baseline-vs-full-proposal design axis shared by the
// two-point comparisons.
var baseVsMMU = []system.Design{system.Base, system.PIMMMU}

// Fig4 reproduces the active-core-fraction and system-power time series
// during baseline DRAM<->PIM transfers. The two directions are
// independent machines, so they sweep in parallel; each job renders its
// own section and the sections print in paper order.
func Fig4(w io.Writer, sc Scale) {
	size := uint64(16 << 20)
	if sc == Full {
		size = 256 << 20
	}
	sections := cachedMap(len(bothDirections), func(i int) string {
		return jobKey(newConfig(system.Base),
			fmt.Sprintf("fig4 dir=%v bytes=%d window=50us", bothDirections[i], size))
	}, func(i int) string {
		dir := bothDirections[i]
		s := newSystem(system.Base)
		trace, stop := s.SamplePower(50 * clock.Microsecond)
		res := runTransfer(s, dir, size)
		stop()
		var b strings.Builder
		fmt.Fprintf(&b, "-- %v transfer of %d MiB (baseline) --\n", dir, size>>20)
		t := stats.NewTable("t (us)", "active cores (%)", "system power (W)")
		n := trace.Watts.Len()
		step := n/12 + 1
		for i := 0; i < n; i += step {
			t.Rowf("%d\t%.0f\t%.1f",
				i*50, 100*trace.ActiveFrac.Bucket(i), trace.Watts.Bucket(i))
		}
		fmt.Fprint(&b, t)
		fmt.Fprintf(&b, "transfer: %s GB/s; paper shape: ~100%% cores busy, ~70 W during transfer\n\n",
			gb(res.Throughput()))
		return b.String()
	})
	for _, s := range sections {
		fmt.Fprint(w, s)
	}
}

// Fig6 reproduces the per-channel write-throughput breakdown: (a) the
// baseline's coarse-grained software DRAM->PIM copy herds one channel at
// a time; (b) a hardware-paced fine-grained copy (the DCE under HetMap)
// spreads evenly.
func Fig6(w io.Writer, sc Scale) {
	size := uint64(16 << 20)
	if sc == Full {
		size = 64 << 20
	}
	points := []struct {
		design system.Design
		label  string
	}{
		{system.Base, "a: software coarse-grained DRAM->PIM — one channel at a time"},
		{system.PIMMMU, "b: hardware fine-grained — even across channels"},
	}
	mkCfg := func(i int) system.Config {
		cfg := newConfig(points[i].design)
		cfg.Mem.PIM.SeriesWindow = 100 * clock.Microsecond
		return cfg
	}
	sections := cachedMap(len(points), func(i int) string {
		return jobKey(mkCfg(i), fmt.Sprintf("fig6 bytes=%d label=%q", size, points[i].label))
	}, func(i int) string {
		s := system.MustNew(mkCfg(i))
		runTransfer(s, core.DRAMToPIM, size)
		var series []*stats.Series
		for _, c := range s.Mem.PIM.Stats().Channels {
			series = append(series, c.WriteSeries)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "-- (%s) per-PIM-channel share of write throughput over time --\n", points[i].label)
		t := stats.NewTable("t (x100us)", "ch0 %", "ch1 %", "ch2 %", "ch3 %")
		// Size rows from MaxIndex, not Len: a channel served late in a
		// coarse-grained copy has no window-0 sample, so its buckets live
		// beyond the Len() prefix (Bucket still reaches them).
		maxLen := 0
		for _, sr := range series {
			if n := int(sr.MaxIndex()) + 1; n > maxLen {
				maxLen = n
			}
		}
		rows := windowBuckets(series, maxLen)
		step := len(rows)/12 + 1
		for i := 0; i < len(rows); i += step {
			t.Rowf("%d\t%.0f\t%.0f\t%.0f\t%.0f", i,
				rows[i][0], rows[i][1], rows[i][2], rows[i][3])
		}
		fmt.Fprint(&b, t)
		fmt.Fprintln(&b)
		return b.String()
	})
	for _, s := range sections {
		fmt.Fprint(w, s)
	}
}

// Fig8 reproduces the locality-centric vs MLP-centric DRAM bandwidth
// comparison over sequential and strided read patterns. The four
// (pattern x mapping) machines sweep in parallel.
func Fig8(w io.Writer, sc Scale) {
	lines := uint64(1 << 15) // per thread
	if sc == Full {
		lines = 1 << 17
	}
	patterns := []struct {
		name   string
		stride int
	}{{"sequential", 1}, {"strided (x4)", 4}}
	designs := baseVsMMU // locality vs HetMap/MLP
	g := sweep.NewGrid(len(patterns), len(designs))
	mkStream := func(i int) xfer.StreamConfig {
		cfg := xfer.DefaultStreamConfig()
		cfg.StrideLines = patterns[g.Coord(i, 0)].stride
		return cfg
	}
	thr := cachedMap(g.Size(), func(i int) string {
		return jobKey(newConfig(designs[g.Coord(i, 1)]),
			fmt.Sprintf("fig8 lines=%d stream=%s", lines, resultcache.Canonical(mkStream(i))))
	}, func(i int) float64 {
		s := newSystem(designs[g.Coord(i, 1)])
		cfg := mkStream(i)
		base := s.Alloc(lines * uint64(cfg.StrideLines) * uint64(cfg.Threads) * 64)
		var res xfer.Result
		done := false
		xfer.RunStream(s.CPU, base, lines, cfg, func(r xfer.Result) { res = r; done = true })
		s.Eng.RunWhile(func() bool { return !done })
		return res.Throughput()
	})
	t := stats.NewTable("pattern", "locality (GB/s)", "MLP (GB/s)", "locality/MLP")
	for pi, p := range patterns {
		loc := thr[g.Index(pi, 0)]
		mlp := thr[g.Index(pi, 1)]
		t.Rowf("%s\t%s\t%s\t%.2f", p.name, gb(loc), gb(mlp), loc/mlp)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: locality-centric reaches ~0.30 of MLP-centric for both patterns")
}

// Fig13a reproduces the compute-contender sensitivity sweep.
func Fig13a(w io.Writer, sc Scale) {
	size := uint64(4 << 20)
	if sc == Full {
		size = 32 << 20
	}
	counts := []int{0, 8, 16, 24}
	designs := baseVsMMU
	g := sweep.NewGrid(len(counts), len(designs))
	lat := cachedMap(g.Size(), func(i int) string {
		return contendedKey(designs[g.Coord(i, 1)], size, counts[g.Coord(i, 0)], -1)
	}, func(i int) float64 {
		return contendedLatency(designs[g.Coord(i, 1)], size, counts[g.Coord(i, 0)], -1)
	})
	t := stats.NewTable("spin contenders", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	baseIdle, mmuIdle := lat[g.Index(0, 0)], lat[g.Index(0, 1)]
	for ci, n := range counts {
		t.Rowf("%d\t%.2f\t%.2f", n, lat[g.Index(ci, 0)]/baseIdle, lat[g.Index(ci, 1)]/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: baseline degrades sharply with contenders; PIM-MMU flat")
}

// Fig13b reproduces the memory-contender intensity sweep. Row 0 is the
// uncontended reference; rows 1.. are the intensity levels.
func Fig13b(w io.Writer, sc Scale) {
	size := uint64(4 << 20)
	if sc == Full {
		size = 32 << 20
	}
	levels := contend.Levels()
	designs := baseVsMMU
	g := sweep.NewGrid(1+len(levels), len(designs))
	args := func(i int) (d system.Design, n, level int) {
		d = designs[g.Coord(i, 1)]
		if row := g.Coord(i, 0); row > 0 {
			return d, 4, int(levels[row-1])
		}
		return d, 0, -1
	}
	lat := cachedMap(g.Size(), func(i int) string {
		d, n, level := args(i)
		return contendedKey(d, size, n, level)
	}, func(i int) float64 {
		d, n, level := args(i)
		return contendedLatency(d, size, n, level)
	})
	baseIdle, mmuIdle := lat[g.Index(0, 0)], lat[g.Index(0, 1)]
	t := stats.NewTable("intensity", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	for li, level := range levels {
		t.Rowf("%v\t%.2f\t%.2f", level,
			lat[g.Index(li+1, 0)]/baseIdle, lat[g.Index(li+1, 1)]/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: both degrade with memory pressure; PIM-MMU consistently lower")
}

// contendedKey is the cache key of one contendedLatency measurement; the
// contender programs' footprints and loop shapes are code, covered by the
// key's code-version stamp.
func contendedKey(d system.Design, size uint64, n, level int) string {
	return jobKey(newConfig(d),
		fmt.Sprintf("fig13 xfer bytes=%d contenders=%d level=%d", size, n, level))
}

// contendedLatency measures one DRAM->PIM transfer's latency with n
// contenders (level < 0 selects compute-bound spinners, otherwise the
// memory intensity).
func contendedLatency(d system.Design, size uint64, n, level int) float64 {
	s := newSystem(d)
	var st *contend.Stopper
	if n > 0 {
		if level < 0 {
			base := s.Alloc(uint64(n) * (16 << 10))
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.Spin(st, base+uint64(i)*(16<<10))
			})
		} else {
			const footprint = 64 << 20
			base := s.Alloc(uint64(n) * footprint)
			st = s.Contenders(n, func(i int, st *contend.Stopper) cpu.Program {
				return contend.MemoryHog(st, base+uint64(i)*footprint, footprint, contend.Intensity(level))
			})
		}
	}
	res := runTransfer(s, core.DRAMToPIM, size)
	if st != nil {
		st.Stop()
	}
	return res.Duration.Seconds()
}

// Fig14 reproduces the DRAM->DRAM memcpy throughput across memory-system
// configurations ("xC-yR": x channels, y total ranks).
func Fig14(w io.Writer, sc Scale) {
	size := uint64(8 << 20)
	if sc == Full {
		size = 64 << 20
	}
	configs := []struct {
		name   string
		ch, ra int
	}{
		{"2C-4R", 2, 2},
		{"4C-8R", 4, 2},
		{"4C-16R", 4, 4},
	}
	designs := baseVsMMU
	g := sweep.NewGrid(len(configs), len(designs))
	mkCfg := func(i int) system.Config {
		c := configs[g.Coord(i, 0)]
		cfg := newConfig(designs[g.Coord(i, 1)])
		cfg.Mem.DRAM.Geometry.Channels = c.ch
		cfg.Mem.DRAM.Geometry.Ranks = c.ra
		cfg.Mem.PIM.Geometry.Channels = c.ch
		cfg.Mem.PIM.Geometry.Ranks = c.ra
		cfg.PIM.DRAM.Channels = c.ch
		cfg.PIM.DRAM.Ranks = c.ra
		return cfg
	}
	thr := cachedMap(g.Size(), func(i int) string {
		return jobKey(mkCfg(i), fmt.Sprintf("fig14 memcpy bytes=%d", size))
	}, func(i int) float64 {
		s := system.MustNew(mkCfg(i))
		return s.RunMemcpy(size).Throughput()
	})
	t := stats.NewTable("config", "Baseline (GB/s)", "PIM-MMU (GB/s)", "gain")
	for ci, c := range configs {
		base := thr[g.Index(ci, 0)]
		mmu := thr[g.Index(ci, 1)]
		t.Rowf("%s\t%s\t%s\t%s", c.name, gb(base), gb(mmu), ratio(mmu/base))
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: 4.9x avg (max 6.0x); gains scale with channels, not ranks")
}

// Fig15a reproduces the ablation's transfer-throughput sweep: every
// (direction x size x design) point is an independent machine, so the
// whole ablation fans out at once.
func Fig15a(w io.Writer, sc Scale) {
	sizes := fig15Sizes(sc)
	designs := system.Designs()
	g := sweep.NewGrid(len(bothDirections), len(sizes), len(designs))
	thr := cachedMap(g.Size(), func(i int) string {
		return jobKey(newConfig(designs[g.Coord(i, 2)]),
			fmt.Sprintf("fig15a xfer dir=%v bytes=%d", bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}, func(i int) float64 {
		s := newSystem(designs[g.Coord(i, 2)])
		return runTransfer(s, bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]).Throughput()
	})
	for di, dir := range bothDirections {
		fmt.Fprintf(w, "-- %v: throughput normalized to Base --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P")
		for si, size := range sizes {
			base := thr[g.Index(di, si, 0)]
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f", size>>20,
				thr[g.Index(di, si, 1)]/base,
				thr[g.Index(di, si, 2)]/base,
				thr[g.Index(di, si, 3)]/base)
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D often below 1.0 (vanilla DMA loses to AVX software);")
	fmt.Fprintln(w, "             full PIM-MMU ~4x (max 6.9x)")
}

// Fig15b reproduces the ablation's energy sweep.
func Fig15b(w io.Writer, sc Scale) {
	sizes := fig15Sizes(sc)
	designs := system.Designs()
	type point struct {
		Total      float64
		StaticFrac float64
	}
	g := sweep.NewGrid(len(bothDirections), len(sizes), len(designs))
	res := cachedMap(g.Size(), func(i int) string {
		return jobKey(newConfig(designs[g.Coord(i, 2)]),
			fmt.Sprintf("fig15b energy dir=%v bytes=%d", bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)]))
	}, func(i int) point {
		s := newSystem(designs[g.Coord(i, 2)])
		before := s.Activity()
		runTransfer(s, bothDirections[g.Coord(i, 0)], sizes[g.Coord(i, 1)])
		b := s.EnergyOver(before, s.Activity())
		return point{Total: b.Total(), StaticFrac: b.Static() / b.Total()}
	})
	for di, dir := range bothDirections {
		fmt.Fprintf(w, "-- %v: energy normalized to Base (lower is better) --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P", "PIM-MMU static share")
		for si, size := range sizes {
			base := res[g.Index(di, si, 0)].Total
			mmu := res[g.Index(di, si, 3)]
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f\t%.0f%%", size>>20,
				res[g.Index(di, si, 1)].Total/base,
				res[g.Index(di, si, 2)].Total/base,
				mmu.Total/base, 100*mmu.StaticFrac)
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D and Base+D+H cost MORE energy than Base (longer")
	fmt.Fprintln(w, "             transfers, static power dominates); PIM-MMU 3.3x/4.9x better")
}

func fig15Sizes(sc Scale) []uint64 {
	if sc == Full {
		return []uint64{1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20}
	}
	return []uint64{1 << 20, 4 << 20, 16 << 20}
}
