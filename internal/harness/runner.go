// Runner, Job and Plan: the execution side of the plan/compute/render
// split. This file and the compute_*.go files are the only harness
// files allowed to import internal/system (enforced by cmd/pimmu-lint):
// planning enumerates configs, computing simulates them, and rendering
// never sees a machine at all.

package harness

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/system"
)

// Runner carries every knob that used to live in package-global setters:
// the lane topology applied to each simulated machine, the sweep worker
// count, the result cache fronting compute, and the lane-stats
// diagnostic writer. The CLIs construct one Runner per invocation and
// thread it through all three experiment phases; tests build their own.
//
// Runner contains a mutex — always pass *Runner, never copy one.
type Runner struct {
	// Shards is the event-engine shard count applied to every machine
	// built (the CLIs' -shards flag); <= 1 selects the serial engine,
	// system.Auto sizes the pool to the host. Experiment output is
	// byte-identical across all shard counts >= 1, auto included.
	Shards int
	// CoreLanes is the per-core lane count (the -core-lanes flag;
	// requires Shards >= 1 or auto). Output is byte-identical across
	// every core-lane count, auto included.
	CoreLanes int
	// Workers caps the sweep worker pool for this runner's computes
	// (<= 0 selects the process-wide sweep default).
	Workers int
	// Cache, when non-nil, fronts every compute with the
	// content-addressed result store: a hit is byte-identical to the
	// computation it replaces, so rendered tables are the same bytes
	// warm or cold.
	Cache sweep.Cache
	// LaneStats, when non-nil, receives a per-machine ShardStats block
	// after each transfer or replay (the -lane-stats flag). Blocks print
	// whole under the runner's lock, but machines running in parallel
	// sweeps interleave blocks in completion order: the output is a
	// diagnostic, deliberately kept out of the deterministic artifact.
	// Cache hits skip the dump: they describe a simulation, and a hit
	// does not simulate.
	LaneStats io.Writer

	laneStatsMu sync.Mutex
}

// Job is one plan-addressable unit of simulation: the machine
// configuration to build, the op string carrying the experiment's
// non-config inputs (direction, size, workload identity,
// scale-dependent parameters), and the content-addressed cache key
// binding both to the code version.
type Job struct {
	Key    string
	Config system.Config
	Op     string
}

// Plan is the pure enumeration of an experiment's jobs — no simulation
// happens while building one. Plans make an experiment addressable
// data: cache hit/miss accounting, GC, and remote dispatch all operate
// on the enumerated keys instead of opaque closures.
type Plan struct {
	Experiment string
	Jobs       []Job
}

// Run executes an experiment end to end through this runner:
// compute (the only phase that simulates), then render.
func (r *Runner) Run(e Experiment, w io.Writer, sc Scale) {
	e.Render(w, sc, e.Compute(r, sc))
}

// Config is the Table I configuration at the given design point with
// the runner's shard and core-lane selections applied.
func (r *Runner) Config(d system.Design) system.Config {
	cfg := system.DefaultConfig(d)
	cfg.Shards = r.Shards
	cfg.CoreLanes = r.CoreLanes
	return cfg
}

// NewJob builds one plan job from an explicit configuration: the key
// binds keyPrefix (a versioned namespace such as "harness/v1"), the
// code-version stamp, the config fingerprint, and op.
func (r *Runner) NewJob(keyPrefix string, cfg system.Config, op string) Job {
	return Job{
		Key:    resultcache.KeyOf(keyPrefix, resultcache.CodeVersion(), cfg.Fingerprint(), op),
		Config: cfg,
		Op:     op,
	}
}

// job is NewJob at a default-config design point under the harness
// namespace — the common case for experiment plans.
func (r *Runner) job(d system.Design, op string) Job {
	return r.NewJob("harness/v1", r.Config(d), op)
}

// ComputePlan executes a plan through the runner's cache and worker
// pool: job i's result is served from the cache when a valid entry
// exists under its key, and computed by run(i, job) otherwise. Results
// round-trip through gob, so R must be a pure gob-able type — which is
// also what makes it renderable without re-simulation.
func ComputePlan[R any](r *Runner, p Plan, run func(i int, j Job) R) []R {
	return sweep.MapCachedN(r.Cache, len(p.Jobs), r.Workers,
		func(i int) string { return p.Jobs[i].Key },
		func(i int) R { return run(i, p.Jobs[i]) })
}

// ReportLaneStats prints one machine's per-lane counters to the
// runner's diagnostic writer, then resets them: experiments reuse
// machines across transfers, so without the reset each block would
// re-report every earlier run's events. Resetting only happens when a
// block was actually written — the counters are a diagnostic, and
// clearing them must not depend on whether anyone looks.
func (r *Runner) ReportLaneStats(tag string, s *system.System) {
	r.laneStatsMu.Lock()
	defer r.laneStatsMu.Unlock()
	if r.LaneStats == nil {
		return
	}
	st := s.Eng.ShardStats()
	if st.Lanes == nil {
		return // plain engine: nothing to attribute
	}
	fmt.Fprintf(r.LaneStats, "-- lanes: %s --\n%s", tag, st)
	s.Eng.ResetStats()
}

// newSystem builds a fresh Table I machine at the given design point.
func (r *Runner) newSystem(d system.Design) *system.System {
	return system.MustNew(r.Config(d))
}

// runTransfer executes one whole-device transfer of totalBytes.
func (r *Runner) runTransfer(s *system.System, dir core.Direction, totalBytes uint64) system.XferResult {
	per := perCore(s, totalBytes)
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	r.ReportLaneStats(fmt.Sprintf("%v %v %d MiB", s.Cfg.Design, dir, totalBytes>>20), s)
	return res
}

// perCore converts a total size into the per-core size, floored to one
// line.
func perCore(s *system.System, totalBytes uint64) uint64 {
	per := totalBytes / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	return per
}

// ResolveTopology parses and normalizes lane-topology selections given
// in CLI flag syntax (a count or "auto"; empty selects the default
// serial engine) into concrete Runner values. It exists so callers
// outside the compute layer — the serve front end in particular — can
// resolve request topology without importing internal/system.
func ResolveTopology(shards, coreLanes string) (sh, cl int, warns []string, err error) {
	if shards == "" {
		shards = "0"
	}
	if coreLanes == "" {
		coreLanes = "0"
	}
	shardsN, err := system.ParseLaneFlag(shards)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("shards: %w", err)
	}
	coreLanesN, err := system.ParseLaneFlag(coreLanes)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("core-lanes: %w", err)
	}
	return system.NormalizeLaneFlags(shardsN, coreLanesN)
}

// RunnerFlagNames is the canonical shared flag set every CLI registers
// through RegisterRunnerFlags; the per-CLI flag tests assert all three
// binaries accept exactly these names.
func RunnerFlagNames() []string {
	return []string{"workers", "shards", "core-lanes", "lane-stats",
		"cache-dir", "cache", "cpuprofile", "memprofile", "format"}
}

// RunnerFlags holds the parsed-but-unresolved shared CLI flags; call
// Runner after FlagSet.Parse to resolve them.
type RunnerFlags struct {
	workers                *int
	shards, coreLanes      *string
	laneStats              *bool
	cacheDir, cacheMode    *string
	cpuProfile, memProfile *string
	format                 *string
}

// RegisterRunnerFlags registers the lane-topology, worker, lane-stats,
// result-cache and profiling flags shared by pimmu-sim, pimmu-bench and
// pimmu-replay on fs, deduplicating what each CLI used to spell out.
func RegisterRunnerFlags(fs *flag.FlagSet) *RunnerFlags {
	f := &RunnerFlags{}
	f.workers = fs.Int("workers", 0, "parallel simulations per sweep (0 = all cores, 1 = serial)")
	f.shards = fs.String("shards", "0", "event-engine shards per machine (0 = serial engine, >= 2 = parallel windows, auto = sized to this host)")
	f.coreLanes = fs.String("core-lanes", "0", "per-core event lanes per machine (requires -shards >= 1; auto = one per core)")
	f.laneStats = fs.Bool("lane-stats", false, "dump per-lane event counters to stderr after each simulated run")
	f.cacheDir = fs.String("cache-dir", "", "result-cache directory (empty = caching off)")
	f.cacheMode = fs.String("cache", "rw", "result-cache mode: off, rw, or ro")
	f.cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	f.memProfile = fs.String("memprofile", "", "write a live-heap profile at exit to this file (go tool pprof)")
	f.format = fs.String("format", "text", "result format: text (the rendered tables) or json (one serve/api ExperimentResult per experiment, NDJSON)")
	return f
}

// Format resolves the parsed -format flag: "text" or "json".
func (f *RunnerFlags) Format() (string, error) {
	switch *f.format {
	case "text", "json":
		return *f.format, nil
	}
	return "", fmt.Errorf("-format: %q (want %q or %q)", *f.format, "text", "json")
}

// StartProfiles starts the profiling requested by -cpuprofile and
// -memprofile. The returned stop finishes both: it halts the CPU
// profile, and — after a GC so the numbers describe live memory, not
// garbage awaiting collection — writes the heap profile. stop is never
// nil and is a no-op when neither flag was given; call it exactly once,
// normally deferred around the measured work.
func (f *RunnerFlags) StartProfiles() (stop func() error, err error) {
	var cpu *os.File
	if *f.cpuProfile != "" {
		cpu, err = os.Create(*f.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	memPath := *f.memProfile
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memPath == "" {
			return nil
		}
		mf, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return fmt.Errorf("-memprofile: %w", err)
		}
		if err := mf.Close(); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		return nil
	}, nil
}

// CacheDir reports the parsed -cache-dir value (for cache maintenance
// commands that operate on the directory without opening a store).
func (f *RunnerFlags) CacheDir() string { return *f.cacheDir }

// Runner resolves the parsed flags into a Runner and its backing store
// (nil when caching is off). laneStats is the writer -lane-stats dumps
// to (normally os.Stderr). Warnings are returned for the caller to
// print under its own prefix; on error the Runner is nil.
func (f *RunnerFlags) Runner(laneStats io.Writer) (*Runner, *resultcache.Store, []string, error) {
	shardsN, err := system.ParseLaneFlag(*f.shards)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("-shards: %w", err)
	}
	coreLanesN, err := system.ParseLaneFlag(*f.coreLanes)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("-core-lanes: %w", err)
	}
	sh, cl, warns, err := system.NormalizeLaneFlags(shardsN, coreLanesN)
	if err != nil {
		return nil, nil, warns, err
	}
	store, err := resultcache.OpenFlags(*f.cacheDir, *f.cacheMode)
	if err != nil {
		return nil, nil, warns, err
	}
	r := &Runner{Shards: sh, CoreLanes: cl, Workers: *f.workers}
	if store != nil {
		// A nil *Store must not become a non-nil sweep.Cache interface.
		r.Cache = store
	}
	if *f.laneStats {
		r.LaneStats = laneStats
	}
	return r, store, warns, nil
}
