package harness

import (
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// replayWorkload names one synthetic trace workload of the replay
// experiment.
type replayWorkload struct {
	name    string
	pattern trace.Pattern
	// pim targets the PIM region (non-cacheable) instead of DRAM.
	pim bool
	// tweak adjusts the scaled default generator config.
	tweak func(*trace.GenConfig)
}

// replayWorkloads is the workload axis of the replay experiment: the
// five synthetic application patterns over the DRAM region plus a
// random-write stream into the PIM region.
func replayWorkloads() []replayWorkload {
	return []replayWorkload{
		{name: "stream", pattern: trace.PatternStream},
		{name: "strided x4", pattern: trace.PatternStrided},
		{name: "ptr-chase", pattern: trace.PatternChase},
		{name: "mixed 70r/30w", pattern: trace.PatternMixed},
		{name: "zipf hot-set", pattern: trace.PatternZipf},
		{name: "pim wr-rand", pattern: trace.PatternMixed, pim: true,
			tweak: func(c *trace.GenConfig) { c.WritePercent = 100 }},
	}
}

// replayGenConfig sizes one workload's generator for the scale.
func replayGenConfig(sc Scale) trace.GenConfig {
	cfg := trace.DefaultGenConfig()
	cfg.FootprintLines = 1 << 18 // 16 MiB: past the LLC, so DRAM decides
	if sc == Full {
		cfg.Records = 1 << 17
		cfg.FootprintLines = 1 << 20
	}
	return cfg
}

// Replay reproduces the trace-driven workload comparison: synthetic
// application access patterns are replayed through the memory port of a
// Base and a PIM-MMU machine at recorded inter-arrival times, and the
// replayed runs report bandwidth and latency from the same channel/LLC
// counters as every figure. Every (workload x design) machine is
// independent, so the matrix fans out through one sweep.
func Replay(w io.Writer, sc Scale) {
	workloads := replayWorkloads()
	designs := baseVsMMU
	type point struct {
		Thr  float64
		Hist trace.LatencyHist
	}
	g := sweep.NewGrid(len(workloads), len(designs))
	res := cachedMap(g.Size(), func(i int) string {
		wl := workloads[g.Coord(i, 0)]
		cfg := replayGenConfig(sc)
		if wl.tweak != nil {
			wl.tweak(&cfg)
		}
		// cfg.Base is assigned inside the job, but it is itself a pure
		// function of the machine (the first allocation of a fresh system,
		// or the fixed PIM base), so pim + the generator config identify
		// the workload completely.
		return jobKey(newConfig(designs[g.Coord(i, 1)]),
			fmt.Sprintf("replay pattern=%s pim=%v gen=%s rcfg=%s", wl.pattern, wl.pim,
				resultcache.Canonical(cfg), resultcache.Canonical(trace.DefaultReplayConfig())))
	}, func(i int) point {
		wl := workloads[g.Coord(i, 0)]
		s := newSystem(designs[g.Coord(i, 1)])
		cfg := replayGenConfig(sc)
		if wl.tweak != nil {
			wl.tweak(&cfg)
		}
		if wl.pim {
			cfg.Base = mem.PIMBase
		} else {
			cfg.Base = s.Alloc(cfg.FootprintBytes(wl.pattern))
		}
		recs := trace.MustGenerate(wl.pattern, cfg)
		rr, err := s.RunReplay(recs, trace.DefaultReplayConfig())
		if err != nil {
			panic(err)
		}
		reportLaneStats(fmt.Sprintf("replay %s %v", wl.name, s.Cfg.Design), s)
		return point{Thr: rr.Throughput(), Hist: rr.Latency}
	})
	t := stats.NewTable("workload", "Base (GB/s)", "PIM-MMU (GB/s)", "gain",
		"Base p50/p95/p99 (ns)", "PIM-MMU p50/p95/p99 (ns)")
	for wi, wl := range workloads {
		b := res[g.Index(wi, 0)]
		m := res[g.Index(wi, 1)]
		t.Rowf("%s\t%s\t%s\t%s\t%s\t%s", wl.name,
			gb(b.Thr), gb(m.Thr), ratio(m.Thr/b.Thr),
			percentiles(&b.Hist), percentiles(&m.Hist))
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "expected shape: DRAM-region patterns gain from HetMap's MLP-centric")
	fmt.Fprintln(w, "                mapping; the PIM-region pattern is mapping-neutral")
}

// percentiles renders a latency histogram's tail as "p50/p95/p99" in
// whole nanoseconds (bucket upper bounds: each figure is a <= bound).
func percentiles(h *trace.LatencyHist) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.P50().Nanoseconds(), h.P95().Nanoseconds(), h.P99().Nanoseconds())
}
