// Render phase of every experiment: deterministic text from the pure
// result types alone. Nothing here may import internal/system (enforced
// by cmd/pimmu-lint) — a renderer fed a fully warmed cache produces the
// same bytes as one fed a cold compute, because it cannot tell the
// difference.

package harness

import (
	"fmt"
	"io"

	"repro/internal/clock"
	"repro/internal/contend"
	"repro/internal/prim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// table1Render prints the simulated system configuration.
func table1Render(w io.Writer, _ Scale, d Table1Data) {
	t := stats.NewTable("component", "configuration")
	t.Rowf("CPU\t%d cores, %.1f GHz, %d load buffers, %d store buffers",
		d.CPUCores, d.CPUClockGHz, d.LoadBuffers, d.StoreBuffers)
	t.Rowf("OS scheduler\tround robin, %v quantum", d.Quantum)
	t.Rowf("LLC\t%d MB shared, %d-way, 64 B lines", d.LLCMB, d.LLCWays)
	t.Rowf("Memory controller\t%d-entry read & write queues, FR-FCFS, write drain %d/%d",
		d.QueueDepth, d.DrainHi, d.DrainLo)
	t.Rowf("DRAM system\tDDR4-2400, %d channels, %d ranks/channel (%.1f GiB)",
		d.DRAMChannels, d.DRAMRanks, d.DRAMGiB)
	t.Rowf("PIM system\tDDR4-2400, %d channels, %d ranks/channel, %d PIM cores (%d MiB MRAM each)",
		d.PIMChannels, d.PIMRanks, d.PIMCores, d.MRAMMiB)
	t.Rowf("DCE\t%.1f GHz, %d KB data buffer, %d KB address buffer",
		d.DCEClockGHz, d.DataBufKB, d.AddrBufKB)
	t.Rowf("PIM-MS\tAlgorithm 1 (channel-parallel, bank-group interleaved)")
	t.Rowf("HetMap\tDRAM: MLP-centric + XOR hash; PIM: ChRaBgBkRoCo")
	fmt.Fprint(w, t)
}

// areaRender prints the Section VI-C implementation-overhead analysis.
func areaRender(w io.Writer, _ Scale, d AreaData) {
	t := stats.NewTable("quantity", "paper", "model")
	t.Rowf("DCE SRAM\t16 KB + 64 KB\t%d KB + %d KB", d.DataKB, d.AddrKB)
	t.Rowf("area (32 nm)\t0.85 mm^2\t%.2f mm^2", d.MM2)
	t.Rowf("CPU die overhead\t0.37%%\t%.2f%%", 100*d.DieFrac)
	fmt.Fprint(w, t)
}

// fig4Render prints each direction's time series in paper order.
func fig4Render(w io.Writer, sc Scale, sections []Fig4Section) {
	size := fig4Size(sc)
	for i, sec := range sections {
		fmt.Fprintf(w, "-- %v transfer of %d MiB (baseline) --\n", bothDirections[i], size>>20)
		t := stats.NewTable("t (us)", "active cores (%)", "system power (W)")
		for _, row := range sec.Rows {
			t.Rowf("%d\t%.0f\t%.1f", row.T, 100*row.ActiveFrac, row.Watts)
		}
		fmt.Fprint(w, t)
		fmt.Fprintf(w, "transfer: %s GB/s; paper shape: ~100%% cores busy, ~70 W during transfer\n\n",
			gb(sec.Thr))
	}
}

// fig6Render prints each design point's per-channel share table.
func fig6Render(w io.Writer, _ Scale, sections []Fig6Section) {
	for i, sec := range sections {
		fmt.Fprintf(w, "-- (%s) per-PIM-channel share of write throughput over time --\n", fig6Points[i].label)
		t := stats.NewTable("t (x100us)", "ch0 %", "ch1 %", "ch2 %", "ch3 %")
		rows := sec.Rows
		step := len(rows)/12 + 1
		for k := 0; k < len(rows); k += step {
			t.Rowf("%d\t%.0f\t%.0f\t%.0f\t%.0f", k,
				rows[k][0], rows[k][1], rows[k][2], rows[k][3])
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
}

// fig8Render prints the locality-vs-MLP bandwidth table.
func fig8Render(w io.Writer, _ Scale, thr []float64) {
	g := fig8Grid()
	t := stats.NewTable("pattern", "locality (GB/s)", "MLP (GB/s)", "locality/MLP")
	for pi, p := range fig8Patterns {
		loc := thr[g.Index(pi, 0)]
		mlp := thr[g.Index(pi, 1)]
		t.Rowf("%s\t%s\t%s\t%.2f", p.name, gb(loc), gb(mlp), loc/mlp)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: locality-centric reaches ~0.30 of MLP-centric for both patterns")
}

// fig13aRender prints the compute-contender table normalized to each
// design's idle row.
func fig13aRender(w io.Writer, _ Scale, lat []float64) {
	g := fig13aGrid()
	t := stats.NewTable("spin contenders", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	baseIdle, mmuIdle := lat[g.Index(0, 0)], lat[g.Index(0, 1)]
	for ci, n := range fig13aCounts {
		t.Rowf("%d\t%.2f\t%.2f", n, lat[g.Index(ci, 0)]/baseIdle, lat[g.Index(ci, 1)]/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: baseline degrades sharply with contenders; PIM-MMU flat")
}

// fig13bRender prints the memory-contender intensity table normalized to
// the uncontended reference row.
func fig13bRender(w io.Writer, _ Scale, lat []float64) {
	levels := contend.Levels()
	g := fig13bGrid()
	baseIdle, mmuIdle := lat[g.Index(0, 0)], lat[g.Index(0, 1)]
	t := stats.NewTable("intensity", "Base (norm. latency)", "PIM-MMU (norm. latency)")
	for li, level := range levels {
		t.Rowf("%v\t%.2f\t%.2f", level,
			lat[g.Index(li+1, 0)]/baseIdle, lat[g.Index(li+1, 1)]/mmuIdle)
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: both degrade with memory pressure; PIM-MMU consistently lower")
}

// fig14Render prints the memcpy-throughput table.
func fig14Render(w io.Writer, _ Scale, thr []float64) {
	g := fig14Grid()
	t := stats.NewTable("config", "Baseline (GB/s)", "PIM-MMU (GB/s)", "gain")
	for ci, c := range fig14Configs {
		base := thr[g.Index(ci, 0)]
		mmu := thr[g.Index(ci, 1)]
		t.Rowf("%s\t%s\t%s\t%s", c.name, gb(base), gb(mmu), ratio(mmu/base))
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "paper shape: 4.9x avg (max 6.0x); gains scale with channels, not ranks")
}

// fig15aRender prints the ablation's throughput tables, one per
// direction, normalized to Base.
func fig15aRender(w io.Writer, sc Scale, thr []float64) {
	sizes := fig15Sizes(sc)
	g := fig15Grid(sc)
	for di, dir := range bothDirections {
		fmt.Fprintf(w, "-- %v: throughput normalized to Base --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P")
		for si, size := range sizes {
			base := thr[g.Index(di, si, 0)]
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f", size>>20,
				thr[g.Index(di, si, 1)]/base,
				thr[g.Index(di, si, 2)]/base,
				thr[g.Index(di, si, 3)]/base)
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D often below 1.0 (vanilla DMA loses to AVX software);")
	fmt.Fprintln(w, "             full PIM-MMU ~4x (max 6.9x)")
}

// fig15bRender prints the ablation's energy tables, one per direction,
// normalized to Base.
func fig15bRender(w io.Writer, sc Scale, res []Fig15bPoint) {
	sizes := fig15Sizes(sc)
	g := fig15Grid(sc)
	for di, dir := range bothDirections {
		fmt.Fprintf(w, "-- %v: energy normalized to Base (lower is better) --\n", dir)
		t := stats.NewTable("size", "Base", "Base+D", "Base+D+H", "Base+D+H+P", "PIM-MMU static share")
		for si, size := range sizes {
			base := res[g.Index(di, si, 0)].Total
			mmu := res[g.Index(di, si, 3)]
			t.Rowf("%dMB\t1.00\t%.2f\t%.2f\t%.2f\t%.0f%%", size>>20,
				res[g.Index(di, si, 1)].Total/base,
				res[g.Index(di, si, 2)].Total/base,
				mmu.Total/base, 100*mmu.StaticFrac)
		}
		fmt.Fprint(w, t)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: Base+D and Base+D+H cost MORE energy than Base (longer")
	fmt.Fprintln(w, "             transfers, static power dominates); PIM-MMU 3.3x/4.9x better")
}

// fig16Render prints the per-workload time breakdown (DRAM->PIM
// transfer, PIM kernel, PIM->DRAM transfer) normalized to the baseline.
func fig16Render(w io.Writer, _ Scale, phases []prim.Phase) {
	suite := prim.Suite()
	g := fig16Grid()
	t := stats.NewTable("workload",
		"base in%", "base kern%", "base out%",
		"mmu total (norm.)", "speedup", "xfer cut in", "xfer cut out")
	var speedups, fracs []float64
	for wi, wl := range suite {
		pb := phases[g.Index(wi, 0)]
		pm := phases[g.Index(wi, 1)]

		bt := float64(pb.Total())
		sp := bt / float64(pm.Total())
		speedups = append(speedups, sp)
		fracs = append(fracs, pb.TransferFraction())
		inCut, outCut := 0.0, 0.0
		if pm.In > 0 {
			inCut = float64(pb.In) / float64(pm.In)
		}
		if pm.Out > 0 {
			outCut = float64(pb.Out) / float64(pm.Out)
		}
		t.Rowf("%s\t%.0f\t%.0f\t%.0f\t%.2f\t%s\t%s\t%s",
			wl.Name,
			100*float64(pb.In)/bt, 100*float64(pb.Kernel)/bt, 100*float64(pb.Out)/bt,
			float64(pm.Total())/bt, ratio(sp), ratio(inCut), ratio(outCut))
	}
	fmt.Fprint(w, t)
	fmt.Fprintf(w, "baseline transfer share: avg %.1f%% (paper: 63.7%%, max 99.7%%)\n",
		100*stats.Mean(fracs))
	fmt.Fprintf(w, "end-to-end speedup: avg %s, max %s (paper: avg 2.2x, max 4.0x)\n",
		ratio(stats.Mean(speedups)), ratio(stats.Max(speedups)))
}

// headlineRender prints the abstract's summary table.
func headlineRender(w io.Writer, sc Scale, res []HeadlinePoint) {
	sizes := headlineSizes(sc)
	g := headlineGrid(sc)
	var speedups, effs []float64
	for di := range bothDirections {
		for si := range sizes {
			b := res[g.Index(di, si, 0)]
			m := res[g.Index(di, si, 1)]
			speedups = append(speedups, m.Thr/b.Thr)
			effs = append(effs, m.Eff/b.Eff)
		}
	}
	t := stats.NewTable("metric", "paper", "measured (avg)", "measured (max)")
	t.Rowf("transfer throughput gain\t4.1x (max 6.9x)\t%s\t%s",
		ratio(stats.Mean(speedups)), ratio(stats.Max(speedups)))
	t.Rowf("energy-efficiency gain\t4.1x (max 6.9x)\t%s\t%s",
		ratio(stats.Mean(effs)), ratio(stats.Max(effs)))
	fmt.Fprint(w, t)
}

// replayRender prints the per-workload bandwidth/latency table.
func replayRender(w io.Writer, _ Scale, res []ReplayPoint) {
	workloads := replayWorkloads()
	g := replayGrid()
	t := stats.NewTable("workload", "Base (GB/s)", "PIM-MMU (GB/s)", "gain",
		"Base p50/p95/p99 (ns)", "PIM-MMU p50/p95/p99 (ns)")
	for wi, wl := range workloads {
		b := res[g.Index(wi, 0)]
		m := res[g.Index(wi, 1)]
		t.Rowf("%s\t%s\t%s\t%s\t%s\t%s", wl.name,
			gb(b.Thr), gb(m.Thr), ratio(m.Thr/b.Thr),
			percentiles(&b.Hist), percentiles(&m.Hist))
	}
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "expected shape: DRAM-region patterns gain from HetMap's MLP-centric")
	fmt.Fprintln(w, "                mapping; the PIM-region pattern is mapping-neutral")
}

// percentiles renders a latency histogram's tail as "p50/p95/p99" in
// whole nanoseconds (bucket upper bounds: each figure is a <= bound).
func percentiles(h *trace.LatencyHist) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.P50().Nanoseconds(), h.P95().Nanoseconds(), h.P99().Nanoseconds())
}

// loadCurveRender prints the latency-vs-offered-load table: each point
// reports the end-to-end tail (p50/p99/p99.9) plus the p99 queueing
// delay — the component a closed-loop replay cannot see. The footer row
// reads off the SLO knee: the maximum offered load whose p99 stays
// within the objective.
func loadCurveRender(w io.Writer, sc Scale, res []LoadPoint) {
	gaps := loadGaps(sc)
	g := loadCurveGrid(sc)
	t := stats.NewTable("offered (GB/s)", "Base p50/p99/p99.9 (ns)", "PIM-MMU p50/p99/p99.9 (ns)",
		"Base p99 queue (ns)", "PIM-MMU p99 queue (ns)")
	knee := make([]clock.Picos, len(baseVsMMU)) // best (smallest) gap within SLO
	for gi, gap := range gaps {
		b := res[g.Index(gi, 0)]
		m := res[g.Index(gi, 1)]
		t.Rowf("%s\t%s\t%s\t%.0f\t%.0f",
			gb(loadDriverConfig(sc, gap).OfferedLoad()),
			percentiles999(&b.Total), percentiles999(&m.Total),
			b.Queue.P99().Nanoseconds(), m.Queue.P99().Nanoseconds())
		for di := range knee {
			p := res[g.Index(gi, di)]
			if p.Total.P99() <= loadSLO && (knee[di] == 0 || gap < knee[di]) {
				knee[di] = gap
			}
		}
	}
	t.Rowf("max load @ p99 <= %v\t%s\t%s\t\t", loadSLO, kneeCell(sc, knee[0]), kneeCell(sc, knee[1]))
	fmt.Fprint(w, t)
	fmt.Fprintln(w, "expected shape: both designs track the service floor at low load; the")
	fmt.Fprintln(w, "                knee sits where queueing delay takes over the p99")
}

// kneeCell renders one design's SLO knee as its offered load, or "-"
// when no point on the axis met the objective.
func kneeCell(sc Scale, gap clock.Picos) string {
	if gap == 0 {
		return "-"
	}
	return gb(loadDriverConfig(sc, gap).OfferedLoad()) + " GB/s"
}

// percentiles999 renders a latency histogram's tail as "p50/p99/p99.9"
// in whole nanoseconds (bucket upper bounds: each figure is a <= bound).
func percentiles999(h *trace.LatencyHist) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.P50().Nanoseconds(), h.P99().Nanoseconds(), h.P999().Nanoseconds())
}
