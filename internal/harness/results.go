// Exported, plan-addressable result types: the pure data each
// experiment's compute phase produces and its render phase consumes.
// Every type here round-trips through gob (the result-cache payload
// format), so a cached entry is indistinguishable from a fresh compute.

package harness

import (
	"repro/internal/clock"
	"repro/internal/trace"
)

// Table1Data is the configuration snapshot the table1 experiment
// renders — captured from the default PIM-MMU config, not a live
// machine.
type Table1Data struct {
	CPUCores                  int
	CPUClockGHz               float64
	LoadBuffers, StoreBuffers int
	Quantum                   clock.Picos

	LLCMB, LLCWays int

	QueueDepth, DrainHi, DrainLo int

	DRAMChannels, DRAMRanks int
	DRAMGiB                 float64

	PIMChannels, PIMRanks int
	PIMCores              int
	MRAMMiB               uint64

	DCEClockGHz          float64
	DataBufKB, AddrBufKB int
}

// AreaData is the Section VI-C implementation-overhead snapshot.
type AreaData struct {
	DataKB, AddrKB int
	MM2            float64
	DieFrac        float64
}

// Fig4Row is one sampled window of a fig4 power trace.
type Fig4Row struct {
	T          int // window start, microseconds
	ActiveFrac float64
	Watts      float64
}

// Fig4Section is one direction's fig4 time series plus its transfer
// throughput.
type Fig4Section struct {
	Rows []Fig4Row
	Thr  float64
}

// Fig6Section is one design point's per-channel write-throughput shares
// over time (percentages per 100 us window).
type Fig6Section struct {
	Rows [][]float64
}

// Fig15bPoint is one (direction x size x design) energy measurement of
// the fig15b ablation.
type Fig15bPoint struct {
	Total      float64
	StaticFrac float64
}

// HeadlinePoint is one (direction x size x design) measurement of the
// headline sweep.
type HeadlinePoint struct {
	Thr, Eff float64
}

// ReplayPoint is one (workload x design) replay measurement.
type ReplayPoint struct {
	Thr  float64
	Hist trace.LatencyHist
}

// LoadPoint is one (gap x design) open-loop load measurement.
type LoadPoint struct {
	Thr          float64
	Total, Queue trace.LatencyHist
}
