package cpu

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/sim"
)

// laneEngine builds a topology-sharded engine with n core lanes and the
// given crossing-edge latency (the classification floor the CPU uses).
func laneEngine(workers, lanes int, floor clock.Picos) *sim.Engine {
	var topo sim.Topology
	for i := 0; i < lanes; i++ {
		topo.Add(fmt.Sprintf("core:%d", i), sim.Edge{To: "llc", MinLatency: floor})
	}
	return sim.MustNewShardedTopology(workers, topo)
}

// chainProgram alternates chains of compute spans with loads — the shape
// whose span-end steps classify lane-local.
func chainProgram(chains, spans int, cycles int64) Program {
	c, sp := 0, 0
	return ProgramFunc(func() (Op, bool) {
		if c >= chains {
			return Op{}, false
		}
		if sp < spans {
			sp++
			return Op{Kind: OpCompute, Cycles: cycles}, true
		}
		sp = 0
		c++
		return Op{Kind: OpLoad, Addr: uint64(c) * 64}, true
	})
}

// TestCoreLanesDeterministicAcrossWorkers pins the core-lane contract at
// the cpu layer: thread completion times, memory-op counts, and busy
// accounting are identical on the serial engine, on a laned engine run
// serially, and on laned engines with parallel windows.
func TestCoreLanesDeterministicAcrossWorkers(t *testing.T) {
	const floor = 12500 // ~40 cycles at 3.2 GHz
	run := func(eng *sim.Engine, lanes int) string {
		cfg := testCfg()
		cfg.Cores = 4
		cfg.Lanes = lanes
		cfg.LaneLocalFloor = floor
		fm := &fakeMem{eng: eng, latency: 12500, accepts: -1}
		c := New(eng, cfg, fm)
		out := ""
		for i := 0; i < 6; i++ {
			c.Spawn(fmt.Sprintf("w%d", i), chainProgram(40, 4, 256), nil)
		}
		eng.Run()
		out += fmt.Sprintf("end=%v issued=%d", eng.Now(), fm.count)
		for _, core := range c.Cores() {
			out += fmt.Sprintf(" busy=%v", core.BusyTime())
		}
		return out
	}
	want := run(sim.New(), 0)
	for _, p := range []struct{ workers, lanes int }{
		{1, 4}, {2, 2}, {2, 4}, {4, 4},
	} {
		got := run(laneEngine(p.workers, p.lanes, floor), p.lanes)
		if got != want {
			t.Errorf("workers=%d lanes=%d diverged:\nwant %s\ngot  %s", p.workers, p.lanes, want, got)
		}
	}
}

// TestCoreLanesChainLocally checks the classification actually produces
// lane-local work: compute chains above the floor execute on the core
// lanes (window or degenerate-frontier local fires), while every memory
// issue crosses.
func TestCoreLanesChainLocally(t *testing.T) {
	eng := laneEngine(2, 4, 12500)
	cfg := testCfg()
	cfg.Cores = 4
	cfg.Lanes = 4
	cfg.LaneLocalFloor = 12500
	fm := &fakeMem{eng: eng, latency: 12500, accepts: -1}
	c := New(eng, cfg, fm)
	for i := 0; i < 4; i++ {
		c.Spawn(fmt.Sprintf("w%d", i), chainProgram(50, 4, 256), nil)
	}
	eng.Run()
	st := eng.ShardStats()
	var local, crossings uint64
	for _, l := range st.Lanes {
		local += l.WindowFired
		if l.SerialFired > 0 && l.MailboxPeak == 0 {
			t.Errorf("lane %s fired serially without ever holding a crossing", l.Name)
		}
		crossings += uint64(l.MailboxPeak)
	}
	if local == 0 {
		t.Error("no lane-local core events fired; compute chains did not classify local")
	}
	if crossings == 0 {
		t.Error("no crossings recorded; memory issues must cross")
	}
}

// TestCoreLanesShortSpansStaySerial pins the floor: spans shorter than
// LaneLocalFloor never classify local, so a lane full of them fires
// entirely at the frontier.
func TestCoreLanesShortSpansStaySerial(t *testing.T) {
	eng := laneEngine(2, 2, 125000) // floor of 400 cycles
	cfg := testCfg()
	cfg.Lanes = 2
	cfg.LaneLocalFloor = 125000
	fm := &fakeMem{eng: eng, latency: 12500, accepts: -1}
	c := New(eng, cfg, fm)
	c.Spawn("short", chainProgram(30, 4, 64), nil) // 64-cycle spans < floor
	c.Spawn("short2", chainProgram(30, 4, 64), nil)
	eng.Run()
	for _, l := range eng.ShardStats().Lanes {
		if l.WindowFired != 0 {
			t.Errorf("lane %s ran %d events locally despite sub-floor spans", l.Name, l.WindowFired)
		}
	}
}

// TestCoreLanesFallBackWithoutTopology checks cores degrade gracefully:
// Lanes > 0 on an engine without the named lanes keeps every core on the
// host lane and the machine fully functional.
func TestCoreLanesFallBackWithoutTopology(t *testing.T) {
	eng := sim.NewSharded(2)
	cfg := testCfg()
	cfg.Lanes = 4
	cfg.LaneLocalFloor = 12500
	fm := &fakeMem{eng: eng, latency: 12500, accepts: -1}
	c := New(eng, cfg, fm)
	done := false
	c.Spawn("w", chainProgram(10, 2, 256), func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("thread never finished on the host-lane fallback")
	}
}

// TestQuantumBoundarySpanEndReclassified pins the kick/rotate collision:
// a lane-local span-end standing at exactly the quantum boundary must be
// promoted to a crossing when the rotation assigns a new thread to the
// core — otherwise the new thread's first execution step (which may
// issue memory operations) would fire inside a parallel window. The
// workload engineers the exact collision: spans sized so their ends land
// on quantum boundaries, more threads than cores so every boundary swaps
// threads, and fresh threads whose first operation is a load. Run under
// -race (the CI race job covers this package) the unpromoted event is a
// data race; here we pin byte-identical results across worker counts.
// (The plain engine orders the engineered same-instant ties at the final
// boundary differently — the documented benign tie class — so it is
// only compared on issue counts and busy time, not the final clock.)
func TestQuantumBoundarySpanEndReclassified(t *testing.T) {
	const floor = 12500
	run := func(eng *sim.Engine, lanes int) string {
		cfg := testCfg()
		cfg.Cores = 2
		cfg.Lanes = lanes
		cfg.LaneLocalFloor = floor
		// Quantum = exactly 10000 core cycles, so a 10000-cycle span that
		// starts at a boundary ends precisely on the next one.
		cfg.Quantum = 10000 * 312 // 312 ps/cycle at 3.2 GHz
		fm := &fakeMem{eng: eng, latency: 12500, accepts: -1}
		c := New(eng, cfg, fm)
		// Two runners whose span ends hit every boundary with a local
		// classification (the peeked next op is another long span).
		for i := 0; i < 2; i++ {
			c.Spawn(fmt.Sprintf("runner%d", i), chainProgram(6, 3, 10000), nil)
		}
		// Two ready threads that lead with loads: at the first boundary
		// rotate hands them the cores while the runners' local span-ends
		// still stand at that exact timestamp.
		for i := 0; i < 2; i++ {
			c.Spawn(fmt.Sprintf("loader%d", i), chainProgram(6, 0, 1), nil)
		}
		eng.Run()
		out := fmt.Sprintf("end=%v issued=%d", eng.Now(), fm.count)
		for _, core := range c.Cores() {
			out += fmt.Sprintf(" busy=%v", core.BusyTime())
		}
		return out
	}
	plain := run(sim.New(), 0)
	want := run(laneEngine(1, 2, floor), 2)
	for _, workers := range []int{2, 4} {
		if got := run(laneEngine(workers, 2, floor), 2); got != want {
			t.Errorf("workers=%d diverged:\nwant %s\ngot  %s", workers, want, got)
		}
	}
	// Against the plain engine only the tie-free aggregates are pinned.
	trim := func(s string) string { return s[strings.Index(s, "issued="):] }
	if trim(plain) != trim(want) {
		t.Errorf("laned aggregates diverged from plain:\nplain %s\nlaned %s", plain, want)
	}
}

// promoterMem is a fakeMem that records every PromoteHits call, standing
// in for the memory system's per-requester hit-delivery pools.
type promoterMem struct {
	fakeMem
	promoted []int
}

func (p *promoterMem) PromoteHits(srcID int) { p.promoted = append(p.promoted, srcID) }

// TestPromoteHitsTriggers pins the call sites of the lane-locality
// assertion behind mem.Req.DeliverOn: the CPU must promote a thread's
// in-flight deliveries the moment the thread blocks (barrier or full
// buffer), is preempted off its core, or exits with operations still
// outstanding — and must not promote when nothing is in flight.
func TestPromoteHitsTriggers(t *testing.T) {
	const floor = 12500
	cases := []struct {
		name  string
		setup func(c *CPU) *Thread // spawns the thread under test
		cfg   func(cfg *Config)
		want  bool // thread's ID must appear in promoted
	}{
		{
			// A barrier with a load in flight blocks the thread: its
			// pending delivery must move to the frontier so the unblock
			// kick runs serially.
			name: "barrier block promotes",
			setup: func(c *CPU) *Thread {
				return c.Spawn("w", seqProgram([]Op{
					{Kind: OpLoad, Addr: 0}, {Kind: OpBarrier}}), nil)
			},
			want: true,
		},
		{
			// A full load buffer blocks the same way.
			name: "buffer-full block promotes",
			cfg:  func(cfg *Config) { cfg.LoadBuffers = 1 },
			setup: func(c *CPU) *Thread {
				return c.Spawn("w", seqProgram([]Op{
					{Kind: OpLoad, Addr: 0}, {Kind: OpLoad, Addr: 64}}), nil)
			},
			want: true,
		},
		{
			// A program that ends with a store still outstanding exits the
			// thread; the delivery must leave the lane the next thread
			// will run on.
			name: "exit with outstanding store promotes",
			setup: func(c *CPU) *Thread {
				return c.Spawn("w", seqProgram([]Op{
					{Kind: OpStore, Addr: 0, NC: true}}), nil)
			},
			want: true,
		},
		{
			// Pure compute never has a delivery in flight: no promotion.
			name: "compute-only thread never promotes",
			setup: func(c *CPU) *Thread {
				return c.Spawn("w", seqProgram([]Op{
					{Kind: OpCompute, Cycles: 100000}}), nil)
			},
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := laneEngine(1, 1, floor)
			cfg := testCfg()
			cfg.Cores = 1
			cfg.Lanes = 1
			cfg.LaneLocalFloor = floor
			if tc.cfg != nil {
				tc.cfg(&cfg)
			}
			pm := &promoterMem{fakeMem: fakeMem{eng: eng, latency: clock.Millisecond, accepts: -1}}
			c := New(eng, cfg, pm)
			th := tc.setup(c)
			eng.Run()
			got := false
			for _, id := range pm.promoted {
				if id == th.ID {
					got = true
				}
			}
			if got != tc.want {
				t.Errorf("promoted=%v (thread %d), want promotion=%v", pm.promoted, th.ID, tc.want)
			}
		})
	}
}

// TestPromoteHitsOnPreemption pins the rotate trigger: when the quantum
// expires with a ready thread waiting, the descheduled thread's in-flight
// deliveries are promoted off its old lane — exactly as resumeCycles
// carries its interrupted compute span.
func TestPromoteHitsOnPreemption(t *testing.T) {
	const floor = 12500
	eng := laneEngine(1, 1, floor)
	cfg := testCfg()
	cfg.Cores = 1
	cfg.Lanes = 1
	cfg.LaneLocalFloor = floor
	cfg.Quantum = clock.Millisecond
	// Latency far beyond the quantum keeps the load in flight across the
	// rotation.
	pm := &promoterMem{fakeMem: fakeMem{eng: eng, latency: 10 * clock.Millisecond, accepts: -1}}
	c := New(eng, cfg, pm)
	victim := c.Spawn("victim", seqProgram([]Op{
		{Kind: OpLoad, Addr: 0},
		{Kind: OpCompute, Cycles: c.Domain().Cycles(4 * clock.Millisecond)},
	}), nil)
	c.Spawn("contender", seqProgram([]Op{
		{Kind: OpCompute, Cycles: c.Domain().Cycles(4 * clock.Millisecond)},
	}), nil)
	eng.Run()
	for _, id := range pm.promoted {
		if id == victim.ID {
			return
		}
	}
	t.Errorf("preemption never promoted thread %d's deliveries (promoted=%v)", victim.ID, pm.promoted)
}
