// Package cpu models the host processor: multiple cores executing
// software threads, each thread an abstract instruction stream of compute
// spans and line-sized memory operations, plus the operating system's
// round-robin thread scheduler whose coarse quantum is one of the paper's
// root causes for poor transfer throughput (Section III-B).
//
// The core model is deliberately at "memory-system fidelity": it does not
// simulate individual instructions, but it does model the two resources
// that determine streaming throughput — the limited number of outstanding
// cacheable misses (line-fill buffers) and of outstanding non-cacheable
// stores (write-combining buffers) — so per-thread bandwidth follows
// Little's law just as on real hardware.
//
// # Sharding contract
//
// On a topology-sharded engine (system.Config.CoreLanes >= 1) every core
// schedules its standing execution event on its own lane (topology name
// "core:<i>"); cores only interact with the rest of the machine through
// the memory system and the OS scheduler, so the lane's crossing edge is
// the LLC. Classification happens at schedule time, one program
// operation ahead:
//
//   - a compute span whose following operation is another compute span at
//     least Config.LaneLocalFloor long ends in a lane-local event — a
//     computing core cannot touch shared memory state sooner than the
//     floor, which system derives from min(LLC hit latency, scheduler
//     quantum), the same derivation the lane's topology edge uses;
//   - every other execution step (memory issue, barrier, thread exit,
//     dispatch, preemption wake) is a crossing and fires serially at the
//     engine frontier, where touching the LLC, the channels, and the
//     CPU-wide scheduler state is safe;
//   - LLC-hit completions deliver on the issuing core's own scheduler
//     (mem.Req.DeliverOn): the completion callback touches only the
//     issuing thread, which runs on that very lane, so a computing
//     thread's hit loop stays off the frontier entirely. The assertion
//     holds only while the thread stays scheduled there and unblocked,
//     so the core promotes in-flight deliveries back to crossing events
//     (mem.HitPromoter) whenever the thread blocks, is preempted, or
//     migrates — mirroring how resumeCycles carries an interrupted
//     compute span across a preemption. Only laned cores set DeliverOn:
//     an unlaned core's scheduler is the engine itself, where the
//     memory system's batched host queue is strictly cheaper and
//     observably identical (deliveries fire in enqueue order at the
//     same instants), so every golden is byte-identical across the
//     whole lane-topology axis either way.
//
// The peek that classification requires pulls the next program operation
// at span start rather than span end. The pull happens identically on
// every engine (plain or sharded, any lane count), so the model's
// behavior — including when a contender program observes its stop flag —
// is byte-identical across lane topologies.
package cpu

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// OpKind classifies thread operations.
type OpKind int

const (
	// OpCompute spends a fixed number of core cycles.
	OpCompute OpKind = iota
	// OpLoad issues a 64-byte load.
	OpLoad
	// OpStore issues a 64-byte store.
	OpStore
	// OpBarrier waits until every memory operation this thread issued has
	// completed.
	OpBarrier
)

// Op is one abstract thread operation.
type Op struct {
	Kind   OpKind
	Cycles int64  // OpCompute: cycles to burn
	Addr   uint64 // OpLoad/OpStore: physical address
	NC     bool   // OpLoad/OpStore: non-cacheable (PIM space, streaming stores)
}

// Program is a pull-based instruction stream. Next returns false when the
// thread has finished. The core pulls one operation ahead of execution
// (it classifies the event ending a compute span by what follows the
// span), so a program that reads external state in Next — a contender's
// stop flag — observes it one operation early; the pull schedule is
// engine-independent, so this costs determinism nothing.
type Program interface {
	Next() (Op, bool)
}

// ProgramFunc adapts a closure to Program.
type ProgramFunc func() (Op, bool)

// Next implements Program.
func (f ProgramFunc) Next() (Op, bool) { return f() }

// Config parameterizes the processor (Table I).
type Config struct {
	Cores int
	Clock clock.Hz
	// LoadBuffers bounds outstanding cacheable misses per core (line-fill
	// buffers; the 64 MSHRs of Table I are never the binding constraint).
	LoadBuffers int
	// StoreBuffers bounds outstanding non-cacheable stores per core
	// (write-combining buffers).
	StoreBuffers int
	// Quantum is the OS scheduler's round-robin time slice (Section V:
	// threads preempted every 1.5 ms).
	Quantum clock.Picos
	// Lanes is how many per-core event lanes the cores claim from a
	// topology-sharded engine (core i attaches to lane "core:<i mod
	// Lanes>"). 0 keeps every core on the host lane. Set by
	// system.Config.CoreLanes.
	Lanes int
	// LaneLocalFloor is the minimum compute-span duration eligible for
	// lane-local execution. It must be AT LEAST the core lanes' topology
	// edge latency: a local span-end may schedule a crossing as close as
	// the span it starts (>= the floor away), and the window algorithm
	// trusts the edge latency as the minimum crossing distance — so a
	// floor below it would let a window miss a crossing it should have
	// serialized against. New enforces the bound by raising each laned
	// core's effective floor to its lane's lookahead. 0 disables local
	// execution (every core event crosses). Set by system alongside the
	// topology.
	LaneLocalFloor clock.Picos
}

// DefaultConfig is the Table I host processor.
func DefaultConfig() Config {
	return Config{
		Cores: 8,
		Clock: 3200 * clock.MHz,
		// 12 L1 line-fill buffers plus the L2 streaming prefetcher's
		// in-flight lines: ~20 useful outstanding misses per core on a
		// sequential stream.
		LoadBuffers:  20,
		StoreBuffers: 12,
		Quantum:      clock.Picos(1.5 * float64(clock.Millisecond)),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Clock <= 0 || c.LoadBuffers <= 0 || c.StoreBuffers <= 0 {
		return fmt.Errorf("cpu: non-positive config field: %+v", c)
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("cpu: non-positive quantum")
	}
	if c.Lanes < 0 {
		return fmt.Errorf("cpu: negative core lane count %d", c.Lanes)
	}
	if c.LaneLocalFloor < 0 {
		return fmt.Errorf("cpu: negative lane-local floor %v", c.LaneLocalFloor)
	}
	return nil
}

// Thread is one software thread.
type Thread struct {
	ID   int
	Name string

	prog Program

	// pending is the next program operation, pulled one ahead of
	// execution (see Program); progEnded records that the program is
	// exhausted.
	pending   Op
	haveOp    bool
	progEnded bool

	// resumeCycles is the unfinished remainder of a compute span the
	// thread was preempted out of; it runs first at the next dispatch.
	resumeCycles int64

	loadsOut  int // in-flight cacheable loads / fills
	storesOut int // in-flight non-cacheable stores
	totalOut  int // all in-flight memory ops (for barriers)

	core    *Core // nil while descheduled
	blocked bool  // waiting on a completion event
	done    bool
	onExit  func()

	// loadDone/storeDone are the thread's standing completion callbacks,
	// built once at spawn so the per-op issue path allocates nothing.
	loadDone, storeDone func(clock.Picos)

	// computeUntil marks the end of an in-progress compute span so that a
	// preemption can carry the unfinished remainder over to the thread's
	// next dispatch instead of losing it.
	computeUntil clock.Picos

	// MemOps counts issued memory operations (for reports).
	MemOps uint64
}

// Outstanding reports the thread's in-flight memory operations.
func (t *Thread) Outstanding() int { return t.totalOut }

// Done reports whether the program finished.
func (t *Thread) Done() bool { return t.done }

// Core is one hardware context.
type Core struct {
	id    int
	cpu   *CPU
	sched sim.Scheduler // the core's event lane (the engine when not laned)
	laned bool          // sched is a real lane (compute chains may run locally)
	// localFloor is the effective lane-local classification floor:
	// max(Config.LaneLocalFloor, the lane's lookahead), or 0 when local
	// execution is disabled — the window algorithm's safety bound, see
	// Config.LaneLocalFloor.
	localFloor clock.Picos
	thread     *Thread
	// kickEv is the core's single standing execution event: dispatch,
	// wake-ups, and compute-span ends all reschedule it in place, so the
	// per-op scheduling path performs no allocation.
	kickEv sim.Event
	// busy tracks cumulative busy time for utilization accounting.
	busy    clock.Picos
	lastRun clock.Picos
}

// Thread returns the thread currently scheduled on the core, or nil.
func (c *Core) Thread() *Thread { return c.thread }

// CPU is the processor: cores plus the OS scheduler.
type CPU struct {
	eng *sim.Engine
	cfg Config
	dom clock.Domain
	mem mem.Port

	cores  []*Core
	ready  []*Thread // runnable threads not on a core
	nextID int
	alive  int // spawned minus exited

	// hits is the port's hit-promotion surface, set when the cores run on
	// their own lanes and the port supports per-requester hit delivery;
	// nil otherwise (promotion is then meaningless: every delivery
	// already fires at the frontier).
	hits mem.HitPromoter
}

// New builds the processor. The quantum ticker starts with the first
// spawned thread and stops when every thread has exited. With cfg.Lanes
// >= 1 each core attaches to its topology lane "core:<i mod Lanes>";
// cores whose lane the engine does not declare stay on the host lane.
func New(eng *sim.Engine, cfg Config, port mem.Port) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &CPU{eng: eng, cfg: cfg, dom: clock.NewDomain(cfg.Clock), mem: port}
	if cfg.Lanes > 0 {
		if hp, ok := port.(mem.HitPromoter); ok {
			c.hits = hp
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		core := &Core{id: i, cpu: c, sched: eng}
		if cfg.Lanes > 0 {
			if l, ok := eng.Lane(fmt.Sprintf("core:%d", i%cfg.Lanes)); ok {
				core.sched, core.laned = l, true
				if cfg.LaneLocalFloor > 0 {
					core.localFloor = cfg.LaneLocalFloor
					if la := l.(*sim.Lane).Lookahead(); core.localFloor < la {
						core.localFloor = la
					}
				}
			}
		}
		core.kickEv.Init(sim.HandlerFunc(core.advance))
		c.cores = append(c.cores, core)
	}
	return c
}

// Config reports the processor configuration.
func (c *CPU) Config() Config { return c.cfg }

// Domain reports the core clock domain.
func (c *CPU) Domain() clock.Domain { return c.dom }

// ActiveCores counts cores currently running a thread.
func (c *CPU) ActiveCores() int {
	n := 0
	for _, core := range c.cores {
		if core.thread != nil {
			n++
		}
	}
	return n
}

// Runnable counts live threads (running plus ready).
func (c *CPU) Runnable() int { return c.alive }

// Spawn creates a thread and schedules it. onExit, if non-nil, runs when
// the program finishes.
func (c *CPU) Spawn(name string, prog Program, onExit func()) *Thread {
	t := &Thread{ID: c.nextID, Name: name, prog: prog, onExit: onExit}
	t.loadDone = func(now clock.Picos) { t.complete(OpLoad) }
	t.storeDone = func(now clock.Picos) { t.complete(OpStore) }
	c.nextID++
	if c.alive == 0 {
		c.startQuantumTicker()
	}
	c.alive++
	if core := c.idleCore(); core != nil {
		c.assign(core, t)
	} else {
		c.ready = append(c.ready, t)
	}
	return t
}

func (c *CPU) idleCore() *Core {
	for _, core := range c.cores {
		if core.thread == nil {
			return core
		}
	}
	return nil
}

func (c *CPU) assign(core *Core, t *Thread) {
	core.thread = t
	core.lastRun = c.eng.Now()
	t.core = core
	core.kick()
}

// startQuantumTicker begins round-robin preemption; it self-terminates
// when no threads remain.
func (c *CPU) startQuantumTicker() {
	c.eng.Ticker(c.cfg.Quantum, func(now clock.Picos) bool {
		if c.alive == 0 {
			return false
		}
		c.rotate()
		return true
	})
}

// rotate implements the OS's fairness-first round-robin policy: at every
// quantum boundary all running threads move to the tail of the ready
// queue and the head of the queue is dispatched. When there are no more
// threads than cores this is a no-op reassignment. rotate runs from a
// host (ticker) event, so every lane is parked and touching thread state
// owned by core lanes is safe.
func (c *CPU) rotate() {
	if len(c.ready) == 0 {
		return // nobody waiting: current threads keep their cores
	}
	now := c.eng.Now()
	for _, core := range c.cores {
		if core.thread != nil {
			t := core.thread
			core.accountBusy(now)
			// Preserve the unfinished part of an in-progress compute span;
			// the peeked pending operation stays peeked.
			if t.computeUntil > now {
				t.resumeCycles = c.dom.CyclesCeil(t.computeUntil - now)
			}
			t.computeUntil = 0
			core.thread = nil
			t.core = nil
			// The thread may land on a different core (a different lane)
			// or none at all; either way its in-flight hit deliveries
			// must leave the old lane — exactly as resumeCycles carries
			// the interrupted span — so they complete at the frontier.
			c.promoteHits(t)
			c.ready = append(c.ready, t)
		}
	}
	for _, core := range c.cores {
		if len(c.ready) == 0 {
			break
		}
		t := c.ready[0]
		c.ready = c.ready[1:]
		c.assign(core, t)
	}
}

// exit retires a finished thread and dispatches the next ready one.
func (c *CPU) exit(core *Core) {
	t := core.thread
	core.accountBusy(c.eng.Now())
	core.thread = nil
	t.core = nil
	t.done = true
	// A program may end with operations still in flight; their
	// deliveries must not stay lane-local on a core about to run
	// someone else.
	c.promoteHits(t)
	c.alive--
	if len(c.ready) > 0 {
		next := c.ready[0]
		c.ready = c.ready[1:]
		c.assign(core, next)
	}
	if t.onExit != nil {
		t.onExit()
	}
}

func (core *Core) accountBusy(now clock.Picos) {
	core.busy += now - core.lastRun
	core.lastRun = now
}

// BusyTime reports the core's cumulative scheduled time.
func (core *Core) BusyTime() clock.Picos {
	b := core.busy
	if core.thread != nil {
		b += core.cpu.eng.Now() - core.lastRun
	}
	return b
}

// Cores exposes the core array (read-only use).
func (c *CPU) Cores() []*Core { return c.cores }

// kick schedules the core's execution step now, pulling a pending
// span-end event forward (and reclassifying it as a crossing) if one is
// standing in the future. Only called from serial context: assignment,
// completions, and queue-space wakes all run at the engine frontier.
func (core *Core) kick() {
	now := core.cpu.eng.Now()
	if core.kickEv.Scheduled() && core.kickEv.When() <= now {
		// The standing event already fires at this very instant, but it
		// may be classified lane-local (a span end that coincided with
		// this wake — e.g. a quantum boundary that just swapped threads).
		// The step must now run the thread's full execution loop, which
		// can issue memory operations, so force it to the serial
		// frontier. No-op when it is already a crossing.
		core.sched.Promote(&core.kickEv)
		return
	}
	core.sched.Schedule(&core.kickEv, now)
}

// advance runs the scheduled thread until it blocks on a resource, starts
// a compute span, or exits. It fires either at the serial frontier (a
// crossing: it may issue memory operations and touch CPU-wide state) or
// lane-locally inside a window, in which case the classification
// invariant guarantees the pending operation is a compute span and the
// only effect is starting it.
func (core *Core) advance(now clock.Picos) {
	t := core.thread
	if t == nil {
		return // stale span-end for a descheduled thread
	}
	cpu := core.cpu
	if now < t.computeUntil {
		// A wake pulled the standing event into the middle of a span;
		// re-arm the span end (serial context, so a crossing is safe).
		core.sched.Schedule(&core.kickEv, t.computeUntil)
		return
	}
	t.computeUntil = 0
	if t.resumeCycles > 0 {
		cycles := t.resumeCycles
		t.resumeCycles = 0
		core.startSpan(t, now, cycles)
		return
	}
	for {
		if !t.haveOp {
			if t.progEnded {
				cpu.exit(core)
				return
			}
			op, ok := t.prog.Next()
			if !ok {
				cpu.exit(core)
				return
			}
			t.pending = op
			t.haveOp = true
		}
		op := t.pending
		switch op.Kind {
		case OpCompute:
			t.haveOp = false
			if op.Cycles <= 0 {
				continue
			}
			core.startSpan(t, now, op.Cycles)
			return
		case OpBarrier:
			if t.totalOut > 0 {
				t.blocked = true
				cpu.promoteHits(t)
				return
			}
			t.haveOp = false
		case OpLoad, OpStore:
			// Loads occupy line-fill buffers; stores occupy store /
			// write-combining buffers. A full buffer stalls the thread
			// until a completion frees a slot.
			if op.Kind == OpLoad && t.loadsOut >= cpu.cfg.LoadBuffers ||
				op.Kind == OpStore && t.storesOut >= cpu.cfg.StoreBuffers {
				t.blocked = true
				cpu.promoteHits(t)
				return
			}
			req := &mem.Req{
				Addr:      mem.LineAlign(op.Addr),
				Cacheable: !op.NC,
				SrcID:     t.ID,
			}
			if core.laned {
				// An unlaned core's scheduler is the engine: the batched
				// host hit queue is cheaper there and delivers in the
				// same order.
				req.DeliverOn = core.sched
			}
			if op.Kind == OpStore {
				req.Kind = mem.Write
				req.OnDone = t.storeDone
			} else {
				req.OnDone = t.loadDone
			}
			if !cpu.mem.TryEnqueue(req) {
				cpu.mem.WaitSpace(func() { core.kickIfMine(t) })
				return
			}
			if op.Kind == OpLoad {
				t.loadsOut++
			} else {
				t.storesOut++
			}
			t.totalOut++
			t.MemOps++
			t.haveOp = false
		default:
			panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
		}
	}
}

// startSpan begins a compute span of the given length and schedules the
// core's span-end step, peeking one program operation ahead to classify
// it: lane-local when the span is followed by another compute span at
// least LaneLocalFloor long (so anything *that* span-end schedules —
// including a crossing — lands at least the floor away, which is the
// lane's declared edge latency), a crossing otherwise.
func (core *Core) startSpan(t *Thread, now clock.Picos, cycles int64) {
	cpu := core.cpu
	end := now + cpu.dom.Duration(cycles)
	t.computeUntil = end
	if !t.haveOp && !t.progEnded {
		if op, ok := t.prog.Next(); ok {
			t.pending = op
			t.haveOp = true
		} else {
			t.progEnded = true
		}
	}
	if core.laned && core.localFloor > 0 &&
		t.haveOp && t.pending.Kind == OpCompute &&
		cpu.dom.Duration(t.pending.Cycles) >= core.localFloor {
		core.sched.ScheduleLocal(&core.kickEv, end)
	} else {
		core.sched.Schedule(&core.kickEv, end)
	}
}

// kickIfMine re-kicks the core if thread t is still scheduled on it.
func (core *Core) kickIfMine(t *Thread) {
	if core.thread == t {
		core.kick()
	}
}

// promoteHits migrates thread t's in-flight LLC-hit deliveries to the
// serial frontier, because the lane-locality assertion behind
// mem.Req.DeliverOn is about to stop holding: the thread blocks (its
// next completion must kick the core — serial-only work), is preempted,
// migrates, or exits. Only called from serial context. Promotion never
// reorders a delivery, it only changes where it executes, so results
// are unaffected by construction.
func (c *CPU) promoteHits(t *Thread) {
	if c.hits != nil && t.totalOut > 0 {
		c.hits.PromoteHits(t.ID)
	}
}

// complete absorbs one memory-operation completion. A completion fires
// either at the serial frontier (channel-lane crossings, promoted or
// host-delivered LLC hits) — where touching the thread and kicking its
// core is safe on any topology — or lane-locally on the issuing core's
// lane (an unpromoted per-requester hit delivery), in which case the
// promotion contract guarantees the thread is unblocked and still
// scheduled there: the completion then only decrements the in-flight
// counters, state owned by that same lane.
func (t *Thread) complete(kind OpKind) {
	if kind == OpLoad {
		t.loadsOut--
	} else {
		t.storesOut--
	}
	t.totalOut--
	if t.blocked {
		t.blocked = false
		if t.core != nil {
			t.core.kick()
		}
	}
}

// Now reports the current simulated time (convenience for workload
// orchestrators built on the CPU).
func (c *CPU) Now() clock.Picos { return c.eng.Now() }
