// Package cpu models the host processor: multiple cores executing
// software threads, each thread an abstract instruction stream of compute
// spans and line-sized memory operations, plus the operating system's
// round-robin thread scheduler whose coarse quantum is one of the paper's
// root causes for poor transfer throughput (Section III-B).
//
// The core model is deliberately at "memory-system fidelity": it does not
// simulate individual instructions, but it does model the two resources
// that determine streaming throughput — the limited number of outstanding
// cacheable misses (line-fill buffers) and of outstanding non-cacheable
// stores (write-combining buffers) — so per-thread bandwidth follows
// Little's law just as on real hardware.
package cpu

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// OpKind classifies thread operations.
type OpKind int

const (
	// OpCompute spends a fixed number of core cycles.
	OpCompute OpKind = iota
	// OpLoad issues a 64-byte load.
	OpLoad
	// OpStore issues a 64-byte store.
	OpStore
	// OpBarrier waits until every memory operation this thread issued has
	// completed.
	OpBarrier
)

// Op is one abstract thread operation.
type Op struct {
	Kind   OpKind
	Cycles int64  // OpCompute: cycles to burn
	Addr   uint64 // OpLoad/OpStore: physical address
	NC     bool   // OpLoad/OpStore: non-cacheable (PIM space, streaming stores)
}

// Program is a pull-based instruction stream. Next returns false when the
// thread has finished.
type Program interface {
	Next() (Op, bool)
}

// ProgramFunc adapts a closure to Program.
type ProgramFunc func() (Op, bool)

// Next implements Program.
func (f ProgramFunc) Next() (Op, bool) { return f() }

// Config parameterizes the processor (Table I).
type Config struct {
	Cores int
	Clock clock.Hz
	// LoadBuffers bounds outstanding cacheable misses per core (line-fill
	// buffers; the 64 MSHRs of Table I are never the binding constraint).
	LoadBuffers int
	// StoreBuffers bounds outstanding non-cacheable stores per core
	// (write-combining buffers).
	StoreBuffers int
	// Quantum is the OS scheduler's round-robin time slice (Section V:
	// threads preempted every 1.5 ms).
	Quantum clock.Picos
}

// DefaultConfig is the Table I host processor.
func DefaultConfig() Config {
	return Config{
		Cores: 8,
		Clock: 3200 * clock.MHz,
		// 12 L1 line-fill buffers plus the L2 streaming prefetcher's
		// in-flight lines: ~20 useful outstanding misses per core on a
		// sequential stream.
		LoadBuffers:  20,
		StoreBuffers: 12,
		Quantum:      clock.Picos(1.5 * float64(clock.Millisecond)),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Clock <= 0 || c.LoadBuffers <= 0 || c.StoreBuffers <= 0 {
		return fmt.Errorf("cpu: non-positive config field: %+v", c)
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("cpu: non-positive quantum")
	}
	return nil
}

// Thread is one software thread.
type Thread struct {
	ID   int
	Name string

	prog Program

	// pending is an op that could not issue yet (resource or queue full).
	pending *Op
	haveOp  bool

	loadsOut  int // in-flight cacheable loads / fills
	storesOut int // in-flight non-cacheable stores
	totalOut  int // all in-flight memory ops (for barriers)

	core    *Core // nil while descheduled
	blocked bool  // waiting on a completion event
	done    bool
	onExit  func()

	// computeUntil marks the end of an in-progress compute span so that a
	// preemption can carry the unfinished remainder over to the thread's
	// next dispatch instead of losing it.
	computeUntil clock.Picos

	// MemOps counts issued memory operations (for reports).
	MemOps uint64
}

// Outstanding reports the thread's in-flight memory operations.
func (t *Thread) Outstanding() int { return t.totalOut }

// Done reports whether the program finished.
func (t *Thread) Done() bool { return t.done }

// Core is one hardware context.
type Core struct {
	id     int
	cpu    *CPU
	thread *Thread
	// kickEv is the core's standing execution-step event; resumeEv is its
	// standing end-of-compute-span event. Both are rescheduled in place,
	// so the per-op scheduling path performs no allocation.
	kickEv   sim.Event
	resumeEv sim.Event
	resumeT  *Thread // thread the pending resumeEv belongs to
	// busy tracks cumulative busy time for utilization accounting.
	busy    clock.Picos
	lastRun clock.Picos
}

// Thread returns the thread currently scheduled on the core, or nil.
func (c *Core) Thread() *Thread { return c.thread }

// CPU is the processor: cores plus the OS scheduler.
type CPU struct {
	eng *sim.Engine
	cfg Config
	dom clock.Domain
	mem mem.Port

	cores   []*Core
	ready   []*Thread // runnable threads not on a core
	nextID  int
	alive   int // spawned minus exited
	stopped bool
}

// New builds the processor. The quantum ticker starts with the first
// spawned thread and stops when every thread has exited.
func New(eng *sim.Engine, cfg Config, port mem.Port) *CPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &CPU{eng: eng, cfg: cfg, dom: clock.NewDomain(cfg.Clock), mem: port}
	for i := 0; i < cfg.Cores; i++ {
		core := &Core{id: i, cpu: c}
		core.kickEv.Init(sim.HandlerFunc(core.advance))
		core.resumeEv.Init(sim.HandlerFunc(core.resume))
		c.cores = append(c.cores, core)
	}
	return c
}

// Config reports the processor configuration.
func (c *CPU) Config() Config { return c.cfg }

// Domain reports the core clock domain.
func (c *CPU) Domain() clock.Domain { return c.dom }

// ActiveCores counts cores currently running a thread.
func (c *CPU) ActiveCores() int {
	n := 0
	for _, core := range c.cores {
		if core.thread != nil {
			n++
		}
	}
	return n
}

// Runnable counts live threads (running plus ready).
func (c *CPU) Runnable() int { return c.alive }

// Spawn creates a thread and schedules it. onExit, if non-nil, runs when
// the program finishes.
func (c *CPU) Spawn(name string, prog Program, onExit func()) *Thread {
	t := &Thread{ID: c.nextID, Name: name, prog: prog, onExit: onExit}
	c.nextID++
	if c.alive == 0 {
		c.startQuantumTicker()
	}
	c.alive++
	if core := c.idleCore(); core != nil {
		c.assign(core, t)
	} else {
		c.ready = append(c.ready, t)
	}
	return t
}

func (c *CPU) idleCore() *Core {
	for _, core := range c.cores {
		if core.thread == nil {
			return core
		}
	}
	return nil
}

func (c *CPU) assign(core *Core, t *Thread) {
	core.thread = t
	core.lastRun = c.eng.Now()
	t.core = core
	core.kick()
}

// startQuantumTicker begins round-robin preemption; it self-terminates
// when no threads remain.
func (c *CPU) startQuantumTicker() {
	c.eng.Ticker(c.cfg.Quantum, func(now clock.Picos) bool {
		if c.alive == 0 {
			return false
		}
		c.rotate()
		return true
	})
}

// rotate implements the OS's fairness-first round-robin policy: at every
// quantum boundary all running threads move to the tail of the ready
// queue and the head of the queue is dispatched. When there are no more
// threads than cores this is a no-op reassignment.
func (c *CPU) rotate() {
	if len(c.ready) == 0 {
		return // nobody waiting: current threads keep their cores
	}
	now := c.eng.Now()
	for _, core := range c.cores {
		if core.thread != nil {
			t := core.thread
			core.accountBusy(now)
			// Preserve the unfinished part of an in-progress compute span.
			if t.computeUntil > now {
				op := Op{Kind: OpCompute, Cycles: c.dom.CyclesCeil(t.computeUntil - now)}
				t.pending = &op
				t.haveOp = true
			}
			t.computeUntil = 0
			core.thread = nil
			t.core = nil
			c.ready = append(c.ready, t)
		}
	}
	for _, core := range c.cores {
		if len(c.ready) == 0 {
			break
		}
		t := c.ready[0]
		c.ready = c.ready[1:]
		c.assign(core, t)
	}
}

// exit retires a finished thread and dispatches the next ready one.
func (c *CPU) exit(core *Core) {
	t := core.thread
	core.accountBusy(c.eng.Now())
	core.thread = nil
	t.core = nil
	t.done = true
	c.alive--
	if len(c.ready) > 0 {
		next := c.ready[0]
		c.ready = c.ready[1:]
		c.assign(core, next)
	}
	if t.onExit != nil {
		t.onExit()
	}
}

func (core *Core) accountBusy(now clock.Picos) {
	core.busy += now - core.lastRun
	core.lastRun = now
}

// BusyTime reports the core's cumulative scheduled time.
func (core *Core) BusyTime() clock.Picos {
	b := core.busy
	if core.thread != nil {
		b += core.cpu.eng.Now() - core.lastRun
	}
	return b
}

// Cores exposes the core array (read-only use).
func (c *CPU) Cores() []*Core { return c.cores }

// kick schedules the core's execution step if not already pending.
func (core *Core) kick() {
	if core.kickEv.Scheduled() {
		return
	}
	core.cpu.eng.Schedule(&core.kickEv, core.cpu.eng.Now())
}

// advance runs the scheduled thread until it blocks on a resource, starts
// a compute span, or exits.
func (core *Core) advance(clock.Picos) {
	t := core.thread
	if t == nil {
		return
	}
	cpu := core.cpu
	if cpu.eng.Now() < t.computeUntil {
		return // spurious wake during a compute span
	}
	t.computeUntil = 0
	for {
		if !t.haveOp {
			op, ok := t.prog.Next()
			if !ok {
				cpu.exit(core)
				return
			}
			t.pending = &op
			t.haveOp = true
		}
		op := t.pending
		switch op.Kind {
		case OpCompute:
			t.haveOp = false
			if op.Cycles > 0 {
				d := cpu.dom.Duration(op.Cycles)
				t.computeUntil = cpu.eng.Now() + d
				// Reschedule the standing resume event: a pending resume
				// for a preempted previous occupant is dead anyway (it
				// no-ops when the thread no longer owns the core).
				core.resumeT = t
				cpu.eng.ScheduleAfter(&core.resumeEv, d)
				return
			}
		case OpBarrier:
			if t.totalOut > 0 {
				t.blocked = true
				return
			}
			t.haveOp = false
		case OpLoad, OpStore:
			// Loads occupy line-fill buffers; stores occupy store /
			// write-combining buffers. A full buffer stalls the thread
			// until a completion frees a slot.
			if op.Kind == OpLoad && t.loadsOut >= cpu.cfg.LoadBuffers ||
				op.Kind == OpStore && t.storesOut >= cpu.cfg.StoreBuffers {
				t.blocked = true
				return
			}
			req := &mem.Req{
				Addr:      mem.LineAlign(op.Addr),
				Cacheable: !op.NC,
				SrcID:     t.ID,
			}
			if op.Kind == OpStore {
				req.Kind = mem.Write
			}
			req.OnDone = t.completion(op.Kind, cpu)
			if !cpu.mem.TryEnqueue(req) {
				cpu.mem.WaitSpace(func() { core.kickIfMine(t) })
				return
			}
			if op.Kind == OpLoad {
				t.loadsOut++
			} else {
				t.storesOut++
			}
			t.totalOut++
			t.MemOps++
			t.haveOp = false
		default:
			panic(fmt.Sprintf("cpu: unknown op kind %d", op.Kind))
		}
	}
}

// resume continues the compute-span thread if it still owns this core
// when the event fires (it may have been preempted meanwhile; the ready
// thread will re-run on its next dispatch).
func (core *Core) resume(clock.Picos) {
	if core.thread == core.resumeT {
		core.kick()
	}
}

// kickIfMine re-kicks the core if thread t is still scheduled on it.
func (core *Core) kickIfMine(t *Thread) {
	if core.thread == t {
		core.kick()
	}
}

// completion builds the OnDone callback for a memory op of the given kind.
func (t *Thread) completion(kind OpKind, cpu *CPU) func(clock.Picos) {
	return func(clock.Picos) {
		if kind == OpLoad {
			t.loadsOut--
		} else {
			t.storesOut--
		}
		t.totalOut--
		if t.blocked {
			t.blocked = false
			if t.core != nil {
				t.core.kick()
			}
		}
	}
}

// Now reports the current simulated time (convenience for workload
// orchestrators built on the CPU).
func (c *CPU) Now() clock.Picos { return c.eng.Now() }
