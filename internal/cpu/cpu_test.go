package cpu

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// fakeMem is a fixed-latency memory port with optional admission control.
type fakeMem struct {
	eng      *sim.Engine
	latency  clock.Picos
	accepts  int // if >= 0, number of TryEnqueues to accept before failing once
	waiters  []func()
	count    int
	inFlight int
	maxIn    int
}

func (f *fakeMem) TryEnqueue(r *mem.Req) bool {
	if f.accepts == 0 {
		f.accepts = -1 // fail exactly once, then accept forever
		return false
	}
	if f.accepts > 0 {
		f.accepts--
	}
	f.count++
	f.inFlight++
	if f.inFlight > f.maxIn {
		f.maxIn = f.inFlight
	}
	done := r.OnDone
	f.eng.After(f.latency, func() {
		f.inFlight--
		if done != nil {
			done(f.eng.Now())
		}
	})
	return true
}

func (f *fakeMem) WaitSpace(fn func()) { f.eng.After(f.latency, fn) }

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	return cfg
}

// seqProgram yields a fixed slice of ops.
func seqProgram(ops []Op) Program {
	i := 0
	return ProgramFunc(func() (Op, bool) {
		if i >= len(ops) {
			return Op{}, false
		}
		op := ops[i]
		i++
		return op, true
	})
}

func TestComputeOpTiming(t *testing.T) {
	eng := sim.New()
	fm := &fakeMem{eng: eng, latency: 10 * clock.Nanosecond, accepts: -1}
	c := New(eng, testCfg(), fm)
	var endAt clock.Picos
	c.Spawn("w", seqProgram([]Op{{Kind: OpCompute, Cycles: 3200}}), func() { endAt = eng.Now() })
	eng.Run()
	// 3200 cycles at 3.2 GHz = 1 us (312 ps truncated period => 998.4 ns).
	want := c.Domain().Duration(3200)
	if endAt != want {
		t.Errorf("compute end = %v, want %v", endAt, want)
	}
}

func TestBarrierWaitsForAllLoads(t *testing.T) {
	eng := sim.New()
	lat := 50 * clock.Nanosecond
	fm := &fakeMem{eng: eng, latency: lat, accepts: -1}
	c := New(eng, testCfg(), fm)
	ops := []Op{
		{Kind: OpLoad, Addr: 0},
		{Kind: OpLoad, Addr: 64},
		{Kind: OpLoad, Addr: 128},
		{Kind: OpBarrier},
	}
	var endAt clock.Picos
	c.Spawn("w", seqProgram(ops), func() { endAt = eng.Now() })
	eng.Run()
	if endAt < lat {
		t.Errorf("barrier released at %v, before load latency %v", endAt, lat)
	}
	if fm.count != 3 {
		t.Errorf("issued %d loads, want 3", fm.count)
	}
}

// Load buffers bound the outstanding requests (Little's law): with L
// buffers and latency T, issuing N >> L loads takes ~N*T/L.
func TestLoadBuffersBoundOutstanding(t *testing.T) {
	eng := sim.New()
	cfg := testCfg()
	cfg.LoadBuffers = 4
	fm := &fakeMem{eng: eng, latency: 100 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	const n = 200
	ops := make([]Op, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, Op{Kind: OpLoad, Addr: uint64(i * 64)})
	}
	ops = append(ops, Op{Kind: OpBarrier})
	var endAt clock.Picos
	c.Spawn("w", seqProgram(ops), func() { endAt = eng.Now() })
	eng.Run()
	if fm.maxIn > cfg.LoadBuffers {
		t.Errorf("outstanding peaked at %d, cap is %d", fm.maxIn, cfg.LoadBuffers)
	}
	want := clock.Picos(n / 4 * 100 * 1000) // n*T/L
	if endAt < want*95/100 || endAt > want*115/100 {
		t.Errorf("streaming time = %v, want ~%v (Little's law)", endAt, want)
	}
}

func TestStoreBuffersIndependentOfLoadBuffers(t *testing.T) {
	eng := sim.New()
	cfg := testCfg()
	cfg.LoadBuffers = 2
	cfg.StoreBuffers = 8
	fm := &fakeMem{eng: eng, latency: 100 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	ops := make([]Op, 0, 16)
	for i := 0; i < 16; i++ {
		ops = append(ops, Op{Kind: OpStore, Addr: uint64(i * 64), NC: true})
	}
	ops = append(ops, Op{Kind: OpBarrier})
	c.Spawn("w", seqProgram(ops), nil)
	eng.Run()
	if fm.maxIn != 8 {
		t.Errorf("NC store outstanding peaked at %d, want StoreBuffers=8", fm.maxIn)
	}
}

func TestQueueFullRetriesViaWaitSpace(t *testing.T) {
	eng := sim.New()
	fm := &fakeMem{eng: eng, latency: 10 * clock.Nanosecond, accepts: 0} // first enqueue fails
	c := New(eng, testCfg(), fm)
	finished := false
	c.Spawn("w", seqProgram([]Op{{Kind: OpLoad, Addr: 0}, {Kind: OpBarrier}}), func() { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("thread never finished after queue-full retry")
	}
	if fm.count != 1 {
		t.Errorf("issued %d requests, want 1", fm.count)
	}
}

func TestMoreThreadsThanCoresAllFinish(t *testing.T) {
	eng := sim.New()
	cfg := testCfg() // 2 cores
	fm := &fakeMem{eng: eng, latency: 20 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	finished := 0
	for i := 0; i < 7; i++ {
		ops := []Op{
			{Kind: OpCompute, Cycles: 1000},
			{Kind: OpLoad, Addr: uint64(i) * 4096},
			{Kind: OpBarrier},
		}
		c.Spawn("w", seqProgram(ops), func() { finished++ })
	}
	eng.Run()
	if finished != 7 {
		t.Errorf("finished %d of 7 threads", finished)
	}
}

// With more compute-bound threads than cores, the round-robin quantum must
// timeslice them: total wall time ~ totalWork / cores, and every thread
// finishes despite oversubscription.
func TestRoundRobinTimeslicing(t *testing.T) {
	eng := sim.New()
	cfg := testCfg() // 2 cores
	cfg.Quantum = clock.Millisecond
	fm := &fakeMem{eng: eng, latency: 20 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	// 4 threads x 16 ms of compute each (in 0.5 ms slices so preemption
	// boundaries interleave them) on 2 cores => ~32 ms total.
	perThread := 16 * clock.Millisecond
	sliceCycles := c.Domain().Cycles(clock.Picos(clock.Millisecond / 2))
	nSlices := int(perThread / (clock.Millisecond / 2))
	var lastEnd clock.Picos
	var firstEnd clock.Picos
	finished := 0
	for i := 0; i < 4; i++ {
		ops := make([]Op, nSlices)
		for j := range ops {
			ops[j] = Op{Kind: OpCompute, Cycles: sliceCycles}
		}
		c.Spawn("w", seqProgram(ops), func() {
			finished++
			if firstEnd == 0 {
				firstEnd = eng.Now()
			}
			lastEnd = eng.Now()
		})
	}
	eng.Run()
	if finished != 4 {
		t.Fatalf("finished %d of 4", finished)
	}
	want := 32 * clock.Millisecond
	if lastEnd < want*9/10 || lastEnd > want*12/10 {
		t.Errorf("total time = %v, want ~%v", lastEnd, want)
	}
	// Fair RR: all four threads should finish in the same final quantum
	// region, not two-then-two far apart.
	if lastEnd-firstEnd > 4*clock.Millisecond {
		t.Errorf("finish spread = %v; round-robin should keep threads in lockstep", lastEnd-firstEnd)
	}
}

func TestActiveCoresAccounting(t *testing.T) {
	eng := sim.New()
	cfg := testCfg()
	fm := &fakeMem{eng: eng, latency: 20 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	if c.ActiveCores() != 0 {
		t.Error("fresh CPU has active cores")
	}
	c.Spawn("w", seqProgram([]Op{{Kind: OpCompute, Cycles: 32000}}), nil)
	if c.ActiveCores() != 1 {
		t.Errorf("ActiveCores = %d after one spawn, want 1", c.ActiveCores())
	}
	eng.Run()
	if c.ActiveCores() != 0 {
		t.Errorf("ActiveCores = %d after drain, want 0", c.ActiveCores())
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	eng := sim.New()
	cfg := testCfg()
	fm := &fakeMem{eng: eng, latency: 20 * clock.Nanosecond, accepts: -1}
	c := New(eng, cfg, fm)
	cycles := c.Domain().Cycles(2 * clock.Millisecond)
	c.Spawn("w", seqProgram([]Op{{Kind: OpCompute, Cycles: cycles}}), nil)
	eng.Run()
	total := clock.Picos(0)
	for _, core := range c.Cores() {
		total += core.BusyTime()
	}
	if total < 19*clock.Millisecond/10 || total > 21*clock.Millisecond/10 {
		t.Errorf("busy time = %v, want ~2ms", total)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("Cores=0 accepted")
	}
	bad = DefaultConfig()
	bad.Quantum = 0
	if bad.Validate() == nil {
		t.Error("Quantum=0 accepted")
	}
}

func TestDefaultQuantumIs1500us(t *testing.T) {
	if q := DefaultConfig().Quantum; q != 1500*clock.Microsecond {
		t.Errorf("quantum = %v, want 1.5ms (Section V)", q)
	}
}
