// Job lifecycle: one accepted submission, from queued through running
// to done or failed. All mutable job state is guarded by the server's
// mutex; watchers (the NDJSON event stream) block on a
// closed-and-replaced change channel instead of polling.

package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/harness"
	"repro/internal/serve/api"
	"repro/internal/sweep"
)

// job is one accepted experiment run. Identical submissions share a
// job: the dedup map keys jobs by their serve-level cache key, so a
// job's ID names the computation, not the HTTP request that first
// triggered it.
type job struct {
	id         string
	key        string
	experiment string
	scale      string

	// Guarded by Server.mu.
	state   string
	done    int
	total   int
	cached  bool
	errMsg  string
	payload []byte // marshaled api.JobResult, served verbatim
	// changed closes on every state or progress transition and is
	// replaced with a fresh channel; watchers grab the current channel
	// under the lock and block on its close.
	changed chan struct{}
}

// status snapshots the job as wire JobStatus. Caller holds Server.mu.
func (j *job) status() api.JobStatus {
	return api.JobStatus{
		Schema:     api.SchemaVersion,
		ID:         j.id,
		Key:        j.key,
		Experiment: j.experiment,
		Scale:      j.scale,
		State:      j.state,
		Progress:   api.Progress{Done: j.done, Total: j.total},
		Cached:     j.cached,
		Error:      j.errMsg,
	}
}

// event snapshots the job as one NDJSON stream line. Caller holds
// Server.mu.
func (j *job) event() api.JobEvent {
	return api.JobEvent{
		Schema:   api.SchemaVersion,
		ID:       j.id,
		State:    j.state,
		Progress: api.Progress{Done: j.done, Total: j.total},
		Error:    j.errMsg,
	}
}

// terminal reports whether the job has finished (either way).
func (j *job) terminal() bool { return j.state == api.StateDone || j.state == api.StateFailed }

// notifyLocked wakes every watcher of j. Caller holds Server.mu.
func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// runJob executes one non-cached job: acquire a worker slot, compute
// the experiment through the job's runner, package the structured
// result, optionally write it back to the serve-level store, and
// publish. Runs on its own goroutine; panics from the compute layer
// (sweep re-raises job panics) fail the job instead of killing the
// server.
func (s *Server) runJob(j *job, r *harness.Runner, e harness.Experiment, sc harness.Scale, writeBack bool) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	defer func() {
		if p := recover(); p != nil {
			s.fail(j, fmt.Sprintf("experiment panicked: %v", p))
		}
	}()
	s.setState(j, api.StateRunning)
	res, err := harness.ComputeResult(r, e, sc)
	if err != nil {
		s.fail(j, err.Error())
		return
	}
	payload, err := json.Marshal(api.JobResult{Schema: api.SchemaVersion, Key: j.key, Result: res})
	if err != nil {
		s.fail(j, fmt.Sprintf("encode result: %v", err))
		return
	}
	if writeBack && s.cfg.Store != nil {
		s.cfg.Store.Put(j.key, payload)
	}
	s.finish(j, payload)
}

// setState transitions a job's lifecycle state.
func (s *Server) setState(j *job, state string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.state = state
	j.notifyLocked()
}

// tick advances a job's progress counter by one plan job, clamped to
// the plan size (single-flight waiters and shared design points can
// make per-point accounting approximate; completion always reports
// total/total).
func (s *Server) tick(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.done < j.total {
		j.done++
		j.notifyLocked()
	}
}

// finish publishes a job's result payload and marks it done.
func (s *Server) finish(j *job, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.payload = payload
	j.done = j.total
	j.state = api.StateDone
	j.notifyLocked()
}

// fail marks a job failed with an error message.
func (s *Server) fail(j *job, msg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.errMsg = msg
	j.state = api.StateFailed
	j.notifyLocked()
}

// progressCache is the sweep.Cache a job's runner computes through: it
// delegates to the per-design-point store (which may be absent) and
// ticks the job's progress on every point that resolves here — a cache
// hit or a computed-and-stored result. Wrapping even a nil inner cache
// keeps every serve job on the MapCached path, so the process-wide
// single-flight table dedupes shared design points across concurrent
// jobs regardless of cache mode.
type progressCache struct {
	s     *Server
	j     *job
	inner sweep.Cache
}

func (c progressCache) Get(key string) ([]byte, bool) {
	if c.inner == nil {
		return nil, false
	}
	payload, ok := c.inner.Get(key)
	if ok {
		c.s.tick(c.j)
	}
	return payload, ok
}

func (c progressCache) Put(key string, payload []byte) {
	if c.inner != nil {
		c.inner.Put(key, payload)
	}
	c.s.tick(c.j)
}

// roCache exposes a store read-only: per-request "ro" mode on a
// read-write server store.
type roCache struct{ inner sweep.Cache }

func (c roCache) Get(key string) ([]byte, bool) { return c.inner.Get(key) }
func (c roCache) Put(string, []byte)            {}
