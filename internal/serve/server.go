// Package serve is the simulation-as-a-service front end: an HTTP
// server that accepts experiment jobs — (experiment, scale, runner
// topology, cache mode) — validates them against the harness registry,
// dedupes identical in-flight and completed submissions through the
// content-addressed result cache *before* they reach a worker, admission-
// controls a bounded sweep-backed worker pool, and streams per-job
// progress plus the final structured result.
//
// The serving contract rides the repository's two load-bearing
// invariants. Determinism: identical (experiment, scale, config) inputs
// produce byte-identical results at every worker count and lane
// topology, so a cached payload is indistinguishable from a fresh
// computation and the server can serve stored bytes verbatim.
// Content-addressed keys: a job's serve key binds the code version and
// every planned design-point key (themselves topology-neutral since the
// fingerprint masks result-neutral fields), so "same request" is
// decidable before simulating — two submissions with equal keys cost
// one simulation, whether they arrive concurrently (single-flight on
// the in-flight job) or a week apart (the completed-result store).
//
// This package deliberately never imports internal/system (enforced by
// cmd/pimmu-lint): the harness Runner is its only path to simulation.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/serve/api"
	"repro/internal/sweep"
)

// Config sizes a Server.
type Config struct {
	// Store is the content-addressed result store backing both dedup
	// levels: completed serve jobs (keyed by serve key) and per-design-
	// point sweep results (keyed by plan keys). nil runs the server
	// memoryless — in-flight dedup still applies.
	Store *resultcache.Store
	// MaxActive bounds concurrently simulating jobs (default 2).
	MaxActive int
	// MaxQueued bounds accepted-but-not-yet-running jobs; submissions
	// beyond MaxActive+MaxQueued are rejected with 429 (default 8).
	MaxQueued int
	// Workers is the default sweep worker count per job (0 = the
	// process-wide sweep default); requests may override it.
	Workers int
}

// Server implements the /v1 job API. Construct with New, serve via
// Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux
	sem chan struct{} // worker slots: len == running jobs

	mu     sync.Mutex
	jobs   map[string]*job // by ID
	byKey  map[string]*job // dedup: serve key -> job (in-flight or done)
	nextID int
}

// New builds a Server with cfg's bounds applied (zero values select the
// documented defaults).
func New(cfg Config) *Server {
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 8
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxActive),
		jobs:  make(map[string]*job),
		byKey: make(map[string]*job),
	}
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return s
}

// Handler is the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON writes one JSON body with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeErr writes the uniform error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.Error{Schema: api.SchemaVersion, Error: fmt.Sprintf(format, args...)})
}

// handleExperiments lists the registry in paper order.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	list := api.ExperimentList{Schema: api.SchemaVersion}
	for _, e := range harness.All() {
		list.Experiments = append(list.Experiments, api.ExperimentInfo{Name: e.Name, Brief: e.Brief})
	}
	writeJSON(w, http.StatusOK, list)
}

// accepted is a validated submission resolved to everything needed to
// run or dedupe it.
type accepted struct {
	exp         harness.Experiment
	sc          harness.Scale
	runner      *harness.Runner
	plan        harness.Plan
	key         string
	mode        resultcache.Mode
	pointShared sweep.Cache // mode-wrapped per-design-point store (nil when off)
}

// validate turns a JobRequest into an accepted run or a client error.
func (s *Server) validate(req api.JobRequest) (accepted, error) {
	var a accepted
	if err := api.CheckSchema(req.Schema); err != nil {
		return a, err
	}
	exp, err := harness.Lookup(req.Experiment)
	if err != nil {
		return a, err
	}
	sc, err := harness.ParseScale(req.Scale)
	if err != nil {
		return a, err
	}
	sh, cl, _, err := harness.ResolveTopology(req.Shards, req.CoreLanes)
	if err != nil {
		return a, err
	}
	mode := req.Cache
	if mode == "" {
		mode = "rw"
	}
	parsedMode, err := resultcache.ParseMode(mode)
	if err != nil {
		return a, err
	}
	if req.Workers < 0 {
		return a, fmt.Errorf("workers %d (want >= 0)", req.Workers)
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	a.exp, a.sc = exp, sc
	a.runner = &harness.Runner{Shards: sh, CoreLanes: cl, Workers: workers}
	a.plan = exp.Plan(a.runner, sc)
	a.key = serveKey(exp.Name, sc, a.plan)
	a.mode = parsedMode
	a.pointShared = s.pointCache(parsedMode)
	return a, nil
}

// serveKey is the dedup identity of one submission: the code version,
// the experiment, the scale, and every planned design-point key. Plan
// keys are topology-neutral (the config fingerprint masks result-
// neutral fields), so submissions differing only in shards/core-lanes/
// workers share a key — and therefore a simulation.
func serveKey(experiment string, sc harness.Scale, p harness.Plan) string {
	keys := make([]string, len(p.Jobs))
	for i, j := range p.Jobs {
		keys[i] = j.Key
	}
	return resultcache.KeyOf("serve/v1", resultcache.CodeVersion(),
		experiment, sc.String(), strings.Join(keys, "\x00"))
}

// pointCache applies a request's cache mode to the server's store for
// per-design-point reads/writes: off disables it entirely, ro reads
// through without writing, rw passes through (the store's own mode
// still applies — an ro-opened store never writes).
func (s *Server) pointCache(mode resultcache.Mode) sweep.Cache {
	if s.cfg.Store == nil || mode == resultcache.Off {
		return nil
	}
	if mode == resultcache.ReadOnly {
		return roCache{inner: s.cfg.Store}
	}
	return s.cfg.Store
}

// handleSubmit accepts one job: validate, dedupe against in-flight and
// completed work, admission-check, then start. Responses: 200 for a
// dedup attach or a store hit (the work already exists), 202 for a
// newly started job, 400 for invalid requests, 429 over capacity.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	a, err := s.validate(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	// Level 1: an identical job is already accepted (queued, running, or
	// completed this process) — attach to it.
	if j, ok := s.byKey[a.key]; ok {
		st := j.status()
		st.Deduped = true
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}
	// Level 2: an identical job completed in some earlier process — the
	// store holds its full payload; serve it without simulating. Gated
	// on the request's cache mode: "off" forces a fresh computation.
	if a.mode != resultcache.Off && s.cfg.Store != nil {
		if payload, ok := s.cfg.Store.Get(a.key); ok {
			j := s.newJobLocked(a)
			j.state = api.StateDone
			j.cached = true
			j.done = j.total
			j.payload = payload
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, j.status())
			return
		}
	}
	// Admission: bound accepted-but-unfinished jobs.
	if pending := s.pendingLocked(); pending >= s.cfg.MaxActive+s.cfg.MaxQueued {
		s.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests,
			"at capacity: %d jobs pending (max %d)", pending, s.cfg.MaxActive+s.cfg.MaxQueued)
		return
	}
	j := s.newJobLocked(a)
	s.mu.Unlock()

	a.runner.Cache = progressCache{s: s, j: j, inner: a.pointShared}
	go s.runJob(j, a.runner, a.exp, a.sc, a.mode == resultcache.ReadWrite)
	writeJSON(w, http.StatusAccepted, s.statusOf(j))
}

// newJobLocked registers a fresh queued job for a. Caller holds s.mu.
func (s *Server) newJobLocked(a accepted) *job {
	s.nextID++
	j := &job{
		id:         fmt.Sprintf("job-%d", s.nextID),
		key:        a.key,
		experiment: a.exp.Name,
		scale:      a.sc.String(),
		state:      api.StateQueued,
		total:      len(a.plan.Jobs),
		changed:    make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.byKey[a.key] = j
	return j
}

// pendingLocked counts accepted-but-unfinished jobs. Caller holds s.mu.
func (s *Server) pendingLocked() int {
	n := 0
	for _, j := range s.jobs {
		if !j.terminal() {
			n++
		}
	}
	return n
}

// statusOf snapshots a job's wire status.
func (s *Server) statusOf(j *job) api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.status()
}

// lookupJob resolves a path ID, writing 404 on miss.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j, ok
}

// handleStatus reports one job's lifecycle position.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

// handleResult serves a finished job's payload verbatim — the bytes are
// the stored/marshaled api.JobResult, identical for every submission
// that shares the job's key.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	state, errMsg, payload := j.state, j.errMsg, j.payload
	s.mu.Unlock()
	switch state {
	case api.StateFailed:
		writeErr(w, http.StatusInternalServerError, "job failed: %s", errMsg)
	case api.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	default:
		writeErr(w, http.StatusConflict, "job is %s; result not ready", state)
	}
}

// handleEvents streams a job's transitions as NDJSON JobEvent lines,
// flushing each, until the job reaches a terminal state or the client
// disconnects. Watchers block on the job's change channel — no polling.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		s.mu.Lock()
		ev := j.event()
		terminal := j.terminal()
		ch := j.changed
		s.mu.Unlock()
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}
