// Package api is the versioned wire contract of the pimmu-serve job
// API: every request and response body carries an explicit schema field
// checked against SchemaVersion, trace-codec style — a mismatched
// schema is rejected up front instead of being half-understood. The
// package is deliberately pure: it imports nothing from this repository
// (enforced by cmd/pimmu-lint), so CLIs, the server, and future
// distributed-sweep workers all speak the same types without dragging
// in the simulator.
//
// The structured ExperimentResult is the canonical form of every
// experiment's output; the rendered text table is one field of it, not
// a separate artifact. That is what lets the same payload serve HTTP
// responses, `-format json` on the CLIs, and cached replays
// byte-identically.
package api

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion names the wire schema this package speaks. Bump it when
// a field changes meaning or shape; additive optional fields do not
// require a bump.
const SchemaVersion = "pimmu-serve/v1"

// CheckSchema validates a request or payload schema stamp. An empty
// stamp is rejected too: a client that does not say what it speaks
// cannot be assumed compatible.
func CheckSchema(got string) error {
	if got != SchemaVersion {
		return fmt.Errorf("schema %q not supported (this build speaks %q)", got, SchemaVersion)
	}
	return nil
}

// Job states, in lifecycle order. A job moves queued -> running ->
// done|failed; deduped submissions attach to an existing job and
// observe whatever state it is in.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobRequest is the body of POST /v1/jobs: one experiment render at one
// scale under an explicit runner topology and cache mode. Zero values
// select the server's defaults (quick scale, serial engine, rw cache),
// mirroring the CLI flag defaults.
type JobRequest struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	// Scale is "quick" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Shards and CoreLanes take the CLI flag syntax: a count or "auto".
	// They steer how fast the simulation runs, never what it returns —
	// results are byte-identical across topologies by contract.
	Shards    string `json:"shards,omitempty"`
	CoreLanes string `json:"core_lanes,omitempty"`
	// Workers caps the sweep worker pool for this job (0 = server
	// default).
	Workers int `json:"workers,omitempty"`
	// Cache is the result-cache mode for this job: "rw" (default),
	// "ro", or "off". Serve-level dedup of identical submissions happens
	// regardless; this only controls the per-design-point store.
	Cache string `json:"cache,omitempty"`
}

// Progress counts plan jobs finished out of planned. Static experiments
// plan zero jobs and complete at 0/0.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobStatus is the body of GET /v1/jobs/{id} and the POST response: one
// job's position in its lifecycle.
type JobStatus struct {
	Schema     string   `json:"schema"`
	ID         string   `json:"id"`
	Key        string   `json:"key"`
	Experiment string   `json:"experiment"`
	Scale      string   `json:"scale"`
	State      string   `json:"state"`
	Progress   Progress `json:"progress"`
	// Deduped reports that this submission attached to an already
	// accepted identical job instead of starting a new one.
	Deduped bool `json:"deduped,omitempty"`
	// Cached reports that the result was served from the completed-job
	// store without simulating.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// JobEvent is one line of the NDJSON progress stream
// (GET /v1/jobs/{id}/events): a state or progress transition. The
// stream ends after the first done or failed event.
type JobEvent struct {
	Schema   string   `json:"schema"`
	ID       string   `json:"id"`
	State    string   `json:"state"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
}

// ExperimentResult is the canonical structured form of one experiment's
// output: the machine-readable per-design-point results plus the
// deterministic text render of exactly those results. Identical
// (experiment, scale, config) inputs produce byte-identical
// ExperimentResult JSON regardless of worker count or lane topology —
// the server stores and serves the marshaled bytes verbatim.
type ExperimentResult struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	// Scale is empty for CLI operations that have no quick/full axis
	// (pimmu-sim transfers, replay/load runs).
	Scale string `json:"scale,omitempty"`
	// Op carries a non-registry operation's parameters (direction, size,
	// trace identity, load axis); empty for registry experiments, whose
	// identity is (Experiment, Scale).
	Op string `json:"op,omitempty"`
	// Results is the experiment's compute-phase result set, JSON-encoded.
	// Its shape is experiment-specific (the same pure structs the text
	// renderer consumes).
	Results json.RawMessage `json:"results"`
	// Text is the rendered table — byte-identical to what the CLIs print
	// in -format text.
	Text string `json:"text"`
}

// NewResult builds an ExperimentResult from a compute-phase result set
// and its text render, stamping the schema.
func NewResult(experiment, scale string, results any, text string) (ExperimentResult, error) {
	raw, err := json.Marshal(results)
	if err != nil {
		return ExperimentResult{}, fmt.Errorf("encode %s results: %w", experiment, err)
	}
	return ExperimentResult{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Scale:      scale,
		Results:    raw,
		Text:       text,
	}, nil
}

// JobResult is the body of GET /v1/jobs/{id}/result: the dedup key the
// job resolved to and its result.
type JobResult struct {
	Schema string           `json:"schema"`
	Key    string           `json:"key"`
	Result ExperimentResult `json:"result"`
}

// Error is the body of every non-2xx response.
type Error struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
}

// ExperimentInfo is one entry of GET /v1/experiments.
type ExperimentInfo struct {
	Name  string `json:"name"`
	Brief string `json:"brief"`
}

// ExperimentList is the body of GET /v1/experiments.
type ExperimentList struct {
	Schema      string           `json:"schema"`
	Experiments []ExperimentInfo `json:"experiments"`
}
