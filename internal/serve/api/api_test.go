package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckSchema(t *testing.T) {
	if err := CheckSchema(SchemaVersion); err != nil {
		t.Fatalf("current schema rejected: %v", err)
	}
	for _, bad := range []string{"", "pimmu-serve/v0", "pimmu-serve/v2", "v1"} {
		err := CheckSchema(bad)
		if err == nil {
			t.Fatalf("schema %q accepted", bad)
		}
		if !strings.Contains(err.Error(), SchemaVersion) {
			t.Fatalf("mismatch error %q does not name the supported schema", err)
		}
	}
}

func TestNewResultStampsAndEncodes(t *testing.T) {
	type point struct {
		Label string
		Thr   float64
	}
	res, err := NewResult("fig8", "quick", []point{{"a", 1.5}, {"b", 2.0}}, "table\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != SchemaVersion {
		t.Fatalf("schema stamp %q", res.Schema)
	}
	if res.Experiment != "fig8" || res.Scale != "quick" || res.Text != "table\n" {
		t.Fatalf("fields not carried: %+v", res)
	}
	var back []point
	if err := json.Unmarshal(res.Results, &back); err != nil {
		t.Fatalf("results not valid JSON: %v", err)
	}
	if len(back) != 2 || back[0].Label != "a" || back[1].Thr != 2.0 {
		t.Fatalf("results round-trip: %+v", back)
	}
}

func TestNewResultRejectsUnencodableResults(t *testing.T) {
	if _, err := NewResult("x", "quick", func() {}, ""); err == nil {
		t.Fatal("function value encoded")
	}
}

func TestNewResultDeterministicBytes(t *testing.T) {
	// The server stores marshaled result bytes and serves them verbatim;
	// identical inputs must marshal identically.
	type row struct{ A, B float64 }
	build := func() []byte {
		res, err := NewResult("headline", "full", []row{{0.1, 1.0 / 3.0}}, "t")
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(JobResult{Schema: SchemaVersion, Key: "k", Result: res})
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	if a, b := build(), build(); string(a) != string(b) {
		t.Fatalf("identical inputs marshaled differently:\n%s\n%s", a, b)
	}
}
