package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/serve/api"
)

// pinVersion makes the code-version stamp deterministic for one test.
func pinVersion(t *testing.T, v string) {
	t.Helper()
	resultcache.SetCodeVersion(v)
	t.Cleanup(func() { resultcache.SetCodeVersion("") })
}

// openStore opens a read-write store rooted in dir.
func openStore(t *testing.T, dir string) *resultcache.Store {
	t.Helper()
	store, err := resultcache.Open(dir, resultcache.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// startServer boots a test server over a fresh Server with cfg.
func startServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postJob submits a request body and decodes the response as JobStatus
// (on 2xx) or returns the error body text.
func postJob(t *testing.T, ts *httptest.Server, req api.JobRequest) (api.JobStatus, int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode >= 300 {
		return api.JobStatus{}, resp.StatusCode, buf.String()
	}
	var st api.JobStatus
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("decode status (%d): %v\n%s", resp.StatusCode, err, buf.String())
	}
	return st, resp.StatusCode, buf.String()
}

// waitDone polls a job's status until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.StateDone || st.State == api.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// fetchResult reads a finished job's result body verbatim.
func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

func TestServeExperimentList(t *testing.T) {
	ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list api.ExperimentList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Schema != api.SchemaVersion {
		t.Fatalf("schema %q", list.Schema)
	}
	if len(list.Experiments) != len(harness.All()) {
		t.Fatalf("%d experiments listed, registry has %d", len(list.Experiments), len(harness.All()))
	}
	if list.Experiments[0].Name != "table1" || list.Experiments[0].Brief == "" {
		t.Fatalf("first entry %+v", list.Experiments[0])
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	ts := startServer(t, Config{})
	cases := []struct {
		name string
		req  api.JobRequest
		want string // substring of the error body
	}{
		{"schema mismatch", api.JobRequest{Schema: "pimmu-serve/v0", Experiment: "fig8"}, api.SchemaVersion},
		{"schema missing", api.JobRequest{Experiment: "fig8"}, api.SchemaVersion},
		{"unknown experiment near miss", api.JobRequest{Schema: api.SchemaVersion, Experiment: "headlin"},
			`did you mean \"headline\"?`},
		{"bad scale", api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Scale: "huge"}, "unknown scale"},
		{"bad shards", api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Shards: "many"}, "shards"},
		{"core lanes require shards", api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", CoreLanes: "2"}, "CoreLanes"},
		{"bad cache mode", api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Cache: "maybe"}, "cache mode"},
		{"negative workers", api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Workers: -1}, "workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, code, body := postJob(t, ts, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400\n%s", code, body)
			}
			if !strings.Contains(body, tc.want) {
				t.Fatalf("error body %q missing %q", body, tc.want)
			}
			var e api.Error
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Schema != api.SchemaVersion {
				t.Fatalf("error body not a schema-stamped api.Error: %s", body)
			}
		})
	}
}

func TestServeUnknownJob(t *testing.T) {
	ts := startServer(t, Config{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestServeStaticExperiment runs the full submit/status/result/events
// cycle on a plan-zero-jobs experiment (table1) — fast enough for every
// tier — and checks the structured result against a direct harness
// render.
func TestServeStaticExperiment(t *testing.T) {
	pinVersion(t, "serve-test-static")
	ts := startServer(t, Config{Store: openStore(t, t.TempDir())})
	st, code, body := postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "table1"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	if st.Experiment != "table1" || st.Scale != "quick" || st.Key == "" || st.Progress.Total != 0 {
		t.Fatalf("submit status %+v", st)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != api.StateDone {
		t.Fatalf("final state %+v", final)
	}

	var res api.JobResult
	payload := fetchResult(t, ts, st.ID)
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != api.SchemaVersion || res.Key != st.Key {
		t.Fatalf("result envelope %+v", res)
	}
	if err := api.CheckSchema(res.Result.Schema); err != nil {
		t.Fatal(err)
	}
	e, err := harness.Lookup("table1")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := harness.ComputeResult(&harness.Runner{}, e, harness.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Text != direct.Text {
		t.Fatalf("served text differs from direct render:\n%q\n%q", res.Result.Text, direct.Text)
	}

	// The events stream of a finished job emits its terminal event and
	// closes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last api.JobEvent
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("event line %d: %v", lines, err)
		}
	}
	if lines == 0 || last.State != api.StateDone || last.Schema != api.SchemaVersion {
		t.Fatalf("event stream ended after %d lines with %+v", lines, last)
	}

	// An in-process resubmission attaches to the completed job.
	again, code, _ := postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "table1"})
	if code != http.StatusOK || !again.Deduped || again.ID != st.ID {
		t.Fatalf("resubmit (%d) %+v, want dedup onto %s", code, again, st.ID)
	}
}

// TestServeDedupAndTopologyIdentity is the acceptance test: a cold
// submit simulates once; concurrent identical submissions share that
// one job; warm resubmits — including from a fresh server process at a
// different lane topology — serve the stored payload with zero
// additional simulations; and a cold recompute at a different topology
// yields byte-identical response bodies.
func TestServeDedupAndTopologyIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	pinVersion(t, "serve-test-dedup")
	store := openStore(t, t.TempDir())
	ts := startServer(t, Config{Store: store, MaxActive: 2})
	req := api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Scale: "quick", Shards: "1"}

	// Two concurrent identical submissions: exactly one creates the job,
	// the other attaches to it (whichever order the server serializes
	// them in), and both name the same job ID.
	type submission struct {
		st   api.JobStatus
		code int
	}
	results := make([]submission, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code, body := postJob(t, ts, req)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submission %d: status %d: %s", i, code, body)
			}
			results[i] = submission{st, code}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if results[0].st.ID != results[1].st.ID {
		t.Fatalf("concurrent identical submissions made two jobs: %+v vs %+v", results[0].st, results[1].st)
	}
	deduped := 0
	for _, r := range results {
		if r.st.Deduped {
			deduped++
		}
	}
	if deduped != 1 {
		t.Fatalf("%d of 2 submissions flagged deduped, want exactly 1", deduped)
	}

	id := results[0].st.ID
	final := waitDone(t, ts, id)
	if final.State != api.StateDone {
		t.Fatalf("job failed: %+v", final)
	}
	if final.Progress.Done != final.Progress.Total || final.Progress.Total == 0 {
		t.Fatalf("finished progress %+v", final.Progress)
	}
	cold := fetchResult(t, ts, id)
	coldStores := store.Stats().Stores
	// One store per planned design point plus the serve-level payload.
	if want := uint64(final.Progress.Total + 1); coldStores != want {
		t.Fatalf("cold run stored %d entries, want %d (%d plan jobs + serve payload)",
			coldStores, want, final.Progress.Total)
	}

	// Warm resubmit on the same server: attaches in-process, zero new
	// simulation.
	warm, code, _ := postJob(t, ts, req)
	if code != http.StatusOK || !warm.Deduped || warm.ID != id {
		t.Fatalf("warm resubmit (%d) %+v", code, warm)
	}

	// Warm resubmit from a fresh server process sharing the store, at a
	// different topology and worker count: the serve key is topology-
	// neutral, so the stored payload serves without simulating.
	ts2 := startServer(t, Config{Store: store})
	req2 := req
	req2.Shards = "4"
	req2.CoreLanes = "2"
	req2.Workers = 2
	st2, code, body := postJob(t, ts2, req2)
	if code != http.StatusOK {
		t.Fatalf("cross-topology warm submit status %d: %s", code, body)
	}
	if !st2.Cached || st2.State != api.StateDone {
		t.Fatalf("cross-topology warm submit not served from store: %+v", st2)
	}
	warmBody := fetchResult(t, ts2, st2.ID)
	if !bytes.Equal(cold, warmBody) {
		t.Fatalf("stored payload differs from cold body:\n%s\n%s", cold, warmBody)
	}
	if got := store.Stats().Stores; got != coldStores {
		t.Fatalf("warm serving wrote %d new entries", got-coldStores)
	}

	// Cold recompute at a different topology (fresh store, so nothing
	// can be served): the response body must be byte-identical — the
	// determinism contract, visible at the API boundary.
	ts3 := startServer(t, Config{Store: openStore(t, t.TempDir())})
	st3, code, body := postJob(t, ts3, req2)
	if code != http.StatusAccepted {
		t.Fatalf("cold cross-topology submit status %d: %s", code, body)
	}
	if f := waitDone(t, ts3, st3.ID); f.State != api.StateDone {
		t.Fatalf("cross-topology job failed: %+v", f)
	}
	recomputed := fetchResult(t, ts3, st3.ID)
	if !bytes.Equal(cold, recomputed) {
		t.Fatalf("recomputed body at shards=4/core-lanes=2 differs from shards=1 body:\n%s\n%s",
			cold, recomputed)
	}
}

// TestServeCacheOffRecomputes pins the mode contract: cache "off"
// bypasses the store both ways (no read, no write) while in-flight
// dedup still applies.
func TestServeCacheOffRecomputes(t *testing.T) {
	pinVersion(t, "serve-test-off")
	store := openStore(t, t.TempDir())
	ts := startServer(t, Config{Store: store})
	req := api.JobRequest{Schema: api.SchemaVersion, Experiment: "table1", Cache: "off"}
	st, code, body := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	if f := waitDone(t, ts, st.ID); f.State != api.StateDone {
		t.Fatalf("job failed: %+v", f)
	}
	if got := store.Stats().Stores; got != 0 {
		t.Fatalf("cache off wrote %d store entries", got)
	}
	// ro serves reads but never writes. A different scale gives the job
	// its own serve key — the first job would otherwise satisfy this
	// submission via in-process dedup before any store traffic happens
	// (table1 is static, so "full" costs nothing extra).
	req.Cache = "ro"
	req.Scale = "full"
	st2, code, body := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("ro submit status %d: %s", code, body)
	}
	if f := waitDone(t, ts, st2.ID); f.State != api.StateDone {
		t.Fatalf("ro job failed: %+v", f)
	}
	if got := store.Stats().Stores; got != 0 {
		t.Fatalf("cache ro wrote %d store entries", got)
	}
}

// TestServeAdmissionControl pins the 429 path: with one worker slot and
// no queue, a second distinct job is rejected while the first runs.
func TestServeAdmissionControl(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	pinVersion(t, "serve-test-admission")
	// MaxQueued <= 0 selects the default bound, so the zero-queue setup
	// is forced directly (same-package test).
	srv := New(Config{MaxActive: 1})
	srv.cfg.MaxQueued = 0
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first, code, body := postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Shards: "1"})
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d: %s", code, body)
	}
	_, code, body = postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "table1"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429: %s", code, body)
	}
	var e api.Error
	if err := json.Unmarshal([]byte(body), &e); err != nil || !strings.Contains(e.Error, "capacity") {
		t.Fatalf("429 body %q", body)
	}
	if f := waitDone(t, ts, first.ID); f.State != api.StateDone {
		t.Fatalf("first job failed: %+v", f)
	}
	// Capacity freed: the same request is now accepted.
	_, code, body = postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "table1"})
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit status %d: %s", code, body)
	}
}

// TestServeEventsStreamProgress watches a simulating job's NDJSON
// stream end-to-end: states move forward, progress is monotonic, and
// the stream terminates on done.
func TestServeEventsStreamProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	pinVersion(t, "serve-test-events")
	ts := startServer(t, Config{Store: openStore(t, t.TempDir())})
	st, code, body := postJob(t, ts, api.JobRequest{Schema: api.SchemaVersion, Experiment: "fig8", Shards: "1"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	rank := map[string]int{api.StateQueued: 0, api.StateRunning: 1, api.StateDone: 2, api.StateFailed: 2}
	lastRank, lastDone := -1, -1
	var last api.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("event line: %v", err)
		}
		if r := rank[last.State]; r < lastRank {
			t.Fatalf("state went backwards: %+v", last)
		} else {
			lastRank = r
		}
		if last.Progress.Done < lastDone {
			t.Fatalf("progress went backwards: %+v", last)
		}
		lastDone = last.Progress.Done
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != api.StateDone {
		t.Fatalf("stream ended in %+v", last)
	}
	if last.Progress.Done != last.Progress.Total || last.Progress.Total == 0 {
		t.Fatalf("final progress %+v", last.Progress)
	}
}
