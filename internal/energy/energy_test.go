package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.ActPJ = -1
	if bad.Validate() == nil {
		t.Error("negative ActPJ accepted")
	}
}

// An idle second must cost exactly the static power budget.
func TestIdleSecondIsStaticOnly(t *testing.T) {
	p := DefaultParams()
	a := Activity{Wall: clock.Second, Cores: 8, Ranks: 16}
	b := p.Energy(a)
	if b.CoreDynamic != 0 || b.DRAMDynamic != 0 || b.CacheDynamic != 0 {
		t.Error("idle interval accrued dynamic energy")
	}
	wantWatts := (8*2.0 + 8 + 20 + 16*0.095)
	if got := p.Power(a); math.Abs(got-wantWatts) > 0.01 {
		t.Errorf("idle power = %.3f W, want %.3f W", got, wantWatts)
	}
}

// A fully busy 8-core AVX transfer must land near the paper's ~70 W
// system power (Fig. 4).
func TestBusyTransferPowerNearPaper(t *testing.T) {
	p := DefaultParams()
	// One second, all 8 cores busy, transfer moving ~9 GB/s through DRAM:
	// ~140M reads + 140M writes + proportional ACTs.
	a := Activity{
		Wall:     clock.Second,
		CoreBusy: 8 * clock.Second,
		Cores:    8,
		Ranks:    16,
		Reads:    140e6,
		Writes:   140e6,
		Acts:     10e6,
		Refs:     2e6,
	}
	got := p.Power(a)
	if got < 55 || got > 80 {
		t.Errorf("busy transfer power = %.1f W, want ~65-70 W (paper Fig. 4)", got)
	}
}

// Processor-side (core+cache+uncore) energy must dominate DRAM energy for
// a busy transfer — the premise behind Fig. 15b's conclusion that energy
// tracks duration.
func TestProcessorSideDominates(t *testing.T) {
	p := DefaultParams()
	a := Activity{
		Wall: clock.Second, CoreBusy: 8 * clock.Second, Cores: 8, Ranks: 16,
		Reads: 140e6, Writes: 140e6, Acts: 10e6, Refs: 2e6, LLCAccesses: 140e6,
	}
	b := p.Energy(a)
	proc := b.CoreDynamic + b.CoreStatic + b.CacheDynamic + b.CacheStatic
	dramSide := b.DRAMDynamic + b.DRAMStatic
	if proc <= dramSide {
		t.Errorf("processor side %.2f J <= DRAM side %.2f J; Fig. 15b premise broken", proc, dramSide)
	}
}

// The Base+D phenomenon: a DCE transfer that takes 3x longer than the
// baseline must cost more energy even though it uses no CPU cores.
func TestSlowerDMACostsMoreEnergy(t *testing.T) {
	p := DefaultParams()
	bytes := uint64(64 << 20)
	lines := bytes / 64
	baseline := p.Energy(Activity{
		Wall: 10 * clock.Millisecond, CoreBusy: 80 * clock.Millisecond,
		Cores: 8, Ranks: 16,
		Reads: lines, Writes: lines, Acts: lines / 16,
	})
	slowDMA := p.Energy(Activity{
		Wall:  30 * clock.Millisecond, // 3x slower
		Cores: 8, Ranks: 16,
		Reads: lines, Writes: lines, Acts: lines / 16,
		DCELines: lines, DCEPresent: true,
	})
	if slowDMA.Total() <= baseline.Total() {
		t.Errorf("slow DMA %.3f J <= baseline %.3f J; static energy should dominate",
			slowDMA.Total(), baseline.Total())
	}
}

// A 4x faster PIM-MMU transfer must be several times more
// energy-efficient (paper: 3.3x-4.9x).
func TestPIMMMUEnergyEfficiencyGain(t *testing.T) {
	p := DefaultParams()
	bytes := uint64(64 << 20)
	lines := bytes / 64
	base := p.Energy(Activity{
		Wall: 8 * clock.Millisecond, CoreBusy: 64 * clock.Millisecond,
		Cores: 8, Ranks: 16,
		Reads: lines, Writes: lines, Acts: lines / 16, LLCAccesses: lines,
	})
	mmu := p.Energy(Activity{
		Wall:  2 * clock.Millisecond, // 4x faster
		Cores: 8, Ranks: 16,
		Reads: lines, Writes: lines, Acts: lines / 64,
		DCELines: lines, DCEPresent: true,
	})
	gain := EfficiencyBytesPerJoule(bytes, mmu) / EfficiencyBytesPerJoule(bytes, base)
	if gain < 2.5 || gain > 8 {
		t.Errorf("energy-efficiency gain = %.2fx, want in the paper's 3.3x-4.9x neighbourhood", gain)
	}
}

// Property: energy is additive over interval splits (Sub/Energy are
// consistent).
func TestEnergyAdditiveOverIntervals(t *testing.T) {
	p := DefaultParams()
	f := func(r1, w1, r2, w2 uint32) bool {
		a1 := Activity{Wall: clock.Millisecond, CoreBusy: clock.Millisecond,
			Cores: 8, Ranks: 16, Reads: uint64(r1), Writes: uint64(w1)}
		a2 := Activity{Wall: clock.Millisecond, CoreBusy: clock.Millisecond,
			Cores: 8, Ranks: 16, Reads: uint64(r2), Writes: uint64(w2)}
		sum := Activity{Wall: 2 * clock.Millisecond, CoreBusy: 2 * clock.Millisecond,
			Cores: 8, Ranks: 16, Reads: uint64(r1) + uint64(r2), Writes: uint64(w1) + uint64(w2)}
		got := p.Energy(a1).Total() + p.Energy(a2).Total()
		want := p.Energy(sum).Total()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActivitySub(t *testing.T) {
	cur := Activity{Wall: 100, CoreBusy: 50, Reads: 10, Writes: 20, Acts: 3, Refs: 1, LLCAccesses: 7, DCELines: 4}
	prev := Activity{Wall: 40, CoreBusy: 20, Reads: 4, Writes: 8, Acts: 1, Refs: 0, LLCAccesses: 2, DCELines: 1}
	d := cur.Sub(prev)
	if d.Wall != 60 || d.CoreBusy != 30 || d.Reads != 6 || d.Writes != 12 ||
		d.Acts != 2 || d.Refs != 1 || d.LLCAccesses != 5 || d.DCELines != 3 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestZeroWallPower(t *testing.T) {
	if DefaultParams().Power(Activity{}) != 0 {
		t.Error("zero-interval power != 0")
	}
	if EfficiencyBytesPerJoule(100, Breakdown{}) != 0 {
		t.Error("zero-energy efficiency != 0")
	}
}

// Area: the paper's exact numbers — 80 KB of SRAM = 0.85 mm^2, 0.37% of
// the CPU die.
func TestAreaMatchesPaper(t *testing.T) {
	if got := SRAMAreaMM2(80 << 10); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("SRAMAreaMM2(80KB) = %.4f, want 0.85", got)
	}
	frac := DieOverheadFraction(16<<10, 64<<10)
	if frac < 0.0035 || frac > 0.0042 {
		t.Errorf("die overhead = %.4f%%, want ~0.37%%", frac*100)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{CoreDynamic: 1, CoreStatic: 2, CacheDynamic: 3, CacheStatic: 4,
		DRAMDynamic: 5, DRAMStatic: 6, PIMMMUDynamic: 7, PIMMMUStatic: 8}
	if b.Total() != 36 {
		t.Errorf("Total = %v, want 36", b.Total())
	}
	if b.Static() != 20 {
		t.Errorf("Static = %v, want 20", b.Static())
	}
}
