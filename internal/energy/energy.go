// Package energy implements the event-based energy, power and area model
// used to reproduce the paper's energy-efficiency results (Fig. 4,
// Fig. 15b) and implementation-overhead analysis (Section VI-C).
//
// It replaces McPAT + CACTI (Section V) with a transparent constant-based
// model: DRAM energy is derived from per-command charges (IDD-style),
// core energy from busy time at an AVX-heavy dynamic power, and static
// power from per-component constants. Absolute joules are approximate;
// what the reproduction relies on — and what the tests pin down — are the
// relative contributions: processor-side energy dominates (Fig. 15b), so
// total energy tracks transfer duration, which is why a slow DMA engine
// (Base+D) costs *more* energy than the baseline despite using no cores.
package energy

import (
	"fmt"

	"repro/internal/clock"
)

// Params holds the model constants. Energies are in picojoules, powers in
// microwatts, so all arithmetic stays in integers until reporting.
type Params struct {
	// DRAM per-command energies (derived from DDR4-2400 x8 IDD values).
	ActPJ   int64 // one ACT+PRE pair
	ReadPJ  int64 // one 64 B read burst including I/O
	WritePJ int64 // one 64 B write burst including I/O
	RefPJ   int64 // one all-bank refresh
	// RankBackgroundUW is per-rank standby power.
	RankBackgroundUW int64

	// Core powers.
	CoreBusyUW   int64 // dynamic, AVX-heavy data-movement loop
	CoreStaticUW int64 // leakage + clocking per core

	// Shared-cache and uncore static power.
	LLCStaticUW    int64
	UncoreStaticUW int64
	// LLCAccessPJ is the dynamic energy of one LLC lookup.
	LLCAccessPJ int64

	// PIM-MMU overheads: per-line SRAM staging energy and engine static
	// power (the DCE's buffers total 80 KB of SRAM).
	DCELinePJ   int64
	DCEStaticUW int64
}

// DefaultParams is the 32 nm-class constant set used throughout the
// evaluation.
func DefaultParams() Params {
	return Params{
		ActPJ:            2000,
		ReadPJ:           4000,
		WritePJ:          4200,
		RefPJ:            28000,
		RankBackgroundUW: 95_000,

		CoreBusyUW:   1_800_000,
		CoreStaticUW: 2_000_000,

		LLCStaticUW:    8_000_000,
		UncoreStaticUW: 20_000_000,
		LLCAccessPJ:    1000,

		DCELinePJ:   50,
		DCEStaticUW: 200_000,
	}
}

// Validate reports nonsensical parameter sets.
func (p Params) Validate() error {
	for name, v := range map[string]int64{
		"ActPJ": p.ActPJ, "ReadPJ": p.ReadPJ, "WritePJ": p.WritePJ,
		"RefPJ": p.RefPJ, "RankBackgroundUW": p.RankBackgroundUW,
		"CoreBusyUW": p.CoreBusyUW, "CoreStaticUW": p.CoreStaticUW,
		"LLCStaticUW": p.LLCStaticUW, "UncoreStaticUW": p.UncoreStaticUW,
		"LLCAccessPJ": p.LLCAccessPJ, "DCELinePJ": p.DCELinePJ,
		"DCEStaticUW": p.DCEStaticUW,
	} {
		if v < 0 {
			return fmt.Errorf("energy: negative parameter %s", name)
		}
	}
	return nil
}

// Activity is a snapshot of cumulative event counts and busy times for an
// interval (or whole run).
type Activity struct {
	Wall     clock.Picos // interval length
	CoreBusy clock.Picos // summed scheduled time across cores
	Cores    int         // cores present (static power)
	Ranks    int         // total DRAM+PIM ranks (background power)

	Acts   uint64 // ACT commands, both device sets
	Reads  uint64 // RD commands
	Writes uint64 // WR commands
	Refs   uint64 // REF commands

	LLCAccesses uint64
	DCELines    uint64 // lines staged through the DCE
	DCEPresent  bool   // PIM-MMU hardware present (static power)
}

// Sub returns the activity delta cur - prev (for time-series sampling).
func (cur Activity) Sub(prev Activity) Activity {
	d := cur
	d.Wall = cur.Wall - prev.Wall
	d.CoreBusy = cur.CoreBusy - prev.CoreBusy
	d.Acts = cur.Acts - prev.Acts
	d.Reads = cur.Reads - prev.Reads
	d.Writes = cur.Writes - prev.Writes
	d.Refs = cur.Refs - prev.Refs
	d.LLCAccesses = cur.LLCAccesses - prev.LLCAccesses
	d.DCELines = cur.DCELines - prev.DCELines
	return d
}

// Breakdown is the energy split the paper plots in Fig. 15b, in joules.
type Breakdown struct {
	CoreDynamic   float64
	CoreStatic    float64
	CacheDynamic  float64
	CacheStatic   float64 // LLC + uncore
	DRAMDynamic   float64
	DRAMStatic    float64
	PIMMMUDynamic float64
	PIMMMUStatic  float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.CoreDynamic + b.CoreStatic + b.CacheDynamic + b.CacheStatic +
		b.DRAMDynamic + b.DRAMStatic + b.PIMMMUDynamic + b.PIMMMUStatic
}

// Static sums the static components.
func (b Breakdown) Static() float64 {
	return b.CoreStatic + b.CacheStatic + b.DRAMStatic + b.PIMMMUStatic
}

const (
	pjToJ  = 1e-12
	uwsToJ = 1e-6 // microwatt-seconds
)

// Energy evaluates the model over an activity interval.
func (p Params) Energy(a Activity) Breakdown {
	secs := a.Wall.Seconds()
	busySecs := a.CoreBusy.Seconds()
	b := Breakdown{
		CoreDynamic:  float64(p.CoreBusyUW) * busySecs * uwsToJ,
		CoreStatic:   float64(p.CoreStaticUW) * float64(a.Cores) * secs * uwsToJ,
		CacheDynamic: float64(p.LLCAccessPJ) * float64(a.LLCAccesses) * pjToJ,
		CacheStatic:  float64(p.LLCStaticUW+p.UncoreStaticUW) * secs * uwsToJ,
		DRAMDynamic: (float64(p.ActPJ)*float64(a.Acts) +
			float64(p.ReadPJ)*float64(a.Reads) +
			float64(p.WritePJ)*float64(a.Writes) +
			float64(p.RefPJ)*float64(a.Refs)) * pjToJ,
		DRAMStatic: float64(p.RankBackgroundUW) * float64(a.Ranks) * secs * uwsToJ,
	}
	if a.DCEPresent {
		b.PIMMMUDynamic = float64(p.DCELinePJ) * float64(a.DCELines) * pjToJ
		b.PIMMMUStatic = float64(p.DCEStaticUW) * secs * uwsToJ
	}
	return b
}

// Power reports the average power in watts over the interval.
func (p Params) Power(a Activity) float64 {
	secs := a.Wall.Seconds()
	if secs <= 0 {
		return 0
	}
	return p.Energy(a).Total() / secs
}

// EfficiencyBytesPerJoule is the energy-efficiency metric of Fig. 15:
// bytes transferred per joule consumed.
func EfficiencyBytesPerJoule(bytes uint64, b Breakdown) float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return float64(bytes) / t
}
