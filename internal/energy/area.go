package energy

// Area model (Section VI-C): PIM-MMU's silicon cost is dominated by the
// DCE's SRAM buffers; PIM-MS and HetMap are logic-dominated and small.
// The paper evaluates the 16 KB data buffer + 64 KB address buffer at
// 0.85 mm^2 in 32 nm with CACTI, a 0.37% increase of the CPU die. We fit
// the same linear SRAM density.

// SRAMmm2PerKB is the fitted 32 nm SRAM density including peripheral
// circuitry: 80 KB -> 0.85 mm^2.
const SRAMmm2PerKB = 0.85 / 80.0

// CPUDiemm2 is the reference CPU die area implied by the paper's 0.37%
// figure (0.85 mm^2 / 0.0037).
const CPUDiemm2 = 229.7

// SRAMAreaMM2 estimates the area of an SRAM buffer of the given capacity.
func SRAMAreaMM2(bytes int) float64 {
	return SRAMmm2PerKB * float64(bytes) / 1024
}

// PIMMMUAreaMM2 estimates the PIM-MMU's total area from its buffer sizes
// (logic contributes a fixed small adder for PIM-MS + HetMap + AGU).
func PIMMMUAreaMM2(dataBufBytes, addrBufBytes int) float64 {
	const logicMM2 = 0.02 // PIM-MS scheduler, HetMap mapping mux, AGU
	return SRAMAreaMM2(dataBufBytes+addrBufBytes) + logicMM2
}

// DieOverheadFraction is the PIM-MMU area as a fraction of the CPU die.
func DieOverheadFraction(dataBufBytes, addrBufBytes int) float64 {
	return PIMMMUAreaMM2(dataBufBytes, addrBufBytes) / CPUDiemm2
}
