package pim

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
)

func TestDefaultGeometryMatchesTableI(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.NumCores(); got != 512 {
		t.Errorf("NumCores = %d, want 512 (Table I)", got)
	}
	if got := g.CoresPerChannel(); got != 128 {
		t.Errorf("CoresPerChannel = %d, want 128", got)
	}
	if got := g.MRAMBytes(); got != 64<<20 {
		t.Errorf("MRAMBytes = %d, want 64 MiB (UPMEM DPU MRAM)", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	g.LanesPerBank = 3
	if g.Validate() == nil {
		t.Error("LanesPerBank=3 accepted")
	}
	g = DefaultGeometry()
	g.DRAM.Channels = 5
	if g.Validate() == nil {
		t.Error("invalid DRAM geometry accepted")
	}
}

// Algorithm 1's ID formula: ra*banks*bankgroups + bg*banks + bk.
func TestBankCoreIDMatchesAlgorithm1(t *testing.T) {
	g := DefaultGeometry()
	nb, ng := g.DRAM.Banks, g.DRAM.BankGroups
	for ra := 0; ra < g.DRAM.Ranks; ra++ {
		for bg := 0; bg < ng; bg++ {
			for bk := 0; bk < nb; bk++ {
				want := ra*nb*ng + bg*nb + bk
				if got := g.BankCoreID(ra, bg, bk); got != want {
					t.Fatalf("BankCoreID(%d,%d,%d) = %d, want %d", ra, bg, bk, got, want)
				}
			}
		}
	}
}

func TestCoreIDLocRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	for id := 0; id < g.NumCores(); id++ {
		l := g.Loc(id)
		if back := g.CoreID(l); back != id {
			t.Fatalf("CoreID(Loc(%d)) = %d", id, back)
		}
	}
}

func TestLocFieldsInRange(t *testing.T) {
	g := DefaultGeometry()
	for id := 0; id < g.NumCores(); id++ {
		l := g.Loc(id)
		if l.Channel >= g.DRAM.Channels || l.Rank >= g.DRAM.Ranks ||
			l.BankGroup >= g.DRAM.BankGroups || l.Bank >= g.DRAM.Banks ||
			l.Lane >= g.LanesPerBank {
			t.Fatalf("Loc(%d) = %+v out of range", id, l)
		}
	}
}

func TestLocOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Loc(NumCores) did not panic")
		}
	}()
	g := DefaultGeometry()
	g.Loc(g.NumCores())
}

// Consecutive core IDs must be channel-major: cores 0..127 on channel 0,
// 128..255 on channel 1, and so on — this is what makes the baseline's
// thread-herding congestion (Fig. 6a) possible.
func TestCoreIDChannelMajor(t *testing.T) {
	g := DefaultGeometry()
	per := g.CoresPerChannel()
	for id := 0; id < g.NumCores(); id++ {
		if got := g.Loc(id).Channel; got != id/per {
			t.Fatalf("core %d on channel %d, want %d", id, got, id/per)
		}
	}
}

// MRAMAddr must land inside the PIM region and decode (under the
// locality-centric PIM mapping) to exactly the core's own bank.
func TestMRAMAddrDecodesToOwnBank(t *testing.T) {
	g := DefaultGeometry()
	pimMap := addrmap.NewLocality(g.DRAM)
	f := func(rawCore, rawOff uint64) bool {
		id := int(rawCore % uint64(g.NumCores()))
		off := rawOff % g.MRAMBytes() &^ 63
		a := g.MRAMAddr(id, off)
		if mem.SpaceOf(a) != mem.SpacePIM {
			return false
		}
		loc := pimMap.Map(a - mem.PIMBase)
		want := g.Loc(id)
		return loc.Channel == want.Channel && loc.Rank == want.Rank &&
			loc.BankGroup == want.BankGroup && loc.Bank == want.Bank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Different (core, offset) pairs must never map to the same physical
// byte: lanes byte-interleave within each line but remain disjoint (the
// mutual-exclusion property PIM-MS relies on, Section IV-D).
func TestMRAMBytesDisjoint(t *testing.T) {
	g := smallGeometry()
	seen := map[uint64][2]int{}
	// Exhaust the first two lines' worth of every core's MRAM.
	span := uint64(2 * mem.LineBytes / g.LanesPerBank)
	for id := 0; id < g.NumCores(); id++ {
		for off := uint64(0); off < span; off++ {
			a := g.MRAMAddr(id, off)
			if prev, dup := seen[a]; dup {
				t.Fatalf("cores %d@%d and %d@%d share physical byte 0x%x",
					prev[0], prev[1], id, off, a)
			}
			seen[a] = [2]int{id, int(off)}
		}
	}
}

// A bank's lanes byte-interleave: consecutive LaneBytes-sized slices of a
// line belong to consecutive lanes, and a full bank's transfer occupies a
// contiguous physical range starting at BankBase.
func TestMRAMLaneInterleaving(t *testing.T) {
	g := DefaultGeometry()
	lb := uint64(g.LaneBytes())
	if lb*uint64(g.LanesPerBank) != mem.LineBytes {
		t.Fatalf("LaneBytes=%d does not tile a line", lb)
	}
	// Core at lane l, offset 0 sits l*LaneBytes into its bank's line 0.
	for _, id := range []int{0, 1, 2, 3, 128, 511} {
		l := g.Loc(id)
		want := g.BankBase(id) + uint64(l.Lane)*lb
		if got := g.MRAMAddr(id, 0); got != want {
			t.Errorf("MRAMAddr(%d, 0) = 0x%x, want 0x%x", id, got, want)
		}
		// Crossing a lane-slice boundary advances one whole line.
		if got := g.MRAMAddr(id, lb); got != want+mem.LineBytes {
			t.Errorf("MRAMAddr(%d, LaneBytes) = 0x%x, want 0x%x", id, got, want+mem.LineBytes)
		}
	}
}

func TestBankLineAddr(t *testing.T) {
	g := DefaultGeometry()
	if got := g.BankLineAddr(0, 0); got != g.BankBase(0) {
		t.Errorf("BankLineAddr(0,0) = 0x%x, want bank base 0x%x", got, g.BankBase(0))
	}
	lb := uint64(g.LaneBytes())
	if got := g.BankLineAddr(0, 3*lb); got != g.BankBase(0)+3*mem.LineBytes {
		t.Errorf("BankLineAddr(0, 3*LaneBytes) = 0x%x, want base+3 lines", got)
	}
	if g.BankLineAddr(0, 0)%mem.LineBytes != 0 {
		t.Error("BankLineAddr not line aligned")
	}
}

func TestMRAMAddrBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MRAMAddr beyond capacity did not panic")
		}
	}()
	g := DefaultGeometry()
	g.MRAMAddr(0, g.MRAMBytes())
}

func TestDeviceMRAMReadWrite(t *testing.T) {
	d := NewDevice(smallGeometry())
	data := []byte("hello pim world!")
	d.WriteMRAM(3, 128, data)
	got := d.ReadMRAM(3, 128, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("ReadMRAM = %q, want %q", got, data)
	}
	// Other cores unaffected.
	if z := d.ReadMRAM(2, 128, len(data)); !bytes.Equal(z, make([]byte, len(data))) {
		t.Error("write leaked into another core's MRAM")
	}
}

func TestDeviceMRAMBounds(t *testing.T) {
	d := NewDevice(smallGeometry())
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds MRAM write did not panic")
		}
	}()
	d.WriteMRAM(0, d.Geometry().MRAMBytes()-4, make([]byte, 8))
}

// Writes spanning chunk boundaries must round-trip, and untouched bytes
// must read as zero.
func TestDeviceMRAMChunkBoundary(t *testing.T) {
	d := NewDevice(DefaultGeometry()) // 64 MiB MRAM, sparse
	off := uint64(mramChunkBytes - 10)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i + 1)
	}
	d.WriteMRAM(5, off, data)
	if got := d.ReadMRAM(5, off, 100); !bytes.Equal(got, data) {
		t.Error("cross-chunk write did not round-trip")
	}
	if got := d.ReadMRAM(5, off+200, 16); !bytes.Equal(got, make([]byte, 16)) {
		t.Error("untouched MRAM not zero")
	}
	// A far-away offset on a big device must not allocate the whole MRAM.
	d.WriteMRAM(100, 63<<20, []byte{1, 2, 3})
	if got := d.ReadMRAM(100, 63<<20, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Error("sparse far write lost")
	}
}

func TestKernelTime(t *testing.T) {
	d := NewDevice(smallGeometry())
	// 350 MHz: 350e6 cycles = 1 second.
	if got := d.KernelTime(350_000_000); got != clock.Second-clock.Picos(350_000_000*(int64(clock.Second)%350_000_000)/350_000_000) && got > clock.Second {
		t.Errorf("KernelTime(350M cycles) = %v, want ~1s", got)
	}
	if got := d.KernelTime(350); got != d.KernelTime(350) {
		t.Error("KernelTime not deterministic")
	}
}

func smallGeometry() Geometry {
	return Geometry{
		DRAM: addrmap.Geometry{
			Channels: 2, Ranks: 1, BankGroups: 2, Banks: 2, Rows: 64, Cols: 32,
		},
		LanesPerBank: 2,
	}
}

func TestSmallGeometry(t *testing.T) {
	g := smallGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumCores() != 16 {
		t.Errorf("NumCores = %d, want 16", g.NumCores())
	}
}
