// Package pim models the bank-level PIM device: the geometry that maps
// PIM core IDs to DRAM banks (and byte lanes within a bank), each core's
// private MRAM as a functional byte store, and an analytic DPU execution
// model for kernel time.
//
// Following UPMEM's design (Section II-C): the device is a set of DDR4
// DIMMs on their own channels; every bank hosts PIM cores; a core can only
// access its own bank's memory; and the host reaches MRAM through ordinary
// (non-cacheable) memory writes in the PIM physical address region.
package pim

import (
	"fmt"

	"repro/internal/addrmap"
	"repro/internal/clock"
	"repro/internal/mem"
)

// Geometry describes the PIM device: the DRAM geometry of its DIMMs plus
// the number of PIM cores sharing one bank address on different byte
// lanes.
//
// Table I pairs "4 channels, 2 ranks" (128 bank addresses) with "512 PIM
// cores"; the x4 factor is the chip/lane dimension (see DESIGN.md). Lanes
// share a bank's row buffer, so they add capacity slicing but no
// bank-level parallelism — exactly like the chips of a real DIMM.
type Geometry struct {
	DRAM         addrmap.Geometry
	LanesPerBank int
}

// DefaultGeometry is the Table I PIM system: DDR4-2400, 4 channels,
// 2 ranks per channel, 512 PIM cores.
func DefaultGeometry() Geometry {
	return Geometry{
		DRAM: addrmap.Geometry{
			Channels: 4, Ranks: 2, BankGroups: 4, Banks: 4,
			Rows: 32768, Cols: 128,
		},
		LanesPerBank: 4,
	}
}

// Validate reports configuration errors.
func (g Geometry) Validate() error {
	if err := g.DRAM.Validate(); err != nil {
		return err
	}
	if g.LanesPerBank <= 0 || g.LanesPerBank&(g.LanesPerBank-1) != 0 {
		return fmt.Errorf("pim: LanesPerBank=%d not a positive power of two", g.LanesPerBank)
	}
	if uint64(g.LanesPerBank) > g.DRAM.BankBytes()/uint64(mem.LineBytes) {
		return fmt.Errorf("pim: more lanes than bank lines")
	}
	return nil
}

// NumCores is the total PIM core (DPU) count.
func (g Geometry) NumCores() int {
	return g.DRAM.TotalBanks() * g.LanesPerBank
}

// CoresPerChannel is the PIM core count behind one channel.
func (g Geometry) CoresPerChannel() int {
	return g.DRAM.BanksPerChannel() * g.LanesPerBank
}

// MRAMBytes is each core's private memory capacity (its slice of a bank).
func (g Geometry) MRAMBytes() uint64 {
	return g.DRAM.BankBytes() / uint64(g.LanesPerBank)
}

// CoreLoc identifies a PIM core by its physical position.
type CoreLoc struct {
	Channel   int
	Rank      int
	BankGroup int
	Bank      int
	Lane      int
}

// BankCoreID implements Algorithm 1's get_pim_core_id: the per-channel,
// per-lane-0 core index derived from (rank, bank group, bank).
func (g Geometry) BankCoreID(ra, bg, bk int) int {
	return ra*g.DRAM.Banks*g.DRAM.BankGroups + bg*g.DRAM.Banks + bk
}

// CoreID flattens a CoreLoc into a global core index: channel-major, then
// Algorithm 1's (rank, bank group, bank) order, lanes innermost. With the
// locality-centric PIM mapping this makes consecutive core IDs occupy
// consecutive regions of the PIM physical address space.
func (g Geometry) CoreID(l CoreLoc) int {
	bankID := g.BankCoreID(l.Rank, l.BankGroup, l.Bank)
	return (l.Channel*g.DRAM.BanksPerChannel()+bankID)*g.LanesPerBank + l.Lane
}

// Loc is the inverse of CoreID.
func (g Geometry) Loc(coreID int) CoreLoc {
	if coreID < 0 || coreID >= g.NumCores() {
		panic(fmt.Sprintf("pim: core ID %d out of range [0,%d)", coreID, g.NumCores()))
	}
	lane := coreID % g.LanesPerBank
	bank := coreID / g.LanesPerBank
	bankID := bank % g.DRAM.BanksPerChannel()
	ch := bank / g.DRAM.BanksPerChannel()
	bk := bankID % g.DRAM.Banks
	bg := bankID / g.DRAM.Banks % g.DRAM.BankGroups
	ra := bankID / (g.DRAM.Banks * g.DRAM.BankGroups)
	return CoreLoc{Channel: ch, Rank: ra, BankGroup: bg, Bank: bk, Lane: lane}
}

// LaneBytes is each core's share of one 64-byte line of its bank: the
// chips (lanes) of a DIMM split every burst byte-wise, so a line at bank
// offset k carries LaneBytes bytes for every lane simultaneously (this is
// the physical reason the transpose of Fig. 3 exists).
func (g Geometry) LaneBytes() int { return mem.LineBytes / g.LanesPerBank }

// BankLinear flattens a core's bank position into the bank index used by
// the locality-centric PIM address mapping (channel-major, then
// Algorithm 1's rank/bank-group/bank order).
func (g Geometry) BankLinear(coreID int) int {
	l := g.Loc(coreID)
	return l.Channel*g.DRAM.BanksPerChannel() + g.BankCoreID(l.Rank, l.BankGroup, l.Bank)
}

// BankBase is the physical address of the first byte of a core's bank in
// the PIM region.
func (g Geometry) BankBase(coreID int) uint64 {
	return mem.PIMBase + uint64(g.BankLinear(coreID))*g.DRAM.BankBytes()
}

// MRAMAddr computes the physical address (in the PIM region) of a byte
// offset within the given core's MRAM. Lanes of one bank are
// byte-interleaved within each 64-byte line: line k of the bank holds
// bytes [k*LaneBytes, (k+1)*LaneBytes) of every lane's MRAM. Consequently
// a core's MRAM is not a contiguous physical range — but a bank's is,
// which is what lets both the DCE and the runtime stream whole banks with
// full row-buffer locality.
func (g Geometry) MRAMAddr(coreID int, offset uint64) uint64 {
	if offset >= g.MRAMBytes() {
		panic(fmt.Sprintf("pim: MRAM offset 0x%x beyond capacity 0x%x", offset, g.MRAMBytes()))
	}
	l := g.Loc(coreID)
	lane := uint64(g.LaneBytes())
	line := offset / lane
	return g.BankBase(coreID) + line*mem.LineBytes + uint64(l.Lane)*lane + offset%lane
}

// BankLineAddr is the physical address of line index k of a core's bank.
// A transfer of S bytes per core to the L lanes of one bank occupies
// lines [startOffset/LaneBytes, ...) — S*L bytes of contiguous physical
// addresses.
func (g Geometry) BankLineAddr(coreID int, mramOffset uint64) uint64 {
	return g.BankBase(coreID) + mramOffset/uint64(g.LaneBytes())*mem.LineBytes
}

// DPUClock is the UPMEM DPU core frequency.
const DPUClock = 350 * clock.MHz

// mramChunkBytes is the sparse-allocation granule for functional MRAM:
// only the 64 KiB chunks a program actually touches are backed by real
// memory, so a 512-core device (32 GiB of MRAM capacity) costs only what
// the workload writes.
const mramChunkBytes = 64 << 10

// Device is the PIM device: geometry plus per-core functional MRAM and a
// kernel-time model. MRAM is allocated sparsely in chunks on first touch.
type Device struct {
	geom   Geometry
	chunks map[uint64][]byte // key: core<<24 | chunk index
	dom    clock.Domain
}

// NewDevice builds a device; it panics on invalid geometry.
func NewDevice(g Geometry) *Device {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	if g.MRAMBytes()/mramChunkBytes >= 1<<24 {
		panic("pim: MRAM too large for chunk keying")
	}
	return &Device{geom: g, chunks: make(map[uint64][]byte), dom: clock.NewDomain(DPUClock)}
}

// Geometry reports the device's geometry.
func (d *Device) Geometry() Geometry { return d.geom }

func (d *Device) checkRange(coreID int, offset, length uint64) {
	if coreID < 0 || coreID >= d.geom.NumCores() {
		panic(fmt.Sprintf("pim: core ID %d out of range", coreID))
	}
	if offset+length > d.geom.MRAMBytes() {
		panic(fmt.Sprintf("pim: MRAM access [0x%x, 0x%x) out of bounds", offset, offset+length))
	}
}

// chunk returns the backing chunk, allocating when alloc is set; a nil
// return means an untouched (all-zero) chunk.
func (d *Device) chunk(coreID int, idx uint64, alloc bool) []byte {
	key := uint64(coreID)<<24 | idx
	c := d.chunks[key]
	if c == nil && alloc {
		c = make([]byte, mramChunkBytes)
		d.chunks[key] = c
	}
	return c
}

// WriteMRAM copies data into core's MRAM at offset.
func (d *Device) WriteMRAM(coreID int, offset uint64, data []byte) {
	d.checkRange(coreID, offset, uint64(len(data)))
	for len(data) > 0 {
		idx := offset / mramChunkBytes
		in := offset % mramChunkBytes
		n := copy(d.chunk(coreID, idx, true)[in:], data)
		data = data[n:]
		offset += uint64(n)
	}
}

// ReadMRAM copies length bytes from core's MRAM at offset; untouched
// bytes read as zero.
func (d *Device) ReadMRAM(coreID int, offset uint64, length int) []byte {
	d.checkRange(coreID, offset, uint64(length))
	out := make([]byte, length)
	dst := out
	for len(dst) > 0 {
		idx := offset / mramChunkBytes
		in := offset % mramChunkBytes
		span := mramChunkBytes - in
		if span > uint64(len(dst)) {
			span = uint64(len(dst))
		}
		if c := d.chunk(coreID, idx, false); c != nil {
			copy(dst[:span], c[in:in+span])
		}
		dst = dst[span:]
		offset += span
	}
	return out
}

// KernelTime converts a per-core DPU cycle count into wall-clock time.
// PIM kernels run all cores in lockstep SPMD, so the kernel time is the
// slowest core's cycles at the DPU clock.
func (d *Device) KernelTime(cycles int64) clock.Picos {
	return d.dom.Duration(cycles)
}
