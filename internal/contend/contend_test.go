package contend

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// drainOps pulls up to n ops from a program, returning them.
func drainOps(p cpu.Program, n int) []cpu.Op {
	var ops []cpu.Op
	for i := 0; i < n; i++ {
		op, ok := p.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

func TestSpinIsComputeDominated(t *testing.T) {
	st := &Stopper{}
	p := Spin(st, 0x1000)
	ops := drainOps(p, 100)
	var computeCycles, loads int64
	for _, op := range ops {
		switch op.Kind {
		case cpu.OpCompute:
			computeCycles += op.Cycles
		case cpu.OpLoad:
			loads++
		}
	}
	if loads == 0 {
		t.Fatal("spinner never loads (needs cache-resident accesses)")
	}
	// Compute must dwarf memory: >1000 cycles per load.
	if computeCycles/loads < 1000 {
		t.Errorf("spin compute/load = %d cycles, want compute-bound", computeCycles/loads)
	}
}

func TestSpinWorkingSetStaysSmall(t *testing.T) {
	st := &Stopper{}
	p := Spin(st, 1<<20)
	lo, hi := uint64(1)<<62, uint64(0)
	for _, op := range drainOps(p, 500) {
		if op.Kind != cpu.OpLoad {
			continue
		}
		if op.Addr < lo {
			lo = op.Addr
		}
		if op.Addr > hi {
			hi = op.Addr
		}
	}
	if span := hi - lo + mem.LineBytes; span > 16<<10 {
		t.Errorf("spin working set = %d bytes, want <= 16 KiB (cache resident)", span)
	}
}

func TestStopperTerminatesPrograms(t *testing.T) {
	st := &Stopper{}
	p := Spin(st, 0)
	if _, ok := p.Next(); !ok {
		t.Fatal("fresh spinner refused to run")
	}
	st.Stop()
	if !st.Stopped() {
		t.Error("Stopped() false after Stop")
	}
	if _, ok := p.Next(); ok {
		t.Error("spinner kept running after Stop")
	}
}

func TestMemoryHogIntensityOrdering(t *testing.T) {
	// Higher intensity must mean a higher ratio of loads to compute
	// cycles.
	ratio := func(level Intensity) float64 {
		st := &Stopper{}
		p := MemoryHog(st, 0, 1<<20, level)
		var loads, cycles int64
		for _, op := range drainOps(p, 400) {
			switch op.Kind {
			case cpu.OpLoad:
				loads++
			case cpu.OpCompute:
				cycles += op.Cycles
			}
		}
		if cycles == 0 {
			return float64(loads)
		}
		return float64(loads) / float64(cycles)
	}
	prev := -1.0
	for _, l := range Levels() {
		r := ratio(l)
		if r <= prev {
			t.Errorf("intensity %v ratio %.4f not above previous %.4f", l, r, prev)
		}
		prev = r
	}
}

func TestMemoryHogStreamsFootprint(t *testing.T) {
	st := &Stopper{}
	const fp = 1 << 16
	p := MemoryHog(st, 0x100000, fp, VeryHigh)
	seen := map[uint64]bool{}
	for _, op := range drainOps(p, 5000) {
		if op.Kind == cpu.OpLoad {
			if op.Addr < 0x100000 || op.Addr >= 0x100000+fp {
				t.Fatalf("hog load outside footprint: 0x%x", op.Addr)
			}
			seen[op.Addr] = true
		}
	}
	if len(seen) < fp/mem.LineBytes/2 {
		t.Errorf("hog touched only %d distinct lines of %d", len(seen), fp/mem.LineBytes)
	}
}

func TestMemoryHogStopsAtIterationBoundary(t *testing.T) {
	st := &Stopper{}
	p := MemoryHog(st, 0, 1<<16, Low)
	p.Next() // mid-iteration
	st.Stop()
	// Must finish the current iteration then exit.
	alive := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		alive++
		if alive > 10 {
			t.Fatal("hog did not stop after iteration boundary")
		}
	}
}

func TestMemoryHogPanicsOnTinyFootprint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny footprint did not panic")
		}
	}()
	MemoryHog(&Stopper{}, 0, 1, Low)
}

func TestIntensityString(t *testing.T) {
	for _, l := range Levels() {
		if l.String() == "unknown" {
			t.Errorf("level %d renders as unknown", int(l))
		}
	}
	if Intensity(99).String() != "unknown" {
		t.Error("bogus level should render unknown")
	}
}
