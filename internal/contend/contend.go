// Package contend implements the co-located contender workloads of the
// paper's resource-contention study (Section VI-A, Fig. 13):
//
//   - Spin: a compute-intensive, spin-lock-like contender whose memory
//     accesses stay inside the on-chip caches. It competes for CPU cores
//     only, which is exactly what degrades the baseline's multi-threaded
//     transfers while leaving the DCE untouched (Fig. 13a).
//   - MemoryHog: a memory-intensive contender with a tunable ratio of
//     memory instructions to compute instructions ("low" to "very high"
//     intensity), streaming over a footprint far larger than the LLC. It
//     competes for DRAM bandwidth, degrading both designs (Fig. 13b).
//
// Contenders are plain cpu.Programs, so on a machine with per-core host
// lanes (system.Config.CoreLanes) each contender rides the lane of
// whichever core the OS scheduler dispatches it on: its compute-span
// chains execute lane-locally inside conservative windows, and its
// memory operations cross at the LLC boundary. The Stopper flag is only
// written from serially-fired events and only read through the
// engine-independent one-op program peek (see cpu.Program), so stopping
// is byte-identical across every lane topology.
package contend

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
)

// Stopper signals contender threads to exit (contenders run until the
// measured transfer completes).
type Stopper struct{ stopped bool }

// Stop makes every program created with this stopper finish after its
// current iteration.
func (s *Stopper) Stop() { s.stopped = true }

// Stopped reports whether Stop was called.
func (s *Stopper) Stopped() bool { return s.stopped }

// Spin returns a compute-bound contender program: long compute spans with
// an occasional load inside a 16 KB working set (always an LLC hit after
// warm-up). The span is emitted as spinChunks shorter compute operations
// rather than one monolithic op — a spin loop is iterations, not one
// straight-line burst — which is also what lets the chain execute
// lane-locally on a per-core lane: every chunk is far longer than the
// core lanes' LLC crossing edge, so consecutive chunks window together.
// Total compute per load is unchanged (spanCycles).
func Spin(st *Stopper, workingSetBase uint64) cpu.Program {
	const (
		spanCycles = 4096
		spinChunks = 4
		wsetBytes  = 16 << 10
	)
	i := 0
	phase := 0
	return cpu.ProgramFunc(func() (cpu.Op, bool) {
		if st.stopped {
			return cpu.Op{}, false
		}
		if phase < spinChunks {
			phase++
			return cpu.Op{Kind: cpu.OpCompute, Cycles: spanCycles / spinChunks}, true
		}
		phase = 0
		addr := workingSetBase + uint64(i%(wsetBytes/mem.LineBytes))*mem.LineBytes
		i++
		return cpu.Op{Kind: cpu.OpLoad, Addr: addr}, true
	})
}

// Intensity is the memory-access intensity of a MemoryHog contender,
// tuned — as in the paper — by the ratio of memory to non-memory
// instructions.
type Intensity int

const (
	Low Intensity = iota
	Medium
	High
	VeryHigh
)

func (i Intensity) String() string {
	switch i {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	case VeryHigh:
		return "very high"
	}
	return "unknown"
}

// Levels lists all intensities in the order Fig. 13b sweeps them.
func Levels() []Intensity { return []Intensity{Low, Medium, High, VeryHigh} }

// mix returns (loads per iteration, compute cycles per iteration).
func (i Intensity) mix() (loads int, cycles int64) {
	switch i {
	case Low:
		return 1, 400
	case Medium:
		return 4, 200
	case High:
		return 8, 80
	case VeryHigh:
		return 12, 16
	}
	panic(fmt.Sprintf("contend: unknown intensity %d", int(i)))
}

// MemoryHog returns a memory-bound contender streaming over
// [base, base+footprint).
func MemoryHog(st *Stopper, base, footprint uint64, level Intensity) cpu.Program {
	if footprint < mem.LineBytes {
		panic("contend: footprint smaller than one line")
	}
	loads, cycles := level.mix()
	lines := footprint / mem.LineBytes
	var off uint64
	i := 0
	return cpu.ProgramFunc(func() (cpu.Op, bool) {
		if st.stopped && i == 0 {
			return cpu.Op{}, false
		}
		if i < loads {
			i++
			a := base + off*mem.LineBytes
			off = (off + 1) % lines
			return cpu.Op{Kind: cpu.OpLoad, Addr: a}, true
		}
		i = 0
		return cpu.Op{Kind: cpu.OpCompute, Cycles: cycles}, true
	})
}
