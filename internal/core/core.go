// Package core implements the paper's primary contribution: the PIM-MMU —
// a Data Copy Engine (DCE) with an integrated PIM-aware Memory Scheduler
// (PIM-MS) and the software stack (runtime library + device driver model)
// that offloads DRAM<->PIM transfers to it (Section IV).
//
// The DCE (Fig. 9, Fig. 11) contains:
//   - an address buffer (64 KB SRAM) holding per-PIM-core transfer
//     descriptors: source base, destination core ID, and an offset counter;
//   - a data buffer (16 KB SRAM) staging lines between the read and write
//     halves of a copy;
//   - an Address Generation Unit (AGU) that walks descriptor offsets and
//     coordinates physical->DRAM translation with the memory controller;
//   - a preprocessing unit that transposes data on the fly (Fig. 3),
//     gathering the lanes of each PIM bank into whole 64-byte bursts;
//   - PIM-MS, which picks the issue order (internal/pimms, Algorithm 1).
//
// A transfer is modelled as two coupled line streams: the DRAM side (one
// sequential stream per PIM core's source/destination array) and the PIM
// side (one sequential stream per PIM *bank* — the lanes of a bank share
// every 64-byte burst, so the bank is the unit of PIM-side streaming).
// The data buffer couples them: reads may run ahead of writes by at most
// the buffer capacity, writes may never run ahead of the preprocessed
// read data.
//
// With PIM-MS disabled the engine degrades into a conventional DMA engine
// (Intel I/OAT / DSA class): descriptors processed strictly in order with
// a small in-flight window — the ablation's "Base+D" design point, which
// the paper shows can be slower than the software baseline.
package core

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/memsys"
	"repro/internal/pim"
	"repro/internal/pimms"
	"repro/internal/sim"
	"repro/internal/transpose"
)

// SrcID tags all DCE-issued requests in per-source byte accounting.
const SrcID = 1 << 20

// Direction of a transfer.
type Direction int

const (
	// DRAMToPIM copies input data into PIM cores' MRAM.
	DRAMToPIM Direction = iota
	// PIMToDRAM copies results back to DRAM.
	PIMToDRAM
)

func (d Direction) String() string {
	if d == PIMToDRAM {
		return "PIM->DRAM"
	}
	return "DRAM->PIM"
}

// Config parameterizes the PIM-MMU (Table I: 3.2 GHz DCE, 16 KB data
// buffer, 64 KB address buffer).
type Config struct {
	Clock clock.Hz
	// DataBufBytes is the staging SRAM between the read and write halves;
	// it bounds how far reads may run ahead of writes.
	DataBufBytes int
	// AddrBufBytes holds transfer descriptors; transfers with more
	// descriptors than fit are processed in address-buffer-sized batches.
	AddrBufBytes int
	// AddrEntryBytes is the SRAM cost of one descriptor (base address,
	// PIM core ID and offset counter, Fig. 11).
	AddrEntryBytes int
	// UsePIMMS enables the PIM-aware Memory Scheduler. Disabled, the DCE
	// behaves like a conventional DMA engine (sequential descriptors,
	// DMAWindow in-flight lines).
	UsePIMMS bool
	// DMAWindow is the in-flight line cap without PIM-MS: a conventional
	// DMA engine processes descriptors near-synchronously, giving it far
	// less memory-level parallelism than the baseline's eight OOO cores —
	// which is why "Base+D" can lose to plain software (Fig. 15).
	DMAWindow int
	// ChannelRRWithoutPIMMS, when set (and UsePIMMS is off), walks
	// descriptors channel round-robin instead of strictly sequentially —
	// the intermediate issue order of the DESIGN.md ablation, isolating
	// channel-level parallelism from Algorithm 1's bank interleave.
	ChannelRRWithoutPIMMS bool
	// Preproc models the hardware transpose unit.
	Preproc transpose.HWUnit
	// DriverLaunch is the software cost to invoke pim_mmu_transfer: the
	// runtime marshals the descriptor arrays and the driver writes them to
	// the DCE's MMIO BAR, then puts the calling process to sleep.
	DriverLaunch clock.Picos
	// DriverInterrupt is the completion path: DCE interrupt, driver wakes
	// the process.
	DriverInterrupt clock.Picos
	// BatchReload is the cost of refilling the address buffer for each
	// additional descriptor batch.
	BatchReload clock.Picos
}

// DefaultConfig matches Table I.
func DefaultConfig() Config {
	return Config{
		Clock:           3200 * clock.MHz,
		DataBufBytes:    16 << 10,
		AddrBufBytes:    64 << 10,
		AddrEntryBytes:  16,
		UsePIMMS:        true,
		DMAWindow:       4,
		Preproc:         transpose.DefaultHWUnit(),
		DriverLaunch:    3 * clock.Microsecond,
		DriverInterrupt: 2 * clock.Microsecond,
		BatchReload:     clock.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clock <= 0 || c.DataBufBytes < mem.LineBytes || c.AddrBufBytes < c.AddrEntryBytes ||
		c.AddrEntryBytes <= 0 || c.DMAWindow <= 0 {
		return fmt.Errorf("core: invalid DCE config: %+v", c)
	}
	return nil
}

// Op describes one offloaded transfer — the pim_mmu_op struct of
// Fig. 10(b): a direction, a per-core size, the PIM heap offset, and the
// per-core DRAM-side array addresses.
type Op struct {
	Dir Direction
	// BytesPerCore is XFER_PER_BANK in bytes (uniform across cores, as in
	// dpu_push_xfer); must be a multiple of 64.
	BytesPerCore uint64
	// MRAMOffset is the destination/source offset inside each core's MRAM
	// (DPU_MRAM_HEAP_POINTER_NAME + offset); must be line-group aligned
	// (a multiple of 64 covers every lane configuration).
	MRAMOffset uint64
	// Cores lists the participating PIM core IDs (dest_pim_id_arr).
	Cores []int
	// DRAMAddrs is the DRAM-side base address per core (src_arr); parallel
	// to Cores.
	DRAMAddrs []uint64
}

// Bytes sums the op's transfer size.
func (o Op) Bytes() uint64 { return o.BytesPerCore * uint64(len(o.Cores)) }

// Validate reports malformed ops.
func (o Op) Validate(g pim.Geometry) error {
	if len(o.Cores) == 0 {
		return fmt.Errorf("core: op with no cores")
	}
	if len(o.Cores) != len(o.DRAMAddrs) {
		return fmt.Errorf("core: %d cores but %d DRAM addresses", len(o.Cores), len(o.DRAMAddrs))
	}
	if o.BytesPerCore == 0 || o.BytesPerCore%mem.LineBytes != 0 {
		return fmt.Errorf("core: BytesPerCore=%d not a positive multiple of %d", o.BytesPerCore, mem.LineBytes)
	}
	if o.MRAMOffset%mem.LineBytes != 0 {
		return fmt.Errorf("core: MRAMOffset=0x%x not line aligned", o.MRAMOffset)
	}
	seen := make(map[int]bool, len(o.Cores))
	for i, c := range o.Cores {
		if c < 0 || c >= g.NumCores() {
			return fmt.Errorf("core: core ID %d out of range", c)
		}
		if seen[c] {
			return fmt.Errorf("core: duplicate core %d in op", c)
		}
		seen[c] = true
		if o.DRAMAddrs[i]%mem.LineBytes != 0 {
			return fmt.Errorf("core: DRAM address 0x%x not line aligned", o.DRAMAddrs[i])
		}
		if o.MRAMOffset+o.BytesPerCore > g.MRAMBytes() {
			return fmt.Errorf("core: transfer exceeds MRAM capacity")
		}
	}
	return nil
}

// Result reports a completed transfer.
type Result struct {
	Dir   Direction
	Start clock.Picos // transfer offload began (before driver launch)
	End   clock.Picos // interrupt delivered
	Bytes uint64
}

// Duration is the wall-clock transfer time including driver overheads.
func (r Result) Duration() clock.Picos { return r.End - r.Start }

// Throughput is bytes per second.
func (r Result) Throughput() float64 {
	d := r.Duration()
	if d <= 0 {
		return 0
	}
	return float64(r.Bytes) / d.Seconds()
}

// phase names the DCE's sequential transfer stages; one standing event
// walks them, so driver launch, batch reloads, and the completion
// interrupt never allocate.
type phase int

const (
	phaseIdle phase = iota
	// phaseLaunch: the driver has written the descriptors; start batch 0.
	phaseLaunch
	// phaseReload: the address buffer is being refilled for the next batch.
	phaseReload
	// phaseInterrupt: the completion interrupt is being delivered.
	phaseInterrupt
)

// transferState is the in-flight transfer (the engine serializes
// transfers, so there is at most one).
type transferState struct {
	op       Op
	start    clock.Picos
	onDone   func(Result)
	from     int // next undispatched descriptor index
	batchCap int
}

// Engine is the DCE hardware model.
//
// On a topology-sharded engine the DCE schedules its standing events on
// the serial-only "dce" lane: every DCE event (driver phases, the
// preprocessing drain) pumps the batch pipeline into the memory system,
// so all of them are crossings and fire at the shared frontier — the
// lane buys no window parallelism, but it gives the DCE its own
// ShardStats row so frontier pressure is attributable.
type Engine struct {
	eng   *sim.Engine
	sched sim.Scheduler // the DCE's event lane (the engine when not laned)
	sys   *memsys.System
	geom  pim.Geometry
	cfg   Config
	dom   clock.Domain

	busy    bool
	phaseEv sim.Event
	phase   phase
	cur     transferState
	batch   *batchRun

	// freeReq recycles line-request records (request + completion
	// callback), so the per-line issue path performs no allocation.
	freeReq *dceReq

	// preprocQ defers read-side lines through the preprocessing unit
	// (on-the-fly transpose). The unit's per-line latency is constant, so
	// readiness is FIFO and one standing event drains the queue.
	preprocQ    []clock.Picos
	preprocHead int
	preprocEv   sim.Event

	// TransfersDone and BytesMoved accumulate across transfers.
	TransfersDone uint64
	BytesMoved    uint64
}

// New builds a DCE attached to a memory system.
func New(eng *sim.Engine, sys *memsys.System, geom pim.Geometry, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{eng: eng, sched: eng, sys: sys, geom: geom, cfg: cfg, dom: clock.NewDomain(cfg.Clock)}
	if l, ok := eng.Lane("dce"); ok {
		e.sched = l
	}
	e.phaseEv.Init(sim.HandlerFunc(e.onPhase))
	e.preprocEv.Init(sim.HandlerFunc(e.firePreproc))
	return e, nil
}

// MustNew is New for static configurations.
func MustNew(eng *sim.Engine, sys *memsys.System, geom pim.Geometry, cfg Config) *Engine {
	e, err := New(eng, sys, geom, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config reports the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Geometry reports the attached PIM geometry.
func (e *Engine) Geometry() pim.Geometry { return e.geom }

// Busy reports whether a transfer is in flight.
func (e *Engine) Busy() bool { return e.busy }

// Transfer offloads op to the DCE. onDone runs when the completion
// interrupt is delivered. The engine serializes transfers; calling
// Transfer while busy is a programming error in the (single-threaded)
// runtime and panics, as does an invalid op.
func (e *Engine) Transfer(op Op, onDone func(Result)) {
	if e.busy {
		panic("core: DCE transfer while busy")
	}
	if err := op.Validate(e.geom); err != nil {
		panic(err)
	}
	e.busy = true
	e.cur = transferState{
		op:       op,
		start:    e.eng.Now(),
		onDone:   onDone,
		batchCap: e.cfg.AddrBufBytes / e.cfg.AddrEntryBytes,
	}
	e.phase = phaseLaunch
	e.sched.Schedule(&e.phaseEv, e.eng.Now()+e.cfg.DriverLaunch)
}

// onPhase advances the transfer's sequential stages.
func (e *Engine) onPhase(now clock.Picos) {
	switch e.phase {
	case phaseLaunch, phaseReload:
		e.startBatch()
	case phaseInterrupt:
		st := e.cur
		e.phase = phaseIdle
		e.cur = transferState{}
		e.busy = false
		e.TransfersDone++
		e.BytesMoved += st.op.Bytes()
		st.onDone(Result{Dir: st.op.Dir, Start: st.start, End: now, Bytes: st.op.Bytes()})
	default:
		panic("core: phase event while idle")
	}
}

// startBatch dispatches the next address-buffer-sized descriptor batch.
func (e *Engine) startBatch() {
	from := e.cur.from
	to := from + e.cur.batchCap
	if to > len(e.cur.op.Cores) {
		to = len(e.cur.op.Cores)
	}
	e.cur.from = to
	e.runBatch(e.cur.op, from, to)
}

// batchDone sequences the follow-on of a drained batch: an address-buffer
// reload when descriptors remain, the completion interrupt otherwise.
func (e *Engine) batchDone() {
	e.batch = nil
	if e.cur.from < len(e.cur.op.Cores) {
		e.phase = phaseReload
		e.sched.Schedule(&e.phaseEv, e.eng.Now()+e.cfg.BatchReload)
		return
	}
	e.phase = phaseInterrupt
	e.sched.Schedule(&e.phaseEv, e.eng.Now()+e.cfg.DriverInterrupt)
}

// streams derives the two stream sets for cores[from:to]: the DRAM-side
// per-core streams and the PIM-side per-bank streams.
func (e *Engine) streams(op Op, from, to int) (coreSide, bankSide []pimms.Stream) {
	type bankAgg struct {
		core  int // representative (lowest-lane) core
		bytes uint64
	}
	banks := map[int]*bankAgg{}
	for i := from; i < to; i++ {
		c := op.Cores[i]
		coreSide = append(coreSide, pimms.Stream{
			Core: c, Base: op.DRAMAddrs[i], Bytes: op.BytesPerCore,
		})
		bl := e.geom.BankLinear(c)
		a := banks[bl]
		if a == nil {
			a = &bankAgg{core: c}
			banks[bl] = a
		}
		if e.geom.Loc(c).Lane < e.geom.Loc(a.core).Lane {
			a.core = c
		}
		a.bytes += op.BytesPerCore
	}
	ids := make([]int, 0, len(banks))
	for bl := range banks {
		ids = append(ids, bl)
	}
	sort.Ints(ids)
	for _, bl := range ids {
		a := banks[bl]
		// Round partial-lane banks up to whole lines: the hardware writes
		// full bursts regardless of how many lanes carry live data.
		bytes := (a.bytes + mem.LineBytes - 1) &^ uint64(mem.LineBytes-1)
		bankSide = append(bankSide, pimms.Stream{
			Core:  a.core,
			Base:  e.geom.BankLineAddr(a.core, op.MRAMOffset),
			Bytes: bytes,
		})
	}
	return coreSide, bankSide
}

// DRAMChunkLines is how many consecutive lines the AGU walks within one
// DRAM-side descriptor before rotating to the next (4 KB). Under the
// MLP-centric mapping a sequential 4 KB chunk already spreads across all
// channels and bank groups, so chunking costs no parallelism while
// keeping the row buffer hot; the PIM side instead needs Algorithm 1's
// line-granular bank rotation because its locality-centric mapping has no
// in-chunk spreading to offer.
const DRAMChunkLines = 64

// runBatch executes one address-buffer-resident batch to completion.
func (e *Engine) runBatch(op Op, from, to int) {
	coreSide, bankSide := e.streams(op, from, to)
	readStreams, writeStreams := coreSide, bankSide
	if op.Dir == PIMToDRAM {
		readStreams, writeStreams = bankSide, coreSide
	}
	build := func(streams []pimms.Stream, pimSide bool) []pimms.Iterator {
		if !e.cfg.UsePIMMS {
			if e.cfg.ChannelRRWithoutPIMMS {
				return []pimms.Iterator{pimms.NewChannelRR(e.geom, streams)}
			}
			return []pimms.Iterator{pimms.NewSequential(e.geom, streams)}
		}
		if !pimSide {
			return []pimms.Iterator{pimms.NewChunked(e.geom, streams, DRAMChunkLines)}
		}
		var its []pimms.Iterator
		for _, it := range pimms.NewAlgorithm1(e.geom, streams) {
			if it.Remaining() > 0 {
				its = append(its, it)
			}
		}
		return its
	}
	buf := uint64(e.cfg.DataBufBytes)
	if !e.cfg.UsePIMMS && buf > uint64(e.cfg.DMAWindow*mem.LineBytes) {
		buf = uint64(e.cfg.DMAWindow * mem.LineBytes)
	}
	b := &batchRun{
		e:          e,
		readIts:    build(readStreams, op.Dir == PIMToDRAM),
		writeIts:   build(writeStreams, op.Dir == DRAMToPIM),
		totalRead:  pimms.TotalLines(readStreams) * mem.LineBytes,
		totalWrite: pimms.TotalLines(writeStreams) * mem.LineBytes,
		bufBytes:   buf,
	}
	e.batch = b
	b.pump()
}

// dceReq is a pooled line request: the mem.Req plus its completion
// callback, created once and recycled through the engine's free list so
// the per-line data path performs no allocation.
type dceReq struct {
	req  mem.Req
	e    *Engine
	read bool
	next *dceReq
}

// takeReq pops a recycled request record or creates one.
func (e *Engine) takeReq() *dceReq {
	dr := e.freeReq
	if dr == nil {
		dr = &dceReq{e: e}
		dr.req.OnDone = dr.complete
	} else {
		e.freeReq = dr.next
		dr.next = nil
	}
	return dr
}

// complete is the shared completion callback. The channel has finished
// with the request when it fires, so the record recycles immediately; the
// active batch then absorbs the completion.
func (dr *dceReq) complete(now clock.Picos) {
	e := dr.e
	read := dr.read
	dr.next = e.freeReq
	e.freeReq = dr
	b := e.batch
	if read {
		// Stream through the preprocessing unit (on-the-fly transpose),
		// then make the line available to the write side.
		e.queuePreproc(now)
		return
	}
	b.writesDone += mem.LineBytes
	b.pump()
}

// queuePreproc enters one arrived read line into the preprocessing
// pipeline. The unit's latency is constant, so ready times are FIFO.
func (e *Engine) queuePreproc(now clock.Picos) {
	at := now + e.dom.Duration(e.cfg.Preproc.Cycles(1))
	e.preprocQ = append(e.preprocQ, at)
	if !e.preprocEv.Scheduled() {
		e.sched.Schedule(&e.preprocEv, at)
	}
}

// firePreproc retires every preprocessed line that has matured and lets
// the batch pump the freed data-buffer space.
func (e *Engine) firePreproc(now clock.Picos) {
	n := uint64(0)
	for e.preprocHead < len(e.preprocQ) && e.preprocQ[e.preprocHead] <= now {
		e.preprocHead++
		n++
	}
	if e.preprocHead == len(e.preprocQ) {
		e.preprocQ = e.preprocQ[:0]
		e.preprocHead = 0
	} else {
		e.sched.Schedule(&e.preprocEv, e.preprocQ[e.preprocHead])
	}
	b := e.batch
	b.readsDone += n * mem.LineBytes
	b.pump()
}

// batchRun is the in-flight state of one batch: the read-side and
// write-side iterators coupled through the data buffer.
type batchRun struct {
	e                  *Engine
	readIts, writeIts  []pimms.Iterator
	rrR, rrW           int
	pendingR, pendingW *pimms.Granule

	readsIssued, readsDone   uint64 // bytes
	writesIssued, writesDone uint64 // bytes
	totalRead, totalWrite    uint64
	bufBytes                 uint64

	readStalled, writeStalled bool
	finished                  bool
}

func take(its []pimms.Iterator, rr *int, pending **pimms.Granule) (pimms.Granule, bool) {
	if *pending != nil {
		g := **pending
		*pending = nil
		return g, true
	}
	n := len(its)
	for scanned := 0; scanned < n; scanned++ {
		it := its[*rr]
		*rr = (*rr + 1) % n
		if g, ok := it.Next(); ok {
			return g, true
		}
	}
	return pimms.Granule{}, false
}

// pump advances both halves of the pipeline as far as resources allow.
func (b *batchRun) pump() {
	// Write side: issue while preprocessed data is available (or reads
	// have finished and the tail is draining).
	for !b.writeStalled {
		if b.writesIssued+mem.LineBytes > b.readsDone && b.readsDone < b.totalRead {
			break
		}
		if b.writesIssued >= b.totalWrite {
			break
		}
		g, ok := take(b.writeIts, &b.rrW, &b.pendingW)
		if !ok {
			break
		}
		if !b.issueWrite(g) {
			b.pendingW = &g
			b.writeStalled = true
			b.e.sys.WaitSpace(func() {
				b.writeStalled = false
				b.pump()
			})
			break
		}
		b.writesIssued += mem.LineBytes
	}
	// Read side: issue while the data buffer has room.
	for !b.readStalled {
		if b.readsIssued-b.writesDone+mem.LineBytes > b.bufBytes {
			break
		}
		g, ok := take(b.readIts, &b.rrR, &b.pendingR)
		if !ok {
			break
		}
		if !b.issueRead(g) {
			b.pendingR = &g
			b.readStalled = true
			b.e.sys.WaitSpace(func() {
				b.readStalled = false
				b.pump()
			})
			break
		}
		b.readsIssued += mem.LineBytes
	}
	b.finishIfDrained()
}

// issueRead sends one read-side line. DCE traffic bypasses the LLC in
// both directions.
func (b *batchRun) issueRead(g pimms.Granule) bool {
	return b.issue(g, mem.Read, true)
}

// issueWrite sends one write-side line.
func (b *batchRun) issueWrite(g pimms.Granule) bool {
	return b.issue(g, mem.Write, false)
}

func (b *batchRun) issue(g pimms.Granule, kind mem.Kind, read bool) bool {
	dr := b.e.takeReq()
	dr.read = read
	dr.req.Addr = g.Addr
	dr.req.Kind = kind
	dr.req.Cacheable = false
	dr.req.SrcID = SrcID
	if b.e.sys.TryEnqueue(&dr.req) {
		return true
	}
	// Rejected: the channel never saw the record, recycle it now.
	dr.next = b.e.freeReq
	b.e.freeReq = dr
	return false
}

// finishIfDrained hands the batch back to the engine once everything is
// done.
func (b *batchRun) finishIfDrained() {
	if b.finished || b.writesDone < b.totalWrite || b.readsDone < b.totalRead {
		return
	}
	b.finished = true
	b.e.batchDone()
}
