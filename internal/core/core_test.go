package core

import (
	"testing"

	"repro/internal/addrmap"
	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/memsys"
	"repro/internal/pim"
	"repro/internal/sim"
)

// rig bundles a small simulated system for DCE tests.
type rig struct {
	eng  *sim.Engine
	sys  *memsys.System
	geom pim.Geometry
	dce  *Engine
}

func newRig(t *testing.T, mapping memsys.MappingMode, dceCfg Config) *rig {
	t.Helper()
	g := addrmap.Geometry{Channels: 2, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 512, Cols: 128}
	mc := memsys.DefaultConfig()
	mc.DRAM.Geometry = g
	mc.PIM.Geometry = g
	mc.LLC = cache.Config{SizeBytes: 256 << 10, Ways: 8}
	mc.Mapping = mapping
	eng := sim.New()
	sys := memsys.MustNew(eng, mc)
	geom := pim.Geometry{DRAM: g, LanesPerBank: 2} // 128 cores
	return &rig{eng: eng, sys: sys, geom: geom, dce: MustNew(eng, sys, geom, dceCfg)}
}

// op builds a transfer of bytesPerCore to each of n cores.
func (r *rig) op(dir Direction, n int, bytesPerCore uint64) Op {
	op := Op{Dir: dir, BytesPerCore: bytesPerCore}
	for i := 0; i < n; i++ {
		op.Cores = append(op.Cores, i)
		op.DRAMAddrs = append(op.DRAMAddrs, uint64(i)*bytesPerCore)
	}
	return op
}

func TestTransferCompletesAndCountsBytes(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	op := r.op(DRAMToPIM, 32, 4096)
	var res Result
	r.dce.Transfer(op, func(rr Result) { res = rr })
	r.eng.Run()
	if res.Bytes != 32*4096 {
		t.Fatalf("result bytes = %d, want %d", res.Bytes, 32*4096)
	}
	if got := r.sys.PIM.Stats().BytesWritten(); got != 32*4096 {
		t.Errorf("PIM bytes written = %d, want %d", got, 32*4096)
	}
	if got := r.sys.DRAM.Stats().BytesRead(); got != 32*4096 {
		t.Errorf("DRAM bytes read = %d, want %d", got, 32*4096)
	}
	if res.Duration() <= r.dce.Config().DriverLaunch {
		t.Error("duration does not include transfer time")
	}
	if r.dce.TransfersDone != 1 || r.dce.BytesMoved != 32*4096 {
		t.Errorf("engine counters = %d transfers / %d bytes", r.dce.TransfersDone, r.dce.BytesMoved)
	}
}

func TestReverseDirection(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	op := r.op(PIMToDRAM, 32, 4096)
	var res Result
	r.dce.Transfer(op, func(rr Result) { res = rr })
	r.eng.Run()
	if res.Bytes != 32*4096 {
		t.Fatalf("result bytes = %d", res.Bytes)
	}
	if got := r.sys.PIM.Stats().BytesRead(); got != 32*4096 {
		t.Errorf("PIM bytes read = %d, want %d", got, 32*4096)
	}
	if got := r.sys.DRAM.Stats().BytesWritten(); got != 32*4096 {
		t.Errorf("DRAM bytes written = %d, want %d", got, 32*4096)
	}
}

// With PIM-MS and HetMap, the transfer must spread writes over every PIM
// channel roughly evenly and sustain a large fraction of peak bandwidth.
func TestPIMMSSpreadsChannelsAndSustainsBandwidth(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	op := r.op(DRAMToPIM, r.geom.NumCores(), 64<<10) // 8 MB total
	var res Result
	r.dce.Transfer(op, func(rr Result) { res = rr })
	r.eng.Run()
	st := r.sys.PIM.Stats()
	per := make([]float64, len(st.Channels))
	for i, c := range st.Channels {
		per[i] = float64(c.BytesWritten)
	}
	for i := 1; i < len(per); i++ {
		if per[i] < per[0]*0.9 || per[i] > per[0]*1.1 {
			t.Errorf("channel write imbalance: %v", per)
			break
		}
	}
	// 2 channels of DDR4-2400 = 38.4 GB/s peak; PIM-MS should exceed 60%.
	if gbps := res.Throughput() / 1e9; gbps < 0.6*38.4 {
		t.Errorf("PIM-MS throughput = %.1f GB/s, want > %.1f", gbps, 0.6*38.4)
	}
}

// Without PIM-MS (vanilla DMA window) the same transfer must be far
// slower — the Base+D effect of Fig. 15.
func TestVanillaDMAIsMuchSlower(t *testing.T) {
	run := func(usePIMMS bool) float64 {
		cfg := DefaultConfig()
		cfg.UsePIMMS = usePIMMS
		r := newRig(t, memsys.MapHetMap, cfg)
		op := r.op(DRAMToPIM, r.geom.NumCores(), 16<<10)
		var res Result
		r.dce.Transfer(op, func(rr Result) { res = rr })
		r.eng.Run()
		return res.Throughput()
	}
	with := run(true)
	without := run(false)
	if with < 3*without {
		t.Errorf("PIM-MS speedup = %.2fx (%.1f vs %.1f GB/s), want > 3x",
			with/without, with/1e9, without/1e9)
	}
}

func TestBatchingBeyondAddressBuffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AddrBufBytes = 32 * cfg.AddrEntryBytes // room for only 32 descriptors
	r := newRig(t, memsys.MapHetMap, cfg)
	op := r.op(DRAMToPIM, 128, 1024) // 128 descriptors => 4 batches
	var res Result
	r.dce.Transfer(op, func(rr Result) { res = rr })
	r.eng.Run()
	if res.Bytes != 128*1024 {
		t.Fatalf("batched transfer moved %d bytes, want %d", res.Bytes, 128*1024)
	}
	if got := r.sys.PIM.Stats().BytesWritten(); got != 128*1024 {
		t.Errorf("PIM bytes = %d, want %d", got, 128*1024)
	}
}

func TestBusyPanics(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	r.dce.Transfer(r.op(DRAMToPIM, 4, 1024), func(Result) {})
	defer func() {
		if recover() == nil {
			t.Error("second Transfer while busy did not panic")
		}
	}()
	r.dce.Transfer(r.op(DRAMToPIM, 4, 1024), func(Result) {})
}

func TestEmptyOpPanics(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("empty op did not panic")
		}
	}()
	r.dce.Transfer(Op{Dir: DRAMToPIM, BytesPerCore: 64}, func(Result) {})
}

func TestBackToBackTransfers(t *testing.T) {
	r := newRig(t, memsys.MapHetMap, DefaultConfig())
	done := 0
	var run func(i int)
	run = func(i int) {
		if i >= 3 {
			return
		}
		r.dce.Transfer(r.op(DRAMToPIM, 16, 2048), func(Result) {
			done++
			run(i + 1)
		})
	}
	run(0)
	r.eng.Run()
	if done != 3 {
		t.Errorf("completed %d of 3 back-to-back transfers", done)
	}
	if r.dce.Busy() {
		t.Error("engine still busy after drain")
	}
}

func TestDriverOverheadsIncluded(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(t, memsys.MapHetMap, cfg)
	var res Result
	r.dce.Transfer(r.op(DRAMToPIM, 1, 64), func(rr Result) { res = rr })
	r.eng.Run()
	min := cfg.DriverLaunch + cfg.DriverInterrupt
	if res.Duration() < min {
		t.Errorf("tiny transfer duration %v below driver floor %v", res.Duration(), min)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DataBufBytes = 0
	if bad.Validate() == nil {
		t.Error("DataBufBytes=0 accepted")
	}
	bad = DefaultConfig()
	bad.DMAWindow = 0
	if bad.Validate() == nil {
		t.Error("DMAWindow=0 accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if DRAMToPIM.String() != "DRAM->PIM" || PIMToDRAM.String() != "PIM->DRAM" {
		t.Error("Direction.String mismatch")
	}
}

func TestResultThroughput(t *testing.T) {
	r := Result{Start: 0, End: clock.Second, Bytes: 1 << 30}
	if got := r.Throughput(); got != float64(1<<30) {
		t.Errorf("Throughput = %v, want %v", got, float64(1<<30))
	}
	if (Result{}).Throughput() != 0 {
		t.Error("zero-duration throughput not 0")
	}
}

func TestChannelRROrderBetweenSequentialAndPIMMS(t *testing.T) {
	run := func(usePIMMS, chRR bool) float64 {
		cfg := DefaultConfig()
		cfg.UsePIMMS = usePIMMS
		cfg.ChannelRRWithoutPIMMS = chRR
		cfg.DMAWindow = cfg.DataBufBytes / 64
		r := newRig(t, memsys.MapHetMap, cfg)
		op := r.op(DRAMToPIM, r.geom.NumCores(), 8<<10)
		var res Result
		r.dce.Transfer(op, func(x Result) { res = x })
		r.eng.Run()
		return res.Throughput()
	}
	seq := run(false, false)
	chrr := run(false, true)
	alg1 := run(true, false)
	if !(seq < chrr && chrr < alg1) {
		t.Errorf("issue-order ordering violated: seq %.1f, chRR %.1f, alg1 %.1f GB/s",
			seq/1e9, chrr/1e9, alg1/1e9)
	}
}
