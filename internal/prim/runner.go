package prim

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/system"
)

// Phase is the end-to-end time breakdown Fig. 16 plots: input transfer,
// kernel execution, output transfer.
type Phase struct {
	Workload string
	Design   system.Design
	In       clock.Picos
	Kernel   clock.Picos
	Out      clock.Picos
}

// Total is the end-to-end execution time.
func (p Phase) Total() clock.Picos { return p.In + p.Kernel + p.Out }

// TransferFraction is the share of end-to-end time spent in transfers.
func (p Phase) TransferFraction() float64 {
	t := p.Total()
	if t <= 0 {
		return 0
	}
	return float64(p.In+p.Out) / float64(t)
}

// RunEndToEnd executes one workload's end-to-end flow on the given
// machine: DRAM->PIM input transfer, DPU kernel (analytic time — the
// PIM-MMU does not change kernel execution, Section V), PIM->DRAM output
// transfer. The scale factor shrinks the default problem (1.0) for quick
// runs; transfer volumes scale, the kernel model scales with them.
func RunEndToEnd(sys *system.System, w Workload, scale float64) Phase {
	if scale <= 0 {
		scale = 1
	}
	cores := sys.Cfg.PIM.NumCores()
	scaleBytes := func(b uint64) uint64 {
		v := uint64(float64(b)*scale) &^ 63
		if v < 64 {
			v = 64
		}
		return v
	}
	inBytes := scaleBytes(w.InBytesPerCore)
	outBytes := scaleBytes(w.OutBytesPerCore)

	ph := Phase{Workload: w.Name, Design: sys.Cfg.Design}
	rIn := sys.RunTransfer(sys.TransferOp(core.DRAMToPIM, cores, inBytes))
	ph.In = rIn.Duration

	// Kernel: all DPUs run in lockstep; wall time is the cycle budget at
	// the DPU clock, scaled with the problem size.
	kc := int64(float64(w.KernelCycles(cores)) * scale)
	ph.Kernel = clock.NewDomain(350_000_000).Duration(kc)
	sys.Eng.RunUntil(sys.Eng.Now() + ph.Kernel)

	rOut := sys.RunTransfer(sys.TransferOp(core.PIMToDRAM, cores, outBytes))
	ph.Out = rOut.Duration
	return ph
}
