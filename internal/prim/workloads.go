package prim

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/clock"
	"repro/internal/pim"
)

// Workload is one PrIM benchmark's timing descriptor plus its functional
// verification hook.
type Workload struct {
	// Name is the PrIM short name (Fig. 16's x-axis).
	Name string
	// InBytesPerCore / OutBytesPerCore are the DRAM->PIM and PIM->DRAM
	// transfer volumes per PIM core for the default problem size.
	InBytesPerCore  uint64
	OutBytesPerCore uint64
	// BaselineTransferFraction is the fraction of baseline end-to-end time
	// spent in DRAM<->PIM transfers, estimated from the PrIM measurements
	// the paper reports (avg 63.7%, max 99.7%); the DPU kernel-time model
	// is calibrated from it.
	BaselineTransferFraction float64
	// Verify runs the DPU-partitioned kernel against the host reference
	// on a deterministic input and reports any mismatch.
	Verify func(cores int, seed uint64) error
}

// nominalBaselineBW is the measured baseline DRAM<->PIM throughput used
// to convert transfer fractions into kernel cycles (Section III-B: the
// software path sustains roughly 10 GB/s on the Table I system).
const nominalBaselineBW = 10e9

// KernelCycles derives the DPU kernel cycle count for a run on the given
// number of cores: the kernel time that makes the baseline transfer share
// equal BaselineTransferFraction at the nominal baseline bandwidth.
func (w Workload) KernelCycles(cores int) int64 {
	totalBytes := float64(w.InBytesPerCore+w.OutBytesPerCore) * float64(cores)
	txSecs := totalBytes / nominalBaselineBW
	f := w.BaselineTransferFraction
	tkSecs := txSecs * (1 - f) / f
	return int64(tkSecs * float64(pim.DPUClock))
}

// KernelTime converts KernelCycles to wall time at the DPU clock.
func (w Workload) KernelTime(cores int) clock.Picos {
	return clock.NewDomain(pim.DPUClock).Duration(w.KernelCycles(cores))
}

// Validate reports descriptor errors.
func (w Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("prim: unnamed workload")
	}
	if w.InBytesPerCore == 0 || w.InBytesPerCore%64 != 0 || w.OutBytesPerCore%64 != 0 {
		return fmt.Errorf("prim: %s: transfer sizes must be positive multiples of 64", w.Name)
	}
	if w.BaselineTransferFraction <= 0 || w.BaselineTransferFraction > 0.999 {
		return fmt.Errorf("prim: %s: transfer fraction %f out of (0, 0.999]", w.Name, w.BaselineTransferFraction)
	}
	if w.Verify == nil {
		return fmt.Errorf("prim: %s: missing Verify", w.Name)
	}
	return nil
}

func check(name string, got, want interface{}) error {
	if !reflect.DeepEqual(got, want) {
		return fmt.Errorf("%s: %w", name, errMismatch)
	}
	return nil
}

// Suite returns the 16 PrIM workloads of Fig. 16, in the paper's order.
// Transfer volumes are per-core for the default 512-core problem; the
// transfer fractions follow the paper's baseline breakdown (avg 63.7%,
// TS nearly kernel-only at 0.3% transfer).
func Suite() []Workload {
	const mb = 1 << 20
	const kb = 1 << 10
	return []Workload{
		{
			Name: "BFS", InBytesPerCore: 1 * mb, OutBytesPerCore: 64 * kb,
			BaselineTransferFraction: 0.45,
			Verify: func(cores int, seed uint64) error {
				g := RandomGraph(seed, 2048, 4)
				return check("BFS", BFSDPU(g, 0, cores), BFSHost(g, 0))
			},
		},
		{
			Name: "BS", InBytesPerCore: 1 * mb, OutBytesPerCore: 256 * kb,
			BaselineTransferFraction: 0.95,
			Verify: func(cores int, seed uint64) error {
				hay := Int64s(seed, 4096, 1<<20)
				sortInt64s(hay)
				q := Int64s(seed+1, 1024, 1<<20)
				return check("BS", BSDPU(hay, q, cores), BSHost(hay, q))
			},
		},
		{
			Name: "GEMV", InBytesPerCore: 1 * mb, OutBytesPerCore: 8 * kb,
			BaselineTransferFraction: 0.50,
			Verify: func(cores int, seed uint64) error {
				const rows, cols = 96, 64
				m := Int32s(seed, rows*cols, 1000)
				v := Int32s(seed+1, cols, 1000)
				return check("GEMV", GEMVDPU(m, rows, cols, v, cores), GEMVHost(m, rows, cols, v))
			},
		},
		{
			Name: "HST-L", InBytesPerCore: 1 * mb, OutBytesPerCore: 32 * kb,
			BaselineTransferFraction: 0.45,
			Verify: func(cores int, seed uint64) error {
				x := Int32s(seed, 1<<14, 1<<30)
				return check("HST-L", HSTDPU(x, 4096, cores), HSTHost(x, 4096))
			},
		},
		{
			Name: "HST-S", InBytesPerCore: 1 * mb, OutBytesPerCore: 2 * kb,
			BaselineTransferFraction: 0.45,
			Verify: func(cores int, seed uint64) error {
				x := Int32s(seed, 1<<14, 1<<30)
				return check("HST-S", HSTDPU(x, 256, cores), HSTHost(x, 256))
			},
		},
		{
			Name: "MLP", InBytesPerCore: 1 * mb, OutBytesPerCore: 32 * kb,
			BaselineTransferFraction: 0.60,
			Verify: func(cores int, seed uint64) error {
				dims := []int{64, 96, 48, 16}
				var layers [][]int32
				for l := 0; l+1 < len(dims); l++ {
					layers = append(layers, Int32s(seed+uint64(l), dims[l+1]*dims[l], 128))
				}
				in := Int32s(seed+9, dims[0], 256)
				return check("MLP", MLPDPU(in, layers, dims, cores), MLPHost(in, layers, dims))
			},
		},
		{
			Name: "NW", InBytesPerCore: 128 * kb, OutBytesPerCore: 128 * kb,
			BaselineTransferFraction: 0.25,
			Verify: func(cores int, seed uint64) error {
				a := bytesFrom(Int32s(seed, 257, 4))
				b := bytesFrom(Int32s(seed+1, 301, 4))
				got, want := NWDPU(a, b, cores), NWHost(a, b)
				if got != want {
					return fmt.Errorf("NW: got %d want %d: %w", got, want, errMismatch)
				}
				return nil
			},
		},
		{
			Name: "RED", InBytesPerCore: 1 * mb, OutBytesPerCore: 64,
			BaselineTransferFraction: 0.55,
			Verify: func(cores int, seed uint64) error {
				x := Int64s(seed, 1<<14, 1<<30)
				if REDDPU(x, cores) != REDHost(x) {
					return fmt.Errorf("RED: %w", errMismatch)
				}
				return nil
			},
		},
		{
			Name: "SCAN-RSS", InBytesPerCore: 1 * mb, OutBytesPerCore: 1 * mb,
			BaselineTransferFraction: 0.75,
			Verify: func(cores int, seed uint64) error {
				x := Int64s(seed, 1<<14, 1<<20)
				return check("SCAN-RSS", ScanRSSDPU(x, cores), ScanHost(x))
			},
		},
		{
			Name: "SCAN-SSA", InBytesPerCore: 1 * mb, OutBytesPerCore: 1 * mb,
			BaselineTransferFraction: 0.75,
			Verify: func(cores int, seed uint64) error {
				x := Int64s(seed, 1<<14, 1<<20)
				return check("SCAN-SSA", ScanSSADPU(x, cores), ScanHost(x))
			},
		},
		{
			Name: "SEL", InBytesPerCore: 1 * mb, OutBytesPerCore: 512 * kb,
			BaselineTransferFraction: 0.80,
			Verify: func(cores int, seed uint64) error {
				x := Int64s(seed, 1<<14, 1<<20)
				return check("SEL", SELDPU(x, 3, cores), SELHost(x, 3))
			},
		},
		{
			Name: "SpMV", InBytesPerCore: 1 * mb, OutBytesPerCore: 16 * kb,
			BaselineTransferFraction: 0.55,
			Verify: func(cores int, seed uint64) error {
				a := RandomCSR(seed, 512, 512, 8)
				v := Int32s(seed+1, 512, 1000)
				return check("SpMV", SpMVDPU(a, v, cores), SpMVHost(a, v))
			},
		},
		{
			Name: "TRNS", InBytesPerCore: 1 * mb, OutBytesPerCore: 1 * mb,
			BaselineTransferFraction: 0.90,
			Verify: func(cores int, seed uint64) error {
				const rows, cols = 96, 64
				m := Int32s(seed, rows*cols, 1<<30)
				return check("TRNS", TRNSDPU(m, rows, cols, cores), TRNSHost(m, rows, cols))
			},
		},
		{
			Name: "TS", InBytesPerCore: 1 * mb, OutBytesPerCore: 64 * kb,
			BaselineTransferFraction: 0.003,
			Verify: func(cores int, seed uint64) error {
				x := Int32s(seed, 256, 64)
				return check("TS", TSDPU(x, 8, cores), TSHost(x, 8))
			},
		},
		{
			Name: "UNI", InBytesPerCore: 1 * mb, OutBytesPerCore: 512 * kb,
			BaselineTransferFraction: 0.70,
			Verify: func(cores int, seed uint64) error {
				x := Int64s(seed, 1<<14, 8) // small alphabet => duplicates
				return check("UNI", UNIDPU(x, cores), UNIHost(x))
			},
		},
		{
			Name: "VA", InBytesPerCore: 1 * mb, OutBytesPerCore: 512 * kb,
			BaselineTransferFraction: 0.70,
			Verify: func(cores int, seed uint64) error {
				a := Int32s(seed, 1<<14, 1<<20)
				b := Int32s(seed+1, 1<<14, 1<<20)
				return check("VA", VADPU(a, b, cores), VAHost(a, b))
			},
		},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

func sortInt64s(x []int64) {
	sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
}

func bytesFrom(x []int32) []byte {
	out := make([]byte, len(x))
	for i, v := range x {
		out[i] = byte(v)
	}
	return out
}
