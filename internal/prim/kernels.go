// Package prim implements the PrIM benchmark suite (Gómez-Luna et al.)
// used for the paper's end-to-end evaluation (Section VI-B, Fig. 16): the
// 16 memory-intensive workloads, each with a host reference
// implementation, a DPU-partitioned SPMD implementation (functional — it
// computes real results so partitioning bugs are caught by tests), and a
// timing descriptor (transfer volumes plus a DPU kernel-time model).
package prim

import (
	"fmt"
	"sort"
)

// splitRange divides n items into cores near-equal chunks; chunk c is
// [starts[c], starts[c+1]).
func splitRange(n, cores int) []int {
	starts := make([]int, cores+1)
	base, extra := n/cores, n%cores
	off := 0
	for c := 0; c < cores; c++ {
		starts[c] = off
		off += base
		if c < extra {
			off++
		}
	}
	starts[cores] = n
	return starts
}

// --- VA: vector addition ---

// VAHost computes c = a + b.
func VAHost(a, b []int32) []int32 {
	if len(a) != len(b) {
		panic("prim: VA length mismatch")
	}
	c := make([]int32, len(a))
	for i := range a {
		c[i] = a[i] + b[i]
	}
	return c
}

// VADPU partitions the vectors across cores (SPMD chunking) and merges.
func VADPU(a, b []int32, cores int) []int32 {
	c := make([]int32, len(a))
	starts := splitRange(len(a), cores)
	for core := 0; core < cores; core++ {
		for i := starts[core]; i < starts[core+1]; i++ {
			c[i] = a[i] + b[i]
		}
	}
	return c
}

// --- RED: reduction ---

// REDHost sums x.
func REDHost(x []int64) int64 {
	var s int64
	for _, v := range x {
		s += v
	}
	return s
}

// REDDPU reduces per-core partial sums, then the host combines them —
// the tree the PrIM RED kernel uses.
func REDDPU(x []int64, cores int) int64 {
	starts := splitRange(len(x), cores)
	partial := make([]int64, cores)
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			partial[c] += x[i]
		}
	}
	var s int64
	for _, p := range partial {
		s += p
	}
	return s
}

// --- SCAN-SSA and SCAN-RSS: exclusive prefix sum ---

// ScanHost computes the exclusive prefix sum.
func ScanHost(x []int64) []int64 {
	out := make([]int64, len(x))
	var acc int64
	for i, v := range x {
		out[i] = acc
		acc += v
	}
	return out
}

// ScanSSADPU is the scan-scan-add decomposition: each core scans its
// chunk, the host scans the chunk totals, each core adds its offset.
func ScanSSADPU(x []int64, cores int) []int64 {
	out := make([]int64, len(x))
	starts := splitRange(len(x), cores)
	totals := make([]int64, cores)
	for c := 0; c < cores; c++ {
		var acc int64
		for i := starts[c]; i < starts[c+1]; i++ {
			out[i] = acc
			acc += x[i]
		}
		totals[c] = acc
	}
	offsets := ScanHost(totals)
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			out[i] += offsets[c]
		}
	}
	return out
}

// ScanRSSDPU is the reduce-scan-scan decomposition: each core reduces its
// chunk, the host scans the totals, each core re-scans with its offset.
func ScanRSSDPU(x []int64, cores int) []int64 {
	starts := splitRange(len(x), cores)
	totals := make([]int64, cores)
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			totals[c] += x[i]
		}
	}
	offsets := ScanHost(totals)
	out := make([]int64, len(x))
	for c := 0; c < cores; c++ {
		acc := offsets[c]
		for i := starts[c]; i < starts[c+1]; i++ {
			out[i] = acc
			acc += x[i]
		}
	}
	return out
}

// --- SEL: stream select (keep elements not divisible by k) ---

// SELHost filters x, keeping values v with v%k != 0.
func SELHost(x []int64, k int64) []int64 {
	var out []int64
	for _, v := range x {
		if v%k != 0 {
			out = append(out, v)
		}
	}
	return out
}

// SELDPU filters per core, then compacts chunks in core order (the
// prefix-sum-of-counts placement PrIM's SEL uses).
func SELDPU(x []int64, k int64, cores int) []int64 {
	starts := splitRange(len(x), cores)
	chunks := make([][]int64, cores)
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			if x[i]%k != 0 {
				chunks[c] = append(chunks[c], x[i])
			}
		}
	}
	var out []int64
	for _, ch := range chunks {
		out = append(out, ch...)
	}
	return out
}

// --- UNI: unique (remove consecutive duplicates) ---

// UNIHost keeps the first element of every run of equal values.
func UNIHost(x []int64) []int64 {
	var out []int64
	for i, v := range x {
		if i == 0 || v != x[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// UNIDPU deduplicates per chunk, with boundary repair between chunks.
func UNIDPU(x []int64, cores int) []int64 {
	if len(x) == 0 {
		return nil
	}
	starts := splitRange(len(x), cores)
	var out []int64
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			if i == 0 || x[i] != x[i-1] {
				out = append(out, x[i])
			}
		}
	}
	return out
}

// --- BS: binary search ---

// BSHost returns, for each query, the index of its first occurrence in
// the sorted haystack (or -1).
func BSHost(haystack, queries []int64) []int32 {
	out := make([]int32, len(queries))
	for i, q := range queries {
		j := sort.Search(len(haystack), func(k int) bool { return haystack[k] >= q })
		if j < len(haystack) && haystack[j] == q {
			out[i] = int32(j)
		} else {
			out[i] = -1
		}
	}
	return out
}

// BSDPU partitions the queries across cores; every core holds the full
// haystack (replicated input, as in PrIM).
func BSDPU(haystack, queries []int64, cores int) []int32 {
	out := make([]int32, len(queries))
	starts := splitRange(len(queries), cores)
	for c := 0; c < cores; c++ {
		part := BSHost(haystack, queries[starts[c]:starts[c+1]])
		copy(out[starts[c]:], part)
	}
	return out
}

// --- HST-S / HST-L: histogram (small and large bin counts) ---

// HSTHost builds a histogram of x into bins buckets; values hash by
// modulo.
func HSTHost(x []int32, bins int) []int64 {
	h := make([]int64, bins)
	for _, v := range x {
		h[int(uint32(v))%bins]++
	}
	return h
}

// HSTDPU builds per-core private histograms and merges them (HST-S keeps
// the histogram in scratchpad, HST-L in MRAM; functionally identical).
func HSTDPU(x []int32, bins, cores int) []int64 {
	starts := splitRange(len(x), cores)
	h := make([]int64, bins)
	for c := 0; c < cores; c++ {
		local := make([]int64, bins)
		for i := starts[c]; i < starts[c+1]; i++ {
			local[int(uint32(x[i]))%bins]++
		}
		for b, v := range local {
			h[b] += v
		}
	}
	return h
}

// --- GEMV: dense matrix-vector multiply ---

// GEMVHost computes y = M*v for a rows x cols row-major matrix.
func GEMVHost(m []int32, rows, cols int, v []int32) []int64 {
	if len(m) != rows*cols || len(v) != cols {
		panic("prim: GEMV shape mismatch")
	}
	y := make([]int64, rows)
	for r := 0; r < rows; r++ {
		var acc int64
		for c := 0; c < cols; c++ {
			acc += int64(m[r*cols+c]) * int64(v[c])
		}
		y[r] = acc
	}
	return y
}

// GEMVDPU partitions matrix rows across cores; the vector is replicated.
func GEMVDPU(m []int32, rows, cols int, v []int32, cores int) []int64 {
	y := make([]int64, rows)
	starts := splitRange(rows, cores)
	for c := 0; c < cores; c++ {
		for r := starts[c]; r < starts[c+1]; r++ {
			var acc int64
			for k := 0; k < cols; k++ {
				acc += int64(m[r*cols+k]) * int64(v[k])
			}
			y[r] = acc
		}
	}
	return y
}

// --- SpMV: sparse matrix-vector multiply (CSR) ---

// CSR is a compressed sparse row matrix.
type CSR struct {
	Rows   int
	RowPtr []int32
	Cols   []int32
	Vals   []int32
}

// SpMVHost computes y = A*v.
func SpMVHost(a CSR, v []int32) []int64 {
	y := make([]int64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		var acc int64
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			acc += int64(a.Vals[i]) * int64(v[a.Cols[i]])
		}
		y[r] = acc
	}
	return y
}

// SpMVDPU partitions rows across cores (PrIM's 1D row partitioning).
func SpMVDPU(a CSR, v []int32, cores int) []int64 {
	y := make([]int64, a.Rows)
	starts := splitRange(a.Rows, cores)
	for c := 0; c < cores; c++ {
		for r := starts[c]; r < starts[c+1]; r++ {
			var acc int64
			for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
				acc += int64(a.Vals[i]) * int64(v[a.Cols[i]])
			}
			y[r] = acc
		}
	}
	return y
}

// --- TRNS: matrix transpose ---

// TRNSHost transposes a rows x cols row-major matrix.
func TRNSHost(m []int32, rows, cols int) []int32 {
	out := make([]int32, len(m))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = m[r*cols+c]
		}
	}
	return out
}

// TRNSDPU partitions source rows across cores.
func TRNSDPU(m []int32, rows, cols, cores int) []int32 {
	out := make([]int32, len(m))
	starts := splitRange(rows, cores)
	for core := 0; core < cores; core++ {
		for r := starts[core]; r < starts[core+1]; r++ {
			for c := 0; c < cols; c++ {
				out[c*rows+r] = m[r*cols+c]
			}
		}
	}
	return out
}

// --- MLP: multilayer perceptron inference (ReLU, integer weights) ---

// MLPHost evaluates a dense network: layers[i] is rows x cols(prev) in
// row-major form.
func MLPHost(input []int32, layers [][]int32, dims []int) []int32 {
	if len(dims) != len(layers)+1 {
		panic("prim: MLP dims mismatch")
	}
	act := input
	for l, w := range layers {
		in, out := dims[l], dims[l+1]
		next := make([]int32, out)
		for r := 0; r < out; r++ {
			var acc int64
			for c := 0; c < in; c++ {
				acc += int64(w[r*in+c]) * int64(act[c])
			}
			// ReLU with saturation keeps values bounded and deterministic.
			if acc < 0 {
				acc = 0
			}
			next[r] = int32(acc >> 8)
		}
		act = next
	}
	return act
}

// MLPDPU partitions each layer's output neurons across cores, with a host
// synchronization between layers (as PrIM does).
func MLPDPU(input []int32, layers [][]int32, dims []int, cores int) []int32 {
	act := input
	for l, w := range layers {
		in, out := dims[l], dims[l+1]
		next := make([]int32, out)
		starts := splitRange(out, cores)
		for core := 0; core < cores; core++ {
			for r := starts[core]; r < starts[core+1]; r++ {
				var acc int64
				for c := 0; c < in; c++ {
					acc += int64(w[r*in+c]) * int64(act[c])
				}
				if acc < 0 {
					acc = 0
				}
				next[r] = int32(acc >> 8)
			}
		}
		act = next
	}
	return act
}

// --- NW: Needleman-Wunsch global alignment score ---

// NWHost computes the alignment score matrix's final cell for sequences a
// and b (match +1, mismatch -1, gap -1).
func NWHost(a, b []byte) int32 {
	prev := make([]int32, len(b)+1)
	cur := make([]int32, len(b)+1)
	for j := range prev {
		prev[j] = int32(-j)
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = int32(-i)
		for j := 1; j <= len(b); j++ {
			d := prev[j-1]
			if a[i-1] == b[j-1] {
				d++
			} else {
				d--
			}
			best := d
			if v := prev[j] - 1; v > best {
				best = v
			}
			if v := cur[j-1] - 1; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// NWDPU processes the DP matrix in horizontal bands, one band per core in
// sequence with the carried boundary row — the blocked decomposition
// PrIM's NW kernel uses (cores within a band work on anti-diagonal tiles;
// functionally the band order is what matters).
func NWDPU(a, b []byte, cores int) int32 {
	starts := splitRange(len(a), cores)
	boundary := make([]int32, len(b)+1)
	for j := range boundary {
		boundary[j] = int32(-j)
	}
	for c := 0; c < cores; c++ {
		lo, hi := starts[c], starts[c+1]
		prev := boundary
		cur := make([]int32, len(b)+1)
		for i := lo + 1; i <= hi; i++ {
			cur[0] = int32(-i)
			for j := 1; j <= len(b); j++ {
				d := prev[j-1]
				if a[i-1] == b[j-1] {
					d++
				} else {
					d--
				}
				best := d
				if v := prev[j] - 1; v > best {
					best = v
				}
				if v := cur[j-1] - 1; v > best {
					best = v
				}
				cur[j] = best
			}
			prev, cur = cur, make([]int32, len(b)+1)
		}
		boundary = prev
	}
	return boundary[len(b)]
}

// --- BFS: level-synchronous breadth-first search ---

// Graph is a CSR adjacency structure.
type Graph struct {
	N      int
	RowPtr []int32
	Adj    []int32
}

// BFSHost returns per-vertex levels from source (or -1 if unreachable).
func BFSHost(g Graph, src int) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
				u := g.Adj[i]
				if level[u] < 0 {
					level[u] = depth
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return level
}

// BFSDPU partitions each level's frontier across cores (vertex-parallel,
// level-synchronous, as PrIM's BFS).
func BFSDPU(g Graph, src, cores int) []int32 {
	level := make([]int32, g.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := []int32{int32(src)}
	for depth := int32(1); len(frontier) > 0; depth++ {
		starts := splitRange(len(frontier), cores)
		nexts := make([][]int32, cores)
		for c := 0; c < cores; c++ {
			for _, v := range frontier[starts[c]:starts[c+1]] {
				for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
					u := g.Adj[i]
					if level[u] < 0 {
						// Benign race in the real kernel; sequential here,
						// so the claim is deterministic.
						level[u] = depth
						nexts[c] = append(nexts[c], u)
					}
				}
			}
		}
		frontier = frontier[:0]
		for _, n := range nexts {
			frontier = append(frontier, n...)
		}
	}
	return level
}

// --- TS: time-series motif discovery (brute-force matrix-profile style) ---

// TSHost returns, for each window of length w, the minimal squared
// Euclidean distance to any non-overlapping window.
func TSHost(x []int32, w int) []int64 {
	n := len(x) - w + 1
	if n <= 1 {
		return nil
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		best := int64(1) << 62
		for j := 0; j < n; j++ {
			if j >= i-w && j <= i+w {
				continue // exclusion zone
			}
			var d int64
			for k := 0; k < w; k++ {
				diff := int64(x[i+k]) - int64(x[j+k])
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		out[i] = best
	}
	return out
}

// TSDPU partitions the query windows across cores; the series is
// replicated (as PrIM's TS).
func TSDPU(x []int32, w, cores int) []int64 {
	n := len(x) - w + 1
	if n <= 1 {
		return nil
	}
	out := make([]int64, n)
	starts := splitRange(n, cores)
	for c := 0; c < cores; c++ {
		for i := starts[c]; i < starts[c+1]; i++ {
			best := int64(1) << 62
			for j := 0; j < n; j++ {
				if j >= i-w && j <= i+w {
					continue
				}
				var d int64
				for k := 0; k < w; k++ {
					diff := int64(x[i+k]) - int64(x[j+k])
					d += diff * diff
				}
				if d < best {
					best = d
				}
			}
			out[i] = best
		}
	}
	return out
}

// randState is a tiny deterministic PRNG (xorshift*) for test inputs.
type randState uint64

func newRand(seed uint64) *randState {
	r := randState(seed*2685821657736338717 + 1)
	return &r
}

func (r *randState) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = randState(x)
	return x * 2685821657736338717
}

// Int32s produces n deterministic pseudo-random values in [0, bound).
func Int32s(seed uint64, n int, bound int32) []int32 {
	r := newRand(seed)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.next() % uint64(bound))
	}
	return out
}

// Int64s produces n deterministic pseudo-random values in [0, bound).
func Int64s(seed uint64, n int, bound int64) []int64 {
	r := newRand(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.next() % uint64(bound))
	}
	return out
}

// RandomGraph builds a deterministic sparse graph with about deg edges
// per vertex.
func RandomGraph(seed uint64, n, deg int) Graph {
	r := newRand(seed)
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			u := int32(r.next() % uint64(n))
			adj[v] = append(adj[v], u)
		}
	}
	g := Graph{N: n, RowPtr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] = g.RowPtr[v] + int32(len(adj[v]))
		g.Adj = append(g.Adj, adj[v]...)
	}
	return g
}

// RandomCSR builds a deterministic sparse matrix with about nnzPerRow
// entries per row.
func RandomCSR(seed uint64, rows, cols, nnzPerRow int) CSR {
	r := newRand(seed)
	m := CSR{Rows: rows, RowPtr: make([]int32, rows+1)}
	for row := 0; row < rows; row++ {
		used := map[int32]bool{}
		for i := 0; i < nnzPerRow; i++ {
			c := int32(r.next() % uint64(cols))
			if used[c] {
				continue
			}
			used[c] = true
			m.Cols = append(m.Cols, c)
			m.Vals = append(m.Vals, int32(r.next()%255)-127)
		}
		m.RowPtr[row+1] = int32(len(m.Cols))
	}
	return m
}

var errMismatch = fmt.Errorf("prim: DPU result differs from host reference")
