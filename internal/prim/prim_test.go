package prim

import (
	"testing"
	"testing/quick"

	"repro/internal/system"
)

// Every workload's DPU-partitioned kernel must match its host reference
// for a range of core counts, including awkward ones.
func TestAllKernelsMatchHostReference(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, cores := range []int{1, 2, 3, 16, 61, 512} {
				if err := w.Verify(cores, 0xC0FFEE); err != nil {
					t.Errorf("cores=%d: %v", cores, err)
				}
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	ws := Suite()
	if len(ws) != 16 {
		t.Fatalf("suite has %d workloads, want 16 (PrIM)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Error(err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
	for _, name := range []string{"BFS", "BS", "GEMV", "HST-L", "HST-S", "MLP", "NW",
		"RED", "SCAN-RSS", "SCAN-SSA", "SEL", "SpMV", "TRNS", "TS", "UNI", "VA"} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("VA"); !ok || w.Name != "VA" {
		t.Error("ByName(VA) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

// The average baseline transfer fraction across the suite must track the
// paper's 63.7% average, and TS must be the kernel-dominated outlier.
func TestTransferFractionsMatchPaperShape(t *testing.T) {
	ws := Suite()
	var sum float64
	var maxF float64
	for _, w := range ws {
		sum += w.BaselineTransferFraction
		if w.BaselineTransferFraction > maxF {
			maxF = w.BaselineTransferFraction
		}
	}
	avg := sum / float64(len(ws))
	if avg < 0.50 || avg > 0.75 {
		t.Errorf("average transfer fraction = %.3f, want near the paper's 0.637", avg)
	}
	ts, _ := ByName("TS")
	if ts.BaselineTransferFraction > 0.05 {
		t.Error("TS should be kernel-dominated (paper: transfer is negligible)")
	}
	if maxF < 0.90 {
		t.Error("no workload is transfer-dominated; paper reports up to 99.7%")
	}
}

// Kernel cycles must scale linearly with transfer volume and inversely
// with the transfer fraction.
func TestKernelCyclesModel(t *testing.T) {
	w := Workload{Name: "x", InBytesPerCore: 1 << 20, OutBytesPerCore: 1 << 20,
		BaselineTransferFraction: 0.5}
	c512 := w.KernelCycles(512)
	c256 := w.KernelCycles(256)
	if d := c512 - 2*c256; d < -1 || d > 1 {
		t.Errorf("KernelCycles not linear in cores: %d vs %d", c512, c256)
	}
	w2 := w
	w2.BaselineTransferFraction = 0.25
	if w2.KernelCycles(512) <= w.KernelCycles(512) {
		t.Error("lower transfer fraction should mean more kernel cycles")
	}
}

// Scan decompositions: both SSA and RSS must equal the sequential scan
// for arbitrary inputs (property test).
func TestScanDecompositionsProperty(t *testing.T) {
	f := func(raw []int16, coresRaw uint8) bool {
		x := make([]int64, len(raw))
		for i, v := range raw {
			x[i] = int64(v)
		}
		cores := int(coresRaw%31) + 1
		want := ScanHost(x)
		ssa := ScanSSADPU(x, cores)
		rss := ScanRSSDPU(x, cores)
		if len(x) == 0 {
			return len(ssa) == 0 && len(rss) == 0
		}
		for i := range want {
			if ssa[i] != want[i] || rss[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// SEL and UNI must be invariant to the core count (property test).
func TestSelUniCoreCountInvariance(t *testing.T) {
	f := func(seed uint64, c1, c2 uint8) bool {
		x := Int64s(seed, 500, 16)
		n1, n2 := int(c1%63)+1, int(c2%63)+1
		s1, s2 := SELDPU(x, 3, n1), SELDPU(x, 3, n2)
		if len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		u1, u2 := UNIDPU(x, n1), UNIDPU(x, n2)
		if len(u1) != len(u2) {
			return false
		}
		for i := range u1 {
			if u1[i] != u2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TRNS applied twice is the identity (property, via the kernel itself).
func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		const rows, cols = 24, 40
		m := Int32s(seed, rows*cols, 1<<30)
		tr := TRNSDPU(m, rows, cols, 7)
		back := TRNSDPU(tr, cols, rows, 5)
		for i := range m {
			if back[i] != m[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// RED equals SCAN's last element plus the last input (cross-kernel
// consistency).
func TestRedScanConsistency(t *testing.T) {
	x := Int64s(7, 1000, 1<<20)
	total := REDHost(x)
	scan := ScanHost(x)
	if got := scan[len(scan)-1] + x[len(x)-1]; got != total {
		t.Errorf("scan/red inconsistency: %d vs %d", got, total)
	}
}

// BFS levels must satisfy the triangle property: adjacent vertices'
// levels differ by at most 1 (when both reached).
func TestBFSLevelInvariant(t *testing.T) {
	g := RandomGraph(3, 4096, 3)
	level := BFSDPU(g, 0, 64)
	for v := 0; v < g.N; v++ {
		if level[v] < 0 {
			continue
		}
		for i := g.RowPtr[v]; i < g.RowPtr[v+1]; i++ {
			u := g.Adj[i]
			if level[u] < 0 {
				t.Fatalf("reached vertex %d has unreached neighbour %d", v, u)
			}
			if level[u] > level[v]+1 {
				t.Fatalf("level jump: %d(level %d) -> %d(level %d)", v, level[v], u, level[u])
			}
		}
	}
}

// End-to-end smoke: a scaled-down VA run must produce a sane breakdown on
// both designs, with PIM-MMU shrinking only the transfer phases.
func TestRunEndToEndVA(t *testing.T) {
	w, _ := ByName("VA")
	const scale = 1.0 / 64
	base := system.MustNew(system.DefaultConfig(system.Base))
	pb := RunEndToEnd(base, w, scale)
	mmu := system.MustNew(system.DefaultConfig(system.PIMMMU))
	pm := RunEndToEnd(mmu, w, scale)

	if pb.Kernel != pm.Kernel {
		t.Errorf("kernel time differs across designs: %v vs %v", pb.Kernel, pm.Kernel)
	}
	if pm.In >= pb.In || pm.Out >= pb.Out {
		t.Errorf("PIM-MMU transfers not faster: in %v vs %v, out %v vs %v",
			pm.In, pb.In, pm.Out, pb.Out)
	}
	speedup := float64(pb.Total()) / float64(pm.Total())
	if speedup < 1.2 {
		t.Errorf("end-to-end speedup = %.2fx, want > 1.2x for a transfer-heavy workload", speedup)
	}
	t.Logf("VA end-to-end: base %v (xfer %.0f%%), pim-mmu %v, speedup %.2fx",
		pb.Total(), pb.TransferFraction()*100, pm.Total(), speedup)
}

// TS must show almost no end-to-end gain (paper: transfer is not its
// bottleneck).
func TestRunEndToEndTSMarginal(t *testing.T) {
	w, _ := ByName("TS")
	const scale = 1.0 / 256
	base := system.MustNew(system.DefaultConfig(system.Base))
	pb := RunEndToEnd(base, w, scale)
	mmu := system.MustNew(system.DefaultConfig(system.PIMMMU))
	pm := RunEndToEnd(mmu, w, scale)
	speedup := float64(pb.Total()) / float64(pm.Total())
	t.Logf("TS: base in=%v k=%v out=%v | mmu in=%v k=%v out=%v", pb.In, pb.Kernel, pb.Out, pm.In, pm.Kernel, pm.Out)
	if speedup > 1.10 {
		t.Errorf("TS speedup = %.3fx; should be marginal (kernel-bound)", speedup)
	}
}

func TestPhaseHelpers(t *testing.T) {
	p := Phase{In: 30, Kernel: 40, Out: 30}
	if p.Total() != 100 {
		t.Errorf("Total = %d", p.Total())
	}
	if p.TransferFraction() != 0.6 {
		t.Errorf("TransferFraction = %v", p.TransferFraction())
	}
	if (Phase{}).TransferFraction() != 0 {
		t.Error("zero phase fraction != 0")
	}
}
