package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/clock"
)

// shardedHarness is a synthetic multi-lane machine: nLanes lanes each run
// a self-rescheduling local event chain, periodically scheduling crossing
// events that append to a shared log next to a host ticker. The log and
// the final counters must not depend on the worker count.
type shardedHarness struct {
	eng    *Engine
	log    []string
	lanes  []*benchLane
	hostEv Event
	hostN  int
}

type benchLane struct {
	h         *shardedHarness
	sched     Scheduler
	id        int
	tick      Event
	cross     Event
	step      clock.Picos
	remaining int
	fired     int
}

// OnEvent is the lane's local chain: pure lane-local state.
func (l *benchLane) OnEvent(now clock.Picos) {
	l.fired++
	if l.remaining--; l.remaining > 0 {
		l.sched.ScheduleLocal(&l.tick, now+l.step)
	}
	// Every fourth firing schedules a crossing event one lookahead out,
	// which appends to the shared log when it fires at the frontier.
	if l.fired%4 == 0 {
		if !l.cross.Scheduled() {
			l.sched.Schedule(&l.cross, now+lookaheadPs)
		}
	}
}

type crossFire struct{ l *benchLane }

func (c crossFire) OnEvent(now clock.Picos) {
	h := c.l.h
	h.log = append(h.log, fmt.Sprintf("%d lane%d f%d", now, c.l.id, c.l.fired))
}

const lookaheadPs = 5000

// buildHarness wires nLanes lanes with n local events each onto eng.
func buildHarness(eng *Engine, nLanes, perLane int) *shardedHarness {
	h := &shardedHarness{eng: eng}
	for i := 0; i < nLanes; i++ {
		l := &benchLane{
			h:     h,
			sched: eng.NewLane(lookaheadPs),
			id:    i,
			// Distinct primes stagger the lanes' clocks so windows see
			// uneven load.
			step:      clock.Picos(701 + 97*i),
			remaining: perLane,
		}
		l.tick.Init(l)
		l.cross.Init(crossFire{l})
		l.sched.ScheduleLocal(&l.tick, l.step)
		h.lanes = append(h.lanes, l)
	}
	h.hostEv.Init(HandlerFunc(func(now clock.Picos) {
		h.hostN++
		h.log = append(h.log, fmt.Sprintf("%d host %d", now, h.hostN))
		if h.hostN < 40 {
			eng.Schedule(&h.hostEv, now+3301)
		}
	}))
	eng.Schedule(&h.hostEv, 1000)
	return h
}

// runHarness drives one full run at the given worker count and returns
// the shared log plus per-lane fired counts.
func runHarness(workers, nLanes, perLane int) ([]string, []int, uint64) {
	eng := NewSharded(workers)
	h := buildHarness(eng, nLanes, perLane)
	eng.Run()
	counts := make([]int, nLanes)
	for i, l := range h.lanes {
		counts[i] = l.fired
	}
	return h.log, counts, eng.Fired()
}

// TestShardedDeterministicAcrossWorkers pins the construction-level
// guarantee: the crossing-event log, every lane's event count, and the
// total fired count are identical for 1, 2, 3, 4 and 8 workers.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	refLog, refCounts, refFired := runHarness(1, 6, 400)
	if len(refLog) == 0 {
		t.Fatal("harness produced no crossing events")
	}
	for _, w := range []int{2, 3, 4, 8} {
		log, counts, fired := runHarness(w, 6, 400)
		if !reflect.DeepEqual(log, refLog) {
			t.Fatalf("workers=%d: crossing log diverged (len %d vs %d)", w, len(log), len(refLog))
		}
		if !reflect.DeepEqual(counts, refCounts) {
			t.Fatalf("workers=%d: lane counts %v != %v", w, counts, refCounts)
		}
		if fired != refFired {
			t.Fatalf("workers=%d: fired %d != %d", w, fired, refFired)
		}
	}
}

// TestShardedFrontierSafety checks the conservative window never runs a
// lane past a pending host event: a host probe at a fixed time must
// observe exactly the lane events with earlier timestamps, regardless of
// worker count.
func TestShardedFrontierSafety(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		eng := NewSharded(w)
		type counterLane struct {
			ev    Event
			n     int
			sched Scheduler
		}
		lanes := make([]*counterLane, 4)
		for i := range lanes {
			l := &counterLane{sched: eng.NewLane(1000)}
			step := clock.Picos(10 + i) // events at 10,20,... / 11,22,...
			l.ev.Init(HandlerFunc(func(now clock.Picos) {
				l.n++
				if now < 100000 {
					l.sched.ScheduleLocal(&l.ev, now+step)
				}
			}))
			l.sched.ScheduleLocal(&l.ev, step)
			lanes[i] = l
		}
		const probeAt = 50000
		var seen []int
		eng.At(probeAt, func() {
			for _, l := range lanes {
				seen = append(seen, l.n)
			}
		})
		eng.Run()
		for i, l := range lanes {
			step := 10 + i
			want := (probeAt - 1) / step // events strictly before the probe
			if seen[i] != want {
				t.Errorf("workers=%d lane%d: probe saw %d events, want %d", w, i, seen[i], want)
			}
			_ = l
		}
	}
}

// TestShardedPromote verifies a promoted event joins the mailbox: after
// Promote, the event must fire at the frontier in canonical order with
// host events rather than inside a window. Observable consequence: a
// promoted event and a host event at the same timestamp fire in
// deterministic relative order at every worker count, with the log intact.
func TestShardedPromote(t *testing.T) {
	run := func(workers int) []string {
		eng := NewSharded(workers)
		var log []string
		sched := eng.NewLane(100)
		var lane Event
		lane.Init(HandlerFunc(func(now clock.Picos) {
			log = append(log, fmt.Sprintf("lane@%d", now))
		}))
		sched.ScheduleLocal(&lane, 500)
		sched.Promote(&lane)
		// A second, still-local lane keeps window mode reachable.
		sched2 := eng.NewLane(100)
		var filler Event
		n := 0
		filler.Init(HandlerFunc(func(now clock.Picos) {
			if n++; n < 50 {
				sched2.ScheduleLocal(&filler, now+20)
			}
		}))
		sched2.ScheduleLocal(&filler, 20)
		eng.At(500, func() { log = append(log, "host@500") })
		eng.Run()
		return log
	}
	ref := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: log %v != %v", w, got, ref)
		}
	}
}

// TestShardedRunUntil checks deadline semantics on a sharded engine: only
// events at or before the deadline fire and the clock lands on it.
func TestShardedRunUntil(t *testing.T) {
	eng := NewSharded(2)
	sched := eng.NewLane(50)
	fired := 0
	var ev Event
	ev.Init(HandlerFunc(func(now clock.Picos) {
		fired++
		if now < 4000 {
			sched.ScheduleLocal(&ev, now+100)
		}
	}))
	sched.ScheduleLocal(&ev, 100)
	hostFired := 0
	eng.At(5000, func() { hostFired++ })
	eng.RunUntil(1000)
	if fired != 10 {
		t.Errorf("fired %d lane events by t=1000, want 10", fired)
	}
	if hostFired != 0 {
		t.Errorf("host event at 5000 fired before deadline")
	}
	if eng.Now() != 1000 {
		t.Errorf("Now = %v, want 1000", eng.Now())
	}
	if eng.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", eng.Pending())
	}
	eng.Run()
	if hostFired != 1 {
		t.Errorf("host event did not fire after resume")
	}
}

// TestShardedCancel removes a crossing event and checks the mailbox does
// not keep stalling the frontier (the run must drain completely).
func TestShardedCancel(t *testing.T) {
	eng := NewSharded(2)
	sched := eng.NewLane(100)
	var cross Event
	cross.Init(HandlerFunc(func(clock.Picos) { t.Error("canceled event fired") }))
	sched.Schedule(&cross, 10000)
	var local Event
	n := 0
	local.Init(HandlerFunc(func(now clock.Picos) {
		if n++; n < 20 {
			sched.ScheduleLocal(&local, now+5)
		}
	}))
	sched.ScheduleLocal(&local, 5)
	sched.Cancel(&cross)
	if cross.Scheduled() {
		t.Fatal("event still scheduled after Cancel")
	}
	eng.Run()
	if n != 20 {
		t.Errorf("local chain fired %d, want 20", n)
	}
	if eng.Pending() != 0 {
		t.Errorf("Pending = %d after Run", eng.Pending())
	}
}

// TestAdaptiveTune exercises the window controller's policy table
// directly on a synthetic shardSet: threshold doubling/halving on the
// inline ratio, pool sizing from events/window quantized to a power of
// two, the serial-fallback bias, and the hard bounds.
func TestAdaptiveTune(t *testing.T) {
	mk := func() *shardSet {
		return &shardSet{workers: 8, lanes: make([]*Lane, 8), inlineMax: inlineMaxInit, poolTarget: 8}
	}

	// Every window ran inline: the threshold doubles so the rare large
	// window still dispatches the pool.
	s := mk()
	s.windows, s.tuneInline, s.tuneEvents = tuneInterval, tuneInterval, tuneInterval*100
	s.tune()
	if s.inlineMax != 2*inlineMaxInit {
		t.Errorf("all-inline interval: inlineMax = %d, want %d", s.inlineMax, 2*inlineMaxInit)
	}

	// No window ran inline and windows were tiny: the threshold halves
	// and the pool parks down to the floor.
	s = mk()
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*4
	s.tune()
	if s.inlineMax != inlineMaxInit/2 {
		t.Errorf("no-inline interval: inlineMax = %d, want %d", s.inlineMax, inlineMaxInit/2)
	}
	if s.poolTarget != 2 {
		t.Errorf("tiny windows: poolTarget = %d, want 2", s.poolTarget)
	}

	// Big windows keep the pool at the worker cap.
	s = mk()
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*1000
	s.tune()
	if s.poolTarget != 8 {
		t.Errorf("big windows: poolTarget = %d, want 8", s.poolTarget)
	}

	// A serial-dominated interval biases the target down a notch, and the
	// result lands on a power of two.
	s = mk()
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*40
	s.serialSteps = tuneInterval * 100
	s.tune()
	if s.poolTarget != 4 {
		t.Errorf("serial-biased interval: poolTarget = %d, want 4", s.poolTarget)
	}

	// Bounds hold at both extremes.
	s = mk()
	s.inlineMax = inlineMaxMax
	s.windows, s.tuneInline, s.tuneEvents = tuneInterval, tuneInterval, tuneInterval
	s.tune()
	if s.inlineMax != inlineMaxMax {
		t.Errorf("inlineMax grew past the cap: %d", s.inlineMax)
	}
	s = mk()
	s.inlineMax = inlineMaxMin
	s.windows, s.tuneEvents = tuneInterval, tuneInterval
	s.tune()
	if s.inlineMax != inlineMaxMin {
		t.Errorf("inlineMax shrank past the floor: %d", s.inlineMax)
	}
}

// TestSerialEngineIsAScheduler pins that a plain engine satisfies the
// Scheduler surface lanes offer, so components shard transparently.
func TestSerialEngineIsAScheduler(t *testing.T) {
	eng := New()
	s := eng.NewLane(1234)
	if s != Scheduler(eng) {
		t.Fatal("NewLane on a serial engine must return the engine itself")
	}
	var ev Event
	fired := false
	ev.Init(HandlerFunc(func(clock.Picos) { fired = true }))
	s.ScheduleLocal(&ev, 10)
	s.Promote(&ev) // no-op
	eng.Run()
	if !fired {
		t.Fatal("event did not fire through the Scheduler surface")
	}
}

// TestBareStepLeavesNoPool drives a sharded engine with bare Step calls
// (no run-loop bracket): windows must execute ad hoc and leave no
// persistent worker pool behind to leak.
func TestBareStepLeavesNoPool(t *testing.T) {
	eng := NewSharded(4)
	h := buildHarness(eng, 6, 200)
	for eng.Step() {
	}
	if eng.shards.pool != nil {
		t.Fatal("bare Step left a persistent worker pool")
	}
	if eng.shards.runDepth != 0 {
		t.Fatalf("runDepth = %d after bare stepping", eng.shards.runDepth)
	}
	_ = h
	// And a bracketed run on the same engine still works and cleans up.
	eng2 := NewSharded(4)
	buildHarness(eng2, 6, 200)
	eng2.Run()
	if eng2.shards.pool != nil || eng2.shards.runDepth != 0 {
		t.Fatal("Run did not park its pool")
	}
}
