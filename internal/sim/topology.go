// Lane topology: the declarative description a sharded engine is built
// from.
//
// PR 3 hard-coded one lane per DDR4 channel plus the host lane. A
// Topology generalizes that: it names every lane of the simulated
// machine and, for each lane, the crossing edges through which the
// lane's component can become visible to the rest of the machine, with
// the minimum simulated latency of each edge. The lane's conservative
// lookahead — the window bound of sharded.go — is the minimum over its
// outgoing edges: nothing the lane does locally can take effect across
// any edge sooner than that.
//
// The Table I machine's topology (built by system.Config.Topology):
//
//	dram:<i> --min(CL,CWL)+BL--> host      (data burst after a column command)
//	pim:<i>  --min(CL,CWL)+BL--> host      (same, PIM DIMM timing)
//	core:<i> --min(LLC hit, quantum)--> llc (earliest a computing core can
//	                                        reach shared memory state)
//	dce      --0--> llc                     (serial-only: every DCE event
//	                                        touches the memory system)
//
// An edge with zero minimum latency makes the lane serial-only: its
// events always fire at the shared frontier, but per-lane accounting
// (ShardStats) still attributes them.
package sim

import (
	"fmt"

	"repro/internal/clock"
)

// Edge is one crossing edge out of a lane: the destination label (host,
// llc, another lane — informational) and the minimum simulated latency
// between a lane-local event firing and any effect becoming visible
// across this edge.
type Edge struct {
	To         string
	MinLatency clock.Picos
}

// LaneSpec declares one lane of a topology.
type LaneSpec struct {
	Name  string
	Edges []Edge
}

// Lookahead is the lane's conservative window bound: the minimum over
// its crossing edges' latencies. A lane with no declared edges is
// serial-only (lookahead 0): absent knowledge of how it interacts, the
// engine must assume it can cross immediately.
func (s LaneSpec) Lookahead() clock.Picos {
	if len(s.Edges) == 0 {
		return 0
	}
	la := s.Edges[0].MinLatency
	for _, e := range s.Edges[1:] {
		if e.MinLatency < la {
			la = e.MinLatency
		}
	}
	if la < 0 {
		la = 0
	}
	return la
}

// Topology is the lane set a sharded engine is built from.
type Topology struct {
	Lanes []LaneSpec
}

// Add appends a lane spec (builder convenience).
func (t *Topology) Add(name string, edges ...Edge) *Topology {
	t.Lanes = append(t.Lanes, LaneSpec{Name: name, Edges: edges})
	return t
}

// Validate reports malformed topologies: empty or duplicate lane names,
// negative edge latencies.
func (t Topology) Validate() error {
	seen := make(map[string]bool, len(t.Lanes))
	for _, l := range t.Lanes {
		if l.Name == "" {
			return fmt.Errorf("sim: topology lane with empty name")
		}
		if seen[l.Name] {
			return fmt.Errorf("sim: duplicate topology lane %q", l.Name)
		}
		seen[l.Name] = true
		for _, e := range l.Edges {
			if e.MinLatency < 0 {
				return fmt.Errorf("sim: lane %q edge to %q has negative latency %d",
					l.Name, e.To, e.MinLatency)
			}
		}
	}
	return nil
}

// NewShardedTopology builds a sharded engine with every lane of the
// topology claimed up front; components then attach to their lane by
// name via Engine.Lane. workers selects how many goroutines execute
// conservative windows (1 = the serial determinism reference).
func NewShardedTopology(workers int, t Topology) (*Engine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	e := NewSharded(workers)
	e.shards.byName = make(map[string]*Lane, len(t.Lanes))
	e.shards.topo = t
	for _, spec := range t.Lanes {
		l := e.NewLane(spec.Lookahead()).(*Lane)
		l.name = spec.Name
		e.shards.byName[spec.Name] = l
	}
	return e, nil
}

// MustNewShardedTopology is NewShardedTopology for static topologies.
func MustNewShardedTopology(workers int, t Topology) *Engine {
	e, err := NewShardedTopology(workers, t)
	if err != nil {
		panic(err)
	}
	return e
}

// Lane looks up a topology lane by name. ok is false when the engine is
// serial, was built without a topology (plain NewSharded), or the
// topology does not declare the name; callers then fall back to the
// host lane or a dynamically claimed one.
func (e *Engine) Lane(name string) (Scheduler, bool) {
	if e.shards == nil || e.shards.byName == nil {
		return nil, false
	}
	l, ok := e.shards.byName[name]
	if !ok {
		return nil, false
	}
	return l, true
}

// TopologySpec reports the topology the engine was built from (zero
// value for serial or dynamically sharded engines).
func (e *Engine) TopologySpec() Topology {
	if e.shards == nil {
		return Topology{}
	}
	return e.shards.topo
}

// LaneStats is one lane's instrumentation snapshot (see ShardStats).
type LaneStats struct {
	Name      string
	Lookahead clock.Picos
	// Fired counts events fired on the lane: WindowFired inside parallel
	// windows, SerialFired one at a time at the shared frontier.
	Fired       uint64
	WindowFired uint64
	SerialFired uint64
	// Windows counts conservative windows in which the lane fired at
	// least one local event.
	Windows uint64
	// Pending is the lane's scheduled-but-unfired event count; Mailbox is
	// the crossing subset currently held for the frontier, and
	// MailboxPeak its high-water mark over the run.
	Pending     int
	Mailbox     int
	MailboxPeak int
}

// ShardStats is a snapshot of the sharded engine's execution counters:
// where events fired (windows vs the serial frontier) and how deep each
// lane's mailbox ran. Take it from host context (between runs or inside
// a host event); a plain engine reports a zero value with nil Lanes.
type ShardStats struct {
	Workers int
	// Windows counts window executions (InlineWindows of which ran on
	// the caller's goroutine because they were too small for pool
	// dispatch to amortize); SerialSteps counts serial frontier fires
	// (the serial-fallback path plus every crossing event). A run
	// dominated by SerialSteps is frontier-bound: the lane decomposition
	// is not buying parallelism on that workload.
	Windows       uint64
	InlineWindows uint64
	SerialSteps   uint64
	// InlineMax and PoolTarget are the adaptive controller's current
	// settings: the events-per-worker threshold below which a window runs
	// inline, and how many pool goroutines windows currently dispatch to
	// (capped by Workers and the lane count). Both start at their
	// construction defaults and retune from the live counters.
	InlineMax  uint64
	PoolTarget int
	// WindowNanos, SerialNanos and CrossingNanos are the wall-time cost
	// model's EWMAs (costmodel.go): real nanoseconds per window (both
	// execution modes blended), per lane-local serial-fallback fire, and
	// per crossing frontier fire, sampled on an amortized cadence. Zero
	// until the matching path has been sampled. Diagnostics only — they
	// steer the controller, never the simulation.
	WindowNanos   float64
	SerialNanos   float64
	CrossingNanos float64
	// HostFired/HostPending describe the host lane (lane 0).
	HostFired   uint64
	HostPending int
	Lanes       []LaneStats
}

// ShardStats snapshots the engine's per-lane instrumentation counters.
func (e *Engine) ShardStats() ShardStats {
	if e.shards == nil {
		return ShardStats{Workers: 1}
	}
	s := e.shards
	st := ShardStats{
		Workers:       s.workers,
		Windows:       s.windows,
		InlineWindows: s.inlineWindows,
		SerialSteps:   s.serialSteps,
		InlineMax:     s.inlineMax,
		PoolTarget:    s.poolTarget,
		WindowNanos:   s.cost.windowNs,
		SerialNanos:   s.cost.serialNs,
		CrossingNanos: s.cost.crossNs,
		HostFired:     e.fired - s.laneSerialFired,
		HostPending:   len(e.heap),
	}
	for _, l := range s.lanes {
		name := l.name
		if name == "" {
			name = fmt.Sprintf("lane:%d", l.id)
		}
		st.Lanes = append(st.Lanes, LaneStats{
			Name:        name,
			Lookahead:   l.lookahead,
			Fired:       l.fired + l.serialFired,
			WindowFired: l.fired,
			SerialFired: l.serialFired,
			Windows:     l.windows,
			Pending:     len(l.heap),
			Mailbox:     len(l.mail),
			MailboxPeak: l.mailPeak,
		})
	}
	return st
}

// ResetStats zeros the execution counters ShardStats reports — fired
// counts, window/serial tallies, mailbox peaks and the adaptive
// controller's accumulators — so an engine reused across Run calls
// (the harness pattern) attributes each run's activity to that run
// alone. Queue state (scheduled events, mailboxes, clocks) and the
// controller's learned settings (InlineMax, PoolTarget and the
// wall-time cost EWMAs) are kept: the next run starts tuned, not from
// scratch. Call from host context, like
// ShardStats; a plain engine only resets its fired count.
func (e *Engine) ResetStats() {
	e.fired = 0
	if e.shards == nil {
		return
	}
	s := e.shards
	s.windows = 0
	s.inlineWindows = 0
	s.serialSteps = 0
	s.laneSerialFired = 0
	s.tuneAt = 0
	s.tuneEvents = 0
	s.tuneInline = 0
	s.tuneSerial = 0
	for _, l := range s.lanes {
		l.fired = 0
		l.serialFired = 0
		l.windows = 0
		l.mailPeak = len(l.mail)
	}
}

// String renders the snapshot as one aligned block for -lane-stats
// style diagnostics.
func (st ShardStats) String() string {
	if st.Lanes == nil {
		return "plain engine (no lanes)\n"
	}
	out := fmt.Sprintf("workers=%d (pool target %d) windows=%d (inline %d, threshold %d) serial-steps=%d host fired=%d pending=%d\n",
		st.Workers, st.PoolTarget, st.Windows, st.InlineWindows, st.InlineMax, st.SerialSteps, st.HostFired, st.HostPending)
	out += fmt.Sprintf("  cost: window=%.0fns serial=%.0fns crossing=%.0fns (sampled wall-time EWMAs; 0 = unsampled)\n",
		st.WindowNanos, st.SerialNanos, st.CrossingNanos)
	for _, l := range st.Lanes {
		out += fmt.Sprintf("  %-10s lookahead=%-12v fired=%d (window %d / serial %d) windows=%d mailbox=%d peak=%d\n",
			l.Name, l.Lookahead, l.Fired, l.WindowFired, l.SerialFired, l.Windows, l.Mailbox, l.MailboxPeak)
	}
	return out
}
