package sim

import (
	"testing"

	"repro/internal/clock"
)

// BenchmarkEngineReschedule measures the hot-component pattern: one
// standing event rescheduled in place and fired, as a DRAM channel does
// every command cycle. This path must not allocate.
func BenchmarkEngineReschedule(b *testing.B) {
	e := New()
	var ev Event
	ev.Init(HandlerFunc(func(clock.Picos) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(&ev, e.Now()+1)
		e.Step()
	}
}

// BenchmarkEngineSelfReschedule measures an event that reschedules itself
// from its own handler (the ticker/channel-tick shape) with the engine
// driving.
func BenchmarkEngineSelfReschedule(b *testing.B) {
	e := New()
	var ev Event
	n := 0
	ev.Init(HandlerFunc(func(now clock.Picos) {
		n++
		if n < b.N {
			e.Schedule(&ev, now+1)
		}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(&ev, 1)
	e.Run()
}

// BenchmarkEngineContendedReschedule measures rescheduling with a
// realistically full queue (64 other standing events pending), so the
// sift cost is representative of a busy simulation.
func BenchmarkEngineContendedReschedule(b *testing.B) {
	e := New()
	noop := HandlerFunc(func(clock.Picos) {})
	for i := 0; i < 64; i++ {
		ev := &Event{}
		ev.Init(noop)
		e.Schedule(ev, clock.Picos(1<<40)+clock.Picos(i))
	}
	var ev Event
	ev.Init(noop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(&ev, e.Now()+1)
		e.Step()
	}
}

// BenchmarkEngineCancelReschedule measures the cancel+reschedule cycle
// (a component aborting one deadline for another).
func BenchmarkEngineCancelReschedule(b *testing.B) {
	e := New()
	var ev Event
	ev.Init(HandlerFunc(func(clock.Picos) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(&ev, e.Now()+100)
		e.Cancel(&ev)
	}
}

// BenchmarkEngineClosure measures the legacy closure path (one At + fire
// per iteration). The engine's event record is pooled; the remaining
// allocation is the caller's closure.
func BenchmarkEngineClosure(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, func() {})
		e.Step()
	}
}

// BenchmarkEngineTicker measures the per-tick cost of a standing ticker.
func BenchmarkEngineTicker(b *testing.B) {
	e := New()
	n := 0
	e.Ticker(1, func(clock.Picos) bool {
		n++
		return n < b.N
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineMixedLoad measures schedule/fire throughput with 256
// standing events rescheduling themselves at staggered offsets — the
// aggregate shape of a multi-channel simulation.
func BenchmarkEngineMixedLoad(b *testing.B) {
	e := New()
	fired := 0
	const k = 256
	evs := make([]Event, k)
	for i := range evs {
		i := i
		evs[i].Init(HandlerFunc(func(now clock.Picos) {
			fired++
			if fired+k <= b.N {
				e.Schedule(&evs[i], now+clock.Picos(1+i%7))
			}
		}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range evs {
		e.Schedule(&evs[i], clock.Picos(1+i))
	}
	e.Run()
}
