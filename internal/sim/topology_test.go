package sim

import (
	"strings"
	"testing"

	"repro/internal/clock"
)

func TestTopologyValidate(t *testing.T) {
	var good Topology
	good.Add("dram:0", Edge{To: "host", MinLatency: 100})
	good.Add("core:0", Edge{To: "llc", MinLatency: 50}, Edge{To: "os", MinLatency: 900})
	good.Add("dce")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		topo func() Topology
	}{
		{"empty name", func() Topology { var tp Topology; tp.Add(""); return tp }},
		{"duplicate name", func() Topology {
			var tp Topology
			tp.Add("a")
			tp.Add("a")
			return tp
		}},
		{"negative latency", func() Topology {
			var tp Topology
			tp.Add("a", Edge{To: "host", MinLatency: -1})
			return tp
		}},
	}
	for _, tc := range cases {
		if err := tc.topo().Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed topology", tc.name)
		}
	}
}

func TestLaneSpecLookahead(t *testing.T) {
	cases := []struct {
		spec LaneSpec
		want clock.Picos
	}{
		// The lookahead is the minimum over the crossing edges.
		{LaneSpec{Edges: []Edge{{MinLatency: 300}, {MinLatency: 100}, {MinLatency: 200}}}, 100},
		// No edges: serial-only — the engine must assume immediate crossing.
		{LaneSpec{}, 0},
		{LaneSpec{Edges: []Edge{{MinLatency: 42}}}, 42},
	}
	for i, tc := range cases {
		if got := tc.spec.Lookahead(); got != tc.want {
			t.Errorf("case %d: Lookahead = %v, want %v", i, got, tc.want)
		}
	}
}

func TestNewShardedTopologyClaimsLanesByName(t *testing.T) {
	var topo Topology
	topo.Add("ch:0", Edge{To: "host", MinLatency: 1000})
	topo.Add("ch:1", Edge{To: "host", MinLatency: 1000})
	topo.Add("serial-only")
	eng, err := NewShardedTopology(2, topo)
	if err != nil {
		t.Fatal(err)
	}
	s0, ok := eng.Lane("ch:0")
	if !ok {
		t.Fatal("declared lane not found")
	}
	l0 := s0.(*Lane)
	if l0.Name() != "ch:0" || l0.lookahead != 1000 {
		t.Errorf("lane ch:0 = %q lookahead %v, want ch:0 / 1000", l0.Name(), l0.lookahead)
	}
	sd, ok := eng.Lane("serial-only")
	if !ok || sd.(*Lane).lookahead != 0 {
		t.Error("edge-less lane must exist with zero lookahead (serial-only)")
	}
	if _, ok := eng.Lane("missing"); ok {
		t.Error("undeclared lane resolved")
	}
	if got := len(eng.TopologySpec().Lanes); got != 3 {
		t.Errorf("TopologySpec reports %d lanes, want 3", got)
	}
	// Serial and dynamically sharded engines decline lookups.
	if _, ok := New().Lane("ch:0"); ok {
		t.Error("serial engine resolved a lane name")
	}
	if _, ok := NewSharded(2).Lane("ch:0"); ok {
		t.Error("dynamically sharded engine resolved a lane name")
	}
}

func TestNewShardedTopologyRejectsInvalid(t *testing.T) {
	var topo Topology
	topo.Add("a")
	topo.Add("a")
	if _, err := NewShardedTopology(2, topo); err == nil {
		t.Fatal("NewShardedTopology accepted a duplicate lane")
	}
}

// TestShardStatsCounters runs the synthetic multi-lane harness and checks
// the instrumentation snapshot adds up: per-lane fired splits into
// window vs serial fires, mailbox peaks record crossings, and the totals
// agree with Engine.Fired.
func TestShardStatsCounters(t *testing.T) {
	eng := NewSharded(4)
	h := buildHarness(eng, 4, 300)
	eng.Run()
	st := eng.ShardStats()
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if len(st.Lanes) != 4 {
		t.Fatalf("lanes = %d, want 4", len(st.Lanes))
	}
	var total uint64
	for i, l := range st.Lanes {
		if l.Fired != l.WindowFired+l.SerialFired {
			t.Errorf("lane %d: Fired %d != window %d + serial %d", i, l.Fired, l.WindowFired, l.SerialFired)
		}
		if l.Fired == 0 {
			t.Errorf("lane %d fired nothing", i)
		}
		if l.MailboxPeak == 0 {
			t.Errorf("lane %d: crossings ran but MailboxPeak = 0", i)
		}
		if l.Pending != 0 || l.Mailbox != 0 {
			t.Errorf("lane %d: pending %d mailbox %d after drain", i, l.Pending, l.Mailbox)
		}
		if l.Name != "" && !strings.HasPrefix(l.Name, "lane:") {
			t.Errorf("dynamic lane %d has unexpected name %q", i, l.Name)
		}
		total += l.Fired
	}
	if total+st.HostFired != eng.Fired() {
		t.Errorf("lane fires %d + host %d != engine total %d", total, st.HostFired, eng.Fired())
	}
	if st.Windows == 0 {
		t.Error("no windows executed on a 4-worker harness")
	}
	if st.SerialSteps == 0 {
		t.Error("no serial frontier steps recorded")
	}
	if len(h.log) == 0 {
		t.Error("harness produced no crossings")
	}
	if !strings.Contains(st.String(), "workers=4") {
		t.Errorf("String() = %q lacks worker count", st.String())
	}
}

// TestResetStats pins the reuse contract: after ResetStats an engine
// reports only the activity of runs that follow, while queue state and
// the controller's learned settings survive.
func TestResetStats(t *testing.T) {
	eng := NewSharded(4)
	h := buildHarness(eng, 4, 300)
	eng.Run()
	if eng.Fired() == 0 || eng.ShardStats().Windows == 0 {
		t.Fatal("first run recorded no activity")
	}
	tuned := eng.ShardStats()
	eng.ResetStats()
	st := eng.ShardStats()
	if st.Windows != 0 || st.InlineWindows != 0 || st.SerialSteps != 0 || st.HostFired != 0 {
		t.Errorf("engine counters survived ResetStats: %+v", st)
	}
	if st.InlineMax != tuned.InlineMax || st.PoolTarget != tuned.PoolTarget {
		t.Errorf("ResetStats dropped controller settings: %d/%d, want %d/%d",
			st.InlineMax, st.PoolTarget, tuned.InlineMax, tuned.PoolTarget)
	}
	for i, l := range st.Lanes {
		if l.Fired != 0 || l.WindowFired != 0 || l.SerialFired != 0 || l.Windows != 0 {
			t.Errorf("lane %d counters survived ResetStats: %+v", i, l)
		}
		if l.MailboxPeak != l.Mailbox {
			t.Errorf("lane %d MailboxPeak = %d, want current depth %d", i, l.MailboxPeak, l.Mailbox)
		}
	}
	if eng.Fired() != 0 {
		t.Errorf("Fired = %d after ResetStats", eng.Fired())
	}
	// A second run on the same engine attributes only its own events.
	for _, l := range h.lanes {
		l.remaining = 100
		l.sched.ScheduleLocal(&l.tick, l.sched.Now()+l.step)
	}
	eng.Run()
	again := eng.ShardStats()
	var laneFired uint64
	for _, l := range again.Lanes {
		laneFired += l.Fired
	}
	if laneFired+again.HostFired != eng.Fired() {
		t.Errorf("second run: lane fires %d + host %d != engine total %d",
			laneFired, again.HostFired, eng.Fired())
	}
	if laneFired == 0 {
		t.Error("second run recorded no lane activity")
	}
	// A plain engine resets its fired count and nothing else.
	p := New()
	var ev Event
	ev.Init(HandlerFunc(func(clock.Picos) {}))
	p.Schedule(&ev, 10)
	p.Run()
	p.ResetStats()
	if p.Fired() != 0 {
		t.Errorf("plain engine Fired = %d after ResetStats", p.Fired())
	}
}

// TestShardStatsPlainEngine pins the plain-engine snapshot: a zero value
// with nil lanes, so callers can gate diagnostics on it.
func TestShardStatsPlainEngine(t *testing.T) {
	st := New().ShardStats()
	if st.Lanes != nil || st.Windows != 0 {
		t.Errorf("plain engine ShardStats = %+v, want empty", st)
	}
	if !strings.Contains(st.String(), "plain engine") {
		t.Errorf("String() = %q", st.String())
	}
}
