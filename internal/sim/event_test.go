package sim

import (
	"testing"

	"repro/internal/clock"
)

// recorder is a Handler that logs fire times.
type recorder struct {
	fired []clock.Picos
}

func (r *recorder) OnEvent(now clock.Picos) { r.fired = append(r.fired, now) }

func TestEventScheduleAndFire(t *testing.T) {
	e := New()
	r := &recorder{}
	var ev Event
	ev.Init(r)
	if ev.Scheduled() {
		t.Fatal("zero-value event reports scheduled")
	}
	e.Schedule(&ev, 100)
	if !ev.Scheduled() || ev.When() != 100 {
		t.Fatalf("Scheduled=%v When=%d, want true/100", ev.Scheduled(), ev.When())
	}
	e.Run()
	if len(r.fired) != 1 || r.fired[0] != 100 {
		t.Errorf("fired = %v, want [100]", r.fired)
	}
	if ev.Scheduled() {
		t.Error("event still scheduled after firing")
	}
}

func TestEventRescheduleMovesInPlace(t *testing.T) {
	e := New()
	r := &recorder{}
	var ev Event
	ev.Init(r)
	e.Schedule(&ev, 500)
	e.Schedule(&ev, 200) // earlier
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after reschedule, want 1 (no stale duplicate)", e.Pending())
	}
	e.Schedule(&ev, 300) // later again
	e.Run()
	if len(r.fired) != 1 || r.fired[0] != 300 {
		t.Errorf("fired = %v, want [300]", r.fired)
	}
}

func TestEventCancel(t *testing.T) {
	e := New()
	r := &recorder{}
	var ev Event
	ev.Init(r)
	e.Schedule(&ev, 100)
	e.Cancel(&ev)
	e.Cancel(&ev) // double-cancel is a no-op
	if ev.Scheduled() || e.Pending() != 0 {
		t.Fatal("cancel did not remove the event")
	}
	e.Run()
	if len(r.fired) != 0 {
		t.Errorf("canceled event fired: %v", r.fired)
	}
	// The handle is reusable after cancel.
	e.Schedule(&ev, 400)
	e.Run()
	if len(r.fired) != 1 || r.fired[0] != 400 {
		t.Errorf("fired = %v, want [400]", r.fired)
	}
}

func TestEventRescheduleIsFreshInsertionForFIFO(t *testing.T) {
	// An event rescheduled onto a timestamp fires after closures already
	// queued at that timestamp, exactly as if it had been newly inserted.
	e := New()
	var order []int
	var ev Event
	ev.Init(HandlerFunc(func(clock.Picos) { order = append(order, 99) }))
	e.Schedule(&ev, 50)
	e.At(100, func() { order = append(order, 1) })
	e.Schedule(&ev, 100) // moved after closure 1 was queued
	e.At(100, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 99 || order[2] != 2 {
		t.Errorf("order = %v, want [1 99 2]", order)
	}
}

func TestEventSelfRescheduleFromHandler(t *testing.T) {
	e := New()
	var ev Event
	count := 0
	ev.Init(HandlerFunc(func(now clock.Picos) {
		count++
		if count < 5 {
			e.Schedule(&ev, now+10)
		}
	}))
	e.Schedule(&ev, 10)
	e.Run()
	if count != 5 || e.Now() != 50 {
		t.Errorf("count=%d Now=%d, want 5/50", count, e.Now())
	}
}

func TestEventInterleavesDeterministicallyWithClosures(t *testing.T) {
	// Mixed handle/closure workload fires in (time, insertion) order.
	e := New()
	var order []string
	mk := func(tag string) *Event {
		ev := &Event{}
		ev.Init(HandlerFunc(func(clock.Picos) { order = append(order, tag) }))
		return ev
	}
	a, b := mk("a"), mk("b")
	e.At(10, func() { order = append(order, "x") })
	e.Schedule(a, 10)
	e.At(10, func() { order = append(order, "y") })
	e.Schedule(b, 10)
	e.Run()
	want := []string{"x", "a", "y", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleWithoutHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule without Init did not panic")
		}
	}()
	New().Schedule(&Event{}, 10)
}

func TestInitWhileScheduledPanics(t *testing.T) {
	e := New()
	var ev Event
	ev.Init(HandlerFunc(func(clock.Picos) {}))
	e.Schedule(&ev, 10)
	defer func() {
		if recover() == nil {
			t.Error("Init on scheduled event did not panic")
		}
	}()
	ev.Init(HandlerFunc(func(clock.Picos) {}))
}

func TestEventSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		var ev Event
		ev.Init(HandlerFunc(func(clock.Picos) {}))
		defer func() {
			if recover() == nil {
				t.Error("Schedule(past) did not panic")
			}
		}()
		e.Schedule(&ev, 50)
	})
	e.Run()
}

func TestNextReportsEarliest(t *testing.T) {
	e := New()
	if e.Next() != clock.Never {
		t.Errorf("Next() on empty engine = %d, want Never", e.Next())
	}
	e.At(70, func() {})
	e.At(30, func() {})
	if e.Next() != 30 {
		t.Errorf("Next() = %d, want 30", e.Next())
	}
	e.Run()
}

func TestCancelMiddleOfHeapKeepsOrder(t *testing.T) {
	e := New()
	var order []int
	evs := make([]*Event, 10)
	for i := range evs {
		i := i
		evs[i] = &Event{}
		evs[i].Init(HandlerFunc(func(clock.Picos) { order = append(order, i) }))
		e.Schedule(evs[i], clock.Picos(10*(i+1)))
	}
	e.Cancel(evs[3])
	e.Cancel(evs[7])
	e.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClosurePoolReuse(t *testing.T) {
	// After a closure fires, a subsequent At must not grow the pool
	// unboundedly; this exercises the free-list path including scheduling
	// from inside a firing closure.
	e := New()
	total := 0
	var chain func()
	chain = func() {
		total++
		if total < 1000 {
			e.After(1, chain)
		}
	}
	e.At(0, chain)
	e.Run()
	if total != 1000 {
		t.Fatalf("chained closures fired %d times, want 1000", total)
	}
}
