package sim

import (
	"testing"

	"repro/internal/clock"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(300, func() { order = append(order, 3) })
	e.At(100, func() { order = append(order, 1) })
	e.At(200, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("fire order = %v, want [1 2 3]", order)
	}
	if e.Now() != 300 {
		t.Errorf("Now() = %d, want 300", e.Now())
	}
}

func TestEqualTimestampsFireFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 10 {
			e.After(10, chain)
		}
	}
	e.At(0, chain)
	e.Run()
	if count != 10 {
		t.Errorf("chained events fired %d times, want 10", count)
	}
	if e.Now() != 90 {
		t.Errorf("Now() = %d, want 90", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	e := New()
	fired := []clock.Picos{}
	for _, at := range []clock.Picos{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %d events, want 2", len(fired))
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %d, want clock advanced to deadline 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after Run, fired %d events, want 4", len(fired))
	}
}

func TestRunWhileStopsOnCondition(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 100; i++ {
		e.At(clock.Picos(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 7 })
	if count != 7 {
		t.Errorf("RunWhile stopped at count=%d, want 7", count)
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []clock.Picos
	e.Ticker(100, func(now clock.Picos) bool {
		ticks = append(ticks, now)
		return len(ticks) < 5
	})
	e.Run()
	want := []clock.Picos{100, 200, 300, 400, 500}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("ticks[%d] = %d, want %d", i, ticks[i], want[i])
		}
	}
}

func TestTickerPanicsOnNonPositiveInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ticker(0) did not panic")
		}
	}()
	New().Ticker(0, func(clock.Picos) bool { return false })
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 42; i++ {
		e.At(clock.Picos(i), func() {})
	}
	e.Run()
	if e.Fired() != 42 {
		t.Errorf("Fired() = %d, want 42", e.Fired())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step() on empty queue reported true")
	}
}
