// Sharded execution: conservative-window parallel simulation of a single
// machine.
//
// A sharded engine partitions the event queue into lanes, one per
// component whose interactions with the rest of the machine pass through
// a latency-protected boundary. The lane set comes from a Topology
// (NewShardedTopology; see topology.go) — DDR4 channels, CPU cores and
// the DCE each claim their named lane — or from dynamic NewLane calls
// (NewSharded). Lane 0 — the host lane — is the engine's own heap and
// carries everything else that touches shared machine state: the
// LLC/memsys front end, the OS scheduler, tickers and closures. A lane is
// one shard of the event queue with its own intrusive heap, its own
// clock, and its own serially assigned sequence numbers.
//
// Every scheduled event is classified at schedule time:
//
//   - local: firing it touches only its lane's state (a channel scheduler
//     tick with no registered waiters, a data-burst completion with no
//     completion callback, a CPU compute-span end whose continuation is
//     provably another span). Local events may fire concurrently with
//     other lanes' local events.
//   - crossing: firing it may touch state outside its lane (any host
//     event, a completion that invokes a caller's OnDone, a tick that will
//     notify queue-space waiters, a CPU execution step that may issue
//     memory operations). Crossing events are entered into the lane's
//     mailbox — a sub-heap ordered by timestamp — and only ever fire
//     serially, at the shared frontier, in a canonical deterministic
//     order.
//
// The dispatcher alternates between two modes:
//
//   - Window mode: let H be the earliest crossing timestamp anywhere (the
//     frontier) capped by every lane's conservative lookahead — the
//     minimum delay after which a lane-local event can schedule a new
//     crossing, derived from the lane's topology edges (for a DDR4
//     channel, the command-to-data latency min(CL,CWL)+BL: nothing a
//     controller does becomes externally visible sooner than its data
//     burst; for a CPU core, min(LLC hit latency, scheduler quantum)).
//     All events strictly before H are provably lane-local and independent
//     across lanes, so the lanes drain them in parallel, each stopping at
//     H or at its first crossing event. Small windows execute inline on
//     the caller's goroutine instead of dispatching the pool (batched
//     drains beat per-event frontier scans even single-threaded). At the
//     window barrier the mailboxes are re-examined and the frontier
//     advances.
//   - Serial fallback: when the window degenerates (fewer than two lanes
//     have runnable local events before H, or the engine was built with
//     one worker), the single earliest event fires on the caller's
//     goroutine, exactly like the serial engine.
//
// Determinism contract: results are byte-identical across worker counts by
// construction — window execution only ever covers commuting events, and
// the serial frontier uses a canonical order, (timestamp, schedule
// timestamp, frontier sequence, lane, per-lane seq), that does not depend
// on how many workers execute windows. The frontier sequence is a global
// counter stamped on every event scheduled from host code or from a
// crossing event's handler (both only ever run serially); an event
// scheduled by a lane-local event's handler instead inherits that event's
// stamp — whether the local event fired inside a window or one-at-a-time
// at a degenerate frontier — so a lane-local chain carries the stamp of
// the serial event that started it.
// That reproduces the plain engine's insertion order wherever the two
// engines can be compared: frontier-scheduled events tie-break exactly as
// plain insertion, and same-instant cohorts of window-scheduled events
// (for example lockstep CPU cores ending identical compute spans) order by
// the serial roots of their chains — again plain insertion order,
// independent of how cores are partitioned onto lanes. The cross-shard
// regression tests pin this equivalence on every experiment.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
)

// Scheduler is the scheduling surface a timed component binds its standing
// events to: the serial engine itself, or one lane of a sharded engine.
// Components that can classify their events (see ScheduleLocal) should
// hold a Scheduler instead of an *Engine so they shard transparently.
type Scheduler interface {
	// Now reports the component's current simulated time: the lane-local
	// clock while the lane runs a window, the engine clock otherwise.
	Now() clock.Picos
	// Schedule places a crossing event: one whose handler may touch state
	// outside the component's lane.
	Schedule(ev *Event, t clock.Picos)
	// ScheduleLocal places a lane-local event: the caller asserts the
	// handler touches nothing outside its lane. On a serial engine this is
	// identical to Schedule.
	ScheduleLocal(ev *Event, t clock.Picos)
	// Cancel removes the event if scheduled.
	Cancel(ev *Event)
	// Promote reclassifies an already scheduled local event as crossing
	// (a waiter registered against the component after the event was
	// scheduled). No-op when unscheduled or already crossing.
	Promote(ev *Event)
	// SetCrossingFree declares whether the component currently cannot
	// schedule any crossing event at all (for a DDR4 channel: no queued
	// request carries a completion callback and no waiter is registered).
	// A crossing-free lane needs no conservative lookahead cap, so
	// windows stretch to the next real frontier event. Transitions to
	// false only happen from host context (serial), which is what makes
	// the relaxation safe.
	SetCrossingFree(free bool)
}

// ScheduleLocal on the serial engine is plain Schedule: everything shares
// one heap, so locality carries no meaning.
func (e *Engine) ScheduleLocal(ev *Event, t clock.Picos) { e.Schedule(ev, t) }

// Promote is a no-op on the serial engine.
func (e *Engine) Promote(*Event) {}

// SetCrossingFree is a no-op on the serial engine.
func (e *Engine) SetCrossingFree(bool) {}

var _ Scheduler = (*Engine)(nil)
var _ Scheduler = (*Lane)(nil)

// shardSet is the sharded extension of an Engine.
type shardSet struct {
	workers int
	lanes   []*Lane
	pool    *windowPool
	// runDepth counts nested Run/RunUntil/RunWhile calls; the worker
	// pool only exists inside them, so no goroutine outlives a run loop.
	runDepth int

	// byName/topo are set when the engine was built from a Topology
	// (NewShardedTopology); byName is nil for dynamically claimed lanes.
	byName map[string]*Lane
	topo   Topology

	// active lists lanes with at least one scheduled event, the only
	// lanes a frontier step must scan. Activation happens at schedule
	// time (a lane scheduling inside a window is necessarily active
	// already, so only serial contexts mutate the list); deactivation is
	// lazy — the frontier scan prunes empty lanes — because windows drain
	// heaps concurrently.
	active []*Lane

	// inlineNext, when true, runs the next window on the caller's
	// goroutine instead of dispatching the pool: the previous window was
	// too small for dispatch to amortize (a few lockstep core events
	// rather than a channel-bound burst). Execution mode cannot affect
	// results — window events commute and stamping is mode-independent —
	// so this is purely a wall-clock adaptation.
	inlineNext bool

	// Adaptive window controller (see tune): the inline dispatch
	// threshold and the pool's worker target both track the live
	// counters instead of being compile-time constants. Like inlineNext,
	// neither can affect simulation results — only which goroutine runs
	// a window and how big a window must be before the pool is woken.
	inlineMax  uint64 // events-per-worker threshold for inline windows
	poolTarget int    // worker goroutines windows should currently use
	tuneAt     uint64 // value of windows at the last controller update
	tuneEvents uint64 // events fired in windows since the last update
	tuneInline uint64 // inline windows since the last update
	tuneSerial uint64 // serialSteps snapshot at the last update

	// Wall-time cost model (see costmodel.go): a coarse monotonic clock
	// sampled every costSampleInterval windows / serial steps feeds the
	// EWMAs tune consults. wallClock is swappable for tests
	// (Engine.SetWallClock); both sampling sites run in serial context
	// only, so no synchronization is needed.
	wallClock func() int64
	cost      costModel

	// Instrumentation (ShardStats).
	windows         uint64 // parallel windows executed
	inlineWindows   uint64 // subset executed inline (small-window path)
	serialSteps     uint64 // serial frontier fires
	laneSerialFired uint64 // subset of Engine.fired that hit lanes
}

// Adaptive controller bounds. inlineMax is the events-per-window
// threshold (per worker) below which the next window runs inline:
// dispatching parked workers costs on the order of a microsecond, so a
// window needs a multiple of the worker count in events before parallel
// execution can pay for it. The controller starts at inlineMaxInit (the
// PR 4 constant) and retunes every tuneInterval windows from the live
// ShardStats counters — events per window, the inline-window ratio, the
// serial-fallback rate and the mailbox depth (see tune).
const (
	tuneInterval  = 64
	inlineMaxMin  = 2
	inlineMaxMax  = 64
	inlineMaxInit = 6
)

// NewSharded returns an engine whose components may claim per-shard event
// lanes (NewLane); windows of provably independent lane-local events run
// across up to workers goroutines. workers <= 1 still shards the event
// queue but executes everything serially — the determinism reference.
func NewSharded(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{shards: &shardSet{
		workers:    workers,
		inlineMax:  inlineMaxInit,
		poolTarget: workers,
		wallClock:  wallNanos,
	}}
}

// Sharded reports whether the engine was built with NewSharded.
func (e *Engine) Sharded() bool { return e.shards != nil }

// Workers reports how many goroutines execute windows (1 for a serial
// engine).
func (e *Engine) Workers() int {
	if e.shards == nil {
		return 1
	}
	return e.shards.workers
}

// NewLane claims a fresh event lane with the given conservative lookahead:
// the minimum simulated delay between a lane-local event firing and any
// crossing event it can schedule. A zero lookahead makes the lane
// serial-only. On a serial engine NewLane returns the engine itself, so
// components shard transparently.
func (e *Engine) NewLane(lookahead clock.Picos) Scheduler {
	if e.shards == nil {
		return e
	}
	// Lanes are claimed at machine construction: the window pool and the
	// worker partition snapshot the lane set, so growing it mid-run would
	// leave the new lane undrained by windows.
	if e.shards.pool != nil || e.shards.runDepth > 0 {
		panic("sim: NewLane while the engine is running")
	}
	if lookahead < 0 {
		lookahead = 0
	}
	l := &Lane{eng: e, id: len(e.shards.lanes) + 1, lookahead: lookahead}
	e.shards.lanes = append(e.shards.lanes, l)
	return l
}

// Lane is one shard of a sharded engine's event queue.
type Lane struct {
	eng       *Engine
	id        int
	name      string // topology name; "" for dynamically claimed lanes
	lookahead clock.Picos
	// crossingFree mirrors the component's SetCrossingFree declaration;
	// while true the lane's lookahead cap is waived.
	crossingFree bool

	now   clock.Picos // last fired event's timestamp in this lane
	seq   uint64
	fired uint64   // events fired inside windows (runLocal)
	heap  []*Event // all scheduled events, (at, seq) order
	mail  []*Event // mailbox: the crossing subset, ordered by at

	// activeIdx is the lane's position + 1 in shardSet.active (0 when
	// not listed).
	activeIdx int

	// curXseq/firingLocal drive frontier-sequence inheritance: while the
	// lane fires one of its local events (in a window or serially at a
	// degenerate frontier — the stamp rule must be execution-mode
	// independent), events the handler schedules inherit curXseq (see
	// the determinism contract in the package comment).
	curXseq     uint64
	firingLocal bool

	// Instrumentation (ShardStats).
	serialFired uint64 // events fired at the serial frontier
	windows     uint64 // windows in which the lane fired >= 1 event
	mailPeak    int    // mailbox high-water mark
}

// Name reports the lane's topology name ("" when claimed dynamically).
func (l *Lane) Name() string { return l.name }

// Lookahead reports the lane's conservative window bound — the minimum
// delay between a lane-local event firing and any crossing it may
// schedule. Components use it to keep their local/crossing
// classification at least this conservative.
func (l *Lane) Lookahead() clock.Picos { return l.lookahead }

// Now reports the lane clock: the engine's serial clock, or the lane's own
// when it has run ahead inside the current window.
func (l *Lane) Now() clock.Picos {
	if l.now > l.eng.now {
		return l.now
	}
	return l.eng.now
}

// Schedule places ev as a crossing event.
func (l *Lane) Schedule(ev *Event, t clock.Picos) { l.schedule(ev, t, true) }

// ScheduleLocal places ev as a lane-local event.
func (l *Lane) ScheduleLocal(ev *Event, t clock.Picos) { l.schedule(ev, t, false) }

func (l *Lane) schedule(ev *Event, t clock.Picos, crossing bool) {
	now := l.Now()
	if t < now {
		panic("sim: event scheduled in the past")
	}
	if ev.h == nil {
		panic("sim: event with no handler (missing Init)")
	}
	if ev.pos != 0 && ev.lane != l {
		panic("sim: event rescheduled across lanes")
	}
	ev.lane = l
	l.seq++
	ev.at = t
	ev.seq = l.seq
	ev.schedAt = now
	// Frontier-sequence stamp: an event scheduled by one of this lane's
	// local events firing — inside a window or serially, the rule must
	// not depend on the execution mode — inherits the firing event's
	// stamp, so a local chain carries its serial root's stamp; every
	// other schedule (host code, a crossing event's handler) takes a
	// fresh stamp from the engine counter, which only serial contexts
	// touch (see the package comment).
	if l.firingLocal {
		ev.xseq = l.curXseq
	} else {
		l.eng.xseq++
		ev.xseq = l.eng.xseq
	}
	if ev.pos == 0 {
		l.heap = append(l.heap, ev)
		ev.pos = len(l.heap)
		evSiftUp(l.heap, len(l.heap)-1)
		if l.activeIdx == 0 {
			l.eng.shards.active = append(l.eng.shards.active, l)
			l.activeIdx = len(l.eng.shards.active)
		}
	} else {
		i := ev.pos - 1
		if !evSiftUp(l.heap, i) {
			evSiftDown(l.heap, i)
		}
	}
	if crossing {
		if ev.mpos == 0 {
			l.mail = append(l.mail, ev)
			ev.mpos = len(l.mail)
			if len(l.mail) > l.mailPeak {
				l.mailPeak = len(l.mail)
			}
			mailSiftUp(l.mail, len(l.mail)-1)
		} else {
			i := ev.mpos - 1
			if !mailSiftUp(l.mail, i) {
				mailSiftDown(l.mail, i)
			}
		}
	} else if ev.mpos != 0 {
		mailRemove(&l.mail, ev)
	}
}

// Cancel removes ev from the lane.
func (l *Lane) Cancel(ev *Event) {
	if ev.pos == 0 {
		return
	}
	if ev.lane != l {
		panic("sim: Cancel on another lane's event")
	}
	if ev.mpos != 0 {
		mailRemove(&l.mail, ev)
	}
	evHeapRemove(&l.heap, ev)
}

// SetCrossingFree waives (or restores) the lane's lookahead cap.
func (l *Lane) SetCrossingFree(free bool) { l.crossingFree = free }

// Promote reclassifies a scheduled local event as crossing.
func (l *Lane) Promote(ev *Event) {
	if ev.pos == 0 || ev.lane != l || ev.mpos != 0 {
		return
	}
	l.mail = append(l.mail, ev)
	ev.mpos = len(l.mail)
	if len(l.mail) > l.mailPeak {
		l.mailPeak = len(l.mail)
	}
	mailSiftUp(l.mail, len(l.mail)-1)
}

// runLocal drains the lane's local events strictly before horizon h,
// stopping at the first crossing event. Only called between barriers, with
// every other lane either parked or running its own runLocal.
func (l *Lane) runLocal(h clock.Picos) {
	n := uint64(0)
	for len(l.heap) > 0 {
		ev := l.heap[0]
		if ev.at >= h || ev.mpos != 0 {
			break
		}
		evHeapPop(&l.heap)
		l.now = ev.at
		l.fired++
		n++
		l.curXseq = ev.xseq
		l.firingLocal = true
		ev.h.OnEvent(ev.at)
		l.firingLocal = false
	}
	if n > 0 {
		l.windows++
	}
}

// headBefore is the canonical frontier order across heaps: timestamp, then
// schedule timestamp (which reproduces the serial engine's global
// scheduling order whenever the two differ), then the frontier sequence
// stamped at schedule time (which reproduces it when they tie — window
// scheduled events carry their serial root's stamp), then lane, then
// per-lane seq.
func headBefore(a *Event, aLane int, b *Event, bLane int) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.xseq != b.xseq {
		return a.xseq < b.xseq
	}
	if aLane != bLane {
		return aLane < bLane
	}
	return a.seq < b.seq
}

// minHead finds the globally earliest event under the canonical order
// (lane 0 = the host heap).
func (e *Engine) minHead() (*Event, int) {
	var best *Event
	bestLane := 0
	if len(e.heap) > 0 {
		best = e.heap[0]
	}
	for _, l := range e.shards.lanes {
		if len(l.heap) == 0 {
			continue
		}
		if hd := l.heap[0]; best == nil || headBefore(hd, l.id, best, bestLane) {
			best, bestLane = hd, l.id
		}
	}
	return best, bestLane
}

// serialStep fires the single earliest event at the frontier, ignoring
// events beyond limit. It reports false when nothing remains in range.
func (e *Engine) serialStep(limit clock.Picos) bool {
	best, bestLane := e.minHead()
	if best == nil || best.at > limit {
		return false
	}
	e.fireSerial(best, bestLane)
	return true
}

// fireSerial pops and fires one event on the caller's goroutine. Every
// costSampleInterval-th fire is wall-clock timed for the cost model
// (host events and crossings count as crossing time, lane-local
// fallbacks as serial time).
func (e *Engine) fireSerial(best *Event, bestLane int) {
	s := e.shards
	s.serialSteps++
	sampled := s.serialSteps&costSampleMask == 0
	var t0 int64
	if sampled {
		t0 = s.wallClock()
	}
	crossing := true
	if bestLane == 0 {
		evHeapPop(&e.heap)
		e.now = best.at
		e.fired++
		best.h.OnEvent(e.now)
	} else {
		l := s.lanes[bestLane-1]
		evHeapPop(&l.heap)
		crossing = best.mpos != 0
		if crossing {
			mailRemove(&l.mail, best)
		}
		l.now = best.at
		l.serialFired++
		s.laneSerialFired++
		e.now = best.at
		e.fired++
		if crossing {
			best.h.OnEvent(e.now)
		} else {
			// A lane-local event firing at a degenerate frontier must stamp
			// exactly as it would inside a window, or worker counts would
			// disagree on same-instant tie order.
			l.curXseq = best.xseq
			l.firingLocal = true
			best.h.OnEvent(e.now)
			l.firingLocal = false
		}
	}
	if sampled {
		s.cost.observeSerial(crossing, s.wallClock()-t0)
	}
}

// shardedStep advances a sharded engine by one serial frontier event or
// one parallel window, ignoring events beyond limit. It reports false when
// nothing remains at or before limit. The canonical frontier minimum and
// the safe horizon come from one pass over the lanes; the (rarer)
// window-eligibility pass only runs when the horizon actually clears the
// frontier.
func (e *Engine) shardedStep(limit clock.Picos) bool {
	s := e.shards

	// One pass: the globally earliest event under the canonical order
	// (lane 0 = the host heap), and the safe horizon — the earliest
	// crossing anywhere (host events always cross), capped by each lane's
	// conservative lookahead on the events it would fire this window.
	var best *Event
	bestLane := 0
	h := clock.Never
	if len(e.heap) > 0 {
		best = e.heap[0]
		h = best.at
	}
	for i := 0; i < len(s.active); {
		l := s.active[i]
		if len(l.heap) == 0 {
			// Lazy prune (the mailbox is a subset of the heap): swap-remove
			// the drained lane; only this serial scan mutates the list.
			last := len(s.active) - 1
			s.active[i] = s.active[last]
			s.active[i].activeIdx = i + 1
			s.active[last] = nil
			s.active = s.active[:last]
			l.activeIdx = 0
			continue
		}
		i++
		hd := l.heap[0]
		if best == nil || headBefore(hd, l.id, best, bestLane) {
			best, bestLane = hd, l.id
		}
		if len(l.mail) > 0 && l.mail[0].at < h {
			h = l.mail[0].at
		}
		if !l.crossingFree {
			if w := hd.at + l.lookahead; w >= hd.at && w < h {
				h = w
			}
		}
	}
	if best == nil || best.at > limit {
		return false
	}
	if limit < clock.Never && limit+1 < h {
		h = limit + 1
	}

	// Window mode needs at least two lanes with runnable local work;
	// otherwise parallelism cannot pay for the barrier. A horizon at (or
	// below) the frontier event cannot contain anything, so the
	// eligibility pass is skipped entirely on frontier-bound stretches.
	if s.workers > 1 && h > best.at {
		eligible := 0
		for _, l := range s.active {
			if len(l.heap) > 0 && l.heap[0].mpos == 0 && l.heap[0].at < h {
				if eligible++; eligible >= 2 {
					break
				}
			}
		}
		if eligible >= 2 {
			e.runWindow(h)
			return true
		}
	}

	// Serial fallback: fire the single earliest event at the frontier.
	e.fireSerial(best, bestLane)
	return true
}

// runWindow drains every lane's local events before h across the worker
// pool (inside a run loop) or one-shot goroutines (a bare Step, where a
// persistent pool would have nothing to stop it). Lane-to-worker
// assignment is static; it cannot affect results because window events
// commute across lanes.
func (e *Engine) runWindow(h clock.Picos) {
	s := e.shards
	workers := s.poolTarget
	if workers > s.workers {
		workers = s.workers
	}
	if workers > len(s.lanes) {
		workers = len(s.lanes)
	}
	if s.pool == nil && s.runDepth > 0 {
		s.pool = newWindowPool(s.lanes, workers)
	}
	sampled := s.windows&costSampleMask == 0
	var t0 int64
	if sampled {
		t0 = s.wallClock()
	}
	s.windows++
	var before uint64
	for _, l := range s.active {
		before += l.fired
	}
	inline := s.inlineNext
	switch {
	case inline:
		s.inlineWindows++
		s.tuneInline++
		for _, l := range s.active {
			l.runLocal(h)
		}
	case s.pool != nil:
		s.pool.runWindow(h)
	default:
		runWindowAdhoc(s.lanes, workers, h)
	}
	var after uint64
	for _, l := range s.active {
		after += l.fired
	}
	if sampled {
		s.cost.observeWindow(inline, s.wallClock()-t0, after-before)
	}
	s.tuneEvents += after - before
	s.inlineNext = after-before < s.inlineMax*uint64(workers)
	if s.windows-s.tuneAt >= tuneInterval {
		s.tune()
	}
	// Advance the serial clock to the furthest point the window reached:
	// every event fired in it was before h, and every remaining event is
	// at or beyond h, so this can never move time past a pending event.
	for _, l := range s.lanes {
		if l.now > e.now {
			e.now = l.now
		}
	}
}

// tune is the adaptive window controller, run every tuneInterval windows
// from the live counters and the wall-time cost model (costmodel.go).
// It adjusts two execution-mode knobs — the inline dispatch threshold
// and the pool's worker target — neither of which can affect simulation
// results (window events commute and stamping is execution-mode
// independent), so the cost model is free to chase wall clock:
//
//   - inline threshold: once both window modes have wall-time samples,
//     compare the measured ns/event of dispatched windows against
//     inline windows — dispatched events costing more real time each
//     means the dispatch fee is not amortizing at the current cut, so
//     double the threshold; dispatched events clearly cheaper (beyond a
//     7/8 hysteresis band) means profitable windows are being kept
//     inline, so halve it. Cold start — before both modes have samples
//     — falls back to the inline-window ratio: nearly-all-inline
//     intervals double the threshold, nearly-none halve it.
//   - worker target: how many workers an average window can pay for.
//     Measured, that is the window's inline-speed work (events/window x
//     inline ns/event) divided by the measured dispatch fee
//     (dispatchOverhead); cold start divides events/window by the
//     inline threshold as before. Quantized down to a power of two
//     (hysteresis: pool rebuilds allocate, so the target must not flap
//     between neighboring sizes).
//   - serial-fallback pressure and mailbox depth: when the interval's
//     wall time went mostly to serial frontier fires (measured when
//     sampled, event counts otherwise), or crossings are piling up
//     deeper than the active lanes can clear, upcoming windows will
//     stay small — bias the target down a notch before growing the
//     pool into them.
//
// A target change parks the current pool; the next window lazily builds
// one at the new size.
func (s *shardSet) tune() {
	dw := s.windows - s.tuneAt
	inline := s.tuneInline
	serial := s.serialSteps - s.tuneSerial
	ev := s.tuneEvents
	s.tuneAt = s.windows
	s.tuneInline = 0
	s.tuneEvents = 0
	s.tuneSerial = s.serialSteps

	cm := &s.cost
	peInline, pePooled := cm.perEventInline(), cm.perEventPooled()
	switch {
	case peInline > 0 && pePooled > 0:
		switch {
		case pePooled > peInline && s.inlineMax < inlineMaxMax:
			s.inlineMax *= 2
		case pePooled*8 < peInline*7 && s.inlineMax > inlineMaxMin:
			s.inlineMax /= 2
		}
	case inline*8 > dw*7 && s.inlineMax < inlineMaxMax:
		s.inlineMax *= 2
	case inline*8 < dw && s.inlineMax > inlineMaxMin:
		s.inlineMax /= 2
	}

	var target int
	if fee := cm.dispatchOverhead(s.poolTarget); fee > 0 && peInline > 0 && dw > 0 {
		work := float64(ev) / float64(dw) * peInline
		target = int(work / fee)
	} else {
		target = int(ev / dw / s.inlineMax)
	}
	serialWall := float64(serial) * cm.anySerNs
	windowWall := float64(dw) * cm.windowNs
	if windowWall > 0 {
		if serialWall > windowWall {
			target /= 2
		}
	} else if serial > ev {
		target /= 2
	}
	mailDepth := 0
	for _, l := range s.active {
		mailDepth += len(l.mail)
	}
	if mailDepth > 4*len(s.active) {
		target /= 2
	}
	max := s.workers
	if n := len(s.lanes); n < max {
		max = n
	}
	if target > max {
		target = max
	}
	if target < 2 {
		target = 2
	}
	for q := 2; ; q *= 2 {
		if q*2 > target {
			target = q
			break
		}
	}
	if target != s.poolTarget {
		s.poolTarget = target
		if s.pool != nil {
			s.pool.shutdown()
			s.pool = nil
		}
	}
}

// runWindowAdhoc is the poolless window executor: spawn, run, join.
func runWindowAdhoc(lanes []*Lane, workers int, h clock.Picos) {
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicAt  = -1
		panicVal any
	)
	run := func(start int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicAt < 0 || start < panicAt {
					panicAt, panicVal = start, r
				}
				panicMu.Unlock()
			}
		}()
		for i := start; i < len(lanes); i += workers {
			lanes[i].runLocal(h)
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	run(0)
	wg.Wait()
	if panicAt >= 0 {
		panic(panicVal)
	}
}

// enterRun brackets a run loop: while at least one is active the engine
// may keep a persistent worker pool; when the outermost exits the pool
// is parked, so no goroutine outlives a Run/RunUntil/RunWhile call.
func (e *Engine) enterRun() func() {
	s := e.shards
	s.runDepth++
	return func() {
		if s.runDepth--; s.runDepth == 0 && s.pool != nil {
			s.pool.shutdown()
			s.pool = nil
		}
	}
}

// windowPool executes windows across persistent helper goroutines. Waking
// a parked goroutine costs on the order of a microsecond — comparable to
// a whole small window — so helpers spin briefly between windows (windows
// arrive back to back while the simulation is channel-bound) and park on
// a channel when the frontier goes quiet.
type windowPool struct {
	lanes   []*Lane
	workers int // including the caller's goroutine (worker 0)

	h     clock.Picos  // horizon of the current window; written before epoch
	epoch atomic.Int64 // incremented to release helpers into a window
	done  atomic.Int64 // helpers completed in the current window
	quit  chan struct{}
	wake  []chan struct{} // per helper, buffered: nudges parked helpers

	panicMu sync.Mutex
	panicAt int // lowest worker index that panicked; -1 when none
	panicV  any
	exited  sync.WaitGroup
}

// poolSpin is how many scheduler yields a helper burns before parking.
const poolSpin = 512

func newWindowPool(lanes []*Lane, workers int) *windowPool {
	p := &windowPool{
		lanes:   lanes,
		workers: workers,
		quit:    make(chan struct{}),
		panicAt: -1,
	}
	p.exited.Add(workers - 1)
	for w := 1; w < workers; w++ {
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.helper(w, ch)
	}
	return p
}

// helper is one pool goroutine: wait for an epoch, run its lane share,
// report done.
func (p *windowPool) helper(w int, wake chan struct{}) {
	defer p.exited.Done()
	last := int64(0)
	for {
		spins := 0
		for p.epoch.Load() == last {
			if spins++; spins <= poolSpin {
				select {
				case <-p.quit:
					return
				default:
					runtime.Gosched()
				}
				continue
			}
			select {
			case <-wake:
			case <-p.quit:
				return
			}
			spins = 0
		}
		last = p.epoch.Load()
		p.runShare(w)
		p.done.Add(1)
	}
}

// runShare drains worker w's statically assigned lanes, capturing panics
// so a worker failure surfaces on the caller instead of killing the
// process.
func (p *windowPool) runShare(w int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicAt < 0 || w < p.panicAt {
				p.panicAt, p.panicV = w, r
			}
			p.panicMu.Unlock()
		}
	}()
	h := p.h
	for i := w; i < len(p.lanes); i += p.workers {
		p.lanes[i].runLocal(h)
	}
}

// runWindow releases the helpers into one window and joins them.
func (p *windowPool) runWindow(h clock.Picos) {
	p.h = h
	p.done.Store(0)
	p.epoch.Add(1)
	for _, ch := range p.wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	p.runShare(0)
	for p.done.Load() < int64(p.workers-1) {
		runtime.Gosched()
	}
	if p.panicAt >= 0 {
		v := p.panicV
		p.panicAt, p.panicV = -1, nil
		panic(v)
	}
}

// shutdown parks the pool for good.
func (p *windowPool) shutdown() {
	close(p.quit)
	p.exited.Wait()
}

// Mailbox heap: a second intrusive index (Event.mpos) ordering a lane's
// crossing events by timestamp alone — only the head's timestamp is ever
// read (the frontier), so tie order inside the mailbox is irrelevant.

func mailSiftUp(h []*Event, i int) bool {
	ev := h[i]
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if ev.at >= p.at {
			break
		}
		h[i] = p
		p.mpos = i + 1
		i = parent
		moved = true
	}
	if moved {
		h[i] = ev
		ev.mpos = i + 1
	}
	return moved
}

func mailSiftDown(h []*Event, i int) {
	ev := h[i]
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h[right].at < h[left].at {
			child = right
		}
		c := h[child]
		if c.at >= ev.at {
			break
		}
		h[i] = c
		c.mpos = i + 1
		i = child
	}
	h[i] = ev
	ev.mpos = i + 1
}

func mailRemove(hp *[]*Event, ev *Event) {
	h := *hp
	i := ev.mpos - 1
	n := len(h) - 1
	ev.mpos = 0
	if i == n {
		h[n] = nil
		*hp = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.mpos = i + 1
	h[n] = nil
	*hp = h[:n]
	if !mailSiftUp(h[:n], i) {
		mailSiftDown(h[:n], i)
	}
}
