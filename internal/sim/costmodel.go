// Wall-time cost model for the adaptive window controller.
//
// The controller's job is to pick execution-mode knobs — the inline
// dispatch threshold and the pool's worker target — that minimize real
// time per simulated event. Event counts alone cannot answer "is
// dispatching the pool worth it here": that depends on how expensive
// this workload's handlers are and how much the dispatch fee really
// costs on this host. So the sharded engine samples wall time on an
// amortized cadence — one coarse monotonic clock read pair every
// costSampleInterval windows (and every costSampleInterval serial
// steps) — and folds the samples into EWMAs the controller consults.
//
// The sampling is built to be invisible on the hot path: no
// allocations (time.Since on a package-level base reads the runtime's
// monotonic clock and returns an int64), no clock reads at all on
// 31 of every 32 windows, and no effect on simulation results by
// construction — the measured times steer only which goroutine runs a
// window and how many workers are woken, never event order (the
// determinism tests run the controller across every lane topology).
package sim

import "time"

// costSampleInterval is the amortized sampling cadence: one wall-clock
// sample every this many windows (and serial frontier steps). Must be a
// power of two — the hot path gates on a mask.
const costSampleInterval = 32

const costSampleMask = costSampleInterval - 1

// wallBase anchors the package's monotonic clock; time.Since against a
// fixed base compiles to a raw monotonic-clock read with no allocation.
var wallBase = time.Now()

// wallNanos is the default wall-clock source: monotonic nanoseconds
// since process start (any fixed origin works — only differences are
// used).
func wallNanos() int64 { return int64(time.Since(wallBase)) }

// SetWallClock replaces the sharded engine's wall-clock source — a
// monotonically non-decreasing nanosecond counter — used by the
// adaptive controller's cost model. Tests inject a scripted fake so
// controller decisions are reproducible under CI timing noise;
// production code never needs this. Passing nil restores the real
// clock. Timing steers only execution-mode knobs, never event order,
// so any clock — however wrong — cannot affect simulation results.
// No-op on a serial engine.
func (e *Engine) SetWallClock(fn func() int64) {
	if e.shards == nil {
		return
	}
	if fn == nil {
		fn = wallNanos
	}
	e.shards.wallClock = fn
}

// costModel holds the controller's measured-wall-time EWMAs. All times
// are nanoseconds of real (host) time; alpha is 1/8, initialized on the
// first sample. Zero means "no sample yet" — the controller falls back
// to the event-count heuristics until both window modes have been
// observed at least once.
type costModel struct {
	pooledNs float64 // wall ns per pool-dispatched (or ad hoc) window
	pooledEv float64 // events fired per pool-dispatched window
	inlineNs float64 // wall ns per inline window
	inlineEv float64 // events fired per inline window
	windowNs float64 // blended wall ns per window, both modes
	serialNs float64 // wall ns per lane-local serial-fallback fire
	crossNs  float64 // wall ns per crossing (frontier) fire
	anySerNs float64 // blended wall ns per serial frontier fire
}

// ewma folds v into acc with alpha 1/8, treating zero as uninitialized.
func ewma(acc *float64, v float64) {
	if *acc == 0 {
		*acc = v
		return
	}
	*acc += (v - *acc) / 8
}

// observeWindow folds one sampled window (mode, wall ns, events fired)
// into the model.
func (c *costModel) observeWindow(inline bool, ns int64, events uint64) {
	v := float64(ns)
	ewma(&c.windowNs, v)
	if inline {
		ewma(&c.inlineNs, v)
		ewma(&c.inlineEv, float64(events))
	} else {
		ewma(&c.pooledNs, v)
		ewma(&c.pooledEv, float64(events))
	}
}

// observeSerial folds one sampled serial frontier fire into the model.
func (c *costModel) observeSerial(crossing bool, ns int64) {
	v := float64(ns)
	ewma(&c.anySerNs, v)
	if crossing {
		ewma(&c.crossNs, v)
	} else {
		ewma(&c.serialNs, v)
	}
}

// perEventInline is the measured wall cost of firing one event on the
// caller's goroutine (0 until an inline window has been sampled).
func (c *costModel) perEventInline() float64 {
	if c.inlineEv < 1 {
		return 0
	}
	return c.inlineNs / c.inlineEv
}

// perEventPooled is the measured wall cost per event of a dispatched
// window, dispatch fee included (0 until a pooled window has been
// sampled).
func (c *costModel) perEventPooled() float64 {
	if c.pooledEv < 1 {
		return 0
	}
	return c.pooledNs / c.pooledEv
}

// dispatchOverhead estimates the fixed wall cost of waking the pool for
// one window: the measured pooled window time minus what the fired
// events would have cost at inline speed spread across workers
// (optimistically assuming perfect speedup — which makes the estimate
// an upper bound on the fee, the safe direction for sizing down).
// Returns 0 until both modes have samples.
func (c *costModel) dispatchOverhead(workers int) float64 {
	pe := c.perEventInline()
	if pe == 0 || c.pooledNs == 0 || workers < 1 {
		return 0
	}
	over := c.pooledNs - c.pooledEv*pe/float64(workers)
	if over < 0 {
		return 0
	}
	return over
}
