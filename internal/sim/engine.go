// Package sim implements the discrete-event simulation engine that drives
// every timed component in the repository: DDR4 channel controllers, CPU
// cores, the OS thread scheduler, the Data Copy Engine, and workload agents.
//
// The engine is a priority queue of events, single-threaded by default.
// Determinism is guaranteed: events at the same timestamp fire in
// insertion order (and a reschedule counts as a fresh insertion), so
// repeated runs of the same configuration produce bit-identical results.
// NewSharded additionally partitions the queue into per-component lanes
// and runs provably independent stretches of them in parallel with the
// same determinism guarantee — see sharded.go.
//
// Two scheduling styles coexist:
//
//   - the closure style, At/After/Ticker, convenient for one-shot and
//     rarely-fired callbacks (the engine pools its internal event records,
//     so only the caller's closure itself allocates);
//   - the handle style, Schedule/Cancel on an intrusive *Event owned by the
//     component, for hot paths. A component embeds its Event, binds a
//     Handler once at construction, and thereafter reschedules the one
//     standing event in place — zero allocations per fired event.
package sim

import (
	"repro/internal/clock"
)

// Handler receives event callbacks. Hot components implement it (or bind a
// method via HandlerFunc) once and reuse one Event for their lifetime.
type Handler interface {
	// OnEvent runs at the event's timestamp with the engine clock already
	// advanced to now.
	OnEvent(now clock.Picos)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(now clock.Picos)

// OnEvent implements Handler.
func (f HandlerFunc) OnEvent(now clock.Picos) { f(now) }

// Event is an intrusive, reusable event handle. The zero value is
// unscheduled; bind a handler with Init (or at Schedule time) and the same
// handle can be scheduled, canceled, and rescheduled any number of times
// without allocating. An Event must not be copied while scheduled.
type Event struct {
	h   Handler
	at  clock.Picos
	seq uint64
	pos int // heap index + 1; 0 when unscheduled

	// Sharded-engine fields (see sharded.go); all zero on a serial engine.
	lane    *Lane       // owning lane once scheduled through one
	schedAt clock.Picos // simulated time of the most recent (re)schedule
	xseq    uint64      // frontier sequence: fresh from serial context, inherited in windows
	mpos    int         // mailbox (crossing sub-heap) index + 1; 0 when local
}

// Init binds the handler. Calling Init on a scheduled event is a
// programming error and panics.
func (ev *Event) Init(h Handler) {
	if ev.pos != 0 {
		panic("sim: Init on a scheduled event")
	}
	ev.h = h
}

// Scheduled reports whether the event is in the queue.
func (ev *Event) Scheduled() bool { return ev.pos != 0 }

// When reports the timestamp the event is scheduled for. It is only
// meaningful while Scheduled.
func (ev *Event) When() clock.Picos { return ev.at }

// funcEvent wraps a one-shot closure for the At/After API. Fired wrappers
// return to a per-engine free list, so steady-state closure scheduling
// performs no event-record allocation.
type funcEvent struct {
	ev   Event
	eng  *Engine
	fn   func()
	next *funcEvent
}

// OnEvent implements Handler: recycle first, then run, so fn may schedule
// further closures (possibly reusing this very record).
func (fe *funcEvent) OnEvent(clock.Picos) {
	fn := fe.fn
	fe.fn = nil
	fe.next = fe.eng.freeFn
	fe.eng.freeFn = fe
	fn()
}

// tickerEvent is the standing event behind Ticker.
type tickerEvent struct {
	ev       Event
	eng      *Engine
	interval clock.Picos
	fn       func(now clock.Picos) bool
}

// OnEvent implements Handler.
func (te *tickerEvent) OnEvent(now clock.Picos) {
	if te.fn(now) {
		te.eng.Schedule(&te.ev, now+te.interval)
	}
}

// Engine is the event loop. The zero value is ready to use (as a serial
// engine; sharded engines are built with NewSharded).
type Engine struct {
	now    clock.Picos
	seq    uint64
	xseq   uint64 // frontier sequence counter (see sharded.go headBefore)
	heap   []*Event
	fired  uint64
	freeFn *funcEvent

	// shards, when non-nil, enables per-lane sharded execution: the
	// engine's own heap becomes the host lane (lane 0) and components may
	// claim additional lanes via NewLane. See sharded.go.
	shards *shardSet
}

// New returns a fresh engine with its clock at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() clock.Picos { return e.now }

// Fired reports how many events have run, a cheap progress/cost metric.
func (e *Engine) Fired() uint64 {
	n := e.fired
	if e.shards != nil {
		for _, l := range e.shards.lanes {
			n += l.fired
		}
	}
	return n
}

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int {
	n := len(e.heap)
	if e.shards != nil {
		for _, l := range e.shards.lanes {
			n += len(l.heap)
		}
	}
	return n
}

// Next reports the timestamp of the earliest pending event, or clock.Never
// when the queue is empty.
func (e *Engine) Next() clock.Picos {
	t := clock.Never
	if len(e.heap) > 0 {
		t = e.heap[0].at
	}
	if e.shards != nil {
		for _, l := range e.shards.lanes {
			if len(l.heap) > 0 && l.heap[0].at < t {
				t = l.heap[0].at
			}
		}
	}
	return t
}

// Schedule places ev in the queue at absolute time t, binding the event to
// this engine until it fires or is canceled. If ev is already scheduled it
// is moved in place — no allocation, no stale duplicate — and the move
// counts as a fresh insertion for same-timestamp FIFO ordering. Scheduling
// in the past (or with no handler bound) is a programming error and
// panics: silently reordering time would corrupt the DRAM timing model.
func (e *Engine) Schedule(ev *Event, t clock.Picos) {
	if ev.lane != nil {
		// The event belongs to a lane; keep it there (host code touching a
		// lane event counts as a crossing).
		ev.lane.Schedule(ev, t)
		return
	}
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if ev.h == nil {
		panic("sim: event with no handler (missing Init)")
	}
	e.seq++
	e.xseq++
	ev.at = t
	ev.seq = e.seq
	ev.schedAt = e.now
	ev.xseq = e.xseq
	if ev.pos == 0 {
		e.heap = append(e.heap, ev)
		ev.pos = len(e.heap)
		evSiftUp(e.heap, len(e.heap)-1)
		return
	}
	// In place: a fresh seq means the event can only sink relative to
	// equal-timestamp peers, but an earlier t can still float it up.
	i := ev.pos - 1
	if !evSiftUp(e.heap, i) {
		evSiftDown(e.heap, i)
	}
}

// ScheduleAfter places ev d picoseconds from now.
func (e *Engine) ScheduleAfter(ev *Event, d clock.Picos) { e.Schedule(ev, e.now+d) }

// Cancel removes ev from the queue. Canceling an unscheduled event is a
// no-op, so components may cancel defensively.
func (e *Engine) Cancel(ev *Event) {
	if ev.lane != nil {
		ev.lane.Cancel(ev)
		return
	}
	evHeapRemove(&e.heap, ev)
}

// evLess orders a heap: earliest timestamp first, FIFO among equals.
// Within one heap (the host's or one lane's) seq is assigned serially, so
// this is exactly the serial engine's firing order.
func evLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// evSiftUp restores the heap above index i; it reports whether i moved.
func evSiftUp(h []*Event, i int) bool {
	ev := h[i]
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if !evLess(ev, p) {
			break
		}
		h[i] = p
		p.pos = i + 1
		i = parent
		moved = true
	}
	if moved {
		h[i] = ev
		ev.pos = i + 1
	}
	return moved
}

// evSiftDown restores the heap below index i.
func evSiftDown(h []*Event, i int) {
	ev := h[i]
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && evLess(h[right], h[left]) {
			child = right
		}
		c := h[child]
		if !evLess(c, ev) {
			break
		}
		h[i] = c
		c.pos = i + 1
		i = child
	}
	h[i] = ev
	ev.pos = i + 1
}

// evHeapRemove removes a scheduled event from its heap by index.
func evHeapRemove(hp *[]*Event, ev *Event) {
	if ev.pos == 0 {
		return
	}
	h := *hp
	i := ev.pos - 1
	n := len(h) - 1
	ev.pos = 0
	if i == n {
		h[n] = nil
		*hp = h[:n]
		return
	}
	moved := h[n]
	h[i] = moved
	moved.pos = i + 1
	h[n] = nil
	*hp = h[:n]
	if !evSiftUp(h[:n], i) {
		evSiftDown(h[:n], i)
	}
}

// evHeapPop removes and returns the heap's earliest event.
func evHeapPop(hp *[]*Event) *Event {
	h := *hp
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[0] = last
	last.pos = 1
	h[n] = nil
	*hp = h[:n]
	if n > 0 {
		evSiftDown(h[:n], 0)
	}
	ev.pos = 0
	return ev
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t clock.Picos, fn func()) {
	fe := e.freeFn
	if fe == nil {
		fe = &funcEvent{eng: e}
		fe.ev.Init(fe)
	} else {
		e.freeFn = fe.next
		fe.next = nil
	}
	fe.fn = fn
	e.Schedule(&fe.ev, t)
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d clock.Picos, fn func()) { e.At(e.now+d, fn) }

// Step fires the single earliest event (on a sharded engine: one serial
// frontier event, or one whole conservative window of shard-local events).
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if e.shards != nil {
		return e.shardedStep(clock.Never)
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := evHeapPop(&e.heap)
	e.now = ev.at
	e.fired++
	ev.h.OnEvent(e.now)
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	if e.shards != nil {
		defer e.enterRun()()
	}
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued. The engine clock ends at the deadline.
func (e *Engine) RunUntil(deadline clock.Picos) {
	if e.shards != nil {
		defer e.enterRun()()
		for e.shardedStep(deadline) {
		}
	} else {
		for len(e.heap) > 0 && e.heap[0].at <= deadline {
			e.Step()
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile fires events until cond reports false or the queue drains.
// cond is checked after every step. On a sharded engine one step may fire
// a whole window of shard-local events, so cond must depend only on
// host-lane state (completion flags, callback-set results): host state
// only ever changes at the serial frontier, where cond is evaluated after
// every event exactly like the serial engine. A condition that reads
// component state a window batches past — queue occupancies, channel
// counters — must use RunWhileSerial instead, or shard counts could
// disagree on where it stopped.
func (e *Engine) RunWhile(cond func() bool) {
	if e.shards != nil {
		defer e.enterRun()()
	}
	for cond() && e.Step() {
	}
}

// RunWhileSerial is RunWhile with window execution disabled: every event
// fires one at a time with cond evaluated between events, on any engine.
// Use it when cond reads state that shard-local events mutate; the serial
// stop point is then identical across shard counts (at the cost of no
// parallelism, so keep it to short phases such as queue drains).
func (e *Engine) RunWhileSerial(cond func() bool) {
	if e.shards == nil {
		for cond() && e.Step() {
		}
		return
	}
	for cond() && e.serialStep(clock.Never) {
	}
}

// Ticker invokes fn every interval until fn reports false. The first
// invocation happens one interval from now. Tickers are used for periodic
// observers such as bandwidth samplers and the OS scheduling quantum; the
// engine reuses one standing event per ticker, so ticking never allocates.
func (e *Engine) Ticker(interval clock.Picos, fn func(now clock.Picos) bool) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	te := &tickerEvent{eng: e, interval: interval, fn: fn}
	te.ev.Init(te)
	e.Schedule(&te.ev, e.now+interval)
}
