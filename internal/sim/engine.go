// Package sim implements the discrete-event simulation engine that drives
// every timed component in the repository: DDR4 channel controllers, CPU
// cores, the OS thread scheduler, the Data Copy Engine, and workload agents.
//
// The engine is a single-threaded priority queue of (time, callback) events.
// Determinism is guaranteed: events at the same timestamp fire in insertion
// order, so repeated runs of the same configuration produce bit-identical
// results.
package sim

import (
	"container/heap"

	"repro/internal/clock"
)

// Event is a scheduled callback. The callback runs exactly once, at its
// timestamp, with the engine clock already advanced.
type event struct {
	at  clock.Picos
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the event loop. The zero value is ready to use.
type Engine struct {
	now    clock.Picos
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a fresh engine with its clock at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() clock.Picos { return e.now }

// Fired reports how many events have run, a cheap progress/cost metric.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt the
// DRAM timing model.
func (e *Engine) At(t clock.Picos, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d clock.Picos, fn func()) { e.At(e.now+d, fn) }

// Step fires the single earliest event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued. The engine clock ends at the last fired event (or deadline if
// nothing fired beyond it is needed by the caller).
func (e *Engine) RunUntil(deadline clock.Picos) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile fires events until cond reports false or the queue drains.
// cond is checked after every event.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Ticker invokes fn every interval until fn reports false. The first
// invocation happens one interval from now. Tickers are used for periodic
// observers such as bandwidth samplers and the OS scheduling quantum.
func (e *Engine) Ticker(interval clock.Picos, fn func(now clock.Picos) bool) {
	if interval <= 0 {
		panic("sim: non-positive ticker interval")
	}
	var tick func()
	tick = func() {
		if fn(e.now) {
			e.After(interval, tick)
		}
	}
	e.After(interval, tick)
}
