package sim

import (
	"reflect"
	"testing"
)

// fakeClock is a scripted wall-clock source: every read advances a
// deterministic amount, so cost-model EWMAs computed from it are exact
// and immune to CI timing noise.
type fakeClock struct {
	now  int64
	step func(reads int) int64 // increment for the n-th read (1-based)
	n    int
}

func (c *fakeClock) read() int64 {
	c.n++
	c.now += c.step(c.n)
	return c.now
}

// fixedClock advances the same amount on every read, so every sampled
// interval measures exactly that amount.
func fixedClock(step int64) *fakeClock {
	return &fakeClock{step: func(int) int64 { return step }}
}

// TestCostModelEWMA pins the accumulator semantics: first sample
// initializes, later samples fold in with alpha 1/8.
func TestCostModelEWMA(t *testing.T) {
	var cm costModel
	cm.observeWindow(false, 800, 40)
	if cm.windowNs != 800 || cm.pooledNs != 800 || cm.pooledEv != 40 {
		t.Fatalf("first sample did not initialize: %+v", cm)
	}
	if cm.inlineNs != 0 || cm.inlineEv != 0 {
		t.Fatalf("pooled sample leaked into inline EWMAs: %+v", cm)
	}
	cm.observeWindow(false, 1600, 40)
	if want := 800 + (1600-800)/8.0; cm.pooledNs != want {
		t.Fatalf("pooledNs = %v after second sample, want %v", cm.pooledNs, want)
	}
	cm.observeWindow(true, 100, 4)
	if cm.inlineNs != 100 || cm.inlineEv != 4 {
		t.Fatalf("inline sample not recorded: %+v", cm)
	}
	if cm.perEventInline() != 25 {
		t.Fatalf("perEventInline = %v, want 25", cm.perEventInline())
	}
	if got, want := cm.perEventPooled(), cm.pooledNs/40; got != want {
		t.Fatalf("perEventPooled = %v, want %v", got, want)
	}

	cm.observeSerial(true, 300)
	cm.observeSerial(false, 500)
	if cm.crossNs != 300 || cm.serialNs != 500 {
		t.Fatalf("serial samples misclassified: %+v", cm)
	}
	if want := 300 + (500-300)/8.0; cm.anySerNs != want {
		t.Fatalf("anySerNs = %v, want %v", cm.anySerNs, want)
	}

	// Dispatch fee: pooled window time minus the events' inline-speed
	// cost spread over the workers.
	cm = costModel{inlineNs: 100, inlineEv: 4, pooledNs: 6400, pooledEv: 32}
	if got := cm.dispatchOverhead(8); got != 6400-32*25.0/8 {
		t.Fatalf("dispatchOverhead = %v", got)
	}
	if got := (&costModel{}).dispatchOverhead(8); got != 0 {
		t.Fatalf("dispatchOverhead without samples = %v, want 0", got)
	}
}

// TestCostSamplingFakeClock runs the synthetic machine with an injected
// fixed-step clock and checks the sampled EWMAs land exactly where the
// script says: every sampled interval spans one clock read, so every
// EWMA that has a sample must equal the step.
func TestCostSamplingFakeClock(t *testing.T) {
	const step = 1000
	eng := NewSharded(2)
	clk := fixedClock(step)
	eng.SetWallClock(clk.read)
	buildHarness(eng, 6, 400)
	eng.Run()
	st := eng.ShardStats()
	if clk.n == 0 {
		t.Fatal("injected clock never read")
	}
	if st.WindowNanos != step {
		t.Errorf("WindowNanos = %v, want %v", st.WindowNanos, float64(step))
	}
	// Which serial fires land on the sampling cadence is workload
	// dependent, but any sampled path must read exactly one step.
	if st.SerialNanos != 0 && st.SerialNanos != step {
		t.Errorf("SerialNanos = %v, want 0 or %v", st.SerialNanos, float64(step))
	}
	if st.CrossingNanos != 0 && st.CrossingNanos != step {
		t.Errorf("CrossingNanos = %v, want 0 or %v", st.CrossingNanos, float64(step))
	}
	if st.SerialNanos == 0 && st.CrossingNanos == 0 {
		t.Error("no serial fire was ever sampled")
	}
}

// TestCostAwareTune drives the controller's measured-cost policy table
// directly: threshold moves from the inline-vs-pooled per-event
// comparison, and the pool target from work over dispatch fee.
func TestCostAwareTune(t *testing.T) {
	mk := func() *shardSet {
		return &shardSet{workers: 8, lanes: make([]*Lane, 8), inlineMax: inlineMaxInit, poolTarget: 8}
	}

	// Dispatched events cost more wall time each than inline ones: the
	// fee is not amortizing, so the threshold doubles — even though by
	// event counts alone (zero inline windows) it would have halved.
	s := mk()
	s.cost = costModel{inlineNs: 3200, inlineEv: 32, pooledNs: 6400, pooledEv: 32}
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*480
	s.tune()
	if s.inlineMax != 2*inlineMaxInit {
		t.Errorf("pooled dearer per event: inlineMax = %d, want %d", s.inlineMax, 2*inlineMaxInit)
	}
	// And the pool target follows work/fee: 480 ev/window at 100ns
	// inline each = 48000ns of work; fee = 6400 - 32*100/8 = 6000ns →
	// 8 workers.
	if s.poolTarget != 8 {
		t.Errorf("measured sizing: poolTarget = %d, want 8", s.poolTarget)
	}

	// Dispatched events clearly cheaper (beyond the 7/8 band): the
	// threshold halves even though every window ran inline.
	s = mk()
	s.cost = costModel{inlineNs: 3200, inlineEv: 32, pooledNs: 1600, pooledEv: 64}
	s.windows, s.tuneInline, s.tuneEvents = tuneInterval, tuneInterval, tuneInterval*480
	s.tune()
	if s.inlineMax != inlineMaxInit/2 {
		t.Errorf("pooled cheaper per event: inlineMax = %d, want %d", s.inlineMax, inlineMaxInit/2)
	}

	// A fat measured fee shrinks the pool: 40 ev/window at 100ns =
	// 4000ns of work against a 2200ns fee → 1 worker, clamped to the
	// floor of 2.
	s = mk()
	s.cost = costModel{inlineNs: 3200, inlineEv: 32, pooledNs: 2400, pooledEv: 16}
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*40
	s.tune()
	if s.poolTarget != 2 {
		t.Errorf("fat fee: poolTarget = %d, want 2", s.poolTarget)
	}

	// Serial frontier wall time dominating the interval biases the
	// target down a notch, judged on measured time (window and serial
	// EWMAs) rather than event counts: few serial steps, each dear.
	s = mk()
	s.cost = costModel{windowNs: 1000, anySerNs: 16000}
	s.windows, s.tuneEvents = tuneInterval, tuneInterval*40
	s.serialSteps = tuneInterval * 8 // 8 serial fires per window, 16x dearer
	s.tune()
	// inline=0 → fallback halves inlineMax to 3; 40/3=13 → serial-wall
	// bias → 6 → quantized to 4.
	if s.poolTarget != 4 {
		t.Errorf("serial-wall bias: poolTarget = %d, want 4", s.poolTarget)
	}
}

// TestCostModelDeterminismAdversarialClock pins the construction-level
// claim that timing steers only execution mode: a deliberately jittery
// wall clock must leave the crossing log and every count byte-identical
// to the serial reference at every worker count.
func TestCostModelDeterminismAdversarialClock(t *testing.T) {
	run := func(workers int, clk *fakeClock) ([]string, []int, uint64) {
		eng := NewSharded(workers)
		if clk != nil {
			eng.SetWallClock(clk.read)
		}
		h := buildHarness(eng, 6, 400)
		eng.Run()
		counts := make([]int, len(h.lanes))
		for i, l := range h.lanes {
			counts[i] = l.fired
		}
		return h.log, counts, eng.Fired()
	}
	refLog, refCounts, refFired := run(1, nil)
	// LCG-driven jitter: wildly uneven, deterministic only in the sense
	// that the test can rerun — the engine must not care either way.
	jitter := func() *fakeClock {
		state := int64(0x2545F4914F6CDD1D)
		return &fakeClock{step: func(int) int64 {
			state = state*6364136223846793005 + 1442695040888963407
			return (state>>33)&0xFFFF + 1
		}}
	}
	for _, w := range []int{1, 2, 4, 8} {
		log, counts, fired := run(w, jitter())
		if !reflect.DeepEqual(log, refLog) {
			t.Fatalf("workers=%d with jittery clock: crossing log diverged", w)
		}
		if !reflect.DeepEqual(counts, refCounts) {
			t.Fatalf("workers=%d with jittery clock: lane counts %v != %v", w, counts, refCounts)
		}
		if fired != refFired {
			t.Fatalf("workers=%d with jittery clock: fired %d != %d", w, fired, refFired)
		}
	}
}
