// Package addrmap implements the memory mapping functions of the paper:
// the locality-centric ChRaBgBkRoCo mapping that PIM-specific BIOSes enforce
// (Fig. 7a), the MLP-centric mapping with permutation-based XOR hashing used
// by conventional servers (Fig. 7b), and HetMap, the heterogeneous mapping
// unit that applies a different function per physical address region
// (Section IV-E).
package addrmap

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Geometry describes one DRAM subsystem (one set of DIMMs behind a set of
// channels). All dimensions must be powers of two; DDR4 addressing is
// binary.
type Geometry struct {
	Channels   int // memory channels
	Ranks      int // ranks per channel
	BankGroups int // bank groups per rank
	Banks      int // banks per bank group
	Rows       int // rows per bank
	Cols       int // line-sized (64 B) columns per row
}

// Validate reports a descriptive error when any dimension is not a
// positive power of two.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("addrmap: %s=%d is not a positive power of two", name, v)
		}
		return nil
	}
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"Ranks", g.Ranks},
		{"BankGroups", g.BankGroups},
		{"Banks", g.Banks},
		{"Rows", g.Rows},
		{"Cols", g.Cols},
	} {
		if err := check(d.name, d.v); err != nil {
			return err
		}
	}
	return nil
}

// RowBytes is the size of one DRAM row in bytes.
func (g Geometry) RowBytes() uint64 { return uint64(g.Cols) * mem.LineBytes }

// BankBytes is the capacity of one bank.
func (g Geometry) BankBytes() uint64 { return uint64(g.Rows) * g.RowBytes() }

// TotalBytes is the capacity of the whole subsystem.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels*g.Ranks*g.BankGroups*g.Banks) * g.BankBytes()
}

// TotalBanks is the number of independently schedulable banks.
func (g Geometry) TotalBanks() int {
	return g.Channels * g.Ranks * g.BankGroups * g.Banks
}

// BanksPerChannel is ranks x bank groups x banks.
func (g Geometry) BanksPerChannel() int { return g.Ranks * g.BankGroups * g.Banks }

func (g Geometry) String() string {
	return fmt.Sprintf("%dch x %dra x %dbg x %dbk x %drows x %dcols (%.1f GiB)",
		g.Channels, g.Ranks, g.BankGroups, g.Banks, g.Rows, g.Cols,
		float64(g.TotalBytes())/(1<<30))
}

func log2(v int) uint { return uint(bits.TrailingZeros(uint(v))) }

// Loc is a fully decoded DRAM location for one 64-byte line.
type Loc struct {
	Channel   int
	Rank      int
	BankGroup int
	Bank      int
	Row       int
	Col       int
}

// BankID flattens (rank, bank group, bank) into a per-channel bank index.
// The layout matches Algorithm 1's get_pim_core_id: rank-major, then bank
// group, then bank.
func (l Loc) BankID(g Geometry) int {
	return (l.Rank*g.BankGroups+l.BankGroup)*g.Banks + l.Bank
}

func (l Loc) String() string {
	return fmt.Sprintf("ch%d/ra%d/bg%d/bk%d/ro%d/co%d",
		l.Channel, l.Rank, l.BankGroup, l.Bank, l.Row, l.Col)
}

// Mapper translates a line-aligned physical address (relative to the start
// of its region) into a DRAM location. Implementations must be bijections
// over [0, Geometry().TotalBytes()).
type Mapper interface {
	// Map decodes a region-relative, line-aligned address.
	Map(addr uint64) Loc
	// Unmap is the inverse of Map; it returns the line-aligned address.
	Unmap(loc Loc) uint64
	// Geometry reports the subsystem dimensions the mapper was built for.
	Geometry() Geometry
	// Name identifies the mapping for reports ("locality", "mlp", ...).
	Name() string
}
