package addrmap

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Region is one contiguous physical-address range served by a particular
// mapping function and device set. The BIOS establishes these ranges at
// boot and informs the memory controller (paper Section IV-E).
type Region struct {
	// Name labels the region ("dram", "pim").
	Name string
	// Base is the first physical address of the region.
	Base uint64
	// Mapper decodes region-relative addresses.
	Mapper Mapper
	// Space tells the system which device set (DRAM DIMMs or PIM DIMMs)
	// the decoded location belongs to.
	Space mem.Space
}

// Size is the region's capacity in bytes, derived from its mapper.
func (r Region) Size() uint64 { return r.Mapper.Geometry().TotalBytes() }

// End is one past the region's last byte.
func (r Region) End() uint64 { return r.Base + r.Size() }

// HetMap is the Heterogeneous Memory Mapping Unit (Section IV-E). It keeps
// one mapping function per physical-address region and dispatches each
// incoming request to the mapper of the region that contains it: an
// MLP-centric mapping for the DRAM region and a locality-centric
// ChRaBgBkRoCo mapping for the PIM region.
//
// The baseline (non-PIM-MMU) system is expressed with the same type by
// installing the locality-centric function on *both* regions, mirroring
// the homogeneous BIOS mapping real PIM systems are forced into.
type HetMap struct {
	regions []Region // sorted by Base
}

// NewHetMap builds a mapping unit from the given regions. Regions must not
// overlap; overlap is a configuration bug and panics.
func NewHetMap(regions ...Region) *HetMap {
	rs := make([]Region, len(regions))
	copy(rs, regions)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	for i := 1; i < len(rs); i++ {
		if rs[i].Base < rs[i-1].End() {
			panic(fmt.Sprintf("addrmap: regions %q and %q overlap", rs[i-1].Name, rs[i].Name))
		}
	}
	return &HetMap{regions: rs}
}

// Lookup finds the region containing addr. The second result is false when
// the address falls outside every region.
func (h *HetMap) Lookup(addr uint64) (Region, bool) {
	i := sort.Search(len(h.regions), func(i int) bool { return h.regions[i].End() > addr })
	if i < len(h.regions) && addr >= h.regions[i].Base {
		return h.regions[i], true
	}
	return Region{}, false
}

// Decode translates a physical address into (region, location). It panics
// on an unmapped address: every simulated agent allocates inside a region,
// so an unmapped address is a simulator bug, not a runtime condition.
func (h *HetMap) Decode(addr uint64) (Region, Loc) {
	r, ok := h.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("addrmap: address 0x%x outside every region", addr))
	}
	return r, r.Mapper.Map(addr - r.Base)
}

// Encode is the inverse of Decode for a named region.
func (h *HetMap) Encode(regionName string, l Loc) uint64 {
	for _, r := range h.regions {
		if r.Name == regionName {
			return r.Base + r.Mapper.Unmap(l)
		}
	}
	panic(fmt.Sprintf("addrmap: unknown region %q", regionName))
}

// Region returns the named region.
func (h *HetMap) Region(name string) Region {
	for _, r := range h.regions {
		if r.Name == name {
			return r
		}
	}
	panic(fmt.Sprintf("addrmap: unknown region %q", name))
}

// Regions returns the regions sorted by base address.
func (h *HetMap) Regions() []Region { return h.regions }

func (h *HetMap) String() string {
	s := "HetMap{"
	for i, r := range h.regions {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s@0x%x:%s", r.Name, r.Base, r.Mapper.Name())
	}
	return s + "}"
}
