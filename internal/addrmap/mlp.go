package addrmap

import (
	"fmt"

	"repro/internal/mem"
)

// MLP is the MLP-centric mapping used by conventional (non-PIM) servers
// (paper Fig. 7b, referencing Intel Xeon datasheets and DRAMA reverse
// engineering). Two ideas maximize memory-level parallelism:
//
//  1. Bit placement: the channel bits sit just above a small low slice of
//     the column bits, so a 256-byte stream already touches every channel;
//     a low bank-group bit sits immediately above the channel bits so
//     consecutive bursts alternate bank groups (hiding tCCD_L); rank and
//     bank bits sit below the row bits so a few KiB of streaming spreads
//     across every bank.
//  2. Permutation-based XOR hashing (Zhang et al., MICRO 2000): the bank,
//     bank-group and channel indices are XORed with slices of the row
//     index, so strided patterns that would otherwise camp on one bank are
//     spread across the subsystem while row-buffer locality within a bank
//     is preserved (XORing with row bits permutes banks *between* rows,
//     never within one).
//
// The XOR stage only feeds row bits into non-row fields, so the mapping
// remains a bijection; Unmap undoes it exactly.
type MLP struct {
	g Geometry

	colLowBits                                           uint // column bits below the channel bits (fine interleave)
	bgLowBits                                            uint // bank-group bits interleaved right above the channel
	colBits, rowBits, bankBits, bgBits, rankBits, chBits uint

	hashing bool // XOR hashing enabled (on by default)
}

// MLPOption customizes the MLP-centric mapping.
type MLPOption func(*MLP)

// WithoutXORHash disables the permutation-based XOR stage. Used by the
// ablation benches to isolate the contribution of hashing.
func WithoutXORHash() MLPOption { return func(m *MLP) { m.hashing = false } }

// NewMLP builds the MLP-centric mapping for a geometry.
func NewMLP(g Geometry, opts ...MLPOption) *MLP {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	m := &MLP{
		g:        g,
		colBits:  log2(g.Cols),
		rowBits:  log2(g.Rows),
		bankBits: log2(g.Banks),
		bgBits:   log2(g.BankGroups),
		rankBits: log2(g.Ranks),
		chBits:   log2(g.Channels),
		hashing:  true,
	}
	// Interleave channels every 256 B (4 lines), matching Intel's
	// fine-grained channel interleaving granularity.
	m.colLowBits = 2
	if m.colLowBits > m.colBits {
		m.colLowBits = m.colBits
	}
	// One bank-group bit right above the channel bits, if any exist.
	if m.bgBits > 0 {
		m.bgLowBits = 1
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// fold XORs the slices of v together down to width bits.
func fold(v uint64, width uint) uint64 {
	if width == 0 {
		return 0
	}
	var out uint64
	mask := uint64(1)<<width - 1
	for v != 0 {
		out ^= v & mask
		v >>= width
	}
	return out
}

// Map implements Mapper.
func (m *MLP) Map(addr uint64) Loc {
	a := addr / mem.LineBytes
	take := func(width uint) uint64 {
		v := a & (1<<width - 1)
		a >>= width
		return v
	}
	colLow := take(m.colLowBits)
	ch := take(m.chBits)
	bgLow := take(m.bgLowBits)
	colHigh := take(m.colBits - m.colLowBits)
	rank := take(m.rankBits)
	bgHigh := take(m.bgBits - m.bgLowBits)
	bank := take(m.bankBits)
	row := take(m.rowBits)

	bg := bgHigh<<m.bgLowBits | bgLow
	col := colHigh<<m.colLowBits | colLow

	if m.hashing {
		bank ^= row & (1<<m.bankBits - 1)
		bg ^= (row >> m.bankBits) & (1<<m.bgBits - 1)
		ch ^= fold(row>>(m.bankBits+m.bgBits), m.chBits)
	}
	return Loc{
		Channel:   int(ch),
		Rank:      int(rank),
		BankGroup: int(bg),
		Bank:      int(bank),
		Row:       int(row),
		Col:       int(col),
	}
}

// Unmap implements Mapper.
func (m *MLP) Unmap(l Loc) uint64 {
	row := uint64(l.Row)
	bank := uint64(l.Bank)
	bg := uint64(l.BankGroup)
	ch := uint64(l.Channel)
	if m.hashing {
		bank ^= row & (1<<m.bankBits - 1)
		bg ^= (row >> m.bankBits) & (1<<m.bgBits - 1)
		ch ^= fold(row>>(m.bankBits+m.bgBits), m.chBits)
	}
	col := uint64(l.Col)
	colLow := col & (1<<m.colLowBits - 1)
	colHigh := col >> m.colLowBits
	bgLow := bg & (1<<m.bgLowBits - 1)
	bgHigh := bg >> m.bgLowBits

	a := row
	a = a<<m.bankBits | bank
	a = a<<(m.bgBits-m.bgLowBits) | bgHigh
	a = a<<m.rankBits | uint64(l.Rank)
	a = a<<(m.colBits-m.colLowBits) | colHigh
	a = a<<m.bgLowBits | bgLow
	a = a<<m.chBits | ch
	a = a<<m.colLowBits | colLow
	return a * mem.LineBytes
}

// Geometry implements Mapper.
func (m *MLP) Geometry() Geometry { return m.g }

// Name implements Mapper.
func (m *MLP) Name() string {
	if !m.hashing {
		return "mlp-nohash"
	}
	return "mlp"
}

func (m *MLP) String() string {
	return fmt.Sprintf("mlp-centric(%s, hashing=%t)", m.g, m.hashing)
}

// Hashing reports whether XOR hashing is enabled.
func (m *MLP) Hashing() bool { return m.hashing }
