package addrmap

import (
	"fmt"

	"repro/internal/mem"
)

// Locality is the locality-centric ChRaBgBkRoCo mapping employed by
// PIM-specific BIOS updates (paper Fig. 7a). Reading the physical address
// from its most significant bit downwards, the channel bits come first,
// then rank, bank group, bank, row, and finally column. Consecutive
// addresses therefore stay inside a single row of a single bank for an
// entire row's worth of data, and inside a single channel for an entire
// channel's worth — which is exactly what keeps every PIM core's address
// range confined to its own bank, and exactly what destroys memory-level
// parallelism for ordinary streaming (Fig. 8).
type Locality struct {
	g Geometry

	colBits, rowBits, bankBits, bgBits, rankBits, chBits uint
}

// NewLocality builds the locality-centric mapping for a geometry. It
// panics on invalid geometry: geometries are static configuration.
func NewLocality(g Geometry) *Locality {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &Locality{
		g:        g,
		colBits:  log2(g.Cols),
		rowBits:  log2(g.Rows),
		bankBits: log2(g.Banks),
		bgBits:   log2(g.BankGroups),
		rankBits: log2(g.Ranks),
		chBits:   log2(g.Channels),
	}
}

// Map implements Mapper.
func (m *Locality) Map(addr uint64) Loc {
	a := addr / mem.LineBytes
	var l Loc
	l.Col = int(a & (uint64(m.g.Cols) - 1))
	a >>= m.colBits
	l.Row = int(a & (uint64(m.g.Rows) - 1))
	a >>= m.rowBits
	l.Bank = int(a & (uint64(m.g.Banks) - 1))
	a >>= m.bankBits
	l.BankGroup = int(a & (uint64(m.g.BankGroups) - 1))
	a >>= m.bgBits
	l.Rank = int(a & (uint64(m.g.Ranks) - 1))
	a >>= m.rankBits
	l.Channel = int(a & (uint64(m.g.Channels) - 1))
	return l
}

// Unmap implements Mapper.
func (m *Locality) Unmap(l Loc) uint64 {
	a := uint64(l.Channel)
	a = a<<m.rankBits | uint64(l.Rank)
	a = a<<m.bgBits | uint64(l.BankGroup)
	a = a<<m.bankBits | uint64(l.Bank)
	a = a<<m.rowBits | uint64(l.Row)
	a = a<<m.colBits | uint64(l.Col)
	return a * mem.LineBytes
}

// Geometry implements Mapper.
func (m *Locality) Geometry() Geometry { return m.g }

// Name implements Mapper.
func (m *Locality) Name() string { return "locality" }

func (m *Locality) String() string { return fmt.Sprintf("locality-centric(%s)", m.g) }
