package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// testGeom is a small geometry so exhaustive checks stay fast.
var testGeom = Geometry{
	Channels: 4, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 64, Cols: 32,
}

// paperGeom matches Table I (DDR4-2400, 4 channels, 2 ranks/channel).
var paperGeom = Geometry{
	Channels: 4, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 32768, Cols: 128,
}

func mappers(g Geometry) []Mapper {
	return []Mapper{NewLocality(g), NewMLP(g), NewMLP(g, WithoutXORHash())}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeom.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := testGeom
	bad.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Error("Channels=3 accepted; want power-of-two error")
	}
	bad = testGeom
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("Rows=0 accepted; want error")
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := paperGeom
	if got := g.RowBytes(); got != 8192 {
		t.Errorf("RowBytes = %d, want 8192", got)
	}
	if got := g.BankBytes(); got != 256<<20 {
		t.Errorf("BankBytes = %d, want 256 MiB", got)
	}
	if got := g.TotalBytes(); got != 32<<30 {
		t.Errorf("TotalBytes = %d, want 32 GiB", got)
	}
	if got := g.TotalBanks(); got != 128 {
		t.Errorf("TotalBanks = %d, want 128", got)
	}
	if got := g.BanksPerChannel(); got != 32 {
		t.Errorf("BanksPerChannel = %d, want 32", got)
	}
}

// Every mapper must be a bijection: Unmap(Map(a)) == a for all line-aligned
// addresses, checked exhaustively on the small geometry.
func TestMapUnmapRoundTripExhaustive(t *testing.T) {
	for _, m := range mappers(testGeom) {
		total := testGeom.TotalBytes()
		for a := uint64(0); a < total; a += mem.LineBytes {
			if got := m.Unmap(m.Map(a)); got != a {
				t.Fatalf("%s: Unmap(Map(0x%x)) = 0x%x", m.Name(), a, got)
			}
		}
	}
}

// Property-based round trip on the full paper geometry.
func TestMapUnmapRoundTripQuick(t *testing.T) {
	for _, m := range mappers(paperGeom) {
		m := m
		f := func(raw uint64) bool {
			a := mem.LineAlign(raw % paperGeom.TotalBytes())
			return m.Unmap(m.Map(a)) == a
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// Every decoded field must be inside the geometry's bounds.
func TestMapFieldsInRange(t *testing.T) {
	for _, m := range mappers(paperGeom) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			a := mem.LineAlign(rng.Uint64() % paperGeom.TotalBytes())
			l := m.Map(a)
			g := paperGeom
			if l.Channel < 0 || l.Channel >= g.Channels ||
				l.Rank < 0 || l.Rank >= g.Ranks ||
				l.BankGroup < 0 || l.BankGroup >= g.BankGroups ||
				l.Bank < 0 || l.Bank >= g.Banks ||
				l.Row < 0 || l.Row >= g.Rows ||
				l.Col < 0 || l.Col >= g.Cols {
				t.Fatalf("%s: Map(0x%x) = %v out of range", m.Name(), a, l)
			}
		}
	}
}

// The locality mapping must keep a whole bank's worth of consecutive
// addresses inside one bank — the property PIM address spaces rely on.
func TestLocalityKeepsBankContiguous(t *testing.T) {
	m := NewLocality(testGeom)
	bankBytes := testGeom.BankBytes()
	first := m.Map(0)
	for a := uint64(0); a < bankBytes; a += mem.LineBytes {
		l := m.Map(a)
		if l.Channel != first.Channel || l.Rank != first.Rank ||
			l.BankGroup != first.BankGroup || l.Bank != first.Bank {
			t.Fatalf("address 0x%x left bank: %v vs %v", a, l, first)
		}
	}
	// The very next line must move to a different bank.
	l := m.Map(bankBytes)
	if l.BankID(testGeom) == first.BankID(testGeom) && l.Channel == first.Channel {
		t.Error("address one past bank capacity stayed in the same bank")
	}
}

// The locality mapping's channel bits are at the MSB end: the lower
// 1/Channels of the space maps entirely to channel 0.
func TestLocalityChannelAtMSB(t *testing.T) {
	m := NewLocality(testGeom)
	perCh := testGeom.TotalBytes() / uint64(testGeom.Channels)
	for i := 0; i < 1000; i++ {
		a := mem.LineAlign(uint64(rand.Int63()) % perCh)
		if l := m.Map(a); l.Channel != 0 {
			t.Fatalf("low-space address 0x%x mapped to channel %d", a, l.Channel)
		}
	}
	if l := m.Map(perCh); l.Channel != 1 {
		t.Errorf("first address of second slice mapped to channel %d, want 1", l.Channel)
	}
}

// The MLP mapping must spread a short sequential stream across every
// channel: 256-byte granularity channel interleaving.
func TestMLPChannelInterleavingFine(t *testing.T) {
	m := NewMLP(testGeom)
	seen := map[int]bool{}
	// 4 KiB sequential stream must touch all 4 channels.
	for a := uint64(0); a < 4096; a += mem.LineBytes {
		seen[m.Map(a).Channel] = true
	}
	if len(seen) != testGeom.Channels {
		t.Errorf("4KiB stream touched %d channels, want %d", len(seen), testGeom.Channels)
	}
}

// A sequential stream under MLP mapping must also rotate bank groups at
// fine granularity (hiding tCCD_L).
func TestMLPBankGroupInterleaving(t *testing.T) {
	m := NewMLP(testGeom)
	seen := map[int]bool{}
	for a := uint64(0); a < 8192; a += mem.LineBytes {
		l := m.Map(a)
		seen[l.BankGroup&1] = true
	}
	if len(seen) != 2 {
		t.Error("8KiB stream never toggled the low bank-group bit")
	}
}

// XOR hashing must permute banks across rows: the same (bank,bg,ch) index
// bits map to different physical banks in different rows.
func TestXORHashPermutesAcrossRows(t *testing.T) {
	g := paperGeom
	m := NewMLP(g)
	nohash := NewMLP(g, WithoutXORHash())
	rowStride := uint64(g.Cols) * mem.LineBytes * uint64(g.Channels*g.Ranks*g.BankGroups*g.Banks)
	diff := 0
	for i := 0; i < 64; i++ {
		a := uint64(i) * rowStride
		if m.Map(a).Bank != nohash.Map(a).Bank ||
			m.Map(a).BankGroup != nohash.Map(a).BankGroup {
			diff++
		}
	}
	if diff == 0 {
		t.Error("XOR hashing never changed the bank/bank-group assignment across rows")
	}
}

// A power-of-two stride that camps on one bank without hashing must spread
// over multiple banks with hashing — the motivating property of
// permutation-based interleaving.
func TestXORHashSpreadsStridedPattern(t *testing.T) {
	g := paperGeom
	hashed := NewMLP(g)
	plain := NewMLP(g, WithoutXORHash())
	// Stride of one full row span: without hashing every access lands in
	// the same bank of the same channel.
	stride := uint64(g.Cols) * mem.LineBytes * uint64(g.Channels*g.Ranks*g.BankGroups*g.Banks)
	banksPlain := map[[4]int]bool{}
	banksHashed := map[[4]int]bool{}
	for i := 0; i < 256; i++ {
		a := uint64(i) * stride
		lp, lh := plain.Map(a), hashed.Map(a)
		banksPlain[[4]int{lp.Channel, lp.Rank, lp.BankGroup, lp.Bank}] = true
		banksHashed[[4]int{lh.Channel, lh.Rank, lh.BankGroup, lh.Bank}] = true
	}
	if len(banksPlain) != 1 {
		t.Fatalf("without hashing, row-stride pattern touched %d banks, want 1", len(banksPlain))
	}
	if len(banksHashed) < 16 {
		t.Errorf("with hashing, row-stride pattern touched only %d banks, want >= 16", len(banksHashed))
	}
}

// XOR hashing must never change the row or column (it permutes banks
// between rows, preserving row-buffer locality).
func TestXORHashPreservesRowAndColumn(t *testing.T) {
	hashed := NewMLP(paperGeom)
	plain := NewMLP(paperGeom, WithoutXORHash())
	f := func(raw uint64) bool {
		a := mem.LineAlign(raw % paperGeom.TotalBytes())
		lh, lp := hashed.Map(a), plain.Map(a)
		return lh.Row == lp.Row && lh.Col == lp.Col && lh.Rank == lp.Rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBankID(t *testing.T) {
	g := testGeom
	want := 0
	for ra := 0; ra < g.Ranks; ra++ {
		for bg := 0; bg < g.BankGroups; bg++ {
			for bk := 0; bk < g.Banks; bk++ {
				l := Loc{Rank: ra, BankGroup: bg, Bank: bk}
				if got := l.BankID(g); got != want {
					t.Fatalf("BankID(ra=%d,bg=%d,bk=%d) = %d, want %d", ra, bg, bk, got, want)
				}
				want++
			}
		}
	}
}

func TestHetMapDispatch(t *testing.T) {
	dram := NewMLP(testGeom)
	pim := NewLocality(testGeom)
	h := NewHetMap(
		Region{Name: "dram", Base: 0, Mapper: dram, Space: mem.SpaceDRAM},
		Region{Name: "pim", Base: mem.PIMBase, Mapper: pim, Space: mem.SpacePIM},
	)
	r, _ := h.Decode(0x1000)
	if r.Name != "dram" || r.Space != mem.SpaceDRAM {
		t.Errorf("Decode(0x1000) region = %q/%v, want dram/DRAM", r.Name, r.Space)
	}
	r, _ = h.Decode(mem.PIMBase + 0x40)
	if r.Name != "pim" || r.Space != mem.SpacePIM {
		t.Errorf("Decode(PIM+0x40) region = %q/%v, want pim/PIM", r.Name, r.Space)
	}
}

func TestHetMapDecodeUsesRegionRelativeAddress(t *testing.T) {
	pim := NewLocality(testGeom)
	h := NewHetMap(
		Region{Name: "pim", Base: mem.PIMBase, Mapper: pim, Space: mem.SpacePIM},
	)
	_, l := h.Decode(mem.PIMBase)
	if l != (Loc{}) {
		t.Errorf("Decode(PIMBase) = %v, want zero location", l)
	}
}

func TestHetMapEncodeDecodeRoundTrip(t *testing.T) {
	h := NewHetMap(
		Region{Name: "dram", Base: 0, Mapper: NewMLP(testGeom), Space: mem.SpaceDRAM},
		Region{Name: "pim", Base: mem.PIMBase, Mapper: NewLocality(testGeom), Space: mem.SpacePIM},
	)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		region := "dram"
		base := uint64(0)
		if i%2 == 1 {
			region, base = "pim", mem.PIMBase
		}
		a := base + mem.LineAlign(rng.Uint64()%testGeom.TotalBytes())
		_, l := h.Decode(a)
		if got := h.Encode(region, l); got != a {
			t.Fatalf("Encode(%s, Decode(0x%x)) = 0x%x", region, a, got)
		}
	}
}

func TestHetMapLookupMiss(t *testing.T) {
	h := NewHetMap(
		Region{Name: "dram", Base: 0, Mapper: NewLocality(testGeom), Space: mem.SpaceDRAM},
	)
	if _, ok := h.Lookup(testGeom.TotalBytes()); ok {
		t.Error("Lookup just past region end reported a hit")
	}
	if _, ok := h.Lookup(1 << 60); ok {
		t.Error("Lookup far address reported a hit")
	}
}

func TestHetMapOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping regions did not panic")
		}
	}()
	NewHetMap(
		Region{Name: "a", Base: 0, Mapper: NewLocality(testGeom)},
		Region{Name: "b", Base: 64, Mapper: NewLocality(testGeom)},
	)
}

func TestHetMapDecodeOutsidePanics(t *testing.T) {
	h := NewHetMap(Region{Name: "dram", Base: 0, Mapper: NewLocality(testGeom)})
	defer func() {
		if recover() == nil {
			t.Error("Decode outside every region did not panic")
		}
	}()
	h.Decode(1 << 50)
}

func TestSpaceOf(t *testing.T) {
	if mem.SpaceOf(0) != mem.SpaceDRAM {
		t.Error("SpaceOf(0) != DRAM")
	}
	if mem.SpaceOf(mem.PIMBase) != mem.SpacePIM {
		t.Error("SpaceOf(PIMBase) != PIM")
	}
	if mem.SpaceOf(mem.PIMBase-1) != mem.SpaceDRAM {
		t.Error("SpaceOf(PIMBase-1) != DRAM")
	}
}

// Distribution check: over a large random sample, the MLP mapping must
// spread lines near-uniformly across channels (within 5%).
func TestMLPChannelUniformity(t *testing.T) {
	m := NewMLP(paperGeom)
	counts := make([]int, paperGeom.Channels)
	rng := rand.New(rand.NewSource(3))
	const n = 40000
	for i := 0; i < n; i++ {
		a := mem.LineAlign(rng.Uint64() % paperGeom.TotalBytes())
		counts[m.Map(a).Channel]++
	}
	want := n / paperGeom.Channels
	for ch, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Errorf("channel %d got %d of %d lines; want ~%d", ch, c, n, want)
		}
	}
}
