package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/clock"
	"repro/internal/mem"
)

// Pattern names a built-in synthetic workload generator. The patterns
// model the access shapes real applications present at the memory port:
// dense streaming, strided array walks, dependent pointer chasing,
// mixed read/write update loops, and skewed (zipfian) hot-set reuse.
type Pattern string

const (
	// PatternStream is a dense sequential read stream.
	PatternStream Pattern = "stream"
	// PatternStrided reads every StrideLines-th line.
	PatternStrided Pattern = "strided"
	// PatternChase walks a random permutation cycle over the footprint,
	// one dependent line per record.
	PatternChase Pattern = "chase"
	// PatternMixed issues uniform-random accesses over the footprint
	// with WritePercent percent stores.
	PatternMixed Pattern = "mixed"
	// PatternZipf reads a zipf-distributed hot set: a few lines absorb
	// most of the traffic.
	PatternZipf Pattern = "zipf"
)

// Patterns lists every built-in generator in a stable order.
func Patterns() []Pattern {
	return []Pattern{PatternStream, PatternStrided, PatternChase, PatternMixed, PatternZipf}
}

// GenConfig parameterizes the synthetic generators. Zero values select
// the defaults of DefaultGenConfig; every generator is fully
// deterministic in (pattern, config).
type GenConfig struct {
	// Records is the number of records to emit.
	Records int
	// Base is the address of the first line of the footprint.
	Base uint64
	// FootprintLines bounds the address span (chase, mixed, zipf).
	FootprintLines int
	// StrideLines is the distance between consecutive accesses for
	// the strided pattern.
	StrideLines int
	// Gap is the inter-arrival time between records.
	Gap clock.Picos
	// WritePercent is the store share (0-100) of the mixed pattern.
	WritePercent int
	// ZipfTheta is the zipf skew parameter (0 < theta < 1; larger is
	// more skewed).
	ZipfTheta float64
	// Seed drives the deterministic PRNG of the randomized patterns.
	Seed uint64
}

// DefaultGenConfig sizes a small but memory-system-exercising workload.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Records:        1 << 14,
		FootprintLines: 1 << 16, // 4 MiB
		StrideLines:    4,
		Gap:            clock.Nanosecond,
		WritePercent:   30,
		ZipfTheta:      0.8,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.Records <= 0 {
		return fmt.Errorf("trace: non-positive record count %d", c.Records)
	}
	if c.Base%mem.LineBytes != 0 {
		return fmt.Errorf("trace: base address 0x%x not line-aligned", c.Base)
	}
	if c.FootprintLines <= 0 {
		return fmt.Errorf("trace: non-positive footprint %d lines", c.FootprintLines)
	}
	if c.StrideLines <= 0 {
		return fmt.Errorf("trace: non-positive stride %d lines", c.StrideLines)
	}
	if c.Gap < 0 {
		return fmt.Errorf("trace: negative inter-arrival gap %v", c.Gap)
	}
	if c.WritePercent < 0 || c.WritePercent > 100 {
		return fmt.Errorf("trace: write percent %d outside [0,100]", c.WritePercent)
	}
	if c.ZipfTheta <= 0 || c.ZipfTheta >= 1 {
		return fmt.Errorf("trace: zipf theta %g outside (0,1)", c.ZipfTheta)
	}
	return nil
}

// Generate builds the named synthetic pattern.
func Generate(p Pattern, cfg GenConfig) ([]Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch p {
	case PatternStream:
		return genLinear(cfg, 1), nil
	case PatternStrided:
		return genLinear(cfg, cfg.StrideLines), nil
	case PatternChase:
		return genChase(cfg), nil
	case PatternMixed:
		return genMixed(cfg), nil
	case PatternZipf:
		return genZipf(cfg), nil
	}
	return nil, fmt.Errorf("trace: unknown pattern %q", p)
}

// MustGenerate is Generate for static configurations.
func MustGenerate(p Pattern, cfg GenConfig) []Record {
	recs, err := Generate(p, cfg)
	if err != nil {
		panic(err)
	}
	return recs
}

// FootprintBytes reports the address span a pattern touches, for
// allocating its backing buffer.
func (c GenConfig) FootprintBytes(p Pattern) uint64 {
	switch p {
	case PatternStream:
		return uint64(c.Records) * mem.LineBytes
	case PatternStrided:
		return uint64(c.Records) * uint64(c.StrideLines) * mem.LineBytes
	default:
		return uint64(c.FootprintLines) * mem.LineBytes
	}
}

// genLinear emits one read per record at the given stride.
func genLinear(cfg GenConfig, stride int) []Record {
	recs := make([]Record, cfg.Records)
	for i := range recs {
		recs[i] = Record{
			TSC:   clock.Picos(i) * cfg.Gap,
			Kind:  KindRead,
			Addr:  cfg.Base + uint64(i)*uint64(stride)*mem.LineBytes,
			Bytes: mem.LineBytes,
		}
	}
	return recs
}

// genChase builds a single-cycle random permutation over the footprint
// (Sattolo's algorithm) and walks it, so every access depends on the
// previous one and the stream has no spatial locality.
func genChase(cfg GenConfig) []Record {
	n := cfg.FootprintLines
	next := make([]int32, n)
	for i := range next {
		next[i] = int32(i)
	}
	rng := splitmix64(cfg.Seed)
	for i := n - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i)) // j in [0, i): Sattolo, one cycle
		next[i], next[j] = next[j], next[i]
	}
	recs := make([]Record, cfg.Records)
	cur := int32(0)
	for i := range recs {
		recs[i] = Record{
			TSC:   clock.Picos(i) * cfg.Gap,
			Kind:  KindRead,
			Addr:  cfg.Base + uint64(cur)*mem.LineBytes,
			Bytes: mem.LineBytes,
		}
		cur = next[cur]
	}
	return recs
}

// genMixed emits uniform-random accesses over the footprint with the
// configured store share.
func genMixed(cfg GenConfig) []Record {
	rng := splitmix64(cfg.Seed)
	recs := make([]Record, cfg.Records)
	for i := range recs {
		line := rng.next() % uint64(cfg.FootprintLines)
		kind := KindRead
		if int(rng.next()%100) < cfg.WritePercent {
			kind = KindWrite
		}
		recs[i] = Record{
			TSC:   clock.Picos(i) * cfg.Gap,
			Kind:  kind,
			Addr:  cfg.Base + line*mem.LineBytes,
			Bytes: mem.LineBytes,
		}
	}
	return recs
}

// genZipf emits reads whose line index follows a zipf(theta)
// distribution over the footprint: rank r is drawn with probability
// proportional to 1/r^theta, so a small hot set dominates.
func genZipf(cfg GenConfig) []Record {
	n := cfg.FootprintLines
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfTheta)
		cum[i] = total
	}
	rng := splitmix64(cfg.Seed)
	recs := make([]Record, cfg.Records)
	for i := range recs {
		u := rng.float64() * total
		rank := sort.SearchFloat64s(cum, u)
		if rank >= n {
			rank = n - 1
		}
		recs[i] = Record{
			TSC:   clock.Picos(i) * cfg.Gap,
			Kind:  KindRead,
			Addr:  cfg.Base + uint64(rank)*mem.LineBytes,
			Bytes: mem.LineBytes,
		}
	}
	return recs
}

// rngState is a splitmix64 PRNG: tiny, fast, and identical on every
// platform, which the determinism contract requires.
type rngState uint64

func splitmix64(seed uint64) *rngState {
	r := rngState(seed)
	return &r
}

func (r *rngState) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rngState) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
