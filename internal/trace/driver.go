package trace

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Process names an open-loop arrival process. Where the Replayer paces
// issue by recorded inter-arrival times and lets backpressure slip the
// whole timeline, a Process describes arrivals that accrue on the
// simulated clock no matter what the memory system does — the open-loop
// model of user-driven traffic against a latency SLO.
type Process string

const (
	// ProcessFixed arrives at exactly one request per MeanGap.
	ProcessFixed Process = "fixed"
	// ProcessPoisson draws exponential inter-arrival gaps with mean
	// MeanGap from the deterministic splitmix64 PRNG.
	ProcessPoisson Process = "poisson"
	// ProcessBurst alternates OnTime windows of dense fixed-gap arrivals
	// with OffTime windows of silence, preserving MeanGap as the
	// long-run mean inter-arrival time.
	ProcessBurst Process = "burst"
)

// Processes lists every arrival process in a stable order.
func Processes() []Process {
	return []Process{ProcessFixed, ProcessPoisson, ProcessBurst}
}

// DriverConfig parameterizes an open-loop load driver.
type DriverConfig struct {
	// Process selects the arrival process.
	Process Process
	// MeanGap is the mean inter-arrival time; offered load is one line
	// request (mem.LineBytes) per MeanGap.
	MeanGap clock.Picos
	// Duration is the span of the arrival schedule: arrivals land in
	// [0, Duration) and their count is a pure function of the config,
	// never of the memory system's behavior.
	Duration clock.Picos
	// OnTime and OffTime shape the burst process: arrivals bunch inside
	// each OnTime window, every OnTime+OffTime period. Ignored by the
	// other processes.
	OnTime  clock.Picos
	OffTime clock.Picos
	// Seed drives the Poisson process's deterministic PRNG.
	Seed uint64

	// MaxInFlight caps outstanding requests, exactly as in ReplayConfig;
	// arrivals beyond the cap queue at the driver and accrue queueing
	// delay.
	MaxInFlight int
	// Cacheable routes DRAM-region requests through the LLC.
	Cacheable bool
	// SrcID tags driven requests for per-agent channel statistics.
	SrcID int
}

// DefaultDriverConfig models a moderate Poisson stream: one line per
// 8 ns offered (8 GB/s) over 64 us, with the Replayer's default agent
// aggressiveness.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		Process:     ProcessPoisson,
		MeanGap:     8 * clock.Nanosecond,
		Duration:    64 * clock.Microsecond,
		OnTime:      4 * clock.Microsecond,
		OffTime:     4 * clock.Microsecond,
		Seed:        1,
		MaxInFlight: 64,
		Cacheable:   true,
		SrcID:       9,
	}
}

// Validate reports configuration errors.
func (c DriverConfig) Validate() error {
	switch c.Process {
	case ProcessFixed, ProcessPoisson:
	case ProcessBurst:
		if c.OnTime <= 0 {
			return fmt.Errorf("trace: non-positive burst on-time %v", c.OnTime)
		}
		if c.OffTime < 0 {
			return fmt.Errorf("trace: negative burst off-time %v", c.OffTime)
		}
	default:
		return fmt.Errorf("trace: unknown arrival process %q", c.Process)
	}
	if c.MeanGap <= 0 {
		return fmt.Errorf("trace: non-positive mean gap %v", c.MeanGap)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("trace: non-positive duration %v", c.Duration)
	}
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("trace: non-positive MaxInFlight %d", c.MaxInFlight)
	}
	return nil
}

// OfferedLoad is the configured offered load in bytes per second: one
// line request per MeanGap.
func (c DriverConfig) OfferedLoad() float64 {
	return mem.LineBytes / c.MeanGap.Seconds()
}

// ArrivalSchedule materializes the arrival times of the configured
// process, relative to the driver's start. The schedule is a pure
// function of the config — this is the open-loop invariant: the memory
// system cannot throttle, delay, or drop an arrival, only make it wait.
func ArrivalSchedule(cfg DriverConfig) ([]clock.Picos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arr := make([]clock.Picos, 0, int(cfg.Duration/cfg.MeanGap)+1)
	switch cfg.Process {
	case ProcessFixed:
		for t := clock.Picos(0); t < cfg.Duration; t += cfg.MeanGap {
			arr = append(arr, t)
		}
	case ProcessPoisson:
		rng := splitmix64(cfg.Seed)
		for t := clock.Picos(0); t < cfg.Duration; t += expGap(rng, cfg.MeanGap) {
			arr = append(arr, t)
		}
	case ProcessBurst:
		// Dense fixed-gap arrivals inside each OnTime window, silence
		// for OffTime, with the on-gap shrunk so the long-run mean
		// inter-arrival time stays MeanGap. 128-bit intermediate keeps
		// the product exact for any picosecond operands.
		period := cfg.OnTime + cfg.OffTime
		hi, lo := bits.Mul64(uint64(cfg.MeanGap), uint64(cfg.OnTime))
		q, _ := bits.Div64(hi, lo, uint64(period))
		onGap := clock.Picos(q)
		if onGap < 1 {
			onGap = 1
		}
		for start := clock.Picos(0); start < cfg.Duration; start += period {
			end := start + cfg.OnTime
			for t := start; t < end && t < cfg.Duration; t += onGap {
				arr = append(arr, t)
			}
		}
	}
	return arr, nil
}

// expGap draws an exponential inter-arrival gap with the given mean,
// floored at one picosecond so time always advances.
func expGap(rng *rngState, mean clock.Picos) clock.Picos {
	g := clock.Picos(math.Round(-math.Log(1-rng.float64()) * float64(mean)))
	if g < 1 {
		g = 1
	}
	return g
}

// LoadResult aggregates one open-loop run. Every counter is a
// deterministic function of (trace, machine configuration, driver
// configuration) and the whole struct compares with ==.
type LoadResult struct {
	Arrivals  uint64 // scheduled arrivals (fixed by config, never throttled)
	Issued    uint64 // requests handed to the port
	Completed uint64 // requests completed

	BytesRead    uint64
	BytesWritten uint64

	Start clock.Picos // engine time the run began
	End   clock.Picos // engine time the last completion arrived

	// Per-request latency decomposes exactly: Queue (arrival to issue,
	// time spent waiting at the driver behind the in-flight cap or a
	// full controller queue) + Service (issue to completion, time inside
	// the memory system) = Total (arrival to completion, what the user
	// sees). Sums report means; histograms report tails.
	QueueSum   clock.Picos
	ServiceSum clock.Picos
	TotalSum   clock.Picos
	Queue      LatencyHist
	Service    LatencyHist
	Total      LatencyHist

	// Retries counts TryEnqueue rejections (backpressure events).
	Retries uint64

	// MaxQueued is the deepest arrival backlog observed at an issue
	// opportunity: arrivals due but not yet issued. Under saturation it
	// grows without bound — the open-loop signature.
	MaxQueued uint64
}

// Duration is the wall-clock span of the run.
func (r LoadResult) Duration() clock.Picos { return r.End - r.Start }

// Bytes is the total traffic moved.
func (r LoadResult) Bytes() uint64 { return r.BytesRead + r.BytesWritten }

// Throughput is achieved bytes per second over the run duration.
func (r LoadResult) Throughput() float64 {
	if r.Duration() <= 0 {
		return 0
	}
	return float64(r.Bytes()) / r.Duration().Seconds()
}

// AvgQueue is the mean arrival-to-issue delay.
func (r LoadResult) AvgQueue() clock.Picos {
	if r.Issued == 0 {
		return 0
	}
	return r.QueueSum / clock.Picos(r.Issued)
}

// AvgService is the mean issue-to-completion latency.
func (r LoadResult) AvgService() clock.Picos {
	if r.Completed == 0 {
		return 0
	}
	return r.ServiceSum / clock.Picos(r.Completed)
}

// AvgTotal is the mean arrival-to-completion latency.
func (r LoadResult) AvgTotal() clock.Picos {
	if r.Completed == 0 {
		return 0
	}
	return r.TotalSum / clock.Picos(r.Completed)
}

// dslot is one in-flight open-loop request. Like the Replayer's slots,
// dslots are preallocated and recycled with their completion closures
// bound once, so steady-state driving performs no per-request
// allocation.
type dslot struct {
	req     mem.Req
	arrival clock.Picos
	issued  clock.Picos
}

// Driver injects an open-loop arrival process through a mem.Port on the
// simulation engine. It reuses the Replayer's slot-pool and WaitSpace
// backpressure machinery, but where the Replayer replays a recorded
// timeline (slipping it under backpressure), the Driver's arrivals are a
// fixed schedule: backpressure converts directly into per-request
// queueing delay, never into fewer or later arrivals. Addresses and
// kinds come from the supplied records, cycled one line per arrival.
type Driver struct {
	eng  *sim.Engine
	port mem.Port
	cfg  DriverConfig
	recs []Record

	arrivals []clock.Picos

	issueEv sim.Event
	spaceFn func()
	start   clock.Picos

	ai       int // next arrival to issue
	seen     int // arrivals observed due, for MaxQueued (monotone)
	inFlight int
	waiting  bool // a WaitSpace callback is registered
	started  bool
	finished bool

	free []*dslot

	res    LoadResult
	onDone func(LoadResult)
}

// NewDriver validates the configuration, materializes the arrival
// schedule, and builds a driver bound to the engine and port. The record
// slice supplies addresses and kinds (cycled when arrivals outnumber
// records) and is not copied; the caller must not mutate it during the
// run.
func NewDriver(eng *sim.Engine, port mem.Port, recs []Record, cfg DriverConfig) (*Driver, error) {
	arrivals, err := ArrivalSchedule(cfg)
	if err != nil {
		return nil, err
	}
	if err := Validate(recs); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty record stream")
	}
	d := &Driver{eng: eng, port: port, cfg: cfg, recs: recs, arrivals: arrivals}
	d.issueEv.Init(sim.HandlerFunc(d.issue))
	d.spaceFn = d.onSpace
	d.free = make([]*dslot, cfg.MaxInFlight)
	for i := range d.free {
		s := &dslot{}
		s.req.SrcID = cfg.SrcID
		s.req.OnDone = func(now clock.Picos) { d.complete(s, now) }
		d.free[i] = s
	}
	return d, nil
}

// Start begins the run; onDone runs (inside the engine) when every
// scheduled arrival has issued and completed. Start does not run the
// engine.
//
// Like the Replayer, a Driver runs exactly once — a second Start panics;
// build a fresh Driver per run.
func (d *Driver) Start(onDone func(LoadResult)) {
	if d.started {
		panic("trace: Driver.Start called twice; a Driver runs once — build a fresh one per run")
	}
	d.started = true
	d.onDone = onDone
	d.start = d.eng.Now()
	d.res.Start = d.start
	d.res.Arrivals = uint64(len(d.arrivals))
	if len(d.arrivals) == 0 {
		d.finished = true
		d.res.End = d.start
		if onDone != nil {
			onDone(d.res)
		}
		return
	}
	d.eng.Schedule(&d.issueEv, d.start+d.arrivals[0])
}

// Snapshot reports the statistics accumulated so far without waiting for
// completion — the view of a run whose tail the port never accepts.
func (d *Driver) Snapshot() LoadResult { return d.res }

// noteQueued samples the arrival backlog: arrivals due at now that have
// not yet issued. The seen cursor is monotone, so the scan is O(arrivals)
// over the whole run.
func (d *Driver) noteQueued(now clock.Picos) {
	for d.seen < len(d.arrivals) && d.start+d.arrivals[d.seen] <= now {
		d.seen++
	}
	if q := uint64(d.seen - d.ai); q > d.res.MaxQueued {
		d.res.MaxQueued = q
	}
}

// issue drains due arrivals: it fires until it runs ahead of the
// schedule (reschedule), out of in-flight slots (a completion re-kicks),
// or into a full controller queue (WaitSpace re-kicks). Arrivals blocked
// here keep their scheduled arrival times — the wait shows up as
// queueing delay, not as schedule slip.
func (d *Driver) issue(now clock.Picos) {
	d.noteQueued(now)
	for d.ai < len(d.arrivals) {
		due := d.start + d.arrivals[d.ai]
		if now < due {
			d.eng.Schedule(&d.issueEv, due)
			return
		}
		if len(d.free) == 0 {
			return
		}
		s := d.free[len(d.free)-1]
		rec := &d.recs[d.ai%len(d.recs)]
		s.req.Addr = rec.Addr
		if rec.Kind == KindWrite {
			s.req.Kind = mem.Write
		} else {
			s.req.Kind = mem.Read
		}
		s.req.Cacheable = d.cfg.Cacheable && mem.SpaceOf(rec.Addr) == mem.SpaceDRAM
		s.arrival = due
		s.issued = now
		if !d.port.TryEnqueue(&s.req) {
			d.res.Retries++
			if !d.waiting {
				d.waiting = true
				d.port.WaitSpace(d.spaceFn)
			}
			return
		}
		d.free = d.free[:len(d.free)-1]
		d.inFlight++
		d.res.Issued++
		if s.req.Kind == mem.Write {
			d.res.BytesWritten += mem.LineBytes
		} else {
			d.res.BytesRead += mem.LineBytes
		}
		qd := now - due
		d.res.QueueSum += qd
		d.res.Queue.Observe(qd)
		d.ai++
	}
	d.maybeFinish(now)
}

// onSpace is the WaitSpace callback: queue space freed, resume issue.
func (d *Driver) onSpace() {
	d.waiting = false
	d.issue(d.eng.Now())
}

// complete retires one request and resumes issue if it was blocked on
// the in-flight cap.
func (d *Driver) complete(s *dslot, now clock.Picos) {
	d.inFlight--
	d.res.Completed++
	sv := now - s.issued
	tt := now - s.arrival
	d.res.ServiceSum += sv
	d.res.TotalSum += tt
	d.res.Service.Observe(sv)
	d.res.Total.Observe(tt)
	d.free = append(d.free, s)
	if d.ai < len(d.arrivals) {
		if !d.issueEv.Scheduled() && !d.waiting {
			d.issue(now)
		}
		return
	}
	d.maybeFinish(now)
}

// maybeFinish reports the result once every arrival issued and completed.
func (d *Driver) maybeFinish(now clock.Picos) {
	if d.finished || d.ai < len(d.arrivals) || d.inFlight > 0 {
		return
	}
	d.finished = true
	d.res.End = now
	if d.onDone != nil {
		d.onDone(d.res)
	}
}
