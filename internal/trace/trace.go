// Package trace implements trace-driven workloads: a compact record
// format for memory traffic observed at the mem.Port boundary, a
// versioned binary codec plus a human-readable text form, synthetic
// trace generators modelling common application access patterns, a
// Recorder that captures live traffic, and a Replayer that injects a
// recorded stream back into a memory system with the original
// inter-arrival timing and full backpressure handling.
//
// The paper's evaluation is driven by real-application memory traffic;
// this package is how the repository gets from synthetic harness
// transfers to arbitrary recorded workloads. Everything here is
// deterministic: generators are seeded, the replayer runs on the
// single-threaded simulation engine, and replaying the same trace on
// the same configuration produces bit-identical statistics on every
// run and at every sweep worker count.
package trace

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/mem"
)

// Kind distinguishes read records from write records.
type Kind uint8

const (
	// KindRead is a load.
	KindRead Kind = iota
	// KindWrite is a store.
	KindWrite
)

func (k Kind) String() string {
	if k == KindWrite {
		return "W"
	}
	return "R"
}

// Record is one traced request: at TSC picoseconds from the start of
// the trace, an access of Bytes bytes (a multiple of the line size)
// beginning at line-aligned address Addr. Multi-line records replay as
// consecutive line requests issued back to back.
type Record struct {
	// TSC is the issue time relative to the first record, in
	// picoseconds.
	TSC clock.Picos
	// Kind is KindRead or KindWrite.
	Kind Kind
	// Addr is the line-aligned physical address of the first line.
	Addr uint64
	// Bytes is the access footprint, a positive multiple of
	// mem.LineBytes.
	Bytes uint32
}

// Lines reports how many line requests the record expands to.
func (r Record) Lines() uint32 { return r.Bytes / mem.LineBytes }

func (r Record) String() string {
	return fmt.Sprintf("%12d %s 0x%010x %4d", r.TSC, r.Kind, r.Addr, r.Bytes)
}

// Validate checks a record stream for the invariants the codec and the
// replayer rely on: timestamps start at or after zero and never go
// backwards, addresses are line-aligned, and footprints are positive
// line multiples.
func Validate(recs []Record) error {
	var prev clock.Picos
	for i, r := range recs {
		if r.TSC < prev {
			return fmt.Errorf("trace: record %d: tsc %d before predecessor %d", i, r.TSC, prev)
		}
		if r.Kind > KindWrite {
			return fmt.Errorf("trace: record %d: unknown kind %d", i, r.Kind)
		}
		if r.Addr%mem.LineBytes != 0 {
			return fmt.Errorf("trace: record %d: address 0x%x not line-aligned", i, r.Addr)
		}
		if r.Bytes == 0 || r.Bytes%mem.LineBytes != 0 {
			return fmt.Errorf("trace: record %d: %d bytes is not a positive line multiple", i, r.Bytes)
		}
		prev = r.TSC
	}
	return nil
}

// Duration is the time span covered by the record stream (last issue
// timestamp; completions may extend past it).
func Duration(recs []Record) clock.Picos {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].TSC
}

// Summary aggregates a record stream for inspection output.
type Summary struct {
	Records      int
	Reads        int
	Writes       int
	BytesRead    uint64
	BytesWritten uint64
	Duration     clock.Picos
	MinAddr      uint64
	MaxAddr      uint64 // highest touched address + 1
	PIMRecords   int    // records targeting the PIM region
}

// Summarize computes the aggregate view of a record stream.
func Summarize(recs []Record) Summary {
	s := Summary{Records: len(recs), Duration: Duration(recs)}
	for i, r := range recs {
		if r.Kind == KindWrite {
			s.Writes++
			s.BytesWritten += uint64(r.Bytes)
		} else {
			s.Reads++
			s.BytesRead += uint64(r.Bytes)
		}
		if mem.SpaceOf(r.Addr) == mem.SpacePIM {
			s.PIMRecords++
		}
		if i == 0 || r.Addr < s.MinAddr {
			s.MinAddr = r.Addr
		}
		if end := r.Addr + uint64(r.Bytes); end > s.MaxAddr {
			s.MaxAddr = end
		}
	}
	return s
}

// Recorder captures requests accepted at the mem.Port boundary as a
// record stream. Attach its Tap via memsys.(*System).SetTap (or
// system.(*System).RecordTrace); timestamps are rebased so the first
// accepted request defines t = 0.
type Recorder struct {
	recs    []Record
	base    clock.Picos
	started bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Tap observes one accepted request. Its signature matches the memsys
// port tap, so a Recorder plugs in directly.
func (rc *Recorder) Tap(now clock.Picos, r *mem.Req) {
	if !rc.started {
		rc.base = now
		rc.started = true
	}
	k := KindRead
	if r.Kind == mem.Write {
		k = KindWrite
	}
	rc.recs = append(rc.recs, Record{
		TSC:   now - rc.base,
		Kind:  k,
		Addr:  r.Addr,
		Bytes: mem.LineBytes,
	})
}

// Records returns the captured stream; the caller must not mutate it
// while recording continues.
func (rc *Recorder) Records() []Record { return rc.recs }

// Len reports how many requests have been captured.
func (rc *Recorder) Len() int { return len(rc.recs) }
