package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/clock"
	"repro/internal/mem"
)

// The binary format, version 1:
//
//	offset  bytes  field
//	0       4      magic "PMTR"
//	4       1      version (1)
//	5       1      flags (0, reserved)
//	6       -      uvarint record count
//	...            records
//
// Each record is delta-encoded against its predecessor:
//
//	uvarint  tsc delta (picoseconds; timestamps are non-decreasing)
//	1 byte   kind (0 read, 1 write)
//	varint   address delta in lines (zig-zag signed)
//	uvarint  footprint in lines (>= 1)
//
// Sequential streams therefore cost ~4 bytes per record regardless of
// absolute addresses or timestamps. Decoding rejects truncated input,
// an unknown magic or version, and any record violating Validate.

// Magic identifies a binary trace stream.
const Magic = "PMTR"

// Version is the current binary format version.
const Version = 1

// textHeader is the first line of the text form.
const textHeader = "pimtrace v1"

// Encode writes recs in the versioned binary format. The stream is
// validated first so a bad trace fails loudly at write time, not at
// replay time.
func Encode(w io.Writer, recs []Record) error {
	if err := Validate(recs); err != nil {
		return err
	}
	buf := make([]byte, 0, 6+binary.MaxVarintLen64+len(recs)*8)
	buf = append(buf, Magic...)
	buf = append(buf, Version, 0)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	var prevTSC clock.Picos
	var prevLine int64
	for _, r := range recs {
		buf = binary.AppendUvarint(buf, uint64(r.TSC-prevTSC))
		buf = append(buf, byte(r.Kind))
		line := int64(r.Addr / mem.LineBytes)
		buf = binary.AppendVarint(buf, line-prevLine)
		buf = binary.AppendUvarint(buf, uint64(r.Lines()))
		prevTSC = r.TSC
		prevLine = line
	}
	_, err := w.Write(buf)
	return err
}

// Decode reads a binary trace stream, rejecting truncated or corrupt
// input and unsupported versions.
func Decode(r io.Reader) ([]Record, error) {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	header := make([]byte, 6)
	if err := readFull(br, header); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(header[:4]) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a binary trace)", header[:4])
	}
	if header[4] != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", header[4], Version)
	}
	if header[5] != 0 {
		return nil, fmt.Errorf("trace: unknown flags 0x%x", header[5])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	const maxRecords = 1 << 32
	if count > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Cap the preallocation: the count is untrusted until that many
	// records actually decode, and a corrupt header must produce an
	// error, not a giant allocation.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	recs := make([]Record, 0, capHint)
	var tsc clock.Picos
	var line int64
	for i := uint64(0); i < count; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d truncated: %w", i, err)
		}
		kindB, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d truncated: %w", i, err)
		}
		if kindB > byte(KindWrite) {
			return nil, fmt.Errorf("trace: record %d: unknown kind %d", i, kindB)
		}
		dl, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d truncated: %w", i, err)
		}
		lines, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d truncated: %w", i, err)
		}
		tsc += clock.Picos(dt)
		line += dl
		if line < 0 {
			return nil, fmt.Errorf("trace: record %d: negative address", i)
		}
		if lines == 0 || lines > (1<<31)/mem.LineBytes {
			return nil, fmt.Errorf("trace: record %d: bad footprint %d lines", i, lines)
		}
		recs = append(recs, Record{
			TSC:   tsc,
			Kind:  Kind(kindB),
			Addr:  uint64(line) * mem.LineBytes,
			Bytes: uint32(lines) * mem.LineBytes,
		})
	}
	return recs, nil
}

// readFull reads exactly len(p) bytes from a byte reader.
func readFull(br io.ByteReader, p []byte) error {
	for i := range p {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		p[i] = b
	}
	return nil
}

// EncodeText writes recs in the human-readable text form:
//
//	pimtrace v1
//	# tsc_ps kind addr bytes
//	0 R 0x0 64
//	1000 W 0x40 128
//
// Lines beginning with '#' are comments.
func EncodeText(w io.Writer, recs []Record) error {
	if err := Validate(recs); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, textHeader)
	fmt.Fprintln(bw, "# tsc_ps kind addr bytes")
	for _, r := range recs {
		fmt.Fprintf(bw, "%d %s 0x%x %d\n", r.TSC, r.Kind, r.Addr, r.Bytes)
	}
	return bw.Flush()
}

// DecodeText reads the text form.
func DecodeText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty text trace")
	}
	if got := strings.TrimSpace(sc.Text()); got != textHeader {
		return nil, fmt.Errorf("trace: bad text header %q (want %q)", got, textHeader)
	}
	var recs []Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(f))
		}
		tsc, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad tsc %q", lineNo, f[0])
		}
		var kind Kind
		switch f[1] {
		case "R", "r":
			kind = KindRead
		case "W", "w":
			kind = KindWrite
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, f[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(f[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, f[2])
		}
		bytes, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad byte count %q", lineNo, f[3])
		}
		recs = append(recs, Record{TSC: clock.Picos(tsc), Kind: kind, Addr: addr, Bytes: uint32(bytes)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := Validate(recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteFile writes recs to path, in the text form when text is true and
// the binary form otherwise.
func WriteFile(path string, recs []Record, text bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if text {
		err = EncodeText(f, recs)
	} else {
		err = Encode(f, recs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile reads a trace from path, sniffing the binary magic to pick
// the codec.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(4)
	if err == nil && string(head) == Magic {
		return Decode(br)
	}
	return DecodeText(br)
}
