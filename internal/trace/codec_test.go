package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
)

// randomTrace builds a valid random record stream.
func randomTrace(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	var tsc clock.Picos
	for i := range recs {
		tsc += clock.Picos(rng.Intn(100000))
		kind := KindRead
		if rng.Intn(2) == 1 {
			kind = KindWrite
		}
		addr := uint64(rng.Intn(1<<20)) * mem.LineBytes
		if rng.Intn(4) == 0 {
			addr += mem.PIMBase // exercise large addresses
		}
		recs[i] = Record{
			TSC:   tsc,
			Kind:  kind,
			Addr:  addr,
			Bytes: uint32(1+rng.Intn(8)) * mem.LineBytes,
		}
	}
	return recs
}

func equalRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: encode then decode is the identity, for both codecs, over
// many random traces including the empty one.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		recs := randomTrace(rng, rng.Intn(200))
		var bin bytes.Buffer
		if err := Encode(&bin, recs); err != nil {
			t.Fatalf("trial %d: Encode: %v", trial, err)
		}
		back, err := Decode(&bin)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		if !equalRecords(recs, back) {
			t.Fatalf("trial %d: binary round trip lost records", trial)
		}
		var txt bytes.Buffer
		if err := EncodeText(&txt, recs); err != nil {
			t.Fatalf("trial %d: EncodeText: %v", trial, err)
		}
		back, err = DecodeText(&txt)
		if err != nil {
			t.Fatalf("trial %d: DecodeText: %v", trial, err)
		}
		if !equalRecords(recs, back) {
			t.Fatalf("trial %d: text round trip lost records", trial)
		}
	}
}

// Property: every strict prefix of a valid binary encoding is rejected.
func TestTruncatedBinaryRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randomTrace(rng, 20)
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d/%d decoded without error", cut, len(full))
		}
	}
}

func TestCorruptBinaryRejected(t *testing.T) {
	recs := []Record{{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64}}
	encode := func() []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, recs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Run("magic", func(t *testing.T) {
		b := encode()
		b[0] = 'X'
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Error("bad magic accepted")
		}
	})
	t.Run("version", func(t *testing.T) {
		b := encode()
		b[4] = Version + 1
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Error("future version accepted")
		} else if !strings.Contains(err.Error(), "version") {
			t.Errorf("version mismatch error unclear: %v", err)
		}
	})
	t.Run("flags", func(t *testing.T) {
		b := encode()
		b[5] = 0xff
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Error("unknown flags accepted")
		}
	})
	t.Run("kind", func(t *testing.T) {
		// Header(6) + count(1) + dTSC(1), then the kind byte.
		b := encode()
		b[8] = 9
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Error("unknown kind accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(bytes.NewReader(nil)); err == nil {
			t.Error("empty input accepted")
		}
	})
	t.Run("huge-count", func(t *testing.T) {
		// A tiny file claiming 2^30 records must fail with a decode
		// error, not attempt a gigantic upfront allocation.
		b := []byte(Magic)
		b = append(b, Version, 0)
		b = appendUvarint(b, 1<<30)
		if _, err := Decode(bytes.NewReader(b)); err == nil {
			t.Error("huge claimed count accepted")
		}
	})
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func TestBadTextRejected(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header":       "not-a-trace\n0 R 0x0 64\n",
		"fields":       textHeader + "\n0 R 0x0\n",
		"kind":         textHeader + "\n0 Q 0x0 64\n",
		"addr":         textHeader + "\n0 R zzz 64\n",
		"bytes":        textHeader + "\n0 R 0x0 zzz\n",
		"misaligned":   textHeader + "\n0 R 0x7 64\n",
		"zero-bytes":   textHeader + "\n0 R 0x0 0\n",
		"partial-line": textHeader + "\n0 R 0x0 65\n",
		"time-warp":    textHeader + "\n100 R 0x0 64\n50 R 0x40 64\n",
	}
	for name, in := range cases {
		if _, err := DecodeText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: bad text accepted", name)
		}
	}
}

// Encode must refuse a stream Validate rejects, so invalid traces can
// never reach disk.
func TestEncodeValidates(t *testing.T) {
	bad := [][]Record{
		{{TSC: 0, Kind: KindRead, Addr: 3, Bytes: 64}},               // misaligned
		{{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 32}},               // partial line
		{{TSC: 0, Kind: Kind(7), Addr: 0, Bytes: 64}},                // bad kind
		{{TSC: 5, Addr: 0, Bytes: 64}, {TSC: 1, Addr: 0, Bytes: 64}}, // time warp
	}
	for i, recs := range bad {
		if err := Encode(&bytes.Buffer{}, recs); err == nil {
			t.Errorf("case %d: Encode accepted an invalid stream", i)
		}
	}
}

// The binary form must stay compact: a sequential stream costs a few
// bytes per record, not the 21-byte naive fixed layout.
func TestBinaryCompactness(t *testing.T) {
	recs := MustGenerate(PatternStream, GenConfig{
		Records: 1024, FootprintLines: 1024, StrideLines: 1,
		Gap: clock.Nanosecond, WritePercent: 0, ZipfTheta: 0.5, Seed: 1,
	})
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if perRec := float64(buf.Len()) / float64(len(recs)); perRec > 6 {
		t.Errorf("sequential stream costs %.1f bytes/record, want <= 6", perRec)
	}
}

func TestFileRoundTripAndSniffing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := randomTrace(rng, 64)
	for _, text := range []bool{false, true} {
		path := t.TempDir() + "/t.pmt"
		if err := WriteFile(path, recs, text); err != nil {
			t.Fatalf("text=%v: WriteFile: %v", text, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("text=%v: ReadFile: %v", text, err)
		}
		if !equalRecords(recs, back) {
			t.Errorf("text=%v: file round trip lost records", text)
		}
	}
	if _, err := ReadFile(t.TempDir() + "/missing.pmt"); err == nil {
		t.Error("missing file read without error")
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{TSC: 0, Kind: KindRead, Addr: 128, Bytes: 64},
		{TSC: 10, Kind: KindWrite, Addr: 0, Bytes: 128},
		{TSC: 20, Kind: KindRead, Addr: mem.PIMBase, Bytes: 64},
	}
	s := Summarize(recs)
	if s.Records != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.BytesRead != 128 || s.BytesWritten != 128 {
		t.Errorf("bytes wrong: %+v", s)
	}
	if s.Duration != 20 || s.PIMRecords != 1 {
		t.Errorf("duration/PIM wrong: %+v", s)
	}
	if s.MinAddr != 0 || s.MaxAddr != mem.PIMBase+64 {
		t.Errorf("address span wrong: %+v", s)
	}
}
