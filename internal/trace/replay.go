package trace

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ReplayConfig parameterizes trace injection.
type ReplayConfig struct {
	// MaxInFlight caps outstanding requests, modelling the MSHR/queue
	// capacity of the replayed agent. Issue stalls when the cap is
	// reached and resumes on the next completion.
	MaxInFlight int
	// Cacheable routes DRAM-region records through the LLC, as CPU
	// traffic would be; PIM-region records are always non-cacheable,
	// matching the machine's routing rules.
	Cacheable bool
	// SrcID tags replayed requests for per-agent channel statistics.
	SrcID int
}

// DefaultReplayConfig models a reasonably aggressive agent: enough
// memory-level parallelism to saturate a channel, cacheable DRAM
// traffic.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{MaxInFlight: 64, Cacheable: true, SrcID: 7}
}

// Validate reports configuration errors.
func (c ReplayConfig) Validate() error {
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("trace: non-positive MaxInFlight %d", c.MaxInFlight)
	}
	return nil
}

// Histogram bucket layout: log-linear sub-buckets. Values below
// histSubBuckets occupy one exact bucket each; every higher power-of-two
// octave [2^e, 2^(e+1)) splits into histSubBuckets equal-width
// sub-buckets, so quantile resolution is 1/histSubBuckets (12.5%) of the
// value at every scale. The previous layout had one bucket per octave,
// whose 2x edges cannot resolve the knee of a latency-vs-load curve.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
)

// LatencyBuckets is the fixed bucket count of LatencyHist: histSubBuckets
// exact low buckets plus histSubBuckets sub-buckets for each octave up to
// 2^63 ps (~107 days, past every latency a simulated memory system can
// produce — the top bucket's inclusive edge is the maximum clock.Picos).
const LatencyBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets

// LatencyHist is a deterministic fixed-bucket latency histogram over the
// log-linear layout above. The whole histogram is a value type — merging
// into Result needs no allocation and results compare with ==.
type LatencyHist struct {
	Counts [LatencyBuckets]uint64
	N      uint64
}

// bucketOf maps a picosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	e := uint(bits.Len64(v)) - 1
	i := histSubBuckets + (int(e)-histSubBits)*histSubBuckets + int((v-uint64(1)<<e)>>(e-histSubBits))
	if i >= LatencyBuckets {
		return LatencyBuckets - 1
	}
	return i
}

// BucketMax reports the largest latency that maps to bucket i — the
// inclusive upper edge Quantile resolves to.
func BucketMax(i int) clock.Picos {
	if i < histSubBuckets {
		return clock.Picos(i)
	}
	e := uint(histSubBits + (i-histSubBuckets)/histSubBuckets)
	m := uint64((i-histSubBuckets)%histSubBuckets) + 1
	return clock.Picos(uint64(1)<<e + m<<(e-histSubBits) - 1)
}

// Observe records one latency sample. Negative samples cannot occur in a
// monotonic engine and are clamped to bucket zero defensively.
func (h *LatencyHist) Observe(lat clock.Picos) {
	if lat < 0 {
		lat = 0
	}
	h.Counts[bucketOf(uint64(lat))]++
	h.N++
}

// quantileDen is the fixed denominator quantiles are parsed against:
// every quantile used in practice (0.5, 0.95, 0.99, 0.999) is an exact
// multiple of 1e-6, so the rank computation below is pure integer
// arithmetic — float rounding can never push ceil(q*N) across a
// cumulative-count edge, which the previous float-product rank did at
// exact bucket boundaries (e.g. q=0.55, N=20 ranked 12 instead of 11).
const quantileDen = 1_000_000

// Quantile reports a deterministic upper bound for the q-quantile
// (0 < q <= 1): the inclusive upper edge of the bucket holding the
// ceil(q*N)-th smallest sample. Zero when the histogram is empty.
func (h *LatencyHist) Quantile(q float64) clock.Picos {
	if h.N == 0 {
		return 0
	}
	var num uint64
	if q > 0 {
		num = uint64(math.Round(q * quantileDen))
	}
	if num > quantileDen {
		num = quantileDen
	}
	// rank = ceil(num*N/quantileDen) in full 128-bit precision; num <=
	// 1e6 keeps the 128-bit product's high word below the divisor, so
	// Div64 cannot overflow.
	hi, lo := bits.Mul64(num, h.N)
	rank, rem := bits.Div64(hi, lo, quantileDen)
	if rem > 0 {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		if seen += c; seen >= rank {
			return BucketMax(i)
		}
	}
	return BucketMax(LatencyBuckets - 1)
}

// P50 is the median's bucket upper bound.
func (h *LatencyHist) P50() clock.Picos { return h.Quantile(0.50) }

// P95 is the 95th percentile's bucket upper bound.
func (h *LatencyHist) P95() clock.Picos { return h.Quantile(0.95) }

// P99 is the 99th percentile's bucket upper bound.
func (h *LatencyHist) P99() clock.Picos { return h.Quantile(0.99) }

// P999 is the 99.9th percentile's bucket upper bound.
func (h *LatencyHist) P999() clock.Picos { return h.Quantile(0.999) }

// Result aggregates one replay run. All counters are deterministic
// functions of (trace, machine configuration, replay configuration).
type Result struct {
	Issued    uint64 // line requests issued
	Completed uint64 // line requests completed

	BytesRead    uint64
	BytesWritten uint64

	Start clock.Picos // engine time the replay began
	End   clock.Picos // engine time the last completion arrived

	// LatencySum accumulates issue-to-completion time over all
	// requests; AvgLatency reports the mean.
	LatencySum clock.Picos

	// Latency buckets every per-request issue-to-completion time, so
	// replays report tail percentiles (P50/P95/P99), not just the mean.
	Latency LatencyHist

	// Retries counts TryEnqueue rejections (backpressure events).
	Retries uint64

	// Slip is how far issue fell behind the trace's own timeline at
	// the end of the run: 0 means the memory system kept up with the
	// recorded inter-arrival times.
	Slip clock.Picos
}

// Duration is the wall-clock span of the replay.
func (r Result) Duration() clock.Picos { return r.End - r.Start }

// Bytes is the total traffic moved.
func (r Result) Bytes() uint64 { return r.BytesRead + r.BytesWritten }

// Throughput is bytes per second over the replay duration.
func (r Result) Throughput() float64 {
	if r.Duration() <= 0 {
		return 0
	}
	return float64(r.Bytes()) / r.Duration().Seconds()
}

// AvgLatency is the mean issue-to-completion latency.
func (r Result) AvgLatency() clock.Picos {
	if r.Completed == 0 {
		return 0
	}
	return r.LatencySum / clock.Picos(r.Completed)
}

// slot is one in-flight request record. Slots are preallocated and
// recycled, and each binds its completion closure once, so steady-state
// replay performs no per-request allocation.
type slot struct {
	req    mem.Req
	issued clock.Picos
}

// Replayer injects a record stream through a mem.Port on the simulation
// engine. Records issue at their recorded inter-arrival times; when the
// memory system pushes back (full controller queue, in-flight cap) the
// issue point slips later but record order is preserved, exactly like a
// core whose load queue has filled.
type Replayer struct {
	eng  *sim.Engine
	port mem.Port
	cfg  ReplayConfig
	recs []Record

	issueEv sim.Event
	spaceFn func()
	start   clock.Picos

	ri       int    // next record index
	li       uint32 // next line within the current record
	inFlight int
	waiting  bool // a WaitSpace callback is registered
	started  bool
	finished bool

	free []*slot

	res    Result
	onDone func(Result)
}

// NewReplayer validates the trace and builds a replayer bound to the
// engine and port. The record slice is not copied; the caller must not
// mutate it during replay.
func NewReplayer(eng *sim.Engine, port mem.Port, recs []Record, cfg ReplayConfig) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := Validate(recs); err != nil {
		return nil, err
	}
	rp := &Replayer{eng: eng, port: port, cfg: cfg, recs: recs}
	rp.issueEv.Init(sim.HandlerFunc(rp.issue))
	rp.spaceFn = rp.onSpace
	rp.free = make([]*slot, cfg.MaxInFlight)
	for i := range rp.free {
		s := &slot{}
		s.req.SrcID = cfg.SrcID
		s.req.OnDone = func(now clock.Picos) { rp.complete(s, now) }
		rp.free[i] = s
	}
	return rp, nil
}

// Start begins the replay; onDone runs (inside the engine) when every
// record has issued and completed. Start does not run the engine.
//
// A Replayer replays exactly once: a second Start would silently resume
// from stale cursors with accumulated counters, so it panics instead —
// build a fresh Replayer per run.
func (rp *Replayer) Start(onDone func(Result)) {
	if rp.started {
		panic("trace: Replayer.Start called twice; a Replayer replays once — build a fresh one per run")
	}
	rp.started = true
	rp.onDone = onDone
	rp.start = rp.eng.Now()
	rp.res.Start = rp.start
	rp.eng.Schedule(&rp.issueEv, rp.start)
}

// Snapshot reports the statistics accumulated so far without waiting for
// completion — the only view of a replay whose tail the port never
// accepts. If issue is still behind the trace timeline (stalled on a
// full queue or out of slots at the final records), the pending record's
// lag as of the engine clock is folded into Slip, so a wedged replay
// does not under-report how far issue fell behind.
func (rp *Replayer) Snapshot() Result {
	res := rp.res
	if rp.started && rp.ri < len(rp.recs) {
		if slip := rp.eng.Now() - (rp.start + rp.recs[rp.ri].TSC); slip > res.Slip {
			res.Slip = slip
		}
	}
	return res
}

// sampleSlip folds the pending record's lag behind the trace timeline
// into Result.Slip. It runs at every stall (slot exhaustion, enqueue
// rejection) as well as at successful enqueue, so a replay inspected
// mid-stall — or one whose tail the port never accepts — reports how far
// issue actually fell behind, not just the lag of the last accepted
// record.
func (rp *Replayer) sampleSlip(now clock.Picos, rec *Record) {
	if slip := now - (rp.start + rec.TSC); slip > rp.res.Slip {
		rp.res.Slip = slip
	}
}

// issue advances the record cursor: it fires due records until it runs
// ahead of the trace clock (reschedule), out of in-flight slots (a
// completion re-kicks), or into a full controller queue (WaitSpace
// re-kicks).
func (rp *Replayer) issue(now clock.Picos) {
	for rp.ri < len(rp.recs) {
		rec := &rp.recs[rp.ri]
		if due := rp.start + rec.TSC; now < due {
			rp.eng.Schedule(&rp.issueEv, due)
			return
		}
		if len(rp.free) == 0 {
			rp.sampleSlip(now, rec)
			return
		}
		s := rp.free[len(rp.free)-1]
		addr := rec.Addr + uint64(rp.li)*mem.LineBytes
		s.req.Addr = addr
		if rec.Kind == KindWrite {
			s.req.Kind = mem.Write
		} else {
			s.req.Kind = mem.Read
		}
		s.req.Cacheable = rp.cfg.Cacheable && mem.SpaceOf(addr) == mem.SpaceDRAM
		s.issued = now
		if !rp.port.TryEnqueue(&s.req) {
			rp.res.Retries++
			rp.sampleSlip(now, rec)
			if !rp.waiting {
				rp.waiting = true
				rp.port.WaitSpace(rp.spaceFn)
			}
			return
		}
		rp.free = rp.free[:len(rp.free)-1]
		rp.inFlight++
		rp.res.Issued++
		if s.req.Kind == mem.Write {
			rp.res.BytesWritten += mem.LineBytes
		} else {
			rp.res.BytesRead += mem.LineBytes
		}
		rp.sampleSlip(now, rec)
		if rp.li++; rp.li >= rec.Lines() {
			rp.li = 0
			rp.ri++
		}
	}
	rp.maybeFinish(now)
}

// onSpace is the WaitSpace callback: queue space freed, resume issue.
func (rp *Replayer) onSpace() {
	rp.waiting = false
	rp.issue(rp.eng.Now())
}

// complete retires one request and resumes issue if it was blocked on
// the in-flight cap.
func (rp *Replayer) complete(s *slot, now clock.Picos) {
	rp.inFlight--
	rp.res.Completed++
	rp.res.LatencySum += now - s.issued
	rp.res.Latency.Observe(now - s.issued)
	rp.free = append(rp.free, s)
	if rp.ri < len(rp.recs) {
		if !rp.issueEv.Scheduled() && !rp.waiting {
			rp.issue(now)
		}
		return
	}
	rp.maybeFinish(now)
}

// maybeFinish reports the result once everything issued and completed.
func (rp *Replayer) maybeFinish(now clock.Picos) {
	if rp.finished || rp.ri < len(rp.recs) || rp.inFlight > 0 {
		return
	}
	rp.finished = true
	rp.res.End = now
	if rp.onDone != nil {
		rp.onDone(rp.res)
	}
}
