package trace

import (
	"fmt"
	"math/bits"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ReplayConfig parameterizes trace injection.
type ReplayConfig struct {
	// MaxInFlight caps outstanding requests, modelling the MSHR/queue
	// capacity of the replayed agent. Issue stalls when the cap is
	// reached and resumes on the next completion.
	MaxInFlight int
	// Cacheable routes DRAM-region records through the LLC, as CPU
	// traffic would be; PIM-region records are always non-cacheable,
	// matching the machine's routing rules.
	Cacheable bool
	// SrcID tags replayed requests for per-agent channel statistics.
	SrcID int
}

// DefaultReplayConfig models a reasonably aggressive agent: enough
// memory-level parallelism to saturate a channel, cacheable DRAM
// traffic.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{MaxInFlight: 64, Cacheable: true, SrcID: 7}
}

// Validate reports configuration errors.
func (c ReplayConfig) Validate() error {
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("trace: non-positive MaxInFlight %d", c.MaxInFlight)
	}
	return nil
}

// LatencyBuckets is the fixed bucket count of LatencyHist: one bucket
// per power of two of picoseconds, which spans every latency a simulated
// memory system can produce (2^63 ps is ~107 days).
const LatencyBuckets = 64

// LatencyHist is a deterministic fixed-bucket latency histogram: bucket
// i counts samples whose picosecond value has bit length i, i.e. lies in
// [2^(i-1), 2^i). Power-of-two buckets keep the array small and the
// quantiles' resolution proportional (~2x) at every scale, and the whole
// histogram is a value type — merging into Result needs no allocation
// and results compare with ==.
type LatencyHist struct {
	Counts [LatencyBuckets]uint64
	N      uint64
}

// Observe records one latency sample. Negative samples cannot occur in a
// monotonic engine and are clamped to bucket zero defensively.
func (h *LatencyHist) Observe(lat clock.Picos) {
	if lat < 0 {
		lat = 0
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	h.Counts[b]++
	h.N++
}

// Quantile reports a deterministic upper bound for the q-quantile
// (0 < q <= 1): the exclusive upper edge of the bucket holding the
// ceil(q*N)-th smallest sample. Zero when the histogram is empty.
func (h *LatencyHist) Quantile(q float64) clock.Picos {
	if h.N == 0 {
		return 0
	}
	rank := uint64(q * float64(h.N))
	if float64(rank) < q*float64(h.N) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		if seen += c; seen >= rank {
			if i == 0 {
				return 0
			}
			if i == LatencyBuckets-1 {
				break // top bucket: upper edge saturates below
			}
			return clock.Picos(1) << uint(i)
		}
	}
	return clock.Never
}

// P50 is the median's bucket upper bound.
func (h *LatencyHist) P50() clock.Picos { return h.Quantile(0.50) }

// P95 is the 95th percentile's bucket upper bound.
func (h *LatencyHist) P95() clock.Picos { return h.Quantile(0.95) }

// P99 is the 99th percentile's bucket upper bound.
func (h *LatencyHist) P99() clock.Picos { return h.Quantile(0.99) }

// Result aggregates one replay run. All counters are deterministic
// functions of (trace, machine configuration, replay configuration).
type Result struct {
	Issued    uint64 // line requests issued
	Completed uint64 // line requests completed

	BytesRead    uint64
	BytesWritten uint64

	Start clock.Picos // engine time the replay began
	End   clock.Picos // engine time the last completion arrived

	// LatencySum accumulates issue-to-completion time over all
	// requests; AvgLatency reports the mean.
	LatencySum clock.Picos

	// Latency buckets every per-request issue-to-completion time, so
	// replays report tail percentiles (P50/P95/P99), not just the mean.
	Latency LatencyHist

	// Retries counts TryEnqueue rejections (backpressure events).
	Retries uint64

	// Slip is how far issue fell behind the trace's own timeline at
	// the end of the run: 0 means the memory system kept up with the
	// recorded inter-arrival times.
	Slip clock.Picos
}

// Duration is the wall-clock span of the replay.
func (r Result) Duration() clock.Picos { return r.End - r.Start }

// Bytes is the total traffic moved.
func (r Result) Bytes() uint64 { return r.BytesRead + r.BytesWritten }

// Throughput is bytes per second over the replay duration.
func (r Result) Throughput() float64 {
	if r.Duration() <= 0 {
		return 0
	}
	return float64(r.Bytes()) / r.Duration().Seconds()
}

// AvgLatency is the mean issue-to-completion latency.
func (r Result) AvgLatency() clock.Picos {
	if r.Completed == 0 {
		return 0
	}
	return r.LatencySum / clock.Picos(r.Completed)
}

// slot is one in-flight request record. Slots are preallocated and
// recycled, and each binds its completion closure once, so steady-state
// replay performs no per-request allocation.
type slot struct {
	req    mem.Req
	issued clock.Picos
}

// Replayer injects a record stream through a mem.Port on the simulation
// engine. Records issue at their recorded inter-arrival times; when the
// memory system pushes back (full controller queue, in-flight cap) the
// issue point slips later but record order is preserved, exactly like a
// core whose load queue has filled.
type Replayer struct {
	eng  *sim.Engine
	port mem.Port
	cfg  ReplayConfig
	recs []Record

	issueEv sim.Event
	spaceFn func()
	start   clock.Picos

	ri       int    // next record index
	li       uint32 // next line within the current record
	inFlight int
	waiting  bool // a WaitSpace callback is registered
	finished bool

	free []*slot

	res    Result
	onDone func(Result)
}

// NewReplayer validates the trace and builds a replayer bound to the
// engine and port. The record slice is not copied; the caller must not
// mutate it during replay.
func NewReplayer(eng *sim.Engine, port mem.Port, recs []Record, cfg ReplayConfig) (*Replayer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := Validate(recs); err != nil {
		return nil, err
	}
	rp := &Replayer{eng: eng, port: port, cfg: cfg, recs: recs}
	rp.issueEv.Init(sim.HandlerFunc(rp.issue))
	rp.spaceFn = rp.onSpace
	rp.free = make([]*slot, cfg.MaxInFlight)
	for i := range rp.free {
		s := &slot{}
		s.req.SrcID = cfg.SrcID
		s.req.OnDone = func(now clock.Picos) { rp.complete(s, now) }
		rp.free[i] = s
	}
	return rp, nil
}

// Start begins the replay; onDone runs (inside the engine) when every
// record has issued and completed. Start does not run the engine.
func (rp *Replayer) Start(onDone func(Result)) {
	rp.onDone = onDone
	rp.start = rp.eng.Now()
	rp.res.Start = rp.start
	rp.eng.Schedule(&rp.issueEv, rp.start)
}

// issue advances the record cursor: it fires due records until it runs
// ahead of the trace clock (reschedule), out of in-flight slots (a
// completion re-kicks), or into a full controller queue (WaitSpace
// re-kicks).
func (rp *Replayer) issue(now clock.Picos) {
	for rp.ri < len(rp.recs) {
		rec := &rp.recs[rp.ri]
		if due := rp.start + rec.TSC; now < due {
			rp.eng.Schedule(&rp.issueEv, due)
			return
		}
		if len(rp.free) == 0 {
			return
		}
		s := rp.free[len(rp.free)-1]
		addr := rec.Addr + uint64(rp.li)*mem.LineBytes
		s.req.Addr = addr
		if rec.Kind == KindWrite {
			s.req.Kind = mem.Write
		} else {
			s.req.Kind = mem.Read
		}
		s.req.Cacheable = rp.cfg.Cacheable && mem.SpaceOf(addr) == mem.SpaceDRAM
		s.issued = now
		if !rp.port.TryEnqueue(&s.req) {
			rp.res.Retries++
			if !rp.waiting {
				rp.waiting = true
				rp.port.WaitSpace(rp.spaceFn)
			}
			return
		}
		rp.free = rp.free[:len(rp.free)-1]
		rp.inFlight++
		rp.res.Issued++
		if s.req.Kind == mem.Write {
			rp.res.BytesWritten += mem.LineBytes
		} else {
			rp.res.BytesRead += mem.LineBytes
		}
		if slip := now - (rp.start + rec.TSC); slip > rp.res.Slip {
			rp.res.Slip = slip
		}
		if rp.li++; rp.li >= rec.Lines() {
			rp.li = 0
			rp.ri++
		}
	}
	rp.maybeFinish(now)
}

// onSpace is the WaitSpace callback: queue space freed, resume issue.
func (rp *Replayer) onSpace() {
	rp.waiting = false
	rp.issue(rp.eng.Now())
}

// complete retires one request and resumes issue if it was blocked on
// the in-flight cap.
func (rp *Replayer) complete(s *slot, now clock.Picos) {
	rp.inFlight--
	rp.res.Completed++
	rp.res.LatencySum += now - s.issued
	rp.res.Latency.Observe(now - s.issued)
	rp.free = append(rp.free, s)
	if rp.ri < len(rp.recs) {
		if !rp.issueEv.Scheduled() && !rp.waiting {
			rp.issue(now)
		}
		return
	}
	rp.maybeFinish(now)
}

// maybeFinish reports the result once everything issued and completed.
func (rp *Replayer) maybeFinish(now clock.Picos) {
	if rp.finished || rp.ri < len(rp.recs) || rp.inFlight > 0 {
		return
	}
	rp.finished = true
	rp.res.End = now
	if rp.onDone != nil {
		rp.onDone(rp.res)
	}
}
