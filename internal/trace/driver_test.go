package trace

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/sim"
)

// runDriver drives an open-loop run to completion on a fresh engine.
func runDriver(t *testing.T, recs []Record, cfg DriverConfig, lat clock.Picos, capacity int) (LoadResult, *fakePort) {
	t.Helper()
	eng := sim.New()
	port := newFakePort(eng, lat, capacity)
	d, err := NewDriver(eng, port, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res LoadResult
	done := false
	d.Start(func(r LoadResult) { res = r; done = true })
	eng.Run()
	if !done {
		t.Fatal("open-loop run never completed")
	}
	return res, port
}

// testDriverConfig is a small fixed-rate config: 8 arrivals, one per
// 2 ns.
func testDriverConfig() DriverConfig {
	cfg := DefaultDriverConfig()
	cfg.Process = ProcessFixed
	cfg.MeanGap = 2 * clock.Nanosecond
	cfg.Duration = 16 * clock.Nanosecond
	return cfg
}

func streamRecs(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	return recs
}

func TestDriverConfigValidate(t *testing.T) {
	bad := []DriverConfig{
		{}, // unknown process
		{Process: "nope", MeanGap: 1, Duration: 1, MaxInFlight: 1},
		{Process: ProcessFixed, MeanGap: 0, Duration: 1, MaxInFlight: 1},
		{Process: ProcessFixed, MeanGap: 1, Duration: 0, MaxInFlight: 1},
		{Process: ProcessFixed, MeanGap: 1, Duration: 1, MaxInFlight: 0},
		{Process: ProcessBurst, MeanGap: 1, Duration: 1, MaxInFlight: 1, OnTime: 0, OffTime: 1},
		{Process: ProcessBurst, MeanGap: 1, Duration: 1, MaxInFlight: 1, OnTime: 1, OffTime: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultDriverConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestArrivalScheduleShapes pins the analytic arrival counts: fixed
// emits exactly ceil(Duration/MeanGap) arrivals; burst with equal
// on/off windows preserves the same count by halving the on-gap; the
// Poisson count is seed-deterministic and rate-plausible.
func TestArrivalScheduleShapes(t *testing.T) {
	cfg := DefaultDriverConfig()
	cfg.MeanGap = 8 * clock.Nanosecond
	cfg.Duration = 64 * clock.Microsecond
	want := int(cfg.Duration / cfg.MeanGap) // 8000

	cfg.Process = ProcessFixed
	fixed, err := ArrivalSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != want {
		t.Errorf("fixed arrivals = %d, want %d", len(fixed), want)
	}
	for i, a := range fixed {
		if a != clock.Picos(i)*cfg.MeanGap {
			t.Fatalf("fixed arrival %d at %v, want %v", i, a, clock.Picos(i)*cfg.MeanGap)
		}
	}

	cfg.Process = ProcessBurst
	burst, err := ArrivalSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst) != want {
		t.Errorf("burst arrivals = %d, want %d (mean rate preserved)", len(burst), want)
	}
	// All burst arrivals land inside on-windows.
	period := cfg.OnTime + cfg.OffTime
	for _, a := range burst {
		if a%period >= cfg.OnTime {
			t.Fatalf("burst arrival %v inside the off-window", a)
		}
	}

	cfg.Process = ProcessPoisson
	poisson, err := ArrivalSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(poisson); n < want*8/10 || n > want*12/10 {
		t.Errorf("poisson arrivals = %d, want within 20%% of %d", n, want)
	}
	again, _ := ArrivalSchedule(cfg)
	if len(again) != len(poisson) {
		t.Errorf("same seed, different schedules: %d vs %d", len(poisson), len(again))
	}
	cfg.Seed++
	other, _ := ArrivalSchedule(cfg)
	same := len(other) == len(poisson)
	if same {
		for i := range other {
			if other[i] != poisson[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestDriverUncontended checks the bookkeeping on a run with no
// backpressure: every arrival issues at its scheduled time with zero
// queueing delay and completes one service latency later.
func TestDriverUncontended(t *testing.T) {
	const lat = 3 * clock.Nanosecond
	cfg := testDriverConfig()
	res, _ := runDriver(t, streamRecs(8), cfg, lat, 64)
	if res.Arrivals != 8 || res.Issued != 8 || res.Completed != 8 {
		t.Fatalf("arrivals/issued/completed = %d/%d/%d, want 8/8/8",
			res.Arrivals, res.Issued, res.Completed)
	}
	if res.QueueSum != 0 || res.Retries != 0 {
		t.Errorf("uncontended run queued: QueueSum=%v Retries=%d", res.QueueSum, res.Retries)
	}
	if res.AvgService() != lat || res.AvgTotal() != lat {
		t.Errorf("service/total = %v/%v, want %v", res.AvgService(), res.AvgTotal(), lat)
	}
	if want := 7*cfg.MeanGap + lat; res.End != want {
		t.Errorf("End = %v, want %v", res.End, want)
	}
	if res.BytesRead != 8*64 || res.BytesWritten != 0 {
		t.Errorf("bytes = %d/%d, want 512/0", res.BytesRead, res.BytesWritten)
	}
	if res.MaxQueued > 1 {
		t.Errorf("MaxQueued = %d, want <= 1", res.MaxQueued)
	}
}

// TestDriverOpenLoopInvariant is the open-loop property test: the
// arrival count is a pure function of the config — identical across
// port capacities and service latencies that range from idle to deep
// saturation — and every arrival eventually issues and completes.
func TestDriverOpenLoopInvariant(t *testing.T) {
	recs := streamRecs(64)
	for _, proc := range Processes() {
		cfg := DefaultDriverConfig()
		cfg.Process = proc
		cfg.MeanGap = 2 * clock.Nanosecond
		cfg.Duration = 2 * clock.Microsecond
		cfg.OnTime = 200 * clock.Nanosecond
		cfg.OffTime = 200 * clock.Nanosecond
		sched, err := ArrivalSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(len(sched))
		for _, p := range []struct {
			lat      clock.Picos
			capacity int
		}{
			{clock.Nanosecond, 1024},   // idle: service << gap
			{10 * clock.Nanosecond, 4}, // contended
			{50 * clock.Nanosecond, 1}, // deep saturation: 25x offered
		} {
			res, _ := runDriver(t, recs, cfg, p.lat, p.capacity)
			if res.Arrivals != want {
				t.Errorf("%s lat=%v cap=%d: arrivals = %d, want %d (backpressure throttled the open loop)",
					proc, p.lat, p.capacity, res.Arrivals, want)
			}
			if res.Issued != want || res.Completed != want {
				t.Errorf("%s lat=%v cap=%d: issued/completed = %d/%d, want %d",
					proc, p.lat, p.capacity, res.Issued, res.Completed, want)
			}
			if res.QueueSum+res.ServiceSum != res.TotalSum {
				t.Errorf("%s lat=%v cap=%d: queue %v + service %v != total %v",
					proc, p.lat, p.capacity, res.QueueSum, res.ServiceSum, res.TotalSum)
			}
		}
	}
}

// TestDriverQueueServiceSplit checks the per-request latency
// decomposition against an analytically solvable run: a single-entry
// port with service latency above the arrival gap serializes requests,
// so request k issues at k*lat after arriving at k*gap — queue delay
// k*(lat-gap), service lat, total their sum. The driver's histograms
// must equal histograms built from those exact per-request values.
func TestDriverQueueServiceSplit(t *testing.T) {
	const (
		n   = 8
		gap = 2 * clock.Nanosecond
		lat = 5 * clock.Nanosecond
	)
	cfg := testDriverConfig()
	res, _ := runDriver(t, streamRecs(n), cfg, lat, 1)
	var wantQ, wantS, wantT LatencyHist
	var wantQSum, wantSSum, wantTSum clock.Picos
	for k := clock.Picos(0); k < n; k++ {
		q := k * (lat - gap)
		wantQ.Observe(q)
		wantS.Observe(lat)
		wantT.Observe(q + lat)
		wantQSum += q
		wantSSum += lat
		wantTSum += q + lat
	}
	if res.Queue != wantQ {
		t.Errorf("queue histogram diverged from the per-request model")
	}
	if res.Service != wantS {
		t.Errorf("service histogram diverged from the per-request model")
	}
	if res.Total != wantT {
		t.Errorf("total histogram diverged from the per-request model")
	}
	if res.QueueSum != wantQSum || res.ServiceSum != wantSSum || res.TotalSum != wantTSum {
		t.Errorf("sums = %v/%v/%v, want %v/%v/%v",
			res.QueueSum, res.ServiceSum, res.TotalSum, wantQSum, wantSSum, wantTSum)
	}
	if res.Retries == 0 || res.MaxQueued == 0 {
		t.Errorf("saturated run reported no pressure: retries=%d maxQueued=%d",
			res.Retries, res.MaxQueued)
	}
}

// TestDriverMD1QueueingDelay checks the driver's queueing-delay
// accounting against queueing theory's closed form. Poisson arrivals
// into a single server (MaxInFlight=1, port capacity 1) with a fixed
// service time s form an M/D/1 queue, whose mean waiting time is
// Pollaczek–Khinchine's W_q = rho*s/(2*(1-rho)) at utilization
// rho = s/MeanGap. A driver whose queue delay drifted from
// arrival-to-issue time — or an arrival schedule whose gaps stopped
// being exponential — lands far outside the tolerance.
func TestDriverMD1QueueingDelay(t *testing.T) {
	const s = 4 * clock.Nanosecond
	const arrivals = 20000
	recs := streamRecs(64)
	for _, rho := range []float64{0.2, 0.5} {
		cfg := DefaultDriverConfig()
		cfg.Process = ProcessPoisson
		cfg.MeanGap = clock.Picos(float64(s) / rho)
		cfg.Duration = cfg.MeanGap * arrivals
		cfg.MaxInFlight = 1
		res, _ := runDriver(t, recs, cfg, s, 1)
		if res.Issued < arrivals*8/10 {
			t.Fatalf("rho=%.1f: only %d arrivals issued, want about %d", rho, res.Issued, arrivals)
		}
		want := rho * float64(s) / (2 * (1 - rho))
		got := float64(res.QueueSum) / float64(res.Issued)
		if diff := math.Abs(got-want) / want; diff > 0.15 {
			t.Errorf("rho=%.1f: mean queueing delay %.0f ps, M/D/1 predicts %.0f ps (%.0f%% off)",
				rho, got, want, 100*diff)
		}
	}
}

// TestDriverDeterministic: open-loop runs are pure functions of
// (records, port behaviour, config) — results compare equal with ==.
func TestDriverDeterministic(t *testing.T) {
	gcfg := testGenConfig()
	gcfg.Records = 512
	recs := MustGenerate(PatternMixed, gcfg)
	cfg := DefaultDriverConfig()
	cfg.MeanGap = 4 * clock.Nanosecond
	cfg.Duration = 4 * clock.Microsecond
	a, _ := runDriver(t, recs, cfg, 9*clock.Nanosecond, 8)
	b, _ := runDriver(t, recs, cfg, 9*clock.Nanosecond, 8)
	if a != b {
		t.Errorf("reruns differ:\n%+v\n%+v", a, b)
	}
}

// TestDriverStartTwicePanics pins the same run-once contract the
// Replayer has.
func TestDriverStartTwicePanics(t *testing.T) {
	eng := sim.New()
	port := newFakePort(eng, clock.Nanosecond, 4)
	d, err := NewDriver(eng, port, streamRecs(1), testDriverConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.Start(nil)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	d.Start(nil)
}

func TestDriverRejectsBadInput(t *testing.T) {
	eng := sim.New()
	port := newFakePort(eng, clock.Nanosecond, 4)
	if _, err := NewDriver(eng, port, nil, testDriverConfig()); err == nil {
		t.Error("empty record stream accepted")
	}
	bad := testDriverConfig()
	bad.MaxInFlight = 0
	if _, err := NewDriver(eng, port, streamRecs(1), bad); err == nil {
		t.Error("MaxInFlight=0 accepted")
	}
}
