package trace

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// fakePort is a minimal mem.Port: fixed service latency, bounded queue,
// FIFO WaitSpace wakeups. It records accepted requests for order and
// occupancy assertions.
type fakePort struct {
	eng     *sim.Engine
	lat     clock.Picos
	cap     int
	inQ     int
	maxInQ  int
	waiters []func()

	addrs []uint64
	kinds []mem.Kind
}

func newFakePort(eng *sim.Engine, lat clock.Picos, capacity int) *fakePort {
	return &fakePort{eng: eng, lat: lat, cap: capacity}
}

func (p *fakePort) TryEnqueue(r *mem.Req) bool {
	if p.inQ >= p.cap {
		return false
	}
	p.inQ++
	if p.inQ > p.maxInQ {
		p.maxInQ = p.inQ
	}
	p.addrs = append(p.addrs, r.Addr)
	p.kinds = append(p.kinds, r.Kind)
	done := r.OnDone
	p.eng.After(p.lat, func() {
		p.inQ--
		if done != nil {
			done(p.eng.Now())
		}
		if len(p.waiters) > 0 {
			w := p.waiters[0]
			p.waiters = p.waiters[:copy(p.waiters, p.waiters[1:])]
			w()
		}
	})
	return true
}

func (p *fakePort) WaitSpace(fn func()) { p.waiters = append(p.waiters, fn) }

// runReplay drives a replay to completion on a fresh engine.
func runReplay(t *testing.T, recs []Record, cfg ReplayConfig, lat clock.Picos, capacity int) (Result, *fakePort) {
	t.Helper()
	eng := sim.New()
	port := newFakePort(eng, lat, capacity)
	rp, err := NewReplayer(eng, port, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	rp.Start(func(r Result) { res = r; done = true })
	eng.Run()
	if !done {
		t.Fatal("replay never completed")
	}
	return res, port
}

func TestReplayCompletesAndTimes(t *testing.T) {
	const gap = 10 * clock.Nanosecond
	const lat = 3 * clock.Nanosecond
	recs := []Record{
		{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: gap, Kind: KindWrite, Addr: 64, Bytes: 64},
		{TSC: 2 * gap, Kind: KindRead, Addr: 4096, Bytes: 64},
	}
	res, port := runReplay(t, recs, DefaultReplayConfig(), lat, 64)
	if res.Issued != 3 || res.Completed != 3 {
		t.Errorf("issued/completed = %d/%d, want 3/3", res.Issued, res.Completed)
	}
	if res.BytesRead != 128 || res.BytesWritten != 64 {
		t.Errorf("bytes = %d/%d, want 128/64", res.BytesRead, res.BytesWritten)
	}
	// No contention: every record issues exactly at its TSC and
	// completes one service latency later.
	if res.End != 2*gap+lat {
		t.Errorf("End = %v, want %v", res.End, 2*gap+lat)
	}
	if res.AvgLatency() != lat {
		t.Errorf("AvgLatency = %v, want %v", res.AvgLatency(), lat)
	}
	if res.Retries != 0 || res.Slip != 0 {
		t.Errorf("uncontended replay reported pressure: %d retries, %v slip", res.Retries, res.Slip)
	}
	if want := []mem.Kind{mem.Read, mem.Write, mem.Read}; len(port.kinds) != 3 ||
		port.kinds[0] != want[0] || port.kinds[1] != want[1] || port.kinds[2] != want[2] {
		t.Errorf("kinds = %v, want %v", port.kinds, want)
	}
}

// A multi-line record expands to consecutive line requests.
func TestReplayExpandsMultiLineRecords(t *testing.T) {
	recs := []Record{{TSC: 0, Kind: KindRead, Addr: 1 << 12, Bytes: 4 * 64}}
	res, port := runReplay(t, recs, DefaultReplayConfig(), clock.Nanosecond, 64)
	if res.Issued != 4 {
		t.Fatalf("issued %d line requests, want 4", res.Issued)
	}
	for i, a := range port.addrs {
		if want := uint64(1<<12) + uint64(i)*64; a != want {
			t.Errorf("line %d at 0x%x, want 0x%x", i, a, want)
		}
	}
}

// With a single-entry queue every request is serialized through
// backpressure: order is preserved, retries are counted, and the run
// takes one service latency per request.
func TestReplayBackpressureSerializes(t *testing.T) {
	const n = 16
	const lat = 5 * clock.Nanosecond
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	res, port := runReplay(t, recs, DefaultReplayConfig(), lat, 1)
	if res.Completed != n {
		t.Fatalf("completed %d, want %d", res.Completed, n)
	}
	if res.End != n*lat {
		t.Errorf("End = %v, want %v (fully serialized)", res.End, clock.Picos(n)*lat)
	}
	if res.Retries != n-1 {
		t.Errorf("retries = %d, want %d", res.Retries, n-1)
	}
	if res.Slip == 0 {
		t.Error("serialized replay reported zero slip")
	}
	for i, a := range port.addrs {
		if a != uint64(i)*64 {
			t.Fatalf("order broken at %d: 0x%x", i, a)
		}
	}
}

// MaxInFlight caps the replayer's own outstanding requests even when
// the port has room.
func TestReplayInFlightCap(t *testing.T) {
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	cfg := DefaultReplayConfig()
	cfg.MaxInFlight = 2
	res, port := runReplay(t, recs, cfg, 7*clock.Nanosecond, 1024)
	if res.Completed != 64 {
		t.Fatalf("completed %d, want 64", res.Completed)
	}
	if port.maxInQ > 2 {
		t.Errorf("port saw %d outstanding, want <= MaxInFlight 2", port.maxInQ)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	res, _ := runReplay(t, nil, DefaultReplayConfig(), clock.Nanosecond, 4)
	if res.Issued != 0 || res.Completed != 0 || res.Duration() != 0 {
		t.Errorf("empty replay produced %+v", res)
	}
}

func TestReplayerRejectsBadInput(t *testing.T) {
	eng := sim.New()
	port := newFakePort(eng, clock.Nanosecond, 4)
	bad := ReplayConfig{MaxInFlight: 0}
	if _, err := NewReplayer(eng, port, nil, bad); err == nil {
		t.Error("MaxInFlight=0 accepted")
	}
	warped := []Record{
		{TSC: 10, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: 5, Kind: KindRead, Addr: 64, Bytes: 64},
	}
	if _, err := NewReplayer(eng, port, warped, DefaultReplayConfig()); err == nil {
		t.Error("time-warped trace accepted")
	}
}

// Replays are pure functions of (trace, port behaviour, config): two
// fresh engines produce identical results field for field.
func TestReplayDeterministic(t *testing.T) {
	cfg := testGenConfig()
	cfg.Records = 2048
	recs := MustGenerate(PatternMixed, cfg)
	a, _ := runReplay(t, recs, DefaultReplayConfig(), 9*clock.Nanosecond, 8)
	b, _ := runReplay(t, recs, DefaultReplayConfig(), 9*clock.Nanosecond, 8)
	if a != b {
		t.Errorf("reruns differ:\n%+v\n%+v", a, b)
	}
}

// TestLatencyHistBuckets pins the bucketing rule (power-of-two buckets by
// bit length) and the deterministic quantile bounds.
func TestLatencyHistBuckets(t *testing.T) {
	var h LatencyHist
	h.Observe(0) // bucket 0
	h.Observe(1) // [1,2) -> bucket 1
	h.Observe(5) // [4,8) -> bucket 3
	h.Observe(7)
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[3] != 2 {
		t.Fatalf("counts = %v", h.Counts[:5])
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("q25 = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("q50 = %v, want 2", got)
	}
	if got := h.Quantile(1.0); got != 8 {
		t.Errorf("q100 = %v, want 8", got)
	}
	var empty LatencyHist
	if empty.P50() != 0 || empty.P95() != 0 || empty.P99() != 0 {
		t.Error("empty histogram quantiles must be 0")
	}
}

// TestLatencyHistQuantileBounds checks the quantile is an upper bound
// that tightens to the true value's power-of-two bracket.
func TestLatencyHistQuantileBounds(t *testing.T) {
	var h LatencyHist
	for i := 1; i <= 100; i++ {
		h.Observe(clock.Picos(i) * 100) // 100..10000 ps
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		exact := clock.Picos(q*100) * 100
		if got < exact {
			t.Errorf("q%.0f = %v below the exact value %v", q*100, got, exact)
		}
		if got > 2*exact {
			t.Errorf("q%.0f = %v looser than 2x the exact value %v", q*100, got, exact)
		}
	}
}

// TestReplayLatencyHistogram checks the replayer populates the histogram
// consistently with the scalar latency counters: a contention-free run
// has every sample equal to the service latency, so every percentile
// lands in that sample's bucket.
func TestReplayLatencyHistogram(t *testing.T) {
	const gap = 10 * clock.Nanosecond
	const lat = 3 * clock.Nanosecond
	recs := []Record{
		{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: gap, Kind: KindWrite, Addr: 64, Bytes: 64},
		{TSC: 2 * gap, Kind: KindRead, Addr: 4096, Bytes: 64},
	}
	res, _ := runReplay(t, recs, DefaultReplayConfig(), lat, 64)
	if res.Latency.N != res.Completed {
		t.Fatalf("histogram saw %d samples, completed %d", res.Latency.N, res.Completed)
	}
	p50, p99 := res.Latency.P50(), res.Latency.P99()
	if p50 != p99 {
		t.Errorf("uniform latencies but p50 %v != p99 %v", p50, p99)
	}
	if p50 < lat || p50 > 2*lat {
		t.Errorf("p50 bound %v outside (%v, %v]", p50, lat, 2*lat)
	}
}
