package trace

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// fakePort is a minimal mem.Port: fixed service latency, bounded queue,
// FIFO WaitSpace wakeups. It records accepted requests for order and
// occupancy assertions.
type fakePort struct {
	eng     *sim.Engine
	lat     clock.Picos
	cap     int
	inQ     int
	maxInQ  int
	waiters []func()

	addrs []uint64
	kinds []mem.Kind
}

func newFakePort(eng *sim.Engine, lat clock.Picos, capacity int) *fakePort {
	return &fakePort{eng: eng, lat: lat, cap: capacity}
}

func (p *fakePort) TryEnqueue(r *mem.Req) bool {
	if p.inQ >= p.cap {
		return false
	}
	p.inQ++
	if p.inQ > p.maxInQ {
		p.maxInQ = p.inQ
	}
	p.addrs = append(p.addrs, r.Addr)
	p.kinds = append(p.kinds, r.Kind)
	done := r.OnDone
	p.eng.After(p.lat, func() {
		p.inQ--
		if done != nil {
			done(p.eng.Now())
		}
		if len(p.waiters) > 0 {
			w := p.waiters[0]
			p.waiters = p.waiters[:copy(p.waiters, p.waiters[1:])]
			w()
		}
	})
	return true
}

func (p *fakePort) WaitSpace(fn func()) { p.waiters = append(p.waiters, fn) }

// runReplay drives a replay to completion on a fresh engine.
func runReplay(t *testing.T, recs []Record, cfg ReplayConfig, lat clock.Picos, capacity int) (Result, *fakePort) {
	t.Helper()
	eng := sim.New()
	port := newFakePort(eng, lat, capacity)
	rp, err := NewReplayer(eng, port, recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	done := false
	rp.Start(func(r Result) { res = r; done = true })
	eng.Run()
	if !done {
		t.Fatal("replay never completed")
	}
	return res, port
}

func TestReplayCompletesAndTimes(t *testing.T) {
	const gap = 10 * clock.Nanosecond
	const lat = 3 * clock.Nanosecond
	recs := []Record{
		{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: gap, Kind: KindWrite, Addr: 64, Bytes: 64},
		{TSC: 2 * gap, Kind: KindRead, Addr: 4096, Bytes: 64},
	}
	res, port := runReplay(t, recs, DefaultReplayConfig(), lat, 64)
	if res.Issued != 3 || res.Completed != 3 {
		t.Errorf("issued/completed = %d/%d, want 3/3", res.Issued, res.Completed)
	}
	if res.BytesRead != 128 || res.BytesWritten != 64 {
		t.Errorf("bytes = %d/%d, want 128/64", res.BytesRead, res.BytesWritten)
	}
	// No contention: every record issues exactly at its TSC and
	// completes one service latency later.
	if res.End != 2*gap+lat {
		t.Errorf("End = %v, want %v", res.End, 2*gap+lat)
	}
	if res.AvgLatency() != lat {
		t.Errorf("AvgLatency = %v, want %v", res.AvgLatency(), lat)
	}
	if res.Retries != 0 || res.Slip != 0 {
		t.Errorf("uncontended replay reported pressure: %d retries, %v slip", res.Retries, res.Slip)
	}
	if want := []mem.Kind{mem.Read, mem.Write, mem.Read}; len(port.kinds) != 3 ||
		port.kinds[0] != want[0] || port.kinds[1] != want[1] || port.kinds[2] != want[2] {
		t.Errorf("kinds = %v, want %v", port.kinds, want)
	}
}

// A multi-line record expands to consecutive line requests.
func TestReplayExpandsMultiLineRecords(t *testing.T) {
	recs := []Record{{TSC: 0, Kind: KindRead, Addr: 1 << 12, Bytes: 4 * 64}}
	res, port := runReplay(t, recs, DefaultReplayConfig(), clock.Nanosecond, 64)
	if res.Issued != 4 {
		t.Fatalf("issued %d line requests, want 4", res.Issued)
	}
	for i, a := range port.addrs {
		if want := uint64(1<<12) + uint64(i)*64; a != want {
			t.Errorf("line %d at 0x%x, want 0x%x", i, a, want)
		}
	}
}

// With a single-entry queue every request is serialized through
// backpressure: order is preserved, retries are counted, and the run
// takes one service latency per request.
func TestReplayBackpressureSerializes(t *testing.T) {
	const n = 16
	const lat = 5 * clock.Nanosecond
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	res, port := runReplay(t, recs, DefaultReplayConfig(), lat, 1)
	if res.Completed != n {
		t.Fatalf("completed %d, want %d", res.Completed, n)
	}
	if res.End != n*lat {
		t.Errorf("End = %v, want %v (fully serialized)", res.End, clock.Picos(n)*lat)
	}
	if res.Retries != n-1 {
		t.Errorf("retries = %d, want %d", res.Retries, n-1)
	}
	if res.Slip == 0 {
		t.Error("serialized replay reported zero slip")
	}
	for i, a := range port.addrs {
		if a != uint64(i)*64 {
			t.Fatalf("order broken at %d: 0x%x", i, a)
		}
	}
}

// MaxInFlight caps the replayer's own outstanding requests even when
// the port has room.
func TestReplayInFlightCap(t *testing.T) {
	recs := make([]Record, 64)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	cfg := DefaultReplayConfig()
	cfg.MaxInFlight = 2
	res, port := runReplay(t, recs, cfg, 7*clock.Nanosecond, 1024)
	if res.Completed != 64 {
		t.Fatalf("completed %d, want 64", res.Completed)
	}
	if port.maxInQ > 2 {
		t.Errorf("port saw %d outstanding, want <= MaxInFlight 2", port.maxInQ)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	res, _ := runReplay(t, nil, DefaultReplayConfig(), clock.Nanosecond, 4)
	if res.Issued != 0 || res.Completed != 0 || res.Duration() != 0 {
		t.Errorf("empty replay produced %+v", res)
	}
}

func TestReplayerRejectsBadInput(t *testing.T) {
	eng := sim.New()
	port := newFakePort(eng, clock.Nanosecond, 4)
	bad := ReplayConfig{MaxInFlight: 0}
	if _, err := NewReplayer(eng, port, nil, bad); err == nil {
		t.Error("MaxInFlight=0 accepted")
	}
	warped := []Record{
		{TSC: 10, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: 5, Kind: KindRead, Addr: 64, Bytes: 64},
	}
	if _, err := NewReplayer(eng, port, warped, DefaultReplayConfig()); err == nil {
		t.Error("time-warped trace accepted")
	}
}

// Replays are pure functions of (trace, port behaviour, config): two
// fresh engines produce identical results field for field.
func TestReplayDeterministic(t *testing.T) {
	cfg := testGenConfig()
	cfg.Records = 2048
	recs := MustGenerate(PatternMixed, cfg)
	a, _ := runReplay(t, recs, DefaultReplayConfig(), 9*clock.Nanosecond, 8)
	b, _ := runReplay(t, recs, DefaultReplayConfig(), 9*clock.Nanosecond, 8)
	if a != b {
		t.Errorf("reruns differ:\n%+v\n%+v", a, b)
	}
}

// TestLatencyHistBuckets pins the log-linear bucketing rule: exact
// buckets below histSubBuckets, then histSubBuckets sub-buckets per
// power-of-two octave, with quantiles resolving to inclusive bucket
// upper edges.
func TestLatencyHistBuckets(t *testing.T) {
	var h LatencyHist
	h.Observe(0) // exact bucket 0
	h.Observe(1) // exact bucket 1
	h.Observe(5) // exact bucket 5
	h.Observe(7) // exact bucket 7
	if h.N != 4 {
		t.Fatalf("N = %d, want 4", h.N)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[7] != 1 {
		t.Fatalf("counts = %v", h.Counts[:8])
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Errorf("q25 = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("q50 = %v, want 1", got)
	}
	if got := h.Quantile(0.75); got != 5 {
		t.Errorf("q75 = %v, want 5", got)
	}
	if got := h.Quantile(1.0); got != 7 {
		t.Errorf("q100 = %v, want 7", got)
	}
	// A value in a higher octave lands in a sub-bucket an eighth of the
	// octave wide: 100 is in [96,103], not the whole [64,128) octave.
	var big LatencyHist
	big.Observe(100)
	if got := big.Quantile(1.0); got != 103 {
		t.Errorf("q100 of {100} = %v, want sub-bucket edge 103", got)
	}
	var empty LatencyHist
	if empty.P50() != 0 || empty.P95() != 0 || empty.P99() != 0 || empty.P999() != 0 {
		t.Error("empty histogram quantiles must be 0")
	}
}

// TestLatencyHistBucketRoundTrip checks bucketOf/BucketMax agree over
// every bucket: each bucket's upper edge maps back to that bucket, and
// the next value maps to the next bucket.
func TestLatencyHistBucketRoundTrip(t *testing.T) {
	for i := 0; i < LatencyBuckets; i++ {
		edge := BucketMax(i)
		if got := bucketOf(uint64(edge)); got != i {
			t.Fatalf("bucketOf(BucketMax(%d)=%v) = %d", i, edge, got)
		}
		if i+1 < LatencyBuckets {
			if got := bucketOf(uint64(edge) + 1); got != i+1 {
				t.Fatalf("bucketOf(%v+1) = %d, want %d", edge, got, i+1)
			}
		}
	}
	if got := BucketMax(LatencyBuckets - 1); got != clock.Picos(math.MaxInt64) {
		t.Errorf("top bucket edge = %v, want max Picos", got)
	}
}

// TestLatencyHistQuantileBounds checks the quantile is an upper bound
// that tightens to the sample's sub-bucket: at most an eighth of the
// value above it, not the previous layout's 2x.
func TestLatencyHistQuantileBounds(t *testing.T) {
	var h LatencyHist
	for i := 1; i <= 100; i++ {
		h.Observe(clock.Picos(i) * 100) // 100..10000 ps
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		exact := clock.Picos(q*100) * 100
		if got < exact {
			t.Errorf("q%.0f = %v below the exact value %v", q*100, got, exact)
		}
		if got > exact+exact/histSubBuckets {
			t.Errorf("q%.0f = %v looser than %d/%d of the exact value %v",
				q*100, got, histSubBuckets+1, histSubBuckets, exact)
		}
	}
}

// TestLatencyHistQuantileIntegerRank is the regression for the float
// rank bug: the old rank uint64(q*float64(N)) with a float ceil fixup
// over-counted by one whenever q*N landed exactly on an integer that
// float rounding nudged upward (0.55*20 = 11.000000000000002 ranked 12,
// 0.1*10 ranked 2). Integer arithmetic must return the exact bucket at
// every cumulative-count edge.
func TestLatencyHistQuantileIntegerRank(t *testing.T) {
	// 11 samples at 1, 9 at 5: rank(0.55) = ceil(0.55*20) = 11, the
	// last sample of bucket 1. The float rank said 12 and skipped to 5.
	var h LatencyHist
	for i := 0; i < 11; i++ {
		h.Observe(1)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.55); got != 1 {
		t.Errorf("q55 of 11x{1}+9x{5} = %v, want 1 (rank 11 is still in bucket 1)", got)
	}
	// One sample in each exact bucket value 0..9: q = k/10 must resolve
	// to value k-1 for every k — each q*N lands exactly on a
	// cumulative-count edge.
	var u LatencyHist
	for v := 0; v < 10; v++ {
		u.Observe(clock.Picos(v))
	}
	for k := 1; k <= 10; k++ {
		q := float64(k) / 10
		if got := u.Quantile(q); got != clock.Picos(k-1) {
			t.Errorf("q=%g of {0..9} = %v, want %d", q, got, k-1)
		}
	}
	// The same edges for every bucket of a larger histogram: k samples
	// below a marker bucket, the rest above; q = k/N must stay below.
	const n = 64
	for k := 1; k < n; k++ {
		var b LatencyHist
		for i := 0; i < k; i++ {
			b.Observe(2)
		}
		for i := k; i < n; i++ {
			b.Observe(6)
		}
		if got := b.Quantile(float64(k) / n); got != 2 {
			t.Errorf("q=%d/%d of %dx{2}+%dx{6} = %v, want 2", k, n, k, n-k, got)
		}
	}
}

// TestLatencyHistP999 checks the new tail quantile distinguishes a
// 1-in-1000 outlier population from the body.
func TestLatencyHistP999(t *testing.T) {
	var h LatencyHist
	for i := 0; i < 9990; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if got := h.P999(); got != 10 {
		t.Errorf("p99.9 = %v, want 10 (rank 9990 is the last body sample)", got)
	}
	if got := h.Quantile(0.9999); got < 1_000_000 {
		t.Errorf("p99.99 = %v, want an outlier bucket edge >= 1000000", got)
	}
}

// TestReplayLatencyHistogram checks the replayer populates the histogram
// consistently with the scalar latency counters: a contention-free run
// has every sample equal to the service latency, so every percentile
// lands in that sample's bucket.
func TestReplayLatencyHistogram(t *testing.T) {
	const gap = 10 * clock.Nanosecond
	const lat = 3 * clock.Nanosecond
	recs := []Record{
		{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64},
		{TSC: gap, Kind: KindWrite, Addr: 64, Bytes: 64},
		{TSC: 2 * gap, Kind: KindRead, Addr: 4096, Bytes: 64},
	}
	res, _ := runReplay(t, recs, DefaultReplayConfig(), lat, 64)
	if res.Latency.N != res.Completed {
		t.Fatalf("histogram saw %d samples, completed %d", res.Latency.N, res.Completed)
	}
	p50, p99 := res.Latency.P50(), res.Latency.P99()
	if p50 != p99 {
		t.Errorf("uniform latencies but p50 %v != p99 %v", p50, p99)
	}
	if p50 < lat || p50 > lat+lat/histSubBuckets {
		t.Errorf("p50 bound %v outside [%v, %v]", p50, lat, lat+lat/histSubBuckets)
	}
}

// TestReplayerStartTwicePanics pins the reuse contract: a Replayer
// replays once, and a second Start panics instead of silently resuming
// from stale cursors with accumulated counters.
func TestReplayerStartTwicePanics(t *testing.T) {
	eng := sim.New()
	port := newFakePort(eng, clock.Nanosecond, 4)
	recs := []Record{{TSC: 0, Kind: KindRead, Addr: 0, Bytes: 64}}
	rp, err := NewReplayer(eng, port, recs, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	rp.Start(nil)
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	rp.Start(nil)
}

// rejectTailPort accepts the first accept requests, then rejects
// forever: the replay wedges behind the trace timeline with its tail
// never issued, which is exactly the case where slip sampled only at
// successful enqueue under-reports.
type rejectTailPort struct {
	*fakePort
	accept int
}

func (p *rejectTailPort) TryEnqueue(r *mem.Req) bool {
	if p.accept == 0 {
		return false
	}
	if !p.fakePort.TryEnqueue(r) {
		return false
	}
	p.accept--
	return true
}

// TestReplaySlipSampledAtStall is the regression for slip sampling: with
// the tail of the trace rejected, the old code (slip sampled only on
// successful enqueue, all at t=0 here) reported zero slip even though
// issue fell a full service latency behind. Snapshot must report how far
// the pending record lagged when the engine drained.
func TestReplaySlipSampledAtStall(t *testing.T) {
	const lat = 5 * clock.Nanosecond
	recs := make([]Record, 4)
	for i := range recs {
		recs[i] = Record{TSC: 0, Kind: KindRead, Addr: uint64(i) * 64, Bytes: 64}
	}
	eng := sim.New()
	port := &rejectTailPort{fakePort: newFakePort(eng, lat, 64), accept: 2}
	rp, err := NewReplayer(eng, port, recs, DefaultReplayConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := false
	rp.Start(func(Result) { done = true })
	eng.Run()
	if done {
		t.Fatal("replay completed despite a rejecting port")
	}
	res := rp.Snapshot()
	if res.Issued != 2 || res.Completed != 2 {
		t.Fatalf("issued/completed = %d/%d, want 2/2", res.Issued, res.Completed)
	}
	if res.Retries == 0 {
		t.Error("rejected tail produced no retries")
	}
	// The engine drained at the last completion (t = lat); record 2 was
	// due at t = 0 and never issued, so issue slipped a full lat.
	if res.Slip != lat {
		t.Errorf("Slip = %v, want %v (pending record's lag at drain)", res.Slip, lat)
	}
}
