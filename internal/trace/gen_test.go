package trace

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/mem"
)

func testGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Records = 4096
	cfg.FootprintLines = 1024
	cfg.Gap = clock.Nanosecond
	return cfg
}

// Every generator must emit a valid stream with the requested record
// count and inter-arrival spacing, and be a pure function of its
// configuration.
func TestGeneratorsValidAndDeterministic(t *testing.T) {
	cfg := testGenConfig()
	for _, p := range Patterns() {
		a, err := Generate(p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(a) != cfg.Records {
			t.Errorf("%s: %d records, want %d", p, len(a), cfg.Records)
		}
		if err := Validate(a); err != nil {
			t.Errorf("%s: invalid stream: %v", p, err)
		}
		for i, r := range a {
			if r.TSC != clock.Picos(i)*cfg.Gap {
				t.Errorf("%s: record %d at %d, want %d", p, i, r.TSC, clock.Picos(i)*cfg.Gap)
				break
			}
		}
		b := MustGenerate(p, cfg)
		if !equalRecords(a, b) {
			t.Errorf("%s: same config produced different streams", p)
		}
	}
}

func TestStreamAndStridedAddresses(t *testing.T) {
	cfg := testGenConfig()
	cfg.Base = 1 << 20
	stream := MustGenerate(PatternStream, cfg)
	for i, r := range stream[:16] {
		if want := cfg.Base + uint64(i)*mem.LineBytes; r.Addr != want {
			t.Fatalf("stream record %d at 0x%x, want 0x%x", i, r.Addr, want)
		}
	}
	strided := MustGenerate(PatternStrided, cfg)
	for i, r := range strided[:16] {
		if want := cfg.Base + uint64(i*cfg.StrideLines)*mem.LineBytes; r.Addr != want {
			t.Fatalf("strided record %d at 0x%x, want 0x%x", i, r.Addr, want)
		}
	}
}

// The pointer chase must walk a single cycle: the first FootprintLines
// steps visit every line exactly once.
func TestChaseIsPermutationCycle(t *testing.T) {
	cfg := testGenConfig()
	cfg.Records = cfg.FootprintLines
	recs := MustGenerate(PatternChase, cfg)
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Addr] {
			t.Fatalf("line 0x%x visited twice within one footprint pass", r.Addr)
		}
		seen[r.Addr] = true
	}
	if len(seen) != cfg.FootprintLines {
		t.Errorf("chase visited %d distinct lines, want %d", len(seen), cfg.FootprintLines)
	}
}

// The mixed pattern's store share must track WritePercent.
func TestMixedWriteShare(t *testing.T) {
	cfg := testGenConfig()
	cfg.Records = 1 << 14
	cfg.WritePercent = 30
	sum := Summarize(MustGenerate(PatternMixed, cfg))
	frac := float64(sum.Writes) / float64(sum.Records)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("write share %.3f, want ~0.30", frac)
	}
}

// The zipf pattern must be skewed: the hottest 10%% of lines absorb
// well over their uniform share of accesses.
func TestZipfSkew(t *testing.T) {
	cfg := testGenConfig()
	cfg.Records = 1 << 14
	counts := make(map[uint64]int)
	for _, r := range MustGenerate(PatternZipf, cfg) {
		counts[r.Addr]++
	}
	hotCut := cfg.Base + uint64(cfg.FootprintLines/10)*mem.LineBytes
	hot := 0
	for addr, n := range counts {
		if addr < hotCut {
			hot += n
		}
	}
	if frac := float64(hot) / float64(cfg.Records); frac < 0.3 {
		t.Errorf("hottest 10%% of lines got %.2f of accesses, want skew > 0.3", frac)
	}
	uniform := MustGenerate(PatternMixed, cfg)
	uniformHot := 0
	for _, r := range uniform {
		if r.Addr < hotCut {
			uniformHot++
		}
	}
	if hot <= uniformHot {
		t.Errorf("zipf (%d hot hits) is no more skewed than uniform (%d)", hot, uniformHot)
	}
}

// Different seeds must produce different randomized streams.
func TestSeedsDiffer(t *testing.T) {
	cfg := testGenConfig()
	for _, p := range []Pattern{PatternChase, PatternMixed, PatternZipf} {
		cfg.Seed = 1
		a := MustGenerate(p, cfg)
		cfg.Seed = 2
		b := MustGenerate(p, cfg)
		if equalRecords(a, b) {
			t.Errorf("%s: seeds 1 and 2 produced identical streams", p)
		}
	}
}

func TestGenConfigValidation(t *testing.T) {
	mutations := map[string]func(*GenConfig){
		"records":   func(c *GenConfig) { c.Records = 0 },
		"base":      func(c *GenConfig) { c.Base = 7 },
		"footprint": func(c *GenConfig) { c.FootprintLines = 0 },
		"stride":    func(c *GenConfig) { c.StrideLines = -1 },
		"gap":       func(c *GenConfig) { c.Gap = -1 },
		"write-pct": func(c *GenConfig) { c.WritePercent = 101 },
		"theta":     func(c *GenConfig) { c.ZipfTheta = 1.5 },
	}
	for name, mutate := range mutations {
		cfg := DefaultGenConfig()
		mutate(&cfg)
		if _, err := Generate(PatternStream, cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	if _, err := Generate(Pattern("bogus"), DefaultGenConfig()); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := DefaultGenConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFootprintBytes(t *testing.T) {
	cfg := testGenConfig()
	if got := cfg.FootprintBytes(PatternStream); got != uint64(cfg.Records)*mem.LineBytes {
		t.Errorf("stream footprint = %d", got)
	}
	if got := cfg.FootprintBytes(PatternStrided); got != uint64(cfg.Records*cfg.StrideLines)*mem.LineBytes {
		t.Errorf("strided footprint = %d", got)
	}
	if got := cfg.FootprintBytes(PatternZipf); got != uint64(cfg.FootprintLines)*mem.LineBytes {
		t.Errorf("zipf footprint = %d", got)
	}
}
