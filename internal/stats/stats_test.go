package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestSeriesBucketing(t *testing.T) {
	s := NewSeries(100)
	s.Add(0, 1)
	s.Add(99, 2)
	s.Add(100, 4)
	s.Add(350, 8)
	if got := s.Bucket(0); got != 3 {
		t.Errorf("bucket 0 = %v, want 3", got)
	}
	if got := s.Bucket(1); got != 4 {
		t.Errorf("bucket 1 = %v, want 4", got)
	}
	if got := s.Bucket(3); got != 8 {
		t.Errorf("bucket 3 = %v, want 8", got)
	}
	if got := s.Bucket(2); got != 0 {
		t.Errorf("untouched bucket = %v, want 0", got)
	}
	if got := s.Bucket(-1); got != 0 {
		t.Errorf("negative index = %v, want 0", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 15 {
		t.Errorf("Total = %v, want 15", s.Total())
	}
	if s.Window() != 100 {
		t.Errorf("Window = %v", s.Window())
	}
}

func TestSeriesRate(t *testing.T) {
	s := NewSeries(clock.Microsecond)
	s.Add(0, 1000) // 1000 units in 1 us => 1e9 units/sec
	if got := s.Rate(0); math.Abs(got-1e9) > 1 {
		t.Errorf("Rate = %v, want 1e9", got)
	}
}

func TestSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSeries(0) did not panic")
		}
	}()
	NewSeries(0)
}

func TestSeriesNegativeTimePanics(t *testing.T) {
	s := NewSeries(10)
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	s.Add(-1, 1)
}

// TestSeriesSparseTail is the regression for the unbounded-growth bug:
// one far-future timestamp used to append O(t/window) zero buckets (a
// multi-hour timestamp at a 50 us window is hundreds of millions of
// float64s — enough for a long replay to OOM the harness). The stray must
// land in the sparse tail, stay addressable, and leave the dense prefix
// untouched.
func TestSeriesSparseTail(t *testing.T) {
	s := NewSeries(50 * clock.Microsecond)
	s.Add(0, 1)
	s.Add(60*clock.Microsecond, 2)
	far := 3 * clock.Picos(3600) * clock.Second // a 3-hour stray
	s.Add(far, 5)
	farIdx := int(far / s.Window())
	if s.Len() > maxDenseGap+2 {
		t.Fatalf("dense prefix grew to %d buckets on a far-future Add", s.Len())
	}
	if s.SparseLen() != 1 {
		t.Fatalf("SparseLen = %d, want 1", s.SparseLen())
	}
	if got := s.Bucket(farIdx); got != 5 {
		t.Errorf("far bucket = %v, want 5", got)
	}
	if s.MaxIndex() != int64(farIdx) {
		t.Errorf("MaxIndex = %d, want %d", s.MaxIndex(), farIdx)
	}
	if s.Total() != 8 {
		t.Errorf("Total = %v, want 8", s.Total())
	}
	// Dense samples still work after the stray.
	s.Add(120*clock.Microsecond, 3)
	if got := s.Bucket(2); got != 3 {
		t.Errorf("dense bucket after stray = %v, want 3", got)
	}
	if s.Total() != 11 {
		t.Errorf("Total = %v, want 11", s.Total())
	}
}

// TestSeriesSparseFold checks a sparse stray folds into the dense prefix
// once contiguous sampling catches up to its window.
func TestSeriesSparseFold(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 1)
	strayAt := clock.Picos(10 * (maxDenseGap + 100))
	s.Add(strayAt, 7) // beyond the dense gap: sparse
	if s.SparseLen() != 1 {
		t.Fatalf("SparseLen = %d, want 1", s.SparseLen())
	}
	// Walk contiguous samples up past the stray.
	for t1 := clock.Picos(10); t1 <= strayAt+10; t1 += 10 {
		s.Add(t1, 1)
	}
	if s.SparseLen() != 0 {
		t.Fatalf("stray did not fold into the dense prefix (SparseLen=%d)", s.SparseLen())
	}
	idx := int(strayAt / 10)
	if got := s.Bucket(idx); got != 8 {
		t.Errorf("folded bucket = %v, want 8 (stray 7 + walk 1)", got)
	}
	want := 2 + float64(strayAt/10) + 7
	if got := s.Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

// TestSeriesPostGapRun checks a long legitimate idle gap does not freeze
// accumulation: samples after the gap grow their own contiguous segment,
// stay fully addressable, and fold into one run if sampling ever covers
// the gap.
func TestSeriesPostGapRun(t *testing.T) {
	s := NewSeries(10)
	s.Add(0, 1)
	gapStart := int64(10 * (maxDenseGap + 1000))
	// A contiguous run well beyond the dense slack.
	for j := int64(0); j < 500; j++ {
		s.Add(clock.Picos(gapStart+10*j), 2)
	}
	if s.Len() != 1 {
		t.Errorf("prefix Len = %d, want 1 (gap must not zero-fill)", s.Len())
	}
	base := int(gapStart / 10)
	for _, j := range []int{0, 250, 499} {
		if got := s.Bucket(base + j); got != 2 {
			t.Fatalf("post-gap bucket %d = %v, want 2", j, got)
		}
	}
	if s.SparseLen() != 500 {
		t.Errorf("SparseLen = %d, want 500", s.SparseLen())
	}
	if want := 1 + 2*500.0; s.Total() != want {
		t.Errorf("Total = %v, want %v", s.Total(), want)
	}
}

// Property: total equals the sum of added values regardless of bucketing.
func TestSeriesTotalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewSeries(37)
		var want float64
		for i, v := range raw {
			s.Add(clock.Picos(i*13), float64(v))
			want += float64(v)
		}
		return math.Abs(s.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{4, 1, 9}
	if Mean(xs) != 14.0/3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 9 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty-slice aggregates not 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
}

func TestGBFormat(t *testing.T) {
	if got := GB(19.2e9); got != "19.20 GB/s" {
		t.Errorf("GB = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("alpha", "1")
	tab.Rowf("beta\t%d", 22)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "beta") || !strings.Contains(lines[3], "22") {
		t.Errorf("Rowf row wrong: %q", lines[3])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("column misaligned:\n%s", out)
	}
}
