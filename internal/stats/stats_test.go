package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestSeriesBucketing(t *testing.T) {
	s := NewSeries(100)
	s.Add(0, 1)
	s.Add(99, 2)
	s.Add(100, 4)
	s.Add(350, 8)
	if got := s.Bucket(0); got != 3 {
		t.Errorf("bucket 0 = %v, want 3", got)
	}
	if got := s.Bucket(1); got != 4 {
		t.Errorf("bucket 1 = %v, want 4", got)
	}
	if got := s.Bucket(3); got != 8 {
		t.Errorf("bucket 3 = %v, want 8", got)
	}
	if got := s.Bucket(2); got != 0 {
		t.Errorf("untouched bucket = %v, want 0", got)
	}
	if got := s.Bucket(-1); got != 0 {
		t.Errorf("negative index = %v, want 0", got)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 15 {
		t.Errorf("Total = %v, want 15", s.Total())
	}
	if s.Window() != 100 {
		t.Errorf("Window = %v", s.Window())
	}
}

func TestSeriesRate(t *testing.T) {
	s := NewSeries(clock.Microsecond)
	s.Add(0, 1000) // 1000 units in 1 us => 1e9 units/sec
	if got := s.Rate(0); math.Abs(got-1e9) > 1 {
		t.Errorf("Rate = %v, want 1e9", got)
	}
}

func TestSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSeries(0) did not panic")
		}
	}()
	NewSeries(0)
}

func TestSeriesNegativeTimePanics(t *testing.T) {
	s := NewSeries(10)
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	s.Add(-1, 1)
}

// Property: total equals the sum of added values regardless of bucketing.
func TestSeriesTotalProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewSeries(37)
		var want float64
		for i, v := range raw {
			s.Add(clock.Picos(i*13), float64(v))
			want += float64(v)
		}
		return math.Abs(s.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{4, 1, 9}
	if Mean(xs) != 14.0/3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 9 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty-slice aggregates not 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
}

func TestGBFormat(t *testing.T) {
	if got := GB(19.2e9); got != "19.20 GB/s" {
		t.Errorf("GB = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Row("alpha", "1")
	tab.Rowf("beta\t%d", 22)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "beta") || !strings.Contains(lines[3], "22") {
		t.Errorf("Rowf row wrong: %q", lines[3])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("column misaligned:\n%s", out)
	}
}
