// Package stats provides the small statistics primitives shared by the
// simulator and the benchmark harness: time-bucketed series (for the
// per-channel bandwidth breakdowns of Fig. 4 and Fig. 6), counters, and
// aggregate helpers.
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/clock"
)

// Series accumulates a value over fixed-width time windows. It backs the
// paper's time-resolved plots (active-core fraction, per-channel write
// throughput).
type Series struct {
	window  clock.Picos
	buckets []float64
}

// NewSeries creates a series with the given bucket width.
func NewSeries(window clock.Picos) *Series {
	if window <= 0 {
		panic("stats: non-positive series window")
	}
	return &Series{window: window}
}

// Window reports the bucket width.
func (s *Series) Window() clock.Picos { return s.window }

// Add accumulates v into the bucket containing time t.
func (s *Series) Add(t clock.Picos, v float64) {
	if t < 0 {
		panic("stats: negative time")
	}
	i := int(t / s.window)
	for len(s.buckets) <= i {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[i] += v
}

// Buckets returns the accumulated buckets; the caller must not mutate.
func (s *Series) Buckets() []float64 { return s.buckets }

// Bucket returns bucket i, or 0 when it was never touched.
func (s *Series) Bucket(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i]
}

// Len reports the number of buckets.
func (s *Series) Len() int { return len(s.buckets) }

// Total sums all buckets.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.buckets {
		t += v
	}
	return t
}

// Rate converts bucket i's accumulation into a per-second rate.
func (s *Series) Rate(i int) float64 {
	return s.Bucket(i) / s.window.Seconds()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// It is the conventional aggregate for speedup ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// GB formats a byte rate as "x.xx GB/s" using decimal gigabytes, matching
// the paper's units.
func GB(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// Table is a minimal fixed-width text table used by the benchmark harness
// to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells beyond the header width are dropped.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row of formatted cells.
func (t *Table) Rowf(format string, args ...interface{}) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
