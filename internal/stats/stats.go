// Package stats provides the small statistics primitives shared by the
// simulator and the benchmark harness: time-bucketed series (for the
// per-channel bandwidth breakdowns of Fig. 4 and Fig. 6), counters, and
// aggregate helpers.
package stats

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/clock"
)

// Series accumulates a value over fixed-width time windows. It backs the
// paper's time-resolved plots (active-core fraction, per-channel write
// throughput).
//
// Storage is segmented: each segment is one contiguous run of buckets,
// kept sorted and non-overlapping. A sample extends its segment (filling
// at most maxDenseGap zero buckets, the cadence slack of a live sampler)
// or starts a new one, so memory stays proportional to the windows
// actually touched — a single far-future timestamp in a replayed trace
// used to append O(t/window) zero buckets and could OOM a long replay;
// now it just opens a one-bucket segment. Segments that grow into each
// other merge, so a stray folds in if sampling later catches up to it.
// Buckets/Len expose the prefix segment starting at index 0 (what
// renderers iterate); everything else stays addressable through
// Bucket/MaxIndex, and aggregation walks segments in order, keeping
// totals bit-deterministic.
type Series struct {
	window clock.Picos
	segs   []seg
}

// seg is one contiguous run of buckets starting at absolute index start.
type seg struct {
	start int64
	vals  []float64
}

func (g *seg) end() int64 { return g.start + int64(len(g.vals)) }

// maxDenseGap bounds how many zero buckets one Add may fill to keep a
// sample in an existing segment before a new segment is opened instead.
const maxDenseGap = 256

// NewSeries creates a series with the given bucket width.
func NewSeries(window clock.Picos) *Series {
	if window <= 0 {
		panic("stats: non-positive series window")
	}
	return &Series{window: window}
}

// Window reports the bucket width.
func (s *Series) Window() clock.Picos { return s.window }

// seekSeg returns the index of the last segment with start <= i, or -1.
func (s *Series) seekSeg(i int64) int {
	lo, hi := 0, len(s.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.segs[mid].start <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// Add accumulates v into the bucket containing time t.
func (s *Series) Add(t clock.Picos, v float64) {
	if t < 0 {
		panic("stats: negative time")
	}
	i := int64(t / s.window)
	k := s.seekSeg(i)
	if k >= 0 {
		g := &s.segs[k]
		if i < g.end() {
			g.vals[i-g.start] += v
			return
		}
		if i < g.end()+maxDenseGap {
			// Within sampler slack of the segment's end: extend it.
			for g.end() <= i {
				g.vals = append(g.vals, 0)
			}
			g.vals[i-g.start] += v
			s.mergeForward(k)
			return
		}
	}
	// Far from any existing run: open a fresh segment.
	k++
	s.segs = append(s.segs, seg{})
	copy(s.segs[k+1:], s.segs[k:])
	s.segs[k] = seg{start: i, vals: []float64{v}}
	s.mergeForward(k)
}

// mergeForward folds segments k+1... into k while they touch or overlap.
func (s *Series) mergeForward(k int) {
	g := &s.segs[k]
	n := k + 1
	for n < len(s.segs) && s.segs[n].start <= g.end() {
		next := s.segs[n]
		off := next.start - g.start
		for g.end() < next.end() {
			g.vals = append(g.vals, 0)
		}
		for j, v := range next.vals {
			g.vals[off+int64(j)] += v
		}
		n++
	}
	if n > k+1 {
		s.segs = append(s.segs[:k+1], s.segs[n:]...)
	}
}

// Buckets returns the contiguous bucket run starting at index 0; the
// caller must not mutate. Samples beyond the first idle gap larger than
// maxDenseGap windows live in later segments, reachable via Bucket and
// MaxIndex.
func (s *Series) Buckets() []float64 {
	if len(s.segs) == 0 || s.segs[0].start != 0 {
		return nil
	}
	return s.segs[0].vals
}

// Bucket returns bucket i, or 0 when it was never touched.
func (s *Series) Bucket(i int) float64 {
	k := s.seekSeg(int64(i))
	if k < 0 {
		return 0
	}
	if g := &s.segs[k]; int64(i) < g.end() {
		return g.vals[int64(i)-g.start]
	}
	return 0
}

// Len reports the length of the contiguous prefix starting at index 0 —
// the region Len/Bucket rendering loops iterate.
func (s *Series) Len() int {
	return len(s.Buckets())
}

// MaxIndex reports the highest bucket index ever touched (possibly in a
// later segment), or -1 for an empty series.
func (s *Series) MaxIndex() int64 {
	if len(s.segs) == 0 {
		return -1
	}
	return s.segs[len(s.segs)-1].end() - 1
}

// SparseLen reports how many buckets live beyond the prefix segment.
func (s *Series) SparseLen() int {
	n := 0
	for k := range s.segs {
		if k > 0 || s.segs[k].start != 0 {
			n += len(s.segs[k].vals)
		}
	}
	return n
}

// Total sums all buckets. Segments are walked in index order, so the
// floating-point sum is bit-deterministic across reruns.
func (s *Series) Total() float64 {
	var t float64
	for k := range s.segs {
		for _, v := range s.segs[k].vals {
			t += v
		}
	}
	return t
}

// Rate converts bucket i's accumulation into a per-second rate.
func (s *Series) Rate(i int) float64 {
	return s.Bucket(i) / s.window.Seconds()
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// It is the conventional aggregate for speedup ratios.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// GB formats a byte rate as "x.xx GB/s" using decimal gigabytes, matching
// the paper's units.
func GB(bytesPerSec float64) string {
	return fmt.Sprintf("%.2f GB/s", bytesPerSec/1e9)
}

// Table is a minimal fixed-width text table used by the benchmark harness
// to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells beyond the header width are dropped.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row of formatted cells.
func (t *Table) Rowf(format string, args ...interface{}) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
