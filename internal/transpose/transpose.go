// Package transpose implements the data preprocessing required by chip
// interleaving in UPMEM-style PIM DIMMs (paper Fig. 3).
//
// A DIMM built from x8 chips splits every 64-bit data word one byte per
// chip. A bank-level PIM core lives inside a single chip, so without help
// it would only ever see one byte of each word. The UPMEM runtime therefore
// transposes each 64-byte block — viewed as an 8x8 byte matrix of 8 words
// by 8 byte lanes — before the copy, so that each chip (byte lane) receives
// one complete original word. The same transform is applied on the way
// back. PIM-MMU moves this transform from AVX software into the DCE's
// preprocessing unit; both use the functions in this package, which makes
// the data path functionally testable end to end.
package transpose

import "fmt"

// BlockBytes is the transpose granularity: 8 words x 8 byte lanes.
const BlockBytes = 64

// WordBytes is the width of one data word (one row of the matrix).
const WordBytes = 8

// Block transposes one 64-byte block in place: out[lane*8+word] =
// in[word*8+lane]. Applying it twice restores the original block.
func Block(b *[BlockBytes]byte) {
	for w := 0; w < WordBytes; w++ {
		for l := w + 1; l < WordBytes; l++ {
			b[w*WordBytes+l], b[l*WordBytes+w] = b[l*WordBytes+w], b[w*WordBytes+l]
		}
	}
}

// Buffer transposes every 64-byte block of buf in place. The length must
// be a multiple of BlockBytes; a ragged buffer is a programming error in
// the transfer path and panics.
func Buffer(buf []byte) {
	if len(buf)%BlockBytes != 0 {
		panic(fmt.Sprintf("transpose: buffer length %d not a multiple of %d", len(buf), BlockBytes))
	}
	for off := 0; off < len(buf); off += BlockBytes {
		var blk [BlockBytes]byte
		copy(blk[:], buf[off:off+BlockBytes])
		Block(&blk)
		copy(buf[off:off+BlockBytes], blk[:])
	}
}

// Lane extracts byte lane l (0..7) of a 64-byte burst: byte l of each of
// the 8 beats — the bytes chip l physically receives. For a transposed
// block this equals original word l.
func Lane(b []byte, l int) [WordBytes]byte {
	if len(b) < BlockBytes {
		panic("transpose: short block")
	}
	var out [WordBytes]byte
	for w := 0; w < WordBytes; w++ {
		out[w] = b[w*WordBytes+l]
	}
	return out
}

// Word extracts original word w (0..7) of an untransposed block.
func Word(b []byte, w int) [WordBytes]byte {
	if len(b) < BlockBytes {
		panic("transpose: short block")
	}
	var out [WordBytes]byte
	copy(out[:], b[w*WordBytes:(w+1)*WordBytes])
	return out
}

// HWUnit models the DCE's hardware preprocessing unit (Section IV-C): a
// pipelined transpose engine. Throughput is one 64-byte block per engine
// cycle after a fixed pipeline fill latency; the DCE charges these costs
// when streaming data through the unit.
type HWUnit struct {
	// PipelineDepth is the fill latency in DCE cycles.
	PipelineDepth int64
	// BlocksPerCycle is the sustained throughput.
	BlocksPerCycle int64
}

// DefaultHWUnit matches the DCE at 3.2 GHz: 4-stage pipeline, one 64-byte
// block per cycle (204.8 GB/s — never the bottleneck, by design).
func DefaultHWUnit() HWUnit {
	return HWUnit{PipelineDepth: 4, BlocksPerCycle: 1}
}

// Cycles reports the engine-cycle cost of streaming n blocks through the
// unit.
func (u HWUnit) Cycles(blocks int64) int64 {
	if blocks <= 0 {
		return 0
	}
	return u.PipelineDepth + (blocks+u.BlocksPerCycle-1)/u.BlocksPerCycle
}

// SWCost models the AVX-512 software transpose cost in CPU cycles per
// 64-byte block, measured from shuffle-based 8x8 byte transposes on
// Skylake-class cores (roughly 8 shuffle uops plus loads/stores per block).
const SWCostCyclesPerBlock = 6
