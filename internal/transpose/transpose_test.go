package transpose

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockTransposesMatrix(t *testing.T) {
	var b [BlockBytes]byte
	for i := range b {
		b[i] = byte(i)
	}
	Block(&b)
	for w := 0; w < WordBytes; w++ {
		for l := 0; l < WordBytes; l++ {
			want := byte(l*WordBytes + w)
			if got := b[w*WordBytes+l]; got != want {
				t.Fatalf("b[%d][%d] = %d, want %d", w, l, got, want)
			}
		}
	}
}

// Transpose is an involution: applying it twice restores the block.
func TestBlockInvolution(t *testing.T) {
	f := func(in [BlockBytes]byte) bool {
		b := in
		Block(&b)
		Block(&b)
		return b == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The defining property (paper Fig. 3): after the transpose, byte lane L
// of the block holds exactly the original word L, so the chip on lane L
// receives a complete data word.
func TestLaneReceivesWholeWord(t *testing.T) {
	f := func(in [BlockBytes]byte) bool {
		b := in
		Block(&b)
		for l := 0; l < WordBytes; l++ {
			if Lane(b[:], l) != Word(in[:], l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 8*BlockBytes)
	rng.Read(buf)
	orig := append([]byte(nil), buf...)
	Buffer(buf)
	if bytes.Equal(buf, orig) {
		t.Error("Buffer did not change data")
	}
	// Each block is independently transposed.
	for blk := 0; blk < 8; blk++ {
		var b [BlockBytes]byte
		copy(b[:], orig[blk*BlockBytes:])
		Block(&b)
		if !bytes.Equal(buf[blk*BlockBytes:(blk+1)*BlockBytes], b[:]) {
			t.Fatalf("block %d mismatch", blk)
		}
	}
	Buffer(buf)
	if !bytes.Equal(buf, orig) {
		t.Error("double Buffer did not restore data")
	}
}

func TestBufferRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged buffer did not panic")
		}
	}()
	Buffer(make([]byte, 65))
}

func TestLaneShortBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short block did not panic")
		}
	}()
	Lane(make([]byte, 10), 0)
}

func TestHWUnitCycles(t *testing.T) {
	u := DefaultHWUnit()
	if got := u.Cycles(0); got != 0 {
		t.Errorf("Cycles(0) = %d, want 0", got)
	}
	if got := u.Cycles(1); got != u.PipelineDepth+1 {
		t.Errorf("Cycles(1) = %d, want %d", got, u.PipelineDepth+1)
	}
	if got := u.Cycles(1000); got != u.PipelineDepth+1000 {
		t.Errorf("Cycles(1000) = %d, want %d", got, u.PipelineDepth+1000)
	}
}

func TestHWUnitNeverBottleneck(t *testing.T) {
	// One block per DCE cycle at 3.2 GHz is 204.8 GB/s, far above the
	// 19.2 GB/s channel peak the data stream can reach.
	u := DefaultHWUnit()
	bytesPerSec := float64(u.BlocksPerCycle) * BlockBytes * 3.2e9
	if bytesPerSec < 5*19.2e9 {
		t.Errorf("HW transpose throughput %.1f GB/s too low to be transparent", bytesPerSec/1e9)
	}
}
