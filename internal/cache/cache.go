// Package cache implements the shared last-level cache of the host
// processor (Table I: 8 MB, 16-way, 64 B lines, LRU). The cache is a pure
// state machine — lookup, allocation, eviction — with no notion of time;
// the memory-system router charges latencies around it.
//
// PIM-space requests never enter the cache: the PIM address range is
// non-cacheable in real systems (the host must observe DPU-written data,
// and DPUs must observe host-written data, without coherence hardware).
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Config sizes the cache.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
}

// DefaultConfig is the Table I LLC: 8 MB shared, 16-way.
func DefaultConfig() Config {
	return Config{SizeBytes: 8 << 20, Ways: 16}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive size or ways")
	}
	lines := c.SizeBytes / mem.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets is not a power of two", sets)
	}
	return nil
}

type way struct {
	valid bool
	dirty bool
	tag   uint64
	used  uint64 // LRU timestamp
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate is hits / (hits+misses).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	clock   uint64
	stats   Stats
}

// New builds a cache; it panics on invalid configuration (static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / mem.LineBytes / cfg.Ways
	c := &Cache{cfg: cfg, setMask: uint64(nSets - 1)}
	c.sets = make([][]way, nSets)
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c
}

// Sets reports the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	line := addr / mem.LineBytes
	return line & c.setMask, line >> uint(popcount(c.setMask))
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Writeback holds the line address of an evicted dirty line that must
	// be written to memory; valid only when HasWriteback.
	Writeback    uint64
	HasWriteback bool
}

// Access performs a read or write lookup with write-allocate semantics:
// a miss allocates the line (the caller is responsible for fetching it
// from memory) and may evict a dirty victim.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.index(addr)
	c.clock++
	ws := c.sets[set]
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].used = c.clock
			if write {
				ws[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range ws {
		if !ws[i].valid {
			victim = i
			goto fill
		}
		if ws[i].used < ws[victim].used {
			victim = i
		}
	}
fill:
	res := Result{}
	if ws[victim].valid {
		c.stats.Evictions++
		if ws[victim].dirty {
			c.stats.Writebacks++
			res.HasWriteback = true
			res.Writeback = c.victimAddr(set, ws[victim].tag)
		}
	}
	ws[victim] = way{valid: true, dirty: write, tag: tag, used: c.clock}
	return res
}

// Contains reports whether the line holding addr is cached, without
// touching LRU state.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// victimAddr reconstructs a line address from (set, tag).
func (c *Cache) victimAddr(set, tag uint64) uint64 {
	return (tag<<uint(popcount(c.setMask)) | set) * mem.LineBytes
}
