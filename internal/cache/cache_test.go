package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func small() Config { return Config{SizeBytes: 64 * 1024, Ways: 4} } // 256 sets

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if (Config{SizeBytes: 0, Ways: 4}).Validate() == nil {
		t.Error("zero size accepted")
	}
	if (Config{SizeBytes: 3 * 64, Ways: 2}).Validate() == nil {
		t.Error("non power-of-two sets accepted")
	}
}

func TestDefaultConfigShape(t *testing.T) {
	c := New(DefaultConfig())
	if c.Sets() != 8192 {
		t.Errorf("8MB/16-way LLC has %d sets, want 8192", c.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x1000, false).Hit {
		t.Error("first access hit an empty cache")
	}
	if !c.Access(0x1000, false).Hit {
		t.Error("second access to same line missed")
	}
	if !c.Access(0x1010, false).Hit {
		t.Error("access within the same 64B line missed")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := small()
	c := New(cfg)
	sets := uint64(c.Sets())
	setStride := sets * mem.LineBytes // same set, next tag
	// Fill all 4 ways of set 0.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	// Touch way 0 to make way 1 the LRU victim.
	c.Access(0, false)
	// Allocate a 5th line: must evict tag 1, keep tag 0.
	c.Access(4*setStride, false)
	if !c.Contains(0) {
		t.Error("recently used line was evicted")
	}
	if c.Contains(1 * setStride) {
		t.Error("LRU line survived eviction")
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	cfg := small()
	c := New(cfg)
	sets := uint64(c.Sets())
	setStride := sets * mem.LineBytes
	c.Access(0, true) // dirty line, tag 0
	for i := uint64(1); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	res := c.Access(4*setStride, false) // evicts tag 0
	if !res.HasWriteback {
		t.Fatal("dirty eviction produced no writeback")
	}
	if res.Writeback != 0 {
		t.Errorf("writeback address = 0x%x, want 0x0", res.Writeback)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	cfg := small()
	c := New(cfg)
	sets := uint64(c.Sets())
	setStride := sets * mem.LineBytes
	for i := uint64(0); i < 5; i++ {
		if res := c.Access(i*setStride, false); res.HasWriteback {
			t.Error("clean eviction produced a writeback")
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestWriteMakesDirty(t *testing.T) {
	cfg := small()
	c := New(cfg)
	sets := uint64(c.Sets())
	setStride := sets * mem.LineBytes
	c.Access(0, false) // clean fill
	c.Access(0, true)  // hit-write dirties it
	for i := uint64(1); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	if res := c.Access(4*setStride, false); !res.HasWriteback {
		t.Error("hit-write did not dirty the line")
	}
}

// Property: the reconstructed writeback address always maps to the same
// set as the line that evicted it.
func TestWritebackAddressSetInvariant(t *testing.T) {
	cfg := small()
	c := New(cfg)
	f := func(raw uint64) bool {
		addr := raw % (1 << 30) &^ 63
		res := c.Access(addr, true)
		if !res.HasWriteback {
			return true
		}
		return res.Writeback/mem.LineBytes%uint64(c.Sets()) ==
			addr/mem.LineBytes%uint64(c.Sets())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// A working set smaller than the cache must converge to a ~100% hit rate.
func TestSmallWorkingSetHits(t *testing.T) {
	c := New(small())
	rng := rand.New(rand.NewSource(1))
	lines := make([]uint64, 256) // 16 KB working set in a 64 KB cache
	for i := range lines {
		lines[i] = uint64(i) * mem.LineBytes
	}
	for pass := 0; pass < 10; pass++ {
		for _, a := range lines {
			c.Access(a, rng.Intn(2) == 0)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.89 {
		t.Errorf("small working set hit rate = %.3f, want > 0.89", hr)
	}
}

// A streaming access pattern much larger than the cache must miss nearly
// always — this is what makes transfer reads DRAM-bound.
func TestStreamingMisses(t *testing.T) {
	c := New(small())
	for a := uint64(0); a < 16<<20; a += mem.LineBytes {
		c.Access(a, false)
	}
	if hr := c.Stats().HitRate(); hr > 0.01 {
		t.Errorf("streaming hit rate = %.3f, want ~0", hr)
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats hit rate != 0")
	}
}
