package pimms

import (
	"testing"
	"testing/quick"

	"repro/internal/addrmap"
	"repro/internal/pim"
)

func geom() pim.Geometry {
	return pim.Geometry{
		DRAM: addrmap.Geometry{
			Channels: 2, Ranks: 2, BankGroups: 2, Banks: 2, Rows: 256, Cols: 128,
		},
		LanesPerBank: 2,
	}
}

// streamsFor builds one stream per core with the given bytes each, bases
// spaced 1 MiB apart.
func streamsFor(g pim.Geometry, bytesPer uint64) []Stream {
	ss := make([]Stream, g.NumCores())
	for i := range ss {
		ss[i] = Stream{Core: i, Base: uint64(i) << 20, Bytes: bytesPer}
	}
	return ss
}

// Every line of every stream must be emitted exactly once (the permutation
// property: PIM-MS reorders but never drops or duplicates).
func TestAlgorithm1IsPermutation(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 1024)
	its := NewAlgorithm1(g, ss)
	seen := map[uint64]bool{}
	total := uint64(0)
	for _, it := range its {
		for {
			x, ok := it.Next()
			if !ok {
				break
			}
			if seen[x.Addr] {
				t.Fatalf("address 0x%x emitted twice", x.Addr)
			}
			seen[x.Addr] = true
			total++
		}
	}
	if want := TotalLines(ss); total != want {
		t.Fatalf("emitted %d lines, want %d", total, want)
	}
}

func TestSequentialIsPermutationInCoreOrder(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 512)
	it := NewSequential(g, ss)
	count := uint64(0)
	prevCore := -1
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		if x.Core < prevCore {
			t.Fatalf("sequential order regressed: core %d after %d", x.Core, prevCore)
		}
		prevCore = x.Core
		count++
	}
	if count != TotalLines(ss) {
		t.Fatalf("emitted %d lines, want %d", count, TotalLines(ss))
	}
}

// Within a stream both iterators must advance addresses sequentially
// (row-buffer locality).
func TestPerStreamAddressesSequential(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 2048)
	its := NewAlgorithm1(g, ss)
	lastOff := map[int]uint64{}
	for _, it := range its {
		for {
			x, ok := it.Next()
			if !ok {
				break
			}
			base := ss[x.Core].Base
			off := x.Addr - base
			if prev, seen := lastOff[x.Core]; seen && off != prev+Granularity {
				t.Fatalf("core %d: offset jumped from 0x%x to 0x%x", x.Core, prev, off)
			}
			lastOff[x.Core] = off
		}
	}
}

// Algorithm 1's central property: consecutive granules on one channel
// rotate across banks/bank-groups, so back-to-back column commands avoid
// the same bank whenever more than one has pending work.
func TestAlgorithm1RotatesBanks(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 1024)
	its := NewAlgorithm1(g, ss)
	for ch, it := range its {
		var prev *pim.CoreLoc
		for checked := 0; checked < 64; checked++ {
			x, ok := it.Next()
			if !ok {
				break
			}
			loc := g.Loc(x.Core)
			if prev != nil && loc == *prev {
				t.Fatalf("ch %d: consecutive granules from the same core: %+v", ch, loc)
			}
			prev = &loc
		}
	}
}

// The first sweep must touch every stream once before revisiting any —
// maximal bank-level parallelism from the first request.
func TestAlgorithm1FirstSweepCoversAllStreams(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 1024)
	its := NewAlgorithm1(g, ss)
	perCh := g.CoresPerChannel()
	for ch, it := range its {
		seen := map[int]bool{}
		for i := 0; i < perCh; i++ {
			x, ok := it.Next()
			if !ok {
				t.Fatalf("ch %d exhausted after %d granules", ch, i)
			}
			if seen[x.Core] {
				t.Fatalf("ch %d revisited core %d before finishing the sweep", ch, x.Core)
			}
			seen[x.Core] = true
		}
	}
}

// Each channel's iterator must only contain that channel's cores.
func TestAlgorithm1ChannelPartition(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 256)
	its := NewAlgorithm1(g, ss)
	for ch, it := range its {
		for {
			x, ok := it.Next()
			if !ok {
				break
			}
			if got := g.Loc(x.Core).Channel; got != ch {
				t.Fatalf("iterator %d emitted core %d of channel %d", ch, x.Core, got)
			}
		}
	}
}

// Sweep order follows Algorithm 1 lines 29-31: bank-major, then rank,
// then bank group.
func TestAlgorithm1SweepOrder(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 256)
	its := NewAlgorithm1(g, ss)
	it := its[0]
	var prev pim.CoreLoc
	first := true
	for i := 0; i < g.CoresPerChannel(); i++ {
		x, _ := it.Next()
		loc := g.Loc(x.Core)
		if !first {
			pk := ((prev.Bank*g.DRAM.Ranks+prev.Rank)*g.DRAM.BankGroups+prev.BankGroup)*g.LanesPerBank + prev.Lane
			ck := ((loc.Bank*g.DRAM.Ranks+loc.Rank)*g.DRAM.BankGroups+loc.BankGroup)*g.LanesPerBank + loc.Lane
			if ck <= pk {
				t.Fatalf("sweep order violated: %+v then %+v", prev, loc)
			}
		}
		prev, first = loc, false
	}
}

func TestRemainingCountdown(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 512)
	it := NewSequential(g, ss)
	want := it.Remaining()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		want--
		if it.Remaining() != want {
			t.Fatalf("Remaining = %d, want %d", it.Remaining(), want)
		}
	}
	if want != 0 {
		t.Fatalf("iterator ended with %d lines unemitted", want)
	}
}

// Property: for random per-core sizes, both iterators emit identical
// address multisets — they are reorderings of each other.
func TestIteratorsEmitSameMultiset(t *testing.T) {
	g := geom()
	f := func(seed uint8) bool {
		x := uint64(seed) + 1
		var ss []Stream
		for i := 0; i < g.NumCores(); i++ {
			x = x*2862933555777941757 + 3037000493
			ss = append(ss, Stream{Core: i, Base: uint64(i) << 20, Bytes: (x%8 + 1) * Granularity})
		}
		collect := func(its []Iterator) map[uint64]int {
			m := map[uint64]int{}
			for _, it := range its {
				for {
					x, ok := it.Next()
					if !ok {
						break
					}
					m[x.Addr]++
				}
			}
			return m
		}
		var a1 []Iterator
		for _, it := range NewAlgorithm1(g, ss) {
			a1 = append(a1, it)
		}
		ma := collect(a1)
		ms := collect([]Iterator{NewSequential(g, ss)})
		if len(ma) != len(ms) {
			return false
		}
		for k, v := range ma {
			if ms[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStreamValidate(t *testing.T) {
	good := Stream{Core: 0, Base: 64, Bytes: 128}
	if err := good.Validate(); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
	for _, bad := range []Stream{
		{Core: 0, Base: 0, Bytes: 0},
		{Core: 0, Base: 0, Bytes: 63},
		{Core: 0, Base: 1, Bytes: 64},
	} {
		if bad.Validate() == nil {
			t.Errorf("invalid stream accepted: %+v", bad)
		}
	}
}

func TestInvalidStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewAlgorithm1 with invalid stream did not panic")
		}
	}()
	NewAlgorithm1(geom(), []Stream{{Core: 0, Bytes: 3}})
}

func TestEmptyIterators(t *testing.T) {
	g := geom()
	for _, it := range NewAlgorithm1(g, nil) {
		if _, ok := it.Next(); ok {
			t.Error("empty Algorithm1 iterator emitted a granule")
		}
		if it.Remaining() != 0 {
			t.Error("empty iterator has nonzero Remaining")
		}
	}
	s := NewSequential(g, nil)
	if _, ok := s.Next(); ok {
		t.Error("empty Sequential iterator emitted a granule")
	}
}

// ChannelRR must alternate channels per granule while staying in core
// order within each channel.
func TestChannelRRAlternatesChannels(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 512)
	it := NewChannelRR(g, ss)
	lastCore := make([]int, g.DRAM.Channels)
	for i := range lastCore {
		lastCore[i] = -1
	}
	prevCh := -1
	count := uint64(0)
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		ch := g.Loc(x.Core).Channel
		if prevCh >= 0 && ch == prevCh {
			t.Fatalf("granule %d stayed on channel %d while the other had work", count, ch)
		}
		if x.Core < lastCore[ch] {
			t.Fatalf("channel %d regressed from core %d to %d", ch, lastCore[ch], x.Core)
		}
		lastCore[ch] = x.Core
		prevCh = ch
		count++
	}
	if count != TotalLines(ss) {
		t.Fatalf("emitted %d granules, want %d", count, TotalLines(ss))
	}
}

// ChannelRR emits the same multiset as the other orders.
func TestChannelRRSameMultiset(t *testing.T) {
	g := geom()
	ss := streamsFor(g, 256)
	seen := map[uint64]bool{}
	it := NewChannelRR(g, ss)
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		if seen[x.Addr] {
			t.Fatalf("duplicate address 0x%x", x.Addr)
		}
		seen[x.Addr] = true
	}
	if uint64(len(seen)) != TotalLines(ss) {
		t.Fatalf("emitted %d unique granules, want %d", len(seen), TotalLines(ss))
	}
}
