// Package pimms implements the PIM-aware Memory Scheduler of Section IV-D:
// Algorithm 1. Its key insight is that the per-core segments of a
// DRAM<->PIM transfer are mutually exclusive (each PIM core owns a disjoint
// slice of the PIM address space), so the hardware may freely reorder the
// line transfers of different cores. PIM-MS exploits that freedom to
// maximize memory-level parallelism:
//
//   - channels are served in parallel (Algorithm 1's #do-parallel);
//   - within a channel, successive granules rotate over bank groups first
//     (hiding tCCD_L), then ranks, then banks — the loop nest
//     `for bk { for ra { for bg } }` of Algorithm 1;
//   - within one stream, addresses advance sequentially, keeping
//     row-buffer hits.
//
// The scheduler operates on *streams*: sequential line-granular address
// ranges tagged with the PIM core (and hence bank position) they belong
// to. The DCE derives two stream sets per transfer — the DRAM-side
// per-core source arrays and the PIM-side per-bank line ranges — and runs
// each through an iterator from this package. The baseline software path
// never sees any of this; that asymmetry is the paper's point.
package pimms

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/pim"
)

// Granularity is the scheduling granule: one 64-byte line per stream
// visit (Algorithm 1's min_access_granularity).
const Granularity = mem.LineBytes

// Stream is one sequential address range of a transfer: Bytes bytes
// starting at Base, belonging to PIM core Core (whose bank position
// drives the issue order).
type Stream struct {
	Core  int
	Base  uint64
	Bytes uint64
}

// Validate reports errors for misaligned or empty streams.
func (s Stream) Validate() error {
	if s.Bytes == 0 || s.Bytes%Granularity != 0 {
		return fmt.Errorf("pimms: stream core %d: %d bytes not a positive multiple of %d",
			s.Core, s.Bytes, Granularity)
	}
	if s.Base%Granularity != 0 {
		return fmt.Errorf("pimms: stream core %d: unaligned base 0x%x", s.Core, s.Base)
	}
	return nil
}

// Granule is one line emitted by an iterator.
type Granule struct {
	Core int
	Addr uint64
}

// Iterator yields granules in scheduling order.
type Iterator interface {
	// Next returns the next granule; ok is false when exhausted.
	Next() (g Granule, ok bool)
	// Remaining reports the number of granules left.
	Remaining() uint64
}

// cursor tracks one stream's progress.
type cursor struct {
	s   Stream
	off uint64
	loc pim.CoreLoc
}

func (c *cursor) done() bool { return c.off >= c.s.Bytes }

func (c *cursor) next() Granule {
	g := Granule{Core: c.s.Core, Addr: c.s.Base + c.off}
	c.off += Granularity
	return g
}

// Algorithm1 is the PIM-MS issue order for one channel: repeated sweeps
// over that channel's unfinished streams in bank-major, rank-middle,
// bank-group-minor order (Algorithm 1 lines 28-37).
type Algorithm1 struct {
	cursors []*cursor
	pos     int
	left    uint64
}

// NewAlgorithm1 builds per-channel iterators over the streams. The
// returned slice is indexed by the streams' PIM channel; channels with no
// streams get an empty iterator. It panics on an invalid stream — stream
// lists are constructed by the runtime library, so a bad one is a
// programming error.
func NewAlgorithm1(g pim.Geometry, streams []Stream) []*Algorithm1 {
	its := make([]*Algorithm1, g.DRAM.Channels)
	for i := range its {
		its[i] = &Algorithm1{}
	}
	for _, s := range streams {
		if err := s.Validate(); err != nil {
			panic(err)
		}
		loc := g.Loc(s.Core)
		it := its[loc.Channel]
		it.cursors = append(it.cursors, &cursor{s: s, loc: loc})
		it.left += s.Bytes / Granularity
	}
	// Algorithm 1 lines 29-31: for bk { for ra { for bg } }.
	for _, it := range its {
		cs := it.cursors
		sort.SliceStable(cs, func(i, j int) bool {
			a, b := cs[i].loc, cs[j].loc
			if a.Bank != b.Bank {
				return a.Bank < b.Bank
			}
			if a.Rank != b.Rank {
				return a.Rank < b.Rank
			}
			if a.BankGroup != b.BankGroup {
				return a.BankGroup < b.BankGroup
			}
			return a.Lane < b.Lane
		})
	}
	return its
}

// Next implements Iterator: one granule from the next unfinished stream
// in sweep order.
func (a *Algorithm1) Next() (Granule, bool) {
	n := len(a.cursors)
	if n == 0 || a.left == 0 {
		return Granule{}, false
	}
	for scanned := 0; scanned < n; scanned++ {
		c := a.cursors[a.pos]
		a.pos = (a.pos + 1) % n
		if !c.done() {
			a.left--
			return c.next(), true
		}
	}
	return Granule{}, false
}

// Remaining implements Iterator.
func (a *Algorithm1) Remaining() uint64 { return a.left }

// Sequential is the vanilla-DMA issue order used by the ablation's
// "Base+D" design point: streams processed strictly in core-ID order, one
// after another, with no cross-stream interleaving. This is how a
// conventional DMA engine (Intel I/OAT, DSA) walks a descriptor list.
type Sequential struct {
	cursors []*cursor
	idx     int
	left    uint64
}

// NewSequential builds a single whole-transfer iterator in core order.
func NewSequential(g pim.Geometry, streams []Stream) *Sequential {
	s := &Sequential{}
	for _, st := range streams {
		if err := st.Validate(); err != nil {
			panic(err)
		}
		s.cursors = append(s.cursors, &cursor{s: st, loc: g.Loc(st.Core)})
		s.left += st.Bytes / Granularity
	}
	sort.SliceStable(s.cursors, func(i, j int) bool {
		return s.cursors[i].s.Core < s.cursors[j].s.Core
	})
	return s
}

// Next implements Iterator.
func (s *Sequential) Next() (Granule, bool) {
	for s.idx < len(s.cursors) {
		c := s.cursors[s.idx]
		if !c.done() {
			s.left--
			return c.next(), true
		}
		s.idx++
	}
	return Granule{}, false
}

// Remaining implements Iterator.
func (s *Sequential) Remaining() uint64 { return s.left }

// TotalLines sums the granule count of a stream set.
func TotalLines(streams []Stream) uint64 {
	var n uint64
	for _, s := range streams {
		n += s.Bytes / Granularity
	}
	return n
}

// Chunked walks streams round-robin like Algorithm1 but emits chunkLines
// consecutive granules per stream visit. The DCE uses it for the DRAM
// side of a transfer: the AGU free-runs within one descriptor for a chunk
// before rotating, which preserves row-buffer locality under the
// MLP-centric mapping (whose channel/bank-group bits live in the low
// address bits, so a sequential chunk already spreads over the whole
// subsystem). The PIM side keeps line-granular Algorithm1 rotation.
type Chunked struct {
	cursors []*cursor
	pos     int
	inChunk int
	chunk   int
	left    uint64
}

// NewChunked builds a single whole-transfer iterator emitting chunkLines
// consecutive lines per stream visit, visiting streams round-robin in
// core order.
func NewChunked(g pim.Geometry, streams []Stream, chunkLines int) *Chunked {
	if chunkLines <= 0 {
		panic("pimms: non-positive chunk")
	}
	c := &Chunked{chunk: chunkLines}
	for _, st := range streams {
		if err := st.Validate(); err != nil {
			panic(err)
		}
		c.cursors = append(c.cursors, &cursor{s: st, loc: g.Loc(st.Core)})
		c.left += st.Bytes / Granularity
	}
	sort.SliceStable(c.cursors, func(i, j int) bool {
		return c.cursors[i].s.Core < c.cursors[j].s.Core
	})
	return c
}

// Next implements Iterator.
func (c *Chunked) Next() (Granule, bool) {
	n := len(c.cursors)
	if n == 0 || c.left == 0 {
		return Granule{}, false
	}
	for scanned := 0; scanned <= n; scanned++ {
		cur := c.cursors[c.pos]
		if !cur.done() && c.inChunk < c.chunk {
			c.inChunk++
			c.left--
			return cur.next(), true
		}
		c.pos = (c.pos + 1) % n
		c.inChunk = 0
	}
	return Granule{}, false
}

// Remaining implements Iterator.
func (c *Chunked) Remaining() uint64 { return c.left }

// ChannelRR is the intermediate issue order of the DESIGN.md ablation:
// channels are served round-robin (like Algorithm 1's #do-parallel), but
// within a channel the streams are walked strictly in core order with no
// bank rotation. It isolates how much of PIM-MS's win comes from
// channel-level parallelism alone versus the bank-group interleave.
type ChannelRR struct {
	its  []*Sequential
	rr   int
	left uint64
}

// NewChannelRR builds the per-channel sequential iterators wrapped in a
// channel round-robin.
func NewChannelRR(g pim.Geometry, streams []Stream) *ChannelRR {
	perCh := make([][]Stream, g.DRAM.Channels)
	for _, s := range streams {
		ch := g.Loc(s.Core).Channel
		perCh[ch] = append(perCh[ch], s)
	}
	c := &ChannelRR{}
	for _, ss := range perCh {
		it := NewSequential(g, ss)
		c.its = append(c.its, it)
		c.left += it.Remaining()
	}
	return c
}

// Next implements Iterator.
func (c *ChannelRR) Next() (Granule, bool) {
	n := len(c.its)
	if n == 0 || c.left == 0 {
		return Granule{}, false
	}
	for scanned := 0; scanned < n; scanned++ {
		it := c.its[c.rr]
		c.rr = (c.rr + 1) % n
		if g, ok := it.Next(); ok {
			c.left--
			return g, true
		}
	}
	return Granule{}, false
}

// Remaining implements Iterator.
func (c *ChannelRR) Remaining() uint64 { return c.left }
