package main

import (
	"flag"
	"io"
	"testing"

	"repro/internal/harness"
)

// Every CLI registers the same shared Runner flag set.
func TestSharedRunnerFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-sim", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range harness.RunnerFlagNames() {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestFlagsParseAndResolve(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-sim", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := registerFlags(fs)
	err := fs.Parse([]string{"-design", "base", "-mb", "4", "-dir", "from",
		"-workers", "1", "-shards", "2", "-core-lanes", "auto", "-cache-dir", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if *f.design != "base" || *f.mb != 4 || *f.dir != "from" {
		t.Error("sim flags not parsed")
	}
	r, store, _, err := f.runner.Runner(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if store == nil || r.Cache == nil {
		t.Error("-cache-dir did not open a store")
	}
	if r.Workers != 1 || r.Shards != 2 {
		t.Errorf("runner not resolved from flags: %+v", r)
	}
}
