// Command pimmu-sim runs a single DRAM<->PIM transfer on a chosen design
// point and prints throughput, memory-system statistics, and energy —
// or, with -design all, sweeps every design point in parallel and prints
// the ablation comparison.
//
// Usage:
//
//	pimmu-sim [-design base|base+d|base+d+h|pim-mmu|all] [-mb N] [-dir to|from] [-workers N] [-shards N] [-core-lanes N]
//
// -workers parallelizes across independent design-point machines;
// -shards parallelizes inside each machine, running its lane topology —
// one event lane per DDR4 channel plus -core-lanes per-core host lanes
// with the LLC as the crossing boundary — in conservative windows (0 =
// plain serial engine, 1 = sharded queue executed serially, >= 2 = that
// many window workers). Output is independent of -workers, of -shards
// across all counts >= 1, and of -core-lanes across every count (0 can
// break same-instant event ties differently on some workloads; see
// system.Config.Shards).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sweep"
	"repro/internal/system"
)

func main() {
	designFlag := flag.String("design", "pim-mmu", "design point: base, base+d, base+d+h, pim-mmu, or all")
	mb := flag.Uint64("mb", 16, "total transfer size in MiB")
	dirFlag := flag.String("dir", "to", "direction: to (DRAM->PIM) or from (PIM->DRAM)")
	workers := flag.Int("workers", 0, "parallel simulations for -design all (0 = all cores, 1 = serial)")
	shards := flag.Int("shards", 0, "event-engine shards per machine (0 = serial engine, >= 2 = parallel windows)")
	coreLanes := flag.Int("core-lanes", 0, "per-core event lanes per machine (requires -shards >= 1)")
	flag.Parse()
	sweep.SetWorkers(*workers)
	var warns []string
	var err error
	engineShards, engineCoreLanes, warns, err = system.NormalizeLaneFlags(*shards, *coreLanes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-sim: warning: %s\n", w)
	}

	dir := core.DRAMToPIM
	if *dirFlag == "from" {
		dir = core.PIMToDRAM
	} else if *dirFlag != "to" {
		fmt.Fprintf(os.Stderr, "pimmu-sim: unknown direction %q\n", *dirFlag)
		os.Exit(2)
	}

	if *designFlag == "all" {
		runAll(dir, *mb)
		return
	}

	design, err := system.ParseDesign(*designFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}
	runOne(design, dir, *mb)
}

// engineShards/engineCoreLanes are the -shards/-core-lanes selections
// applied to every machine built.
var engineShards, engineCoreLanes int

// measurement is one design point's transfer outcome.
type measurement struct {
	sys    *system.System
	res    system.XferResult
	energy energy.Breakdown
}

// measure runs one transfer on a fresh machine.
func measure(design system.Design, dir core.Direction, mb uint64) measurement {
	cfg := system.DefaultConfig(design)
	cfg.Shards = engineShards
	cfg.CoreLanes = engineCoreLanes
	s := system.MustNew(cfg)
	per := (mb << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	before := s.Activity()
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	return measurement{sys: s, res: res, energy: s.EnergyOver(before, s.Activity())}
}

// runAll sweeps the four design points in parallel and prints the
// Fig. 15-style comparison.
func runAll(dir core.Direction, mb uint64) {
	designs := system.Designs()
	ms := sweep.Map(len(designs), func(i int) measurement {
		return measure(designs[i], dir, mb)
	})
	fmt.Printf("direction   %v, %d MiB per design point\n\n", dir, mb)
	fmt.Printf("%-12s %12s %12s %12s %12s\n",
		"design", "GB/s", "vs Base", "energy (J)", "MB/J")
	base := ms[0]
	for i, d := range designs {
		m := ms[i]
		fmt.Printf("%-12v %12.2f %11.2fx %12.4f %12.1f\n",
			d, m.res.Throughput()/1e9,
			m.res.Throughput()/base.res.Throughput(),
			m.energy.Total(),
			energy.EfficiencyBytesPerJoule(m.res.Bytes, m.energy)/1e6)
	}
}

// runOne prints the detailed single-design report.
func runOne(design system.Design, dir core.Direction, mb uint64) {
	m := measure(design, dir, mb)
	s, res, b := m.sys, m.res, m.energy

	fmt.Printf("design      %v\n", design)
	fmt.Printf("direction   %v\n", dir)
	fmt.Printf("bytes       %d (%d MiB)\n", res.Bytes, res.Bytes>>20)
	fmt.Printf("duration    %v\n", res.Duration)
	fmt.Printf("throughput  %.2f GB/s\n", res.Throughput()/1e9)
	fmt.Printf("energy      %.4f J (%.0f%% static)\n", b.Total(), 100*b.Static()/b.Total())
	fmt.Printf("efficiency  %.1f MB/J\n", energy.EfficiencyBytesPerJoule(res.Bytes, b)/1e6)

	ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
	fmt.Printf("DRAM        rd %d MiB, wr %d MiB\n", ds.BytesRead()>>20, ds.BytesWritten()>>20)
	fmt.Printf("PIM         rd %d MiB, wr %d MiB\n", ps.BytesRead()>>20, ps.BytesWritten()>>20)
	for i, c := range ps.Channels {
		fmt.Printf("  pim ch%d   wr %6d KiB  row hits %.1f%%\n",
			i, c.BytesWritten>>10, 100*c.RowHitRate())
	}
}
