// Command pimmu-sim runs a single DRAM<->PIM transfer on a chosen design
// point and prints throughput, memory-system statistics, and energy —
// or, with -design all, sweeps every design point in parallel and prints
// the ablation comparison.
//
// Usage:
//
//	pimmu-sim [-design base|base+d|base+d+h|pim-mmu|all] [-mb N] [-dir to|from] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro]
//
// -workers parallelizes across independent design-point machines;
// -shards parallelizes inside each machine, running its lane topology —
// one event lane per DDR4 channel plus -core-lanes per-core host lanes
// with the LLC as the crossing boundary — in conservative windows (0 =
// plain serial engine, 1 = sharded queue executed serially, >= 2 = that
// many window workers, auto = sized to the host with adaptive window
// tuning). Output is independent of -workers, of -shards across all
// counts >= 1 including auto, and of -core-lanes across every count
// including auto (0 can break same-instant event ties differently on
// some workloads; see system.Config.Shards).
//
// -lane-stats dumps each simulated machine's per-lane event counters to
// stderr after its transfer — the adaptive controller's inputs. Cache
// hits skip the dump: they describe a simulation, and a hit does not
// simulate.
//
// -cache-dir enables the content-addressed result cache: each design
// point's measurement is keyed on (config fingerprint, direction, size,
// code version) and served from disk when already computed, so warm
// reruns print byte-identical reports without simulating. A hit/miss
// summary goes to stderr; stdout stays identical warm or cold.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/system"
)

func main() {
	designFlag := flag.String("design", "pim-mmu", "design point: base, base+d, base+d+h, pim-mmu, or all")
	mb := flag.Uint64("mb", 16, "total transfer size in MiB")
	dirFlag := flag.String("dir", "to", "direction: to (DRAM->PIM) or from (PIM->DRAM)")
	workers := flag.Int("workers", 0, "parallel simulations for -design all (0 = all cores, 1 = serial)")
	shards := flag.String("shards", "0", "event-engine shards per machine (0 = serial engine, >= 2 = parallel windows, auto = sized to this host)")
	coreLanes := flag.String("core-lanes", "0", "per-core event lanes per machine (requires -shards >= 1; auto = one per core)")
	laneStats := flag.Bool("lane-stats", false, "dump per-lane event counters to stderr after each simulated transfer")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = caching off)")
	cacheMode := flag.String("cache", "rw", "result-cache mode: off, rw, or ro")
	flag.Parse()
	sweep.SetWorkers(*workers)
	dumpLaneStats = *laneStats
	shardsN, err := system.ParseLaneFlag(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: -shards: %v\n", err)
		os.Exit(2)
	}
	coreLanesN, err := system.ParseLaneFlag(*coreLanes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: -core-lanes: %v\n", err)
		os.Exit(2)
	}
	var warns []string
	engineShards, engineCoreLanes, warns, err = system.NormalizeLaneFlags(shardsN, coreLanesN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-sim: warning: %s\n", w)
	}
	cacheStore, err = resultcache.OpenFlags(*cacheDir, *cacheMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}

	dir := core.DRAMToPIM
	if *dirFlag == "from" {
		dir = core.PIMToDRAM
	} else if *dirFlag != "to" {
		fmt.Fprintf(os.Stderr, "pimmu-sim: unknown direction %q\n", *dirFlag)
		os.Exit(2)
	}

	if *designFlag == "all" {
		runAll(dir, *mb)
	} else {
		design, err := system.ParseDesign(*designFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
			os.Exit(2)
		}
		runOne(design, dir, *mb)
	}
	if cacheStore != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: cache: %v\n", cacheStore.Stats())
	}
}

// engineShards/engineCoreLanes are the -shards/-core-lanes selections
// applied to every machine built (system.Auto passes through to each
// machine's Normalize — and into the cache key as the sentinel, keeping
// keys machine-independent).
var engineShards, engineCoreLanes int

// dumpLaneStats mirrors -lane-stats. Blocks print whole under the
// mutex; design points measured in parallel interleave in completion
// order — the dump is a diagnostic, deliberately not part of the
// deterministic report.
var (
	dumpLaneStats bool
	laneStatsMu   sync.Mutex
)

// reportLaneStats prints one machine's per-lane counters to stderr and
// resets them, so a later dump on the same engine would attribute only
// its own run.
func reportLaneStats(tag string, s *system.System) {
	if !dumpLaneStats {
		return
	}
	st := s.Eng.ShardStats()
	if st.Lanes == nil {
		return // plain engine: nothing to attribute
	}
	laneStatsMu.Lock()
	fmt.Fprintf(os.Stderr, "-- lanes: %s --\n%s", tag, st)
	laneStatsMu.Unlock()
	s.Eng.ResetStats()
}

// cacheStore is the -cache-dir result cache (nil = off).
var cacheStore *resultcache.Store

// sweepCache adapts the store to sweep.Cache; a nil store must become a
// nil interface, not an interface wrapping nil.
func sweepCache() sweep.Cache {
	if cacheStore == nil {
		return nil
	}
	return cacheStore
}

// channelStat is the per-PIM-channel slice of a measurement that the
// single-design report prints.
type channelStat struct {
	BytesWritten uint64
	RowHitRate   float64
}

// measurement is one design point's transfer outcome — pure data, so it
// round-trips through the result cache; everything the reports print is
// captured here, not held in a live *system.System.
type measurement struct {
	Res    system.XferResult
	Energy energy.Breakdown

	DRAMRead, DRAMWritten uint64
	PIMRead, PIMWritten   uint64
	PIMCh                 []channelStat
}

// measureConfig is the machine configuration of one measurement.
func measureConfig(design system.Design) system.Config {
	cfg := system.DefaultConfig(design)
	cfg.Shards = engineShards
	cfg.CoreLanes = engineCoreLanes
	return cfg
}

// measureKey is the content-addressed cache key of one measurement.
func measureKey(design system.Design, dir core.Direction, mb uint64) string {
	return resultcache.KeyOf("pimmu-sim/v1", resultcache.CodeVersion(),
		measureConfig(design).Fingerprint(), fmt.Sprintf("xfer dir=%v mb=%d", dir, mb))
}

// measure runs one transfer on a fresh machine.
func measure(design system.Design, dir core.Direction, mb uint64) measurement {
	s := system.MustNew(measureConfig(design))
	per := (mb << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	before := s.Activity()
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	m := measurement{Res: res, Energy: s.EnergyOver(before, s.Activity())}
	reportLaneStats(fmt.Sprintf("%v %v %d MiB", design, dir, mb), s)
	ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
	m.DRAMRead, m.DRAMWritten = ds.BytesRead(), ds.BytesWritten()
	m.PIMRead, m.PIMWritten = ps.BytesRead(), ps.BytesWritten()
	for _, c := range ps.Channels {
		m.PIMCh = append(m.PIMCh, channelStat{BytesWritten: c.BytesWritten, RowHitRate: c.RowHitRate()})
	}
	return m
}

// measureCached is measure behind the result cache.
func measureCached(designs []system.Design, dir core.Direction, mb uint64) []measurement {
	return sweep.MapCached(sweepCache(), len(designs), func(i int) string {
		return measureKey(designs[i], dir, mb)
	}, func(i int) measurement {
		return measure(designs[i], dir, mb)
	})
}

// runAll sweeps the four design points in parallel and prints the
// Fig. 15-style comparison.
func runAll(dir core.Direction, mb uint64) {
	designs := system.Designs()
	ms := measureCached(designs, dir, mb)
	fmt.Printf("direction   %v, %d MiB per design point\n\n", dir, mb)
	fmt.Printf("%-12s %12s %12s %12s %12s\n",
		"design", "GB/s", "vs Base", "energy (J)", "MB/J")
	base := ms[0]
	for i, d := range designs {
		m := ms[i]
		fmt.Printf("%-12v %12.2f %11.2fx %12.4f %12.1f\n",
			d, m.Res.Throughput()/1e9,
			m.Res.Throughput()/base.Res.Throughput(),
			m.Energy.Total(),
			energy.EfficiencyBytesPerJoule(m.Res.Bytes, m.Energy)/1e6)
	}
}

// runOne prints the detailed single-design report.
func runOne(design system.Design, dir core.Direction, mb uint64) {
	m := measureCached([]system.Design{design}, dir, mb)[0]
	res, b := m.Res, m.Energy

	fmt.Printf("design      %v\n", design)
	fmt.Printf("direction   %v\n", dir)
	fmt.Printf("bytes       %d (%d MiB)\n", res.Bytes, res.Bytes>>20)
	fmt.Printf("duration    %v\n", res.Duration)
	fmt.Printf("throughput  %.2f GB/s\n", res.Throughput()/1e9)
	fmt.Printf("energy      %.4f J (%.0f%% static)\n", b.Total(), 100*b.Static()/b.Total())
	fmt.Printf("efficiency  %.1f MB/J\n", energy.EfficiencyBytesPerJoule(res.Bytes, b)/1e6)

	fmt.Printf("DRAM        rd %d MiB, wr %d MiB\n", m.DRAMRead>>20, m.DRAMWritten>>20)
	fmt.Printf("PIM         rd %d MiB, wr %d MiB\n", m.PIMRead>>20, m.PIMWritten>>20)
	for i, c := range m.PIMCh {
		fmt.Printf("  pim ch%d   wr %6d KiB  row hits %.1f%%\n",
			i, c.BytesWritten>>10, 100*c.RowHitRate)
	}
}
