// Command pimmu-sim runs a single DRAM<->PIM transfer on a chosen design
// point and prints throughput, memory-system statistics, and energy.
//
// Usage:
//
//	pimmu-sim [-design base|base+d|base+d+h|pim-mmu] [-mb N] [-dir to|from]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/system"
)

func main() {
	designFlag := flag.String("design", "pim-mmu", "design point: base, base+d, base+d+h, pim-mmu")
	mb := flag.Uint64("mb", 16, "total transfer size in MiB")
	dirFlag := flag.String("dir", "to", "direction: to (DRAM->PIM) or from (PIM->DRAM)")
	flag.Parse()

	var design system.Design
	switch *designFlag {
	case "base":
		design = system.Base
	case "base+d":
		design = system.BaseD
	case "base+d+h":
		design = system.BaseDH
	case "pim-mmu":
		design = system.PIMMMU
	default:
		fmt.Fprintf(os.Stderr, "pimmu-sim: unknown design %q\n", *designFlag)
		os.Exit(2)
	}
	dir := core.DRAMToPIM
	if *dirFlag == "from" {
		dir = core.PIMToDRAM
	} else if *dirFlag != "to" {
		fmt.Fprintf(os.Stderr, "pimmu-sim: unknown direction %q\n", *dirFlag)
		os.Exit(2)
	}

	s := system.MustNew(system.DefaultConfig(design))
	per := (*mb << 20) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	before := s.Activity()
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	b := s.EnergyOver(before, s.Activity())

	fmt.Printf("design      %v\n", design)
	fmt.Printf("direction   %v\n", dir)
	fmt.Printf("bytes       %d (%d MiB)\n", res.Bytes, res.Bytes>>20)
	fmt.Printf("duration    %v\n", res.Duration)
	fmt.Printf("throughput  %.2f GB/s\n", res.Throughput()/1e9)
	fmt.Printf("energy      %.4f J (%.0f%% static)\n", b.Total(), 100*b.Static()/b.Total())
	fmt.Printf("efficiency  %.1f MB/J\n", energy.EfficiencyBytesPerJoule(res.Bytes, b)/1e6)

	ds, ps := s.Mem.DRAM.Stats(), s.Mem.PIM.Stats()
	fmt.Printf("DRAM        rd %d MiB, wr %d MiB\n", ds.BytesRead()>>20, ds.BytesWritten()>>20)
	fmt.Printf("PIM         rd %d MiB, wr %d MiB\n", ps.BytesRead()>>20, ps.BytesWritten()>>20)
	for i, c := range ps.Channels {
		fmt.Printf("  pim ch%d   wr %6d KiB  row hits %.1f%%\n",
			i, c.BytesWritten>>10, 100*c.RowHitRate())
	}
}
