// Command pimmu-sim runs a single DRAM<->PIM transfer on a chosen design
// point and prints throughput, memory-system statistics, and energy —
// or, with -design all, sweeps every design point in parallel and prints
// the ablation comparison.
//
// Usage:
//
//	pimmu-sim [-design base|base+d|base+d+h|pim-mmu|all] [-mb N] [-dir to|from] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE] [-list] [-cache-gc]
//
// -workers parallelizes across independent design-point machines;
// -shards parallelizes inside each machine, running its lane topology —
// one event lane per DDR4 channel plus -core-lanes per-core host lanes
// with the LLC as the crossing boundary — in conservative windows (0 =
// plain serial engine, 1 = sharded queue executed serially, >= 2 = that
// many window workers, auto = sized to the host with adaptive window
// tuning). Output is independent of -workers, of -shards across all
// counts >= 1 including auto, and of -core-lanes across every count
// including auto (0 can break same-instant event ties differently on
// some workloads; see system.Config.Shards).
//
// -lane-stats dumps each simulated machine's per-lane event counters
// and the controller's sampled wall-time cost EWMAs to stderr after its
// transfer — the adaptive controller's inputs. Cache hits skip the
// dump: they describe a simulation, and a hit does not simulate.
//
// -cache-dir enables the content-addressed result cache: each design
// point's measurement is keyed on (config fingerprint, direction, size,
// code version) and served from disk when already computed, so warm
// reruns print byte-identical reports without simulating. The
// fingerprint excludes the result-neutral execution knobs — -shards,
// -core-lanes and -workers never change what a simulation computes, so
// a cache warmed at one lane topology serves every other one (the
// plain -shards 0 engine keys separately: it may order same-instant
// event ties differently). A hit/miss summary goes to stderr; stdout
// stays identical warm or cold.
//
// -cpuprofile and -memprofile write pprof profiles of the run — the CPU
// profile covers the measured transfers, the heap profile is captured
// at exit after a GC.
//
// -cache-gc garbage-collects the -cache-dir directory instead of
// simulating: entries written under a different code version — which
// can never hit again under this build — are deleted; valid entries and
// foreign files are left alone.
//
// -list prints every harness experiment name with its one-line
// description (the registry pimmu-bench serves).
//
// -format json replaces the text report with one serve/api
// ExperimentResult NDJSON line: the measurements as structured data
// plus the text report in the Text field — the same wire shape
// pimmu-serve returns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/serve/api"
	"repro/internal/system"
)

// simFlags is the parsed pimmu-sim flag set: the shared Runner flags
// plus the transfer parameters and maintenance verbs.
type simFlags struct {
	design  *string
	mb      *uint64
	dir     *string
	list    *bool
	cacheGC *bool
	runner  *harness.RunnerFlags
}

// registerFlags registers every pimmu-sim flag on fs; the shared Runner
// flags come from the harness helper so all three CLIs stay in sync.
func registerFlags(fs *flag.FlagSet) *simFlags {
	return &simFlags{
		design:  fs.String("design", "pim-mmu", "design point: base, base+d, base+d+h, pim-mmu, or all"),
		mb:      fs.Uint64("mb", 16, "total transfer size in MiB"),
		dir:     fs.String("dir", "to", "direction: to (DRAM->PIM) or from (PIM->DRAM)"),
		list:    fs.Bool("list", false, "list every harness experiment and exit"),
		cacheGC: fs.Bool("cache-gc", false, "delete stale-code-version entries from -cache-dir and exit"),
		runner:  harness.RegisterRunnerFlags(fs),
	}
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	if *f.list {
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.Name, e.Brief)
		}
		return
	}
	if *f.cacheGC {
		dir := f.runner.CacheDir()
		if dir == "" {
			fmt.Fprintln(os.Stderr, "pimmu-sim: -cache-gc requires -cache-dir")
			os.Exit(2)
		}
		st, err := resultcache.Prune(dir, resultcache.CodeVersion())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-sim: cache-gc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pimmu-sim: cache-gc: %v\n", st)
		return
	}
	runner, store, warns, err := f.runner.Runner(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-sim: warning: %s\n", w)
	}

	dir := core.DRAMToPIM
	if *f.dir == "from" {
		dir = core.PIMToDRAM
	} else if *f.dir != "to" {
		fmt.Fprintf(os.Stderr, "pimmu-sim: unknown direction %q\n", *f.dir)
		os.Exit(2)
	}

	var design system.Design
	if *f.design != "all" {
		if design, err = system.ParseDesign(*f.design); err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
			os.Exit(2)
		}
	}
	stopProf, err := f.runner.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}

	format, err := f.runner.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(2)
	}
	designs := []system.Design{design}
	if *f.design == "all" {
		designs = system.Designs()
	}
	ms := measureCached(runner, designs, dir, *f.mb)
	var render func(w io.Writer)
	if *f.design == "all" {
		render = func(w io.Writer) { renderAll(w, designs, ms, dir, *f.mb) }
	} else {
		render = func(w io.Writer) { renderOne(w, design, dir, ms[0]) }
	}
	if format == "json" {
		var text strings.Builder
		render(&text)
		res, err := api.NewResult("pimmu-sim", "", ms, text.String())
		if err == nil {
			res.Op = fmt.Sprintf("xfer design=%s dir=%v mb=%d", *f.design, dir, *f.mb)
			err = json.NewEncoder(os.Stdout).Encode(res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
			os.Exit(1)
		}
	} else {
		render(os.Stdout)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: %v\n", err)
		os.Exit(1)
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "pimmu-sim: cache: %v\n", store.Stats())
	}
}

// measurePlan enumerates one measurement job per design — pure planning,
// no simulation. Keys live under the pimmu-sim namespace, so the CLI's
// entries coexist with the harness experiments' in one cache directory.
func measurePlan(r *harness.Runner, designs []system.Design, dir core.Direction, mb uint64) harness.Plan {
	op := fmt.Sprintf("xfer dir=%v mb=%d", dir, mb)
	jobs := make([]harness.Job, len(designs))
	for i, d := range designs {
		jobs[i] = r.NewJob("pimmu-sim/v1", r.Config(d), op)
	}
	return harness.Plan{Experiment: "pimmu-sim", Jobs: jobs}
}

// measureCached computes the plan's measurements behind the runner's
// cache.
func measureCached(r *harness.Runner, designs []system.Design, dir core.Direction, mb uint64) []system.TransferMeasurement {
	p := measurePlan(r, designs, dir, mb)
	return harness.ComputePlan(r, p, func(i int, j harness.Job) system.TransferMeasurement {
		s := system.MustNew(j.Config)
		m := s.MeasureTransfer(dir, mb)
		r.ReportLaneStats(fmt.Sprintf("%v %v %d MiB", designs[i], dir, mb), s)
		return m
	})
}

// renderAll prints the Fig. 15-style comparison of the four design
// points' measurements.
func renderAll(w io.Writer, designs []system.Design, ms []system.TransferMeasurement, dir core.Direction, mb uint64) {
	fmt.Fprintf(w, "direction   %v, %d MiB per design point\n\n", dir, mb)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n",
		"design", "GB/s", "vs Base", "energy (J)", "MB/J")
	base := ms[0]
	for i, d := range designs {
		m := ms[i]
		fmt.Fprintf(w, "%-12v %12.2f %11.2fx %12.4f %12.1f\n",
			d, m.Res.Throughput()/1e9,
			m.Res.Throughput()/base.Res.Throughput(),
			m.Energy.Total(),
			energy.EfficiencyBytesPerJoule(m.Res.Bytes, m.Energy)/1e6)
	}
}

// renderOne prints the detailed single-design report.
func renderOne(w io.Writer, design system.Design, dir core.Direction, m system.TransferMeasurement) {
	res, b := m.Res, m.Energy

	fmt.Fprintf(w, "design      %v\n", design)
	fmt.Fprintf(w, "direction   %v\n", dir)
	fmt.Fprintf(w, "bytes       %d (%d MiB)\n", res.Bytes, res.Bytes>>20)
	fmt.Fprintf(w, "duration    %v\n", res.Duration)
	fmt.Fprintf(w, "throughput  %.2f GB/s\n", res.Throughput()/1e9)
	fmt.Fprintf(w, "energy      %.4f J (%.0f%% static)\n", b.Total(), 100*b.Static()/b.Total())
	fmt.Fprintf(w, "efficiency  %.1f MB/J\n", energy.EfficiencyBytesPerJoule(res.Bytes, b)/1e6)

	fmt.Fprintf(w, "DRAM        rd %d MiB, wr %d MiB\n", m.DRAMRead>>20, m.DRAMWritten>>20)
	fmt.Fprintf(w, "PIM         rd %d MiB, wr %d MiB\n", m.PIMRead>>20, m.PIMWritten>>20)
	for i, c := range m.PIMCh {
		fmt.Fprintf(w, "  pim ch%d   wr %6d KiB  row hits %.1f%%\n",
			i, c.BytesWritten>>10, 100*c.RowHitRate)
	}
}
