package main

import (
	"flag"
	"io"
	"testing"
)

// The serve binary's flag surface is its operational contract — a
// rename breaks every deployment script, so pin the names.
func TestServeFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-serve", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range []string{"addr", "jobs", "queue", "workers", "cache-dir", "cache", "smoke"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestServeFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := registerFlags(fs)
	err := fs.Parse([]string{"-addr", "127.0.0.1:0", "-jobs", "4", "-queue", "16",
		"-workers", "2", "-cache", "ro", "-smoke", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if *f.addr != "127.0.0.1:0" || *f.jobs != 4 || *f.queue != 16 ||
		*f.workers != 2 || *f.cache != "ro" || *f.smoke != "table1" {
		t.Errorf("flags not parsed: %+v", f)
	}
}
