// Command pimmu-serve exposes the experiment harness as a long-lived
// HTTP service: clients POST jobs — (experiment, scale, runner
// topology, cache mode) — and the server validates them against the
// harness registry, dedupes identical in-flight and completed
// submissions through the content-addressed result cache before they
// reach a worker, admission-controls a bounded worker pool, and
// streams per-job progress plus the final structured result.
//
// Usage:
//
//	pimmu-serve [-addr HOST:PORT] [-jobs N] [-queue N] [-workers N] [-cache-dir DIR] [-cache off|rw|ro] [-smoke EXPERIMENT]
//
// Endpoints (all bodies carry the serve/api schema stamp):
//
//	GET  /v1/experiments       the harness registry
//	POST /v1/jobs              submit one job (202 accepted, 200 deduped
//	                           or served from the store, 429 at capacity)
//	GET  /v1/jobs/{id}         lifecycle status
//	GET  /v1/jobs/{id}/result  the finished api.JobResult, verbatim bytes
//	GET  /v1/jobs/{id}/events  NDJSON progress stream until terminal
//
// -jobs bounds concurrently simulating jobs and -queue the accepted-
// but-not-yet-running backlog; submissions beyond jobs+queue are
// rejected with 429 so the load shows up at the client instead of as an
// unbounded queue. -workers sets the default per-job sweep parallelism
// (requests may override it). -cache-dir/-cache back the server with
// the same content-addressed store the CLIs use: completed serve jobs
// are stored whole (keyed topology-neutrally, so a result computed at
// one lane topology serves every other) and per-design-point results
// are shared with any CLI warming the same directory.
//
// -smoke EXPERIMENT boots the server on an ephemeral loopback port,
// drives one quick job through the real HTTP surface — submit, stream
// events, fetch the result — prints the result's text render, and
// exits; it is the self-test `make serve-smoke` runs.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/resultcache"
	"repro/internal/serve"
	"repro/internal/serve/api"
)

// serveFlags is the parsed pimmu-serve flag set.
type serveFlags struct {
	addr     *string
	jobs     *int
	queue    *int
	workers  *int
	cacheDir *string
	cache    *string
	smoke    *string
}

// registerFlags registers every pimmu-serve flag on fs.
func registerFlags(fs *flag.FlagSet) *serveFlags {
	return &serveFlags{
		addr:     fs.String("addr", "localhost:8080", "listen address"),
		jobs:     fs.Int("jobs", 2, "max concurrently simulating jobs"),
		queue:    fs.Int("queue", 8, "max accepted-but-not-running jobs before 429"),
		workers:  fs.Int("workers", 0, "default sweep workers per job (0 = all CPUs)"),
		cacheDir: fs.String("cache-dir", "", "content-addressed result cache directory (empty = memoryless)"),
		cache:    fs.String("cache", "rw", "cache mode for -cache-dir: off, rw, or ro"),
		smoke:    fs.String("smoke", "", "self-test: run EXPERIMENT once through the HTTP surface and exit"),
	}
}

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pimmu-serve: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	store, err := resultcache.OpenFlags(*f.cacheDir, *f.cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-serve: %v\n", err)
		os.Exit(2)
	}
	srv := serve.New(serve.Config{
		Store:     store,
		MaxActive: *f.jobs,
		MaxQueued: *f.queue,
		Workers:   *f.workers,
	})

	if *f.smoke != "" {
		if err := smoke(srv, *f.smoke); err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-serve: smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *f.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pimmu-serve: listening on http://%s (schema %s)\n",
		ln.Addr(), api.SchemaVersion)
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-serve: %v\n", err)
		os.Exit(1)
	}
}

// smoke drives one quick job of the named experiment through the real
// HTTP surface on an ephemeral loopback listener: submit, follow the
// event stream to a terminal state, fetch the result, print its text
// render. Any schema mismatch, failed job, or transport error is fatal
// — which is exactly what makes it a useful `make serve-smoke` gate.
func smoke(srv *serve.Server, experiment string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()

	st, err := postJob(base, api.JobRequest{
		Schema:     api.SchemaVersion,
		Experiment: experiment,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimmu-serve: smoke: %s accepted as %s (state %s, %d plan jobs)\n",
		experiment, st.ID, st.State, st.Progress.Total)

	if err := followEvents(base, st.ID); err != nil {
		return err
	}

	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		json.NewDecoder(resp.Body).Decode(&apiErr)
		return fmt.Errorf("result: HTTP %d: %s", resp.StatusCode, apiErr.Error)
	}
	var jr api.JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return fmt.Errorf("result: %w", err)
	}
	if err := api.CheckSchema(jr.Schema); err != nil {
		return fmt.Errorf("result: %w", err)
	}
	os.Stdout.WriteString(jr.Result.Text)
	return nil
}

// postJob submits one job and decodes the accepted/deduped status.
func postJob(base string, req api.JobRequest) (api.JobStatus, error) {
	var st api.JobStatus
	body, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		json.NewDecoder(resp.Body).Decode(&apiErr)
		return st, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, apiErr.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("submit: %w", err)
	}
	return st, nil
}

// followEvents consumes the job's NDJSON stream until a terminal event,
// echoing each transition to stderr.
func followEvents(base, id string) error {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.JobEvent
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("events: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pimmu-serve: smoke: %s %s %d/%d\n",
			ev.ID, ev.State, ev.Progress.Done, ev.Progress.Total)
		switch ev.State {
		case api.StateDone:
			return nil
		case api.StateFailed:
			return fmt.Errorf("job failed: %s", ev.Error)
		}
	}
}
