// Command pimmu-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pimmu-bench [-full] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro] <experiment>|all|list
//
// Experiments: table1 fig4 fig6 fig8 fig13a fig13b fig14 fig15a fig15b
// fig16 area headline. Quick sizes are the default; -full uses the
// paper's sizes (slow: the 256 MB sweeps simulate hundreds of millions
// of DRAM commands). Multi-design experiments fan their independent
// simulations across CPU cores; -workers caps the parallelism (1 forces
// the serial path, which produces byte-identical output). -shards
// additionally parallelizes inside each simulated machine by running its
// lane topology — one event lane per DDR4 channel, plus -core-lanes
// per-core host lanes with the LLC as the crossing boundary (the lever
// for the contender-heavy fig13 sweeps) — in conservative windows.
// auto sizes the pool to the host and lets the adaptive controller tune
// window thresholds per run. Output is byte-identical across all
// -shards counts >= 1 (auto included) and every -core-lanes count (0,
// the default serial engine, can break
// same-instant event ties differently on CPU-streaming workloads; see
// system.Config.Shards). -lane-stats prints each machine's per-lane
// fired/window/serial/mailbox counters to stderr after its run, so
// frontier serialization is visible without a profiler.
//
// -cache-dir enables the content-addressed result cache: every sweep job
// (one design point of one experiment) is keyed on (config fingerprint,
// op, code version) and served from disk when a prior run already
// computed it — which is what makes `-full` reruns and the nightly CI
// render incremental. Experiment tables are byte-identical warm or cold;
// the per-experiment hit/miss summary prints in the timing footer, which
// is not part of the deterministic artifact. -cache ro shares a cache
// directory without writing to it (e.g. a CI-owned cache).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/resultcache"
	"repro/internal/sweep"
	"repro/internal/system"
)

// cacheStore is the -cache-dir result cache (nil = off).
var cacheStore *resultcache.Store

func main() {
	full := flag.Bool("full", false, "use the paper's full experiment sizes")
	workers := flag.Int("workers", 0, "parallel simulations per sweep (0 = all cores, 1 = serial)")
	shards := flag.String("shards", "0", "event-engine shards per machine (0 = serial engine, >= 2 = parallel windows, auto = sized to this host)")
	coreLanes := flag.String("core-lanes", "0", "per-core event lanes per machine (requires -shards >= 1; auto = one per core)")
	laneStats := flag.Bool("lane-stats", false, "print per-lane engine counters to stderr after each machine's run")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = caching off)")
	cacheMode := flag.String("cache", "rw", "result-cache mode: off, rw, or ro")
	flag.Usage = usage
	flag.Parse()
	sweep.SetWorkers(*workers)
	shardsN, err := system.ParseLaneFlag(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: -shards: %v\n", err)
		os.Exit(2)
	}
	coreLanesN, err := system.ParseLaneFlag(*coreLanes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: -core-lanes: %v\n", err)
		os.Exit(2)
	}
	sh, cl, warns, err := system.NormalizeLaneFlags(shardsN, coreLanesN)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-bench: warning: %s\n", w)
	}
	harness.SetShards(sh)
	harness.SetCoreLanes(cl)
	if *laneStats {
		harness.SetLaneStats(os.Stderr)
	}
	cacheStore, err = resultcache.OpenFlags(*cacheDir, *cacheMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(2)
	}
	if cacheStore != nil {
		harness.SetCache(cacheStore)
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	sc := harness.Quick
	if *full {
		sc = harness.Full
	}
	name := flag.Arg(0)
	switch name {
	case "list":
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.Name, e.Brief)
		}
		return
	case "all":
		for _, e := range harness.All() {
			runOne(e, sc)
		}
		return
	}
	e, ok := harness.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "pimmu-bench: unknown experiment %q (try 'list')\n", name)
		os.Exit(2)
	}
	runOne(e, sc)
}

func runOne(e harness.Experiment, sc harness.Scale) {
	fmt.Printf("==== %s — %s (%s mode) ====\n", e.Name, e.Brief, sc)
	start := time.Now()
	before := cacheStore.Stats()
	e.Run(os.Stdout, sc)
	// The footer is timing/diagnostic output, outside the deterministic
	// experiment artifact — the tables above are byte-identical whether
	// the numbers below say "all hits" or "all misses".
	if cacheStore != nil {
		fmt.Printf("---- %s done in %v; cache: %v ----\n\n",
			e.Name, time.Since(start).Round(time.Millisecond), cacheStore.Stats().Sub(before))
		return
	}
	fmt.Printf("---- %s done in %v ----\n\n", e.Name, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pimmu-bench [-full] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro] <experiment>|all|list\n")
	flag.PrintDefaults()
}
