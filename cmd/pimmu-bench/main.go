// Command pimmu-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pimmu-bench [-full] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE] <experiment>|all|list
//
// Experiments: table1 fig4 fig6 fig8 fig13a fig13b fig14 fig15a fig15b
// fig16 area headline. Quick sizes are the default; -full uses the
// paper's sizes (slow: the 256 MB sweeps simulate hundreds of millions
// of DRAM commands). Multi-design experiments fan their independent
// simulations across CPU cores; -workers caps the parallelism (1 forces
// the serial path, which produces byte-identical output). -shards
// additionally parallelizes inside each simulated machine by running its
// lane topology — one event lane per DDR4 channel, plus -core-lanes
// per-core host lanes with the LLC as the crossing boundary (the lever
// for the contender-heavy fig13 sweeps) — in conservative windows.
// auto sizes the pool to the host and lets the adaptive controller tune
// window thresholds per run. Output is byte-identical across all
// -shards counts >= 1 (auto included) and every -core-lanes count (0,
// the default serial engine, can break
// same-instant event ties differently on CPU-streaming workloads; see
// system.Config.Shards). -lane-stats prints each machine's per-lane
// fired/window/serial/mailbox counters to stderr after its run, so
// frontier serialization is visible without a profiler.
//
// -cache-dir enables the content-addressed result cache: every sweep job
// (one design point of one experiment) is keyed on (config fingerprint,
// op, code version) and served from disk when a prior run already
// computed it — which is what makes `-full` reruns and the nightly CI
// render incremental. The fingerprint excludes -shards, -core-lanes and
// -workers: those knobs change how fast a simulation runs, never what it
// computes, so a cache warmed at one lane topology serves every other
// (the plain -shards 0 engine keys separately — it may order
// same-instant event ties differently). Experiment tables are
// byte-identical warm or cold; the per-experiment hit/miss summary
// prints in the timing footer, which is not part of the deterministic
// artifact. -cache ro shares a cache directory without writing to it
// (e.g. a CI-owned cache).
//
// -cpuprofile and -memprofile write pprof profiles of the run (see
// `make profile` for the canonical invocation).
//
// -format json replaces the rendered tables with one serve/api
// ExperimentResult per experiment (NDJSON on stdout): the structured
// per-design-point results plus the text render as a field — the same
// payload pimmu-serve returns, so anything consuming the server's API
// consumes this CLI unchanged. Timing footers move to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/resultcache"
)

// benchFlags is the parsed pimmu-bench flag set: the shared Runner flags
// plus the bench-only -full.
type benchFlags struct {
	full   *bool
	runner *harness.RunnerFlags
}

// registerFlags registers every pimmu-bench flag on fs; the shared
// Runner flags come from the harness helper so all three CLIs stay in
// sync.
func registerFlags(fs *flag.FlagSet) *benchFlags {
	return &benchFlags{
		full:   fs.Bool("full", false, "use the paper's full experiment sizes"),
		runner: harness.RegisterRunnerFlags(fs),
	}
}

// cacheStore is the -cache-dir result cache (nil = off).
var cacheStore *resultcache.Store

func main() {
	f := registerFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()
	runner, store, warns, err := f.runner.Runner(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(2)
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-bench: warning: %s\n", w)
	}
	cacheStore = store
	format, err := f.runner.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	sc := harness.Quick
	if *f.full {
		sc = harness.Full
	}
	name := flag.Arg(0)
	if name == "list" {
		for _, e := range harness.All() {
			fmt.Printf("  %-9s %s\n", e.Name, e.Brief)
		}
		return
	}
	exps := harness.All()
	if name != "all" {
		e, err := harness.Lookup(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}
	stopProf, err := f.runner.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(2)
	}
	for _, e := range exps {
		if err := runOne(runner, e, sc, format); err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-bench: %v\n", err)
		os.Exit(1)
	}
}

// runOne computes one experiment through the structured-result path and
// prints it in the selected format: text writes the header, the
// rendered table (the Text field of the structured result — the same
// bytes the pre-structured render produced), and the timing footer;
// json writes one serve/api ExperimentResult as an NDJSON line to
// stdout, with the timing footer on stderr.
func runOne(r *harness.Runner, e harness.Experiment, sc harness.Scale, format string) error {
	start := time.Now()
	before := cacheStore.Stats()
	if format == "json" {
		res, err := harness.ComputeResult(r, e, sc)
		if err != nil {
			return err
		}
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pimmu-bench: %s done in %v; cache: %v\n",
			e.Name, time.Since(start).Round(time.Millisecond), cacheStore.Stats().Sub(before))
		return nil
	}
	fmt.Printf("==== %s — %s (%s mode) ====\n", e.Name, e.Brief, sc)
	res, err := harness.ComputeResult(r, e, sc)
	if err != nil {
		return err
	}
	os.Stdout.WriteString(res.Text)
	// The footer is timing/diagnostic output, outside the deterministic
	// experiment artifact — the tables above are byte-identical whether
	// the numbers below say "all hits" or "all misses".
	if cacheStore != nil {
		fmt.Printf("---- %s done in %v; cache: %v ----\n\n",
			e.Name, time.Since(start).Round(time.Millisecond), cacheStore.Stats().Sub(before))
		return nil
	}
	fmt.Printf("---- %s done in %v ----\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pimmu-bench [-full] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE] <experiment>|all|list\n")
	flag.PrintDefaults()
}
