package main

import (
	"flag"
	"io"
	"testing"

	"repro/internal/harness"
)

// Every CLI registers the same shared Runner flag set.
func TestSharedRunnerFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-bench", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range harness.RunnerFlagNames() {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestFlagsParseAndResolve(t *testing.T) {
	fs := flag.NewFlagSet("pimmu-bench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := registerFlags(fs)
	err := fs.Parse([]string{"-full", "-workers", "2", "-shards", "auto",
		"-core-lanes", "4", "-lane-stats", "-cache", "off", "all"})
	if err != nil {
		t.Fatal(err)
	}
	if !*f.full {
		t.Error("-full not parsed")
	}
	r, store, _, err := f.runner.Runner(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if store != nil || r.Cache != nil {
		t.Error("-cache off still opened a store")
	}
	if r.Workers != 2 || r.LaneStats == nil {
		t.Errorf("runner not resolved from flags: %+v", r)
	}
}
