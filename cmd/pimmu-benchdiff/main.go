// Command pimmu-benchdiff compares two benchmark captures (the test2json
// streams `make bench` writes to BENCH_*.json, or plain `go test -bench`
// text) and fails when the new run regresses against the baseline:
//
//   - ns/op above the baseline by more than -max-regress-pct (default
//     20%) is a time regression;
//   - a benchmark whose baseline runs allocation-free (0 allocs/op — the
//     engine's hot-path contract) fails on ANY allocation;
//   - a benchmark that allocates in the baseline (the whole-machine
//     setup benches) fails when allocs/op grow by more than
//     -max-alloc-regress-pct (default 10%; iteration-count amortization
//     makes small wobble normal);
//   - a baseline benchmark missing from the new capture fails — a
//     silently vanished benchmark must not read as a pass.
//
// Benchmarks are matched by (package, name) with the -N GOMAXPROCS
// suffix stripped, so captures from different machines align. When a
// capture holds several runs of the same benchmark (`go test -count=N`,
// wired through as `make bench BENCH_COUNT=N`), the minimum ns/op run
// is kept: min-over-N is the standard way to strip scheduler and
// frequency noise from a shared runner, and both sides of the diff get
// the same treatment. CI runs this as `make bench-compare` against the
// committed baselines.
//
// Usage:
//
//	pimmu-benchdiff [-max-regress-pct P] [-max-alloc-regress-pct P] old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	maxRegress := flag.Float64("max-regress-pct", 20, "allowed ns/op increase in percent (<= 0 disables the time gate)")
	maxAllocRegress := flag.Float64("max-alloc-regress-pct", 10, "allowed allocs/op increase in percent for benchmarks that allocate at baseline")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: pimmu-benchdiff [-max-regress-pct P] [-max-alloc-regress-pct P] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := readCapture(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRes, err := readCapture(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if len(oldRes) == 0 {
		fatal(fmt.Errorf("baseline %s contains no benchmark results", flag.Arg(0)))
	}
	if failed := compare(oldRes, newRes, *maxRegress, *maxAllocRegress); failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pimmu-benchdiff: %v\n", err)
	os.Exit(2)
}

// result is one benchmark's parsed metrics.
type result struct {
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool
}

// benchLine matches a completed benchmark result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix is the trailing -N a parallel run appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// readCapture parses a capture file into (package/name) -> result.
// test2json streams split one result line across several "output"
// events, so output is concatenated per package before line parsing;
// files that are not test2json parse as plain benchmark text under the
// empty package name.
func readCapture(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	byPkg := map[string]*strings.Builder{}
	appendOut := func(pkg, out string) {
		b := byPkg[pkg]
		if b == nil {
			b = &strings.Builder{}
			byPkg[pkg] = b
		}
		b.WriteString(out)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var ev struct {
			Action  string
			Package string
			Output  string
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action == "" {
			// Not a test2json stream: treat the whole line as raw text.
			appendOut("", line+"\n")
			continue
		}
		if ev.Action == "output" {
			appendOut(ev.Package, ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]result{}
	for pkg, b := range byPkg {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
			r, ok := parseMetrics(m[2])
			if !ok {
				continue
			}
			// -count=N repeats a benchmark; keep the fastest run.
			key := pkg + "/" + name
			if prev, seen := out[key]; seen && prev.NsPerOp <= r.NsPerOp {
				continue
			}
			out[key] = r
		}
	}
	return out, nil
}

// parseMetrics reads the "value unit" pairs after the iteration count.
func parseMetrics(s string) (result, bool) {
	fields := strings.Fields(s)
	var r result
	seenNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.HasAllocs = true
		}
	}
	return r, seenNs
}

// compare prints one line per baseline benchmark and reports whether any
// gate failed.
func compare(oldRes, newRes map[string]result, maxRegressPct, maxAllocRegressPct float64) bool {
	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fail("%s: present in baseline but missing from new capture", name)
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		fmt.Printf("%-70s %12.4g -> %12.4g ns/op (%+.1f%%)  %g -> %g allocs/op\n",
			name, o.NsPerOp, n.NsPerOp, 100*(ratio-1), o.AllocsPerOp, n.AllocsPerOp)
		if maxRegressPct > 0 && ratio > 1+maxRegressPct/100 {
			fail("%s: ns/op regressed %.1f%% (limit %.0f%%)", name, 100*(ratio-1), maxRegressPct)
		}
		if o.HasAllocs && n.HasAllocs {
			if o.AllocsPerOp == 0 && n.AllocsPerOp > 0 {
				fail("%s: allocation-free baseline now allocates %g allocs/op", name, n.AllocsPerOp)
			}
			if o.AllocsPerOp > 0 && n.AllocsPerOp > o.AllocsPerOp*(1+maxAllocRegressPct/100) {
				fail("%s: allocs/op regressed %.1f%% (limit %.0f%%)", name,
					100*(n.AllocsPerOp/o.AllocsPerOp-1), maxAllocRegressPct)
			}
		}
	}
	if failed {
		fmt.Println("benchmark gate: FAILED")
	} else {
		fmt.Printf("benchmark gate: ok (%d benchmarks within limits)\n", len(names))
	}
	return failed
}
