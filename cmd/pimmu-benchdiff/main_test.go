package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeCapture stores a capture file; test2json form when json is true.
func writeCapture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{"Action":"start","Package":"repro/internal/sim"}
{"Action":"output","Package":"repro/internal/sim","Output":"goos: linux\n"}
{"Action":"output","Package":"repro/internal/sim","Output":"BenchmarkEngineFast    \t"}
{"Action":"output","Package":"repro/internal/sim","Output":"1000\t        10.0 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"repro/internal/sim","Output":"BenchmarkEngineSetup-8 \t100\t  1000 ns/op\t  640 B/op\t    100 allocs/op\n"}
`

func TestReadCaptureSplitOutputAndSuffix(t *testing.T) {
	res, err := readCapture(writeCapture(t, "base.json", baselineJSON))
	if err != nil {
		t.Fatal(err)
	}
	fast, ok := res["repro/internal/sim/BenchmarkEngineFast"]
	if !ok || fast.NsPerOp != 10 || fast.AllocsPerOp != 0 || !fast.HasAllocs {
		t.Fatalf("split-output result = %+v, %v", fast, ok)
	}
	// The -8 GOMAXPROCS suffix is stripped so captures align across
	// machines.
	setup, ok := res["repro/internal/sim/BenchmarkEngineSetup"]
	if !ok || setup.NsPerOp != 1000 || setup.AllocsPerOp != 100 {
		t.Fatalf("suffixed result = %+v, %v", setup, ok)
	}
}

// TestReadCaptureKeepsMinOverRepeats pins the -count=N treatment: a
// capture holding several runs of one benchmark resolves to the
// fastest run, regardless of order in the stream.
func TestReadCaptureKeepsMinOverRepeats(t *testing.T) {
	capture := `{"Action":"output","Package":"p","Output":"BenchmarkEngineR-8 \t100\t  30.0 ns/op\t  0 B/op\t  0 allocs/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkEngineR-8 \t100\t  12.0 ns/op\t  0 B/op\t  0 allocs/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkEngineR-8 \t100\t  20.0 ns/op\t  0 B/op\t  0 allocs/op\n"}
`
	res, err := readCapture(writeCapture(t, "repeat.json", capture))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res["p/BenchmarkEngineR"]
	if !ok || r.NsPerOp != 12.0 {
		t.Fatalf("min-over-repeats result = %+v, %v; want 12 ns/op", r, ok)
	}
}

func TestReadCapturePlainText(t *testing.T) {
	res, err := readCapture(writeCapture(t, "plain.txt",
		"goos: linux\nBenchmarkEngineX-4   500   20.5 ns/op   0 B/op   0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := res["/BenchmarkEngineX"]; !ok || r.NsPerOp != 20.5 {
		t.Fatalf("plain-text result = %+v, %v", r, ok)
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]result{
		"p/BenchmarkZeroAlloc": {NsPerOp: 10, AllocsPerOp: 0, HasAllocs: true},
		"p/BenchmarkSetup":     {NsPerOp: 1000, AllocsPerOp: 100, HasAllocs: true},
	}
	cases := []struct {
		name string
		niu  map[string]result
		fail bool
	}{
		{"identical", base, false},
		{"within limits", map[string]result{
			"p/BenchmarkZeroAlloc": {NsPerOp: 11.5, AllocsPerOp: 0, HasAllocs: true},
			"p/BenchmarkSetup":     {NsPerOp: 1100, AllocsPerOp: 105, HasAllocs: true},
		}, false},
		{"time regression", map[string]result{
			"p/BenchmarkZeroAlloc": {NsPerOp: 13, AllocsPerOp: 0, HasAllocs: true},
			"p/BenchmarkSetup":     base["p/BenchmarkSetup"],
		}, true},
		{"new allocation on zero-alloc path", map[string]result{
			"p/BenchmarkZeroAlloc": {NsPerOp: 10, AllocsPerOp: 1, HasAllocs: true},
			"p/BenchmarkSetup":     base["p/BenchmarkSetup"],
		}, true},
		{"alloc growth past limit", map[string]result{
			"p/BenchmarkZeroAlloc": base["p/BenchmarkZeroAlloc"],
			"p/BenchmarkSetup":     {NsPerOp: 1000, AllocsPerOp: 120, HasAllocs: true},
		}, true},
		{"vanished benchmark", map[string]result{
			"p/BenchmarkZeroAlloc": base["p/BenchmarkZeroAlloc"],
		}, true},
	}
	for _, tc := range cases {
		if got := compare(base, tc.niu, 20, 10); got != tc.fail {
			t.Errorf("%s: compare failed=%v, want %v", tc.name, got, tc.fail)
		}
	}
	// Disabling the time gate admits any slowdown but still enforces
	// allocation-freedom.
	slow := map[string]result{
		"p/BenchmarkZeroAlloc": {NsPerOp: 100, AllocsPerOp: 0, HasAllocs: true},
		"p/BenchmarkSetup":     {NsPerOp: 99999, AllocsPerOp: 100, HasAllocs: true},
	}
	if compare(base, slow, 0, 10) {
		t.Error("disabled time gate still failed on slowdown")
	}
}
