// Command pimmu-trace records the DDR4 command stream of a transfer and
// prints it (head and tail) together with per-command-type counts and a
// protocol-check verdict. Useful for inspecting exactly what PIM-MS
// issues to each channel versus the baseline.
//
// Usage:
//
//	pimmu-trace [-design base|pim-mmu] [-kb N] [-channel N] [-n N] [-side pim|dram]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/system"
)

type recorder struct {
	events []dram.CmdEvent
	counts map[dram.Cmd]int
}

func (r *recorder) Command(_ int, e dram.CmdEvent) {
	r.events = append(r.events, e)
	r.counts[e.Cmd]++
}

func main() {
	designFlag := flag.String("design", "pim-mmu", "design point: base or pim-mmu")
	kb := flag.Uint64("kb", 256, "total transfer size in KiB")
	channel := flag.Int("channel", 0, "channel to trace")
	n := flag.Int("n", 24, "commands to print from head and tail")
	side := flag.String("side", "pim", "device set to trace: pim or dram")
	flag.Parse()

	design, err := system.ParseDesign(*designFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-trace: %v\n", err)
		os.Exit(2)
	}

	cfg := system.DefaultConfig(design)
	s := system.MustNew(cfg)
	set := s.Mem.PIM
	setCfg := cfg.Mem.PIM
	if *side == "dram" {
		set = s.Mem.DRAM
		setCfg = cfg.Mem.DRAM
	} else if *side != "pim" {
		fmt.Fprintf(os.Stderr, "pimmu-trace: unknown side %q\n", *side)
		os.Exit(2)
	}
	if *channel < 0 || *channel >= setCfg.Geometry.Channels {
		fmt.Fprintf(os.Stderr, "pimmu-trace: channel %d out of range\n", *channel)
		os.Exit(2)
	}

	rec := &recorder{counts: map[dram.Cmd]int{}}
	chk := dram.NewChecker(setCfg)
	set.Channel(*channel).Observe(multi{rec, chk})

	per := (*kb << 10) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	res := s.RunTransfer(s.TransferOp(core.DRAMToPIM, s.Cfg.PIM.NumCores(), per))

	fmt.Printf("design %v, %v, %d KiB total, %.2f GB/s\n",
		design, core.DRAMToPIM, res.Bytes>>10, res.Throughput()/1e9)
	fmt.Printf("%s channel %d: %d commands  ACT=%d PRE=%d RD=%d WR=%d REF=%d\n",
		*side, *channel, len(rec.events),
		rec.counts[dram.CmdACT], rec.counts[dram.CmdPRE],
		rec.counts[dram.CmdRD], rec.counts[dram.CmdWR], rec.counts[dram.CmdREF])
	if v := chk.Violations(); len(v) > 0 {
		fmt.Printf("PROTOCOL VIOLATIONS: %d (first: %s)\n", len(v), v[0])
	} else {
		fmt.Println("protocol check: clean")
	}

	head := *n
	if head > len(rec.events) {
		head = len(rec.events)
	}
	fmt.Println("-- head --")
	for _, e := range rec.events[:head] {
		fmt.Println(" ", e)
	}
	if len(rec.events) > 2**n {
		fmt.Println("  ...")
		fmt.Println("-- tail --")
		for _, e := range rec.events[len(rec.events)-*n:] {
			fmt.Println(" ", e)
		}
	}
}

type multi [2]dram.Observer

func (m multi) Command(ch int, e dram.CmdEvent) {
	m[0].Command(ch, e)
	m[1].Command(ch, e)
}
