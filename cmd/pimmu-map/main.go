// Command pimmu-map explains the memory mapping functions: it decodes
// physical addresses under the locality-centric and MLP-centric mappings
// side by side, and shows how a sequential stream spreads (or fails to
// spread) across the DRAM subsystem — the intuition behind Fig. 7/8 and
// HetMap.
//
// Usage:
//
//	pimmu-map [-addr hex]...      decode specific addresses
//	pimmu-map -stream N           decode the first N lines of a stream
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/addrmap"
	"repro/internal/dram"
	"repro/internal/mem"
)

func main() {
	stream := flag.Int("stream", 0, "decode the first N sequential lines")
	flag.Parse()

	g := dram.DefaultConfig().Geometry
	loc := addrmap.NewLocality(g)
	mlp := addrmap.NewMLP(g)
	nohash := addrmap.NewMLP(g, addrmap.WithoutXORHash())

	fmt.Printf("geometry: %v\n", g)
	fmt.Println("locality-centric (PIM-BIOS):  MSB | Ch Ra Bg Bk Ro Co | LSB")
	fmt.Println("MLP-centric (conventional):   MSB | Ro Bk BgHi Ra CoHi BgLo Ch CoLo | LSB, XOR-hashed")
	fmt.Println()

	decode := func(a uint64) {
		fmt.Printf("0x%012x  locality: %-24v  mlp: %-24v  mlp-nohash: %v\n",
			a, loc.Map(a), mlp.Map(a), nohash.Map(a))
	}

	if *stream > 0 {
		fmt.Printf("sequential stream, %d lines:\n", *stream)
		for i := 0; i < *stream; i++ {
			decode(uint64(i) * mem.LineBytes)
		}
		fmt.Println()
		fmt.Println("note how the MLP mapping rotates channels every 256 B while the")
		fmt.Println("locality mapping stays in channel 0 for the first 8 GiB.")
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"0", "100", "10000", "40000000", "200000000"}
	}
	for _, s := range args {
		a, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimmu-map: bad hex address %q\n", s)
			os.Exit(2)
		}
		decode(mem.LineAlign(a))
	}
}
