package main

import (
	"flag"
	"io"
	"testing"

	"repro/internal/harness"
)

// Every CLI registers the same shared Runner flag set (here on the
// replay and load subcommands' shared block).
func TestSharedRunnerFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	registerFlags(fs)
	for _, name := range harness.RunnerFlagNames() {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestFlagsParseAndResolve(t *testing.T) {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := registerFlags(fs)
	err := fs.Parse([]string{"-inflight", "32", "-noncacheable",
		"-shards", "1", "-cache", "off", "trace.bin"})
	if err != nil {
		t.Fatal(err)
	}
	if *f.inflight != 32 || !*f.noncache {
		t.Error("replay flags not parsed")
	}
	r, store, _, err := f.runner.Runner(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		t.Error("-cache off still opened a store")
	}
	if r.Shards != 1 {
		t.Errorf("runner not resolved from flags: %+v", r)
	}
}

func TestParseGaps(t *testing.T) {
	gaps, err := parseGaps("32, 16,8")
	if err != nil || len(gaps) != 3 {
		t.Fatalf("parseGaps = %v, %v", gaps, err)
	}
	if _, err := parseGaps("4,-1"); err == nil {
		t.Error("negative gap accepted")
	}
	if _, err := parseGaps(""); err == nil {
		t.Error("empty axis accepted")
	}
}
