// Command pimmu-replay records, generates, inspects and replays memory
// traces at the mem.Port boundary.
//
// Usage:
//
//	pimmu-replay record  [-design D] [-kb N] [-dir to|from] [-text] -o FILE
//	pimmu-replay gen     [-pattern P] [-n N] [-gap NS] [-seed S] [-text] -o FILE
//	pimmu-replay inspect [-n N] FILE
//	pimmu-replay replay  [-design D|all] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-inflight N] [-noncacheable] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE] FILE
//	pimmu-replay load    [-process fixed|poisson|burst] [-pattern P] [-gaps NS,...] [-n N] [-slo-ns N] [-seed S] [... replay's format, topology, cache and profile flags]
//
// record captures every request a transfer presents to the memory port
// of the chosen design; gen synthesizes one of the built-in application
// patterns (stream, strided, chase, mixed, zipf); inspect prints a
// trace's summary and head/tail records; replay injects a trace into a
// fresh machine (or, with -design all, into every design point in
// parallel) at its recorded inter-arrival times and reports bandwidth
// and latency. Replays of the same trace are bit-identical across runs,
// across -workers counts, across -shards counts >= 1 (auto included)
// and across every -core-lanes count (-shards runs each machine's lane
// topology — one event lane per DDR4 channel plus -core-lanes per-core
// host lanes — in conservative parallel windows; auto sizes the pool to
// the host with adaptive window tuning; 0, the default serial engine,
// can break same-instant event ties differently on some workloads — see
// system.Config.Shards). -lane-stats dumps each machine's per-lane
// event counters to stderr after its replay; cache hits skip the dump.
//
// load sweeps an open-loop arrival process (fixed-rate, poisson, or
// bursty on/off) over an offered-load axis on Base and PIM-MMU: unlike
// replay, arrivals accrue on the simulated clock regardless of memory
// backpressure, so each point reports the end-to-end latency tail
// (p50/p99/p99.9, arrival to completion) and the p99 queueing delay at
// that offered load, plus the SLO knee — the maximum offered load whose
// p99 meets -slo-ns. The same determinism and caching contracts as
// replay apply.
//
// replay's and load's -cache-dir enables the content-addressed result cache: each
// (machine fingerprint, trace identity, replay config, code version)
// result is served from disk when already computed. The trace identity
// is a digest of the canonical binary encoding of the records, so the
// same workload hits whether it was stored as text or binary, and any
// record change forces a recompute. The machine fingerprint excludes
// -shards, -core-lanes and -workers — they change execution speed,
// never results — so a cache warmed at one lane topology serves every
// other (the plain -shards 0 engine keys separately). The report is
// byte-identical warm or cold; the hit/miss summary goes to stderr.
//
// replay and load also accept -cpuprofile and -memprofile, writing
// pprof profiles that cover the replayed simulations.
//
// replay's and load's -format json replaces the text report with one
// serve/api ExperimentResult NDJSON line: the structured results plus
// the text report in the Text field — the same wire shape pimmu-serve
// returns.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mem"
	"repro/internal/resultcache"
	"repro/internal/serve/api"
	"repro/internal/system"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "pimmu-replay: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimmu-replay: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  pimmu-replay record  [-design D] [-kb N] [-dir to|from] [-text] -o FILE
  pimmu-replay gen     [-pattern P] [-n N] [-gap NS] [-seed S] [-text] -o FILE
  pimmu-replay inspect [-n N] FILE
  pimmu-replay replay  [-design D|all] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-inflight N] [-noncacheable] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE] FILE
  pimmu-replay load    [-process fixed|poisson|burst] [-pattern P] [-gaps NS,NS,...] [-n N] [-slo-ns N] [-seed S] [-format text|json] [-workers N] [-shards N|auto] [-core-lanes N|auto] [-lane-stats] [-inflight N] [-noncacheable] [-cache-dir DIR] [-cache off|rw|ro] [-cpuprofile FILE] [-memprofile FILE]
`)
}

// replayFlags is the shared flag block of the replay and load
// subcommands: the Runner flags every CLI registers, plus the memory
// port knobs.
type replayFlags struct {
	inflight *int
	noncache *bool
	runner   *harness.RunnerFlags
}

// registerFlags registers the replay/load shared flags on fs; the
// Runner flags come from the harness helper so all three CLIs stay in
// sync.
func registerFlags(fs *flag.FlagSet) *replayFlags {
	return &replayFlags{
		inflight: fs.Int("inflight", 64, "max outstanding line requests"),
		noncache: fs.Bool("noncacheable", false, "bypass the LLC for DRAM-region requests"),
		runner:   harness.RegisterRunnerFlags(fs),
	}
}

// runner resolves the shared flags, printing warnings under the CLI
// prefix.
func (f *replayFlags) newRunner() (*harness.Runner, *resultcache.Store, error) {
	runner, store, warns, err := f.runner.Runner(os.Stderr)
	if err != nil {
		return nil, nil, err
	}
	for _, w := range warns {
		fmt.Fprintf(os.Stderr, "pimmu-replay: warning: %s\n", w)
	}
	return runner, store, nil
}

// emit prints one computed result in the selected -format: text runs
// render straight to stdout; json wraps the structured results and the
// render of exactly those results in a serve/api ExperimentResult — the
// wire shape pimmu-serve returns — as one NDJSON line.
func emit(format, experiment, op string, results any, render func(io.Writer)) error {
	if format != "json" {
		render(os.Stdout)
		return nil
	}
	var text strings.Builder
	render(&text)
	res, err := api.NewResult(experiment, "", results, text.String())
	if err != nil {
		return err
	}
	res.Op = op
	return json.NewEncoder(os.Stdout).Encode(res)
}

// cmdRecord runs one transfer with a recorder tapped onto the memory
// port and writes the captured stream.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	designFlag := fs.String("design", "pim-mmu", "design point: base, base+d, base+d+h, pim-mmu")
	kb := fs.Uint64("kb", 256, "total transfer size in KiB")
	dirFlag := fs.String("dir", "to", "direction: to (DRAM->PIM) or from (PIM->DRAM)")
	out := fs.String("o", "", "output trace file (required)")
	text := fs.Bool("text", false, "write the human-readable text form")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -o FILE is required")
	}
	design, err := system.ParseDesign(*designFlag)
	if err != nil {
		return err
	}
	dir := core.DRAMToPIM
	if *dirFlag == "from" {
		dir = core.PIMToDRAM
	} else if *dirFlag != "to" {
		return fmt.Errorf("record: unknown direction %q", *dirFlag)
	}

	s := system.MustNew(system.DefaultConfig(design))
	rec := s.RecordTrace()
	per := (*kb << 10) / uint64(s.Cfg.PIM.NumCores()) &^ 63
	if per < 64 {
		per = 64
	}
	res := s.RunTransfer(s.TransferOp(dir, s.Cfg.PIM.NumCores(), per))
	s.StopTrace()

	if err := trace.WriteFile(*out, rec.Records(), *text); err != nil {
		return err
	}
	fmt.Printf("recorded %d requests over %v (%v, %v, %.2f GB/s) -> %s\n",
		rec.Len(), trace.Duration(rec.Records()), design, dir, res.Throughput()/1e9, *out)
	return nil
}

// cmdGen synthesizes a built-in pattern and writes it.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	pattern := fs.String("pattern", "stream", "stream, strided, chase, mixed, or zipf")
	n := fs.Int("n", 1<<14, "records to generate")
	gapNS := fs.Int64("gap", 1, "inter-arrival gap in nanoseconds")
	seed := fs.Uint64("seed", 1, "PRNG seed for the randomized patterns")
	out := fs.String("o", "", "output trace file (required)")
	text := fs.Bool("text", false, "write the human-readable text form")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o FILE is required")
	}
	cfg := trace.DefaultGenConfig()
	cfg.Records = *n
	cfg.Gap = clock.Picos(*gapNS) * clock.Nanosecond
	cfg.Seed = *seed
	recs, err := trace.Generate(trace.Pattern(*pattern), cfg)
	if err != nil {
		return err
	}
	if err := trace.WriteFile(*out, recs, *text); err != nil {
		return err
	}
	sum := trace.Summarize(recs)
	fmt.Printf("generated %s: %d records, %d reads / %d writes, %v span -> %s\n",
		*pattern, sum.Records, sum.Reads, sum.Writes, sum.Duration, *out)
	return nil
}

// cmdInspect prints a trace summary and its head/tail records.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	n := fs.Int("n", 8, "records to print from head and tail")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: want exactly one trace file")
	}
	recs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *n < 0 {
		*n = 0
	}
	sum := trace.Summarize(recs)
	fmt.Printf("records   %d (%d reads, %d writes, %d PIM-region)\n",
		sum.Records, sum.Reads, sum.Writes, sum.PIMRecords)
	fmt.Printf("bytes     %d read, %d written\n", sum.BytesRead, sum.BytesWritten)
	fmt.Printf("span      %v issue window\n", sum.Duration)
	fmt.Printf("addresses 0x%x .. 0x%x\n", sum.MinAddr, sum.MaxAddr)
	head := *n
	if head > len(recs) {
		head = len(recs)
	}
	fmt.Println("-- head --")
	for _, r := range recs[:head] {
		fmt.Println(" ", r)
	}
	if len(recs) > 2**n {
		fmt.Println("  ...")
		fmt.Println("-- tail --")
		for _, r := range recs[len(recs)-*n:] {
			fmt.Println(" ", r)
		}
	}
	return nil
}

// cmdReplay injects a trace into one design point, or sweeps all four
// in parallel.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	designFlag := fs.String("design", "pim-mmu", "design point, or all")
	f := registerFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: want exactly one trace file")
	}
	runner, store, err := f.newRunner()
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	format, err := f.runner.Format()
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	recs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := trace.DefaultReplayConfig()
	cfg.MaxInFlight = *f.inflight
	cfg.Cacheable = !*f.noncache
	defer func() {
		if store != nil {
			fmt.Fprintf(os.Stderr, "pimmu-replay: cache: %v\n", store.Stats())
		}
	}()
	// The trace identity digests the records' canonical binary encoding,
	// so a key is independent of the on-disk trace form but tied to every
	// record.
	traceID, err := traceIdentity(recs)
	if err != nil {
		return err
	}
	stopProf, err := f.runner.StartProfiles()
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	op := fmt.Sprintf("trace=%s rcfg=%s", traceID, resultcache.Canonical(cfg))
	plan := func(designs []system.Design) harness.Plan {
		jobs := make([]harness.Job, len(designs))
		for i, d := range designs {
			jobs[i] = runner.NewJob("pimmu-replay/v1", runner.Config(d), op)
		}
		return harness.Plan{Experiment: "pimmu-replay", Jobs: jobs}
	}
	run := func(i int, j harness.Job) trace.Result {
		return replayOn(runner, j, recs, cfg)
	}

	if *designFlag == "all" {
		designs := system.Designs()
		results := harness.ComputePlan(runner, plan(designs), run)
		render := func(w io.Writer) {
			fmt.Fprintf(w, "%d records, max %d in flight\n\n", len(recs), cfg.MaxInFlight)
			fmt.Fprintf(w, "%-12s %12s %12s %18s %12s %12s\n",
				"design", "GB/s", "avg (ns)", "p50/p95/p99 (ns)", "retries", "slip")
			for i, d := range designs {
				r := results[i]
				fmt.Fprintf(w, "%-12v %12.2f %12.0f %18s %12d %12v\n",
					d, r.Throughput()/1e9, r.AvgLatency().Nanoseconds(),
					fmt.Sprintf("%.0f/%.0f/%.0f",
						r.Latency.P50().Nanoseconds(), r.Latency.P95().Nanoseconds(), r.Latency.P99().Nanoseconds()),
					r.Retries, r.Slip)
			}
		}
		if err := emit(format, "pimmu-replay", "design=all "+op, results, render); err != nil {
			return err
		}
		return stopProf()
	}

	design, err := system.ParseDesign(*designFlag)
	if err != nil {
		return err
	}
	r := harness.ComputePlan(runner, plan([]system.Design{design}), run)[0]
	render := func(w io.Writer) {
		fmt.Fprintf(w, "design     %v\n", design)
		fmt.Fprintf(w, "records    %d (%d line requests)\n", len(recs), r.Issued)
		fmt.Fprintf(w, "bytes      %d read, %d written\n", r.BytesRead, r.BytesWritten)
		fmt.Fprintf(w, "duration   %v\n", r.Duration())
		fmt.Fprintf(w, "throughput %.2f GB/s\n", r.Throughput()/1e9)
		fmt.Fprintf(w, "latency    %v avg, p50 <= %v, p95 <= %v, p99 <= %v\n",
			r.AvgLatency(), r.Latency.P50(), r.Latency.P95(), r.Latency.P99())
		fmt.Fprintf(w, "pressure   %d retries, %v max slip behind the trace clock\n", r.Retries, r.Slip)
	}
	if err := emit(format, "pimmu-replay", fmt.Sprintf("design=%v %s", design, op), r, render); err != nil {
		return err
	}
	return stopProf()
}

// cmdLoad sweeps an open-loop arrival process over an offered-load axis
// on Base and PIM-MMU and renders the latency-vs-load curve with its
// SLO knee. Unlike replay, there is no trace file: the synthetic
// pattern supplies addresses, the arrival process supplies timing.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	process := fs.String("process", "poisson", "arrival process: fixed, poisson, or burst")
	pattern := fs.String("pattern", "mixed", "address pattern: stream, strided, chase, mixed, or zipf")
	gapsFlag := fs.String("gaps", "32,16,8,4,2,1", "offered-load axis as mean inter-arrival gaps in ns (one 64 B line per gap)")
	n := fs.Int("n", 1<<13, "arrivals per load point")
	sloNS := fs.Int64("slo-ns", 2000, "latency SLO on the p99 end-to-end latency, in ns")
	seed := fs.Uint64("seed", 1, "PRNG seed for the pattern and the poisson process")
	f := registerFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("load: unexpected arguments %v", fs.Args())
	}
	runner, store, err := f.newRunner()
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	format, err := f.runner.Format()
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	gaps, err := parseGaps(*gapsFlag)
	if err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("load: non-positive arrival count %d", *n)
	}
	slo := clock.Picos(*sloNS) * clock.Nanosecond

	gcfg := trace.DefaultGenConfig()
	gcfg.FootprintLines = 1 << 18 // 16 MiB: past the LLC, so DRAM decides
	gcfg.Seed = *seed
	dcfgAt := func(gap clock.Picos) trace.DriverConfig {
		dcfg := trace.DefaultDriverConfig()
		dcfg.Process = trace.Process(*process)
		dcfg.MeanGap = gap
		dcfg.Duration = gap * clock.Picos(*n)
		dcfg.Seed = *seed
		dcfg.MaxInFlight = *f.inflight
		dcfg.Cacheable = !*f.noncache
		return dcfg
	}
	if err := dcfgAt(gaps[0]).Validate(); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if store != nil {
		defer func() { fmt.Fprintf(os.Stderr, "pimmu-replay: cache: %v\n", store.Stats()) }()
	}

	designs := []system.Design{system.Base, system.PIMMMU}
	type gridPoint struct{ gi, di int }
	pts := make([]gridPoint, 0, len(gaps)*len(designs))
	for gi := range gaps {
		for di := range designs {
			pts = append(pts, gridPoint{gi, di})
		}
	}
	jobs := make([]harness.Job, len(pts))
	for i, p := range pts {
		jobs[i] = runner.NewJob("pimmu-load/v1", runner.Config(designs[p.di]),
			fmt.Sprintf("pattern=%s gen=%s dcfg=%s", *pattern,
				resultcache.Canonical(gcfg), resultcache.Canonical(dcfgAt(gaps[p.gi]))))
	}
	stopProf, err := f.runner.StartProfiles()
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	results := harness.ComputePlan(runner,
		harness.Plan{Experiment: "pimmu-load", Jobs: jobs},
		func(i int, j harness.Job) trace.LoadResult {
			return loadOn(runner, j, trace.Pattern(*pattern), gcfg, dcfgAt(gaps[pts[i].gi]))
		})

	render := func(w io.Writer) {
		fmt.Fprintf(w, "%s arrivals, %s pattern, %d arrivals/point, max %d in flight\n\n",
			*process, *pattern, *n, *f.inflight)
		fmt.Fprintf(w, "%-16s %24s %24s %16s %16s\n", "offered (GB/s)",
			"Base p50/p99/p99.9 (ns)", "PIM-MMU p50/p99/p99.9 (ns)",
			"Base q99 (ns)", "PIM-MMU q99 (ns)")
		knee := make([]clock.Picos, len(designs))
		for gi, gap := range gaps {
			b := results[gi*len(designs)]
			m := results[gi*len(designs)+1]
			fmt.Fprintf(w, "%-16.2f %24s %24s %16.0f %16.0f\n",
				dcfgAt(gap).OfferedLoad()/1e9,
				tail999(&b.Total), tail999(&m.Total),
				b.Queue.P99().Nanoseconds(), m.Queue.P99().Nanoseconds())
			for di := range designs {
				r := results[gi*len(designs)+di]
				if r.Total.P99() <= slo && (knee[di] == 0 || gap < knee[di]) {
					knee[di] = gap
				}
			}
		}
		fmt.Fprintf(w, "\nmax load @ p99 <= %v: Base %s, PIM-MMU %s\n",
			slo, kneeGBs(knee[0]), kneeGBs(knee[1]))
	}
	op := fmt.Sprintf("process=%s pattern=%s n=%d slo-ns=%d gaps=%s seed=%d",
		*process, *pattern, *n, *sloNS, *gapsFlag, *seed)
	if err := emit(format, "pimmu-load", op, results, render); err != nil {
		return err
	}
	return stopProf()
}

// parseGaps parses the comma-separated -gaps axis (nanoseconds).
func parseGaps(s string) ([]clock.Picos, error) {
	var gaps []clock.Picos
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("load: bad gap %q in -gaps", f)
		}
		gaps = append(gaps, clock.Picos(v*float64(clock.Nanosecond)))
	}
	if len(gaps) == 0 {
		return nil, fmt.Errorf("load: empty -gaps axis")
	}
	return gaps, nil
}

// tail999 renders p50/p99/p99.9 bucket upper bounds in whole ns.
func tail999(h *trace.LatencyHist) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f",
		h.P50().Nanoseconds(), h.P99().Nanoseconds(), h.P999().Nanoseconds())
}

// kneeGBs renders one design's SLO knee as its offered load, or "-"
// when no point on the axis met the objective.
func kneeGBs(gap clock.Picos) string {
	if gap == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f GB/s", float64(mem.LineBytes)/gap.Seconds()/1e9)
}

// loadOn runs one open-loop point on a fresh machine of the job's
// config: the pattern supplies addresses (its footprint allocated on the
// machine), the driver config supplies arrivals.
func loadOn(runner *harness.Runner, j harness.Job, p trace.Pattern, gcfg trace.GenConfig, dcfg trace.DriverConfig) trace.LoadResult {
	s := system.MustNew(j.Config)
	gcfg.Base = s.Alloc(gcfg.FootprintBytes(p))
	recs, err := trace.Generate(p, gcfg)
	if err != nil {
		panic(err)
	}
	r, err := s.RunLoad(recs, dcfg)
	if err != nil {
		panic(err)
	}
	runner.ReportLaneStats(fmt.Sprintf("load %v gap=%v", s.Cfg.Design, dcfg.MeanGap), s)
	return r
}

// traceIdentity digests the records' canonical binary encoding.
func traceIdentity(recs []trace.Record) (string, error) {
	h := sha256.New()
	if err := trace.Encode(h, recs); err != nil {
		return "", fmt.Errorf("replay: fingerprinting trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// replayOn replays recs on a fresh machine of the job's config, with
// the event queue sharded over the runner's lane topology.
func replayOn(runner *harness.Runner, j harness.Job, recs []trace.Record, cfg trace.ReplayConfig) trace.Result {
	s := system.MustNew(j.Config)
	r, err := s.RunReplay(recs, cfg)
	if err != nil {
		panic(err)
	}
	runner.ReportLaneStats(fmt.Sprintf("replay %v", s.Cfg.Design), s)
	return r
}
